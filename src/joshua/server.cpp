#include "joshua/server.h"

#include <algorithm>

#include "sim/calibration.h"
#include "util/logging.h"

namespace joshua {

namespace {
/// An error response shaped for the op the client sent, so its decoder
/// always understands the rejection.
sim::Payload error_response(pbs::Op op, pbs::Status status) {
  switch (op) {
    case pbs::Op::kSubmit:
      return pbs::encode_response(pbs::SubmitResponse{status, pbs::kInvalidJob});
    case pbs::Op::kStat:
      return pbs::encode_response(pbs::StatResponse{status, {}});
    default:
      return pbs::encode_response(pbs::SimpleResponse{status});
  }
}

/// Did a replayed command produce the response the log implies it must?
/// The compacted log only carries commands about live jobs, so a failure
/// status here means the joiner's rebuilt PBS state diverged from the
/// group's (the paper's replay-consistency hazard).
bool replay_response_ok(const sim::Payload& request,
                        const sim::Payload& response) {
  try {
    switch (pbs::peek_op(request)) {
      case pbs::Op::kSubmit:
        return pbs::decode_submit_response(response).status ==
               pbs::Status::kOk;
      case pbs::Op::kDelete:
      case pbs::Op::kHold:
      case pbs::Op::kRelease:
        return pbs::decode_simple_response(response).status == pbs::Status::kOk;
      default:
        return true;
    }
  } catch (const net::WireError&) {
    return false;
  }
}
}  // namespace

JoshuaConfig joshua_config_from(const sim::Calibration& cal,
                                std::vector<sim::HostId> head_hosts) {
  JoshuaConfig cfg;
  cfg.group = gcs::group_config_from(cal);
  cfg.group.group_name = "joshua";
  cfg.group.peers = std::move(head_hosts);
  cfg.cmd_proc = cal.joshua_cmd_proc;
  cfg.exec_proc = cal.joshua_exec_proc;
  cfg.relay_proc = cal.joshua_relay_proc;
  return cfg;
}

Server::Server(sim::Network& net, sim::HostId host, JoshuaConfig config,
               pbs::Server* local_pbs)
    : net::RpcNode(net, host, config.client_port,
                   "joshua@" + net.host(host).name()),
      config_(std::move(config)),
      local_pbs_(local_pbs),
      group_(net, host, config_.group,
             gcs::GroupCallbacks{
                 [this](const gcs::View& v) { on_view(v); },
                 [this](const gcs::Delivered& d) { on_deliver(d); },
                 [this] { return get_state(); },
                 [this](const sim::Payload& s) { install_state(s); },
             }) {
  if (local_pbs_ == nullptr && config_.transfer == TransferMode::kSnapshot) {
    throw std::invalid_argument(
        "joshua::Server: snapshot transfer needs the colocated PBS server");
  }
  if (local_pbs_ != nullptr) {
    // Chain onto the PBS completion callback for command-log compaction.
    auto previous = std::move(local_pbs_->on_job_complete);
    local_pbs_->on_job_complete = [this, previous](const pbs::Job& job) {
      terminal_jobs_.insert(job.id);
      if (previous) previous(job);
    };
    // Ordered duplicate-completion suppression: with r-way replication the
    // mom reports only confirm what the ordered MutexDone already decided.
    local_pbs_->accept_report = [this](const pbs::JobReport& report) {
      return filter_report(report);
    };
    // Compute-node failure -> ordered mutex revocation, so every head
    // releases the dead mom's claims at the same point in the stream.
    auto prev_failed = std::move(local_pbs_->on_node_failed);
    local_pbs_->on_node_failed = [this, prev_failed](sim::HostId mom) {
      // One revoke per detected failure across the whole group: the first
      // delivered revoke arms the damping set on every head before their
      // own detectors fire, so late detections stay local.
      if (group_.is_member() && revoked_moms_.insert(mom).second) {
        group_.multicast(encode_group(GroupMutexRevoke{mom}),
                         gcs::Delivery::kAgreed);
      }
      if (prev_failed) prev_failed(mom);
    };
    // Preemption decisions go through the ordered stream: every head's pure
    // policy picks the same victim from the same replicated state, so each
    // head multicasts it once (the PBS server damps re-emission) and the
    // first delivery requeues the victim everywhere at the same point.
    // Later deliveries are no-ops (apply_preempt ignores non-running jobs).
    local_pbs_->request_preempt = [this](pbs::JobId victim) {
      if (!group_.is_member()) return;
      group_.multicast(encode_group(GroupPreempt{victim}),
                       gcs::Delivery::kAgreed);
    };
  }
  telemetry::Hub& hub = net.sim().telemetry();
  telemetry::Registry& m = hub.metrics();
  m_commands_intercepted_ = m.counter("joshua.commands_intercepted");
  m_commands_executed_ = m.counter("joshua.commands_executed");
  m_replays_applied_ = m.counter("joshua.replays_applied");
  m_mutex_grants_ = m.counter("joshua.mutex_grants");
  m_mutex_denials_ = m.counter("joshua.mutex_denials");
  m_mutex_revokes_ = m.counter("joshua.mutex_revokes");
  m_dup_done_suppressed_ = m.counter("joshua.dup_completions_suppressed");
  m_ordered_completions_ = m.counter("joshua.ordered_completions");
  m_preempts_ordered_ = m.counter("joshua.preempts_ordered");
  m_reports_rejected_ = m.counter("joshua.reports_rejected");
  m_replay_divergence_ =
      m.counter("joshua.replay_divergence." + net.host(host).name());
  m_jstat_local_ = m.counter("pbs.jstat_local");
  m_shard_rejects_ = m.counter("joshua.shard_rejects");
  m_intercept_latency_ = m.histogram("joshua.intercept_to_reply_us");
  m_jstat_local_latency_ = m.histogram("joshua.jstat_local_us");
  m_jmutex_wait_ = m.histogram("joshua.jmutex_wait_us");
  tc_command_ = hub.trace().intern("joshua.command");
  tc_replay_ = hub.trace().intern("joshua.replay");
  tc_jview_ = hub.trace().intern("joshua.view");
  tc_revoke_ = hub.trace().intern("joshua.mutex_revoke");
}

void Server::start() { group_.join(); }

void Server::shutdown() {
  // Fail outstanding clients fast so they fail over to another head.
  for (auto& [seq, reply] : pending_replies_) {
    (void)seq;
    respond(reply.client, reply.rpc_id,
            error_response(reply.op, pbs::Status::kServerBusy));
  }
  pending_replies_.clear();
  group_.leave();
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

void Server::on_request(sim::Payload request, sim::Endpoint from,
                        uint64_t rpc_id) {
  if (request.empty()) return;
  uint8_t tag = request[0];
  if (tag == static_cast<uint8_t>(PluginOp::kJMutex) ||
      tag == static_cast<uint8_t>(PluginOp::kJDone)) {
    execute(config_.cmd_proc, [this, request = std::move(request), from,
                               rpc_id, tag] {
      try {
        if (tag == static_cast<uint8_t>(PluginOp::kJMutex)) {
          handle_jmutex(decode_jmutex(request), from, rpc_id);
        } else {
          handle_jdone(decode_jdone(request), from, rpc_id);
        }
      } catch (const net::WireError& e) {
        JLOG(kWarn, "joshua") << name() << ": bad plugin request: " << e.what();
      }
    });
    return;
  }
  execute(config_.cmd_proc, [this, request = std::move(request), from,
                             rpc_id]() mutable {
    handle_client_command(std::move(request), from, rpc_id);
  });
}

void Server::handle_client_command(sim::Payload request, sim::Endpoint from,
                                   uint64_t rpc_id) {
  pbs::Op op;
  try {
    op = pbs::peek_op(request);
  } catch (const net::WireError&) {
    return;
  }
  auto reject = [&](pbs::Status status) {
    respond(from, rpc_id, error_response(op, status));
  };
  switch (op) {
    case pbs::Op::kSubmit:
    case pbs::Op::kStat:
    case pbs::Op::kDelete:
      break;
    case pbs::Op::kHold:
    case pbs::Op::kRelease:
      // Replay-based state transfer cannot reproduce hold state at a
      // joining head (Section 4): JOSHUA v0.1 rejects these. The snapshot
      // transfer mode lifts the restriction.
      if (config_.transfer == TransferMode::kReplay) {
        reject(pbs::Status::kUnsupported);
        return;
      }
      break;
    default:
      // No qsig equivalent etc.: "The original PBS command may be executed
      // independently of JOSHUA."
      reject(pbs::Status::kUnsupported);
      return;
  }
  // Federation: commands naming a job id outside this shard's block can
  // never succeed here (the id was issued by another shard's replicas), so
  // reject them up front instead of ordering a guaranteed failure.
  if (config_.shard.sharded()) {
    pbs::JobId target = pbs::kInvalidJob;
    try {
      switch (op) {
        case pbs::Op::kStat:
          target = pbs::decode_stat(request).job_id;
          break;
        case pbs::Op::kDelete:
          target = pbs::decode_delete(request).job_id;
          break;
        case pbs::Op::kHold:
          target = pbs::decode_hold(request).job_id;
          break;
        case pbs::Op::kRelease:
          target = pbs::decode_release(request).job_id;
          break;
        default:
          break;
      }
    } catch (const net::WireError&) {
      return;
    }
    if (target != pbs::kInvalidJob && !config_.shard.owns(target)) {
      ++stats_.shard_rejects;
      m_shard_rejects_.add(1);
      reject(pbs::Status::kUnknownJob);
      return;
    }
  }
  if (!group_.is_member()) {
    reject(pbs::Status::kServerBusy);
    return;
  }
  // Local-read fast path: a member's replica holds the same totally-ordered
  // prefix as every peer, so a stat can be answered off the colocated PBS
  // without a group round -- unless a replay transfer is still rebuilding
  // the table, in which case the ordered path (which holds commands until
  // the replay drains) stays authoritative.
  if (op == pbs::Op::kStat && config_.jstat_local && local_pbs_ != nullptr &&
      !replaying_) {
    ++stats_.jstat_local_served;
    m_jstat_local_.add(1);
    sim::Time intercepted = sim().now();
    net::CallOptions options;
    options.timeout = config_.local_rpc_timeout;
    call(local_pbs_endpoint(), std::move(request),
         [this, from, rpc_id, intercepted](std::optional<sim::Payload> resp) {
           if (!resp.has_value()) {
             respond(from, rpc_id,
                     error_response(pbs::Op::kStat, pbs::Status::kInternal));
             return;
           }
           execute(config_.relay_proc,
                   [this, from, rpc_id, intercepted, r = std::move(*resp)] {
                     m_jstat_local_latency_.record(
                         (sim().now() - intercepted).us);
                     respond(from, rpc_id, r);
                   });
         },
         options);
    return;
  }
  ++stats_.commands_intercepted;
  m_commands_intercepted_.add(1);
  GroupCommand cmd;
  cmd.origin = group_.id();
  cmd.cmd_seq = next_cmd_seq_++;
  cmd.pbs_request = std::move(request);
  pending_replies_[cmd.cmd_seq] = PendingReply{from, rpc_id, op, sim().now()};
  group_.multicast(encode_group(cmd), gcs::Delivery::kAgreed);
}

// ---------------------------------------------------------------------------
// Group delivery
// ---------------------------------------------------------------------------

void Server::on_deliver(const gcs::Delivered& msg) {
  GroupOp op;
  try {
    op = peek_group_op(msg.payload);
  } catch (const net::WireError&) {
    return;
  }
  try {
    switch (op) {
      case GroupOp::kCommand: {
        GroupCommand cmd = decode_group_command(msg.payload);
        if (replaying_) {
          held_commands_.push_back(std::move(cmd));
        } else {
          apply_group_command(std::move(cmd));
        }
        break;
      }
      case GroupOp::kMutexReq:
        apply_mutex_req(decode_group_mutex_req(msg.payload));
        break;
      case GroupOp::kMutexDone:
        apply_mutex_done(decode_group_mutex_done(msg.payload));
        break;
      case GroupOp::kMutexRevoke:
        apply_mutex_revoke(decode_group_mutex_revoke(msg.payload));
        break;
      case GroupOp::kPreempt:
        apply_group_preempt(decode_group_preempt(msg.payload));
        break;
    }
  } catch (const net::WireError& e) {
    JLOG(kWarn, "joshua") << name() << ": bad group message: " << e.what();
  }
}

void Server::apply_group_command(GroupCommand cmd) {
  ++stats_.commands_executed;
  m_commands_executed_.add(1);
  log_command(cmd);
  execute(config_.exec_proc, [this, cmd = std::move(cmd)] {
    net::CallOptions options;
    options.timeout = config_.local_rpc_timeout;
    call(local_pbs_endpoint(), cmd.pbs_request,
         [this, cmd](std::optional<sim::Payload> response) {
           finish_local_apply(cmd, std::move(response));
         },
         options);
  });
}

void Server::finish_local_apply(const GroupCommand& cmd,
                                std::optional<sim::Payload> response) {
  if (response.has_value()) note_command_result(cmd, *response);
  if (cmd.origin != group_.id()) return;
  auto it = pending_replies_.find(cmd.cmd_seq);
  if (it == pending_replies_.end()) return;
  PendingReply reply = it->second;
  pending_replies_.erase(it);
  if (!response.has_value()) {
    respond(reply.client, reply.rpc_id,
            error_response(reply.op, pbs::Status::kInternal));
    return;
  }
  ++stats_.replies_relayed;
  execute(config_.relay_proc,
          [this, reply, seq = cmd.cmd_seq, resp = std::move(*response)] {
            // The paper's client-visible latency: command intercepted here,
            // totally ordered, applied to the local PBS, output relayed.
            int64_t now_us = sim().now().us;
            m_intercept_latency_.record(now_us - reply.intercepted.us);
            sim().telemetry().trace().complete(
                reply.intercepted.us, now_us, host_id(), tc_command_, seq,
                static_cast<uint64_t>(reply.op));
            respond(reply.client, reply.rpc_id, resp);
          });
}

// ---------------------------------------------------------------------------
// Command log (replay-mode state transfer)
// ---------------------------------------------------------------------------

void Server::log_command(const GroupCommand& cmd) {
  pbs::Op op;
  try {
    op = pbs::peek_op(cmd.pbs_request);
  } catch (const net::WireError&) {
    return;
  }
  if (op != pbs::Op::kSubmit && op != pbs::Op::kDelete &&
      op != pbs::Op::kHold && op != pbs::Op::kRelease) {
    return;  // reads do not change state
  }
  LogEntry entry;
  entry.request = cmd.pbs_request;
  if (op != pbs::Op::kSubmit) {
    try {
      switch (op) {
        case pbs::Op::kDelete:
          entry.job = pbs::decode_delete(cmd.pbs_request).job_id;
          break;
        case pbs::Op::kHold:
          entry.job = pbs::decode_hold(cmd.pbs_request).job_id;
          break;
        case pbs::Op::kRelease:
          entry.job = pbs::decode_release(cmd.pbs_request).job_id;
          break;
        default:
          break;
      }
    } catch (const net::WireError&) {
    }
  }
  command_log_.push_back(std::move(entry));
}

void Server::note_command_result(const GroupCommand& cmd,
                                 const sim::Payload& response) {
  pbs::Op op;
  try {
    op = pbs::peek_op(cmd.pbs_request);
  } catch (const net::WireError&) {
    return;
  }
  if (op == pbs::Op::kSubmit) {
    try {
      pbs::SubmitResponse sub = pbs::decode_submit_response(response);
      if (sub.status == pbs::Status::kOk) {
        // An array submit owns [job_id, job_id + count); track the top id.
        pbs::JobId top = sub.job_id + (sub.count > 1 ? sub.count - 1 : 0);
        if (max_job_id_seen_ == pbs::kInvalidJob || top > max_job_id_seen_)
          max_job_id_seen_ = top;
        // Attach the job id to the newest submit entry lacking one.
        for (auto it = command_log_.rbegin(); it != command_log_.rend(); ++it) {
          if (it->job == pbs::kInvalidJob &&
              pbs::peek_op(it->request) == pbs::Op::kSubmit) {
            it->job = sub.job_id;
            break;
          }
        }
      }
    } catch (const net::WireError&) {
    }
  } else if (op == pbs::Op::kDelete) {
    try {
      pbs::DeleteRequest del = pbs::decode_delete(cmd.pbs_request);
      terminal_jobs_.insert(del.job_id);
    } catch (const net::WireError&) {
    }
  }
}

sim::Payload Server::export_mutex_table() const {
  // The arbitration table is replicated decision state, same as the job
  // queue: a joiner must arbitrate stale relaunches (its replay rebuilds
  // running jobs as queued) against the claims the group already delivered,
  // or it grants a second real execution on a fresh mom.
  MutexTable table;
  for (const auto& [job, state] : mutexes_) {
    MutexEntry e;
    e.job = job;
    e.max_real = state.max_real;
    e.done = state.done;
    e.winner_mom = state.winner_mom;
    e.exit_code = state.exit_code;
    for (const auto& [mom, head] : state.claims)
      e.claims.push_back(MutexClaim{mom, head});
    table.entries.push_back(std::move(e));
  }
  table.terminal.assign(terminal_jobs_.begin(), terminal_jobs_.end());
  table.revoked.assign(revoked_moms_.begin(), revoked_moms_.end());
  return encode_mutex_table(table);
}

sim::Payload Server::get_state() {
  ++stats_.state_transfers_served;
  if (config_.transfer == TransferMode::kSnapshot) {
    return wrap_transfer(TransferKind::kSnapshot, local_pbs_->dump_state_blob(),
                         export_mutex_table());
  }
  // Compacted command log: drop commands about jobs that already reached a
  // terminal state (replaying them would re-run finished work). Submits are
  // rewritten to carry their original job id so the joiner rebuilds an
  // identical queue.
  CommandLog log;
  for (const LogEntry& entry : command_log_) {
    try {
      if (pbs::peek_op(entry.request) == pbs::Op::kSubmit &&
          entry.job != pbs::kInvalidJob) {
        pbs::SubmitRequest submit = pbs::decode_submit(entry.request);
        uint32_t count =
            submit.spec.array_count > 1 ? submit.spec.array_count : 1;
        if (count == 1) {
          if (terminal_jobs_.count(entry.job)) continue;  // compacted away
          submit.forced_id = entry.job;
          log.requests.push_back(pbs::encode_request(submit));
          continue;
        }
        // Array submit: sub-jobs reach terminal state independently, so the
        // whole entry compacts only once every id in [base, base+count) is
        // terminal. A partially finished array is rewritten as individual
        // forced-id submits for the live sub-jobs -- replaying the original
        // array would resurrect finished sub-jobs as queued phantoms (and
        // re-execute them, breaking exactly-once).
        for (uint32_t i = 0; i < count; ++i) {
          pbs::JobId sub_id = entry.job + i;
          if (terminal_jobs_.count(sub_id)) continue;
          pbs::SubmitRequest one = submit;
          one.forced_id = sub_id;
          one.spec.array_count = 0;
          one.spec.array_index = static_cast<int32_t>(i);
          one.spec.name = submit.spec.name + "[" + std::to_string(i) + "]";
          log.requests.push_back(pbs::encode_request(one));
        }
        continue;
      }
    } catch (const net::WireError&) {
    }
    if (entry.job != pbs::kInvalidJob && terminal_jobs_.count(entry.job))
      continue;
    log.requests.push_back(entry.request);
  }
  if (max_job_id_seen_ != pbs::kInvalidJob)
    log.next_job_id = max_job_id_seen_ + 1;
  JLOG(kInfo, "joshua") << name() << ": serving state transfer ("
                        << log.requests.size() << " commands to replay)";
  return wrap_transfer(TransferKind::kReplayLog, encode_command_log(log),
                       export_mutex_table());
}

void Server::install_mutex_table(const sim::Payload& blob) {
  // A joiner's own arbitration state is stale by construction: MutexReq and
  // MutexDone messages delivered while it was out of the view are gone for
  // good, and a retained !done entry would reject the job's completion
  // reports forever. Replace it wholesale with the donor's table, which is
  // consistent with the stream position of the capture -- deliveries after
  // it update joiner and donor identically.
  mutexes_.clear();
  mutex_waiters_.clear();  // the moms' pending RPCs time out and rotate
  mutex_cast_.clear();
  revoked_moms_.clear();
  if (blob.empty()) return;
  MutexTable table;
  try {
    table = decode_mutex_table(blob);
  } catch (const net::WireError& e) {
    JLOG(kError, "joshua") << name() << ": corrupt mutex table: " << e.what();
    return;
  }
  for (const MutexEntry& e : table.entries) {
    MutexState& state = mutexes_[e.job];
    state.max_real = e.max_real;
    state.done = e.done;
    state.winner_mom = e.winner_mom;
    state.exit_code = e.exit_code;
    for (const MutexClaim& c : e.claims)
      state.claims.emplace_back(c.mom, c.head);
  }
  terminal_jobs_.insert(table.terminal.begin(), table.terminal.end());
  revoked_moms_.insert(table.revoked.begin(), table.revoked.end());
  JLOG(kInfo, "joshua") << name() << ": installed mutex table ("
                        << table.entries.size() << " entries, "
                        << table.terminal.size() << " terminal)";
}

void Server::install_state(const sim::Payload& state) {
  TransferEnvelope env;
  try {
    env = unwrap_transfer(state);
  } catch (const net::WireError& e) {
    JLOG(kError, "joshua") << name() << ": bad state blob: " << e.what();
    return;
  }
  auto& [kind, body, mutex_blob] = env;
  install_mutex_table(mutex_blob);
  if (kind == TransferKind::kSnapshot) {
    if (local_pbs_ == nullptr) {
      JLOG(kError, "joshua") << name()
                             << ": snapshot received without a PBS handle";
      return;
    }
    try {
      local_pbs_->load_state_blob(body);
      JLOG(kInfo, "joshua") << name() << ": snapshot state installed";
    } catch (const net::WireError& e) {
      JLOG(kError, "joshua") << name() << ": corrupt snapshot: " << e.what();
    }
    return;
  }
  // Replay mode: apply the commands through the service interface, in
  // order, holding any newly delivered commands until the replay finishes.
  // The paper's joiner starts with a freshly installed TORQUE; wipe any
  // stale local state (e.g. the pre-crash queue recovered from disk) first.
  if (local_pbs_ != nullptr) {
    local_pbs_->reset_state();
  } else {
    JLOG(kWarn, "joshua") << name()
                          << ": no PBS handle; stale local jobs may linger";
  }
  try {
    CommandLog log = decode_command_log(body);
    replay_queue_.assign(log.requests.begin(), log.requests.end());
    if (log.next_job_id != 0) {
      // Resume the donor's id sequence even though the compaction dropped
      // the terminal tail; otherwise this head's next submit would reuse an
      // id the group already handed out and the tables would fork.
      if (local_pbs_ != nullptr)
        local_pbs_->bump_next_job_id(log.next_job_id);
      if (max_job_id_seen_ == pbs::kInvalidJob ||
          log.next_job_id - 1 > max_job_id_seen_)
        max_job_id_seen_ = log.next_job_id - 1;
    }
  } catch (const net::WireError& e) {
    JLOG(kError, "joshua") << name() << ": corrupt command log: " << e.what();
    return;
  }
  JLOG(kInfo, "joshua") << name() << ": replaying " << replay_queue_.size()
                        << " commands";
  replaying_ = true;
  replay_next();
}

void Server::replay_next() {
  if (replay_queue_.empty()) {
    replaying_ = false;
    auto held = std::move(held_commands_);
    held_commands_.clear();
    for (GroupCommand& cmd : held) apply_group_command(std::move(cmd));
    JLOG(kInfo, "joshua") << name() << ": replay complete";
    return;
  }
  sim::Payload request = std::move(replay_queue_.front());
  replay_queue_.pop_front();
  GroupCommand pseudo;
  pseudo.origin = sim::kInvalidHost;  // nobody awaits a reply
  pseudo.pbs_request = request;
  log_command(pseudo);
  ++stats_.replays_applied;
  m_replays_applied_.add(1);
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_replay_,
                                    stats_.replays_applied,
                                    replay_queue_.size());
  net::CallOptions options;
  options.timeout = config_.local_rpc_timeout;
  call(local_pbs_endpoint(), std::move(request),
       [this, pseudo](std::optional<sim::Payload> response) {
         if (!response.has_value() ||
             !replay_response_ok(pseudo.pbs_request, *response)) {
           m_replay_divergence_.add(1);
           JLOG(kWarn, "joshua")
               << name() << ": replayed command produced a divergent response";
         }
         if (response.has_value()) note_command_result(pseudo, *response);
         replay_next();
       },
       options);
}

// ---------------------------------------------------------------------------
// jmutex / jdone
// ---------------------------------------------------------------------------

bool Server::mutex_winner(const MutexState& state, sim::HostId mom,
                          gcs::MemberId head) {
  if (state.done) return false;
  uint32_t rank = 0;
  for (const auto& claim : state.claims) {
    // A slot is won by one (mom, head) pair: the mom must rank within the
    // first max_real claimants AND this must be the head whose launch
    // attempt claimed for it -- the other heads' attempts emulate, which is
    // the paper's exactly-once start generalised to exactly-r.
    if (claim.first == mom) return rank < state.max_real && claim.second == head;
    ++rank;
  }
  return false;
}

bool Server::mutex_answerable(const MutexState& state, sim::HostId mom) {
  if (state.done) return true;
  for (const auto& claim : state.claims)
    if (claim.first == mom) return true;
  return false;
}

void Server::handle_jmutex(const JMutexRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  ++stats_.mutex_requests;
  if (!group_.is_member()) return;  // no answer; the plugin rotates heads
  auto it = mutexes_.find(req.job);
  if (it != mutexes_.end() && mutex_answerable(it->second, req.mom)) {
    bool won = mutex_winner(it->second, req.mom, req.head);
    (won ? stats_.mutex_grants : stats_.mutex_denials)++;
    (won ? m_mutex_grants_ : m_mutex_denials_).add(1);
    if (won) m_jmutex_wait_.record(0);  // arbitration already settled
    respond(from, rpc_id, encode_jmutex_response(JMutexResponse{won}));
    return;
  }
  mutex_waiters_.emplace(
      req.job, MutexWaiter{req.head, req.mom, from, rpc_id, sim().now()});
  if (mutex_cast_.insert({req.job, req.mom}).second) {
    group_.multicast(
        encode_group(GroupMutexReq{req.job, req.head, req.mom, req.replicas}),
        gcs::Delivery::kAgreed);
  }
}

void Server::handle_jdone(const JDoneRequest& req, sim::Endpoint from,
                          uint64_t rpc_id) {
  // Completion is driven by the ordered MutexDone, so an ack without the
  // multicast would lose the job: stay silent when out of the group and let
  // the plugin rotate to a head that can actually order the release.
  if (!group_.is_member()) return;
  respond(from, rpc_id, sim::Payload{});
  group_.multicast(encode_group(GroupMutexDone{req.job, req.exit_code,
                                               group_.id(), req.mom}),
                   gcs::Delivery::kAgreed);
}

void Server::apply_mutex_req(const GroupMutexReq& req) {
  MutexState& state = mutexes_[req.job];
  // The first delivered claim fixes r for everyone; delivery order is the
  // same at every head, so every head pins the same value.
  if (state.claims.empty() && !state.done)
    state.max_real = std::max(1u, req.replicas);
  bool known = false;
  for (const auto& claim : state.claims)
    if (claim.first == req.mom) known = true;
  if (!known) state.claims.emplace_back(req.mom, req.head);
  // A fresh claim means the mom is (back) in service: re-arm revocation,
  // and return the node to service in the local PBS. The up-transition
  // rides the ordered stream (mirroring note_node_failed in the revoke
  // apply), so every head's node table converges even with the heartbeat
  // detector disabled -- a head that never crashes would otherwise keep
  // the node down forever and stop scheduling onto it.
  revoked_moms_.erase(req.mom);
  if (local_pbs_ != nullptr) local_pbs_->note_node_recovered(req.mom);
  answer_mutex_waiters(req.job);
}

void Server::apply_mutex_done(const GroupMutexDone& done) {
  MutexState& state = mutexes_[done.job];
  if (state.done) {
    // A losing replica that really ran (it won a slot) also sends jdone;
    // only the first one in total order decides the job.
    ++stats_.dup_completions_suppressed;
    m_dup_done_suppressed_.add(1);
    return;
  }
  state.done = true;
  state.exit_code = done.exit_code;
  state.winner_mom = done.mom;
  terminal_jobs_.insert(done.job);
  answer_mutex_waiters(done.job);
  // Ordered completion: apply the result to the local PBS here, at the same
  // point of the command stream on every head. The winner's own report then
  // only confirms (and survives the winner dying right after jdone).
  // The injection defers through the same exec_proc stage as ordered
  // commands (apply_group_command): local-apply RPCs leave in delivery
  // order and loopback latency is fixed, so a completion delivered right
  // behind a command (routine once ack cuts coalesce) cannot overtake its
  // apply at the colocated PBS.
  if (local_pbs_ != nullptr) {
    ++stats_.ordered_completions;
    m_ordered_completions_.add(1);
    execute(config_.exec_proc, [this, done] {
      pbs::JobReport report;
      report.job_id = done.job;
      report.exit_code = done.exit_code;
      report.mom_host = done.mom;
      auto job = local_pbs_->find_job(done.job);
      report.cancelled = job.has_value() ? job->cancelled : false;
      net::CallOptions options;
      options.timeout = config_.local_rpc_timeout;
      call(local_pbs_endpoint(), pbs::encode_request(report),
           [](std::optional<sim::Payload>) {}, options);
    });
  }
}

void Server::apply_mutex_revoke(const GroupMutexRevoke& rev) {
  ++stats_.mutex_revokes;
  m_mutex_revokes_.add(1);
  revoked_moms_.insert(rev.mom);
  size_t released = 0;
  for (auto& [job, state] : mutexes_) {
    if (state.done) continue;
    auto is_dead = [&](const std::pair<sim::HostId, gcs::MemberId>& claim) {
      return claim.first == rev.mom;
    };
    auto cut = std::remove_if(state.claims.begin(), state.claims.end(),
                              is_dead);
    if (cut != state.claims.end()) {
      state.claims.erase(cut, state.claims.end());
      ++released;
    }
    (void)job;
  }
  // Forget the dead mom's multicast dedup entries too, so a relaunched
  // replica's fresh claim actually goes out.
  for (auto it = mutex_cast_.begin(); it != mutex_cast_.end();) {
    if (it->second == rev.mom)
      it = mutex_cast_.erase(it);
    else
      ++it;
  }
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_revoke_,
                                    rev.mom, released);
  JLOG(kInfo, "joshua") << name() << ": revoked " << released
                        << " claim(s) of failed mom " << rev.mom;
  // Converge the local node table with the group's decision: mark the node
  // down, drop its replicas and requeue jobs left without one. Idempotent,
  // so the head whose detector triggered the revoke is unaffected.
  if (local_pbs_ != nullptr) local_pbs_->note_node_failed(rev.mom);
}

void Server::apply_group_preempt(const GroupPreempt& pre) {
  // Scrub the victim's arbitration state before requeueing it: the quiet
  // kills erase the mom-side instances, so the relaunch must arbitrate from
  // scratch. Pending waiters are answered "lost" (their launch attempt is
  // moot -- the job is back in the queue); the dedup entries are dropped so
  // the relaunch's fresh claims actually go out.
  auto [begin, end] = mutex_waiters_.equal_range(pre.job);
  for (auto w = begin; w != end; ++w) {
    ++stats_.mutex_denials;
    m_mutex_denials_.add(1);
    respond(w->second.from, w->second.rpc_id,
            encode_jmutex_response(JMutexResponse{false}));
  }
  mutex_waiters_.erase(pre.job);
  mutexes_.erase(pre.job);
  for (auto it = mutex_cast_.begin(); it != mutex_cast_.end();) {
    if (it->first == pre.job)
      it = mutex_cast_.erase(it);
    else
      ++it;
  }
  ++stats_.preempts_ordered;
  m_preempts_ordered_.add(1);
  // Inject the requeue into the local PBS through the same exec_proc stage
  // as ordered commands, so it cannot overtake an in-flight apply.
  if (local_pbs_ != nullptr) {
    execute(config_.exec_proc, [this, job = pre.job] {
      net::CallOptions options;
      options.timeout = config_.local_rpc_timeout;
      call(local_pbs_endpoint(),
           pbs::encode_request(pbs::PreemptRequest{job}),
           [](std::optional<sim::Payload>) {}, options);
    });
  }
}

void Server::answer_mutex_waiters(pbs::JobId job) {
  auto it = mutexes_.find(job);
  if (it == mutexes_.end()) return;
  const MutexState& state = it->second;
  auto [begin, end] = mutex_waiters_.equal_range(job);
  for (auto w = begin; w != end;) {
    // A waiter is only answerable once its own claim is delivered (so its
    // rank among the first max_real is settled) or the job is done.
    if (!mutex_answerable(state, w->second.mom)) {
      ++w;
      continue;
    }
    bool won = mutex_winner(state, w->second.mom, w->second.head);
    (won ? stats_.mutex_grants : stats_.mutex_denials)++;
    (won ? m_mutex_grants_ : m_mutex_denials_).add(1);
    if (won) m_jmutex_wait_.record((sim().now() - w->second.asked).us);
    respond(w->second.from, w->second.rpc_id,
            encode_jmutex_response(JMutexResponse{won}));
    w = mutex_waiters_.erase(w);
  }
}

bool Server::filter_report(const pbs::JobReport& report) {
  // Cancellations are ordered (jdel/qsig went through the group), so the
  // local cancelled flag is identical at every head: accept the matching
  // report directly.
  if (report.cancelled && local_pbs_ != nullptr) {
    auto job = local_pbs_->find_job(report.job_id);
    if (job.has_value() && job->cancelled) return true;
  }
  auto it = mutexes_.find(report.job_id);
  if (it == mutexes_.end()) return true;  // never arbitrated (no prologue)
  const MutexState& state = it->second;
  if (!state.done) {
    // The winner is not decided yet; the ordered MutexDone will complete
    // the job when it is. Dropping the report is safe - completion no
    // longer depends on it.
    m_reports_rejected_.add(1);
    return false;
  }
  if (state.winner_mom == report.mom_host) return true;
  m_reports_rejected_.add(1);
  return false;
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

void Server::on_view(const gcs::View& view) {
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_jview_,
                                    view.size(),
                                    view.members.empty() ? 0 : 1);
  if (view.members.empty()) {
    JLOG(kWarn, "joshua") << name() << " out of service (excluded from view)";
    for (auto& [seq, reply] : pending_replies_) {
      (void)seq;
      respond(reply.client, reply.rpc_id,
              error_response(reply.op, pbs::Status::kServerBusy));
    }
    pending_replies_.clear();
    if (config_.auto_rejoin) {
      set_timer(config_.rejoin_delay, [this] {
        if (host_up()) group_.join();
      });
    }
    return;
  }
  JLOG(kInfo, "joshua") << name() << " serving in view of " << view.size()
                        << " head(s)";
}

void Server::on_crash() {
  net::RpcNode::on_crash();
  pending_replies_.clear();
  mutexes_.clear();
  mutex_waiters_.clear();
  mutex_cast_.clear();
  revoked_moms_.clear();
  command_log_.clear();
  terminal_jobs_.clear();
  max_job_id_seen_ = pbs::kInvalidJob;
  replaying_ = false;
  replay_queue_.clear();
  held_commands_.clear();
  next_cmd_seq_ = 1;
}

}  // namespace joshua
