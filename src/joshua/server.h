// The JOSHUA server: the external-replication interceptor running on each
// head node (paper Figure 8/9).
//
// It accepts PBS-compatible user commands (jsub/jstat/jdel), multicasts
// them AGREED through the group communication system, executes each
// delivered command against the *local*, unmodified PBS server, and relays
// the output back to the client from the head the client contacted --
// exactly-once output, as the paper requires.
//
// It also arbitrates the jmutex/jdone distributed mutual exclusion the
// mom-side prologue uses so a job requested by every head starts exactly
// once, and serves state transfer to joining heads:
//
//   * TransferMode::kReplay -- what JOSHUA v0.1 did: replay the (compacted)
//     user-command log against the joiner's fresh PBS server. Faithful to
//     the paper, including its documented limitation: jhold/jrls are
//     rejected in this mode because replay cannot reproduce hold state
//     consistently.
//   * TransferMode::kSnapshot -- the paper's future-work "unified state
//     description": a direct PBS state snapshot; supports hold/release.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "gcs/group_member.h"
#include "joshua/protocol.h"
#include "net/rpc.h"
#include "pbs/protocol.h"
#include "pbs/server.h"

namespace joshua {

enum class TransferMode : uint8_t { kReplay = 0, kSnapshot = 1 };

/// This server's slice of a federated job-id space. The federation layer
/// (src/fed/) carves the id space into contiguous blocks of `id_stride` ids
/// per shard; shard s owns (s*stride, (s+1)*stride]. count <= 1 means
/// unsharded -- every id is owned, today's single-group behaviour.
struct ShardIdentity {
  uint32_t shard = 0;
  uint32_t count = 1;
  pbs::JobId id_stride = 0;
  bool sharded() const { return count > 1 && id_stride != 0; }
  bool owns(pbs::JobId id) const {
    if (!sharded()) return true;
    return id != pbs::kInvalidJob && (id - 1) / id_stride == shard;
  }
};

struct JoshuaConfig {
  sim::Port client_port = 17000;  ///< jsub/jstat/jdel + jmutex/jdone RPCs
  sim::Port pbs_port = 15001;     ///< the colocated PBS server
  gcs::GroupConfig group;         ///< peers = all head-node hosts
  TransferMode transfer = TransferMode::kReplay;

  /// Rejoin automatically after being excluded from a view (spurious
  /// suspicion). Off by default: the paper treats exclusion as shutdown.
  bool auto_rejoin = false;
  sim::Duration rejoin_delay = sim::seconds(2);

  /// Federation: the shard this server belongs to. Commands naming a job id
  /// outside the shard's block are rejected with kUnknownJob -- the router
  /// never sends them here, so one arriving means a misrouted direct client.
  ShardIdentity shard;
  /// Serve jstat from the local replica without entering the ordered path.
  /// Reads commute with reads, and within one shard every replica holds the
  /// same totally-ordered prefix, so a member's answer is a consistent
  /// (possibly slightly stale) snapshot. Off by default: the paper orders
  /// every command, and the default config must stay behaviour-identical.
  bool jstat_local = false;

  // CPU cost model.
  sim::Duration cmd_proc = sim::msec(6);
  sim::Duration exec_proc = sim::msec(8);
  sim::Duration relay_proc = sim::msec(4);

  sim::Duration local_rpc_timeout = sim::seconds(30);
};

JoshuaConfig joshua_config_from(const sim::Calibration& cal,
                                std::vector<sim::HostId> head_hosts);

class Server : public net::RpcNode {
 public:
  /// `local_pbs` is the colocated PBS server; it may be null only in
  /// kReplay mode (snapshot transfer needs direct state access, modelling
  /// the SSS-style state interface).
  Server(sim::Network& net, sim::HostId host, JoshuaConfig config,
         pbs::Server* local_pbs);

  /// Join the active head group (start of service).
  void start();
  /// Leave the group ("handled as a forced failure by causing the JOSHUA
  /// server to shutdown via a signal", Section 4).
  void shutdown();

  bool in_service() const { return group_.is_member(); }
  /// True while a replay-mode state transfer is still being applied; the
  /// local job table lags the group until this drops back to false.
  bool replaying() const { return replaying_; }
  const gcs::GroupMember& group() const { return group_; }
  gcs::GroupMember& group() { return group_; }
  const JoshuaConfig& config() const { return config_; }

  struct Stats {
    uint64_t commands_intercepted = 0;
    uint64_t commands_executed = 0;
    uint64_t replies_relayed = 0;
    uint64_t mutex_requests = 0;
    uint64_t mutex_grants = 0;   ///< jmutex answered "won"
    uint64_t mutex_denials = 0;  ///< jmutex answered "lost"
    uint64_t mutex_revokes = 0;  ///< ordered compute-node revocations applied
    uint64_t dup_completions_suppressed = 0;  ///< extra MutexDones ignored
    uint64_t ordered_completions = 0;  ///< completions applied from MutexDone
    uint64_t preempts_ordered = 0;     ///< ordered preemptions applied
    uint64_t state_transfers_served = 0;
    uint64_t replays_applied = 0;
    uint64_t jstat_local_served = 0;  ///< stats answered off the local replica
    uint64_t shard_rejects = 0;       ///< commands naming out-of-shard ids
  };
  const Stats& stats() const { return stats_; }

  // net::RpcNode:
  void on_request(sim::Payload request, sim::Endpoint from,
                  uint64_t rpc_id) override;
  void on_crash() override;

 private:
  // Client-command path.
  void handle_client_command(sim::Payload request, sim::Endpoint from,
                             uint64_t rpc_id);
  void apply_group_command(GroupCommand cmd);
  void finish_local_apply(const GroupCommand& cmd,
                          std::optional<sim::Payload> response);

  // jmutex/jdone path.
  void handle_jmutex(const JMutexRequest& req, sim::Endpoint from,
                     uint64_t rpc_id);
  void handle_jdone(const JDoneRequest& req, sim::Endpoint from,
                    uint64_t rpc_id);
  void apply_mutex_req(const GroupMutexReq& req);
  void apply_mutex_done(const GroupMutexDone& done);
  void apply_mutex_revoke(const GroupMutexRevoke& rev);
  void apply_group_preempt(const GroupPreempt& pre);
  void answer_mutex_waiters(pbs::JobId job);
  /// pbs::Server::accept_report hook: ordered duplicate-completion
  /// suppression for replicated jobs.
  bool filter_report(const pbs::JobReport& report);

  // gcs callbacks.
  void on_view(const gcs::View& view);
  void on_deliver(const gcs::Delivered& msg);
  sim::Payload get_state();
  void install_state(const sim::Payload& state);
  /// Serialize / install the jmutex arbitration table that rides with every
  /// state transfer (claims, terminal jobs, revoked moms).
  sim::Payload export_mutex_table() const;
  void install_mutex_table(const sim::Payload& blob);

  // Replay-mode machinery.
  void replay_next();
  void log_command(const GroupCommand& cmd);
  void note_command_result(const GroupCommand& cmd,
                           const sim::Payload& response);

  sim::Endpoint local_pbs_endpoint() const {
    return {host_id(), config_.pbs_port};
  }

  JoshuaConfig config_;
  pbs::Server* local_pbs_;
  gcs::GroupMember group_;

  uint64_t next_cmd_seq_ = 1;
  /// Replies owed to clients, keyed by our own cmd_seq.
  struct PendingReply {
    sim::Endpoint client;
    uint64_t rpc_id = 0;
    pbs::Op op = pbs::Op::kStat;
    sim::Time intercepted{0};  ///< when the command entered this head
  };
  std::map<uint64_t, PendingReply> pending_replies_;

  /// jmutex arbitration, generalised from "exactly once" to "exactly r".
  struct MutexState {
    /// Delivered claims, one per mom, in total order: (mom, claiming head).
    /// The first max_real distinct moms win their launch slot.
    std::vector<std::pair<sim::HostId, gcs::MemberId>> claims;
    /// Replication factor, fixed by the first delivered claim so every head
    /// arbitrates with the same r even if requesters disagree.
    uint32_t max_real = 1;
    bool done = false;
    sim::HostId winner_mom = sim::kInvalidHost;  ///< mom of the first jdone
    int32_t exit_code = 0;
  };
  static bool mutex_winner(const MutexState& state, sim::HostId mom,
                           gcs::MemberId head);
  static bool mutex_answerable(const MutexState& state, sim::HostId mom);
  std::map<pbs::JobId, MutexState> mutexes_;
  struct MutexWaiter {
    gcs::MemberId head;
    sim::HostId mom;
    sim::Endpoint from;
    uint64_t rpc_id;
    sim::Time asked{0};  ///< when the jmutex request arrived
  };
  std::multimap<pbs::JobId, MutexWaiter> mutex_waiters_;
  /// (job, mom) pairs whose claim this head has already multicast.
  std::set<std::pair<pbs::JobId, sim::HostId>> mutex_cast_;
  /// Moms whose failure has already been revoked through the group; damps
  /// the revoke storm when every head's detector fires. Re-armed when a
  /// fresh claim from the mom is delivered (it came back).
  std::set<sim::HostId> revoked_moms_;

  /// Replay-mode command log: request + the job id it produced/affected,
  /// compacted as jobs reach terminal state.
  struct LogEntry {
    sim::Payload request;
    pbs::JobId job = pbs::kInvalidJob;
  };
  std::vector<LogEntry> command_log_;
  std::set<pbs::JobId> terminal_jobs_;
  /// Highest job id any ordered submit produced (learned from responses or a
  /// state transfer). Served as CommandLog::next_job_id so joiners never
  /// reuse ids whose jobs the compaction dropped.
  pbs::JobId max_job_id_seen_ = pbs::kInvalidJob;

  bool replaying_ = false;
  std::deque<sim::Payload> replay_queue_;
  std::deque<GroupCommand> held_commands_;

  Stats stats_;

  // Telemetry ("joshua.*" metrics; registered in the ctor body).
  telemetry::Counter m_commands_intercepted_;
  telemetry::Counter m_commands_executed_;
  telemetry::Counter m_replays_applied_;
  telemetry::Counter m_mutex_grants_;
  telemetry::Counter m_mutex_denials_;
  telemetry::Counter m_mutex_revokes_;
  telemetry::Counter m_dup_done_suppressed_;
  telemetry::Counter m_ordered_completions_;
  telemetry::Counter m_preempts_ordered_;
  telemetry::Counter m_reports_rejected_;
  /// Per-head ("joshua.replay_divergence.<host>"): replayed commands whose
  /// local PBS response disagreed with what the replayed log implies. Any
  /// nonzero value means this head's rebuilt state drifted from the group.
  telemetry::Counter m_replay_divergence_;
  /// "pbs.jstat_local": stat queries served from the local replica, the
  /// read path that never pays for total order (ROADMAP "millions of
  /// users" axis). "joshua.shard_rejects": out-of-shard ids turned away.
  telemetry::Counter m_jstat_local_;
  telemetry::Counter m_shard_rejects_;
  telemetry::Histogram m_intercept_latency_;  ///< intercept -> client reply
  telemetry::Histogram m_jstat_local_latency_;  ///< local-read intercept->reply
  telemetry::Histogram m_jmutex_wait_;        ///< jmutex arrival -> grant
  uint16_t tc_command_ = 0;  ///< trace category "joshua.command"
  uint16_t tc_replay_ = 0;   ///< trace category "joshua.replay"
  uint16_t tc_jview_ = 0;    ///< trace category "joshua.view"
  uint16_t tc_revoke_ = 0;   ///< trace category "joshua.mutex_revoke"
};

}  // namespace joshua
