#include "joshua/cluster.h"

namespace joshua {

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      sim_(options_.seed),
      net_(sim_, options_.cal.network),
      faults_(net_) {
  // Hosts: heads, computes, login.
  for (int i = 0; i < options_.head_count; ++i) {
    head_hosts_.push_back(net_.add_host("head" + std::to_string(i)).id());
  }
  for (int i = 0; i < options_.compute_count; ++i) {
    compute_hosts_.push_back(net_.add_host("node" + std::to_string(i)).id());
  }
  login_host_ = net_.add_host("login").id();

  // Mom endpoints shared by every head's PBS server config.
  std::vector<sim::Endpoint> mom_endpoints;
  for (sim::HostId h : compute_hosts_)
    mom_endpoints.push_back({h, Ports::kMom});

  // PBS servers on every head.
  for (sim::HostId h : head_hosts_) {
    pbs::ServerConfig cfg = pbs::server_config_from(options_.cal);
    cfg.port = Ports::kPbsServer;
    cfg.moms = mom_endpoints;
    cfg.sched = options_.sched;
    cfg.heartbeat_interval = options_.mom_heartbeat;
    cfg.heartbeat_miss_limit = options_.heartbeat_miss_limit;
    pbs_servers_.push_back(std::make_unique<pbs::Server>(net_, h, cfg));
  }

  // Moms on every compute node.
  for (sim::HostId h : compute_hosts_) {
    pbs::MomConfig cfg = pbs::mom_config_from(options_.cal);
    cfg.port = Ports::kMom;
    cfg.server_port = Ports::kPbsServer;
    cfg.quirk_hold_on_head_failure = options_.quirk_mom;
    moms_.push_back(std::make_unique<pbs::Mom>(net_, h, cfg));
  }

  if (!options_.with_joshua) return;

  // JOSHUA servers on every head.
  for (size_t i = 0; i < head_hosts_.size(); ++i) {
    JoshuaConfig cfg = joshua_config_from(options_.cal, head_hosts_);
    cfg.client_port = Ports::kJoshua;
    cfg.pbs_port = Ports::kPbsServer;
    cfg.group.port = Ports::kGcs;
    cfg.group.require_majority = options_.require_majority;
    if (options_.gcs_heartbeat.us > 0)
      cfg.group.heartbeat_interval = options_.gcs_heartbeat;
    if (options_.gcs_suspect.us > 0)
      cfg.group.suspect_timeout = options_.gcs_suspect;
    if (options_.gcs_flush.us > 0)
      cfg.group.flush_timeout = options_.gcs_flush;
    cfg.group.ordering = options_.ordering;
    cfg.group.order_batch = options_.order_batch;
    cfg.group.inflight_window = options_.order_window;
    cfg.transfer = options_.transfer;
    cfg.auto_rejoin = options_.auto_rejoin;
    joshua_servers_.push_back(std::make_unique<Server>(
        net_, head_hosts_[i], cfg, pbs_servers_[i].get()));
  }

  // Mom plugins (jmutex/jdone) on every compute node.
  for (size_t i = 0; i < compute_hosts_.size(); ++i) {
    MomPluginConfig cfg;
    cfg.port = Ports::kMomPlugin;
    cfg.heads = head_hosts_;
    cfg.joshua_port = Ports::kJoshua;
    plugins_.push_back(
        std::make_unique<MomPlugin>(net_, compute_hosts_[i], cfg));
    plugins_.back()->attach(*moms_[i]);
  }
}

Cluster::~Cluster() = default;

void Cluster::start() {
  for (auto& server : joshua_servers_) server->start();
}

bool Cluster::converged(size_t expected_members) const {
  const gcs::View* reference = nullptr;
  size_t live = 0;
  for (size_t i = 0; i < joshua_servers_.size(); ++i) {
    if (!net_.host(head_hosts_[i]).up()) continue;
    const auto& member = joshua_servers_[i]->group();
    if (member.state() != gcs::GroupMember::State::kMember) return false;
    ++live;
    if (reference == nullptr) {
      reference = &member.view();
    } else if (member.view().id != reference->id) {
      return false;
    }
  }
  return reference != nullptr && reference->size() == expected_members &&
         live == expected_members;
}

bool Cluster::run_until_converged(sim::Duration deadline) {
  sim::Time limit = sim_.now() + deadline;
  size_t live_heads = 0;
  for (sim::HostId h : head_hosts_)
    if (net_.host(h).up()) ++live_heads;
  while (sim_.now() < limit) {
    if (converged(live_heads)) return true;
    sim_.run_for(sim::msec(50));
  }
  return converged(live_heads);
}

Client& Cluster::make_jclient() {
  std::vector<sim::Endpoint> heads;
  for (size_t i = 0; i < head_hosts_.size(); ++i)
    heads.push_back(joshua_endpoint(i));
  ClientConfig cfg = joshua_client_config_from(options_.cal, std::move(heads));
  jclients_.push_back(
      std::make_unique<Client>(net_, login_host_, next_client_port_++, cfg));
  return *jclients_.back();
}

pbs::Client& Cluster::make_pbs_client(size_t head) {
  pbs::ClientConfig cfg =
      pbs::client_config_from(options_.cal, pbs_endpoint(head));
  pbs_clients_.push_back(std::make_unique<pbs::Client>(
      net_, login_host_, next_client_port_++, cfg));
  return *pbs_clients_.back();
}

}  // namespace joshua
