// JOSHUA wire formats: group messages replicated through the gcs, and the
// jmutex/jdone RPCs the mom-side scripts exchange with the joshua servers.
#pragma once

#include <cstdint>

#include "gcs/types.h"
#include "net/wire.h"
#include "pbs/job.h"

namespace joshua {

/// Payloads multicast (AGREED) through the group communication system.
enum class GroupOp : uint8_t {
  kCommand = 1,      ///< an intercepted PBS user command
  kMutexReq = 2,     ///< jmutex: request to launch a job (replica) on a mom
  kMutexDone = 3,    ///< jdone: a real run finished (first in order wins)
  kMutexRevoke = 4,  ///< a mom died; release its undone launch claims
  kPreempt = 5,      ///< requeue a running job at the same stream point
};

/// An intercepted PBS user command; replayed at every head in total order.
struct GroupCommand {
  gcs::MemberId origin = sim::kInvalidHost;  ///< the head the client contacted
  uint64_t cmd_seq = 0;  ///< origin-local id for routing the reply back
  sim::Payload pbs_request;  ///< the raw PBS service-interface request
};

struct GroupMutexReq {
  pbs::JobId job = pbs::kInvalidJob;
  gcs::MemberId head = sim::kInvalidHost;  ///< launch attempt on behalf of
  sim::HostId mom = sim::kInvalidHost;     ///< mom the prologue runs on
  uint32_t replicas = 1;  ///< job's replication factor (exactly-r slots)
};

struct GroupMutexDone {
  pbs::JobId job = pbs::kInvalidJob;
  int32_t exit_code = 0;
  gcs::MemberId head = sim::kInvalidHost;
  sim::HostId mom = sim::kInvalidHost;  ///< mom whose real run finished
};

/// Multicast when a head detects a compute-node failure: every undone
/// launch claim held by that mom is released so a relaunched replica
/// (on another node) can win its slot. Idempotent -- several heads may
/// announce the same failure.
struct GroupMutexRevoke {
  sim::HostId mom = sim::kInvalidHost;
};

/// Multicast when a head's scheduler picks a preemption victim. Delivered
/// in total order, so every head requeues the victim (and clears its jmutex
/// state) at the same point of the command stream. Idempotent: once the
/// victim is requeued, later deliveries for the same decision are no-ops.
struct GroupPreempt {
  pbs::JobId job = pbs::kInvalidJob;
};

GroupOp peek_group_op(const sim::Payload&);
sim::Payload encode_group(const GroupCommand&);
sim::Payload encode_group(const GroupMutexReq&);
sim::Payload encode_group(const GroupMutexDone&);
sim::Payload encode_group(const GroupMutexRevoke&);
sim::Payload encode_group(const GroupPreempt&);
GroupCommand decode_group_command(const sim::Payload&);
GroupMutexReq decode_group_mutex_req(const sim::Payload&);
GroupMutexDone decode_group_mutex_done(const sim::Payload&);
GroupMutexRevoke decode_group_mutex_revoke(const sim::Payload&);
GroupPreempt decode_group_preempt(const sim::Payload&);

/// Mom-plugin RPC ops share the joshua server port with PBS user commands;
/// the tag byte range is disjoint from pbs::Op.
enum class PluginOp : uint8_t {
  kJMutex = 200,
  kJDone = 201,
};

struct JMutexRequest {
  pbs::JobId job = pbs::kInvalidJob;
  gcs::MemberId head = sim::kInvalidHost;  ///< origin of the launch attempt
  sim::HostId mom = sim::kInvalidHost;     ///< mom running the prologue
  uint32_t replicas = 1;                   ///< job's replication factor
};
struct JMutexResponse {
  bool won = false;
};

struct JDoneRequest {
  pbs::JobId job = pbs::kInvalidJob;
  int32_t exit_code = 0;
  sim::HostId mom = sim::kInvalidHost;  ///< mom whose real run finished
};

sim::Payload encode_plugin(const JMutexRequest&);
sim::Payload encode_plugin(const JDoneRequest&);
JMutexRequest decode_jmutex(const sim::Payload&);
JDoneRequest decode_jdone(const sim::Payload&);
sim::Payload encode_jmutex_response(const JMutexResponse&);
JMutexResponse decode_jmutex_response(const sim::Payload&);

/// Replay-mode state transfer: the compacted command log.
struct CommandLog {
  std::vector<sim::Payload> requests;  ///< PBS requests to replay, in order
  /// The donor's next job id. Compaction drops terminal jobs, so the highest
  /// forced id in `requests` can lag the donor's counter; without this the
  /// joiner would hand out ids the group already used and every later submit
  /// would diverge across heads.
  pbs::JobId next_job_id = 0;
};
sim::Payload encode_command_log(const CommandLog&);
CommandLog decode_command_log(const sim::Payload&);

/// jmutex arbitration state shipped alongside every state transfer. The
/// claim table is part of the replicated decision state: a joiner that
/// arbitrates from a blank slate would pin a fresh claim list for a job the
/// group already placed, rank the stale relaunch's mom first, and grant a
/// second real execution (the non-exclusive selectors can pick a different
/// mom than the original run, so the mom-side instance dedup never fires).
struct MutexClaim {
  sim::HostId mom = sim::kInvalidHost;
  gcs::MemberId head = sim::kInvalidHost;
};
struct MutexEntry {
  pbs::JobId job = pbs::kInvalidJob;
  uint32_t max_real = 1;
  bool done = false;
  sim::HostId winner_mom = sim::kInvalidHost;
  int32_t exit_code = 0;
  std::vector<MutexClaim> claims;  ///< delivered claims, in total order
};
struct MutexTable {
  std::vector<MutexEntry> entries;   ///< one per arbitrated job, id order
  std::vector<pbs::JobId> terminal;  ///< jobs past any terminal state
  std::vector<sim::HostId> revoked;  ///< moms whose failure was revoked
};
sim::Payload encode_mutex_table(const MutexTable&);
MutexTable decode_mutex_table(const sim::Payload&);

/// State-transfer blob header: distinguishes replay logs from snapshots so
/// a mixed-mode misconfiguration fails loudly instead of corrupting state.
enum class TransferKind : uint8_t { kReplayLog = 1, kSnapshot = 2 };
struct TransferEnvelope {
  TransferKind kind = TransferKind::kReplayLog;
  sim::Payload body;     ///< command log or PBS snapshot, per `kind`
  sim::Payload mutexes;  ///< encoded MutexTable (may be empty: blank table)
};
sim::Payload wrap_transfer(TransferKind kind, sim::Payload body,
                           sim::Payload mutexes = {});
TransferEnvelope unwrap_transfer(const sim::Payload&);

}  // namespace joshua
