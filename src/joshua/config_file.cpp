#include "joshua/config_file.h"

#include "util/strings.h"

namespace joshua {

ClusterOptions cluster_options_from_config(std::string_view text) {
  jutil::Config cfg = jutil::Config::parse(text);
  ClusterOptions options;
  options.head_count = static_cast<int>(cfg.get_int("heads", 2));
  options.compute_count = static_cast<int>(cfg.get_int("computes", 2));
  if (options.head_count < 1 || options.compute_count < 1)
    throw jutil::ConfigError("heads/computes must be >= 1");

  std::string transfer =
      jutil::to_lower(cfg.get_string("transfer", "replay"));
  if (transfer == "replay") {
    options.transfer = TransferMode::kReplay;
  } else if (transfer == "snapshot") {
    options.transfer = TransferMode::kSnapshot;
  } else {
    throw jutil::ConfigError("transfer must be 'replay' or 'snapshot', got '" +
                             transfer + "'");
  }
  options.auto_rejoin = cfg.get_bool("auto_rejoin", false);
  options.quirk_mom = cfg.get_bool("quirk_mom", false);
  options.require_majority = cfg.get_bool("require_majority", false);
  options.seed = static_cast<uint64_t>(cfg.get_int("seed", 1));

  if (const jutil::Config* sched = cfg.section("scheduler", "")) {
    std::string policy =
        jutil::to_lower(sched->get_string("policy", "fifo"));
    if (policy == "fifo") {
      options.sched.policy = pbs::SchedPolicy::kFifo;
    } else if (policy == "backfill") {
      options.sched.policy = pbs::SchedPolicy::kFifoBackfill;
    } else {
      throw jutil::ConfigError("scheduler policy must be 'fifo' or "
                               "'backfill', got '" + policy + "'");
    }
    options.sched.exclusive_cluster = sched->get_bool("exclusive", true);
  }

  if (const jutil::Config* gcs = cfg.section("gcs", "")) {
    options.gcs_heartbeat = sim::msec(gcs->get_int("heartbeat_ms", 0));
    options.gcs_suspect = sim::msec(gcs->get_int("suspect_ms", 0));
    options.gcs_flush = sim::msec(gcs->get_int("flush_ms", 0));
  }
  return options;
}

std::string cluster_options_to_config(const ClusterOptions& options) {
  jutil::Config cfg;
  cfg.set("heads", std::to_string(options.head_count));
  cfg.set("computes", std::to_string(options.compute_count));
  cfg.set("transfer", options.transfer == TransferMode::kReplay ? "replay"
                                                                : "snapshot");
  cfg.set("auto_rejoin", options.auto_rejoin ? "true" : "false");
  cfg.set("quirk_mom", options.quirk_mom ? "true" : "false");
  cfg.set("require_majority", options.require_majority ? "true" : "false");
  cfg.set("seed", std::to_string(options.seed));
  jutil::Config& sched = cfg.add_section("scheduler", "");
  sched.set("policy", options.sched.policy == pbs::SchedPolicy::kFifo
                          ? "fifo"
                          : "backfill");
  sched.set("exclusive", options.sched.exclusive_cluster ? "true" : "false");
  jutil::Config& gcs = cfg.add_section("gcs", "");
  gcs.set("heartbeat_ms", std::to_string(options.gcs_heartbeat.us / 1000));
  gcs.set("suspect_ms", std::to_string(options.gcs_suspect.us / 1000));
  gcs.set("flush_ms", std::to_string(options.gcs_flush.us / 1000));
  return cfg.to_string();
}

}  // namespace joshua
