#include "joshua/config_file.h"

#include <set>

#include "telemetry/report_diff.h"
#include "util/strings.h"

namespace joshua {

namespace {

/// Parse the `shards` section into a validated ShardLayout. The errors here
/// are deployment-file mistakes an operator must see clearly: a head in two
/// shards, a head in none, a queue two shards both claim, or a queue no
/// shard would accept.
ShardLayout shard_layout_from(const jutil::Config& shards, int head_count) {
  ShardLayout layout;
  layout.count = static_cast<int>(shards.get_int("count", 1));
  if (layout.count < 1)
    throw jutil::ConfigError("shards count must be >= 1, got " +
                             std::to_string(layout.count));
  layout.id_stride = static_cast<pbs::JobId>(shards.get_int("stride", 0));
  if (layout.count == 1 && shards.section_titles("shard").empty())
    return layout;  // degenerate single shard: nothing else to check

  layout.heads.resize(static_cast<size_t>(layout.count));
  layout.queues.resize(static_cast<size_t>(layout.count));
  std::set<int> assigned_heads;
  for (int s = 0; s < layout.count; ++s) {
    const jutil::Config* shard = shards.section("shard", std::to_string(s));
    if (shard == nullptr)
      throw jutil::ConfigError("shards: missing section 'shard " +
                               std::to_string(s) + "' (count = " +
                               std::to_string(layout.count) + ")");
    size_t ix = static_cast<size_t>(s);
    for (const std::string& h : shard->get_list("heads")) {
      int head = 0;
      try {
        head = std::stoi(h);
      } catch (const std::exception&) {
        throw jutil::ConfigError("shard " + std::to_string(s) +
                                 ": bad head index '" + h + "'");
      }
      if (head < 0 || head >= head_count)
        throw jutil::ConfigError("shard " + std::to_string(s) + ": head " +
                                 std::to_string(head) +
                                 " out of range (heads = " +
                                 std::to_string(head_count) + ")");
      if (!assigned_heads.insert(head).second)
        throw jutil::ConfigError("head " + std::to_string(head) +
                                 " assigned to more than one shard");
      layout.heads[ix].push_back(head);
    }
    if (layout.heads[ix].empty())
      throw jutil::ConfigError("shard " + std::to_string(s) +
                               " has no heads");
    layout.queues[ix] = shard->get_list("queues");
  }
  if (static_cast<int>(assigned_heads.size()) != head_count)
    throw jutil::ConfigError(
        "shards: " + std::to_string(head_count -
                                    static_cast<int>(assigned_heads.size())) +
        " head(s) assigned to no shard");

  // Queue globs: either no shard routes by queue (hash placement), or the
  // globs must be overlap-free and leave no queue unassigned.
  bool any_globs = false;
  for (const auto& globs : layout.queues) any_globs |= !globs.empty();
  if (any_globs) {
    bool catch_all = false;
    std::set<std::string> seen;
    for (int s = 0; s < layout.count; ++s) {
      size_t ix = static_cast<size_t>(s);
      if (layout.queues[ix].empty())
        throw jutil::ConfigError("shard " + std::to_string(s) +
                                 " has no queue globs while other shards "
                                 "route by queue");
      for (const std::string& glob : layout.queues[ix]) {
        if (glob == "*") catch_all = true;
        if (!seen.insert(glob).second)
          throw jutil::ConfigError("queue glob '" + glob +
                                   "' claimed by more than one shard");
      }
    }
    // A literal (wildcard-free) queue name matched by another shard's glob
    // is an overlap even though the strings differ: both shards would claim
    // submits to that queue.
    for (int s = 0; s < layout.count; ++s) {
      for (const std::string& literal : layout.queues[static_cast<size_t>(s)]) {
        if (literal.find_first_of("*?") != std::string::npos) continue;
        for (int t = 0; t < layout.count; ++t) {
          if (t == s) continue;
          for (const std::string& glob : layout.queues[static_cast<size_t>(t)]) {
            // The catch-all is the fallback (consulted only when nothing
            // else matches); it overlaps nothing by construction.
            if (glob == "*") continue;
            if (telemetry::glob_match(glob, literal))
              throw jutil::ConfigError(
                  "queue '" + literal + "' (shard " + std::to_string(s) +
                  ") overlaps glob '" + glob + "' (shard " +
                  std::to_string(t) + ")");
          }
        }
      }
    }
    if (!catch_all)
      throw jutil::ConfigError(
          "shards route by queue but no shard owns the catch-all '*' glob; "
          "queues matching no glob would be unassigned");
  }
  return layout;
}

}  // namespace

ClusterOptions cluster_options_from_config(std::string_view text) {
  jutil::Config cfg = jutil::Config::parse(text);
  ClusterOptions options;
  options.head_count = static_cast<int>(cfg.get_int("heads", 2));
  options.compute_count = static_cast<int>(cfg.get_int("computes", 2));
  if (options.head_count < 1 || options.compute_count < 1)
    throw jutil::ConfigError("heads/computes must be >= 1");

  std::string transfer =
      jutil::to_lower(cfg.get_string("transfer", "replay"));
  if (transfer == "replay") {
    options.transfer = TransferMode::kReplay;
  } else if (transfer == "snapshot") {
    options.transfer = TransferMode::kSnapshot;
  } else {
    throw jutil::ConfigError("transfer must be 'replay' or 'snapshot', got '" +
                             transfer + "'");
  }
  options.auto_rejoin = cfg.get_bool("auto_rejoin", false);
  options.quirk_mom = cfg.get_bool("quirk_mom", false);
  options.require_majority = cfg.get_bool("require_majority", false);
  options.seed = static_cast<uint64_t>(cfg.get_int("seed", 1));

  // Legacy section: the pre-plugin scheduler only knew fifo/backfill.
  // Accepted unchanged so existing deployment files keep working.
  if (const jutil::Config* sched = cfg.section("scheduler", "")) {
    std::string policy =
        jutil::to_lower(sched->get_string("policy", "fifo"));
    if (policy != "fifo" && policy != "backfill")
      throw jutil::ConfigError("scheduler policy must be 'fifo' or "
                               "'backfill', got '" + policy + "'");
    options.sched.policy = policy;
    options.sched.exclusive_cluster = sched->get_bool("exclusive", true);
  }

  // Plugin-era section: any registered policy/selector pair, plus aging.
  // Unknown names are a deployment mistake -- fail the parse, never fall
  // back silently (heads running different policies would diverge).
  if (const jutil::Config* sched = cfg.section("scheduling", "")) {
    std::string policy = jutil::to_lower(
        sched->get_string("policy", options.sched.policy));
    if (pbs::find_sched_policy(policy) == nullptr)
      throw jutil::ConfigError(
          "scheduling policy '" + policy + "' is not registered (have: " +
          jutil::join(pbs::sched_policy_names(), ", ") + ")");
    options.sched.policy = policy;
    std::string selector = jutil::to_lower(
        sched->get_string("selector", options.sched.selector));
    if (pbs::find_node_selector(selector) == nullptr)
      throw jutil::ConfigError(
          "scheduling selector '" + selector + "' is not registered (have: " +
          jutil::join(pbs::node_selector_names(), ", ") + ")");
    options.sched.selector = selector;
    options.sched.exclusive_cluster =
        sched->get_bool("exclusive", options.sched.exclusive_cluster);
    int64_t aging_s = sched->get_int("aging_s", 0);
    if (aging_s < 0)
      throw jutil::ConfigError("scheduling aging_s must be >= 0, got " +
                               std::to_string(aging_s));
    options.sched.priority_aging = sim::seconds(aging_s);
  }

  if (const jutil::Config* gcs = cfg.section("gcs", "")) {
    options.gcs_heartbeat = sim::msec(gcs->get_int("heartbeat_ms", 0));
    options.gcs_suspect = sim::msec(gcs->get_int("suspect_ms", 0));
    options.gcs_flush = sim::msec(gcs->get_int("flush_ms", 0));
  }

  if (const jutil::Config* ordering = cfg.section("ordering", "")) {
    std::string engine =
        jutil::to_lower(ordering->get_string("engine", ""));
    if (!engine.empty()) {
      std::optional<gcs::OrderingMode> mode = gcs::parse_ordering_mode(engine);
      if (!mode)
        throw jutil::ConfigError(
            "ordering engine must be 'allack' or 'token', got '" + engine +
            "'");
      options.ordering = *mode;
    }
    // Defaults keep whatever the environment knobs seeded so a file that
    // only picks an engine does not silently reset a benchmark's env sweep.
    int64_t batch = ordering->get_int(
        "batch", static_cast<int64_t>(options.order_batch));
    int64_t window = ordering->get_int(
        "window", static_cast<int64_t>(options.order_window));
    if (batch < 0)
      throw jutil::ConfigError("ordering batch must be >= 0, got " +
                               std::to_string(batch));
    if (window < 0)
      throw jutil::ConfigError("ordering window must be >= 0, got " +
                               std::to_string(window));
    options.order_batch = static_cast<uint32_t>(batch);
    options.order_window = static_cast<uint32_t>(window);
  }

  if (const jutil::Config* shards = cfg.section("shards", ""))
    options.shards = shard_layout_from(*shards, options.head_count);
  return options;
}

std::string cluster_options_to_config(const ClusterOptions& options) {
  jutil::Config cfg;
  cfg.set("heads", std::to_string(options.head_count));
  cfg.set("computes", std::to_string(options.compute_count));
  cfg.set("transfer", options.transfer == TransferMode::kReplay ? "replay"
                                                                : "snapshot");
  cfg.set("auto_rejoin", options.auto_rejoin ? "true" : "false");
  cfg.set("quirk_mom", options.quirk_mom ? "true" : "false");
  cfg.set("require_majority", options.require_majority ? "true" : "false");
  cfg.set("seed", std::to_string(options.seed));
  jutil::Config& sched = cfg.add_section("scheduling", "");
  sched.set("policy", options.sched.policy);
  sched.set("selector", options.sched.selector);
  sched.set("exclusive", options.sched.exclusive_cluster ? "true" : "false");
  sched.set("aging_s",
            std::to_string(options.sched.priority_aging.us / 1'000'000));
  // Resolve the engine name before the local `gcs` below shadows the
  // namespace.
  std::string engine_name{gcs::to_string(options.ordering)};
  jutil::Config& gcs = cfg.add_section("gcs", "");
  gcs.set("heartbeat_ms", std::to_string(options.gcs_heartbeat.us / 1000));
  gcs.set("suspect_ms", std::to_string(options.gcs_suspect.us / 1000));
  gcs.set("flush_ms", std::to_string(options.gcs_flush.us / 1000));
  jutil::Config& ordering = cfg.add_section("ordering", "");
  ordering.set("engine", engine_name);
  ordering.set("batch", std::to_string(options.order_batch));
  ordering.set("window", std::to_string(options.order_window));
  if (options.shards.sharded()) {
    jutil::Config& shards = cfg.add_section("shards", "");
    shards.set("count", std::to_string(options.shards.count));
    if (options.shards.id_stride != 0)
      shards.set("stride", std::to_string(options.shards.id_stride));
    for (int s = 0; s < options.shards.count; ++s) {
      jutil::Config& shard = shards.add_section("shard", std::to_string(s));
      size_t ix = static_cast<size_t>(s);
      std::vector<std::string> heads;
      if (ix < options.shards.heads.size())
        for (int h : options.shards.heads[ix])
          heads.push_back(std::to_string(h));
      shard.set_list("heads", std::move(heads));
      if (ix < options.shards.queues.size() &&
          !options.shards.queues[ix].empty())
        shard.set_list("queues", options.shards.queues[ix]);
    }
  }
  return cfg.to_string();
}

}  // namespace joshua
