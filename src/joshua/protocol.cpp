#include "joshua/protocol.h"

namespace joshua {

GroupOp peek_group_op(const sim::Payload& buf) {
  if (buf.empty()) throw net::WireError("joshua: empty group message");
  return static_cast<GroupOp>(buf[0]);
}

sim::Payload encode_group(const GroupCommand& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kCommand));
  w.u32(m.origin);
  w.u64(m.cmd_seq);
  w.bytes(m.pbs_request);
  return w.take();
}

GroupCommand decode_group_command(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kCommand)
    throw net::WireError("joshua: not a group command");
  GroupCommand m;
  m.origin = r.u32();
  m.cmd_seq = r.u64();
  m.pbs_request = r.bytes();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupMutexReq& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kMutexReq));
  w.u64(m.job);
  w.u32(m.head);
  w.u32(m.mom);
  w.u32(m.replicas);
  return w.take();
}

GroupMutexReq decode_group_mutex_req(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kMutexReq)
    throw net::WireError("joshua: not a mutex request");
  GroupMutexReq m;
  m.job = r.u64();
  m.head = r.u32();
  m.mom = r.u32();
  m.replicas = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupMutexDone& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kMutexDone));
  w.u64(m.job);
  w.i64(m.exit_code);
  w.u32(m.head);
  w.u32(m.mom);
  return w.take();
}

GroupMutexDone decode_group_mutex_done(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kMutexDone)
    throw net::WireError("joshua: not a mutex done");
  GroupMutexDone m;
  m.job = r.u64();
  m.exit_code = static_cast<int32_t>(r.i64());
  m.head = r.u32();
  m.mom = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupMutexRevoke& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kMutexRevoke));
  w.u32(m.mom);
  return w.take();
}

GroupMutexRevoke decode_group_mutex_revoke(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kMutexRevoke)
    throw net::WireError("joshua: not a mutex revoke");
  GroupMutexRevoke m;
  m.mom = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_plugin(const JMutexRequest& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(PluginOp::kJMutex));
  w.u64(m.job);
  w.u32(m.head);
  w.u32(m.mom);
  w.u32(m.replicas);
  return w.take();
}

JMutexRequest decode_jmutex(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<PluginOp>(r.u8()) != PluginOp::kJMutex)
    throw net::WireError("joshua: not a jmutex request");
  JMutexRequest m;
  m.job = r.u64();
  m.head = r.u32();
  m.mom = r.u32();
  m.replicas = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_plugin(const JDoneRequest& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(PluginOp::kJDone));
  w.u64(m.job);
  w.i64(m.exit_code);
  w.u32(m.mom);
  return w.take();
}

JDoneRequest decode_jdone(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<PluginOp>(r.u8()) != PluginOp::kJDone)
    throw net::WireError("joshua: not a jdone request");
  JDoneRequest m;
  m.job = r.u64();
  m.exit_code = static_cast<int32_t>(r.i64());
  m.mom = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_jmutex_response(const JMutexResponse& m) {
  net::Writer w;
  w.boolean(m.won);
  return w.take();
}

JMutexResponse decode_jmutex_response(const sim::Payload& buf) {
  net::Reader r(buf);
  JMutexResponse m;
  m.won = r.boolean();
  r.expect_done();
  return m;
}

sim::Payload encode_command_log(const CommandLog& log) {
  net::Writer w;
  w.vec(log.requests,
        [](net::Writer& w2, const sim::Payload& p) { w2.bytes(p); });
  w.u64(log.next_job_id);
  return w.take();
}

CommandLog decode_command_log(const sim::Payload& buf) {
  net::Reader r(buf);
  CommandLog log;
  log.requests =
      r.vec<sim::Payload>([](net::Reader& r2) { return r2.bytes(); });
  log.next_job_id = r.u64();
  r.expect_done();
  return log;
}

sim::Payload wrap_transfer(TransferKind kind, sim::Payload body) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(kind));
  w.bytes(body);
  return w.take();
}

std::pair<TransferKind, sim::Payload> unwrap_transfer(const sim::Payload& buf) {
  net::Reader r(buf);
  auto kind = static_cast<TransferKind>(r.u8());
  sim::Payload body = r.bytes();
  r.expect_done();
  return {kind, std::move(body)};
}

}  // namespace joshua
