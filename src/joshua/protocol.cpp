#include "joshua/protocol.h"

namespace joshua {

GroupOp peek_group_op(const sim::Payload& buf) {
  if (buf.empty()) throw net::WireError("joshua: empty group message");
  return static_cast<GroupOp>(buf[0]);
}

sim::Payload encode_group(const GroupCommand& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kCommand));
  w.u32(m.origin);
  w.u64(m.cmd_seq);
  w.bytes(m.pbs_request);
  return w.take();
}

GroupCommand decode_group_command(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kCommand)
    throw net::WireError("joshua: not a group command");
  GroupCommand m;
  m.origin = r.u32();
  m.cmd_seq = r.u64();
  m.pbs_request = r.bytes();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupMutexReq& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kMutexReq));
  w.u64(m.job);
  w.u32(m.head);
  w.u32(m.mom);
  w.u32(m.replicas);
  return w.take();
}

GroupMutexReq decode_group_mutex_req(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kMutexReq)
    throw net::WireError("joshua: not a mutex request");
  GroupMutexReq m;
  m.job = r.u64();
  m.head = r.u32();
  m.mom = r.u32();
  m.replicas = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupMutexDone& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kMutexDone));
  w.u64(m.job);
  w.i64(m.exit_code);
  w.u32(m.head);
  w.u32(m.mom);
  return w.take();
}

GroupMutexDone decode_group_mutex_done(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kMutexDone)
    throw net::WireError("joshua: not a mutex done");
  GroupMutexDone m;
  m.job = r.u64();
  m.exit_code = static_cast<int32_t>(r.i64());
  m.head = r.u32();
  m.mom = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupMutexRevoke& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kMutexRevoke));
  w.u32(m.mom);
  return w.take();
}

GroupMutexRevoke decode_group_mutex_revoke(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kMutexRevoke)
    throw net::WireError("joshua: not a mutex revoke");
  GroupMutexRevoke m;
  m.mom = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_group(const GroupPreempt& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(GroupOp::kPreempt));
  w.u64(m.job);
  return w.take();
}

GroupPreempt decode_group_preempt(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<GroupOp>(r.u8()) != GroupOp::kPreempt)
    throw net::WireError("joshua: not a group preempt");
  GroupPreempt m;
  m.job = r.u64();
  r.expect_done();
  return m;
}

sim::Payload encode_plugin(const JMutexRequest& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(PluginOp::kJMutex));
  w.u64(m.job);
  w.u32(m.head);
  w.u32(m.mom);
  w.u32(m.replicas);
  return w.take();
}

JMutexRequest decode_jmutex(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<PluginOp>(r.u8()) != PluginOp::kJMutex)
    throw net::WireError("joshua: not a jmutex request");
  JMutexRequest m;
  m.job = r.u64();
  m.head = r.u32();
  m.mom = r.u32();
  m.replicas = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_plugin(const JDoneRequest& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(PluginOp::kJDone));
  w.u64(m.job);
  w.i64(m.exit_code);
  w.u32(m.mom);
  return w.take();
}

JDoneRequest decode_jdone(const sim::Payload& buf) {
  net::Reader r(buf);
  if (static_cast<PluginOp>(r.u8()) != PluginOp::kJDone)
    throw net::WireError("joshua: not a jdone request");
  JDoneRequest m;
  m.job = r.u64();
  m.exit_code = static_cast<int32_t>(r.i64());
  m.mom = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_jmutex_response(const JMutexResponse& m) {
  net::Writer w;
  w.boolean(m.won);
  return w.take();
}

JMutexResponse decode_jmutex_response(const sim::Payload& buf) {
  net::Reader r(buf);
  JMutexResponse m;
  m.won = r.boolean();
  r.expect_done();
  return m;
}

sim::Payload encode_command_log(const CommandLog& log) {
  net::Writer w;
  w.vec(log.requests,
        [](net::Writer& w2, const sim::Payload& p) { w2.bytes(p); });
  w.u64(log.next_job_id);
  return w.take();
}

CommandLog decode_command_log(const sim::Payload& buf) {
  net::Reader r(buf);
  CommandLog log;
  log.requests =
      r.vec<sim::Payload>([](net::Reader& r2) { return r2.bytes(); });
  log.next_job_id = r.u64();
  r.expect_done();
  return log;
}

sim::Payload encode_mutex_table(const MutexTable& table) {
  net::Writer w;
  w.vec(table.entries, [](net::Writer& w2, const MutexEntry& e) {
    w2.u64(e.job);
    w2.u32(e.max_real);
    w2.boolean(e.done);
    w2.u32(e.winner_mom);
    w2.i64(e.exit_code);
    w2.vec(e.claims, [](net::Writer& w3, const MutexClaim& c) {
      w3.u32(c.mom);
      w3.u32(c.head);
    });
  });
  w.vec(table.terminal,
        [](net::Writer& w2, pbs::JobId id) { w2.u64(id); });
  w.vec(table.revoked,
        [](net::Writer& w2, sim::HostId mom) { w2.u32(mom); });
  return w.take();
}

MutexTable decode_mutex_table(const sim::Payload& buf) {
  net::Reader r(buf);
  MutexTable table;
  table.entries = r.vec<MutexEntry>([](net::Reader& r2) {
    MutexEntry e;
    e.job = r2.u64();
    e.max_real = r2.u32();
    e.done = r2.boolean();
    e.winner_mom = r2.u32();
    e.exit_code = static_cast<int32_t>(r2.i64());
    e.claims = r2.vec<MutexClaim>([](net::Reader& r3) {
      MutexClaim c;
      c.mom = r3.u32();
      c.head = r3.u32();
      return c;
    });
    return e;
  });
  table.terminal =
      r.vec<pbs::JobId>([](net::Reader& r2) { return r2.u64(); });
  table.revoked =
      r.vec<sim::HostId>([](net::Reader& r2) { return r2.u32(); });
  r.expect_done();
  return table;
}

sim::Payload wrap_transfer(TransferKind kind, sim::Payload body,
                           sim::Payload mutexes) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(kind));
  w.bytes(body);
  w.bytes(mutexes);
  return w.take();
}

TransferEnvelope unwrap_transfer(const sim::Payload& buf) {
  net::Reader r(buf);
  TransferEnvelope env;
  env.kind = static_cast<TransferKind>(r.u8());
  env.body = r.bytes();
  env.mutexes = r.bytes();
  r.expect_done();
  return env;
}

}  // namespace joshua
