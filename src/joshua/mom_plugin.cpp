#include "joshua/mom_plugin.h"

#include "util/logging.h"

namespace joshua {

MomPlugin::MomPlugin(sim::Network& net, sim::HostId host,
                     MomPluginConfig config)
    : net::RpcNode(net, host, config.port,
                   "jplugin@" + net.host(host).name()),
      config_(std::move(config)) {
  if (config_.heads.empty())
    throw std::invalid_argument("MomPlugin: no heads configured");
}

void MomPlugin::attach(pbs::Mom& mom) {
  mom.set_prologue([this](const pbs::Job& job, sim::HostId head,
                          std::function<void(pbs::PrologueDecision)> done) {
    jmutex(job, head, std::move(done));
  });
  mom.set_epilogue([this](const pbs::Job& job, int32_t exit_code,
                          std::function<void()> done) {
    jdone(job, exit_code, std::move(done));
  });
}

size_t MomPlugin::head_index_of(sim::HostId host) const {
  for (size_t i = 0; i < config_.heads.size(); ++i) {
    if (config_.heads[i] == host) return i;
  }
  return 0;
}

void MomPlugin::jmutex(const pbs::Job& job, sim::HostId requesting_head,
                       std::function<void(pbs::PrologueDecision)> done) {
  ++mutex_attempts_;
  execute(config_.script_proc, [this, id = job.id, r = job.spec.replicas,
                                requesting_head,
                                done = std::move(done)]() mutable {
    // Ask the requesting head first -- it can multicast its own mutex
    // request; any other head can arbitrate by proxy if it is dead.
    jmutex_attempt(id, requesting_head, r, head_index_of(requesting_head),
                   config_.heads.size() + 1, std::move(done));
  });
}

void MomPlugin::jmutex_attempt(pbs::JobId job, sim::HostId on_behalf,
                               uint32_t replicas, size_t head_index,
                               size_t tries_left,
                               std::function<void(pbs::PrologueDecision)> done) {
  if (tries_left == 0) {
    ++aborts_;
    JLOG(kWarn, "jmutex") << name() << ": no head answered for job " << job
                          << "; aborting launch attempt";
    done(pbs::PrologueDecision::kAbort);
    return;
  }
  sim::Endpoint head{config_.heads[head_index % config_.heads.size()],
                     config_.joshua_port};
  net::CallOptions options;
  options.timeout = config_.rpc_timeout;
  call(head, encode_plugin(JMutexRequest{job, on_behalf, host_id(), replicas}),
       [this, job, on_behalf, replicas, head_index, tries_left,
        done = std::move(done)](std::optional<sim::Payload> resp) mutable {
         if (!resp.has_value()) {
           jmutex_attempt(job, on_behalf, replicas, head_index + 1,
                          tries_left - 1, std::move(done));
           return;
         }
         try {
           JMutexResponse r = decode_jmutex_response(*resp);
           if (r.won) {
             ++wins_;
             done(pbs::PrologueDecision::kRun);
           } else {
             ++emulations_;
             done(pbs::PrologueDecision::kEmulate);
           }
         } catch (const net::WireError&) {
           jmutex_attempt(job, on_behalf, replicas, head_index + 1,
                          tries_left - 1, std::move(done));
         }
       },
       options);
}

void MomPlugin::jdone(const pbs::Job& job, int32_t exit_code,
                      std::function<void()> done) {
  execute(config_.script_proc, [this, id = job.id, exit_code,
                                done = std::move(done)]() mutable {
    jdone_attempt(id, exit_code, 0, config_.heads.size() + 1, std::move(done));
  });
}

void MomPlugin::jdone_attempt(pbs::JobId job, int32_t exit_code,
                              size_t head_index, size_t tries_left,
                              std::function<void()> done) {
  if (tries_left == 0) {
    // No head ordered the release: the job would stay live at every head
    // (completion is applied from the ordered MutexDone). Keep trying until
    // the head group comes back; the reports wait, they only confirm.
    set_timer(config_.rpc_timeout, [this, job, exit_code,
                                    done = std::move(done)]() mutable {
      jdone_attempt(job, exit_code, 0, config_.heads.size() + 1,
                    std::move(done));
    });
    return;
  }
  sim::Endpoint head{config_.heads[head_index % config_.heads.size()],
                     config_.joshua_port};
  net::CallOptions options;
  options.timeout = config_.rpc_timeout;
  call(head, encode_plugin(JDoneRequest{job, exit_code, host_id()}),
       [this, job, exit_code, head_index, tries_left,
        done = std::move(done)](std::optional<sim::Payload> resp) mutable {
         if (!resp.has_value()) {
           jdone_attempt(job, exit_code, head_index + 1, tries_left - 1,
                         std::move(done));
           return;
         }
         done();
       },
       options);
}

}  // namespace joshua
