#include "joshua/client.h"

#include "sim/calibration.h"
#include "util/logging.h"

namespace joshua {

ClientConfig joshua_client_config_from(const sim::Calibration& cal,
                                       std::vector<sim::Endpoint> heads) {
  ClientConfig cfg;
  cfg.heads = std::move(heads);
  cfg.cmd_startup = cal.cmd_startup;
  cfg.cmd_teardown = cal.cmd_teardown;
  return cfg;
}

Client::Client(sim::Network& net, sim::HostId host, sim::Port port,
               ClientConfig config)
    : net::RpcNode(net, host, port, "jclient@" + net.host(host).name()),
      config_(std::move(config)) {
  if (config_.heads.empty())
    throw std::invalid_argument("joshua::Client: no heads configured");
}

template <typename Response, typename Decode>
void Client::attempt(sim::Payload request, Decode decode,
                     std::function<void(std::optional<Response>)> done,
                     size_t tries_left) {
  net::CallOptions options;
  options.timeout = config_.timeout;
  sim::Endpoint head = config_.heads[current_head_];
  call(head, request,
       [this, request, decode, done = std::move(done), tries_left](
           std::optional<sim::Payload> resp) mutable {
         if (!resp.has_value()) {
           // This head is unreachable: fail over to the next one.
           if (tries_left <= 1) {
             done(std::nullopt);
             return;
           }
           current_head_ = (current_head_ + 1) % config_.heads.size();
           ++failovers_;
           JLOG(kInfo, "joshua") << name() << " failing over to head "
                                 << current_head_;
           attempt<Response>(std::move(request), decode, std::move(done),
                             tries_left - 1);
           return;
         }
         std::optional<Response> decoded;
         try {
           decoded = decode(*resp);
         } catch (const net::WireError&) {
           decoded = std::nullopt;
         }
         execute(config_.cmd_teardown,
                 [done = std::move(done), decoded = std::move(decoded)] {
                   done(decoded);
                 });
       },
       options);
}

template <typename Response, typename Decode>
void Client::run_command(sim::Payload request, Decode decode,
                         std::function<void(std::optional<Response>)> done) {
  execute(config_.cmd_startup, [this, request = std::move(request), decode,
                                done = std::move(done)]() mutable {
    attempt<Response>(std::move(request), decode, std::move(done),
                      config_.heads.size());
  });
}

void Client::jsub(pbs::JobSpec spec,
                  std::function<void(std::optional<pbs::SubmitResponse>)> done) {
  run_command<pbs::SubmitResponse>(
      pbs::encode_request(pbs::SubmitRequest{std::move(spec)}),
      [](const sim::Payload& p) { return pbs::decode_submit_response(p); },
      std::move(done));
}

void Client::jstat(pbs::StatRequest req,
                   std::function<void(std::optional<pbs::StatResponse>)> done) {
  run_command<pbs::StatResponse>(
      pbs::encode_request(req),
      [](const sim::Payload& p) { return pbs::decode_stat_response(p); },
      std::move(done));
}

void Client::jdel(pbs::JobId id,
                  std::function<void(std::optional<pbs::SimpleResponse>)> done) {
  run_command<pbs::SimpleResponse>(
      pbs::encode_request(pbs::DeleteRequest{id}),
      [](const sim::Payload& p) { return pbs::decode_simple_response(p); },
      std::move(done));
}

void Client::jhold(pbs::JobId id,
                   std::function<void(std::optional<pbs::SimpleResponse>)> done) {
  run_command<pbs::SimpleResponse>(
      pbs::encode_request(pbs::HoldRequest{id}),
      [](const sim::Payload& p) { return pbs::decode_simple_response(p); },
      std::move(done));
}

void Client::jrls(pbs::JobId id,
                  std::function<void(std::optional<pbs::SimpleResponse>)> done) {
  run_command<pbs::SimpleResponse>(
      pbs::encode_request(pbs::ReleaseRequest{id}),
      [](const sim::Payload& p) { return pbs::decode_simple_response(p); },
      std::move(done));
}

}  // namespace joshua
