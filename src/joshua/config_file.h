// Configuration-file front end for the cluster harness.
//
// JOSHUA v0.1 reads its deployment from libconfuse-style configuration
// files (Figure 9); this maps the same format onto ClusterOptions:
//
//   heads = 2                # head-node count
//   computes = 2             # compute-node count
//   transfer = replay        # replay | snapshot
//   auto_rejoin = false
//   quirk_mom = false
//   require_majority = false
//   seed = 1
//   scheduler {
//     policy = fifo          # fifo | backfill
//     exclusive = true
//   }
//   gcs {
//     heartbeat_ms = 100
//     suspect_ms = 500
//     flush_ms = 1200
//   }
//   shards {                 # federation layout (optional; default 1 shard)
//     count = 2
//     stride = 4294967296    # job-id block per shard (optional)
//     shard 0 {
//       heads = {0, 1}       # indexes into the head list
//       queues = {"batch*"}  # queue globs this shard owns
//     }
//     shard 1 {
//       heads = {2, 3}
//       queues = {"*"}
//     }
//   }
#pragma once

#include <string_view>

#include "joshua/cluster.h"
#include "util/config.h"

namespace joshua {

/// Parse a configuration file body into ClusterOptions. Unknown keys are
/// ignored (forward compatibility); invalid values throw
/// jutil::ConfigError.
ClusterOptions cluster_options_from_config(std::string_view text);

/// Render options back to configuration-file syntax (round-trippable).
std::string cluster_options_to_config(const ClusterOptions& options);

}  // namespace joshua
