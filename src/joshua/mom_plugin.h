// The compute-node side of JOSHUA: jmutex and jdone.
//
// "The JOSHUA scripts are part of the job start prologue and perform a
// distributed mutual exclusion using the Transis group communication system
// to ensure that the job gets started only once, and to emulate the job
// start for all other attempts for this particular job" (Section 4).
//
// The plugin installs itself as the mom's prologue and epilogue:
//   prologue (jmutex): asks the requesting head's joshua server for the
//     job-start mutex; the head multicasts the request AGREED, so the first
//     request in total order wins at every head. If the head does not
//     answer (it died), the plugin rotates to the other heads, which can
//     arbitrate on its behalf.
//   epilogue (jdone): tells a head the real run finished so the mutual
//     exclusion is released group-wide, then the mom's statistics reports
//     fan out to every requesting head.
#pragma once

#include <functional>
#include <vector>

#include "joshua/protocol.h"
#include "net/rpc.h"
#include "pbs/mom.h"

namespace joshua {

struct MomPluginConfig {
  sim::Port port = 17002;
  std::vector<sim::HostId> heads;   ///< head-node hosts
  sim::Port joshua_port = 17000;
  sim::Duration rpc_timeout = sim::seconds(2);
  sim::Duration script_proc = sim::msec(3);  ///< prologue/epilogue fork cost
};

class MomPlugin : public net::RpcNode {
 public:
  MomPlugin(sim::Network& net, sim::HostId host, MomPluginConfig config);

  /// Install jmutex/jdone as the mom's prologue/epilogue.
  void attach(pbs::Mom& mom);

  uint64_t mutex_attempts() const { return mutex_attempts_; }
  uint64_t wins() const { return wins_; }
  uint64_t emulations() const { return emulations_; }
  uint64_t aborts() const { return aborts_; }

 protected:
  void on_request(sim::Payload, sim::Endpoint, uint64_t) override {}

 private:
  void jmutex(const pbs::Job& job, sim::HostId requesting_head,
              std::function<void(pbs::PrologueDecision)> done);
  void jmutex_attempt(pbs::JobId job, sim::HostId on_behalf,
                      uint32_t replicas, size_t head_index, size_t tries_left,
                      std::function<void(pbs::PrologueDecision)> done);
  void jdone(const pbs::Job& job, int32_t exit_code,
             std::function<void()> done);
  void jdone_attempt(pbs::JobId job, int32_t exit_code, size_t head_index,
                     size_t tries_left, std::function<void()> done);
  size_t head_index_of(sim::HostId host) const;

  MomPluginConfig config_;
  uint64_t mutex_attempts_ = 0;
  uint64_t wins_ = 0;
  uint64_t emulations_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace joshua
