// Test-cluster harness: assembles the paper's testbed in one object.
//
// "up to 4 head nodes and 2 compute nodes in various combinations"
// (Section 5): N head nodes each running a PBS server + JOSHUA server, M
// compute nodes each running a PBS mom + JOSHUA mom plugin, plus a login
// node for clients. Also builds the plain-TORQUE baseline (no JOSHUA) used
// by Figures 10 and 11.
#pragma once

#include <memory>
#include <vector>

#include "gcs/ordering_engine.h"
#include "joshua/client.h"
#include "joshua/mom_plugin.h"
#include "joshua/server.h"
#include "pbs/client.h"
#include "pbs/mom.h"
#include "pbs/server.h"
#include "sim/calibration.h"
#include "sim/failure.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace joshua {

/// Federation layout (the configuration file's `shards` section): how the
/// job-id space / queue set is partitioned across independent ordering
/// groups. `Cluster` itself ignores it -- count <= 1 is the paper's single
/// replication group -- and `fed::Federation` consumes it to wire one gcs
/// group + PBS replica set per shard.
struct ShardLayout {
  int count = 1;
  /// Job-id block size per shard; 0 = the federation default (2^32).
  pbs::JobId id_stride = 0;
  /// Per shard: indexes into the cluster's head list. Must partition
  /// 0..heads-1 when count > 1.
  std::vector<std::vector<int>> heads;
  /// Per shard: queue globs this shard owns (may be empty everywhere, in
  /// which case submits place by hash of the queue name).
  std::vector<std::vector<std::string>> queues;
  bool sharded() const { return count > 1; }
};

struct ClusterOptions {
  int head_count = 2;
  int compute_count = 2;
  sim::Calibration cal = sim::paper_testbed();
  /// false = plain TORQUE: no JOSHUA servers/plugins; clients talk straight
  /// to the (single) PBS server.
  bool with_joshua = true;
  TransferMode transfer = TransferMode::kReplay;
  bool auto_rejoin = false;
  bool quirk_mom = false;  ///< the paper's observed TORQUE report deficiency
  bool require_majority = false;
  /// Heartbeat-based compute-node failure detection at every PBS server.
  /// Zero = off, the paper's behaviour (a dead compute node's job dies with
  /// it); nonzero enables failover (requeue of jobs left with no replica).
  sim::Duration mom_heartbeat = sim::kDurationZero;
  uint32_t heartbeat_miss_limit = 3;
  pbs::SchedulerConfig sched{};  ///< default: FIFO, exclusive cluster
  uint64_t seed = 1;
  /// gcs timing overrides; zero keeps the GroupConfig defaults.
  sim::Duration gcs_heartbeat = sim::kDurationZero;
  sim::Duration gcs_suspect = sim::kDurationZero;
  sim::Duration gcs_flush = sim::kDurationZero;
  /// Total-order engine for the replication group (defaults to the
  /// JOSHUA_ORDERING environment variable, then all-ack).
  gcs::OrderingMode ordering = gcs::ordering_mode_from_env();
  /// Ordering hot-path batching: max stamps per token announcement / data
  /// messages coalesced per ack cut (0 = legacy unbatched). Defaults to the
  /// JOSHUA_ORDER_BATCH environment variable, then 0.
  uint32_t order_batch = gcs::order_batch_from_env();
  /// Sender flow-control window: own undelivered AGREED/SAFE multicasts a
  /// member may pipeline before further sends queue (0 = unbounded, the
  /// legacy behaviour). Defaults to JOSHUA_ORDER_WINDOW, then 0.
  uint32_t order_window = gcs::order_window_from_env();
  /// Federation layout; ignored by Cluster (see ShardLayout).
  ShardLayout shards{};
};

/// Well-known ports of the testbed.
struct Ports {
  static constexpr sim::Port kGcs = 7000;
  static constexpr sim::Port kPbsServer = 15001;
  static constexpr sim::Port kMom = 15002;
  static constexpr sim::Port kJoshua = 17000;
  static constexpr sim::Port kMomPlugin = 17002;
  static constexpr sim::Port kClientBase = 20000;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation& sim() { return sim_; }
  sim::Network& net() { return net_; }
  sim::FailureInjector& faults() { return faults_; }
  const ClusterOptions& options() const { return options_; }

  const std::vector<sim::HostId>& head_hosts() const { return head_hosts_; }
  const std::vector<sim::HostId>& compute_hosts() const {
    return compute_hosts_;
  }
  sim::HostId login_host() const { return login_host_; }

  pbs::Server& pbs_server(size_t head) { return *pbs_servers_.at(head); }
  pbs::Mom& mom(size_t compute) { return *moms_.at(compute); }
  Server& joshua_server(size_t head) { return *joshua_servers_.at(head); }
  MomPlugin& mom_plugin(size_t compute) { return *plugins_.at(compute); }
  size_t head_count() const { return pbs_servers_.size(); }
  size_t compute_count() const { return moms_.size(); }

  /// Start every JOSHUA server (joins the group). No-op without JOSHUA.
  void start();

  /// Run the simulation until all live heads share one installed view (or
  /// the deadline passes). Returns true on convergence.
  bool run_until_converged(sim::Duration deadline = sim::seconds(30));

  /// True when every live head's gcs agrees on one view of size
  /// `expected_members`.
  bool converged(size_t expected_members) const;

  /// A JOSHUA client on the login node knowing every head.
  Client& make_jclient();
  /// A plain PBS client on the login node talking to one head directly.
  pbs::Client& make_pbs_client(size_t head);

  /// Endpoint helpers.
  sim::Endpoint joshua_endpoint(size_t head) const {
    return {head_hosts_.at(head), Ports::kJoshua};
  }
  sim::Endpoint pbs_endpoint(size_t head) const {
    return {head_hosts_.at(head), Ports::kPbsServer};
  }

 private:
  ClusterOptions options_;
  sim::Simulation sim_;
  sim::Network net_;
  sim::FailureInjector faults_;
  std::vector<sim::HostId> head_hosts_;
  std::vector<sim::HostId> compute_hosts_;
  sim::HostId login_host_ = sim::kInvalidHost;
  std::vector<std::unique_ptr<pbs::Server>> pbs_servers_;
  std::vector<std::unique_ptr<pbs::Mom>> moms_;
  std::vector<std::unique_ptr<Server>> joshua_servers_;
  std::vector<std::unique_ptr<MomPlugin>> plugins_;
  std::vector<std::unique_ptr<Client>> jclients_;
  std::vector<std::unique_ptr<pbs::Client>> pbs_clients_;
  sim::Port next_client_port_ = Ports::kClientBase;
};

}  // namespace joshua
