// JOSHUA control commands: jsub, jstat, jdel (+ jhold/jrls in snapshot
// transfer mode).
//
// "The JOSHUA control commands may be invoked on any of the active head
// nodes or from a separate login node as they contact the JOSHUA server
// group via the network" (Section 4). The client therefore holds the whole
// head list and fails over to the next head when one does not answer --
// this is what makes the service continuously available to users across
// head-node failures. Aliasing qsub=jsub gives 100% PBS interface
// compliance, which these wrappers mirror by speaking the PBS wire ops.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/rpc.h"
#include "pbs/protocol.h"

namespace sim {
struct Calibration;
}

namespace joshua {

struct ClientConfig {
  std::vector<sim::Endpoint> heads;  ///< joshua servers, any order
  sim::Duration cmd_startup = sim::msec(14);
  sim::Duration cmd_teardown = sim::msec(4);
  /// Per-head timeout; total worst case = timeout * heads.
  sim::Duration timeout = sim::seconds(8);
};

ClientConfig joshua_client_config_from(const sim::Calibration& cal,
                                       std::vector<sim::Endpoint> heads);

class Client : public net::RpcNode {
 public:
  Client(sim::Network& net, sim::HostId host, sim::Port port,
         ClientConfig config);

  const ClientConfig& config() const { return config_; }
  /// Adjust the per-head timeout (deployment knob: how fast commands fail
  /// over to the next head).
  void set_timeout(sim::Duration timeout) { config_.timeout = timeout; }
  /// Index of the head the last successful command used.
  size_t current_head() const { return current_head_; }
  uint64_t failovers() const { return failovers_; }

  void jsub(pbs::JobSpec spec,
            std::function<void(std::optional<pbs::SubmitResponse>)> done);
  void jstat(pbs::StatRequest req,
             std::function<void(std::optional<pbs::StatResponse>)> done);
  void jdel(pbs::JobId id,
            std::function<void(std::optional<pbs::SimpleResponse>)> done);
  void jhold(pbs::JobId id,
             std::function<void(std::optional<pbs::SimpleResponse>)> done);
  void jrls(pbs::JobId id,
            std::function<void(std::optional<pbs::SimpleResponse>)> done);

 protected:
  void on_request(sim::Payload, sim::Endpoint, uint64_t) override {}

 private:
  template <typename Response, typename Decode>
  void run_command(sim::Payload request, Decode decode,
                   std::function<void(std::optional<Response>)> done);
  template <typename Response, typename Decode>
  void attempt(sim::Payload request, Decode decode,
               std::function<void(std::optional<Response>)> done,
               size_t tries_left);

  ClientConfig config_;
  size_t current_head_ = 0;
  uint64_t failovers_ = 0;
};

}  // namespace joshua
