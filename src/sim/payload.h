// Immutable, cheaply shareable byte buffer.
//
// Payload is the unit of data carried by every simulated packet and stored in
// every retention log. It used to be a plain std::vector<uint8_t>, which made
// a broadcast to N hosts cost N full buffer copies; now the bytes live in one
// shared, immutable allocation and a Payload is a (refcounted owner, span)
// view onto it. Copying a Payload bumps a refcount; slicing (net::Reader
// extracting a nested message body) shares the parent's storage with zero
// copies. The byte contents are immutable after construction -- the only
// mutation ever needed by the codebase is resize(), where shrinking is O(1)
// view-narrowing and growth (test-only) copies out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace sim {

class Payload {
 public:
  using value_type = uint8_t;
  using const_iterator = const uint8_t*;

  Payload() = default;

  Payload(std::initializer_list<uint8_t> init) {
    adopt_vector(std::vector<uint8_t>(init));
  }

  Payload(size_t n, uint8_t fill) {
    adopt_vector(std::vector<uint8_t>(n, fill));
  }

  template <typename It>
  Payload(It first, It last) {
    adopt_vector(std::vector<uint8_t>(first, last));
  }

  /// Take ownership of an already-built buffer without copying it (the
  /// net::Writer fast path).
  static Payload adopt(std::vector<uint8_t>&& bytes) {
    Payload p;
    p.adopt_vector(std::move(bytes));
    return p;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }
  uint8_t front() const { return data_[0]; }
  uint8_t back() const { return data_[size_ - 1]; }

  /// Sub-range view sharing this payload's storage (no copy). The slice
  /// keeps the whole underlying buffer alive.
  Payload slice(size_t offset, size_t len) const {
    Payload p;
    p.owner_ = owner_;
    p.data_ = data_ + offset;
    p.size_ = len;
    return p;
  }

  /// Shrinking narrows the view in O(1); growing copies into fresh storage
  /// (zero-filled tail), which only tests exercise.
  void resize(size_t n) {
    if (n <= size_) {
      size_ = n;
      return;
    }
    std::vector<uint8_t> bytes(n, 0);
    std::memcpy(bytes.data(), data_, size_);
    adopt_vector(std::move(bytes));
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    if (a.size_ != b.size_) return false;
    if (a.size_ == 0 || a.data_ == b.data_) return true;
    return std::memcmp(a.data_, b.data_, a.size_) == 0;
  }
  friend bool operator!=(const Payload& a, const Payload& b) {
    return !(a == b);
  }

 private:
  void adopt_vector(std::vector<uint8_t>&& bytes) {
    if (bytes.empty()) {
      owner_.reset();
      data_ = nullptr;
      size_ = 0;
      return;
    }
    auto owned = std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }

  std::shared_ptr<const std::vector<uint8_t>> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sim
