#include "sim/calibration.h"

namespace sim {

Calibration fast_calibration() {
  Calibration cal;
  cal.network.stack_latency = usec(10);
  cal.network.local_ipc = usec(10);
  cal.network.propagation = usec(5);
  cal.network.jitter = usec(0);
  cal.cmd_startup = usec(100);
  cal.cmd_teardown = usec(50);
  cal.pbs_submit_proc = usec(200);
  cal.pbs_stat_proc = usec(100);
  cal.pbs_del_proc = usec(100);
  cal.pbs_sched_cycle = usec(100);
  cal.pbs_mom_launch = usec(100);
  cal.joshua_cmd_proc = usec(50);
  cal.joshua_exec_proc = usec(50);
  cal.joshua_relay_proc = usec(20);
  cal.gcs_send_proc = usec(20);
  cal.gcs_data_proc = usec(50);
  cal.gcs_ack_proc = usec(40);
  cal.gcs_self_deliver = usec(10);
  return cal;
}

}  // namespace sim
