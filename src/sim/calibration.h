// Cost-model constants calibrated to the paper's testbed (Section 5):
// dual Pentium III (Katmai) 450 MHz head nodes, 100 Mbit/s Fast Ethernet hub,
// Debian 3.1, Transis v1.03 + TORQUE v2.0p5 + Maui v3.2.6p13 + JOSHUA v0.1.
//
// These constants do NOT encode the paper's result tables. They encode
// per-operation costs of that hardware/software generation; the measured
// latency/throughput tables then *emerge* from the protocols' actual message
// patterns in the simulator. EXPERIMENTS.md records how close the emergent
// numbers land to Figures 10-12.
#pragma once

#include "sim/network.h"
#include "sim/time.h"

namespace sim {

struct Calibration {
  // ---- network (shared Fast-Ethernet hub) --------------------------------
  NetworkConfig network{};  // defaults already model the hub

  // ---- client command costs (fork/exec + connect of qsub/jsub etc.) -------
  Duration cmd_startup = msec(14);    ///< spawning a PBS/JOSHUA CLI tool
  Duration cmd_teardown = msec(4);    ///< output print + exit

  // ---- TORQUE PBS server ---------------------------------------------------
  Duration pbs_submit_proc = msec(79);  ///< qsub handling: validate, queue,
                                        ///< persist to disk, ack
  Duration pbs_stat_proc = msec(22);    ///< qstat handling
  Duration pbs_del_proc = msec(30);     ///< qdel handling
  Duration pbs_sched_cycle = msec(12);  ///< one Maui scheduling iteration
  Duration pbs_mom_launch = msec(25);   ///< mom-side job start (incl. prologue
                                        ///< fork) before the job itself runs

  // ---- JOSHUA server --------------------------------------------------------
  Duration joshua_cmd_proc = msec(6);   ///< intercepting one client command
  Duration joshua_exec_proc = msec(8);  ///< issuing the local PBS command
  Duration joshua_relay_proc = msec(4); ///< relaying output to the client

  // ---- Transis-equivalent group communication ------------------------------
  Duration gcs_send_proc = msec(5);    ///< protocol send path
  Duration gcs_data_proc = msec(78);   ///< receive+order+deliver one data
                                       ///< message through the daemon chain
  Duration gcs_ack_proc = msec(42);    ///< receive+process one ack/stability
                                       ///< message (serialized on the CPU --
                                       ///< the source of the per-head linear
                                       ///< latency growth)
  Duration gcs_self_deliver = msec(3); ///< single-member fast path
};

/// The paper's testbed. Benches and integration tests start from this.
inline Calibration paper_testbed() { return Calibration{}; }

/// A zero-cost calibration for protocol unit tests where only ordering and
/// delivery semantics matter, not timing.
Calibration fast_calibration();

}  // namespace sim
