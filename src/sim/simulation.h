// Discrete-event simulation engine.
//
// A Simulation owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in scheduling order (FIFO tie-break), which keeps
// every run bit-reproducible for a given seed and workload.
//
// The event core is allocation-free in steady state: events live in a slab
// pool threaded with a free list, the ready queue is a 4-ary min-heap of
// (time, sequence) keys over pool slots, and callbacks are sim::EventFn
// (48-byte inline storage). cancel() is O(1) lazy cancellation -- it marks
// the pool slot and drops the callback; the heap entry is discarded when it
// surfaces. Event ids encode (slot, generation) so cancelling an already
// fired or never-issued id is always a safe no-op.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"
#include "telemetry/hub.h"
#include "util/rng.h"

namespace sim {

using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }
  jutil::Rng& rng() { return rng_; }

  /// Per-simulation telemetry: metrics registry + structured trace ring.
  /// Observation only -- nothing in it feeds back into event ordering, so
  /// instrumented and uninstrumented runs are bit-identical.
  telemetry::Hub& telemetry() { return telemetry_; }
  const telemetry::Hub& telemetry() const { return telemetry_; }

  /// Schedule `fn` to run `delay` from now (delay must be >= 0).
  EventId schedule(Duration delay, EventFn fn);

  /// Schedule `fn` at an absolute instant (>= now()).
  EventId schedule_at(Time at, EventFn fn);

  /// Cancel a pending event. Safe to call for already-fired or cancelled ids.
  void cancel(EventId id);

  /// True while `id` names a scheduled, uncancelled, not-yet-fired event.
  bool event_pending(EventId id) const;

  /// Run the next event; false when the queue is empty or stop() was called.
  bool step();

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run events with timestamp <= t, then set the clock to t.
  void run_until(Time t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Timestamp of the next live event, or kTimeInfinity when none is
  /// pending. Prunes cancelled corpses off the top of the heap as a side
  /// effect (they carry no information).
  Time next_event_time();

  /// Abort run()/run_until() after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Number of events executed so far (for tests and sanity limits).
  uint64_t events_executed() const { return executed_; }
  size_t pending_events() const { return live_; }

 private:
  static constexpr uint32_t kNilSlot = 0xffffffff;

  /// Pool slot: callback storage plus the generation tag that validates
  /// EventIds after the slot is recycled.
  struct Slot {
    EventFn fn;
    uint32_t gen = 1;
    uint32_t next_free = kNilSlot;
    bool armed = false;
    bool cancelled = false;
  };

  /// Heap key: (time, scheduling sequence) packed into one 128-bit integer
  /// so the FIFO tie-break is a single branchless compare. Simulated time is
  /// never negative, so the packing is order-preserving.
  using HeapKey = unsigned __int128;

  static HeapKey make_key(Time at, uint64_t seq) {
    return (static_cast<HeapKey>(static_cast<uint64_t>(at.us)) << 64) | seq;
  }
  static Time key_time(HeapKey key) {
    return Time{static_cast<int64_t>(static_cast<uint64_t>(key >> 64))};
  }

  struct HeapEntry {
    HeapKey key;
    uint32_t slot;
  };

  static EventId make_id(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  EventId enqueue(Time at, EventFn fn);
  uint32_t alloc_slot();
  void free_slot(uint32_t slot);
  void heap_push(HeapEntry entry);
  void heap_pop_root();
  void sift_up(size_t i);
  /// Pop-side rebalance: walk the hole at `i` down the min-child path to a
  /// leaf, then bubble `displaced` (the old back element) up from there.
  /// Cheaper than classic sift-down because the displaced element is almost
  /// always heavy and sinks back near the leaves anyway.
  void sift_down_hole(size_t i, HeapEntry displaced);

  Time now_{0};
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  size_t live_ = 0;  ///< scheduled, uncancelled, not yet fired
  std::vector<Slot> pool_;
  uint32_t free_head_ = kNilSlot;
  std::vector<HeapEntry> heap_;
  jutil::Rng rng_;
  telemetry::Hub telemetry_;
};

}  // namespace sim
