// Discrete-event simulation engine.
//
// A Simulation owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in scheduling order (FIFO tie-break), which keeps
// every run bit-reproducible for a given seed and workload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace sim {

using EventId = uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }
  jutil::Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` from now (delay must be >= 0).
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute instant (>= now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Cancel a pending event. Safe to call for already-fired or cancelled ids.
  void cancel(EventId id);

  /// Run the next event; false when the queue is empty or stop() was called.
  bool step();

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run events with timestamp <= t, then set the clock to t.
  void run_until(Time t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Abort run()/run_until() after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Number of events executed so far (for tests and sanity limits).
  uint64_t events_executed() const { return executed_; }
  size_t pending_events() const;

 private:
  struct Event {
    Time at;
    EventId id = kInvalidEvent;
    std::function<void()> fn;
    bool cancelled = false;
  };
  struct QueueRef {
    Time at;
    EventId id;
    std::shared_ptr<Event> event;
    // Min-heap by (time, id): std::priority_queue is a max-heap, so invert.
    bool operator<(const QueueRef& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  EventId enqueue(Time at, std::function<void()> fn);

  Time now_{0};
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  size_t cancelled_pending_ = 0;
  std::priority_queue<QueueRef> queue_;
  std::unordered_map<EventId, std::shared_ptr<Event>> index_;
  jutil::Rng rng_;
};

}  // namespace sim
