// Fault injection: deterministic scripts and stochastic MTTF/MTTR schedules.
//
// The paper simulated failures "by unplugging network cables and by forcibly
// shutting down individual processes"; this module is the programmatic
// equivalent, plus an exponential failure/repair generator used by the
// availability experiments.
#pragma once

#include <functional>
#include <vector>

#include "sim/network.h"
#include "sim/simulation.h"

namespace sim {

class FailureInjector {
 public:
  explicit FailureInjector(Network& net) : net_(net) {}

  // -- scripted faults -------------------------------------------------------

  /// Crash `host` at absolute time `at`.
  void crash_at(HostId host, Time at);
  /// Restart `host` at absolute time `at`.
  void restart_at(HostId host, Time at);
  /// Crash at `at`, restart after `outage`.
  void outage(HostId host, Time at, Duration outage_len);
  /// Move `host` into partition `island` at `at` (cable pull), back at `heal`.
  void partition(HostId host, int island, Time at, Time heal);

  // -- stochastic faults -----------------------------------------------------

  /// Drive `host` through an exponential fail/repair process with the given
  /// mean time to failure / mean time to restore, until `until`. Failure and
  /// repair times are drawn from the simulation RNG. Returns how many
  /// failures were scheduled.
  int random_failures(HostId host, Duration mttf, Duration mttr, Time until);

  // -- compute-plane faults --------------------------------------------------
  //
  // The compute-failover experiments distinguish how a compute node dies:
  // a crash loses the mom's volatile state, a hang keeps the process alive
  // but unreachable (modelled as a single-host partition), and a segment
  // partition takes a whole compute island away at once.

  enum class ComputeFaultKind : uint8_t { kCrash = 0, kHang = 1, kPartition = 2 };

  struct ComputeFault {
    HostId host;
    ComputeFaultKind kind;
    Time at;
    Time heal;
  };

  /// Hang `host` from `at` to `heal`: the mom process survives but is
  /// unreachable (cable-pull into a private island). Unlike a crash, state
  /// is NOT lost, so the job it was running may still complete after heal.
  void mom_hang(HostId host, Time at, Time heal);

  /// Partition every host in `hosts` into one island (a failed compute
  /// segment switch) from `at` to `heal`.
  void segment_partition(const std::vector<HostId>& hosts, int island, Time at,
                         Time heal);

  /// Exponential compute-fault process over a pool of compute nodes: each
  /// fault picks a victim and a kind (crash-heavy mix: 60% crash, 25% hang,
  /// 15% pair partition) from the simulation RNG. Returns faults scheduled.
  int random_compute_faults(const std::vector<HostId>& hosts, Duration mttf,
                            Duration mttr, Time until);

  /// Every compute fault scheduled so far (crashes recorded here in addition
  /// to the outage ledger).
  const std::vector<ComputeFault>& compute_faults() const {
    return compute_faults_;
  }

  /// Total downtime recorded so far for a host via this injector's
  /// crash/restart pairs (valid after the simulation ran). Computed as the
  /// union of the scripted intervals: overlapping outages are merged rather
  /// than double-counted, and an outage with no scheduled restart extends to
  /// the current simulation time.
  Duration recorded_downtime(HostId host) const;

  /// All (host, crash_time, restart_time) triples scheduled so far.
  struct Outage {
    HostId host;
    Time down;
    Time up;  ///< kTimeInfinity when no restart was scheduled
  };
  const std::vector<Outage>& outages() const { return outages_; }

 private:
  Network& net_;
  std::vector<Outage> outages_;
  std::vector<ComputeFault> compute_faults_;
};

}  // namespace sim
