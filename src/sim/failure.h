// Fault injection: deterministic scripts and stochastic MTTF/MTTR schedules.
//
// The paper simulated failures "by unplugging network cables and by forcibly
// shutting down individual processes"; this module is the programmatic
// equivalent, plus an exponential failure/repair generator used by the
// availability experiments.
#pragma once

#include <functional>
#include <vector>

#include "sim/network.h"
#include "sim/simulation.h"

namespace sim {

class FailureInjector {
 public:
  explicit FailureInjector(Network& net) : net_(net) {}

  // -- scripted faults -------------------------------------------------------

  /// Crash `host` at absolute time `at`.
  void crash_at(HostId host, Time at);
  /// Restart `host` at absolute time `at`.
  void restart_at(HostId host, Time at);
  /// Crash at `at`, restart after `outage`.
  void outage(HostId host, Time at, Duration outage_len);
  /// Move `host` into partition `island` at `at` (cable pull), back at `heal`.
  void partition(HostId host, int island, Time at, Time heal);

  // -- stochastic faults -----------------------------------------------------

  /// Drive `host` through an exponential fail/repair process with the given
  /// mean time to failure / mean time to restore, until `until`. Failure and
  /// repair times are drawn from the simulation RNG. Returns how many
  /// failures were scheduled.
  int random_failures(HostId host, Duration mttf, Duration mttr, Time until);

  /// Total downtime recorded so far for a host via this injector's
  /// crash/restart pairs (valid after the simulation ran). Computed as the
  /// union of the scripted intervals: overlapping outages are merged rather
  /// than double-counted, and an outage with no scheduled restart extends to
  /// the current simulation time.
  Duration recorded_downtime(HostId host) const;

  /// All (host, crash_time, restart_time) triples scheduled so far.
  struct Outage {
    HostId host;
    Time down;
    Time up;  ///< kTimeInfinity when no restart was scheduled
  };
  const std::vector<Outage>& outages() const { return outages_; }

 private:
  Network& net_;
  std::vector<Outage> outages_;
};

}  // namespace sim
