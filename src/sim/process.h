// Actor base class: a service process bound to (host, port).
//
// Subclasses implement on_packet(); the base manages port binding, timers
// (auto-cancelled on host crash), CPU-charged message handling, and the
// crash/restart lifecycle. Process state persists across a host restart in
// the C++ object -- subclasses that model real daemons reset their volatile
// state in on_restart() and reload anything durable from host().disk().
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "sim/network.h"
#include "sim/simulation.h"

namespace sim {

using TimerId = EventId;

class Process : public IPacketHandler {
 public:
  /// Binds to (host, port) immediately.
  Process(Network& net, HostId host, Port port, std::string name);
  ~Process() override;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Endpoint endpoint() const { return {host_id_, port_}; }
  HostId host_id() const { return host_id_; }
  const std::string& name() const { return name_; }
  Network& net() { return net_; }
  Simulation& sim() { return net_.sim(); }
  Host& host() { return net_.host(host_id_); }
  bool host_up() const { return net_.host(host_id_).up(); }

  // -- messaging ---------------------------------------------------------

  void send(Endpoint dst, Payload data);
  void multicast(Port dst_port, Payload data, const std::vector<HostId>& dsts);

  // -- timers --------------------------------------------------------------

  /// One-shot timer; auto-cancelled if the host crashes first.
  TimerId set_timer(Duration delay, EventFn fn);
  void cancel_timer(TimerId id);

  /// Charge CPU time on this host, then run fn (discarded on crash).
  void execute(Duration cost, std::function<void()> fn) {
    host().execute(cost, std::move(fn));
  }

  // -- lifecycle (overridable) ----------------------------------------------

  /// Delivered packets arrive here (already past the host-up checks).
  virtual void on_packet(Packet packet) = 0;
  /// Host failed (fail-stop). Timers are already cancelled.
  virtual void on_crash() {}
  /// Host came back. Volatile state should be re-initialized here.
  virtual void on_restart() {}

  // IPacketHandler:
  void handle_packet(Packet packet) final;
  void handle_host_crash() final;
  void handle_host_restart() final;

 private:
  Network& net_;
  HostId host_id_;
  Port port_;
  std::string name_;
  std::set<TimerId> timers_;
};

}  // namespace sim
