#include "sim/failure.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace sim {

void FailureInjector::crash_at(HostId host, Time at) {
  net_.sim().schedule_at(at, [this, host] { net_.crash_host(host); });
  outages_.push_back({host, at, kTimeInfinity});
}

void FailureInjector::restart_at(HostId host, Time at) {
  net_.sim().schedule_at(at, [this, host] { net_.restart_host(host); });
  // Close the most recent open outage for this host, if any.
  for (auto it = outages_.rbegin(); it != outages_.rend(); ++it) {
    if (it->host == host && it->up == kTimeInfinity) {
      it->up = at;
      return;
    }
  }
  outages_.push_back({host, kTimeZero, at});
}

void FailureInjector::outage(HostId host, Time at, Duration outage_len) {
  crash_at(host, at);
  restart_at(host, at + outage_len);
}

void FailureInjector::partition(HostId host, int island, Time at, Time heal) {
  net_.sim().schedule_at(at,
                         [this, host, island] { net_.set_partition(host, island); });
  net_.sim().schedule_at(heal, [this, host] { net_.set_partition(host, 0); });
}

int FailureInjector::random_failures(HostId host, Duration mttf, Duration mttr,
                                     Time until) {
  jutil::Rng& rng = net_.sim().rng();
  Time t = net_.sim().now();
  int count = 0;
  while (true) {
    Duration up{static_cast<int64_t>(
        rng.exponential(static_cast<double>(mttf.us)))};
    Duration down{static_cast<int64_t>(
        rng.exponential(static_cast<double>(mttr.us)))};
    if (down.us < 1) down = usec(1);
    Time fail_at = t + up;
    if (fail_at >= until) return count;
    Time repair_at = std::min(fail_at + down, until);
    outage(host, fail_at, repair_at - fail_at);
    ++count;
    t = repair_at;
  }
}

Duration FailureInjector::recorded_downtime(HostId host) const {
  // Union of intervals: overlapping scripted outages must not double-count
  // the overlap (a host is either down or up at any instant), and an outage
  // without a scheduled restart extends to the current simulation time.
  Time now = net_.sim().now();
  std::vector<std::pair<Time, Time>> spans;
  for (const Outage& o : outages_) {
    if (o.host != host) continue;
    Time up = o.up == kTimeInfinity ? now : o.up;
    if (up > o.down) spans.emplace_back(o.down, up);
  }
  std::sort(spans.begin(), spans.end());
  Duration total{0};
  Time covered_until = kTimeZero;
  bool any = false;
  for (const auto& [down, up] : spans) {
    Time start = any ? std::max(down, covered_until) : down;
    if (up > start) total += up - start;
    covered_until = any ? std::max(covered_until, up) : up;
    any = true;
  }
  return total;
}

}  // namespace sim
