#include "sim/failure.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace sim {

void FailureInjector::crash_at(HostId host, Time at) {
  net_.sim().schedule_at(at, [this, host] { net_.crash_host(host); });
  outages_.push_back({host, at, kTimeInfinity});
}

void FailureInjector::restart_at(HostId host, Time at) {
  net_.sim().schedule_at(at, [this, host] { net_.restart_host(host); });
  // Close the most recent open outage for this host, if any.
  for (auto it = outages_.rbegin(); it != outages_.rend(); ++it) {
    if (it->host == host && it->up == kTimeInfinity) {
      it->up = at;
      return;
    }
  }
  outages_.push_back({host, kTimeZero, at});
}

void FailureInjector::outage(HostId host, Time at, Duration outage_len) {
  crash_at(host, at);
  restart_at(host, at + outage_len);
}

void FailureInjector::partition(HostId host, int island, Time at, Time heal) {
  net_.sim().schedule_at(at,
                         [this, host, island] { net_.set_partition(host, island); });
  net_.sim().schedule_at(heal, [this, host] { net_.set_partition(host, 0); });
}

int FailureInjector::random_failures(HostId host, Duration mttf, Duration mttr,
                                     Time until) {
  jutil::Rng& rng = net_.sim().rng();
  Time t = net_.sim().now();
  int count = 0;
  while (true) {
    Duration up{static_cast<int64_t>(
        rng.exponential(static_cast<double>(mttf.us)))};
    Duration down{static_cast<int64_t>(
        rng.exponential(static_cast<double>(mttr.us)))};
    if (down.us < 1) down = usec(1);
    Time fail_at = t + up;
    if (fail_at >= until) return count;
    Time repair_at = std::min(fail_at + down, until);
    outage(host, fail_at, repair_at - fail_at);
    ++count;
    t = repair_at;
  }
}

void FailureInjector::mom_hang(HostId host, Time at, Time heal) {
  // A hang is a reachability failure, not a state loss: model it as the
  // host alone in a private island. 1000+host keeps hang islands disjoint
  // from the small island numbers scripted partitions use.
  partition(host, 1000 + static_cast<int>(host), at, heal);
  compute_faults_.push_back({host, ComputeFaultKind::kHang, at, heal});
}

void FailureInjector::segment_partition(const std::vector<HostId>& hosts,
                                        int island, Time at, Time heal) {
  for (HostId host : hosts) {
    partition(host, island, at, heal);
    compute_faults_.push_back({host, ComputeFaultKind::kPartition, at, heal});
  }
}

int FailureInjector::random_compute_faults(const std::vector<HostId>& hosts,
                                           Duration mttf, Duration mttr,
                                           Time until) {
  if (hosts.empty()) return 0;
  jutil::Rng& rng = net_.sim().rng();
  Time t = net_.sim().now();
  int count = 0;
  // One pooled fault process: inter-fault gap scales with pool size (each
  // node fails with the given MTTF, so the pool fails hosts.size() times as
  // often), victim and kind drawn per fault.
  double pool_mttf =
      static_cast<double>(mttf.us) / static_cast<double>(hosts.size());
  while (true) {
    Duration up{static_cast<int64_t>(rng.exponential(pool_mttf))};
    Duration down{
        static_cast<int64_t>(rng.exponential(static_cast<double>(mttr.us)))};
    if (down.us < 1) down = usec(1);
    Time fail_at = t + up;
    if (fail_at >= until) return count;
    Time heal_at = std::min(fail_at + down, until);
    size_t vi = rng.next_u64(hosts.size());
    HostId victim = hosts[vi];
    double mix = rng.next_double();
    if (mix < 0.60) {
      outage(victim, fail_at, heal_at - fail_at);
      compute_faults_.push_back(
          {victim, ComputeFaultKind::kCrash, fail_at, heal_at});
    } else if (mix < 0.85 || hosts.size() < 2) {
      mom_hang(victim, fail_at, heal_at);
    } else {
      // Pair partition: the victim and a distinct pool neighbour share the
      // failed segment.
      HostId buddy =
          hosts[(vi + 1 + rng.next_u64(hosts.size() - 1)) % hosts.size()];
      segment_partition({victim, buddy}, 900 + count, fail_at, heal_at);
    }
    ++count;
    t = heal_at;
  }
}

Duration FailureInjector::recorded_downtime(HostId host) const {
  // Union of intervals: overlapping scripted outages must not double-count
  // the overlap (a host is either down or up at any instant), and an outage
  // without a scheduled restart extends to the current simulation time.
  Time now = net_.sim().now();
  std::vector<std::pair<Time, Time>> spans;
  for (const Outage& o : outages_) {
    if (o.host != host) continue;
    Time up = o.up == kTimeInfinity ? now : o.up;
    if (up > o.down) spans.emplace_back(o.down, up);
  }
  std::sort(spans.begin(), spans.end());
  Duration total{0};
  Time covered_until = kTimeZero;
  bool any = false;
  for (const auto& [down, up] : spans) {
    Time start = any ? std::max(down, covered_until) : down;
    if (up > start) total += up - start;
    covered_until = any ? std::max(covered_until, up) : up;
    any = true;
  }
  return total;
}

}  // namespace sim
