#include "sim/simulation.h"

#include <cassert>
#include <stdexcept>

namespace sim {

Simulation::Simulation(uint64_t seed) : rng_(seed) {}
Simulation::~Simulation() = default;

uint32_t Simulation::alloc_slot() {
  if (free_head_ != kNilSlot) {
    uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void Simulation::free_slot(uint32_t slot) {
  Slot& s = pool_[slot];
  s.fn.reset();
  s.armed = false;
  s.cancelled = false;
  ++s.gen;  // invalidate every id handed out for the previous occupancy
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulation::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

void Simulation::heap_pop_root() {
  HeapEntry back = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down_hole(0, back);
}

void Simulation::sift_up(size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 4;
    if (e.key >= heap_[parent].key) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::sift_down_hole(size_t i, HeapEntry displaced) {
  const size_t n = heap_.size();
  for (;;) {
    size_t child = 4 * i + 1;
    if (child >= n) break;
    size_t last = child + 4 < n ? child + 4 : n;
    size_t best = child;
    HeapKey best_key = heap_[child].key;
    for (size_t j = child + 1; j < last; ++j) {
      if (heap_[j].key < best_key) {
        best = j;
        best_key = heap_[j].key;
      }
    }
    heap_[i] = heap_[best];
    i = best;
  }
  // The hole is now a leaf; bubble the displaced element up to its place.
  while (i > 0) {
    size_t parent = (i - 1) / 4;
    if (displaced.key >= heap_[parent].key) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = displaced;
}

EventId Simulation::enqueue(Time at, EventFn fn) {
  uint32_t slot = alloc_slot();
  Slot& s = pool_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  s.cancelled = false;
  heap_push(HeapEntry{make_key(at, next_seq_++), slot});
  ++live_;
  return make_id(slot, s.gen);
}

EventId Simulation::schedule(Duration delay, EventFn fn) {
  if (delay.us < 0) throw std::invalid_argument("schedule: negative delay");
  return enqueue(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(Time at, EventFn fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  return enqueue(at, std::move(fn));
}

void Simulation::cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= pool_.size()) return;
  Slot& s = pool_[slot];
  if (!s.armed || s.gen != gen || s.cancelled) return;
  s.cancelled = true;
  s.fn.reset();  // release captures now; the heap entry dies lazily
  --live_;
}

bool Simulation::event_pending(EventId id) const {
  uint32_t slot = static_cast<uint32_t>(id);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= pool_.size()) return false;
  const Slot& s = pool_[slot];
  return s.armed && s.gen == gen && !s.cancelled;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.front();
    heap_pop_root();
    Slot& s = pool_[top.slot];
    if (s.cancelled) {
      free_slot(top.slot);
      continue;
    }
    assert(key_time(top.key) >= now_);
    now_ = key_time(top.key);
    ++executed_;
    --live_;
    EventFn fn = std::move(s.fn);
    free_slot(top.slot);
    fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

Time Simulation::next_event_time() {
  while (!heap_.empty() && pool_[heap_.front().slot].cancelled) {
    uint32_t slot = heap_.front().slot;
    heap_pop_root();
    free_slot(slot);
  }
  return heap_.empty() ? kTimeInfinity : key_time(heap_.front().key);
}

void Simulation::run_until(Time t) {
  stopped_ = false;
  while (!stopped_ && next_event_time() <= t && step()) {
  }
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace sim
