#include "sim/simulation.h"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace sim {

Simulation::Simulation(uint64_t seed) : rng_(seed) {}
Simulation::~Simulation() = default;

EventId Simulation::enqueue(Time at, std::function<void()> fn) {
  auto event = std::make_shared<Event>();
  event->at = at;
  event->id = next_id_++;
  event->fn = std::move(fn);
  queue_.push(QueueRef{at, event->id, event});
  index_[event->id] = event;
  return event->id;
}

EventId Simulation::schedule(Duration delay, std::function<void()> fn) {
  if (delay.us < 0) throw std::invalid_argument("schedule: negative delay");
  return enqueue(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  return enqueue(at, std::move(fn));
}

void Simulation::cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  it->second->cancelled = true;
  it->second->fn = nullptr;
  index_.erase(it);
  ++cancelled_pending_;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueueRef top = queue_.top();
    queue_.pop();
    if (top.event->cancelled) {
      --cancelled_pending_;
      continue;
    }
    index_.erase(top.id);
    assert(top.at >= now_);
    now_ = top.at;
    ++executed_;
    auto fn = std::move(top.event->fn);
    fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(Time t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    QueueRef top = queue_.top();
    if (top.event->cancelled) {
      queue_.pop();
      --cancelled_pending_;
      continue;
    }
    if (top.at > t) break;
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

size_t Simulation::pending_events() const {
  return queue_.size() - cancelled_pending_;
}

}  // namespace sim
