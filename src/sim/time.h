// Strong time types for the discrete-event simulation.
//
// All simulated time is kept in integer microseconds. Time is an absolute
// instant on the simulation clock; Duration is a signed interval. Keeping
// these as distinct types prevents the classic instant-vs-interval mixups.
#pragma once

#include <compare>
#include <cstdint>

namespace sim {

struct Duration {
  int64_t us = 0;

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {us + o.us}; }
  constexpr Duration operator-(Duration o) const { return {us - o.us}; }
  constexpr Duration operator-() const { return {-us}; }
  constexpr Duration& operator+=(Duration o) { us += o.us; return *this; }
  constexpr Duration& operator-=(Duration o) { us -= o.us; return *this; }
  constexpr Duration operator*(int64_t k) const { return {us * k}; }
  constexpr Duration operator/(int64_t k) const { return {us / k}; }

  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
  constexpr double millis() const { return static_cast<double>(us) / 1e3; }
};

struct Time {
  int64_t us = 0;

  constexpr auto operator<=>(const Time&) const = default;
  constexpr Time operator+(Duration d) const { return {us + d.us}; }
  constexpr Time operator-(Duration d) const { return {us - d.us}; }
  constexpr Duration operator-(Time o) const { return {us - o.us}; }
  constexpr Time& operator+=(Duration d) { us += d.us; return *this; }

  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
};

constexpr Duration usec(int64_t v) { return {v}; }
constexpr Duration msec(int64_t v) { return {v * 1000}; }
constexpr Duration seconds(int64_t v) { return {v * 1000000}; }
/// Fractional seconds, rounded to the microsecond grid.
constexpr Duration seconds_f(double v) {
  return {static_cast<int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5))};
}
constexpr Duration minutes(int64_t v) { return {v * 60 * 1000000}; }
constexpr Duration hours(int64_t v) { return {v * 3600 * 1000000}; }

constexpr Time kTimeZero{0};
constexpr Time kTimeInfinity{INT64_MAX};
constexpr Duration kDurationZero{0};

}  // namespace sim
