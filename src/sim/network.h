// Cluster model: hosts with a single-CPU execution queue, connected by a
// shared-medium Fast-Ethernet hub (the paper's testbed topology).
//
// Two modelling choices matter for reproducing the paper's numbers:
//
//  1. Each host has ONE CPU (dual P-III in the paper, but the service stack
//     is effectively serial); work submitted via Host::execute() is serviced
//     FIFO. This is what makes protocol cost grow linearly with the number of
//     acknowledgements a head node must process.
//
//  2. The LAN is a hub, i.e. a single shared half-duplex medium: a frame
//     occupies the medium for its serialization time and a physical multicast
//     costs ONE medium slot regardless of the receiver count.
//
// Failure injection: hosts crash (fail-stop) and restart with a new
// incarnation; in-flight packets to a crashed host are dropped; queued CPU
// work of an old incarnation never runs. Partitions assign hosts to
// communication islands.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/payload.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace sim {

using HostId = uint32_t;
using Port = uint16_t;
constexpr HostId kInvalidHost = 0xffffffff;

struct Endpoint {
  HostId host = kInvalidHost;
  Port port = 0;
  auto operator<=>(const Endpoint&) const = default;
};

struct Packet {
  Endpoint src;
  Endpoint dst;
  Payload data;
};

/// Receives packets delivered to a bound (host, port).
class IPacketHandler {
 public:
  virtual ~IPacketHandler() = default;
  virtual void handle_packet(Packet packet) = 0;
  /// The host this handler lives on just crashed / restarted.
  virtual void handle_host_crash() {}
  virtual void handle_host_restart() {}
};

struct NetworkConfig {
  /// Shared-medium bandwidth (100 Mbit/s Fast Ethernet hub, half duplex).
  double bandwidth_bps = 100e6;
  /// Ethernet + IP + UDP framing overhead added to every frame.
  uint32_t frame_overhead_bytes = 54;
  /// Wire propagation + hub forwarding.
  Duration propagation = usec(30);
  /// Kernel/NIC stack cost charged per packet on each side (late-90s Linux
  /// on a 450 MHz P-III).
  Duration stack_latency = usec(250);
  /// Loopback/IPC latency for same-host delivery (no medium use).
  Duration local_ipc = usec(150);
  /// Random per-packet jitter bound (uniform in [0, jitter]).
  Duration jitter = usec(100);
  /// Probability that a frame is lost on the medium (receivers all miss a
  /// lost multicast frame -- it never made it onto the wire intact).
  double loss_rate = 0.0;
};

class Network;

class Host {
 public:
  Host(Network& net, HostId id, std::string name, double cpu_scale);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  uint32_t incarnation() const { return incarnation_; }

  /// Bind a packet handler to a port. Throws if the port is taken.
  void bind(Port port, IPacketHandler* handler);
  void unbind(Port port);
  IPacketHandler* handler(Port port) const;

  /// Run `fn` after `cost` of CPU time, FIFO behind earlier work. Work
  /// submitted before a crash is silently discarded on restart. The cost is
  /// scaled by this host's cpu_scale (1.0 = the paper's 450 MHz head node).
  void execute(Duration cost, std::function<void()> fn);

  /// Per-host storage that survives crashes (the head node's local disk).
  std::map<std::string, std::string>& disk() { return disk_; }

  /// Partition island this host currently belongs to (0 = default LAN).
  int partition() const { return partition_; }

 private:
  friend class Network;
  void crash();
  void restart();

  Network& net_;
  HostId id_;
  std::string name_;
  double cpu_scale_;
  bool up_ = true;
  uint32_t incarnation_ = 1;
  Time cpu_free_at_{0};
  int partition_ = 0;
  std::map<Port, IPacketHandler*> ports_;
  std::map<std::string, std::string> disk_;
};

class Network {
 public:
  Network(Simulation& sim, NetworkConfig config);

  Simulation& sim() { return sim_; }
  const NetworkConfig& config() const { return config_; }
  NetworkConfig& mutable_config() { return config_; }

  /// Add a host; cpu_scale scales CPU costs (0.5 = twice as fast as the
  /// paper's testbed head node).
  Host& add_host(const std::string& name, double cpu_scale = 1.0);

  Host& host(HostId id);
  const Host& host(HostId id) const;
  bool has_host(HostId id) const { return id < hosts_.size(); }
  size_t host_count() const { return hosts_.size(); }
  HostId host_by_name(const std::string& name) const;

  /// Unicast a packet. Loss, partitions, and crashed destinations drop it.
  void send(Packet packet);

  /// Physical multicast: one medium slot, delivered to every destination
  /// host (at `dst_port`) that is up and in the sender's partition. The
  /// sender's own host is skipped unless explicitly listed.
  void multicast(Endpoint src, Port dst_port, Payload data,
                 const std::vector<HostId>& dst_hosts);

  // -- failure injection ------------------------------------------------

  void crash_host(HostId id);
  void restart_host(HostId id);

  /// Assign hosts to partition islands; hosts in different islands cannot
  /// communicate. Island 0 is the default LAN.
  void set_partition(HostId id, int island);
  void clear_partitions();

  // -- counters (for tests and benches) ----------------------------------
  // Backed by the simulation's telemetry registry ("net.*" metrics), so
  // exporters and these accessors read the same cells.

  uint64_t frames_sent() const { return m_frames_sent_.value(); }
  uint64_t frames_dropped() const { return m_frames_dropped_.value(); }
  uint64_t bytes_sent() const { return m_bytes_sent_.value(); }

 private:
  Duration medium_transmit(size_t payload_bytes);
  void deliver(Packet packet, Time at);
  /// Reserve one serialization slot on the shared medium, recording how
  /// long the frame had to wait behind earlier traffic.
  Time acquire_medium(Duration tx);

  Simulation& sim_;
  NetworkConfig config_;
  std::vector<std::unique_ptr<Host>> hosts_;
  Time medium_busy_until_{0};
  telemetry::Counter m_frames_sent_;
  telemetry::Counter m_frames_dropped_;
  telemetry::Counter m_bytes_sent_;
  telemetry::Counter m_packets_delivered_;
  telemetry::Counter m_bytes_delivered_;
  telemetry::Histogram m_medium_wait_;
};

}  // namespace sim
