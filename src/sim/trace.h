// Lightweight event trace: tests assert on ordering of recorded events and
// the examples print a readable timeline.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace sim {

class Trace {
 public:
  struct Entry {
    Time at;
    std::string category;
    std::string text;
  };

  void record(Time at, std::string category, std::string text) {
    entries_.push_back({at, std::move(category), std::move(text)});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// All entries in a category, in order.
  std::vector<Entry> in_category(const std::string& category) const {
    std::vector<Entry> out;
    for (const Entry& e : entries_)
      if (e.category == category) out.push_back(e);
    return out;
  }

  /// True if an entry whose text contains `needle` exists.
  bool contains(const std::string& needle) const {
    for (const Entry& e : entries_)
      if (e.text.find(needle) != std::string::npos) return true;
    return false;
  }

  /// Render "t=1.234567 [cat] text" lines.
  std::string render() const {
    std::string out;
    char buf[64];
    for (const Entry& e : entries_) {
      snprintf(buf, sizeof buf, "t=%.6f [%s] ", e.at.seconds(),
               e.category.c_str());
      out += buf;
      out += e.text;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace sim
