// Lightweight event trace: tests assert on ordering of recorded events and
// the examples print a readable timeline.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace sim {

class Trace {
 public:
  struct Entry {
    Time at;
    std::string category;
    std::string text;
  };

  void record(Time at, std::string category, std::string text) {
    entries_.push_back({at, std::move(category), std::move(text)});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// All entries in a category, in order.
  std::vector<Entry> in_category(const std::string& category) const {
    std::vector<Entry> out;
    for (const Entry& e : entries_)
      if (e.category == category) out.push_back(e);
    return out;
  }

  /// True if an entry whose text contains `needle` exists.
  bool contains(const std::string& needle) const {
    for (const Entry& e : entries_)
      if (e.text.find(needle) != std::string::npos) return true;
    return false;
  }

  /// Render "t=1.234567 [cat] text" lines.
  std::string render() const {
    std::string out;
    // Only the fixed-width timestamp goes through the stack buffer; the
    // category is appended as a string so long names are never truncated.
    char buf[32];
    for (const Entry& e : entries_) {
      snprintf(buf, sizeof buf, "t=%.6f [", e.at.seconds());
      out += buf;
      out += e.category;
      out += "] ";
      out += e.text;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace sim
