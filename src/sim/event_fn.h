// Small-buffer-optimized callback type for the event core.
//
// EventFn is a move-only void() callable with 48 bytes of inline storage --
// enough for every hot-path closure in the simulator (a this-pointer, a few
// ids, or a whole libstdc++ std::function) -- so steady-state scheduling
// performs no heap allocation. Callables that are larger than the buffer, or
// whose move constructor may throw, fall back to the heap; everything else
// lives inline and is relocated by its own move constructor when an EventFn
// moves (e.g. out of a pool slot into the dispatch frame).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

class EventFn {
 public:
  static constexpr size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    constexpr bool kInline = sizeof(D) <= kInlineSize &&
                             alignof(D) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = heap_ops<D>();
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable from src storage into dst storage, then
    /// destroy the src. Must not throw (enforced by the inline criteria).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static D* as(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* s) { (*as<D>(s))(); },
        [](void* dst, void* src) {
          D* from = as<D>(src);
          ::new (dst) D(std::move(*from));
          from->~D();
        },
        [](void* s) { as<D>(s)->~D(); },
    };
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* s) { (**as<D*>(s))(); },
        [](void* dst, void* src) {
          ::new (dst) D*(*as<D*>(src));
        },
        [](void* s) { delete *as<D*>(s); },
    };
    return &ops;
  }

  void move_from(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace sim
