#include "sim/process.h"

namespace sim {

Process::Process(Network& net, HostId host, Port port, std::string name)
    : net_(net), host_id_(host), port_(port), name_(std::move(name)) {
  net_.host(host_id_).bind(port_, this);
}

Process::~Process() {
  for (TimerId id : timers_) sim().cancel(id);
  net_.host(host_id_).unbind(port_);
}

void Process::send(Endpoint dst, Payload data) {
  net_.send(Packet{endpoint(), dst, std::move(data)});
}

void Process::multicast(Port dst_port, Payload data,
                        const std::vector<HostId>& dsts) {
  net_.multicast(endpoint(), dst_port, std::move(data), dsts);
}

TimerId Process::set_timer(Duration delay, std::function<void()> fn) {
  // The wrapper must erase its own id on fire; the id is only known after
  // scheduling, so route it through a shared holder.
  auto holder = std::make_shared<TimerId>(0);
  TimerId id = sim().schedule(delay, [this, holder, fn = std::move(fn)] {
    timers_.erase(*holder);
    fn();
  });
  *holder = id;
  timers_.insert(id);
  return id;
}

void Process::cancel_timer(TimerId id) {
  if (timers_.erase(id) > 0) sim().cancel(id);
}

void Process::handle_packet(Packet packet) { on_packet(std::move(packet)); }

void Process::handle_host_crash() {
  for (TimerId id : timers_) sim().cancel(id);
  timers_.clear();
  on_crash();
}

void Process::handle_host_restart() { on_restart(); }

}  // namespace sim
