#include "sim/process.h"

namespace sim {

Process::Process(Network& net, HostId host, Port port, std::string name)
    : net_(net), host_id_(host), port_(port), name_(std::move(name)) {
  net_.host(host_id_).bind(port_, this);
}

Process::~Process() {
  for (TimerId id : timers_) sim().cancel(id);
  net_.host(host_id_).unbind(port_);
}

void Process::send(Endpoint dst, Payload data) {
  net_.send(Packet{endpoint(), dst, std::move(data)});
}

void Process::multicast(Port dst_port, Payload data,
                        const std::vector<HostId>& dsts) {
  net_.multicast(endpoint(), dst_port, std::move(data), dsts);
}

TimerId Process::set_timer(Duration delay, EventFn fn) {
  // No wrapper: event ids are generation-tagged, so cancelling a fired
  // timer on crash is a safe no-op. Fired ids linger in timers_ until the
  // amortized sweep below evicts them.
  TimerId id = sim().schedule(delay, std::move(fn));
  timers_.insert(id);
  if (timers_.size() >= 64) {
    for (auto it = timers_.begin(); it != timers_.end();) {
      it = sim().event_pending(*it) ? std::next(it) : timers_.erase(it);
    }
  }
  return id;
}

void Process::cancel_timer(TimerId id) {
  if (timers_.erase(id) > 0) sim().cancel(id);
}

void Process::handle_packet(Packet packet) { on_packet(std::move(packet)); }

void Process::handle_host_crash() {
  for (TimerId id : timers_) sim().cancel(id);
  timers_.clear();
  on_crash();
}

void Process::handle_host_restart() { on_restart(); }

}  // namespace sim
