#include "sim/network.h"

#include <stdexcept>

#include "util/logging.h"

namespace sim {

Host::Host(Network& net, HostId id, std::string name, double cpu_scale)
    : net_(net), id_(id), name_(std::move(name)), cpu_scale_(cpu_scale) {}

void Host::bind(Port port, IPacketHandler* handler) {
  if (handler == nullptr) throw std::invalid_argument("bind: null handler");
  auto [it, inserted] = ports_.emplace(port, handler);
  (void)it;
  if (!inserted)
    throw std::runtime_error("port " + std::to_string(port) +
                             " already bound on host " + name_);
}

void Host::unbind(Port port) { ports_.erase(port); }

IPacketHandler* Host::handler(Port port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : it->second;
}

void Host::execute(Duration cost, std::function<void()> fn) {
  if (!up_) return;  // work submitted on a dead host is lost
  Simulation& sim = net_.sim();
  Duration scaled{static_cast<int64_t>(static_cast<double>(cost.us) *
                                       cpu_scale_)};
  Time start = std::max(sim.now(), cpu_free_at_);
  cpu_free_at_ = start + scaled;
  uint32_t incarnation = incarnation_;
  sim.schedule_at(cpu_free_at_, [this, incarnation, fn = std::move(fn)] {
    if (up_ && incarnation_ == incarnation) fn();
  });
}

void Host::crash() {
  if (!up_) return;
  up_ = false;
  cpu_free_at_ = net_.sim().now();
  JLOG(kInfo, "sim") << "host " << name_ << " crashed";
  for (auto& [port, handler] : ports_) {
    (void)port;
    handler->handle_host_crash();
  }
}

void Host::restart() {
  if (up_) return;
  up_ = true;
  ++incarnation_;
  cpu_free_at_ = net_.sim().now();
  JLOG(kInfo, "sim") << "host " << name_ << " restarted (incarnation "
                     << incarnation_ << ")";
  for (auto& [port, handler] : ports_) {
    (void)port;
    handler->handle_host_restart();
  }
}

Network::Network(Simulation& sim, NetworkConfig config)
    : sim_(sim), config_(config) {
  telemetry::Registry& m = sim_.telemetry().metrics();
  m_frames_sent_ = m.counter("net.frames_sent");
  m_frames_dropped_ = m.counter("net.frames_dropped");
  m_bytes_sent_ = m.counter("net.bytes_sent");
  m_packets_delivered_ = m.counter("net.packets_delivered");
  m_bytes_delivered_ = m.counter("net.bytes_delivered");
  m_medium_wait_ = m.histogram("net.medium_wait_us");
}

Host& Network::add_host(const std::string& name, double cpu_scale) {
  auto id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(std::make_unique<Host>(*this, id, name, cpu_scale));
  return *hosts_.back();
}

Host& Network::host(HostId id) {
  if (id >= hosts_.size()) throw std::out_of_range("no such host");
  return *hosts_[id];
}

const Host& Network::host(HostId id) const {
  if (id >= hosts_.size()) throw std::out_of_range("no such host");
  return *hosts_[id];
}

HostId Network::host_by_name(const std::string& name) const {
  for (const auto& h : hosts_)
    if (h->name() == name) return h->id();
  throw std::out_of_range("no host named " + name);
}

Duration Network::medium_transmit(size_t payload_bytes) {
  double bits =
      static_cast<double>(payload_bytes + config_.frame_overhead_bytes) * 8.0;
  return Duration{static_cast<int64_t>(bits / config_.bandwidth_bps * 1e6)};
}

void Network::deliver(Packet packet, Time at) {
  sim_.schedule_at(at, [this, packet = std::move(packet)]() mutable {
    Host& dst = host(packet.dst.host);
    if (!dst.up()) return;
    IPacketHandler* handler = dst.handler(packet.dst.port);
    if (handler == nullptr) {
      JLOG(kDebug, "sim") << "packet to unbound port " << packet.dst.port
                          << " on " << dst.name() << " dropped";
      return;
    }
    m_packets_delivered_.add(1);
    m_bytes_delivered_.add(packet.data.size());
    handler->handle_packet(std::move(packet));
  });
}

Time Network::acquire_medium(Duration tx) {
  Time start = std::max(sim_.now(), medium_busy_until_);
  m_medium_wait_.record((start - sim_.now()).us);
  medium_busy_until_ = start + tx;
  return medium_busy_until_;
}

void Network::send(Packet packet) {
  Host& src = host(packet.src.host);
  if (!src.up()) return;
  if (!has_host(packet.dst.host)) {
    m_frames_dropped_.add(1);
    return;
  }
  Host& dst = host(packet.dst.host);

  if (packet.src.host == packet.dst.host) {
    // Loopback: no medium, just IPC latency.
    deliver(std::move(packet), sim_.now() + config_.local_ipc);
    return;
  }

  m_frames_sent_.add(1);
  m_bytes_sent_.add(packet.data.size() + config_.frame_overhead_bytes);

  if (!dst.up() || dst.partition() != src.partition()) {
    m_frames_dropped_.add(1);
    return;  // the frame still left the sender; receiver never sees it
  }
  if (config_.loss_rate > 0.0 && sim_.rng().chance(config_.loss_rate)) {
    m_frames_dropped_.add(1);
    return;
  }

  Duration tx = medium_transmit(packet.data.size());
  Duration jitter{config_.jitter.us > 0
                      ? sim_.rng().uniform(0, config_.jitter.us)
                      : 0};
  Time arrival = acquire_medium(tx) + config_.propagation +
                 config_.stack_latency * 2 + jitter;
  deliver(std::move(packet), arrival);
}

void Network::multicast(Endpoint src, Port dst_port, Payload data,
                        const std::vector<HostId>& dst_hosts) {
  Host& sender = host(src.host);
  if (!sender.up()) return;

  // Local copies short-circuit the medium.
  bool used_medium = false;
  Duration tx = medium_transmit(data.size());
  Time medium_arrival{0};

  for (HostId dst_id : dst_hosts) {
    if (!has_host(dst_id)) continue;
    Packet packet{src, Endpoint{dst_id, dst_port}, data};
    if (dst_id == src.host) {
      deliver(std::move(packet), sim_.now() + config_.local_ipc);
      continue;
    }
    if (!used_medium) {
      // One slot on the shared medium covers every remote receiver.
      used_medium = true;
      m_frames_sent_.add(1);
      m_bytes_sent_.add(data.size() + config_.frame_overhead_bytes);
      if (config_.loss_rate > 0.0 && sim_.rng().chance(config_.loss_rate)) {
        m_frames_dropped_.add(1);
        return;  // the whole physical multicast is lost
      }
      medium_arrival = acquire_medium(tx) + config_.propagation +
                       config_.stack_latency * 2;
    }
    Host& dst = host(dst_id);
    if (!dst.up() || dst.partition() != sender.partition()) continue;
    Duration jitter{config_.jitter.us > 0
                        ? sim_.rng().uniform(0, config_.jitter.us)
                        : 0};
    deliver(std::move(packet), medium_arrival + jitter);
  }
}

void Network::crash_host(HostId id) { host(id).crash(); }
void Network::restart_host(HostId id) { host(id).restart(); }

void Network::set_partition(HostId id, int island) {
  host(id).partition_ = island;
}

void Network::clear_partitions() {
  for (auto& h : hosts_) h->partition_ = 0;
}

}  // namespace sim
