#include "gcs/ordering_engine.h"

#include <cstdlib>

#include "gcs/engine_allack.h"
#include "gcs/engine_token.h"

namespace gcs {

std::string_view to_string(OrderingMode mode) {
  switch (mode) {
    case OrderingMode::kAllAck: return "allack";
    case OrderingMode::kTokenRing: return "token";
  }
  return "?";
}

std::optional<OrderingMode> parse_ordering_mode(std::string_view name) {
  if (name == "allack" || name == "all-ack" || name == "all_ack")
    return OrderingMode::kAllAck;
  if (name == "token" || name == "tokenring" || name == "token-ring" ||
      name == "token_ring")
    return OrderingMode::kTokenRing;
  return std::nullopt;
}

OrderingMode ordering_mode_from_env() {
  const char* raw = std::getenv("JOSHUA_ORDERING");
  if (raw == nullptr) return OrderingMode::kAllAck;
  return parse_ordering_mode(raw).value_or(OrderingMode::kAllAck);
}

namespace {

uint32_t env_u32(const char* name, uint32_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;  // unparseable: legacy
  constexpr unsigned long kCap = 1u << 20;
  return static_cast<uint32_t>(v > kCap ? kCap : v);
}

}  // namespace

uint32_t order_batch_from_env() { return env_u32("JOSHUA_ORDER_BATCH", 0); }

uint32_t order_window_from_env() { return env_u32("JOSHUA_ORDER_WINDOW", 0); }

std::unique_ptr<OrderingEngine> make_engine(OrderingMode mode,
                                            const EngineTuning& tuning) {
  switch (mode) {
    case OrderingMode::kTokenRing:
      return std::make_unique<TokenRingEngine>(tuning);
    case OrderingMode::kAllAck:
      break;
  }
  return std::make_unique<AllAckEngine>();
}

}  // namespace gcs
