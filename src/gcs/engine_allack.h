// AllAckEngine: the Transis-style all-ack Lamport total order, re-homed from
// OrderingBuffer with zero behavioral change.
//
// An AGREED message m delivers once every other view member has either sent
// m itself or been heard with a lamport clock above m.lamport (so no earlier
// total-order message can still arrive from it), and no known per-sender gap
// is outstanding. SAFE additionally waits until every member's cut covers m.
// The lamport evidence lives here; the sent/received watermarks it is checked
// against stay in the OrderingBuffer (they also drive NACKs and stability).
#pragma once

#include <map>

#include "gcs/ordering_engine.h"

namespace gcs {

class AllAckEngine : public OrderingEngine {
 public:
  OrderingMode mode() const override { return OrderingMode::kAllAck; }

  EngineOut reset(const View& view, MemberId self, int64_t now_us) override;
  void clear() override;
  void observe(MemberId p, uint64_t lamport) override;

  EngineOut on_local_send(const DataMsg&, int64_t) override { return {}; }
  EngineOut on_insert(const DataMsg&, int64_t) override { return {}; }
  EngineOut on_control(MemberId, const sim::Payload&, int64_t) override {
    return {};
  }
  EngineOut on_tick(int64_t) override { return {}; }
  EngineOut on_forward_timer(int64_t) override { return {}; }

  const DataMsg* next_deliverable() const override;
  void on_delivered(const DataMsg&) override {}

 private:
  bool agreed_condition(const DataMsg& m) const;
  bool safe_condition(const DataMsg& m) const;

  View view_;
  MemberId self_ = sim::kInvalidHost;
  /// Highest lamport timestamp heard from each peer (on any traffic).
  std::map<MemberId, uint64_t> heard_;
};

}  // namespace gcs
