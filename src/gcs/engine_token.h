// TokenRingEngine: Totem-style circulating-privilege total order.
//
// A logical token circulates the sorted view members carrying the next
// global sequence number. Only the holder may assign global sequence
// numbers: it stamps every own AGREED/SAFE message still awaiting a stamp
// with consecutive globals, broadcasts one stamp announcement for the whole
// batch, and unicasts the token to the next member on the ring. Delivery is
// then trivial: the message stamped delivered_global+1, once held locally
// (SAFE additionally waits for every member's cut to cover it). Control cost
// is one broadcast per *batch* plus one unicast per hop -- O(1) amortized
// per message -- instead of the all-ack engine's O(N) cuts per message.
//
// Loss handling:
//   * Lost stamp announcement: delivery stalls behind a global-sequence gap;
//     once the gap has persisted a full heartbeat tick (in-flight announces
//     get one tick to land) the stalled member broadcasts a stamp NACK for
//     the gap head -- at most every other tick, so a lost announcement does
//     not trigger a ring-wide NACK storm -- and any member that knows the
//     stamp re-announces a run of it, unicast to the requester (idempotent).
//   * Lost token: after `token_timeout` (plus slack proportional to the ring
//     size, since an idle token is only seen every N idle-cap hops) of ring
//     silence, the lowest view member runs a regeneration round: it
//     broadcasts a query carrying the replacement's token id, which fences
//     the old token everywhere it lands (a holder relinquishes), and every
//     other member replies with its next_global. Only when ALL of them have
//     answered does the minter take a token seeded with the maximum -- so a
//     regenerated token can never reassign a global any member has already
//     stamped or delivered, even when the stamp announcement and the token
//     hand-off were both lost in the same window. A member that cannot
//     answer is a suspect, and the view change resets the ring instead.
//     Lower-id tokens are discarded on arrival.
//   * Holder crash / partition: the view change resets the ring. Flush state
//     transfer (transfer_state / merge / install) unions every member's
//     stamp table so all members flush stamped messages in identical global
//     order before unstamped ones; the new view's lowest member mints the
//     next token. Token ids restart per view (the epoch fences cross-view
//     traffic).
//
// Idle throttling: a holder with nothing to stamp defers the hand-off by
// `token_idle`, doubling up to `token_idle_cap` while consecutive rotations
// stay idle, and forwards immediately when new traffic appears. This keeps a
// quiet ring from burning simulation events without adding latency under
// load.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "gcs/ordering_engine.h"

namespace gcs {

class TokenRingEngine : public OrderingEngine {
 public:
  explicit TokenRingEngine(const EngineTuning& tuning) : tuning_(tuning) {}

  OrderingMode mode() const override { return OrderingMode::kTokenRing; }

  EngineOut reset(const View& view, MemberId self, int64_t now_us) override;
  void clear() override;
  void observe(MemberId, uint64_t) override {}

  EngineOut on_local_send(const DataMsg& m, int64_t now_us) override;
  EngineOut on_insert(const DataMsg& m, int64_t now_us) override;
  EngineOut on_control(MemberId from, const sim::Payload& body,
                       int64_t now_us) override;
  EngineOut on_tick(int64_t now_us) override;
  EngineOut on_forward_timer(int64_t now_us) override;

  const DataMsg* next_deliverable() const override;
  void on_delivered(const DataMsg& m) override;

  /// Per-message reactive cuts are exactly the O(N) overhead the ring
  /// removes; stability and SAFE ride on the periodic heartbeat cuts.
  bool wants_ack_cuts() const override { return false; }

  sim::Payload transfer_state() const override;
  sim::Payload merge_transfer_states(
      const std::vector<sim::Payload>& states) const override;
  void install_transfer_state(const sim::Payload& merged) override;
  void order_flush(std::vector<DataMsg>& msgs) const override;

  // Introspection for tests.
  bool holding_token() const { return holding_; }
  uint64_t delivered_global() const { return delivered_global_; }
  uint64_t next_global() const { return next_global_; }
  uint64_t token_id_seen() const { return token_id_seen_; }
  bool regen_pending() const { return regen_pending_; }

 private:
  /// A global-sequence assignment: which message carries global g, fenced by
  /// the id of the token that assigned it.
  struct Stamp {
    MsgId id;
    uint64_t token_id = 0;
  };

  EngineOut take_token(int64_t now_us);
  EngineOut stamp_and_forward(int64_t now_us, bool may_defer);
  EngineOut forward_now(EngineOut out, int64_t now_us);
  EngineOut reannounce(MemberId to, uint64_t from_global) const;
  void apply_stamp(uint64_t global, const Stamp& s);
  void remember(uint64_t global, const Stamp& s);
  MemberId next_in_ring() const;
  bool stable_everywhere(const DataMsg& m) const;

  sim::Payload encode_token() const;
  sim::Payload encode_stamp_nack(uint64_t from_global) const;
  sim::Payload encode_regen_query() const;

  EngineTuning tuning_;
  View view_;
  MemberId self_ = sim::kInvalidHost;
  /// Effective regeneration timeout for this view (token_timeout plus
  /// ring-size slack; see header comment).
  int64_t regen_timeout_us_ = 0;

  // -- token state -----------------------------------------------------------
  bool holding_ = false;
  /// Deferred idle hand-off scheduled (forward timer outstanding).
  bool forward_pending_ = false;
  /// Highest token id sighted in this view; a freshly minted token uses
  /// token_id_seen_ + 1, so regenerated tokens fence their predecessors.
  uint64_t token_id_seen_ = 0;
  uint64_t rotation_ = 0;
  /// Next global sequence number to assign; monotonic across views (flush
  /// state transfer carries the maximum forward).
  uint64_t next_global_ = 1;
  int64_t hold_start_us_ = 0;
  int64_t last_activity_us_ = 0;  ///< last token/stamp sighting
  int idle_streak_ = 0;

  // -- regeneration round ----------------------------------------------------
  /// The lowest member's regeneration round is in flight: the query is
  /// re-broadcast every tick until every other member's reply arrives.
  bool regen_pending_ = false;
  /// Token id the round is minting (== token_id_seen_ while pending).
  uint64_t regen_id_ = 0;
  /// Members whose reply to the current round has been recorded.
  std::set<MemberId> regen_replies_;

  // -- stamp-gap NACK rate limiting ------------------------------------------
  /// Gap head observed on the previous tick (0: none).
  uint64_t nack_head_ = 0;
  /// Consecutive ticks the same head has persisted.
  int nack_streak_ = 0;

  // -- order state -----------------------------------------------------------
  /// Contiguous prefix of globals delivered locally.
  uint64_t delivered_global_ = 0;
  /// Known, undelivered stamps by global.
  std::map<uint64_t, Stamp> stamps_;
  /// Own AGREED/SAFE sends (seq numbers) awaiting a stamp.
  std::deque<uint64_t> my_unstamped_;
  /// Recent stamp history including delivered ones, for gap re-announces and
  /// flush state transfer. Bounded ring (kStampLogCap).
  std::deque<std::pair<uint64_t, Stamp>> stamp_log_;
  /// Per-global index over stamp_log_ (latest assignment per global), so a
  /// re-announce lookup is O(log n) instead of a reverse deque scan.
  std::map<uint64_t, Stamp> stamp_by_global_;
  /// Merged stamp table installed by the view-change commit; consulted only
  /// by order_flush.
  std::map<uint64_t, Stamp> flush_stamps_;
};

}  // namespace gcs
