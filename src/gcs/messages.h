// Wire messages of the group communication protocol.
//
// Every message carries a common Header with the sender's identity, its
// lamport clock, the highest sequence number it has sent, and its received
// vector (cut). Piggybacking the cut on everything -- as Transis does --
// lets any traffic advance stability.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gcs/types.h"
#include "net/wire.h"

namespace gcs {

enum class MsgType : uint8_t {
  kData = 1,
  kCut = 2,        ///< explicit ack/stability message (also the heartbeat)
  kNack = 3,
  kRetransmit = 4,
  kJoinReq = 5,
  kLeave = 6,
  kVcPropose = 7,
  kVcAck = 8,
  kVcCommit = 9,
  kStateReq = 10,
  kState = 11,
  kEngine = 12,  ///< ordering-engine control traffic (token, stamps, ...)
};

struct Header {
  MemberId from = sim::kInvalidHost;
  uint64_t lamport = 0;
  uint64_t sent_upto = 0;
  CutVector received;  ///< cut vector (sorted member/seq pairs)
};

struct DataWire {
  Header header;
  DataMsg msg;
};

struct CutWire {
  Header header;
  bool periodic = false;  ///< true for heartbeat cuts (cheap to process)
};

struct NackWire {
  Header header;
  std::vector<MsgId> missing;
};

struct RetransmitWire {
  Header header;
  std::vector<DataMsg> msgs;
};

struct JoinReqWire {
  Header header;
  uint32_t incarnation = 0;
};

struct LeaveWire {
  Header header;
};

struct VcProposeWire {
  Header header;
  ViewId proposed;
  std::vector<MemberId> members;
};

struct VcAckWire {
  Header header;
  ViewId proposed;
  std::vector<DataMsg> held;  ///< everything the sender holds of the old view
  /// Opaque OrderingEngine transfer state (token mode: the stamp table).
  sim::Payload engine_state;
};

struct VcCommitWire {
  Header header;
  View new_view;
  std::vector<MemberId> old_members;
  /// Members entering fresh (no history): their per-sender sequence counters
  /// restart at zero everywhere. A crash-restarted head appears in both
  /// old_members and joiners.
  std::vector<MemberId> joiners;
  std::vector<DataMsg> union_msgs;
  /// Per-member highest sequence number of the old view's stream; everyone
  /// aligns their received counters to this after the flush so joiners do
  /// not see phantom gaps.
  std::map<MemberId, uint64_t> seq_baseline;
  MemberId state_source = sim::kInvalidHost;
  /// Merged OrderingEngine transfer state, installed by everyone before the
  /// flush so the flush delivery order agrees at every member.
  sim::Payload engine_state;
};

struct StateReqWire {
  Header header;
  ViewId view_id;
};

/// Ordering-engine control message; the body is engine-defined (the host
/// GroupMember routes it to OrderingEngine::on_control without looking).
struct EngineWire {
  Header header;
  sim::Payload body;
};

struct StateWire {
  Header header;
  ViewId view_id;
  sim::Payload state;
};

// Encoding: [u8 type][header][body]. decode_type peeks the tag so the
// dispatcher can pick a handler and a CPU cost before full decoding.
MsgType decode_type(const sim::Payload& buf);

sim::Payload encode(const DataWire&);
sim::Payload encode(const CutWire&);
sim::Payload encode(const NackWire&);
sim::Payload encode(const RetransmitWire&);
sim::Payload encode(const JoinReqWire&);
sim::Payload encode(const LeaveWire&);
sim::Payload encode(const VcProposeWire&);
sim::Payload encode(const VcAckWire&);
sim::Payload encode(const VcCommitWire&);
sim::Payload encode(const StateReqWire&);
sim::Payload encode(const StateWire&);
sim::Payload encode(const EngineWire&);

DataWire decode_data(const sim::Payload&);
CutWire decode_cut(const sim::Payload&);
NackWire decode_nack(const sim::Payload&);
RetransmitWire decode_retransmit(const sim::Payload&);
JoinReqWire decode_join_req(const sim::Payload&);
LeaveWire decode_leave(const sim::Payload&);
VcProposeWire decode_vc_propose(const sim::Payload&);
VcAckWire decode_vc_ack(const sim::Payload&);
VcCommitWire decode_vc_commit(const sim::Payload&);
StateReqWire decode_state_req(const sim::Payload&);
StateWire decode_state(const sim::Payload&);
EngineWire decode_engine(const sim::Payload&);

}  // namespace gcs
