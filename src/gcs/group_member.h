// GroupMember: one group-communication daemon (the Transis-daemon
// equivalent) running on a head node.
//
// Provides the process-group abstraction JOSHUA depends on:
//   * membership with join/leave/failure and view installation,
//   * reliable multicast (NACK-based retransmission),
//   * FIFO / CAUSAL / AGREED / SAFE delivery levels,
//   * extended-virtual-synchrony flush on every view change (all members
//     deliver the same message set in the same order before the new view),
//   * application state transfer to joining members.
//
// Membership protocol (coordinator-driven, fail-stop model):
//   - Heartbeat cuts every `heartbeat_interval`; a peer silent for
//     `suspect_timeout` is suspected.
//   - The lowest-id unsuspected member coordinates: it proposes a new view
//     (old members minus suspects/leavers plus joiners), collects from every
//     proposed member a flush ack carrying all messages it holds, multicasts
//     a commit with the union, and everyone delivers the union in total
//     order before installing the view.
//   - A coordinator that dies mid-flush is suspected via the flush timeout
//     and the next-lowest member re-proposes with a higher epoch.
//   - Partitions yield one view per network component (Transis-style
//     partitionable membership); `require_majority` optionally confines
//     views to a majority component.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "gcs/messages.h"
#include "gcs/ordering.h"
#include "gcs/ordering_engine.h"
#include "gcs/types.h"
#include "sim/process.h"
#include "telemetry/metrics.h"

namespace sim {
struct Calibration;
}

namespace gcs {

struct GroupConfig {
  std::string group_name = "group";
  sim::Port port = 7000;
  /// The potential-member universe (one entry per head node host).
  std::vector<sim::HostId> peers;

  sim::Duration heartbeat_interval = sim::msec(100);
  sim::Duration suspect_timeout = sim::msec(500);
  sim::Duration flush_timeout = sim::msec(1200);
  sim::Duration join_retry = sim::msec(250);
  sim::Duration nack_delay = sim::msec(15);
  sim::Duration state_retry = sim::msec(300);

  /// When non-empty, delivery metrics are additionally recorded under
  /// "gcs.<scope>.*" (per-shard order latency and delivered counts for the
  /// federation layer). Empty = the single-group default, no extra cells.
  std::string telemetry_scope;

  /// Only form views containing a strict majority of `peers` (primary
  /// component semantics). Off by default: the paper's deployment is a
  /// single hub where partitions do not occur.
  bool require_majority = false;

  /// Total-order engine (see ordering_engine.h). Defaults to the
  /// JOSHUA_ORDERING environment variable so CI can run the same binaries
  /// under both engines.
  OrderingMode ordering = ordering_mode_from_env();
  /// Token-ring knobs; zero durations resolve against heartbeat_interval
  /// (idle cap = heartbeat, loss timeout = 4x heartbeat).
  sim::Duration token_idle = sim::msec(2);
  sim::Duration token_idle_cap = sim::kDurationZero;
  sim::Duration token_timeout = sim::kDurationZero;

  /// Ordering hot-path batch size. Token mode: stamps per announcement
  /// broadcast (a bigger backlog splits across several announcements in one
  /// hold). All-ack mode: data messages coalesced under one cumulative ack
  /// cut before it is forced out (a nack_delay timer bounds ack latency for
  /// partial batches). 0 or 1: the legacy per-message behavior the
  /// checked-in baselines gate. Defaults to JOSHUA_ORDER_BATCH.
  uint32_t order_batch = order_batch_from_env();
  /// Sender-side flow-control window: own AGREED/SAFE multicasts in flight
  /// (sent, not yet ordered back to us). At the limit new sends queue
  /// locally (gcs.window_stalls counts them) instead of growing every
  /// receiver's unordered backlog. 0: unbounded, the legacy behavior.
  /// Defaults to JOSHUA_ORDER_WINDOW.
  uint32_t inflight_window = order_window_from_env();

  // CPU cost model (see sim::Calibration).
  sim::Duration send_proc = sim::msec(5);
  sim::Duration data_proc = sim::msec(38);
  sim::Duration ack_proc = sim::msec(36);
  sim::Duration hb_proc = sim::msec(1);
  sim::Duration ctrl_proc = sim::msec(2);
  sim::Duration self_deliver = sim::msec(3);
};

/// Build a GroupConfig cost section from the testbed calibration.
GroupConfig group_config_from(const sim::Calibration& cal);

struct GroupCallbacks {
  /// A new view was installed. An empty view means this member was excluded
  /// (it will attempt to rejoin only if the application calls join again).
  std::function<void(const View&)> on_view;
  /// An application message was delivered (same order at all members for
  /// AGREED/SAFE).
  std::function<void(const Delivered&)> on_deliver;
  /// State transfer: snapshot this member's application state (called on an
  /// existing member when someone joins).
  std::function<sim::Payload()> get_state;
  /// State transfer: install a snapshot (called on the joiner before any
  /// new-view message is delivered).
  std::function<void(const sim::Payload&)> install_state;
};

class GroupMember : public sim::Process {
 public:
  enum class State { kDown, kJoining, kMember, kFlushing };

  GroupMember(sim::Network& net, sim::HostId host, GroupConfig config,
              GroupCallbacks callbacks);

  /// Start the membership protocol (initial start or rejoin after crash).
  void join();

  /// Voluntarily leave. The paper handles leave as an announced shutdown;
  /// peers exclude the leaver without waiting for the failure detector.
  void leave();

  /// Multicast to the current view. Buffers during a flush, per virtual
  /// synchrony. Must not be called when down.
  void multicast(sim::Payload payload, Delivery level = Delivery::kAgreed);

  State state() const { return state_; }
  bool is_member() const {
    return state_ == State::kMember || state_ == State::kFlushing;
  }
  const View& view() const { return view_; }
  MemberId id() const { return host_id(); }
  const GroupConfig& config() const { return config_; }
  const OrderingEngine& engine() const { return *engine_; }

  // -- statistics ------------------------------------------------------------
  struct Stats {
    uint64_t data_sent = 0;
    uint64_t data_received = 0;
    uint64_t cuts_sent = 0;
    uint64_t cuts_received = 0;
    uint64_t nacks_sent = 0;
    uint64_t retransmits_served = 0;
    uint64_t delivered = 0;
    uint64_t views_installed = 0;
    uint64_t engine_sent = 0;  ///< ordering-engine control messages sent
    uint64_t window_stalls = 0;  ///< sends queued at the flow-control window
  };
  const Stats& stats() const { return stats_; }
  /// Own AGREED/SAFE multicasts currently in flight (flow-control debt).
  uint32_t inflight() const { return inflight_; }

  // sim::Process:
  void on_packet(sim::Packet packet) override;
  void on_crash() override;
  void on_restart() override;

 private:
  // -- send helpers -----------------------------------------------------------
  Header make_header();
  std::vector<sim::HostId> other_members() const;
  void cast_to_members(sim::Payload buf);
  void cast_to_peers(sim::Payload buf);

  // -- receive handlers (already CPU-charged) ---------------------------------
  void handle_data(DataWire m);
  void handle_cut(CutWire m);
  void handle_nack(NackWire m);
  void handle_retransmit(RetransmitWire m);
  void handle_join_req(JoinReqWire m);
  void handle_leave(LeaveWire m);
  void handle_vc_propose(VcProposeWire m, sim::Endpoint from);
  void handle_vc_ack(VcAckWire m);
  void handle_vc_commit(VcCommitWire m);
  void handle_state_req(StateReqWire m, sim::Endpoint from);
  void handle_state(StateWire m);
  void handle_engine(EngineWire m);

  /// Transmit/record whatever an engine hook asked for.
  void apply_engine(EngineOut out);

  // -- protocol actions --------------------------------------------------------
  void tick_lamport(uint64_t seen) { lamport_ = std::max(lamport_, seen) + 1; }
  void note_alive(MemberId peer);
  void deliver_ready();
  void deliver_to_app(const DataMsg& m);
  void do_multicast(sim::Payload payload, Delivery level);
  void release_window();
  void schedule_ack_cut();
  void flush_ack_cut();
  void send_cut(bool periodic);
  void check_gaps();
  void heartbeat_tick();
  void suspect_check();
  void maybe_coordinate();
  void begin_flush(std::vector<MemberId> membership);
  void flush_timeout_fired();
  void complete_flush();
  void install_view(const VcCommitWire& commit);
  void retain(const DataMsg& m);
  void prune_retained();
  void join_tick();
  void become_down();
  void request_state();

  GroupConfig config_;
  GroupCallbacks callbacks_;
  State state_ = State::kDown;

  // Ordering & reliability.
  OrderingBuffer buffer_;
  std::unique_ptr<OrderingEngine> engine_;  ///< attached to buffer_
  uint64_t lamport_ = 0;
  uint64_t my_seq_ = 0;
  std::map<MsgId, DataMsg> retained_;  ///< current-view messages for flush
  std::map<MsgId, sim::Time> nacked_;  ///< dedup recent NACKs

  // Membership.
  View view_;
  uint64_t max_epoch_ = 0;
  std::map<MemberId, sim::Time> last_heard_;
  std::set<MemberId> suspected_;
  std::set<MemberId> joiners_;   ///< join requests seen (incl. self when joining)
  std::set<MemberId> leavers_;

  // Flush state (coordinator and participant).
  std::optional<ViewId> flush_proposed_;
  std::vector<MemberId> flush_membership_;   // coordinator only
  std::map<MemberId, VcAckWire> flush_acks_; // coordinator only
  bool flush_coordinator_ = false;
  sim::TimerId flush_timer_ = 0;
  std::deque<std::pair<sim::Payload, Delivery>> pending_sends_;

  // Sender flow control (config_.inflight_window > 0): own AGREED/SAFE
  // multicasts in flight, and sends queued while the window is full. The
  // window drains as our own messages come back ordered (deliver_to_app);
  // a view change resets the debt -- the flush delivered or dropped every
  // in-flight message identically everywhere.
  uint32_t inflight_ = 0;
  std::deque<std::pair<sim::Payload, Delivery>> window_queue_;

  // Cumulative-ack coalescing (all-ack engine, config_.order_batch > 1):
  // data messages heard since our last cut; an ack cut goes out when a
  // batch fills or the ack timer (nack_delay) fires, whichever is first.
  uint32_t unacked_data_ = 0;
  sim::TimerId ack_timer_ = 0;

  // Joiner state transfer.
  bool awaiting_state_ = false;
  MemberId state_source_ = sim::kInvalidHost;
  std::vector<MemberId> old_members_for_state_;  ///< fallback state sources
  std::deque<Delivered> held_deliveries_;
  sim::TimerId state_timer_ = 0;
  std::optional<sim::Payload> cached_state_;  ///< snapshot for joiners

  // Timers.
  sim::TimerId hb_timer_ = 0;
  sim::TimerId join_timer_ = 0;
  int join_ticks_ = 0;
  int merge_tick_ = 0;

  bool cut_scheduled_ = false;
  Stats stats_;

  // Telemetry (registry cells shared by all members in one simulation;
  // registered in the ctor body, updated next to the stats_ increments).
  telemetry::Counter m_data_sent_;
  telemetry::Counter m_data_received_;
  telemetry::Counter m_nacks_sent_;
  telemetry::Counter m_retransmits_served_;
  telemetry::Counter m_delivered_;
  telemetry::Counter m_views_installed_;
  telemetry::Counter m_cuts_sent_;
  telemetry::Counter m_engine_msgs_;
  telemetry::Counter m_token_rotations_;
  telemetry::Counter m_window_stalls_;
  telemetry::Gauge m_pipeline_depth_;
  telemetry::Histogram m_order_latency_;
  telemetry::Histogram m_token_hold_;
  telemetry::Histogram m_batch_size_;
  /// Scoped duplicates ("gcs.<telemetry_scope>.*"); null cells when the
  /// scope is empty, so recording them is a no-op outside federations.
  telemetry::Counter m_scope_delivered_;
  telemetry::Histogram m_scope_order_latency_;
  uint16_t tc_view_ = 0;   ///< trace category "gcs.view"
  uint16_t tc_flush_ = 0;  ///< trace category "gcs.flush"
  /// Start of the flush this member is currently in, or -1 (for the
  /// "gcs.flush" complete-span emitted when the new view installs).
  int64_t flush_started_us_ = -1;
  /// Send timestamps of our own recent multicasts, keyed by seq & 63 --
  /// fixed cost, approximate beyond 64 outstanding messages. Matched in
  /// deliver_to_app to measure multicast -> total-order-delivery latency.
  std::array<std::pair<uint64_t, int64_t>, 64> order_inflight_{};
};

}  // namespace gcs
