#include "gcs/group_member.h"

#include <algorithm>
#include <stdexcept>

#include "sim/calibration.h"
#include "util/logging.h"

namespace gcs {

namespace {
constexpr int kJoinSettleTicks = 2;
constexpr int kMergeBeaconEvery = 10;  // heartbeat ticks between merge beacons

std::vector<MemberId> sorted(std::set<MemberId> s) {
  return {s.begin(), s.end()};
}
}  // namespace

GroupConfig group_config_from(const sim::Calibration& cal) {
  GroupConfig cfg;
  cfg.send_proc = cal.gcs_send_proc;
  cfg.data_proc = cal.gcs_data_proc;
  cfg.ack_proc = cal.gcs_ack_proc;
  cfg.self_deliver = cal.gcs_self_deliver;
  return cfg;
}

GroupMember::GroupMember(sim::Network& net, sim::HostId host,
                         GroupConfig config, GroupCallbacks callbacks)
    : sim::Process(net, host, config.port,
                   config.group_name + "@" + net.host(host).name()),
      config_(std::move(config)),
      callbacks_(std::move(callbacks)) {
  if (std::find(config_.peers.begin(), config_.peers.end(), host) ==
      config_.peers.end()) {
    throw std::invalid_argument("GroupMember: host not in peer universe");
  }
  telemetry::Hub& hub = net.sim().telemetry();
  telemetry::Registry& m = hub.metrics();
  m_data_sent_ = m.counter("gcs.data_sent");
  m_data_received_ = m.counter("gcs.data_received");
  m_nacks_sent_ = m.counter("gcs.nacks_sent");
  m_retransmits_served_ = m.counter("gcs.retransmits_served");
  m_delivered_ = m.counter("gcs.delivered");
  m_views_installed_ = m.counter("gcs.views_installed");
  m_cuts_sent_ = m.counter("gcs.cuts_sent");
  m_engine_msgs_ = m.counter("gcs.engine_msgs_sent");
  m_token_rotations_ = m.counter("gcs.token.rotations");
  m_window_stalls_ = m.counter("gcs.window_stalls");
  m_pipeline_depth_ = m.gauge("gcs.pipeline_depth");
  m_order_latency_ = m.histogram("gcs.order_latency_us");
  m_token_hold_ = m.histogram("gcs.token.hold_us");
  m_batch_size_ = m.histogram("gcs.batch_size");
  if (!config_.telemetry_scope.empty()) {
    m_scope_delivered_ =
        m.counter("gcs." + config_.telemetry_scope + ".delivered");
    m_scope_order_latency_ =
        m.histogram("gcs." + config_.telemetry_scope + ".order_latency_us");
  }
  tc_view_ = hub.trace().intern("gcs.view");
  tc_flush_ = hub.trace().intern("gcs.flush");

  EngineTuning tuning;
  tuning.token_idle = config_.token_idle;
  tuning.token_idle_cap = config_.token_idle_cap.us > 0
                              ? config_.token_idle_cap
                              : config_.heartbeat_interval;
  tuning.token_timeout = config_.token_timeout.us > 0
                             ? config_.token_timeout
                             : config_.heartbeat_interval * 4;
  tuning.max_batch = config_.order_batch;
  engine_ = make_engine(config_.ordering, tuning);
  buffer_.attach_engine(engine_.get());
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void GroupMember::join() {
  if (!host_up()) return;
  if (state_ != State::kDown) return;
  state_ = State::kJoining;
  join_ticks_ = 0;
  joiners_.clear();
  joiners_.insert(id());
  JLOG(kInfo, "gcs") << name() << " joining";
  join_timer_ = set_timer(sim::usec(1), [this] { join_tick(); });
  if (hb_timer_ == 0)
    hb_timer_ = set_timer(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void GroupMember::leave() {
  if (state_ == State::kDown) return;
  JLOG(kInfo, "gcs") << name() << " leaving";
  if (is_member() && view_.size() > 1) {
    LeaveWire m{make_header()};
    cast_to_members(encode(m));
  }
  become_down();
}

void GroupMember::multicast(sim::Payload payload, Delivery level) {
  if (state_ == State::kDown)
    throw std::logic_error("GroupMember::multicast while down");
  if (state_ != State::kMember) {
    // Virtual synchrony: no new messages enter a view mid-flush; they go out
    // in the next view.
    pending_sends_.emplace_back(std::move(payload), level);
    return;
  }
  const bool ordered = level == Delivery::kAgreed || level == Delivery::kSafe;
  if (ordered && config_.inflight_window > 0 &&
      (inflight_ >= config_.inflight_window || !window_queue_.empty())) {
    // Flow control: the window of own unordered sends is full (or earlier
    // sends already wait behind it -- per-sender FIFO must hold). Queue
    // locally instead of growing every receiver's unordered backlog; the
    // window reopens as our own messages come back ordered.
    ++stats_.window_stalls;
    m_window_stalls_.add(1);
    window_queue_.emplace_back(std::move(payload), level);
    return;
  }
  if (ordered) {
    ++inflight_;
    m_pipeline_depth_.set(inflight_);
  }
  do_multicast(std::move(payload), level);
}

void GroupMember::do_multicast(sim::Payload payload, Delivery level) {
  DataMsg msg;
  msg.id = MsgId{id(), ++my_seq_};
  msg.lamport = ++lamport_;
  msg.level = level;
  msg.vclock = buffer_.delivered_vector();
  msg.payload = std::move(payload);
  retain(msg);
  buffer_.insert(msg);
  buffer_.observe(id(), lamport_, my_seq_, buffer_.received_vector());
  ++stats_.data_sent;
  m_data_sent_.add(1);
  order_inflight_[msg.id.seq & 63] = {msg.id.seq, sim().now().us};
  apply_engine(engine_->on_local_send(msg, sim().now().us));

  if (view_.size() == 1) {
    execute(config_.self_deliver, [this] { deliver_ready(); });
    return;
  }
  DataWire wire{make_header(), msg};
  sim::Payload buf = encode(wire);
  execute(config_.send_proc, [this, buf = std::move(buf)] {
    cast_to_members(buf);
    deliver_ready();
  });
}

void GroupMember::release_window() {
  while (state_ == State::kMember && !window_queue_.empty() &&
         inflight_ < config_.inflight_window) {
    auto [payload, level] = std::move(window_queue_.front());
    window_queue_.pop_front();
    ++inflight_;
    m_pipeline_depth_.set(inflight_);
    do_multicast(std::move(payload), level);
  }
}

// ---------------------------------------------------------------------------
// Send helpers
// ---------------------------------------------------------------------------

Header GroupMember::make_header() {
  return Header{id(), lamport_, my_seq_, buffer_.received_vector()};
}

std::vector<sim::HostId> GroupMember::other_members() const {
  std::vector<sim::HostId> out;
  for (MemberId m : view_.members)
    if (m != id()) out.push_back(m);
  return out;
}

void GroupMember::cast_to_members(sim::Payload buf) {
  Process::multicast(config_.port, std::move(buf), other_members());
}

void GroupMember::cast_to_peers(sim::Payload buf) {
  std::vector<sim::HostId> others;
  for (sim::HostId p : config_.peers)
    if (p != id()) others.push_back(p);
  Process::multicast(config_.port, std::move(buf), others);
}

// ---------------------------------------------------------------------------
// Packet dispatch (charges the CPU cost model, then decodes and handles)
// ---------------------------------------------------------------------------

void GroupMember::on_packet(sim::Packet packet) {
  if (state_ == State::kDown) return;
  MsgType type;
  try {
    type = decode_type(packet.data);
  } catch (const net::WireError&) {
    return;
  }
  sim::Duration cost;
  switch (type) {
    case MsgType::kData: cost = config_.data_proc; break;
    case MsgType::kCut: {
      // Peek the periodic flag cheaply: it is the last byte.
      bool periodic = !packet.data.empty() && packet.data.back() != 0;
      cost = periodic ? config_.hb_proc : config_.ack_proc;
      break;
    }
    case MsgType::kRetransmit: cost = config_.data_proc; break;
    case MsgType::kVcAck:
    case MsgType::kVcCommit: cost = config_.ctrl_proc * 2; break;
    // Engine control (token pass, stamp announce) is control-plane work
    // like any other small packet. Engine comparisons that want equal
    // per-packet pricing set ctrl_proc ~ ack_proc (see bench_ordering).
    case MsgType::kEngine: cost = config_.ctrl_proc; break;
    default: cost = config_.ctrl_proc; break;
  }
  execute(cost, [this, data = std::move(packet.data), src = packet.src,
                 type] {
    if (state_ == State::kDown) return;
    try {
      switch (type) {
        case MsgType::kData: handle_data(decode_data(data)); break;
        case MsgType::kCut: handle_cut(decode_cut(data)); break;
        case MsgType::kNack: handle_nack(decode_nack(data)); break;
        case MsgType::kRetransmit:
          handle_retransmit(decode_retransmit(data));
          break;
        case MsgType::kJoinReq: handle_join_req(decode_join_req(data)); break;
        case MsgType::kLeave: handle_leave(decode_leave(data)); break;
        case MsgType::kVcPropose:
          handle_vc_propose(decode_vc_propose(data), src);
          break;
        case MsgType::kVcAck: handle_vc_ack(decode_vc_ack(data)); break;
        case MsgType::kVcCommit:
          handle_vc_commit(decode_vc_commit(data));
          break;
        case MsgType::kStateReq:
          handle_state_req(decode_state_req(data), src);
          break;
        case MsgType::kState: handle_state(decode_state(data)); break;
        case MsgType::kEngine: handle_engine(decode_engine(data)); break;
      }
    } catch (const net::WireError& e) {
      JLOG(kWarn, "gcs") << name() << ": malformed message: " << e.what();
    }
  });
}

// ---------------------------------------------------------------------------
// Data / ordering path
// ---------------------------------------------------------------------------

void GroupMember::note_alive(MemberId peer) {
  last_heard_[peer] = sim().now();
  if (state_ == State::kMember && view_.contains(peer)) suspected_.erase(peer);
}

void GroupMember::handle_data(DataWire m) {
  if (!is_member() || !view_.contains(m.header.from)) return;
  ++stats_.data_received;
  m_data_received_.add(1);
  note_alive(m.header.from);
  tick_lamport(m.msg.lamport);
  buffer_.observe(m.header.from, m.header.lamport, m.header.sent_upto,
                  m.header.received);
  if (buffer_.insert(m.msg)) {
    retain(m.msg);
    apply_engine(engine_->on_insert(m.msg, sim().now().us));
  }
  // Ack before handing anything to the application so the sender's AGREED
  // condition fires as soon as the protocol -- not the app -- is done;
  // coalesced while the CPU is busy with a burst, and batched under one
  // cumulative cut when order_batch > 1. Token mode skips these reactive
  // cuts entirely (the stamp is the delivery evidence).
  if (engine_->wants_ack_cuts()) schedule_ack_cut();
  deliver_ready();
  check_gaps();
}

void GroupMember::handle_cut(CutWire m) {
  if (!is_member() || !view_.contains(m.header.from)) {
    // Cuts also serve as liveness beacons during joins/merges.
    note_alive(m.header.from);
    return;
  }
  ++stats_.cuts_received;
  note_alive(m.header.from);
  tick_lamport(m.header.lamport);
  buffer_.observe(m.header.from, m.header.lamport, m.header.sent_upto,
                  m.header.received);
  deliver_ready();
  prune_retained();
  check_gaps();
}

void GroupMember::handle_nack(NackWire m) {
  note_alive(m.header.from);
  RetransmitWire reply;
  for (const MsgId& missing : m.missing) {
    auto it = retained_.find(missing);
    if (it != retained_.end()) reply.msgs.push_back(it->second);
  }
  if (reply.msgs.empty()) return;
  ++stats_.retransmits_served;
  m_retransmits_served_.add(1);
  reply.header = make_header();
  sim::Payload buf = encode(reply);
  sim::Endpoint dst{m.header.from, config_.port};
  execute(config_.send_proc,
          [this, buf = std::move(buf), dst] { send(dst, buf); });
}

void GroupMember::handle_retransmit(RetransmitWire m) {
  if (!is_member()) return;
  note_alive(m.header.from);
  buffer_.observe(m.header.from, m.header.lamport, m.header.sent_upto,
                  m.header.received);
  for (const DataMsg& msg : m.msgs) {
    if (!view_.contains(msg.id.sender)) continue;
    tick_lamport(msg.lamport);
    if (buffer_.insert(msg)) {
      retain(msg);
      apply_engine(engine_->on_insert(msg, sim().now().us));
    }
  }
  deliver_ready();
  check_gaps();
}

void GroupMember::deliver_ready() {
  for (const DataMsg& m : buffer_.drain()) deliver_to_app(m);
}

void GroupMember::deliver_to_app(const DataMsg& m) {
  ++stats_.delivered;
  m_delivered_.add(1);
  m_scope_delivered_.add(1);
  if (m.id.sender == id()) {
    // Multicast -> own ordered delivery latency (the paper's "latency of
    // the total-ordering protocol" metric).
    const auto& [seq, sent_us] = order_inflight_[m.id.seq & 63];
    if (seq == m.id.seq) {
      m_order_latency_.record(sim().now().us - sent_us);
      m_scope_order_latency_.record(sim().now().us - sent_us);
    }
    // An own ordered message coming back retires flow-control debt and may
    // reopen the window for queued sends (no-op while flushing: install_view
    // resets the debt and replays the queue through multicast()).
    if ((m.level == Delivery::kAgreed || m.level == Delivery::kSafe) &&
        inflight_ > 0) {
      --inflight_;
      m_pipeline_depth_.set(inflight_);
      if (!window_queue_.empty()) release_window();
    }
  }
  Delivered d{m.id.sender, m.id.seq, m.level, m.payload};
  if (awaiting_state_) {
    held_deliveries_.push_back(std::move(d));
    return;
  }
  if (callbacks_.on_deliver) callbacks_.on_deliver(d);
}

void GroupMember::handle_engine(EngineWire m) {
  if (!is_member() || !view_.contains(m.header.from)) return;
  note_alive(m.header.from);
  tick_lamport(m.header.lamport);
  buffer_.observe(m.header.from, m.header.lamport, m.header.sent_upto,
                  m.header.received);
  apply_engine(engine_->on_control(m.header.from, m.body, sim().now().us));
  deliver_ready();
  check_gaps();
}

void GroupMember::apply_engine(EngineOut out) {
  if (out.token_hold_us >= 0) m_token_hold_.record(out.token_hold_us);
  for (uint32_t n : out.batch_sizes) m_batch_size_.record(n);
  for (sim::Payload& body : out.broadcasts) {
    ++stats_.engine_sent;
    m_engine_msgs_.add(1);
    EngineWire w{make_header(), std::move(body)};
    cast_to_members(encode(w));
  }
  if (out.unicast) {
    ++stats_.engine_sent;
    m_engine_msgs_.add(1);
    if (out.token_forward) m_token_rotations_.add(1);
    EngineWire w{make_header(), std::move(out.unicast->second)};
    send(sim::Endpoint{out.unicast->first, config_.port}, encode(w));
  }
  if (out.forward_timer.us > 0) {
    set_timer(out.forward_timer, [this] {
      if (!is_member()) return;
      apply_engine(engine_->on_forward_timer(sim().now().us));
    });
  }
}

void GroupMember::schedule_ack_cut() {
  if (config_.order_batch <= 1) {
    // Legacy path: every data message reacts with a (coalesced) cut.
    send_cut(/*periodic=*/false);
    return;
  }
  ++unacked_data_;
  if (unacked_data_ >= config_.order_batch) {
    flush_ack_cut();
    return;
  }
  if (ack_timer_ == 0) {
    // Partial batch: bound the sender's wait for delivery evidence. The
    // nack_delay cadence keeps the latency cost of batching one NACK-round
    // small at low rates while a busy stream fills batches long before it.
    ack_timer_ = set_timer(config_.nack_delay, [this] {
      ack_timer_ = 0;
      flush_ack_cut();
    });
  }
}

void GroupMember::flush_ack_cut() {
  if (unacked_data_ == 0) return;
  m_batch_size_.record(unacked_data_);
  send_cut(/*periodic=*/false);
}

void GroupMember::send_cut(bool periodic) {
  if (!is_member()) return;
  if (view_.size() <= 1) return;
  if (periodic) {
    // Any cut carries the full cumulative received vector, so it acks
    // everything heard so far -- the batching counter restarts.
    unacked_data_ = 0;
    CutWire m{make_header(), true};
    ++stats_.cuts_sent;
    m_cuts_sent_.add(1);
    cast_to_members(encode(m));
    return;
  }
  if (cut_scheduled_) return;
  cut_scheduled_ = true;
  execute(config_.send_proc, [this] {
    cut_scheduled_ = false;
    unacked_data_ = 0;
    if (!is_member() || view_.size() <= 1) return;
    CutWire m{make_header(), false};
    ++stats_.cuts_sent;
    m_cuts_sent_.add(1);
    cast_to_members(encode(m));
  });
}

void GroupMember::retain(const DataMsg& m) { retained_[m.id] = m; }

void GroupMember::prune_retained() {
  for (auto it = retained_.begin(); it != retained_.end();) {
    if (it->first.seq <= buffer_.stable_upto(it->first.sender)) {
      it = retained_.erase(it);
    } else {
      ++it;
    }
  }
}

void GroupMember::check_gaps() {
  if (!is_member()) return;
  std::map<MemberId, std::vector<MsgId>> by_sender;
  sim::Time now = sim().now();
  for (const MsgId& gap : buffer_.gaps()) {
    auto it = nacked_.find(gap);
    if (it != nacked_.end() && now - it->second < config_.nack_delay * 4)
      continue;
    by_sender[gap.sender].push_back(gap);
  }
  for (auto& [sender, ids] : by_sender) {
    for (const MsgId& gap : ids) nacked_[gap] = now;
    set_timer(config_.nack_delay, [this, sender = sender, ids = ids] {
      if (!is_member()) return;
      NackWire m;
      for (const MsgId& gap : ids)
        if (buffer_.received_upto(gap.sender) < gap.seq) m.missing.push_back(gap);
      if (m.missing.empty()) return;
      ++stats_.nacks_sent;
      m_nacks_sent_.add(1);
      m.header = make_header();
      send(sim::Endpoint{sender, config_.port}, encode(m));
    });
  }
}

// ---------------------------------------------------------------------------
// Failure detection & membership triggers
// ---------------------------------------------------------------------------

void GroupMember::heartbeat_tick() {
  hb_timer_ = set_timer(config_.heartbeat_interval, [this] { heartbeat_tick(); });
  if (!is_member()) return;
  send_cut(/*periodic=*/true);
  if (state_ == State::kMember)
    apply_engine(engine_->on_tick(sim().now().us));
  suspect_check();
  // Merge beacon: a member of a partial view advertises itself to peers
  // outside the view so healed partitions re-merge.
  if (view_.size() < config_.peers.size() &&
      ++merge_tick_ % kMergeBeaconEvery == 0) {
    JoinReqWire m{make_header(), host().incarnation()};
    std::vector<sim::HostId> outside;
    for (sim::HostId p : config_.peers)
      if (!view_.contains(p)) outside.push_back(p);
    if (!outside.empty())
      Process::multicast(config_.port, encode(m), outside);
  }
}

void GroupMember::suspect_check() {
  if (state_ != State::kMember) return;
  sim::Time now = sim().now();
  bool changed = false;
  for (MemberId m : view_.members) {
    if (m == id() || suspected_.count(m)) continue;
    auto it = last_heard_.find(m);
    if (it == last_heard_.end() || now - it->second > config_.suspect_timeout) {
      suspected_.insert(m);
      changed = true;
      JLOG(kInfo, "gcs") << name() << " suspects member " << m;
    }
  }
  if (changed || !joiners_.empty() || !leavers_.empty()) maybe_coordinate();
}

void GroupMember::handle_join_req(JoinReqWire m) {
  MemberId who = m.header.from;
  if (who == id()) return;
  note_alive(who);
  if (state_ == State::kJoining) {
    joiners_.insert(who);
    return;
  }
  if (state_ != State::kMember) return;
  if (view_.contains(who)) {
    // A current member asking to join again restarted and lost its state:
    // treat the old incarnation as failed.
    suspected_.insert(who);
  }
  joiners_.insert(who);
  maybe_coordinate();
}

void GroupMember::handle_leave(LeaveWire m) {
  if (!view_.contains(m.header.from)) return;
  leavers_.insert(m.header.from);
  if (state_ == State::kMember) maybe_coordinate();
}

void GroupMember::maybe_coordinate() {
  if (state_ != State::kMember) return;
  std::set<MemberId> target(view_.members.begin(), view_.members.end());
  for (MemberId s : suspected_) target.erase(s);
  for (MemberId l : leavers_) target.erase(l);
  // A restarted member is both suspected (old incarnation) and a joiner
  // (new incarnation); it re-enters as fresh, so joiners win over suspects.
  for (MemberId j : joiners_) target.insert(j);
  std::vector<MemberId> membership = sorted(target);
  if (membership.empty()) return;
  // A restarted (or partitioned-and-diverged) incarnation is suspected AND
  // joining at once: the membership set comes out unchanged, but it still
  // needs a fresh view -- with a new epoch -- to be readmitted. Only bail
  // when nothing at all changed.
  bool reincarnation = false;
  for (MemberId j : joiners_) {
    if (suspected_.count(j)) {
      reincarnation = true;
      break;
    }
  }
  if (membership == view_.members && !reincarnation) return;

  if (config_.require_majority &&
      membership.size() * 2 <= config_.peers.size()) {
    JLOG(kInfo, "gcs") << name() << " holding view change: no majority";
    return;
  }

  // Only the lowest unsuspected current member coordinates.
  MemberId coordinator = sim::kInvalidHost;
  for (MemberId m : view_.members) {
    if (!suspected_.count(m) && !leavers_.count(m)) {
      coordinator = m;
      break;
    }
  }
  if (coordinator != id()) return;
  begin_flush(std::move(membership));
}

// ---------------------------------------------------------------------------
// Flush / view change
// ---------------------------------------------------------------------------

void GroupMember::begin_flush(std::vector<MemberId> membership) {
  state_ = State::kFlushing;
  if (flush_started_us_ < 0) flush_started_us_ = sim().now().us;
  flush_coordinator_ = true;
  max_epoch_ = std::max(max_epoch_, view_.id.epoch) + 1;
  flush_proposed_ = ViewId{max_epoch_, id()};
  flush_membership_ = std::move(membership);
  flush_acks_.clear();
  JLOG(kInfo, "gcs") << name() << " proposing view epoch " << max_epoch_
                     << " with " << flush_membership_.size() << " members";

  // Own ack.
  VcAckWire own;
  own.header = make_header();
  own.proposed = *flush_proposed_;
  for (const auto& [id_, msg] : retained_) {
    (void)id_;
    own.held.push_back(msg);
  }
  own.engine_state = engine_->transfer_state();
  flush_acks_[id()] = own;

  VcProposeWire prop{make_header(), *flush_proposed_, flush_membership_};
  std::vector<sim::HostId> others;
  for (MemberId m : flush_membership_)
    if (m != id()) others.push_back(m);
  if (!others.empty()) Process::multicast(config_.port, encode(prop), others);

  if (flush_timer_ != 0) cancel_timer(flush_timer_);
  flush_timer_ =
      set_timer(config_.flush_timeout, [this] { flush_timeout_fired(); });

  if (others.empty()) {
    complete_flush();
  }
}

void GroupMember::handle_vc_propose(VcProposeWire m, sim::Endpoint from) {
  note_alive(m.header.from);
  if (state_ == State::kDown) return;
  // A (re)joiner's clock catches up through the flush exchange, so nothing
  // it sends in the new view orders before messages the old view delivered.
  tick_lamport(m.header.lamport);
  // Ignore stale proposals.
  if (m.proposed.epoch <= view_.id.epoch) return;
  if (flush_proposed_ && !flush_coordinator_ && m.proposed < *flush_proposed_)
    return;
  if (flush_coordinator_ && flush_proposed_ && m.proposed < *flush_proposed_)
    return;
  // A higher proposal supersedes our own coordination attempt.
  if (flush_coordinator_ && flush_proposed_ && m.proposed > *flush_proposed_) {
    flush_coordinator_ = false;
    flush_acks_.clear();
  }
  max_epoch_ = std::max(max_epoch_, m.proposed.epoch);
  flush_proposed_ = m.proposed;
  if (state_ == State::kMember) state_ = State::kFlushing;
  if (flush_started_us_ < 0) flush_started_us_ = sim().now().us;

  VcAckWire ack;
  ack.header = make_header();
  ack.proposed = m.proposed;
  for (const auto& [id_, msg] : retained_) {
    (void)id_;
    ack.held.push_back(msg);
  }
  ack.engine_state = engine_->transfer_state();
  send(from, encode(ack));

  if (flush_timer_ != 0) cancel_timer(flush_timer_);
  flush_timer_ =
      set_timer(config_.flush_timeout, [this] { flush_timeout_fired(); });
}

void GroupMember::handle_vc_ack(VcAckWire m) {
  note_alive(m.header.from);
  tick_lamport(m.header.lamport);
  if (!flush_coordinator_ || !flush_proposed_ || m.proposed != *flush_proposed_)
    return;
  flush_acks_[m.header.from] = std::move(m);
  for (MemberId member : flush_membership_) {
    if (!flush_acks_.count(member)) return;
  }
  complete_flush();
}

void GroupMember::complete_flush() {
  VcCommitWire commit;
  commit.new_view.id = *flush_proposed_;
  commit.new_view.members = flush_membership_;
  commit.old_members = view_.members;
  commit.state_source = sim::kInvalidHost;

  std::set<MemberId> old_set(view_.members.begin(), view_.members.end());
  for (MemberId m : flush_membership_) {
    bool fresh = !old_set.count(m) || joiners_.count(m);
    if (fresh) commit.joiners.push_back(m);
  }

  // Union of everything anyone holds, plus sequence baselines and the
  // merged engine state.
  std::map<MsgId, DataMsg> union_map;
  for (const auto& [member, seq] : buffer_.received_vector())
    commit.seq_baseline[member] = seq;
  std::vector<sim::Payload> engine_states;
  engine_states.reserve(flush_acks_.size());
  for (auto& [member, ack] : flush_acks_) {
    (void)member;
    engine_states.push_back(ack.engine_state);
    for (DataMsg& msg : ack.held) {
      uint64_t& base = commit.seq_baseline[msg.id.sender];
      base = std::max(base, msg.id.seq);
      union_map.emplace(msg.id, std::move(msg));
    }
    for (const auto& [sender, seq] : ack.header.received) {
      uint64_t& base = commit.seq_baseline[sender];
      base = std::max(base, seq);
    }
  }
  for (auto& [id_, msg] : union_map) {
    (void)id_;
    commit.union_msgs.push_back(std::move(msg));
  }
  // Joiners restart their stream at zero.
  for (MemberId j : commit.joiners) commit.seq_baseline[j] = 0;
  commit.engine_state = engine_->merge_transfer_states(engine_states);

  if (!commit.joiners.empty()) {
    for (MemberId m : flush_membership_) {
      bool is_joiner =
          std::find(commit.joiners.begin(), commit.joiners.end(), m) !=
          commit.joiners.end();
      if (!is_joiner && old_set.count(m)) {
        commit.state_source = m;
        break;
      }
    }
  }

  commit.header = make_header();
  std::vector<sim::HostId> others;
  for (MemberId m : flush_membership_)
    if (m != id()) others.push_back(m);
  if (!others.empty())
    Process::multicast(config_.port, encode(commit), others);
  install_view(commit);
}

void GroupMember::handle_vc_commit(VcCommitWire m) {
  note_alive(m.header.from);
  tick_lamport(m.header.lamport);
  if (m.new_view.id <= view_.id) return;
  if (flush_proposed_ && m.new_view.id < *flush_proposed_) return;
  install_view(m);
}

void GroupMember::install_view(const VcCommitWire& commit) {
  if (flush_timer_ != 0) {
    cancel_timer(flush_timer_);
    flush_timer_ = 0;
  }
  bool was_joining = (state_ == State::kJoining);
  flush_proposed_.reset();
  flush_coordinator_ = false;
  flush_acks_.clear();
  flush_membership_.clear();

  if (!commit.new_view.contains(id())) {
    JLOG(kInfo, "gcs") << name() << " excluded from view epoch "
                       << commit.new_view.id.epoch;
    become_down();
    if (callbacks_.on_view) callbacks_.on_view(View{});
    return;
  }

  // The merged engine state must land before the flush delivery so the
  // flush order (token mode: stamped globals first) agrees at every member.
  engine_->install_transfer_state(commit.engine_state);

  // Deliver the old view's closing message set (identical everywhere).
  if (!was_joining) {
    for (const DataMsg& msg : commit.union_msgs) {
      if (buffer_.insert(msg)) retain(msg);
    }
    for (const DataMsg& msg : buffer_.flush_all()) deliver_to_app(msg);
  }

  // Install.
  view_ = commit.new_view;
  max_epoch_ = std::max(max_epoch_, view_.id.epoch);
  buffer_.reset(view_, id());
  std::set<MemberId> joiner_set(commit.joiners.begin(), commit.joiners.end());
  for (MemberId m : view_.members) {
    if (joiner_set.count(m)) {
      // A reincarnated member (crash + rejoin with no intervening view)
      // survives the buffer's merge pass; its old incarnation's claims must
      // not gate the fresh stream.
      buffer_.reset_peer(m);
      buffer_.set_stream_position(m, 0);
    } else {
      auto it = commit.seq_baseline.find(m);
      if (it != commit.seq_baseline.end())
        buffer_.set_stream_position(
            m, std::max(it->second, buffer_.received_upto(m)));
    }
  }
  if (joiner_set.count(id())) {
    my_seq_ = 0;
  }
  retained_.clear();
  nacked_.clear();
  suspected_.clear();
  leavers_.clear();
  for (MemberId j : view_.members) joiners_.erase(j);
  sim::Time now = sim().now();
  for (MemberId m : view_.members) last_heard_[m] = now;
  state_ = State::kMember;
  // Start the engine's new-view epoch (token mode: the lowest member mints
  // the view's token) now that stream positions are settled.
  apply_engine(engine_->reset(view_, id(), now.us));
  ++stats_.views_installed;
  m_views_installed_.add(1);
  telemetry::TraceBuffer& tr = sim().telemetry().trace();
  if (flush_started_us_ >= 0) {
    tr.complete(flush_started_us_, now.us, host_id(), tc_flush_,
                view_.id.epoch, view_.size());
    flush_started_us_ = -1;
  }
  tr.instant(now.us, host_id(), tc_view_, view_.id.epoch, view_.size());
  if (join_timer_ != 0) {
    cancel_timer(join_timer_);
    join_timer_ = 0;
  }

  JLOG(kInfo, "gcs") << name() << " installed view epoch " << view_.id.epoch
                     << " (" << view_.size() << " members)";

  // State transfer.
  bool i_am_fresh = joiner_set.count(id()) > 0;
  if (!commit.joiners.empty() && !i_am_fresh && callbacks_.get_state &&
      commit.state_source != sim::kInvalidHost) {
    // Snapshot now, before any new-view message mutates the application.
    cached_state_ = callbacks_.get_state();
  }
  if ((was_joining || i_am_fresh) && commit.state_source != sim::kInvalidHost &&
      commit.state_source != id() && callbacks_.install_state) {
    awaiting_state_ = true;
    state_source_ = commit.state_source;
    old_members_for_state_.clear();
    for (MemberId m : commit.old_members) {
      if (m != id() && view_.contains(m) && !joiner_set.count(m))
        old_members_for_state_.push_back(m);
    }
    request_state();
  } else {
    awaiting_state_ = false;
  }

  if (callbacks_.on_view) callbacks_.on_view(view_);

  // Bootstrap the new view's clocks so AGREED progress does not wait a full
  // heartbeat.
  send_cut(/*periodic=*/false);

  // The flush delivered -- or identically discarded -- every message this
  // member had in flight, so the flow-control debt resets with the view.
  inflight_ = 0;
  m_pipeline_depth_.set(0);

  // Release queued sends through multicast() (which re-applies the window):
  // window-stalled sends first -- they predate anything buffered during the
  // flush -- then the flush-time buffer.
  auto stalled = std::move(window_queue_);
  window_queue_.clear();
  auto queued = std::move(pending_sends_);
  pending_sends_.clear();
  for (auto& [payload, level] : stalled) multicast(std::move(payload), level);
  for (auto& [payload, level] : queued) multicast(std::move(payload), level);
}

void GroupMember::flush_timeout_fired() {
  flush_timer_ = 0;
  if (state_ != State::kFlushing && state_ != State::kJoining) return;
  if (flush_coordinator_) {
    // Drop unresponsive members and retry.
    std::vector<MemberId> responsive;
    for (MemberId m : flush_membership_) {
      if (flush_acks_.count(m)) {
        responsive.push_back(m);
      } else {
        suspected_.insert(m);
        joiners_.erase(m);
        JLOG(kInfo, "gcs") << name() << " flush: no ack from " << m;
      }
    }
    if (responsive.empty() || responsive == std::vector<MemberId>{id()}) {
      responsive = {id()};
    }
    if (config_.require_majority &&
        responsive.size() * 2 <= config_.peers.size()) {
      state_ = State::kMember;
      flush_coordinator_ = false;
      flush_proposed_.reset();
      return;
    }
    begin_flush(std::move(responsive));
    return;
  }
  // Participant: the coordinator died mid-flush.
  if (flush_proposed_) {
    suspected_.insert(flush_proposed_->coordinator);
    flush_proposed_.reset();
  }
  if (view_.contains(id()) && !view_.members.empty()) {
    state_ = State::kMember;
    maybe_coordinate();
  }
}

// ---------------------------------------------------------------------------
// Join / state transfer
// ---------------------------------------------------------------------------

void GroupMember::join_tick() {
  join_timer_ = 0;
  if (state_ != State::kJoining) return;
  ++join_ticks_;
  JoinReqWire m{make_header(), host().incarnation()};
  cast_to_peers(encode(m));

  if (join_ticks_ >= kJoinSettleTicks) {
    // Cold start: no existing member answered; the lowest-id requester
    // founds the group.
    std::vector<MemberId> candidates = sorted(joiners_);
    bool majority_ok = !config_.require_majority ||
                       candidates.size() * 2 > config_.peers.size();
    if (!candidates.empty() && candidates.front() == id() && majority_ok &&
        !flush_proposed_) {
      begin_flush(std::move(candidates));
      // Note: state_ is now kFlushing; join_timer keeps silent.
      return;
    }
  }
  join_timer_ = set_timer(config_.join_retry, [this] { join_tick(); });
}

void GroupMember::request_state() {
  if (!awaiting_state_) return;
  StateReqWire req{make_header(), view_.id};
  send(sim::Endpoint{state_source_, config_.port}, encode(req));
  state_timer_ = set_timer(config_.state_retry, [this] {
    if (!awaiting_state_) return;
    // Rotate to another old member in case the source died.
    if (!old_members_for_state_.empty()) {
      auto it = std::find(old_members_for_state_.begin(),
                          old_members_for_state_.end(), state_source_);
      size_t idx = it == old_members_for_state_.end()
                       ? 0
                       : (static_cast<size_t>(it - old_members_for_state_.begin()) + 1) %
                             old_members_for_state_.size();
      state_source_ = old_members_for_state_[idx];
    }
    request_state();
  });
}

void GroupMember::handle_state_req(StateReqWire m, sim::Endpoint from) {
  note_alive(m.header.from);
  if (!is_member()) return;
  StateWire reply;
  reply.header = make_header();
  reply.view_id = m.view_id;
  if (cached_state_) {
    reply.state = *cached_state_;
  } else if (callbacks_.get_state) {
    reply.state = callbacks_.get_state();
  } else {
    return;
  }
  execute(config_.send_proc,
          [this, buf = encode(reply), from] { send(from, buf); });
}

void GroupMember::handle_state(StateWire m) {
  note_alive(m.header.from);
  if (!awaiting_state_) return;
  if (m.view_id != view_.id) return;
  awaiting_state_ = false;
  if (state_timer_ != 0) {
    cancel_timer(state_timer_);
    state_timer_ = 0;
  }
  JLOG(kInfo, "gcs") << name() << " received state ("
                     << m.state.size() << " bytes)";
  if (callbacks_.install_state) callbacks_.install_state(m.state);
  auto held = std::move(held_deliveries_);
  held_deliveries_.clear();
  for (Delivered& d : held) {
    if (callbacks_.on_deliver) callbacks_.on_deliver(d);
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void GroupMember::become_down() {
  state_ = State::kDown;
  if (hb_timer_ != 0) cancel_timer(hb_timer_);
  if (join_timer_ != 0) cancel_timer(join_timer_);
  if (flush_timer_ != 0) cancel_timer(flush_timer_);
  if (state_timer_ != 0) cancel_timer(state_timer_);
  if (ack_timer_ != 0) cancel_timer(ack_timer_);
  hb_timer_ = join_timer_ = flush_timer_ = state_timer_ = ack_timer_ = 0;
  buffer_.clear_all();
  engine_->clear();
  view_ = View{};
  lamport_ = 0;
  my_seq_ = 0;
  retained_.clear();
  nacked_.clear();
  last_heard_.clear();
  suspected_.clear();
  joiners_.clear();
  leavers_.clear();
  flush_proposed_.reset();
  flush_coordinator_ = false;
  flush_acks_.clear();
  flush_membership_.clear();
  flush_started_us_ = -1;
  pending_sends_.clear();
  inflight_ = 0;
  m_pipeline_depth_.set(0);
  window_queue_.clear();
  unacked_data_ = 0;
  awaiting_state_ = false;
  held_deliveries_.clear();
  cached_state_.reset();
  old_members_for_state_.clear();
  cut_scheduled_ = false;
  join_ticks_ = 0;
  merge_tick_ = 0;
}

void GroupMember::on_crash() {
  // Timers are already cancelled by the Process base; reset handles.
  hb_timer_ = join_timer_ = flush_timer_ = state_timer_ = ack_timer_ = 0;
  become_down();
  JLOG(kInfo, "gcs") << name() << " crashed (state lost)";
}

void GroupMember::on_restart() {
  // The daemon restarts down; the application layer decides when to rejoin.
}

}  // namespace gcs
