#include "gcs/engine_allack.h"

#include <algorithm>

#include "gcs/ordering.h"

namespace gcs {

EngineOut AllAckEngine::reset(const View& view, MemberId self, int64_t) {
  view_ = view;
  self_ = self;
  // Same merge pass as OrderingBuffer::reset: keep surviving peers' clocks
  // (their evidence is still valid), drop departed peers (their silence must
  // not block delivery), seed new members at zero.
  auto it = heard_.begin();
  for (MemberId m : view_.members) {
    while (it != heard_.end() && it->first < m) it = heard_.erase(it);
    if (it == heard_.end() || it->first != m)
      it = heard_.emplace_hint(it, m, 0);
    ++it;
  }
  while (it != heard_.end()) it = heard_.erase(it);
  return {};
}

void AllAckEngine::clear() {
  view_ = View{};
  self_ = sim::kInvalidHost;
  heard_.clear();
}

void AllAckEngine::observe(MemberId p, uint64_t lamport) {
  uint64_t& heard = heard_[p];
  heard = std::max(heard, lamport);
}

bool AllAckEngine::agreed_condition(const DataMsg& m) const {
  for (MemberId q : view_.members) {
    // Our own clock is ahead of everything we buffered, and our own
    // messages are inserted synchronously -- nothing of ours is in flight
    // towards ourselves.
    if (q == self_) continue;
    auto it = heard_.find(q);
    uint64_t heard = it == heard_.end() ? 0 : it->second;
    // The sender's own timestamp on m proves it will never send anything
    // ordered before m; every other member must have been heard past m.
    if (heard <= m.lamport && q != m.id.sender) return false;
    // No earlier-ordered message from q may still be missing.
    if (buffer_->received_upto(q) < buffer_->peer_sent_upto(q)) return false;
  }
  return true;
}

bool AllAckEngine::safe_condition(const DataMsg& m) const {
  if (!agreed_condition(m)) return false;
  for (MemberId q : view_.members) {
    if (q == self_) continue;  // we obviously hold m
    if (buffer_->peer_received(q, m.id.sender) < m.id.seq) return false;
  }
  return true;
}

const DataMsg* AllAckEngine::next_deliverable() const {
  if (buffer_ == nullptr) return nullptr;
  // AGREED/SAFE deliver strictly in OrderKey order: only the lowest
  // remaining totally-ordered message may go.
  for (const auto& [key, m] : buffer_->pending()) {
    (void)key;
    if (m.level != Delivery::kAgreed && m.level != Delivery::kSafe) continue;
    bool ready = m.level == Delivery::kAgreed ? agreed_condition(m)
                                              : safe_condition(m);
    return ready ? &m : nullptr;
  }
  return nullptr;
}

}  // namespace gcs
