#include "gcs/engine_token.h"

#include <algorithm>

#include "gcs/ordering.h"

namespace gcs {
namespace {

// Engine payload sub-types (first byte of every kEngine body).
constexpr uint8_t kSubToken = 1;       ///< the circulating token (unicast)
constexpr uint8_t kSubStamps = 2;      ///< batch stamp announcement (broadcast)
constexpr uint8_t kSubStampNack = 3;   ///< stamp-gap recovery request
constexpr uint8_t kSubRegenQuery = 4;  ///< regeneration round: fence + poll
constexpr uint8_t kSubRegenReply = 5;  ///< regeneration round: next_global

/// Recent-stamp history kept per member for re-announces and flush transfer.
constexpr size_t kStampLogCap = 4096;
/// Stamps re-announced per NACK response (the requester renacks for more).
constexpr size_t kReannounceBatch = 32;

}  // namespace

EngineOut TokenRingEngine::reset(const View& view, MemberId self,
                                 int64_t now_us) {
  view_ = view;
  self_ = self;
  holding_ = false;
  forward_pending_ = false;
  idle_streak_ = 0;
  // Token ids restart per view -- the epoch already fences cross-view
  // traffic -- so a rejoined member can mint without knowing old ids.
  token_id_seen_ = 0;
  rotation_ = 0;
  regen_pending_ = false;
  regen_id_ = 0;
  regen_replies_.clear();
  nack_head_ = 0;
  nack_streak_ = 0;
  stamps_.clear();
  my_unstamped_.clear();
  stamp_log_.clear();
  stamp_by_global_.clear();
  flush_stamps_.clear();
  // next_global_ was raised to the merged maximum by install_transfer_state;
  // everything below it was either flush-delivered or dropped identically
  // everywhere, so the delivered prefix restarts just under it.
  delivered_global_ = next_global_ - 1;
  last_activity_us_ = now_us;
  // An idle token is only sighted once per lap, and an idle lap takes up to
  // size * idle_cap -- scale the loss timeout with the ring.
  regen_timeout_us_ =
      tuning_.token_timeout.us +
      3 * static_cast<int64_t>(view_.size()) * tuning_.token_idle_cap.us;
  if (!view_.members.empty() && view_.lowest() == self_) {
    ++token_id_seen_;
    return take_token(now_us);
  }
  return {};
}

void TokenRingEngine::clear() {
  view_ = View{};
  self_ = sim::kInvalidHost;
  holding_ = false;
  forward_pending_ = false;
  token_id_seen_ = 0;
  rotation_ = 0;
  next_global_ = 1;
  hold_start_us_ = 0;
  last_activity_us_ = 0;
  idle_streak_ = 0;
  delivered_global_ = 0;
  regen_timeout_us_ = 0;
  regen_pending_ = false;
  regen_id_ = 0;
  regen_replies_.clear();
  nack_head_ = 0;
  nack_streak_ = 0;
  stamps_.clear();
  my_unstamped_.clear();
  stamp_log_.clear();
  stamp_by_global_.clear();
  flush_stamps_.clear();
}

MemberId TokenRingEngine::next_in_ring() const {
  auto it = std::upper_bound(view_.members.begin(), view_.members.end(), self_);
  if (it == view_.members.end()) it = view_.members.begin();
  return *it;
}

sim::Payload TokenRingEngine::encode_token() const {
  net::Writer w;
  w.u8(kSubToken);
  w.u64(view_.id.epoch);
  w.u64(token_id_seen_);
  w.u64(rotation_);
  w.u64(next_global_);
  return w.take();
}

sim::Payload TokenRingEngine::encode_stamp_nack(uint64_t from_global) const {
  net::Writer w;
  w.u8(kSubStampNack);
  w.u64(view_.id.epoch);
  w.u64(from_global);
  return w.take();
}

sim::Payload TokenRingEngine::encode_regen_query() const {
  net::Writer w;
  w.u8(kSubRegenQuery);
  w.u64(view_.id.epoch);
  w.u64(regen_id_);
  return w.take();
}

void TokenRingEngine::remember(uint64_t global, const Stamp& s) {
  stamps_.insert_or_assign(global, s);
  stamp_by_global_.insert_or_assign(global, s);
  stamp_log_.emplace_back(global, s);
  if (stamp_log_.size() > kStampLogCap) {
    const auto& [g, old] = stamp_log_.front();
    // A re-stamp leaves two log entries for one global; evicting the older
    // one must not drop the index entry holding the newer assignment.
    auto it = stamp_by_global_.find(g);
    if (it != stamp_by_global_.end() && it->second.token_id == old.token_id)
      stamp_by_global_.erase(it);
    stamp_log_.pop_front();
  }
}

void TokenRingEngine::apply_stamp(uint64_t global, const Stamp& s) {
  if (global <= delivered_global_) return;  // already behind our prefix
  auto it = stamps_.find(global);
  // A regenerated (higher-id) token wins a stamp conflict; re-announces of
  // the same assignment are idempotent.
  if (it != stamps_.end() && it->second.token_id >= s.token_id) return;
  remember(global, s);
}

EngineOut TokenRingEngine::take_token(int64_t now_us) {
  holding_ = true;
  forward_pending_ = false;
  hold_start_us_ = now_us;
  last_activity_us_ = now_us;
  return stamp_and_forward(now_us, /*may_defer=*/true);
}

EngineOut TokenRingEngine::stamp_and_forward(int64_t now_us, bool may_defer) {
  EngineOut out;
  if (!my_unstamped_.empty()) {
    // Assign consecutive globals to the whole backlog and announce it in
    // chunks of at most max_batch stamps each (0: the whole backlog in one
    // announcement, the legacy wire behavior). A capped batch bounds the
    // blast radius of one lost announcement: the NACK path re-requests one
    // chunk-sized run instead of the entire hold's worth of stamps.
    const size_t cap = tuning_.max_batch == 0
                           ? my_unstamped_.size()
                           : static_cast<size_t>(tuning_.max_batch);
    while (!my_unstamped_.empty()) {
      const size_t n = std::min(my_unstamped_.size(), cap);
      net::Writer w;
      w.u8(kSubStamps);
      w.u64(view_.id.epoch);
      w.u64(token_id_seen_);
      w.u64(next_global_);
      w.u32(static_cast<uint32_t>(n));
      for (size_t i = 0; i < n; ++i) {
        MsgId id{self_, my_unstamped_.front()};
        my_unstamped_.pop_front();
        w.u32(id.sender);
        w.u64(id.seq);
        remember(next_global_++, Stamp{id, token_id_seen_});
      }
      if (view_.size() > 1) {
        out.broadcasts.push_back(w.take());
        out.batch_sizes.push_back(static_cast<uint32_t>(n));
      }
    }
    idle_streak_ = 0;
    last_activity_us_ = now_us;
  } else if (may_defer && view_.size() > 1) {
    // Nothing to stamp: hold the token briefly instead of spinning an idle
    // ring, backing off while consecutive laps stay idle.
    int64_t delay = std::min(tuning_.token_idle.us << std::min(idle_streak_, 6),
                             tuning_.token_idle_cap.us);
    ++idle_streak_;
    if (delay > 0) {
      forward_pending_ = true;
      out.forward_timer = sim::usec(delay);
      return out;
    }
  }
  if (view_.size() <= 1) return out;  // nobody to hand the token to
  return forward_now(std::move(out), now_us);
}

EngineOut TokenRingEngine::forward_now(EngineOut out, int64_t now_us) {
  holding_ = false;
  forward_pending_ = false;
  ++rotation_;
  out.unicast = {next_in_ring(), encode_token()};
  out.token_forward = true;
  out.token_hold_us = now_us - hold_start_us_;
  last_activity_us_ = now_us;
  return out;
}

EngineOut TokenRingEngine::on_local_send(const DataMsg& m, int64_t now_us) {
  if (m.level != Delivery::kAgreed && m.level != Delivery::kSafe) return {};
  my_unstamped_.push_back(m.id.seq);
  if (!holding_) return {};
  return stamp_and_forward(now_us, /*may_defer=*/false);
}

EngineOut TokenRingEngine::on_insert(const DataMsg&, int64_t now_us) {
  idle_streak_ = 0;
  if (holding_ && forward_pending_) {
    // Traffic appeared while idling with the token: hand it off now so the
    // sender gets stamped without waiting out the idle delay.
    return stamp_and_forward(now_us, /*may_defer=*/false);
  }
  return {};
}

EngineOut TokenRingEngine::on_control(MemberId from, const sim::Payload& body,
                                      int64_t now_us) {
  net::Reader r(body);
  uint8_t sub = r.u8();
  switch (sub) {
    case kSubToken: {
      uint64_t epoch = r.u64();
      uint64_t token_id = r.u64();
      uint64_t rotation = r.u64();
      uint64_t next = r.u64();
      r.expect_done();
      if (epoch != view_.id.epoch) return {};
      if (token_id < token_id_seen_) return {};  // fenced by a regeneration
      token_id_seen_ = token_id;
      next_global_ = std::max(next_global_, next);
      last_activity_us_ = now_us;
      // Already holding: a duplicate (regenerated) token caught up with the
      // live one; absorb it so a single token remains.
      if (holding_) return {};
      rotation_ = rotation;
      return take_token(now_us);
    }
    case kSubStamps: {
      uint64_t epoch = r.u64();
      uint64_t token_id = r.u64();
      uint64_t first = r.u64();
      uint32_t n = r.u32();
      std::vector<MsgId> ids;
      ids.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        MsgId id;
        id.sender = r.u32();
        id.seq = r.u64();
        ids.push_back(id);
      }
      r.expect_done();
      if (epoch != view_.id.epoch) return {};
      last_activity_us_ = now_us;
      idle_streak_ = 0;
      token_id_seen_ = std::max(token_id_seen_, token_id);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t g = first + i;
        next_global_ = std::max(next_global_, g + 1);
        apply_stamp(g, Stamp{ids[i], token_id});
      }
      return {};
    }
    case kSubStampNack: {
      uint64_t epoch = r.u64();
      uint64_t from_global = r.u64();
      r.expect_done();
      if (epoch != view_.id.epoch) return {};
      return reannounce(from, from_global);
    }
    case kSubRegenQuery: {
      uint64_t epoch = r.u64();
      uint64_t regen_id = r.u64();
      r.expect_done();
      if (epoch != view_.id.epoch) return {};
      if (regen_id < token_id_seen_) return {};  // stale round, outlived
      if (regen_id > token_id_seen_) {
        // First sighting: the round fences the current token. A holder
        // relinquishes -- its token id just lost -- keeping its stamps (the
        // NACK path can re-announce them) and its unstamped backlog (the
        // minted token will stamp it).
        token_id_seen_ = regen_id;
        holding_ = false;
        forward_pending_ = false;
      }
      // Reply even to a repeated query: the previous reply may have been
      // lost, and the minter cannot take a token until everyone answered.
      net::Writer w;
      w.u8(kSubRegenReply);
      w.u64(view_.id.epoch);
      w.u64(regen_id);
      w.u64(next_global_);
      EngineOut out;
      out.unicast = {from, w.take()};
      return out;
    }
    case kSubRegenReply: {
      uint64_t epoch = r.u64();
      uint64_t regen_id = r.u64();
      uint64_t next = r.u64();
      r.expect_done();
      if (epoch != view_.id.epoch) return {};
      if (!regen_pending_ || regen_id != regen_id_) return {};
      next_global_ = std::max(next_global_, next);
      regen_replies_.insert(from);
      if (regen_replies_.size() + 1 < view_.size()) return {};
      // Everyone answered after being fenced, so no member can hold -- or
      // mint later -- an assignment at or above the merged next_global_:
      // the replacement token cannot reuse a delivered global.
      regen_pending_ = false;
      return take_token(now_us);
    }
    default:
      return {};
  }
}

EngineOut TokenRingEngine::on_tick(int64_t now_us) {
  if (view_.members.empty()) return {};
  // Token regeneration: the ring has been silent past the loss timeout; the
  // lowest member replaces the token. With peers this is a recovery round,
  // not a direct mint: the query fences the old token and collects every
  // member's next_global_, so the replacement cannot reassign a global that
  // was already stamped -- and possibly delivered -- under the old token
  // even when both the stamp announcement and the hand-off were lost.
  if (!holding_ && view_.lowest() == self_) {
    if (regen_pending_) {
      // Round in flight: re-broadcast the query until everyone's reply
      // lands (queries and replies are lossy too).
      EngineOut out;
      out.add_broadcast(encode_regen_query());
      return out;
    }
    if (now_us - last_activity_us_ > regen_timeout_us_) {
      if (view_.size() == 1) {  // nobody to consult (or to diverge from)
        ++token_id_seen_;
        return take_token(now_us);
      }
      regen_id_ = ++token_id_seen_;
      regen_pending_ = true;
      regen_replies_.clear();
      EngineOut out;
      out.add_broadcast(encode_regen_query());
      return out;
    }
  }
  // Stamp-gap recovery: delivery is stalled behind a global we never heard
  // the assignment for (the announce was lost); ask the ring. The gap is
  // visible either from a later stamp or from the token's next_global.
  if (view_.size() > 1 && next_global_ > delivered_global_ + 1 &&
      stamps_.find(delivered_global_ + 1) == stamps_.end()) {
    uint64_t head = delivered_global_ + 1;
    if (head != nack_head_) {
      // Fresh gap: give the in-flight announcement one full tick to land
      // before asking the ring.
      nack_head_ = head;
      nack_streak_ = 0;
      return {};
    }
    // Persisted gap: NACK at most every other tick, so one lost
    // announcement costs the ring a trickle, not a storm.
    if (++nack_streak_ % 2 != 1) return {};
    EngineOut out;
    out.add_broadcast(encode_stamp_nack(head));
    return out;
  }
  nack_head_ = 0;
  nack_streak_ = 0;
  return {};
}

EngineOut TokenRingEngine::on_forward_timer(int64_t now_us) {
  if (!holding_ || !forward_pending_) return {};  // stale timer
  forward_pending_ = false;
  return stamp_and_forward(now_us, /*may_defer=*/false);
}

EngineOut TokenRingEngine::reannounce(MemberId to, uint64_t from_global) const {
  auto lookup = [this](uint64_t g) -> const Stamp* {
    // stamp_by_global_ indexes the whole log; stamps_ additionally covers
    // live assignments old enough to have been evicted from it.
    auto it = stamp_by_global_.find(g);
    if (it != stamp_by_global_.end()) return &it->second;
    auto sit = stamps_.find(g);
    return sit == stamps_.end() ? nullptr : &sit->second;
  };
  // Respond only if we know the assignment at exactly the gap head (anyone
  // may answer; the announcement is idempotent). One announce covers a
  // contiguous same-token-id run, unicast to the requester -- a broadcast
  // answer times N requesters is exactly the storm the NACK limiter avoids.
  const Stamp* head = lookup(from_global);
  if (head == nullptr) return {};
  std::vector<MsgId> run;
  run.push_back(head->id);
  while (run.size() < kReannounceBatch) {
    const Stamp* s = lookup(from_global + run.size());
    if (s == nullptr || s->token_id != head->token_id) break;
    run.push_back(s->id);
  }
  net::Writer w;
  w.u8(kSubStamps);
  w.u64(view_.id.epoch);
  w.u64(head->token_id);
  w.u64(from_global);
  w.u32(static_cast<uint32_t>(run.size()));
  for (const MsgId& id : run) {
    w.u32(id.sender);
    w.u64(id.seq);
  }
  EngineOut out;
  out.unicast = {to, w.take()};
  return out;
}

bool TokenRingEngine::stable_everywhere(const DataMsg& m) const {
  for (MemberId q : view_.members) {
    if (q == self_) continue;  // we obviously hold m
    if (buffer_->peer_received(q, m.id.sender) < m.id.seq) return false;
  }
  return true;
}

const DataMsg* TokenRingEngine::next_deliverable() const {
  if (buffer_ == nullptr) return nullptr;
  auto it = stamps_.find(delivered_global_ + 1);
  if (it == stamps_.end()) return nullptr;  // no stamp yet (or gap: NACKed)
  const DataMsg* m = buffer_->find_pending(it->second.id);
  if (m == nullptr) return nullptr;  // data gap: the NACK path will fill it
  if (m->level == Delivery::kSafe && !stable_everywhere(*m)) return nullptr;
  return m;
}

void TokenRingEngine::on_delivered(const DataMsg& m) {
  if (m.level != Delivery::kAgreed && m.level != Delivery::kSafe) return;
  auto it = stamps_.find(delivered_global_ + 1);
  if (it != stamps_.end() && it->second.id == m.id) {
    ++delivered_global_;
    stamps_.erase(it);
  }
}

sim::Payload TokenRingEngine::transfer_state() const {
  // Everything we know about global assignments: the log index (delivered
  // stamps matter too -- a member that lagged behind must flush them in the
  // same order we delivered them) plus live stamps the bounded log evicted.
  std::map<uint64_t, Stamp> all(stamp_by_global_);
  for (const auto& [g, s] : stamps_) all.emplace(g, s);
  net::Writer w;
  w.u64(next_global_);
  w.u32(static_cast<uint32_t>(all.size()));
  for (const auto& [g, s] : all) {
    w.u64(g);
    w.u32(s.id.sender);
    w.u64(s.id.seq);
    w.u64(s.token_id);
  }
  return w.take();
}

sim::Payload TokenRingEngine::merge_transfer_states(
    const std::vector<sim::Payload>& states) const {
  uint64_t next = next_global_;
  std::map<uint64_t, Stamp> merged;
  for (const sim::Payload& p : states) {
    if (p.empty()) continue;
    net::Reader r(p);
    next = std::max(next, r.u64());
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t g = r.u64();
      Stamp s;
      s.id.sender = r.u32();
      s.id.seq = r.u64();
      s.token_id = r.u64();
      auto [it, inserted] = merged.emplace(g, s);
      if (!inserted && s.token_id > it->second.token_id) it->second = s;
    }
    r.expect_done();
  }
  net::Writer w;
  w.u64(next);
  w.u32(static_cast<uint32_t>(merged.size()));
  for (const auto& [g, s] : merged) {
    w.u64(g);
    w.u32(s.id.sender);
    w.u64(s.id.seq);
    w.u64(s.token_id);
  }
  return w.take();
}

void TokenRingEngine::install_transfer_state(const sim::Payload& merged) {
  flush_stamps_.clear();
  if (merged.empty()) return;
  net::Reader r(merged);
  next_global_ = std::max(next_global_, r.u64());
  uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t g = r.u64();
    Stamp s;
    s.id.sender = r.u32();
    s.id.seq = r.u64();
    s.token_id = r.u64();
    flush_stamps_.insert_or_assign(g, s);
  }
  r.expect_done();
}

void TokenRingEngine::order_flush(std::vector<DataMsg>& msgs) const {
  if (flush_stamps_.empty()) return;
  // Flush delivers stamped messages first, in global order -- every member
  // installed the same merged table, so this order is identical everywhere
  // and consistent with what faster members already delivered live -- then
  // the unstamped remainder in the caller's OrderKey order.
  std::map<MsgId, uint64_t> global_of;
  for (const auto& [g, s] : flush_stamps_) {
    auto [it, inserted] = global_of.emplace(s.id, g);
    if (!inserted && g < it->second) it->second = g;
  }
  std::stable_sort(msgs.begin(), msgs.end(),
                   [&](const DataMsg& a, const DataMsg& b) {
                     auto ga = global_of.find(a.id);
                     auto gb = global_of.find(b.id);
                     bool sa = ga != global_of.end();
                     bool sb = gb != global_of.end();
                     if (sa != sb) return sa;
                     if (sa) return ga->second < gb->second;
                     return order_key(a) < order_key(b);
                   });
}

}  // namespace gcs
