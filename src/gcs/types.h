// Core types of the group communication system (the project's
// Transis-equivalent; see DESIGN.md section 2).
//
// Identity model: a member is identified by the host it runs on (one gcs
// daemon per head node, exactly like one Transis daemon per node). Views are
// identified by a monotonically growing epoch plus the proposing
// coordinator, ordered lexicographically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/wire.h"
#include "sim/network.h"

namespace gcs {

using MemberId = sim::HostId;

/// Message delivery guarantees, weakest to strongest (Transis service
/// levels). JOSHUA uses kAgreed for command replication.
enum class Delivery : uint8_t {
  kFifo = 0,    ///< per-sender order
  kCausal = 1,  ///< causal order (vector-clock happened-before)
  kAgreed = 2,  ///< total order, identical at all members
  kSafe = 3,    ///< total order + delivered only when stable at all members
};

std::string_view to_string(Delivery level);

struct ViewId {
  uint64_t epoch = 0;
  MemberId coordinator = sim::kInvalidHost;
  auto operator<=>(const ViewId&) const = default;
};

struct View {
  ViewId id;
  std::vector<MemberId> members;  ///< sorted ascending

  bool contains(MemberId m) const {
    return std::binary_search(members.begin(), members.end(), m);
  }
  size_t size() const { return members.size(); }
  /// Lowest member id; used for coordinator election.
  MemberId lowest() const { return members.empty() ? sim::kInvalidHost : members.front(); }
};

/// Unique id of a data message: the sender plus its per-sender sequence
/// number (sequence numbers never reset, so ids are stable across views).
struct MsgId {
  MemberId sender = sim::kInvalidHost;
  uint64_t seq = 0;
  auto operator<=>(const MsgId&) const = default;
};

/// A replicated data message as held in ordering buffers and send logs.
struct DataMsg {
  MsgId id;
  uint64_t lamport = 0;  ///< logical send timestamp (total-order key)
  Delivery level = Delivery::kAgreed;
  /// Vector clock at send time: per-member count of messages the sender had
  /// delivered. Used for kCausal delivery.
  std::map<MemberId, uint64_t> vclock;
  sim::Payload payload;
};

/// Total-order key: (lamport timestamp, sender id) -- the classic Lamport
/// tie-break gives one global sequence all members agree on.
struct OrderKey {
  uint64_t lamport = 0;
  MemberId sender = sim::kInvalidHost;
  uint64_t seq = 0;  // disambiguates (cannot differ for same lamport+sender,
                     // but keeps the key strictly unique)
  auto operator<=>(const OrderKey&) const = default;
};

inline OrderKey order_key(const DataMsg& m) {
  return OrderKey{m.lamport, m.id.sender, m.id.seq};
}

/// What the application receives.
struct Delivered {
  MemberId sender = sim::kInvalidHost;
  uint64_t seq = 0;
  Delivery level = Delivery::kAgreed;
  sim::Payload payload;
};

/// A cut (received vector) as carried on the wire and cached in the
/// ordering buffer: sorted (member, contiguous-seq) pairs. A flat vector
/// instead of std::map keeps the hot paths -- every header carries a cut,
/// at 128 heads that is 128 entries per message -- to one allocation per
/// copy instead of one node allocation per entry.
using CutVector = std::vector<std::pair<MemberId, uint64_t>>;

// -- wire helpers -------------------------------------------------------------

void encode_cut(net::Writer& w, const CutVector& cut);
CutVector decode_cut_vector(net::Reader& r);

void encode_view(net::Writer& w, const View& view);
View decode_view(net::Reader& r);

void encode_data_msg(net::Writer& w, const DataMsg& m);
DataMsg decode_data_msg(net::Reader& r);

void encode_u64_map(net::Writer& w, const std::map<MemberId, uint64_t>& m);
std::map<MemberId, uint64_t> decode_u64_map(net::Reader& r);

}  // namespace gcs
