#include "gcs/ordering.h"

#include <algorithm>

#include "gcs/ordering_engine.h"

namespace gcs {

OrderingBuffer::OrderingBuffer() = default;
OrderingBuffer::~OrderingBuffer() = default;

void OrderingBuffer::attach_engine(OrderingEngine* engine) {
  engine_ = engine;
  fallback_.reset();
  if (engine_ != nullptr) engine_->attach(this);
}

OrderingEngine& OrderingBuffer::engine() {
  if (engine_ == nullptr) {
    // Standalone buffer (unit tests): private all-ack engine, kept in sync
    // by reset()/clear_all() below.
    fallback_ = make_engine(OrderingMode::kAllAck, EngineTuning{});
    fallback_->attach(this);
    engine_ = fallback_.get();
  }
  return *engine_;
}

const OrderingEngine& OrderingBuffer::engine() const {
  return const_cast<OrderingBuffer*>(this)->engine();
}

void OrderingBuffer::reset(const View& view, MemberId self) {
  view_ = view;
  self_ = self;
  pending_.clear();
  pending_ix_.clear();
  out_of_order_.clear();
  // received/delivered counters persist across views: sequence numbers are
  // global per sender, and a new view's first message continues the stream.
  //
  // Single merge pass: view_.members is sorted and peers_ is an ordered
  // map, so one walk both inserts the new members and erases departed
  // peers (whose silence must not block delivery conditions).
  auto it = peers_.begin();
  for (MemberId m : view_.members) {
    while (it != peers_.end() && it->first < m) it = peers_.erase(it);
    if (it == peers_.end() || it->first != m)
      it = peers_.emplace_hint(it, m, PeerState{});
    ++it;
    received_upto_.try_emplace(m, 0);
    delivered_.try_emplace(m, 0);
  }
  while (it != peers_.end()) it = peers_.erase(it);
  cut_dirty_ = true;
  // An attached engine's lifecycle is driven by its owner (GroupMember
  // resets it at view install, after stream positions settle); only the
  // private fallback follows the buffer.
  engine();
  if (fallback_) fallback_->reset(view_, self_, 0);
}

bool OrderingBuffer::insert(const DataMsg& m) {
  uint64_t& upto = received_upto_[m.id.sender];
  // The per-sender watermark is the whole duplicate check: every message in
  // pending_ was contiguous when it arrived (seq <= upto by construction),
  // so `seq <= upto` subsumes the old O(pending) scan; anything above the
  // watermark can only collide inside out_of_order_.
  if (m.id.seq <= upto) return false;  // duplicate of something contiguous
  if (out_of_order_.count(m.id)) return false;
  if (m.id.seq == upto + 1) {
    upto = m.id.seq;
    pending_.emplace(order_key(m), m);
    pending_ix_.emplace(m.id, order_key(m));
    promote_out_of_order(m.id.sender);
  } else {
    out_of_order_.emplace(m.id, m);
  }
  cut_dirty_ = true;
  return true;
}

void OrderingBuffer::promote_out_of_order(MemberId sender) {
  uint64_t& upto = received_upto_[sender];
  while (true) {
    auto it = out_of_order_.find(MsgId{sender, upto + 1});
    if (it == out_of_order_.end()) return;
    upto = it->first.seq;
    cut_dirty_ = true;
    pending_ix_.emplace(it->first, order_key(it->second));
    pending_.emplace(order_key(it->second), std::move(it->second));
    out_of_order_.erase(it);
  }
}

void OrderingBuffer::erase_pending(std::map<OrderKey, DataMsg>::iterator it) {
  pending_ix_.erase(it->second.id);
  pending_.erase(it);
}

void OrderingBuffer::observe(MemberId p, uint64_t lamport, uint64_t sent_upto,
                             const CutVector& received) {
  PeerState& state = peers_[p];
  state.sent_upto = std::max(state.sent_upto, sent_upto);
  for (const auto& [sender, seq] : received) {
    uint64_t& have = state.received[sender];
    have = std::max(have, seq);
  }
  engine().observe(p, lamport);
}

bool OrderingBuffer::causal_condition(const DataMsg& m) const {
  for (const auto& [q, count] : m.vclock) {
    if (q == m.id.sender) continue;  // FIFO from the sender is the gate
    auto it = delivered_.find(q);
    uint64_t have = it == delivered_.end() ? 0 : it->second;
    if (have < count) return false;
  }
  return true;
}

std::vector<DataMsg> OrderingBuffer::drain() {
  std::vector<DataMsg> out;
  last_drain_passes_ = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    ++last_drain_passes_;
    // FIFO/CAUSAL messages deliver independently of the total order.
    for (auto it = pending_.begin(); it != pending_.end();) {
      const DataMsg& m = it->second;
      bool ready = false;
      if (m.level == Delivery::kFifo) {
        ready = true;
      } else if (m.level == Delivery::kCausal) {
        ready = causal_condition(m);
      }
      if (ready) {
        ++delivered_[m.id.sender];
        out.push_back(m);
        auto victim = it++;
        erase_pending(victim);
        progress = true;
      } else {
        ++it;
      }
    }
    // AGREED/SAFE deliver strictly in the engine's total order. The whole
    // ready run goes in one inner loop -- one message per outer pass made a
    // run of R stamped messages rescan all of pending_ R times. Per-sender
    // delivered counts accumulate locally and land once per run, not per
    // message: no engine delivery condition reads them (all-ack reads
    // lamports and watermarks, token reads its own delivered_global_), and
    // the CAUSAL scan that does runs again on the next outer pass.
    std::map<MemberId, uint64_t> run_counts;
    while (const DataMsg* next = engine().next_deliverable()) {
      DataMsg m = *next;  // copy before the erase invalidates the pointer
      engine().on_delivered(m);
      ++run_counts[m.id.sender];
      erase_pending(pending_.find(order_key(m)));
      out.push_back(std::move(m));
      progress = true;
    }
    for (const auto& [sender, n] : run_counts) delivered_[sender] += n;
  }
  return out;
}

std::vector<DataMsg> OrderingBuffer::flush_all() {
  std::vector<DataMsg> out;
  out.reserve(pending_.size());
  for (auto& [key, m] : pending_) {
    (void)key;
    out.push_back(std::move(m));
  }
  pending_.clear();
  pending_ix_.clear();
  out_of_order_.clear();  // unfillable remnants, dropped identically everywhere
  engine().order_flush(out);
  for (const DataMsg& m : out) {
    ++delivered_[m.id.sender];
    engine().on_delivered(m);
  }
  return out;
}

std::vector<DataMsg> OrderingBuffer::held_messages() const {
  std::vector<DataMsg> out;
  out.reserve(pending_.size() + out_of_order_.size());
  for (const auto& [key, m] : pending_) {
    (void)key;
    out.push_back(m);
  }
  for (const auto& [id, m] : out_of_order_) {
    (void)id;
    out.push_back(m);
  }
  return out;
}

const CutVector& OrderingBuffer::received_vector() const {
  if (cut_dirty_) {
    cut_cache_.assign(received_upto_.begin(), received_upto_.end());
    cut_dirty_ = false;
  }
  return cut_cache_;
}

uint64_t OrderingBuffer::received_upto(MemberId sender) const {
  auto it = received_upto_.find(sender);
  return it == received_upto_.end() ? 0 : it->second;
}

std::map<MemberId, uint64_t> OrderingBuffer::delivered_vector() const {
  return delivered_;
}

uint64_t OrderingBuffer::delivered_count(MemberId sender) const {
  auto it = delivered_.find(sender);
  return it == delivered_.end() ? 0 : it->second;
}

const DataMsg* OrderingBuffer::find_pending(const MsgId& id) const {
  auto ix = pending_ix_.find(id);
  if (ix == pending_ix_.end()) return nullptr;
  auto it = pending_.find(ix->second);
  return it == pending_.end() ? nullptr : &it->second;
}

uint64_t OrderingBuffer::peer_sent_upto(MemberId q) const {
  auto it = peers_.find(q);
  return it == peers_.end() ? 0 : it->second.sent_upto;
}

uint64_t OrderingBuffer::peer_received(MemberId q, MemberId sender) const {
  auto it = peers_.find(q);
  if (it == peers_.end()) return 0;
  auto rit = it->second.received.find(sender);
  return rit == it->second.received.end() ? 0 : rit->second;
}

std::vector<MsgId> OrderingBuffer::gaps() const {
  std::vector<MsgId> out;
  for (const auto& [peer, state] : peers_) {
    uint64_t have = received_upto(peer);
    uint64_t claimed = state.sent_upto;
    for (uint64_t seq = have + 1; seq <= claimed; ++seq) {
      if (!out_of_order_.count(MsgId{peer, seq})) out.push_back({peer, seq});
    }
  }
  return out;
}

void OrderingBuffer::set_stream_position(MemberId sender, uint64_t seq) {
  received_upto_[sender] = seq;
  delivered_[sender] = seq;
  cut_dirty_ = true;
  // Drop anything buffered at or below the new position; promote the rest.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.id.sender == sender && it->second.id.seq <= seq) {
      auto victim = it++;
      erase_pending(victim);
    } else {
      ++it;
    }
  }
  for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
    if (it->first.sender == sender && it->first.seq <= seq) {
      it = out_of_order_.erase(it);
    } else {
      ++it;
    }
  }
  promote_out_of_order(sender);
}

void OrderingBuffer::reset_peer(MemberId m) {
  auto it = peers_.find(m);
  if (it != peers_.end()) it->second = PeerState{};
}

void OrderingBuffer::clear_all() {
  view_ = View{};
  pending_.clear();
  pending_ix_.clear();
  out_of_order_.clear();
  received_upto_.clear();
  delivered_.clear();
  peers_.clear();
  cut_dirty_ = true;
  if (fallback_) fallback_->clear();
}

uint64_t OrderingBuffer::stable_upto(MemberId sender) const {
  uint64_t lo = received_upto(sender);
  for (MemberId q : view_.members) {
    if (q == self_) continue;
    auto it = peers_.find(q);
    if (it == peers_.end()) return 0;
    auto rit = it->second.received.find(sender);
    uint64_t have = rit == it->second.received.end() ? 0 : rit->second;
    lo = std::min(lo, have);
  }
  return lo;
}

}  // namespace gcs
