#include "gcs/ordering.h"

#include <algorithm>

namespace gcs {

void OrderingBuffer::reset(const View& view, MemberId self) {
  view_ = view;
  self_ = self;
  pending_.clear();
  out_of_order_.clear();
  // received/delivered counters persist across views: sequence numbers are
  // global per sender, and a new view's first message continues the stream.
  //
  // Single merge pass: view_.members is sorted and peers_ is an ordered
  // map, so one walk both inserts the new members and erases departed
  // peers (whose silence must not block delivery conditions).
  auto it = peers_.begin();
  for (MemberId m : view_.members) {
    while (it != peers_.end() && it->first < m) it = peers_.erase(it);
    if (it == peers_.end() || it->first != m)
      it = peers_.emplace_hint(it, m, PeerState{});
    ++it;
    received_upto_.try_emplace(m, 0);
    delivered_.try_emplace(m, 0);
  }
  while (it != peers_.end()) it = peers_.erase(it);
}

bool OrderingBuffer::insert(const DataMsg& m) {
  uint64_t& upto = received_upto_[m.id.sender];
  // The per-sender watermark is the whole duplicate check: every message in
  // pending_ was contiguous when it arrived (seq <= upto by construction),
  // so `seq <= upto` subsumes the old O(pending) scan; anything above the
  // watermark can only collide inside out_of_order_.
  if (m.id.seq <= upto) return false;  // duplicate of something contiguous
  if (out_of_order_.count(m.id)) return false;
  if (m.id.seq == upto + 1) {
    upto = m.id.seq;
    pending_.emplace(order_key(m), m);
    promote_out_of_order(m.id.sender);
  } else {
    out_of_order_.emplace(m.id, m);
  }
  return true;
}

void OrderingBuffer::promote_out_of_order(MemberId sender) {
  uint64_t& upto = received_upto_[sender];
  while (true) {
    auto it = out_of_order_.find(MsgId{sender, upto + 1});
    if (it == out_of_order_.end()) return;
    upto = it->first.seq;
    pending_.emplace(order_key(it->second), std::move(it->second));
    out_of_order_.erase(it);
  }
}

void OrderingBuffer::observe(MemberId p, uint64_t lamport, uint64_t sent_upto,
                             const std::map<MemberId, uint64_t>& received) {
  PeerState& state = peers_[p];
  state.heard_lamport = std::max(state.heard_lamport, lamport);
  state.sent_upto = std::max(state.sent_upto, sent_upto);
  for (const auto& [sender, seq] : received) {
    uint64_t& have = state.received[sender];
    have = std::max(have, seq);
  }
}

bool OrderingBuffer::agreed_condition(const DataMsg& m) const {
  for (MemberId q : view_.members) {
    // Our own clock is ahead of everything we buffered, and our own
    // messages are inserted synchronously -- nothing of ours is in flight
    // towards ourselves.
    if (q == self_) continue;
    auto it = peers_.find(q);
    if (it == peers_.end()) return false;
    const PeerState& s = it->second;
    // The sender's own timestamp on m proves it will never send anything
    // ordered before m; every other member must have been heard past m.
    if (s.heard_lamport <= m.lamport && q != m.id.sender) return false;
    // No earlier-ordered message from q may still be missing.
    auto rit = received_upto_.find(q);
    uint64_t have = rit == received_upto_.end() ? 0 : rit->second;
    if (have < s.sent_upto) return false;
  }
  return true;
}

bool OrderingBuffer::safe_condition(const DataMsg& m) const {
  if (!agreed_condition(m)) return false;
  for (MemberId q : view_.members) {
    if (q == self_) continue;  // we obviously hold m
    auto it = peers_.find(q);
    if (it == peers_.end()) return false;
    const auto& received = it->second.received;
    auto rit = received.find(m.id.sender);
    if (rit == received.end() || rit->second < m.id.seq) return false;
  }
  return true;
}

bool OrderingBuffer::causal_condition(const DataMsg& m) const {
  for (const auto& [q, count] : m.vclock) {
    if (q == m.id.sender) continue;  // FIFO from the sender is the gate
    auto it = delivered_.find(q);
    uint64_t have = it == delivered_.end() ? 0 : it->second;
    if (have < count) return false;
  }
  return true;
}

std::vector<DataMsg> OrderingBuffer::drain() {
  std::vector<DataMsg> out;
  bool progress = true;
  while (progress) {
    progress = false;
    // FIFO/CAUSAL messages deliver independently of the total order.
    for (auto it = pending_.begin(); it != pending_.end();) {
      const DataMsg& m = it->second;
      bool ready = false;
      if (m.level == Delivery::kFifo) {
        ready = true;
      } else if (m.level == Delivery::kCausal) {
        ready = causal_condition(m);
      }
      if (ready) {
        ++delivered_[m.id.sender];
        out.push_back(m);
        it = pending_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    // AGREED/SAFE deliver strictly in OrderKey order: only the lowest
    // remaining totally-ordered message may go.
    auto first_total = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second.level == Delivery::kAgreed ||
          it->second.level == Delivery::kSafe) {
        first_total = it;
        break;
      }
    }
    if (first_total != pending_.end()) {
      const DataMsg& m = first_total->second;
      bool ready = m.level == Delivery::kAgreed ? agreed_condition(m)
                                                : safe_condition(m);
      if (ready) {
        ++delivered_[m.id.sender];
        out.push_back(m);
        pending_.erase(first_total);
        progress = true;
      }
    }
  }
  return out;
}

std::vector<DataMsg> OrderingBuffer::flush_all() {
  std::vector<DataMsg> out;
  out.reserve(pending_.size());
  for (auto& [key, m] : pending_) {
    (void)key;
    ++delivered_[m.id.sender];
    out.push_back(std::move(m));
  }
  pending_.clear();
  out_of_order_.clear();  // unfillable remnants, dropped identically everywhere
  return out;
}

std::vector<DataMsg> OrderingBuffer::held_messages() const {
  std::vector<DataMsg> out;
  out.reserve(pending_.size() + out_of_order_.size());
  for (const auto& [key, m] : pending_) {
    (void)key;
    out.push_back(m);
  }
  for (const auto& [id, m] : out_of_order_) {
    (void)id;
    out.push_back(m);
  }
  return out;
}

std::map<MemberId, uint64_t> OrderingBuffer::received_vector() const {
  return received_upto_;
}

uint64_t OrderingBuffer::received_upto(MemberId sender) const {
  auto it = received_upto_.find(sender);
  return it == received_upto_.end() ? 0 : it->second;
}

std::map<MemberId, uint64_t> OrderingBuffer::delivered_vector() const {
  return delivered_;
}

uint64_t OrderingBuffer::delivered_count(MemberId sender) const {
  auto it = delivered_.find(sender);
  return it == delivered_.end() ? 0 : it->second;
}

std::vector<MsgId> OrderingBuffer::gaps() const {
  std::vector<MsgId> out;
  for (const auto& [peer, state] : peers_) {
    uint64_t have = received_upto(peer);
    uint64_t claimed = state.sent_upto;
    for (uint64_t seq = have + 1; seq <= claimed; ++seq) {
      if (!out_of_order_.count(MsgId{peer, seq})) out.push_back({peer, seq});
    }
  }
  return out;
}

void OrderingBuffer::set_stream_position(MemberId sender, uint64_t seq) {
  received_upto_[sender] = seq;
  delivered_[sender] = seq;
  // Drop anything buffered at or below the new position; promote the rest.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.id.sender == sender && it->second.id.seq <= seq) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
    if (it->first.sender == sender && it->first.seq <= seq) {
      it = out_of_order_.erase(it);
    } else {
      ++it;
    }
  }
  promote_out_of_order(sender);
}

void OrderingBuffer::clear_all() {
  view_ = View{};
  pending_.clear();
  out_of_order_.clear();
  received_upto_.clear();
  delivered_.clear();
  peers_.clear();
}

uint64_t OrderingBuffer::stable_upto(MemberId sender) const {
  uint64_t lo = received_upto(sender);
  for (MemberId q : view_.members) {
    if (q == self_) continue;
    auto it = peers_.find(q);
    if (it == peers_.end()) return 0;
    auto rit = it->second.received.find(sender);
    uint64_t have = rit == it->second.received.end() ? 0 : rit->second;
    lo = std::min(lo, have);
  }
  return lo;
}

}  // namespace gcs
