// Ordering buffer: the reliability substrate of the group communication
// protocol, independent of networking so it can be unit- and property-tested
// in isolation.
//
// The buffer owns per-sender contiguity (watermarks + out-of-order staging),
// NACK gap detection, peer cuts (for stability garbage collection and SAFE),
// delivered counts (the causal send vector) and flush bookkeeping. The
// *total-order decision* -- which AGREED/SAFE message may deliver next -- is
// delegated to a pluggable OrderingEngine (see ordering_engine.h):
//
//   * AllAckEngine (default): the classic Lamport (timestamp, sender-id)
//     order with an all-ack stability rule (Transis ToTo style) -- m is
//     AGREED-deliverable once every view member has been heard past
//     m.lamport and claims no outstanding sends we miss; SAFE additionally
//     requires every member's cut to cover m.
//   * TokenRingEngine: a circulating token assigns global sequence numbers.
//
// FIFO delivers on per-sender contiguity alone; CAUSAL additionally waits
// for the sender's causal past (per-sender delivered counts) to be delivered
// locally. Both are handled here, independent of the engine.
//
// A GroupMember attaches its own engine and drives its lifecycle explicitly;
// a bare buffer (unit tests) lazily creates a private AllAckEngine and keeps
// it in sync inside reset()/clear_all(), preserving the pre-refactor
// standalone semantics exactly.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "gcs/types.h"

namespace gcs {

class OrderingEngine;

class OrderingBuffer {
 public:
  OrderingBuffer();
  ~OrderingBuffer();
  OrderingBuffer(const OrderingBuffer&) = delete;
  OrderingBuffer& operator=(const OrderingBuffer&) = delete;

  /// Use `engine` (owned by the caller, which also drives its reset/clear
  /// lifecycle) instead of the buffer's private fallback engine.
  void attach_engine(OrderingEngine* engine);

  /// Start (or restart) buffering for a view. Own lamport/delivered history
  /// is external; the buffer only tracks per-view delivery state.
  void reset(const View& view, MemberId self);

  const View& view() const { return view_; }
  MemberId self() const { return self_; }

  /// Insert a data message (own messages included). Duplicates are ignored.
  /// Returns true if the message was new.
  bool insert(const DataMsg& m);

  /// Record protocol metadata heard from member `p`: its lamport clock, the
  /// highest sequence number it claims to have sent, and its received
  /// vector (per-sender contiguous seq it holds, as sorted pairs). Data
  /// messages, cuts and heartbeats all feed this.
  void observe(MemberId p, uint64_t lamport, uint64_t sent_upto,
               const CutVector& received);

  /// Pop every message whose delivery condition now holds, in delivery
  /// order (AGREED/SAFE messages in the engine's total order).
  std::vector<DataMsg> drain();

  /// View change: deliver every contiguously-held message regardless of
  /// stability (flush agreement already guaranteed everyone holds the same
  /// set), in the engine's flush order. Out-of-order remnants past a
  /// permanent gap are discarded (identically at every member, since all
  /// flush from the same union).
  std::vector<DataMsg> flush_all();

  /// Everything currently held and undelivered (for the flush exchange).
  std::vector<DataMsg> held_messages() const;

  /// Per-sender contiguous received sequence (our cut / ack vector), sorted
  /// by member. Cached: rebuilt lazily after mutation, so the heartbeat/
  /// header hot path costs one flat copy instead of a map clone per call.
  const CutVector& received_vector() const;

  /// Highest contiguous seq received from one sender.
  uint64_t received_upto(MemberId sender) const;

  /// Per-sender count of delivered messages (causal send vector).
  std::map<MemberId, uint64_t> delivered_vector() const;
  uint64_t delivered_count(MemberId sender) const;

  // -- engine-facing queries ---------------------------------------------------
  /// Contiguously received, undelivered messages in OrderKey order.
  const std::map<OrderKey, DataMsg>& pending() const { return pending_; }
  /// Look up one pending (contiguous, undelivered) message by id.
  const DataMsg* find_pending(const MsgId& id) const;
  /// Highest seq `q` claims to have sent / `q`'s cut entry for `sender`.
  uint64_t peer_sent_upto(MemberId q) const;
  uint64_t peer_received(MemberId q, MemberId sender) const;

  /// Known gaps: message ids we should NACK (claimed sent but not held).
  std::vector<MsgId> gaps() const;

  /// Lowest receive point of `sender`'s stream across all view members'
  /// cuts: messages at or below it are stable and may be garbage-collected
  /// by the retention log.
  uint64_t stable_upto(MemberId sender) const;

  size_t pending_count() const { return pending_.size() + out_of_order_.size(); }

  /// Outer passes the last drain() took. A contiguous engine-deliverable run
  /// of any length costs one pass (plus the final no-progress pass); tests
  /// use this to pin the run-delivery path against regressing to the old
  /// one-message-per-pass O(run x pending) shape.
  int last_drain_passes() const { return last_drain_passes_; }

  /// Force the received/delivered counters of `sender`'s stream to `seq`.
  /// Used at view install: joiners align to the old view's baseline, and a
  /// fresh (restarted) member's stream is reset to zero everywhere.
  void set_stream_position(MemberId sender, uint64_t seq);

  /// Forget everything member `m` ever claimed (sent watermark + its cut
  /// vector). Used at view install for a *reincarnated* member: it stayed in
  /// the membership across a crash+rejoin, so the merge pass in reset() would
  /// keep its old incarnation's claims, and a stale sent_upto above the fresh
  /// stream blocks the all-ack condition (and draws NACKs for messages the
  /// new incarnation never sent) forever.
  void reset_peer(MemberId m);

  /// Drop all per-member counters and state (member rejoin from scratch).
  void clear_all();

 private:
  struct PeerState {
    uint64_t sent_upto = 0;  ///< highest seq the peer claims to have sent
    std::map<MemberId, uint64_t> received;  ///< the peer's cut vector
  };

  bool causal_condition(const DataMsg& m) const;
  void promote_out_of_order(MemberId sender);
  void erase_pending(std::map<OrderKey, DataMsg>::iterator it);
  OrderingEngine& engine();
  const OrderingEngine& engine() const;

  View view_;
  MemberId self_ = sim::kInvalidHost;
  /// Contiguously received, undelivered messages, in total order.
  std::map<OrderKey, DataMsg> pending_;
  /// Id index into pending_ (token engine looks messages up by stamp).
  std::map<MsgId, OrderKey> pending_ix_;
  /// Received above a gap, staged until contiguity catches up.
  std::map<MsgId, DataMsg> out_of_order_;
  std::map<MemberId, uint64_t> received_upto_;
  std::map<MemberId, uint64_t> delivered_;
  std::map<MemberId, PeerState> peers_;

  /// Flat cached copy of received_upto_, invalidated on mutation.
  mutable CutVector cut_cache_;
  mutable bool cut_dirty_ = true;

  int last_drain_passes_ = 0;

  /// The attached engine, or the lazily-created private fallback.
  OrderingEngine* engine_ = nullptr;
  std::unique_ptr<OrderingEngine> fallback_;
};

}  // namespace gcs
