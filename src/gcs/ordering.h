// Ordering buffer: the delivery-condition core of the group communication
// protocol, independent of networking so it can be unit- and property-tested
// in isolation.
//
// The total order is the classic Lamport (timestamp, sender-id) order with
// an *all-ack* stability rule (Transis ToTo style): a buffered message m is
// AGREED-deliverable once, for every view member q,
//
//   (a) we have heard any traffic from q with lamport clock > m.lamport
//       (q can never again send a message ordered before m), and
//   (b) we hold every message q claims to have sent (no known gaps), so no
//       earlier-ordered message from q is still in flight.
//
// SAFE additionally requires every member's cut (received vector) to cover m
// -- i.e. m is stable everywhere -- before delivery.
//
// FIFO delivers on per-sender contiguity alone; CAUSAL additionally waits
// for the sender's causal past (per-sender delivered counts) to be delivered
// locally.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "gcs/types.h"

namespace gcs {

class OrderingBuffer {
 public:
  /// Start (or restart) buffering for a view. Own lamport/delivered history
  /// is external; the buffer only tracks per-view delivery state.
  void reset(const View& view, MemberId self);

  const View& view() const { return view_; }

  /// Insert a data message (own messages included). Duplicates are ignored.
  /// Returns true if the message was new.
  bool insert(const DataMsg& m);

  /// Record protocol metadata heard from member `p`: its lamport clock, the
  /// highest sequence number it claims to have sent, and its received
  /// vector (per-sender contiguous seq it holds). Data messages, cuts and
  /// heartbeats all feed this.
  void observe(MemberId p, uint64_t lamport, uint64_t sent_upto,
               const std::map<MemberId, uint64_t>& received);

  /// Pop every message whose delivery condition now holds, in delivery
  /// order (AGREED/SAFE messages in total order relative to each other).
  std::vector<DataMsg> drain();

  /// View change: deliver every contiguously-held message in total order
  /// regardless of stability (flush agreement already guaranteed everyone
  /// holds the same set). Out-of-order remnants past a permanent gap are
  /// discarded (identically at every member, since all flush from the same
  /// union).
  std::vector<DataMsg> flush_all();

  /// Everything currently held and undelivered (for the flush exchange).
  std::vector<DataMsg> held_messages() const;

  /// Per-sender contiguous received sequence (our cut / ack vector).
  std::map<MemberId, uint64_t> received_vector() const;

  /// Highest contiguous seq received from one sender.
  uint64_t received_upto(MemberId sender) const;

  /// Per-sender count of delivered messages (causal send vector).
  std::map<MemberId, uint64_t> delivered_vector() const;
  uint64_t delivered_count(MemberId sender) const;

  /// Known gaps: message ids we should NACK (claimed sent but not held).
  std::vector<MsgId> gaps() const;

  /// Lowest receive point of `sender`'s stream across all view members'
  /// cuts: messages at or below it are stable and may be garbage-collected
  /// by the retention log.
  uint64_t stable_upto(MemberId sender) const;

  size_t pending_count() const { return pending_.size() + out_of_order_.size(); }

  /// Force the received/delivered counters of `sender`'s stream to `seq`.
  /// Used at view install: joiners align to the old view's baseline, and a
  /// fresh (restarted) member's stream is reset to zero everywhere.
  void set_stream_position(MemberId sender, uint64_t seq);

  /// Drop all per-member counters and state (member rejoin from scratch).
  void clear_all();

 private:
  struct PeerState {
    uint64_t heard_lamport = 0;  ///< highest lamport heard from this peer
    uint64_t sent_upto = 0;      ///< highest seq the peer claims to have sent
    std::map<MemberId, uint64_t> received;  ///< the peer's cut vector
  };

  bool agreed_condition(const DataMsg& m) const;
  bool safe_condition(const DataMsg& m) const;
  bool causal_condition(const DataMsg& m) const;
  void promote_out_of_order(MemberId sender);

  View view_;
  MemberId self_ = sim::kInvalidHost;
  /// Contiguously received, undelivered messages, in total order.
  std::map<OrderKey, DataMsg> pending_;
  /// Received above a gap, staged until contiguity catches up.
  std::map<MsgId, DataMsg> out_of_order_;
  std::map<MemberId, uint64_t> received_upto_;
  std::map<MemberId, uint64_t> delivered_;
  std::map<MemberId, PeerState> peers_;
};

}  // namespace gcs
