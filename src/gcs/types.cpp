#include "gcs/types.h"

namespace gcs {

std::string_view to_string(Delivery level) {
  switch (level) {
    case Delivery::kFifo: return "FIFO";
    case Delivery::kCausal: return "CAUSAL";
    case Delivery::kAgreed: return "AGREED";
    case Delivery::kSafe: return "SAFE";
  }
  return "?";
}

void encode_view(net::Writer& w, const View& view) {
  w.u64(view.id.epoch);
  w.u32(view.id.coordinator);
  w.vec(view.members,
        [](net::Writer& w2, MemberId m) { w2.u32(m); });
}

View decode_view(net::Reader& r) {
  View v;
  v.id.epoch = r.u64();
  v.id.coordinator = r.u32();
  v.members = r.vec<MemberId>([](net::Reader& r2) { return r2.u32(); });
  return v;
}

// Same wire layout as encode_u64_map (count + sorted pairs), so swapping a
// map field for a CutVector does not change a single byte on the wire.
void encode_cut(net::Writer& w, const CutVector& cut) {
  w.u32(static_cast<uint32_t>(cut.size()));
  for (const auto& [k, v] : cut) {
    w.u32(k);
    w.u64(v);
  }
}

CutVector decode_cut_vector(net::Reader& r) {
  uint32_t n = r.u32();
  if (n > r.remaining()) throw net::WireError("cut count exceeds buffer");
  CutVector out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MemberId k = r.u32();
    out.emplace_back(k, r.u64());
  }
  return out;
}

void encode_u64_map(net::Writer& w, const std::map<MemberId, uint64_t>& m) {
  w.u32(static_cast<uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w.u32(k);
    w.u64(v);
  }
}

std::map<MemberId, uint64_t> decode_u64_map(net::Reader& r) {
  uint32_t n = r.u32();
  std::map<MemberId, uint64_t> out;
  for (uint32_t i = 0; i < n; ++i) {
    MemberId k = r.u32();
    out[k] = r.u64();
  }
  return out;
}

void encode_data_msg(net::Writer& w, const DataMsg& m) {
  w.u32(m.id.sender);
  w.u64(m.id.seq);
  w.u64(m.lamport);
  w.u8(static_cast<uint8_t>(m.level));
  encode_u64_map(w, m.vclock);
  w.bytes(m.payload);
}

DataMsg decode_data_msg(net::Reader& r) {
  DataMsg m;
  m.id.sender = r.u32();
  m.id.seq = r.u64();
  m.lamport = r.u64();
  m.level = static_cast<Delivery>(r.u8());
  m.vclock = decode_u64_map(r);
  m.payload = r.bytes();
  return m;
}

}  // namespace gcs
