// OrderingEngine: the total-order strategy of the group communication
// system, factored out of OrderingBuffer/GroupMember so the delivery
// condition is pluggable.
//
// The split of responsibilities:
//   * OrderingBuffer stays the *reliability* substrate: per-sender
//     contiguity (watermarks, out-of-order staging, NACK gap detection),
//     peer cuts for stability/SAFE, delivered counts, flush bookkeeping.
//   * OrderingEngine owns the *total-order decision*: which AGREED/SAFE
//     message is next and whether it may deliver now.
//
// Two engines ship:
//   * AllAckEngine -- the Transis-style all-ack Lamport order the project
//     started with (wait for lamport/cut evidence from every view member;
//     O(N) acks per message). Behavior-compatible with the pre-refactor
//     code, byte for byte.
//   * TokenRingEngine -- a Totem-style privilege order: a logical token
//     circulates the view carrying the next global sequence number; the
//     holder stamps its batched pending messages and announces the stamps;
//     delivery is a contiguous global-sequence prefix. O(1) control
//     messages per message (amortized), so it overtakes all-ack at large N.
//
// Engines are deliberately passive: they never touch timers or the network.
// Every hook takes the current simulated time and returns an EngineOut
// describing what the host GroupMember should transmit; GroupMember wraps
// engine payloads in MsgType::kEngine control messages and routes inbound
// ones back via on_control().
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "gcs/types.h"
#include "sim/time.h"

namespace gcs {

class OrderingBuffer;

enum class OrderingMode : uint8_t {
  kAllAck = 0,    ///< Transis-style all-ack Lamport order (the default)
  kTokenRing = 1, ///< Totem-style circulating-token global sequencer
};

std::string_view to_string(OrderingMode mode);
std::optional<OrderingMode> parse_ordering_mode(std::string_view name);

/// Runtime engine selection: the JOSHUA_ORDERING environment variable
/// ("allack" | "token"); kAllAck when unset or unparseable. This is how CI
/// runs the same test binaries under both engines.
OrderingMode ordering_mode_from_env();

/// Ordering hot-path batch knob: JOSHUA_ORDER_BATCH (messages per stamp
/// announcement / per cumulative ack). 0 when unset: the legacy per-message
/// behavior, which is what the checked-in baselines gate.
uint32_t order_batch_from_env();

/// Sender flow-control window: JOSHUA_ORDER_WINDOW (own AGREED/SAFE
/// multicasts in flight before the sender queues locally). 0 when unset:
/// unbounded, the legacy behavior.
uint32_t order_window_from_env();

/// Engine knobs resolved by the host GroupMember from its GroupConfig.
struct EngineTuning {
  /// Token mode: forward delay when holding the token with nothing to
  /// stamp. Backs off exponentially up to `token_idle_cap` while the ring
  /// is idle so a quiet view does not burn simulation events.
  sim::Duration token_idle = sim::msec(2);
  sim::Duration token_idle_cap = sim::msec(100);
  /// Token mode: silence on the ring after which the lowest member
  /// regenerates a lost token.
  sim::Duration token_timeout = sim::msec(400);
  /// Token mode: cap on stamps per announcement broadcast. A holder with a
  /// bigger backlog emits several announcements in one hold. 0: unlimited
  /// (the whole backlog in one announcement -- the legacy wire behavior).
  uint32_t max_batch = 0;
};

/// What an engine hook wants transmitted / recorded. Engines cannot send;
/// GroupMember applies this after every hook call.
struct EngineOut {
  /// Engine control payloads for every other view member, sent in order.
  /// A batching holder emits one element per stamp-announcement chunk.
  std::vector<sim::Payload> broadcasts;
  /// Stamp counts to record into the gcs.batch_size histogram (parallel to
  /// the announcement broadcasts; non-announcement broadcasts add nothing).
  std::vector<uint32_t> batch_sizes;
  /// Engine control payload for one member (token hand-off).
  std::optional<std::pair<MemberId, sim::Payload>> unicast;
  /// The unicast is a token hand-off: count a rotation.
  bool token_forward = false;
  /// Token hold time to record into gcs.token.hold_us (< 0: none).
  int64_t token_hold_us = -1;
  /// Ask the host to call on_forward_timer() after this delay (idle token
  /// throttling). Zero: no timer.
  sim::Duration forward_timer = sim::kDurationZero;

  /// Append one broadcast payload (convenience for single-payload hooks).
  void add_broadcast(sim::Payload p) { broadcasts.push_back(std::move(p)); }

  bool empty() const {
    return broadcasts.empty() && !unicast && token_hold_us < 0 &&
           forward_timer.us == 0;
  }
};

class OrderingEngine {
 public:
  virtual ~OrderingEngine() = default;

  virtual OrderingMode mode() const = 0;
  std::string_view name() const { return to_string(mode()); }

  /// Non-owning back-pointer to the buffer whose pending set this engine
  /// orders. Set once, before the first reset().
  void attach(const OrderingBuffer* buffer) { buffer_ = buffer; }

  /// A view was installed (called after OrderingBuffer::reset). May emit
  /// output: the token engine's lowest member mints the new view's token.
  virtual EngineOut reset(const View& view, MemberId self, int64_t now_us) = 0;

  /// Member went down; drop everything (mirror of OrderingBuffer::clear_all).
  virtual void clear() = 0;

  /// Protocol metadata heard from `p` (any traffic; lamport clock only --
  /// cuts and sent watermarks live in the buffer).
  virtual void observe(MemberId p, uint64_t lamport) = 0;

  /// This member multicast m (already inserted into the buffer).
  virtual EngineOut on_local_send(const DataMsg& m, int64_t now_us) = 0;

  /// A remote message was newly inserted into the buffer.
  virtual EngineOut on_insert(const DataMsg& m, int64_t now_us) = 0;

  /// An engine control message arrived from a view member.
  virtual EngineOut on_control(MemberId from, const sim::Payload& body,
                               int64_t now_us) = 0;

  /// Periodic heartbeat tick (failure-detector cadence): token
  /// regeneration, stamp-gap recovery.
  virtual EngineOut on_tick(int64_t now_us) = 0;

  /// A forward_timer requested earlier has fired.
  virtual EngineOut on_forward_timer(int64_t now_us) = 0;

  /// The next AGREED/SAFE message whose delivery condition holds, or
  /// nullptr. Points into the buffer's pending set; valid until the buffer
  /// mutates.
  virtual const DataMsg* next_deliverable() const = 0;

  /// An AGREED/SAFE message was delivered (via next_deliverable or flush).
  virtual void on_delivered(const DataMsg& m) = 0;

  /// Should every data message be acked with a reactive cut? All-ack needs
  /// it (the cut IS the delivery evidence); token order does not -- its
  /// delivery evidence is the stamp, and per-message cuts are exactly the
  /// O(N) overhead the ring removes. Stability/SAFE then ride on the
  /// periodic heartbeat cuts.
  virtual bool wants_ack_cuts() const { return true; }

  // -- flush / view-change state transfer ------------------------------------
  /// Opaque engine state carried in this member's flush ack (token mode:
  /// the stamp table, so every member flushes in the same global order).
  virtual sim::Payload transfer_state() const { return {}; }
  /// Coordinator: merge all members' transfer_state payloads into the one
  /// carried by the commit. Must be associative and deterministic.
  virtual sim::Payload merge_transfer_states(
      const std::vector<sim::Payload>& states) const {
    (void)states;
    return {};
  }
  /// Everyone: install the commit's merged state *before* the flush
  /// delivery so order_flush agrees at every member.
  virtual void install_transfer_state(const sim::Payload& merged) {
    (void)merged;
  }
  /// Put the flushed message set into delivery order. Default: keep the
  /// caller's OrderKey order (all-ack semantics).
  virtual void order_flush(std::vector<DataMsg>& msgs) const { (void)msgs; }

 protected:
  const OrderingBuffer* buffer_ = nullptr;
};

std::unique_ptr<OrderingEngine> make_engine(OrderingMode mode,
                                            const EngineTuning& tuning);

}  // namespace gcs
