#include "gcs/messages.h"

namespace gcs {
namespace {

void encode_header(net::Writer& w, const Header& h) {
  w.u32(h.from);
  w.u64(h.lamport);
  w.u64(h.sent_upto);
  encode_cut(w, h.received);
}

Header decode_header(net::Reader& r) {
  Header h;
  h.from = r.u32();
  h.lamport = r.u64();
  h.sent_upto = r.u64();
  h.received = decode_cut_vector(r);
  return h;
}

void encode_view_id(net::Writer& w, const ViewId& id) {
  w.u64(id.epoch);
  w.u32(id.coordinator);
}

ViewId decode_view_id(net::Reader& r) {
  ViewId id;
  id.epoch = r.u64();
  id.coordinator = r.u32();
  return id;
}

void encode_msg_id(net::Writer& w, const MsgId& id) {
  w.u32(id.sender);
  w.u64(id.seq);
}

MsgId decode_msg_id(net::Reader& r) {
  MsgId id;
  id.sender = r.u32();
  id.seq = r.u64();
  return id;
}

net::Writer begin(MsgType type, const Header& h) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(type));
  encode_header(w, h);
  return w;
}

net::Reader open(const sim::Payload& buf, MsgType expected, Header& h) {
  net::Reader r(buf);
  auto type = static_cast<MsgType>(r.u8());
  if (type != expected) throw net::WireError("gcs: message type mismatch");
  h = decode_header(r);
  return r;
}

}  // namespace

MsgType decode_type(const sim::Payload& buf) {
  if (buf.empty()) throw net::WireError("gcs: empty message");
  return static_cast<MsgType>(buf[0]);
}

sim::Payload encode(const DataWire& m) {
  net::Writer w = begin(MsgType::kData, m.header);
  encode_data_msg(w, m.msg);
  return w.take();
}

DataWire decode_data(const sim::Payload& buf) {
  DataWire m;
  net::Reader r = open(buf, MsgType::kData, m.header);
  m.msg = decode_data_msg(r);
  r.expect_done();
  return m;
}

sim::Payload encode(const CutWire& m) {
  net::Writer w = begin(MsgType::kCut, m.header);
  w.boolean(m.periodic);
  return w.take();
}

CutWire decode_cut(const sim::Payload& buf) {
  CutWire m;
  net::Reader r = open(buf, MsgType::kCut, m.header);
  m.periodic = r.boolean();
  r.expect_done();
  return m;
}

sim::Payload encode(const NackWire& m) {
  net::Writer w = begin(MsgType::kNack, m.header);
  w.vec(m.missing, [](net::Writer& w2, const MsgId& id) { encode_msg_id(w2, id); });
  return w.take();
}

NackWire decode_nack(const sim::Payload& buf) {
  NackWire m;
  net::Reader r = open(buf, MsgType::kNack, m.header);
  m.missing = r.vec<MsgId>([](net::Reader& r2) { return decode_msg_id(r2); });
  r.expect_done();
  return m;
}

sim::Payload encode(const RetransmitWire& m) {
  net::Writer w = begin(MsgType::kRetransmit, m.header);
  w.vec(m.msgs,
        [](net::Writer& w2, const DataMsg& d) { encode_data_msg(w2, d); });
  return w.take();
}

RetransmitWire decode_retransmit(const sim::Payload& buf) {
  RetransmitWire m;
  net::Reader r = open(buf, MsgType::kRetransmit, m.header);
  m.msgs = r.vec<DataMsg>([](net::Reader& r2) { return decode_data_msg(r2); });
  r.expect_done();
  return m;
}

sim::Payload encode(const JoinReqWire& m) {
  net::Writer w = begin(MsgType::kJoinReq, m.header);
  w.u32(m.incarnation);
  return w.take();
}

JoinReqWire decode_join_req(const sim::Payload& buf) {
  JoinReqWire m;
  net::Reader r = open(buf, MsgType::kJoinReq, m.header);
  m.incarnation = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode(const LeaveWire& m) {
  net::Writer w = begin(MsgType::kLeave, m.header);
  return w.take();
}

LeaveWire decode_leave(const sim::Payload& buf) {
  LeaveWire m;
  net::Reader r = open(buf, MsgType::kLeave, m.header);
  r.expect_done();
  return m;
}

sim::Payload encode(const VcProposeWire& m) {
  net::Writer w = begin(MsgType::kVcPropose, m.header);
  encode_view_id(w, m.proposed);
  w.vec(m.members, [](net::Writer& w2, MemberId id) { w2.u32(id); });
  return w.take();
}

VcProposeWire decode_vc_propose(const sim::Payload& buf) {
  VcProposeWire m;
  net::Reader r = open(buf, MsgType::kVcPropose, m.header);
  m.proposed = decode_view_id(r);
  m.members = r.vec<MemberId>([](net::Reader& r2) { return r2.u32(); });
  r.expect_done();
  return m;
}

sim::Payload encode(const VcAckWire& m) {
  net::Writer w = begin(MsgType::kVcAck, m.header);
  encode_view_id(w, m.proposed);
  w.vec(m.held,
        [](net::Writer& w2, const DataMsg& d) { encode_data_msg(w2, d); });
  w.bytes(m.engine_state);
  return w.take();
}

VcAckWire decode_vc_ack(const sim::Payload& buf) {
  VcAckWire m;
  net::Reader r = open(buf, MsgType::kVcAck, m.header);
  m.proposed = decode_view_id(r);
  m.held = r.vec<DataMsg>([](net::Reader& r2) { return decode_data_msg(r2); });
  m.engine_state = r.bytes();
  r.expect_done();
  return m;
}

sim::Payload encode(const VcCommitWire& m) {
  net::Writer w = begin(MsgType::kVcCommit, m.header);
  encode_view(w, m.new_view);
  w.vec(m.old_members, [](net::Writer& w2, MemberId id) { w2.u32(id); });
  w.vec(m.joiners, [](net::Writer& w2, MemberId id) { w2.u32(id); });
  w.vec(m.union_msgs,
        [](net::Writer& w2, const DataMsg& d) { encode_data_msg(w2, d); });
  encode_u64_map(w, m.seq_baseline);
  w.u32(m.state_source);
  w.bytes(m.engine_state);
  return w.take();
}

VcCommitWire decode_vc_commit(const sim::Payload& buf) {
  VcCommitWire m;
  net::Reader r = open(buf, MsgType::kVcCommit, m.header);
  m.new_view = decode_view(r);
  m.old_members = r.vec<MemberId>([](net::Reader& r2) { return r2.u32(); });
  m.joiners = r.vec<MemberId>([](net::Reader& r2) { return r2.u32(); });
  m.union_msgs =
      r.vec<DataMsg>([](net::Reader& r2) { return decode_data_msg(r2); });
  m.seq_baseline = decode_u64_map(r);
  m.state_source = r.u32();
  m.engine_state = r.bytes();
  r.expect_done();
  return m;
}

sim::Payload encode(const StateReqWire& m) {
  net::Writer w = begin(MsgType::kStateReq, m.header);
  encode_view_id(w, m.view_id);
  return w.take();
}

StateReqWire decode_state_req(const sim::Payload& buf) {
  StateReqWire m;
  net::Reader r = open(buf, MsgType::kStateReq, m.header);
  m.view_id = decode_view_id(r);
  r.expect_done();
  return m;
}

sim::Payload encode(const StateWire& m) {
  net::Writer w = begin(MsgType::kState, m.header);
  encode_view_id(w, m.view_id);
  w.bytes(m.state);
  return w.take();
}

StateWire decode_state(const sim::Payload& buf) {
  StateWire m;
  net::Reader r = open(buf, MsgType::kState, m.header);
  m.view_id = decode_view_id(r);
  m.state = r.bytes();
  r.expect_done();
  return m;
}

sim::Payload encode(const EngineWire& m) {
  net::Writer w = begin(MsgType::kEngine, m.header);
  w.bytes(m.body);
  return w.take();
}

EngineWire decode_engine(const sim::Payload& buf) {
  EngineWire m;
  net::Reader r = open(buf, MsgType::kEngine, m.header);
  m.body = r.bytes();
  r.expect_done();
  return m;
}

}  // namespace gcs
