// Generic symmetric active/active replication for deterministic services.
//
// The paper's closing claim: "the generic symmetric active/active high
// availability model our approach is based on is applicable to any
// deterministic HPC system service, such as to the metadata server of the
// parallel virtual file system (PVFS)". This module is that generalization:
// JOSHUA's interceptor pattern factored out of the PBS specifics.
//
// A deterministic service implements IDeterministicService; ReplicaNode
// wraps one instance per head node, totally orders client requests through
// the group communication system, applies them identically at every
// replica, and answers from the contacted replica only (exactly-once
// output). Joining replicas receive a snapshot before any post-join
// request.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "gcs/group_member.h"
#include "net/rpc.h"
#include "telemetry/metrics.h"

namespace rsm {

/// A service suitable for symmetric active/active replication: request
/// application must be deterministic (same request sequence -> same state
/// and same responses at every replica).
class IDeterministicService {
 public:
  virtual ~IDeterministicService() = default;

  /// Apply one request and produce the response. Must be deterministic;
  /// must not consult wall clocks or randomness outside the request.
  virtual sim::Payload apply(const sim::Payload& request) = 0;

  /// Serialize the full service state.
  virtual sim::Payload snapshot() const = 0;

  /// Replace the state with a snapshot.
  virtual void install(const sim::Payload& snapshot) = 0;

  /// Read-only requests may optionally skip total ordering (served from
  /// local state). Default: everything is ordered.
  virtual bool is_read_only(const sim::Payload& request) const {
    (void)request;
    return false;
  }

  /// CPU cost of applying a request on the calibrated testbed.
  virtual sim::Duration apply_cost(const sim::Payload& request) const {
    (void)request;
    return sim::msec(5);
  }
};

struct ReplicaConfig {
  sim::Port client_port = 19000;
  gcs::GroupConfig group;  ///< peers = replica hosts; group.port distinct
  /// Serve is_read_only() requests from local state without ordering
  /// (weaker consistency, lower latency -- the read-local ablation).
  bool read_local = false;
  sim::Duration request_proc = sim::msec(2);
};

class ReplicaNode : public net::RpcNode {
 public:
  /// The node owns neither the service nor the network.
  ReplicaNode(sim::Network& net, sim::HostId host, ReplicaConfig config,
              IDeterministicService* service);

  void start();     ///< join the replica group
  void shutdown();  ///< leave gracefully

  bool in_service() const { return group_.is_member(); }
  const gcs::GroupMember& group() const { return group_; }
  gcs::GroupMember& group() { return group_; }

  struct Stats {
    uint64_t requests = 0;
    uint64_t applied = 0;
    uint64_t local_reads = 0;
    uint64_t replies = 0;
  };
  const Stats& stats() const { return stats_; }

  // net::RpcNode:
  void on_request(sim::Payload request, sim::Endpoint from,
                  uint64_t rpc_id) override;
  void on_crash() override;

 private:
  void on_deliver(const gcs::Delivered& msg);
  void on_view(const gcs::View& view);

  ReplicaConfig config_;
  IDeterministicService* service_;
  gcs::GroupMember group_;
  uint64_t next_seq_ = 1;
  /// In-flight ordered requests by local seq: reply route plus the time the
  /// request entered the total order (for the ordering-latency span).
  struct Pending {
    sim::Endpoint client;
    uint64_t rpc_id = 0;
    int64_t ordered_at_us = 0;
  };
  std::map<uint64_t, Pending> pending_;
  Stats stats_;
  telemetry::Counter m_requests_;
  telemetry::Counter m_applied_;
  telemetry::Counter m_local_reads_;
  telemetry::Counter m_replies_;
  telemetry::Histogram m_order_latency_;
  uint16_t tc_order_ = 0;
};

/// Client with transparent replica failover (mirrors joshua::Client).
class ReplicaClient : public net::RpcNode {
 public:
  struct Config {
    std::vector<sim::Endpoint> replicas;
    sim::Duration timeout = sim::seconds(5);
  };

  ReplicaClient(sim::Network& net, sim::HostId host, sim::Port port,
                Config config);

  using Handler = std::function<void(std::optional<sim::Payload>)>;
  void request(sim::Payload payload, Handler done);

  uint64_t failovers() const { return failovers_; }

 protected:
  void on_request(sim::Payload, sim::Endpoint, uint64_t) override {}

 private:
  void attempt(sim::Payload payload, Handler done, size_t tries_left);

  Config config_;
  size_t current_ = 0;
  uint64_t failovers_ = 0;
};

}  // namespace rsm
