#include "rsm/replicated_service.h"

#include "net/wire.h"
#include "telemetry/hub.h"
#include "util/logging.h"

namespace rsm {
namespace {

/// Group message framing: [u32 origin][u64 seq][bytes request].
sim::Payload encode_ordered(gcs::MemberId origin, uint64_t seq,
                            const sim::Payload& request) {
  net::Writer w;
  w.u32(origin);
  w.u64(seq);
  w.bytes(request);
  return w.take();
}

struct Ordered {
  gcs::MemberId origin;
  uint64_t seq;
  sim::Payload request;
};

Ordered decode_ordered(const sim::Payload& buf) {
  net::Reader r(buf);
  Ordered o;
  o.origin = r.u32();
  o.seq = r.u64();
  o.request = r.bytes();
  r.expect_done();
  return o;
}

}  // namespace

ReplicaNode::ReplicaNode(sim::Network& net, sim::HostId host,
                         ReplicaConfig config, IDeterministicService* service)
    : net::RpcNode(net, host, config.client_port,
                   "replica@" + net.host(host).name()),
      config_(std::move(config)),
      service_(service),
      group_(net, host, config_.group,
             gcs::GroupCallbacks{
                 [this](const gcs::View& v) { on_view(v); },
                 [this](const gcs::Delivered& d) { on_deliver(d); },
                 [this] { return service_->snapshot(); },
                 [this](const sim::Payload& s) { service_->install(s); },
             }) {
  if (service_ == nullptr)
    throw std::invalid_argument("ReplicaNode: null service");
  telemetry::Hub& hub = net.sim().telemetry();
  m_requests_ = hub.metrics().counter("rsm.requests");
  m_applied_ = hub.metrics().counter("rsm.applied");
  m_local_reads_ = hub.metrics().counter("rsm.local_reads");
  m_replies_ = hub.metrics().counter("rsm.replies");
  m_order_latency_ = hub.metrics().histogram("rsm.order_latency_us");
  tc_order_ = hub.trace().intern("rsm.order");
}

void ReplicaNode::start() { group_.join(); }

void ReplicaNode::shutdown() {
  pending_.clear();
  group_.leave();
}

void ReplicaNode::on_request(sim::Payload request, sim::Endpoint from,
                             uint64_t rpc_id) {
  ++stats_.requests;
  m_requests_.add(1);
  execute(config_.request_proc, [this, request = std::move(request), from,
                                 rpc_id] {
    if (!group_.is_member()) return;  // client fails over
    if (config_.read_local && service_->is_read_only(request)) {
      ++stats_.local_reads;
      m_local_reads_.add(1);
      execute(service_->apply_cost(request), [this, request, from, rpc_id] {
        sim::Payload response = service_->apply(request);
        ++stats_.replies;
        m_replies_.add(1);
        respond(from, rpc_id, std::move(response));
      });
      return;
    }
    uint64_t seq = next_seq_++;
    pending_[seq] = {from, rpc_id, sim().now().us};
    group_.multicast(encode_ordered(group_.id(), seq, request),
                     gcs::Delivery::kAgreed);
  });
}

void ReplicaNode::on_deliver(const gcs::Delivered& msg) {
  Ordered ordered;
  try {
    ordered = decode_ordered(msg.payload);
  } catch (const net::WireError& e) {
    JLOG(kWarn, "rsm") << name() << ": bad ordered request: " << e.what();
    return;
  }
  execute(service_->apply_cost(ordered.request),
          [this, ordered = std::move(ordered)] {
            sim::Payload response = service_->apply(ordered.request);
            ++stats_.applied;
            m_applied_.add(1);
            if (ordered.origin != group_.id()) return;
            auto it = pending_.find(ordered.seq);
            if (it == pending_.end()) return;
            Pending p = it->second;
            pending_.erase(it);
            // The ordering decision for this request is final: span from
            // multicast to ordered application at the origin.
            m_order_latency_.record(sim().now().us - p.ordered_at_us);
            sim().telemetry().trace().complete(p.ordered_at_us, sim().now().us,
                                               host_id(), tc_order_,
                                               ordered.seq);
            ++stats_.replies;
            m_replies_.add(1);
            respond(p.client, p.rpc_id, std::move(response));
          });
}

void ReplicaNode::on_view(const gcs::View& view) {
  if (view.members.empty()) {
    JLOG(kWarn, "rsm") << name() << " excluded from the replica group";
    pending_.clear();
  }
}

void ReplicaNode::on_crash() {
  net::RpcNode::on_crash();
  pending_.clear();
  next_seq_ = 1;
}

ReplicaClient::ReplicaClient(sim::Network& net, sim::HostId host,
                             sim::Port port, Config config)
    : net::RpcNode(net, host, port, "rsm_client@" + net.host(host).name()),
      config_(std::move(config)) {
  if (config_.replicas.empty())
    throw std::invalid_argument("ReplicaClient: no replicas");
}

void ReplicaClient::request(sim::Payload payload, Handler done) {
  attempt(std::move(payload), std::move(done), config_.replicas.size());
}

void ReplicaClient::attempt(sim::Payload payload, Handler done,
                            size_t tries_left) {
  net::CallOptions options;
  options.timeout = config_.timeout;
  call(config_.replicas[current_], payload,
       [this, payload, done = std::move(done),
        tries_left](std::optional<sim::Payload> resp) mutable {
         if (resp.has_value()) {
           done(std::move(resp));
           return;
         }
         if (tries_left <= 1) {
           done(std::nullopt);
           return;
         }
         current_ = (current_ + 1) % config_.replicas.size();
         ++failovers_;
         attempt(std::move(payload), std::move(done), tries_left - 1);
       },
       options);
}

}  // namespace rsm
