// ShardMap: the partition function of the federated control plane.
//
// The job-id space is carved into contiguous blocks of `id_stride` ids --
// shard s owns (s*stride, (s+1)*stride] -- so ownership of any id the
// system ever issued is a pure computation, with no directory service to
// replicate or fail over. Queue ownership is either explicit (per-shard
// glob lists, validated overlap-free and total) or implicit (a stable hash
// of the queue name spreads submits across shards).
//
// Everything here is deterministic and state-free: every router, head and
// test that evaluates the same ShardMapConfig agrees on every placement,
// which is what lets shards order commands independently without ever
// disagreeing about who owns what.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pbs/job.h"

namespace fed {

/// Default job-id block per shard: 2^32 ids. Large enough that no shard
/// exhausts its block over any realistic campaign, small enough that 2^32
/// shards fit the 64-bit id space.
constexpr pbs::JobId kDefaultIdStride = 1ull << 32;

struct ShardMapConfig {
  uint32_t shard_count = 1;
  pbs::JobId id_stride = kDefaultIdStride;
  /// Queue globs per shard. Empty = hash placement. When non-empty, must
  /// have exactly shard_count entries, be overlap-free, and include a
  /// catch-all "*" somewhere (no queue may be unassigned).
  std::vector<std::vector<std::string>> queue_globs;
};

class ShardMap {
 public:
  /// Single-shard identity map (today's monolithic routing).
  ShardMap() = default;
  /// Throws jutil::ConfigError on an invalid partition (zero shards, zero
  /// stride, malformed or overlapping queue globs, uncovered queue space).
  explicit ShardMap(ShardMapConfig config);

  uint32_t shard_count() const { return config_.shard_count; }
  pbs::JobId id_stride() const { return config_.id_stride; }
  bool single_shard() const { return config_.shard_count <= 1; }
  /// True when submits route by queue globs rather than by hash.
  bool routes_by_queue() const { return !config_.queue_globs.empty(); }

  /// First job id of a shard's block (what its PBS replicas number from).
  pbs::JobId first_id(uint32_t shard) const {
    return static_cast<pbs::JobId>(shard) * config_.id_stride + 1;
  }

  /// The shard whose block contains `id`, or nullopt for kInvalidJob and
  /// ids beyond every shard's block (no shard can ever have issued them).
  std::optional<uint32_t> owner_of(pbs::JobId id) const;

  /// Glob-routing lookup: the shard owning `queue`, or nullopt when this
  /// map routes by hash. Validation guarantees a match in glob mode.
  std::optional<uint32_t> shard_of_queue(std::string_view queue) const;

  /// Submit placement: glob owner when routing by queue, otherwise a stable
  /// FNV-1a hash of (queue, salt) modulo shard_count. The salt lets a
  /// router spread a stream of same-queue submits; placement is a pure
  /// function of (config, queue, salt) -- identical on every caller.
  uint32_t place(std::string_view queue, uint64_t salt = 0) const;

 private:
  ShardMapConfig config_{};
};

}  // namespace fed
