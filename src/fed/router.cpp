#include "fed/router.h"

#include <algorithm>

#include "sim/calibration.h"
#include "sim/network.h"

namespace fed {

Router::Router(sim::Network& net, sim::HostId host, sim::Port first_port,
               const ShardMap& map,
               const std::vector<std::vector<sim::Endpoint>>& shard_heads,
               const sim::Calibration& cal)
    : map_(&map) {
  for (uint32_t s = 0; s < map.shard_count(); ++s) {
    joshua::ClientConfig cfg =
        joshua::joshua_client_config_from(cal, shard_heads.at(s));
    clients_.push_back(std::make_unique<joshua::Client>(
        net, host, static_cast<sim::Port>(first_port + s), std::move(cfg)));
  }
  telemetry::Registry& m = net.sim().telemetry().metrics();
  m_routed_ = m.counter("fed.routed");
  m_fanouts_ = m.counter("fed.fanouts");
  m_fanout_reads_ = m.counter("fed.fanout_reads");
  m_rejects_ = m.counter("fed.rejects");
  m_mass_deleted_ = m.counter("fed.mass_deleted");
}

Router::~Router() = default;

uint64_t Router::failovers() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->failovers();
  return total;
}

template <typename Response>
bool Router::route_by_id(pbs::JobId id, uint32_t& shard,
                         std::function<void(std::optional<Response>)>& done) {
  std::optional<uint32_t> owner = map_->owner_of(id);
  if (!owner.has_value()) {
    // No shard's id block contains this id, so no head anywhere could know
    // it: answer kUnknownJob locally rather than burning an ordered slot.
    ++stats_.rejects;
    m_rejects_.add(1);
    Response resp;
    resp.status = pbs::Status::kUnknownJob;
    if (done) done(resp);
    return false;
  }
  ++stats_.routed;
  m_routed_.add(1);
  shard = *owner;
  return true;
}

void Router::jsub(pbs::JobSpec spec,
                  std::function<void(std::optional<pbs::SubmitResponse>)> done) {
  uint32_t shard = map_->place(spec.queue, next_salt_++);
  ++stats_.routed;
  m_routed_.add(1);
  clients_[shard]->jsub(std::move(spec), std::move(done));
}

void Router::jstat(pbs::StatRequest req,
                   std::function<void(std::optional<pbs::StatResponse>)> done) {
  if (req.job_id != pbs::kInvalidJob) {
    uint32_t shard = 0;
    if (!route_by_id<pbs::StatResponse>(req.job_id, shard, done)) return;
    clients_[shard]->jstat(std::move(req), std::move(done));
    return;
  }

  // jstat -all: fan out the read to every shard and merge. Each shard's
  // answer is a consistent totally-ordered snapshot of *its* jobs; the
  // merge is only as fresh as the slowest shard, which is the documented
  // cross-shard semantic.
  ++stats_.fanouts;
  m_fanouts_.add(1);
  uint32_t shards = map_->shard_count();
  struct Merge {
    std::vector<pbs::Job> jobs;
    pbs::Status status = pbs::Status::kOk;
    uint32_t pending = 0;
    bool failed = false;
  };
  auto merge = std::make_shared<Merge>();
  merge->pending = shards;
  for (uint32_t s = 0; s < shards; ++s) {
    ++stats_.fanout_reads;
    m_fanout_reads_.add(1);
    clients_[s]->jstat(
        req, [this, merge, done](std::optional<pbs::StatResponse> resp) {
          if (!resp.has_value()) {
            merge->failed = true;
          } else {
            if (resp->status != pbs::Status::kOk &&
                merge->status == pbs::Status::kOk)
              merge->status = resp->status;
            merge->jobs.insert(merge->jobs.end(), resp->jobs.begin(),
                               resp->jobs.end());
          }
          if (--merge->pending > 0) return;
          if (merge->failed) {
            if (done) done(std::nullopt);
            return;
          }
          std::sort(merge->jobs.begin(), merge->jobs.end(),
                    [](const pbs::Job& a, const pbs::Job& b) {
                      return a.id < b.id;
                    });
          pbs::StatResponse out;
          out.status = merge->status;
          out.jobs = std::move(merge->jobs);
          if (done) done(std::move(out));
        });
  }
}

void Router::jdel(pbs::JobId id,
                  std::function<void(std::optional<pbs::SimpleResponse>)> done) {
  uint32_t shard = 0;
  if (!route_by_id<pbs::SimpleResponse>(id, shard, done)) return;
  clients_[shard]->jdel(id, std::move(done));
}

void Router::jhold(pbs::JobId id,
                   std::function<void(std::optional<pbs::SimpleResponse>)> done) {
  uint32_t shard = 0;
  if (!route_by_id<pbs::SimpleResponse>(id, shard, done)) return;
  clients_[shard]->jhold(id, std::move(done));
}

void Router::jrls(pbs::JobId id,
                  std::function<void(std::optional<pbs::SimpleResponse>)> done) {
  uint32_t shard = 0;
  if (!route_by_id<pbs::SimpleResponse>(id, shard, done)) return;
  clients_[shard]->jrls(id, std::move(done));
}

void Router::jdel_all(std::function<void(std::optional<uint64_t>)> done) {
  // Phase 1: discover live jobs everywhere (incomplete only -- deleting a
  // finished job is a no-op the shard would refuse anyway).
  pbs::StatRequest req;
  req.job_id = pbs::kInvalidJob;
  req.include_complete = false;
  jstat(req, [this, done](std::optional<pbs::StatResponse> resp) {
    if (!resp.has_value()) {
      if (done) done(std::nullopt);
      return;
    }
    // Phase 2: one ordered delete per job at its owning shard. Jobs that
    // finish or vanish between the read and the delete simply answer
    // non-kOk and are not counted -- the count reports deletes the shard
    // actually ordered and applied.
    if (resp->jobs.empty()) {
      if (done) done(0);
      return;
    }
    struct Count {
      uint64_t deleted = 0;
      size_t pending = 0;
    };
    auto count = std::make_shared<Count>();
    count->pending = resp->jobs.size();
    for (const pbs::Job& job : resp->jobs) {
      std::optional<uint32_t> owner = map_->owner_of(job.id);
      if (!owner.has_value()) {  // cannot happen for a shard-reported id
        if (--count->pending == 0 && done) done(count->deleted);
        continue;
      }
      ++stats_.routed;
      m_routed_.add(1);
      clients_[*owner]->jdel(
          job.id, [this, count, done](std::optional<pbs::SimpleResponse> r) {
            if (r.has_value() && r->status == pbs::Status::kOk) {
              ++count->deleted;
              ++stats_.mass_deleted;
              m_mass_deleted_.add(1);
            }
            if (--count->pending == 0 && done) done(count->deleted);
          });
    }
  });
}

}  // namespace fed
