#include "fed/federation.h"

#include <stdexcept>

#include "util/config.h"

namespace fed {

FederationOptions federation_options_from(const joshua::ClusterOptions& co) {
  FederationOptions fo;
  fo.shard_count = co.shards.count < 1 ? 1 : co.shards.count;
  fo.cal = co.cal;
  fo.transfer = co.transfer;
  fo.auto_rejoin = co.auto_rejoin;
  fo.require_majority = co.require_majority;
  fo.sched = co.sched;
  fo.seed = co.seed;
  fo.mom_heartbeat = co.mom_heartbeat;
  fo.heartbeat_miss_limit = co.heartbeat_miss_limit;
  fo.gcs_heartbeat = co.gcs_heartbeat;
  fo.gcs_suspect = co.gcs_suspect;
  fo.gcs_flush = co.gcs_flush;
  fo.ordering = co.ordering;
  fo.order_batch = co.order_batch;
  fo.order_window = co.order_window;
  if (co.shards.id_stride != 0) fo.id_stride = co.shards.id_stride;
  fo.queue_globs = co.shards.queues;
  bool any_globs = false;
  for (const auto& globs : fo.queue_globs) any_globs |= !globs.empty();
  if (!any_globs) fo.queue_globs.clear();

  if (fo.shard_count <= 1 || co.shards.heads.empty()) {
    fo.heads_per_shard = co.head_count;
    fo.computes_per_shard = co.compute_count;
    return fo;
  }
  size_t per = co.shards.heads.front().size();
  for (const auto& heads : co.shards.heads)
    if (heads.size() != per)
      throw jutil::ConfigError(
          "federation requires equal heads per shard (got " +
          std::to_string(heads.size()) + " vs " + std::to_string(per) + ")");
  fo.heads_per_shard = static_cast<int>(per);
  // Computes are not listed per shard in the file; split the pool evenly.
  fo.computes_per_shard = co.compute_count / fo.shard_count;
  if (fo.computes_per_shard < 1) fo.computes_per_shard = 1;
  return fo;
}

Federation::Federation(FederationOptions options)
    : options_(std::move(options)),
      map_([&] {
        ShardMapConfig mc;
        mc.shard_count = static_cast<uint32_t>(
            options_.shard_count < 1 ? 1 : options_.shard_count);
        mc.id_stride = options_.id_stride;
        mc.queue_globs = options_.queue_globs;
        return ShardMap(mc);
      }()),
      sim_(options_.seed),
      net_(sim_, options_.cal.network),
      faults_(net_) {
  if (options_.heads_per_shard < 1 || options_.computes_per_shard < 1)
    throw jutil::ConfigError("federation: heads/computes per shard must be >= 1");

  uint32_t shards = map_.shard_count();
  // Hosts first (flat order: all of shard 0's heads, then shard 1's, ...),
  // so host ids are stable regardless of per-shard wiring below.
  for (uint32_t s = 0; s < shards; ++s)
    for (int i = 0; i < options_.heads_per_shard; ++i)
      head_hosts_.push_back(
          net_.add_host("s" + std::to_string(s) + "h" + std::to_string(i))
              .id());
  for (uint32_t s = 0; s < shards; ++s)
    for (int i = 0; i < options_.computes_per_shard; ++i)
      compute_hosts_.push_back(
          net_.add_host("s" + std::to_string(s) + "n" + std::to_string(i))
              .id());
  login_host_ = net_.add_host("login").id();

  size_t hps = static_cast<size_t>(options_.heads_per_shard);
  size_t cps = static_cast<size_t>(options_.computes_per_shard);
  for (uint32_t s = 0; s < shards; ++s) {
    std::vector<sim::HostId> shard_heads(
        head_hosts_.begin() + static_cast<ptrdiff_t>(s * hps),
        head_hosts_.begin() + static_cast<ptrdiff_t>((s + 1) * hps));
    std::vector<sim::HostId> shard_computes(
        compute_hosts_.begin() + static_cast<ptrdiff_t>(s * cps),
        compute_hosts_.begin() + static_cast<ptrdiff_t>((s + 1) * cps));
    std::vector<sim::Endpoint> mom_endpoints;
    for (sim::HostId h : shard_computes)
      mom_endpoints.push_back({h, joshua::Ports::kMom});

    // PBS replicas: identical to Cluster's except the job-id base, which
    // anchors this shard's block, and the persistence knob.
    for (sim::HostId h : shard_heads) {
      pbs::ServerConfig cfg = pbs::server_config_from(options_.cal);
      cfg.port = joshua::Ports::kPbsServer;
      cfg.moms = mom_endpoints;
      cfg.sched = options_.sched;
      cfg.persist = options_.pbs_persist;
      cfg.heartbeat_interval = options_.mom_heartbeat;
      cfg.heartbeat_miss_limit = options_.heartbeat_miss_limit;
      cfg.job_id_base = map_.first_id(s);
      pbs_servers_.push_back(std::make_unique<pbs::Server>(net_, h, cfg));
    }

    for (sim::HostId h : shard_computes) {
      pbs::MomConfig cfg = pbs::mom_config_from(options_.cal);
      cfg.port = joshua::Ports::kMom;
      cfg.server_port = joshua::Ports::kPbsServer;
      moms_.push_back(std::make_unique<pbs::Mom>(net_, h, cfg));
    }

    // JOSHUA servers: each shard is its own gcs group. Same well-known port
    // on every head works because the head-host sets are disjoint; distinct
    // group names and telemetry scopes keep the shards told apart in
    // reports and traces.
    for (size_t i = 0; i < shard_heads.size(); ++i) {
      joshua::JoshuaConfig cfg =
          joshua::joshua_config_from(options_.cal, shard_heads);
      cfg.client_port = joshua::Ports::kJoshua;
      cfg.pbs_port = joshua::Ports::kPbsServer;
      cfg.group.port = joshua::Ports::kGcs;
      cfg.group.group_name = "joshua-s" + std::to_string(s);
      cfg.group.telemetry_scope = "shard" + std::to_string(s);
      cfg.group.require_majority = options_.require_majority;
      if (options_.gcs_heartbeat.us > 0)
        cfg.group.heartbeat_interval = options_.gcs_heartbeat;
      if (options_.gcs_suspect.us > 0)
        cfg.group.suspect_timeout = options_.gcs_suspect;
      if (options_.gcs_flush.us > 0)
        cfg.group.flush_timeout = options_.gcs_flush;
      if (options_.gcs_hb_proc.us > 0) cfg.group.hb_proc = options_.gcs_hb_proc;
      if (options_.gcs_ctrl_proc.us > 0)
        cfg.group.ctrl_proc = options_.gcs_ctrl_proc;
      cfg.group.ordering = options_.ordering;
      cfg.group.order_batch = options_.order_batch;
      cfg.group.inflight_window = options_.order_window;
      cfg.transfer = options_.transfer;
      cfg.auto_rejoin = options_.auto_rejoin;
      cfg.jstat_local = options_.jstat_local;
      cfg.shard.shard = s;
      cfg.shard.count = shards;
      cfg.shard.id_stride = map_.id_stride();
      joshua_servers_.push_back(std::make_unique<joshua::Server>(
          net_, shard_heads[i], cfg,
          pbs_servers_[s * hps + i].get()));
    }

    // Mom plugins know only their own shard's heads -- the jmutex/jdone
    // arbitration is per shard like everything else below the router.
    for (size_t i = 0; i < shard_computes.size(); ++i) {
      joshua::MomPluginConfig cfg;
      cfg.port = joshua::Ports::kMomPlugin;
      cfg.heads = shard_heads;
      cfg.joshua_port = joshua::Ports::kJoshua;
      plugins_.push_back(std::make_unique<joshua::MomPlugin>(
          net_, shard_computes[i], cfg));
      plugins_.back()->attach(*moms_[s * cps + i]);
    }
  }
}

Federation::~Federation() = default;

void Federation::start() {
  for (auto& server : joshua_servers_) server->start();
}

bool Federation::converged_shard(uint32_t shard) const {
  size_t hps = static_cast<size_t>(options_.heads_per_shard);
  const gcs::View* reference = nullptr;
  size_t live = 0;
  for (size_t i = shard * hps; i < (shard + 1) * hps; ++i) {
    if (!net_.host(head_hosts_[i]).up()) continue;
    const auto& member = joshua_servers_[i]->group();
    if (member.state() != gcs::GroupMember::State::kMember) return false;
    ++live;
    if (reference == nullptr) {
      reference = &member.view();
    } else if (member.view().id != reference->id) {
      return false;
    }
  }
  return reference != nullptr && reference->size() == live && live > 0;
}

bool Federation::converged() const {
  for (uint32_t s = 0; s < map_.shard_count(); ++s)
    if (!converged_shard(s)) return false;
  return true;
}

bool Federation::run_until_converged(sim::Duration deadline) {
  sim::Time limit = sim_.now() + deadline;
  while (sim_.now() < limit) {
    if (converged()) return true;
    sim_.run_for(sim::msec(50));
  }
  return converged();
}

Router& Federation::make_router() {
  size_t hps = static_cast<size_t>(options_.heads_per_shard);
  std::vector<std::vector<sim::Endpoint>> shard_heads(map_.shard_count());
  for (uint32_t s = 0; s < map_.shard_count(); ++s)
    for (size_t i = 0; i < hps; ++i)
      shard_heads[s].push_back(
          {head_hosts_[s * hps + i], joshua::Ports::kJoshua});
  routers_.push_back(std::make_unique<Router>(
      net_, login_host_, next_client_port_, map_, shard_heads, options_.cal));
  next_client_port_ =
      static_cast<sim::Port>(next_client_port_ + map_.shard_count());
  return *routers_.back();
}

}  // namespace fed
