#include "fed/shard_map.h"

#include <set>

#include "telemetry/report_diff.h"
#include "util/config.h"

namespace fed {

namespace {

/// FNV-1a over the queue name, then the salt bytes. Stable across builds
/// and hosts -- placement must be a pure function of the config.
uint64_t fnv1a(std::string_view text, uint64_t salt) {
  uint64_t h = 14695981039346656037ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    h ^= (salt >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardMap::ShardMap(ShardMapConfig config) : config_(std::move(config)) {
  if (config_.shard_count < 1)
    throw jutil::ConfigError("ShardMap: shard_count must be >= 1");
  if (config_.id_stride == 0)
    throw jutil::ConfigError("ShardMap: id_stride must be > 0");
  if (config_.queue_globs.empty()) return;  // hash placement
  if (config_.queue_globs.size() != config_.shard_count)
    throw jutil::ConfigError(
        "ShardMap: queue_globs must have one entry per shard (" +
        std::to_string(config_.queue_globs.size()) + " lists for " +
        std::to_string(config_.shard_count) + " shards)");

  // Same contract the configuration-file parser enforces: overlap-free and
  // total (a catch-all "*" exists, so no queue can be unassigned).
  bool catch_all = false;
  std::set<std::string> seen;
  for (size_t s = 0; s < config_.queue_globs.size(); ++s) {
    if (config_.queue_globs[s].empty())
      throw jutil::ConfigError("ShardMap: shard " + std::to_string(s) +
                               " has no queue globs while others do");
    for (const std::string& glob : config_.queue_globs[s]) {
      if (glob == "*") catch_all = true;
      if (!seen.insert(glob).second)
        throw jutil::ConfigError("ShardMap: queue glob '" + glob +
                                 "' claimed by more than one shard");
    }
  }
  for (size_t s = 0; s < config_.queue_globs.size(); ++s) {
    for (const std::string& literal : config_.queue_globs[s]) {
      if (literal.find_first_of("*?") != std::string::npos) continue;
      for (size_t t = 0; t < config_.queue_globs.size(); ++t) {
        if (t == s) continue;
        for (const std::string& glob : config_.queue_globs[t]) {
          // The catch-all is the fallback, consulted only when no specific
          // glob matches -- it overlaps nothing by construction.
          if (glob == "*") continue;
          if (telemetry::glob_match(glob, literal))
            throw jutil::ConfigError("ShardMap: queue '" + literal +
                                     "' (shard " + std::to_string(s) +
                                     ") overlaps glob '" + glob + "' (shard " +
                                     std::to_string(t) + ")");
        }
      }
    }
  }
  if (!catch_all)
    throw jutil::ConfigError(
        "ShardMap: no shard owns the catch-all '*' glob; queues matching no "
        "glob would be unassigned");
}

std::optional<uint32_t> ShardMap::owner_of(pbs::JobId id) const {
  if (id == pbs::kInvalidJob) return std::nullopt;
  pbs::JobId block = (id - 1) / config_.id_stride;
  if (block >= config_.shard_count) return std::nullopt;
  return static_cast<uint32_t>(block);
}

std::optional<uint32_t> ShardMap::shard_of_queue(std::string_view queue) const {
  if (!routes_by_queue()) return std::nullopt;
  // First-match within a shard is fine: validation made cross-shard matches
  // impossible for literal names, and the catch-all backstops the rest.
  std::string name(queue);
  for (size_t s = 0; s < config_.queue_globs.size(); ++s)
    for (const std::string& glob : config_.queue_globs[s])
      if (glob != "*" && telemetry::glob_match(glob, name))
        return static_cast<uint32_t>(s);
  for (size_t s = 0; s < config_.queue_globs.size(); ++s)
    for (const std::string& glob : config_.queue_globs[s])
      if (glob == "*") return static_cast<uint32_t>(s);
  return std::nullopt;  // unreachable for a validated map
}

uint32_t ShardMap::place(std::string_view queue, uint64_t salt) const {
  if (single_shard()) return 0;
  if (routes_by_queue()) {
    if (std::optional<uint32_t> s = shard_of_queue(queue)) return *s;
  }
  return static_cast<uint32_t>(fnv1a(queue, salt) % config_.shard_count);
}

}  // namespace fed
