// fed::Router: the client-side face of the federated control plane.
//
// Presents the same jsub/jstat/jdel/jhold/jrls surface as joshua::Client,
// but in front of several independent ordering groups. Single-job commands
// route to the one shard that owns the id (or, for submits, the shard that
// owns the queue) and are totally ordered *within that shard* exactly as in
// the monolithic design. Cross-shard operations are built from per-shard
// primitives: jstat-all is a fan-out read merged by job id; a mass delete
// is a fan-out read followed by per-shard ordered deletes. There is no
// global order across shards -- that is the scaling trade the federation
// makes, and the router is where its client-visible semantics live.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fed/shard_map.h"
#include "joshua/client.h"
#include "telemetry/metrics.h"

namespace fed {

class Router {
 public:
  /// One joshua::Client per shard, created on `host` at ports
  /// first_port, first_port+1, ... `shard_heads[s]` lists shard s's JOSHUA
  /// server endpoints. `map` must outlive the router.
  Router(sim::Network& net, sim::HostId host, sim::Port first_port,
         const ShardMap& map,
         const std::vector<std::vector<sim::Endpoint>>& shard_heads,
         const sim::Calibration& cal);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  const ShardMap& map() const { return *map_; }
  joshua::Client& client(uint32_t shard) { return *clients_.at(shard); }
  /// Head failovers summed over every shard's client.
  uint64_t failovers() const;

  struct Stats {
    uint64_t routed = 0;       ///< single-shard commands forwarded
    uint64_t fanouts = 0;      ///< cross-shard operations (jstat-all, jdel-all)
    uint64_t fanout_reads = 0; ///< per-shard reads those fan-outs issued
    uint64_t rejects = 0;      ///< ids no shard can own, refused locally
    uint64_t mass_deleted = 0; ///< jobs deleted by jdel_all
  };
  const Stats& stats() const { return stats_; }

  /// Routed by queue (glob owner or hash); the owning shard orders it.
  void jsub(pbs::JobSpec spec,
            std::function<void(std::optional<pbs::SubmitResponse>)> done);
  /// id != 0: routed to the owner. id == 0: fan-out to every shard, merged
  /// by ascending job id; any shard failing fails the whole jstat (partial
  /// listings would masquerade as complete ones).
  void jstat(pbs::StatRequest req,
             std::function<void(std::optional<pbs::StatResponse>)> done);
  void jdel(pbs::JobId id,
            std::function<void(std::optional<pbs::SimpleResponse>)> done);
  void jhold(pbs::JobId id,
             std::function<void(std::optional<pbs::SimpleResponse>)> done);
  void jrls(pbs::JobId id,
            std::function<void(std::optional<pbs::SimpleResponse>)> done);

  /// Mass delete: fan-out jstat of live jobs, then one ordered jdel per job
  /// at its owning shard. Reports the number of jobs whose delete the shard
  /// acknowledged kOk, or nullopt when the discovery read failed anywhere.
  void jdel_all(std::function<void(std::optional<uint64_t>)> done);

 private:
  /// Routes a per-job command, synthesizing kUnknownJob locally for ids
  /// outside every shard's block (invoked before `route` ever runs).
  template <typename Response>
  bool route_by_id(pbs::JobId id, uint32_t& shard,
                   std::function<void(std::optional<Response>)>& done);

  const ShardMap* map_;
  std::vector<std::unique_ptr<joshua::Client>> clients_;
  uint64_t next_salt_ = 0;  ///< spreads hash-placed same-queue submits
  Stats stats_;
  telemetry::Counter m_routed_;
  telemetry::Counter m_fanouts_;
  telemetry::Counter m_fanout_reads_;
  telemetry::Counter m_rejects_;
  telemetry::Counter m_mass_deleted_;
};

}  // namespace fed
