// fed::Federation: the sharded testbed -- one joshua::Cluster's worth of
// machinery per shard, all over a single simulated network.
//
// Each shard is an unmodified replica group: its own gcs ordering group
// ("joshua-s<k>" on disjoint head hosts), its own PBS replica set numbering
// jobs from the shard's id block, its own compute nodes and mom plugins.
// Nothing crosses shards below the router: a shard's heads never exchange a
// message with another shard's, which is exactly why aggregate ordered
// throughput scales with the shard count while every per-shard guarantee
// (total order, exactly-once output, state transfer) is the paper's,
// unchanged. shard_count = 1 wires byte-for-byte what joshua::Cluster
// wires: the federation defaults must stay behaviour-identical.
#pragma once

#include <memory>
#include <vector>

#include "fed/router.h"
#include "fed/shard_map.h"
#include "joshua/cluster.h"

namespace fed {

struct FederationOptions {
  int shard_count = 1;
  int heads_per_shard = 2;
  int computes_per_shard = 2;
  pbs::JobId id_stride = kDefaultIdStride;
  /// Optional queue-glob routing (empty = hash placement); see ShardMap.
  std::vector<std::vector<std::string>> queue_globs;

  sim::Calibration cal = sim::paper_testbed();
  joshua::TransferMode transfer = joshua::TransferMode::kReplay;
  bool auto_rejoin = false;
  bool require_majority = false;
  /// Per-shard local-read fast path for jstat (satellite knob; off keeps
  /// every command ordered, the paper's semantics).
  bool jstat_local = false;
  /// PBS persistence. Benches preloading millions of jobs switch it off --
  /// the encode cost is real but not what they measure.
  bool pbs_persist = true;
  pbs::SchedulerConfig sched{};
  uint64_t seed = 1;
  sim::Duration mom_heartbeat = sim::kDurationZero;
  uint32_t heartbeat_miss_limit = 3;
  /// gcs timing/cost overrides; zero keeps the GroupConfig defaults.
  sim::Duration gcs_heartbeat = sim::kDurationZero;
  sim::Duration gcs_suspect = sim::kDurationZero;
  sim::Duration gcs_flush = sim::kDurationZero;
  sim::Duration gcs_hb_proc = sim::kDurationZero;
  sim::Duration gcs_ctrl_proc = sim::kDurationZero;
  gcs::OrderingMode ordering = gcs::ordering_mode_from_env();
  /// Ordering hot-path batching / sender window knobs (see ClusterOptions).
  uint32_t order_batch = gcs::order_batch_from_env();
  uint32_t order_window = gcs::order_window_from_env();
};

/// Build FederationOptions from a parsed deployment file's ClusterOptions.
/// Requires a uniform layout (equal heads per shard); the configuration
/// validator already guarantees the head sets partition the head list.
FederationOptions federation_options_from(const joshua::ClusterOptions& co);

class Federation {
 public:
  explicit Federation(FederationOptions options);
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  sim::Simulation& sim() { return sim_; }
  sim::Network& net() { return net_; }
  sim::FailureInjector& faults() { return faults_; }
  const FederationOptions& options() const { return options_; }
  const ShardMap& shard_map() const { return map_; }
  uint32_t shard_count() const { return map_.shard_count(); }

  // Flat indexing across shards (head i belongs to shard i / heads_per_shard,
  // mirroring joshua::Cluster's accessors so harnesses can switch between
  // the two without renumbering anything).
  size_t head_count() const { return joshua_servers_.size(); }
  size_t compute_count() const { return moms_.size(); }
  uint32_t shard_of_head(size_t head) const {
    return static_cast<uint32_t>(head /
                                 static_cast<size_t>(options_.heads_per_shard));
  }
  const std::vector<sim::HostId>& head_hosts() const { return head_hosts_; }
  const std::vector<sim::HostId>& compute_hosts() const {
    return compute_hosts_;
  }
  sim::HostId login_host() const { return login_host_; }
  pbs::Server& pbs_server(size_t head) { return *pbs_servers_.at(head); }
  pbs::Mom& mom(size_t compute) { return *moms_.at(compute); }
  joshua::Server& joshua_server(size_t head) {
    return *joshua_servers_.at(head);
  }
  joshua::MomPlugin& mom_plugin(size_t compute) { return *plugins_.at(compute); }

  /// Start every shard's JOSHUA servers.
  void start();

  /// Every shard's live heads share one installed view.
  bool converged() const;
  /// One shard's live heads share one installed view of its live size.
  bool converged_shard(uint32_t shard) const;
  bool run_until_converged(sim::Duration deadline = sim::seconds(30));

  /// A router on the login node fronting every shard.
  Router& make_router();

 private:
  FederationOptions options_;
  ShardMap map_;
  sim::Simulation sim_;
  sim::Network net_;
  sim::FailureInjector faults_;
  std::vector<sim::HostId> head_hosts_;
  std::vector<sim::HostId> compute_hosts_;
  sim::HostId login_host_ = sim::kInvalidHost;
  std::vector<std::unique_ptr<pbs::Server>> pbs_servers_;
  std::vector<std::unique_ptr<pbs::Mom>> moms_;
  std::vector<std::unique_ptr<joshua::Server>> joshua_servers_;
  std::vector<std::unique_ptr<joshua::MomPlugin>> plugins_;
  std::vector<std::unique_ptr<Router>> routers_;
  sim::Port next_client_port_ = joshua::Ports::kClientBase;
};

}  // namespace fed
