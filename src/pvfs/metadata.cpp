#include "pvfs/metadata.h"

#include "net/wire.h"
#include "util/strings.h"

namespace pvfs {

std::string_view to_string(MdStatus s) {
  switch (s) {
    case MdStatus::kOk: return "ok";
    case MdStatus::kNotFound: return "not found";
    case MdStatus::kExists: return "already exists";
    case MdStatus::kNotDirectory: return "not a directory";
    case MdStatus::kNotEmpty: return "directory not empty";
    case MdStatus::kInvalid: return "invalid request";
  }
  return "?";
}

// -- wire ---------------------------------------------------------------------

sim::Payload encode(const MdRequest& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.op));
  w.u64(m.dir);
  w.u64(m.handle);
  w.u64(m.dir2);
  w.str(m.name);
  w.str(m.name2);
  w.u32(m.mode);
  w.u64(m.size);
  return w.take();
}

MdRequest decode_request(const sim::Payload& buf) {
  net::Reader r(buf);
  MdRequest m;
  m.op = static_cast<MdOp>(r.u8());
  m.dir = r.u64();
  m.handle = r.u64();
  m.dir2 = r.u64();
  m.name = r.str();
  m.name2 = r.str();
  m.mode = r.u32();
  m.size = r.u64();
  r.expect_done();
  return m;
}

namespace {
void encode_attr(net::Writer& w, const Attr& a) {
  w.u8(static_cast<uint8_t>(a.type));
  w.u32(a.mode);
  w.u64(a.size);
  w.u64(a.ctime);
  w.u64(a.mtime);
  w.u64(a.version);
}
Attr decode_attr(net::Reader& r) {
  Attr a;
  a.type = static_cast<ObjType>(r.u8());
  a.mode = r.u32();
  a.size = r.u64();
  a.ctime = r.u64();
  a.mtime = r.u64();
  a.version = r.u64();
  return a;
}
}  // namespace

sim::Payload encode(const MdResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  w.u64(m.handle);
  encode_attr(w, m.attr);
  w.vec(m.entries, [](net::Writer& w2, const MdEntry& e) {
    w2.str(e.name);
    w2.u64(e.handle);
    w2.u8(static_cast<uint8_t>(e.type));
  });
  return w.take();
}

MdResponse decode_response(const sim::Payload& buf) {
  net::Reader r(buf);
  MdResponse m;
  m.status = static_cast<MdStatus>(r.u8());
  m.handle = r.u64();
  m.attr = decode_attr(r);
  m.entries = r.vec<MdEntry>([](net::Reader& r2) {
    MdEntry e;
    e.name = r2.str();
    e.handle = r2.u64();
    e.type = static_cast<ObjType>(r2.u8());
    return e;
  });
  r.expect_done();
  return m;
}

// -- server --------------------------------------------------------------------

MetadataServer::MetadataServer() {
  Object root;
  root.attr.type = ObjType::kDirectory;
  root.attr.mode = 0755;
  objects_.emplace(kRootHandle, std::move(root));
}

sim::Payload MetadataServer::apply(const sim::Payload& request) {
  MdRequest req;
  try {
    req = decode_request(request);
  } catch (const net::WireError&) {
    return encode(MdResponse{MdStatus::kInvalid, kInvalidHandle, {}, {}});
  }
  return encode(apply_typed(req));
}

MdResponse MetadataServer::apply_typed(const MdRequest& request) {
  ++op_counter_;
  MdResponse response{MdStatus::kInvalid, kInvalidHandle, {}, {}};
  switch (request.op) {
    case MdOp::kLookup: response = lookup(request); break;
    case MdOp::kCreate: response = create(request, ObjType::kFile); break;
    case MdOp::kMkdir: response = create(request, ObjType::kDirectory); break;
    case MdOp::kRemove: response = remove(request); break;
    case MdOp::kReaddir: response = readdir(request); break;
    case MdOp::kGetattr: response = getattr(request); break;
    case MdOp::kSetattr: response = setattr(request); break;
    case MdOp::kRename: response = rename(request); break;
  }
  m_ops_.add();
  auto kind = static_cast<size_t>(request.op);
  m_ops_by_kind_[kind < m_ops_by_kind_.size() ? kind : 0].add();
  if (response.status != MdStatus::kOk) m_errors_.add();
  if (request.op == MdOp::kReaddir && response.status == MdStatus::kOk)
    m_readdir_entries_.record(static_cast<int64_t>(response.entries.size()));
  m_objects_.set(static_cast<int64_t>(objects_.size()));
  return response;
}

void MetadataServer::instrument(telemetry::Registry& metrics) {
  m_ops_ = metrics.counter("pvfs.md_ops");
  m_errors_ = metrics.counter("pvfs.md_errors");
  static constexpr std::string_view kOpName[] = {
      "other",   "lookup",  "create", "mkdir", "remove",
      "readdir", "getattr", "setattr", "rename"};
  for (size_t i = 0; i < m_ops_by_kind_.size(); ++i) {
    m_ops_by_kind_[i] =
        metrics.counter("pvfs.md_ops." + std::string(kOpName[i]));
  }
  m_objects_ = metrics.gauge("pvfs.objects");
  m_readdir_entries_ = metrics.histogram("pvfs.readdir_entries");
  m_snapshots_ = metrics.counter("pvfs.snapshots");
  m_snapshot_bytes_ = metrics.histogram("pvfs.snapshot_bytes");
  m_installs_ = metrics.counter("pvfs.snapshot_installs");
  m_objects_.set(static_cast<int64_t>(objects_.size()));
}

bool MetadataServer::is_read_only(const sim::Payload& request) const {
  if (request.empty()) return false;
  auto op = static_cast<MdOp>(request[0]);
  return op == MdOp::kLookup || op == MdOp::kReaddir || op == MdOp::kGetattr;
}

sim::Duration MetadataServer::apply_cost(const sim::Payload& request) const {
  return is_read_only(request) ? sim::msec(2) : sim::msec(6);
}

const MetadataServer::Object* MetadataServer::find(Handle h) const {
  auto it = objects_.find(h);
  return it == objects_.end() ? nullptr : &it->second;
}

MetadataServer::Object* MetadataServer::find(Handle h) {
  auto it = objects_.find(h);
  return it == objects_.end() ? nullptr : &it->second;
}

bool MetadataServer::valid_name(const std::string& name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string::npos;
}

MdResponse MetadataServer::lookup(const MdRequest& req) const {
  const Object* dir = find(req.dir);
  if (dir == nullptr) return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  if (dir->attr.type != ObjType::kDirectory)
    return {MdStatus::kNotDirectory, kInvalidHandle, {}, {}};
  auto it = dir->entries.find(req.name);
  if (it == dir->entries.end())
    return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  const Object* target = find(it->second);
  MdResponse resp{MdStatus::kOk, it->second, {}, {}};
  if (target != nullptr) resp.attr = target->attr;
  return resp;
}

MdResponse MetadataServer::create(const MdRequest& req, ObjType type) {
  Object* dir = find(req.dir);
  if (dir == nullptr) return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  if (dir->attr.type != ObjType::kDirectory)
    return {MdStatus::kNotDirectory, kInvalidHandle, {}, {}};
  if (!valid_name(req.name))
    return {MdStatus::kInvalid, kInvalidHandle, {}, {}};
  if (dir->entries.count(req.name))
    return {MdStatus::kExists, kInvalidHandle, {}, {}};

  Handle h = next_handle_++;
  Object obj;
  obj.attr.type = type;
  obj.attr.mode = req.mode;
  obj.attr.ctime = obj.attr.mtime = op_counter_;
  dir->entries.emplace(req.name, h);
  dir->attr.mtime = op_counter_;
  ++dir->attr.version;
  MdResponse resp{MdStatus::kOk, h, obj.attr, {}};
  objects_.emplace(h, std::move(obj));
  return resp;
}

MdResponse MetadataServer::remove(const MdRequest& req) {
  Object* dir = find(req.dir);
  if (dir == nullptr) return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  if (dir->attr.type != ObjType::kDirectory)
    return {MdStatus::kNotDirectory, kInvalidHandle, {}, {}};
  auto it = dir->entries.find(req.name);
  if (it == dir->entries.end())
    return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  Handle h = it->second;
  const Object* target = find(h);
  if (target != nullptr && target->attr.type == ObjType::kDirectory &&
      !target->entries.empty()) {
    return {MdStatus::kNotEmpty, h, {}, {}};
  }
  dir->entries.erase(it);
  dir->attr.mtime = op_counter_;
  ++dir->attr.version;
  objects_.erase(h);
  return {MdStatus::kOk, h, {}, {}};
}

MdResponse MetadataServer::readdir(const MdRequest& req) const {
  const Object* dir = find(req.dir);
  if (dir == nullptr) return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  if (dir->attr.type != ObjType::kDirectory)
    return {MdStatus::kNotDirectory, kInvalidHandle, {}, {}};
  MdResponse resp{MdStatus::kOk, req.dir, dir->attr, {}};
  for (const auto& [name, handle] : dir->entries) {
    const Object* child = find(handle);
    resp.entries.push_back(
        {name, handle,
         child != nullptr ? child->attr.type : ObjType::kFile});
  }
  return resp;
}

MdResponse MetadataServer::getattr(const MdRequest& req) const {
  const Object* obj = find(req.handle);
  if (obj == nullptr) return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  return {MdStatus::kOk, req.handle, obj->attr, {}};
}

MdResponse MetadataServer::setattr(const MdRequest& req) {
  Object* obj = find(req.handle);
  if (obj == nullptr) return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  obj->attr.mode = req.mode;
  if (obj->attr.type == ObjType::kFile) obj->attr.size = req.size;
  obj->attr.mtime = op_counter_;
  ++obj->attr.version;
  return {MdStatus::kOk, req.handle, obj->attr, {}};
}

MdResponse MetadataServer::rename(const MdRequest& req) {
  Object* src = find(req.dir);
  Object* dst = find(req.dir2);
  if (src == nullptr || dst == nullptr)
    return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  if (src->attr.type != ObjType::kDirectory ||
      dst->attr.type != ObjType::kDirectory)
    return {MdStatus::kNotDirectory, kInvalidHandle, {}, {}};
  if (!valid_name(req.name2))
    return {MdStatus::kInvalid, kInvalidHandle, {}, {}};
  auto it = src->entries.find(req.name);
  if (it == src->entries.end())
    return {MdStatus::kNotFound, kInvalidHandle, {}, {}};
  // POSIX rename replaces an existing destination entry if removable.
  auto dit = dst->entries.find(req.name2);
  if (dit != dst->entries.end()) {
    const Object* existing = find(dit->second);
    if (existing != nullptr && existing->attr.type == ObjType::kDirectory &&
        !existing->entries.empty()) {
      return {MdStatus::kNotEmpty, dit->second, {}, {}};
    }
    objects_.erase(dit->second);
    dst->entries.erase(dit);
  }
  Handle h = it->second;
  src->entries.erase(it);
  dst->entries.emplace(req.name2, h);
  src->attr.mtime = op_counter_;
  ++src->attr.version;
  dst->attr.mtime = op_counter_;
  ++dst->attr.version;
  return {MdStatus::kOk, h, {}, {}};
}

// -- snapshot ------------------------------------------------------------------

sim::Payload MetadataServer::snapshot() const {
  net::Writer w;
  w.u64(next_handle_);
  w.u64(op_counter_);
  w.u32(static_cast<uint32_t>(objects_.size()));
  for (const auto& [handle, obj] : objects_) {
    w.u64(handle);
    encode_attr(w, obj.attr);
    w.u32(static_cast<uint32_t>(obj.entries.size()));
    for (const auto& [name, child] : obj.entries) {
      w.str(name);
      w.u64(child);
    }
  }
  sim::Payload buf = w.take();
  m_snapshots_.add();
  m_snapshot_bytes_.record(static_cast<int64_t>(buf.size()));
  return buf;
}

void MetadataServer::install(const sim::Payload& snapshot) {
  net::Reader r(snapshot);
  Handle next_handle = r.u64();
  uint64_t op_counter = r.u64();
  uint32_t count = r.u32();
  std::map<Handle, Object> objects;
  for (uint32_t i = 0; i < count; ++i) {
    Handle handle = r.u64();
    Object obj;
    obj.attr = decode_attr(r);
    uint32_t entries = r.u32();
    for (uint32_t e = 0; e < entries; ++e) {
      std::string name = r.str();
      obj.entries.emplace(std::move(name), r.u64());
    }
    objects.emplace(handle, std::move(obj));
  }
  r.expect_done();
  objects_ = std::move(objects);
  next_handle_ = next_handle;
  op_counter_ = op_counter;
  m_installs_.add();
  m_objects_.set(static_cast<int64_t>(objects_.size()));
}

// -- helpers ------------------------------------------------------------------

Handle MetadataServer::resolve(const std::string& path) const {
  Handle current = kRootHandle;
  for (const std::string& part : jutil::split(path, '/')) {
    if (part.empty()) continue;
    const Object* dir = find(current);
    if (dir == nullptr || dir->attr.type != ObjType::kDirectory)
      return kInvalidHandle;
    auto it = dir->entries.find(part);
    if (it == dir->entries.end()) return kInvalidHandle;
    current = it->second;
  }
  return current;
}

std::optional<Attr> MetadataServer::attr_of(Handle h) const {
  const Object* obj = find(h);
  if (obj == nullptr) return std::nullopt;
  return obj->attr;
}

}  // namespace pvfs
