// PVFS-style file system metadata service.
//
// The paper names the PVFS metadata server as the next target for the same
// symmetric active/active treatment (Sections 1 and 6; the ARES 2006
// companion paper). This is that service: a deterministic namespace server
// (handles, directories, attributes) that plugs into rsm::ReplicaNode.
// Data servers (file contents) are out of scope -- PVFS separates them
// from metadata exactly so the metadata server can be treated this way.
//
// Determinism notes: handles come from a counter, timestamps are logical
// (the operation sequence number), so N replicas fed the same ordered
// request stream stay bit-identical.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rsm/replicated_service.h"
#include "telemetry/metrics.h"

namespace pvfs {

using Handle = uint64_t;
constexpr Handle kInvalidHandle = 0;
constexpr Handle kRootHandle = 1;

enum class ObjType : uint8_t { kDirectory = 1, kFile = 2 };

enum class MdStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kExists = 2,
  kNotDirectory = 3,
  kNotEmpty = 4,
  kInvalid = 5,
};

std::string_view to_string(MdStatus s);

struct Attr {
  ObjType type = ObjType::kFile;
  uint32_t mode = 0644;
  uint64_t size = 0;
  uint64_t ctime = 0;  ///< logical creation time (operation seq)
  uint64_t mtime = 0;  ///< logical modification time
  uint64_t version = 0;
};

enum class MdOp : uint8_t {
  kLookup = 1,   ///< (dir, name) -> handle
  kCreate = 2,   ///< (dir, name, mode) -> handle         [file]
  kMkdir = 3,    ///< (dir, name, mode) -> handle         [directory]
  kRemove = 4,   ///< (dir, name); directories must be empty
  kReaddir = 5,  ///< dir -> sorted entry list
  kGetattr = 6,  ///< handle -> Attr
  kSetattr = 7,  ///< (handle, mode, size) -> Attr
  kRename = 8,   ///< (src dir, src name, dst dir, dst name)
};

struct MdRequest {
  MdOp op = MdOp::kLookup;
  Handle dir = kInvalidHandle;
  Handle handle = kInvalidHandle;   // getattr/setattr target
  Handle dir2 = kInvalidHandle;     // rename destination dir
  std::string name;
  std::string name2;                // rename destination name
  uint32_t mode = 0644;
  uint64_t size = 0;
};

struct MdEntry {
  std::string name;
  Handle handle = kInvalidHandle;
  ObjType type = ObjType::kFile;
};

struct MdResponse {
  MdStatus status = MdStatus::kOk;
  Handle handle = kInvalidHandle;
  Attr attr;
  std::vector<MdEntry> entries;
};

sim::Payload encode(const MdRequest&);
MdRequest decode_request(const sim::Payload&);
sim::Payload encode(const MdResponse&);
MdResponse decode_response(const sim::Payload&);

/// The metadata server itself: deterministic, snapshot-able.
class MetadataServer : public rsm::IDeterministicService {
 public:
  MetadataServer();

  // rsm::IDeterministicService:
  sim::Payload apply(const sim::Payload& request) override;
  sim::Payload snapshot() const override;
  void install(const sim::Payload& snapshot) override;
  bool is_read_only(const sim::Payload& request) const override;
  sim::Duration apply_cost(const sim::Payload& request) const override;

  /// Typed entry point (also used directly by unit tests).
  MdResponse apply_typed(const MdRequest& request);

  /// Register this server's metrics (pvfs.* counters/gauge/histograms) with
  /// a registry. Optional: un-instrumented servers pay nothing (default
  /// handles are no-op sinks). The registry aggregates across replicas, so
  /// N instrumented replicas applying the same ordered stream report N
  /// times the single-server op counts -- itself a cheap replication check.
  void instrument(telemetry::Registry& metrics);

  // -- introspection ---------------------------------------------------------
  size_t object_count() const { return objects_.size(); }
  uint64_t operations() const { return op_counter_; }
  /// Resolve an absolute slash path; kInvalidHandle when missing.
  Handle resolve(const std::string& path) const;
  std::optional<Attr> attr_of(Handle h) const;

 private:
  struct Object {
    Attr attr;
    std::map<std::string, Handle> entries;  ///< directories only
  };

  MdResponse lookup(const MdRequest&) const;
  MdResponse create(const MdRequest&, ObjType type);
  MdResponse remove(const MdRequest&);
  MdResponse readdir(const MdRequest&) const;
  MdResponse getattr(const MdRequest&) const;
  MdResponse setattr(const MdRequest&);
  MdResponse rename(const MdRequest&);

  const Object* find(Handle h) const;
  Object* find(Handle h);
  static bool valid_name(const std::string& name);

  std::map<Handle, Object> objects_;
  Handle next_handle_ = kRootHandle + 1;
  uint64_t op_counter_ = 0;

  // Telemetry handles (no-op sinks until instrument() is called). Indexed
  // by MdOp value; slot 0 backs out-of-range ops.
  telemetry::Counter m_ops_;
  telemetry::Counter m_errors_;
  std::array<telemetry::Counter, 9> m_ops_by_kind_;
  telemetry::Gauge m_objects_;
  telemetry::Histogram m_readdir_entries_;
  // snapshot() is const but still worth counting: state transfers are the
  // expensive rsm path.
  mutable telemetry::Counter m_snapshots_;
  mutable telemetry::Histogram m_snapshot_bytes_;
  telemetry::Counter m_installs_;
};

}  // namespace pvfs
