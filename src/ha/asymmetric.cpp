#include "ha/asymmetric.h"

namespace ha {

namespace {
constexpr sim::Port kPbsPort = 15001;
constexpr sim::Port kMomPort = 15002;
}  // namespace

AsymmetricCluster::AsymmetricCluster(AsymmetricOptions options)
    : options_(std::move(options)),
      sim_(options_.seed),
      net_(sim_, options_.cal.network),
      faults_(net_) {
  for (int i = 0; i < options_.head_count; ++i)
    head_hosts_.push_back(net_.add_host("head" + std::to_string(i)).id());
  for (int i = 0; i < options_.compute_count; ++i)
    compute_hosts_.push_back(net_.add_host("node" + std::to_string(i)).id());
  login_host_ = net_.add_host("login").id();

  for (size_t h = 0; h < head_hosts_.size(); ++h) {
    pbs::ServerConfig cfg = pbs::server_config_from(options_.cal);
    cfg.port = kPbsPort;
    cfg.sched = options_.sched;
    // Partition the compute nodes round-robin among the heads.
    for (size_t c = h; c < compute_hosts_.size(); c += head_hosts_.size())
      cfg.moms.push_back({compute_hosts_[c], kMomPort});
    servers_.push_back(
        std::make_unique<pbs::Server>(net_, head_hosts_[h], cfg));
  }
  for (sim::HostId h : compute_hosts_) {
    pbs::MomConfig cfg = pbs::mom_config_from(options_.cal);
    cfg.port = kMomPort;
    cfg.server_port = kPbsPort;
    moms_.push_back(std::make_unique<pbs::Mom>(net_, h, cfg));
  }
}

AsymmetricCluster::~AsymmetricCluster() = default;

sim::Endpoint AsymmetricCluster::endpoint(size_t head) const {
  return {head_hosts_.at(head), kPbsPort};
}

pbs::Client& AsymmetricCluster::make_client(size_t head) {
  pbs::ClientConfig cfg =
      pbs::client_config_from(options_.cal, endpoint(head));
  clients_.push_back(std::make_unique<pbs::Client>(
      net_, login_host_, next_client_port_++, cfg));
  return *clients_.back();
}

size_t AsymmetricCluster::stranded_jobs() const {
  size_t stranded = 0;
  for (size_t h = 0; h < servers_.size(); ++h) {
    if (net_.host(head_hosts_[h]).up()) continue;
    for (const auto& [id, job] : servers_[h]->jobs()) {
      (void)id;
      if (!job.terminal()) ++stranded;
    }
  }
  return stranded;
}

}  // namespace ha
