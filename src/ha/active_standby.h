// Active/standby baseline (Section 2, Figure 2): the HA model JOSHUA
// improves on.
//
// A primary head runs the PBS server and checkpoints its state to shared
// stable storage. A failover manager on the standby heartbeats the primary;
// after `detect_timeout` of silence it starts a PBS server on the standby
// from the last checkpoint (warm standby, HA-OSCAR style: 3-5 s failover,
// running jobs restart, and a stale checkpoint rolls submissions back).
#pragma once

#include <functional>
#include <memory>

#include "pbs/client.h"
#include "pbs/mom.h"
#include "pbs/server.h"
#include "sim/calibration.h"
#include "sim/failure.h"
#include "sim/process.h"
#include "telemetry/metrics.h"

namespace ha {

struct ActiveStandbyOptions {
  int compute_count = 2;
  sim::Calibration cal = sim::paper_testbed();
  /// 0 = persist on every mutation (hot checkpoint); > 0 = periodic
  /// checkpoints with rollback exposure.
  sim::Duration checkpoint_interval = sim::kDurationZero;
  sim::Duration heartbeat_interval = sim::msec(500);
  sim::Duration detect_timeout = sim::msec(1500);
  /// Service restart cost on the standby (the related work's 3-5 s).
  sim::Duration restart_delay = sim::seconds(3);
  pbs::SchedulerConfig sched{};
  uint64_t seed = 1;
};

/// Watches the primary and brings up the standby server on failure.
class FailoverManager : public sim::Process {
 public:
  FailoverManager(sim::Network& net, sim::HostId standby_host,
                  sim::Endpoint primary, std::function<void()> do_failover,
                  sim::Duration heartbeat_interval,
                  sim::Duration detect_timeout);

  bool failed_over() const { return failed_over_; }
  sim::Time failover_time() const { return failover_time_; }

  void on_packet(sim::Packet packet) override;

 private:
  void tick();

  sim::Endpoint primary_;
  std::function<void()> do_failover_;
  sim::Duration heartbeat_interval_;
  sim::Duration detect_timeout_;
  sim::Time last_heard_{0};
  bool failed_over_ = false;
  sim::Time failover_time_{0};
  telemetry::Counter m_pings_;
  telemetry::Counter m_failovers_;
  telemetry::Histogram m_detect_latency_;
  uint16_t tc_failover_ = 0;
};

class ActiveStandbyCluster {
 public:
  explicit ActiveStandbyCluster(ActiveStandbyOptions options);
  ~ActiveStandbyCluster();

  sim::Simulation& sim() { return sim_; }
  sim::Network& net() { return net_; }
  sim::FailureInjector& faults() { return faults_; }

  sim::HostId primary_host() const { return primary_host_; }
  sim::HostId standby_host() const { return standby_host_; }

  /// The currently active PBS server (primary before failover, standby
  /// after).
  pbs::Server& active_server();
  sim::Endpoint active_endpoint() const;
  bool failed_over() const { return manager_->failed_over(); }
  sim::Time failover_time() const { return manager_->failover_time(); }

  /// Client that retries the standby endpoint after the primary dies.
  pbs::Client& make_client();

 private:
  void do_failover();

  ActiveStandbyOptions options_;
  sim::Simulation sim_;
  sim::Network net_;
  sim::FailureInjector faults_;
  std::shared_ptr<std::map<std::string, std::string>> shared_storage_;
  sim::HostId primary_host_ = sim::kInvalidHost;
  sim::HostId standby_host_ = sim::kInvalidHost;
  sim::HostId login_host_ = sim::kInvalidHost;
  std::vector<sim::HostId> compute_hosts_;
  std::unique_ptr<pbs::Server> primary_;
  std::unique_ptr<pbs::Server> standby_;  ///< created at failover
  std::unique_ptr<sim::Process> ping_responder_;
  std::vector<std::unique_ptr<pbs::Mom>> moms_;
  std::unique_ptr<FailoverManager> manager_;
  std::vector<std::unique_ptr<pbs::Client>> clients_;
  sim::Port next_client_port_ = 21000;
};

}  // namespace ha
