// Availability analysis: Equations (1)-(3) and the Figure 12 table.
//
//   A_node     = MTTF / (MTTF + MTTR)                                   (1)
//   A_service  = 1 - (1 - A_node)^n        (parallel redundancy)        (2)
//   t_downtime = 8760h * (1 - A_service)   (per year)                   (3)
//
// The paper evaluates MTTF = 5000 h, MTTR = 72 h for n = 1..4 head nodes.
// An extension covers correlated failures (Section 5's caveat): a
// common-mode factor caps the availability any amount of redundancy can
// reach.
#pragma once

#include <string>
#include <vector>

namespace ha {

/// Equation (1).
double node_availability(double mttf_hours, double mttr_hours);

/// Equation (2).
double service_availability(double node_availability, int nodes);

/// Equation (3), in seconds per year (8760 h year, as the paper uses).
double downtime_seconds_per_year(double service_availability);

/// Correlated-failure extension: a fraction `beta` of outages hits every
/// head at once (shared rack/room). The common-mode term is not reduced by
/// redundancy:  A = (1 - beta*(1-A_node)) * (1 - ((1-beta)*(1-A_node))^n).
double service_availability_correlated(double node_availability, int nodes,
                                       double beta);

// -- compute-plane extension -------------------------------------------------
//
// The paper's equations cover the head service only. The compute-failover
// experiments add the other half: a job survives the loss of a compute node
// either because it runs on r nodes at once (replication) or because a
// heartbeat detector requeues it elsewhere (failover).

/// Availability of one job dispatched to `replicas` distinct compute nodes,
/// first-to-finish wins: Equation (2) applied to the compute plane.
/// replicas = 1 degenerates to the bare node availability.
double job_availability(double compute_node_availability, int replicas);

/// Effective availability of a *non-replicated* job under heartbeat
/// failover: an interrupted job is requeued after the detector fires, so
/// the service-level repair time is the failover latency (miss_threshold
/// heartbeat intervals + requeue/redispatch), not the node's MTTR.
/// A = MTTF / (MTTF + t_failover).
double compute_availability_failover(double mttf_hours,
                                     double failover_hours);

/// Failover latency in hours from the detector configuration.
double failover_latency_hours(double heartbeat_interval_seconds,
                              int miss_threshold,
                              double requeue_seconds);

/// Series composition of the two planes: a job needs the replicated head
/// service up (Equation (2) over n heads) AND its replica set viable
/// (job_availability over r compute nodes). With n = 1, r = 1 this is the
/// paper's single-point-of-failure baseline A_head * A_compute.
double combined_availability(double head_node_availability, int head_nodes,
                             double compute_node_availability, int replicas);

// -- federation extension ----------------------------------------------------
//
// A federated control plane (src/fed/) partitions the job space over
// `shards` independent replica groups of `heads_per_shard` heads each. Two
// availability notions split apart that coincide in the monolithic design:
// a GIVEN job only needs its own shard (Equation (2) per shard, independent
// of the shard count), while the WHOLE control plane needs every shard
// (series composition). Sharding therefore trades full-plane availability
// for per-shard scheduling cost -- the model quantifies the trade.

/// Equation (2) applied to one shard's replica group: >= 1 of its
/// heads_per_shard heads up. shards = 1, heads_per_shard = n recovers the
/// paper's A_service.
double shard_availability(double node_availability, int heads_per_shard);

/// Probability every shard has service (all ordered groups accepting
/// commands): shard_availability ^ shards.
double federation_availability(double node_availability, int heads_per_shard,
                               int shards);

/// Availability of one job under federation: its own shard's head group in
/// series with its compute replica set (combined_availability per shard).
/// Independent of the shard count -- the per-job guarantee sharding keeps.
double federation_job_availability(double head_node_availability,
                                   int heads_per_shard,
                                   double compute_node_availability,
                                   int replicas);

struct AvailabilityRow {
  int nodes = 1;
  double availability = 0.0;
  int nines = 0;
  double downtime_seconds = 0.0;
  std::string availability_str;  ///< "99.98%"
  std::string downtime_str;      ///< "1h 45min"
};

/// One Figure 12 row.
AvailabilityRow figure12_row(int nodes, double mttf_hours, double mttr_hours);

/// The whole Figure 12 table (n = 1..max_nodes).
std::vector<AvailabilityRow> figure12_table(int max_nodes = 4,
                                            double mttf_hours = 5000.0,
                                            double mttr_hours = 72.0);

/// Render the table the way the paper prints it.
std::string render_figure12(const std::vector<AvailabilityRow>& rows);

}  // namespace ha
