#include "ha/availability.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/timefmt.h"

namespace ha {

double node_availability(double mttf_hours, double mttr_hours) {
  if (mttf_hours <= 0.0 || mttr_hours < 0.0)
    throw std::invalid_argument("node_availability: bad MTTF/MTTR");
  return mttf_hours / (mttf_hours + mttr_hours);
}

double service_availability(double node_availability, int nodes) {
  if (nodes < 1) throw std::invalid_argument("service_availability: nodes < 1");
  if (node_availability < 0.0 || node_availability > 1.0)
    throw std::invalid_argument("service_availability: A outside [0,1]");
  return 1.0 - std::pow(1.0 - node_availability, nodes);
}

double downtime_seconds_per_year(double service_availability) {
  return 8760.0 * 3600.0 * (1.0 - service_availability);
}

double service_availability_correlated(double node_availability, int nodes,
                                       double beta) {
  if (beta < 0.0 || beta > 1.0)
    throw std::invalid_argument("correlated: beta outside [0,1]");
  double u = 1.0 - node_availability;  // node unavailability
  double common = 1.0 - beta * u;      // shared-cause survival
  double independent = 1.0 - std::pow((1.0 - beta) * u, nodes);
  return common * independent;
}

double job_availability(double compute_node_availability, int replicas) {
  if (replicas < 1)
    throw std::invalid_argument("job_availability: replicas < 1");
  return service_availability(compute_node_availability, replicas);
}

double compute_availability_failover(double mttf_hours, double failover_hours) {
  if (mttf_hours <= 0.0 || failover_hours < 0.0)
    throw std::invalid_argument("failover: bad MTTF/failover time");
  return mttf_hours / (mttf_hours + failover_hours);
}

double failover_latency_hours(double heartbeat_interval_seconds,
                              int miss_threshold, double requeue_seconds) {
  if (heartbeat_interval_seconds < 0.0 || miss_threshold < 1 ||
      requeue_seconds < 0.0)
    throw std::invalid_argument("failover_latency: bad detector config");
  return (heartbeat_interval_seconds * miss_threshold + requeue_seconds) /
         3600.0;
}

double combined_availability(double head_node_availability, int head_nodes,
                             double compute_node_availability, int replicas) {
  return service_availability(head_node_availability, head_nodes) *
         job_availability(compute_node_availability, replicas);
}

double shard_availability(double node_availability, int heads_per_shard) {
  return service_availability(node_availability, heads_per_shard);
}

double federation_availability(double node_availability, int heads_per_shard,
                               int shards) {
  if (shards < 1) shards = 1;
  return std::pow(shard_availability(node_availability, heads_per_shard),
                  shards);
}

double federation_job_availability(double head_node_availability,
                                   int heads_per_shard,
                                   double compute_node_availability,
                                   int replicas) {
  return combined_availability(head_node_availability, heads_per_shard,
                               compute_node_availability, replicas);
}

AvailabilityRow figure12_row(int nodes, double mttf_hours, double mttr_hours) {
  AvailabilityRow row;
  row.nodes = nodes;
  double a_node = node_availability(mttf_hours, mttr_hours);
  row.availability = service_availability(a_node, nodes);
  row.nines = jutil::count_nines(row.availability);
  row.downtime_seconds = downtime_seconds_per_year(row.availability);
  row.availability_str = jutil::format_availability(row.availability);
  row.downtime_str = jutil::format_duration_coarse(row.downtime_seconds);
  return row;
}

std::vector<AvailabilityRow> figure12_table(int max_nodes, double mttf_hours,
                                            double mttr_hours) {
  std::vector<AvailabilityRow> rows;
  for (int n = 1; n <= max_nodes; ++n)
    rows.push_back(figure12_row(n, mttf_hours, mttr_hours));
  return rows;
}

std::string render_figure12(const std::vector<AvailabilityRow>& rows) {
  std::string out =
      "#  Availability     Nines  Downtime/Year\n"
      "-- ---------------- -----  -------------\n";
  char buf[128];
  for (const AvailabilityRow& row : rows) {
    std::snprintf(buf, sizeof buf, "%-2d %-16s %-6d %s\n", row.nodes,
                  row.availability_str.c_str(), row.nines,
                  row.downtime_str.c_str());
    out += buf;
  }
  return out;
}

}  // namespace ha
