// Asymmetric active/active baseline (Section 2, Figure 3).
//
// Two or more active heads "offer the same capabilities at tandem without
// coordination". For a stateful service like job management this buys
// submission throughput (users spread across heads) but NOT symmetric HA:
// each head owns its own queue, so a head failure strands that head's jobs
// until a standby recovers them. The harness partitions the compute nodes
// among the heads so their uncoordinated schedulers cannot double-allocate.
#pragma once

#include <memory>
#include <vector>

#include "pbs/client.h"
#include "pbs/mom.h"
#include "pbs/server.h"
#include "sim/calibration.h"
#include "sim/failure.h"

namespace ha {

struct AsymmetricOptions {
  int head_count = 2;
  int compute_count = 2;
  sim::Calibration cal = sim::paper_testbed();
  pbs::SchedulerConfig sched{};
  uint64_t seed = 1;
};

class AsymmetricCluster {
 public:
  explicit AsymmetricCluster(AsymmetricOptions options);
  ~AsymmetricCluster();

  sim::Simulation& sim() { return sim_; }
  sim::Network& net() { return net_; }
  sim::FailureInjector& faults() { return faults_; }

  size_t head_count() const { return servers_.size(); }
  pbs::Server& server(size_t head) { return *servers_.at(head); }
  sim::HostId head_host(size_t head) const { return head_hosts_.at(head); }
  sim::Endpoint endpoint(size_t head) const;

  /// Client pinned to one head (the user picked a head at login).
  pbs::Client& make_client(size_t head);

  /// Jobs stranded on dead heads (queued or running there at crash time).
  size_t stranded_jobs() const;

 private:
  AsymmetricOptions options_;
  sim::Simulation sim_;
  sim::Network net_;
  sim::FailureInjector faults_;
  std::vector<sim::HostId> head_hosts_;
  std::vector<sim::HostId> compute_hosts_;
  sim::HostId login_host_ = sim::kInvalidHost;
  std::vector<std::unique_ptr<pbs::Server>> servers_;
  std::vector<std::unique_ptr<pbs::Mom>> moms_;
  std::vector<std::unique_ptr<pbs::Client>> clients_;
  sim::Port next_client_port_ = 22000;
};

}  // namespace ha
