#include "ha/active_standby.h"

#include "telemetry/hub.h"
#include "util/logging.h"

namespace ha {

namespace {
constexpr sim::Port kManagerPort = 18000;
constexpr sim::Port kPbsPort = 15001;
constexpr sim::Port kMomPort = 15002;
}  // namespace

FailoverManager::FailoverManager(sim::Network& net, sim::HostId standby_host,
                                 sim::Endpoint primary,
                                 std::function<void()> do_failover,
                                 sim::Duration heartbeat_interval,
                                 sim::Duration detect_timeout)
    : sim::Process(net, standby_host, kManagerPort, "ha_manager"),
      primary_(primary),
      do_failover_(std::move(do_failover)),
      heartbeat_interval_(heartbeat_interval),
      detect_timeout_(detect_timeout) {
  telemetry::Hub& hub = net.sim().telemetry();
  m_pings_ = hub.metrics().counter("ha.pings_sent");
  m_failovers_ = hub.metrics().counter("ha.failovers");
  m_detect_latency_ = hub.metrics().histogram("ha.detect_latency_us");
  tc_failover_ = hub.trace().intern("ha.failover");
  last_heard_ = sim().now();
  set_timer(heartbeat_interval_, [this] { tick(); });
}

void FailoverManager::tick() {
  if (failed_over_) return;
  if (sim().now() - last_heard_ > detect_timeout_) {
    failed_over_ = true;
    failover_time_ = sim().now();
    m_failovers_.add(1);
    m_detect_latency_.record((sim().now() - last_heard_).us);
    sim().telemetry().trace().instant(
        sim().now().us, host_id(), tc_failover_,
        static_cast<uint64_t>((sim().now() - last_heard_).us));
    JLOG(kInfo, "ha") << "primary silent for "
                      << (sim().now() - last_heard_).millis()
                      << " ms; failing over";
    do_failover_();
    return;
  }
  // Ping: any response refreshes last_heard_.
  m_pings_.add(1);
  send(primary_, sim::Payload{0x1});
  set_timer(heartbeat_interval_, [this] { tick(); });
}

void FailoverManager::on_packet(sim::Packet packet) {
  (void)packet;
  last_heard_ = sim().now();
}

/// The primary answers manager pings on a dedicated port.
class PingResponder : public sim::Process {
 public:
  PingResponder(sim::Network& net, sim::HostId host)
      : sim::Process(net, host, kManagerPort, "ha_ping") {}
  void on_packet(sim::Packet packet) override {
    send(packet.src, sim::Payload{0x2});
  }
};

ActiveStandbyCluster::ActiveStandbyCluster(ActiveStandbyOptions options)
    : options_(std::move(options)),
      sim_(options_.seed),
      net_(sim_, options_.cal.network),
      faults_(net_),
      shared_storage_(std::make_shared<std::map<std::string, std::string>>()) {
  primary_host_ = net_.add_host("primary").id();
  standby_host_ = net_.add_host("standby").id();
  for (int i = 0; i < options_.compute_count; ++i)
    compute_hosts_.push_back(net_.add_host("node" + std::to_string(i)).id());
  login_host_ = net_.add_host("login").id();

  std::vector<sim::Endpoint> mom_endpoints;
  for (sim::HostId h : compute_hosts_) mom_endpoints.push_back({h, kMomPort});

  pbs::ServerConfig cfg = pbs::server_config_from(options_.cal);
  cfg.port = kPbsPort;
  cfg.moms = mom_endpoints;
  cfg.sched = options_.sched;
  cfg.shared_storage = shared_storage_;
  cfg.checkpoint_interval = options_.checkpoint_interval;
  primary_ = std::make_unique<pbs::Server>(net_, primary_host_, cfg);

  for (sim::HostId h : compute_hosts_) {
    pbs::MomConfig mom_cfg = pbs::mom_config_from(options_.cal);
    mom_cfg.port = kMomPort;
    mom_cfg.server_port = kPbsPort;
    moms_.push_back(std::make_unique<pbs::Mom>(net_, h, mom_cfg));
  }

  // The ping responder lives (and dies) with the primary host.
  ping_responder_ = std::make_unique<PingResponder>(net_, primary_host_);
  manager_ = std::make_unique<FailoverManager>(
      net_, standby_host_, sim::Endpoint{primary_host_, kManagerPort},
      [this] { do_failover(); }, options_.heartbeat_interval,
      options_.detect_timeout);
}

ActiveStandbyCluster::~ActiveStandbyCluster() = default;

void ActiveStandbyCluster::do_failover() {
  // Warm standby: the service restart takes restart_delay, then the standby
  // server recovers from the last checkpoint on shared storage.
  sim_.schedule(options_.restart_delay, [this] {
    pbs::ServerConfig cfg = pbs::server_config_from(options_.cal);
    cfg.port = kPbsPort;
    std::vector<sim::Endpoint> mom_endpoints;
    for (sim::HostId h : compute_hosts_) mom_endpoints.push_back({h, kMomPort});
    cfg.moms = mom_endpoints;
    cfg.sched = options_.sched;
    cfg.shared_storage = shared_storage_;
    cfg.checkpoint_interval = options_.checkpoint_interval;
    standby_ = std::make_unique<pbs::Server>(net_, standby_host_, cfg);
    JLOG(kInfo, "ha") << "standby PBS server up with "
                      << standby_->jobs().size() << " recovered jobs";
  });
}

pbs::Server& ActiveStandbyCluster::active_server() {
  if (standby_) return *standby_;
  return *primary_;
}

sim::Endpoint ActiveStandbyCluster::active_endpoint() const {
  if (standby_) return {standby_host_, kPbsPort};
  return {primary_host_, kPbsPort};
}

pbs::Client& ActiveStandbyCluster::make_client() {
  pbs::ClientConfig cfg = pbs::client_config_from(
      options_.cal, sim::Endpoint{primary_host_, kPbsPort});
  clients_.push_back(std::make_unique<pbs::Client>(
      net_, login_host_, next_client_port_++, cfg));
  return *clients_.back();
}

}  // namespace ha
