#include "pbs/scheduler.h"

#include <algorithm>

namespace pbs {
namespace {

/// Queued jobs in FIFO order (queue_rank, then id for total determinism).
std::vector<const Job*> eligible_fifo(const std::map<JobId, Job>& jobs) {
  std::vector<const Job*> out;
  for (const auto& [id, job] : jobs) {
    (void)id;
    if (job.state == JobState::kQueued) out.push_back(&job);
  }
  std::sort(out.begin(), out.end(), [](const Job* a, const Job* b) {
    if (a->queue_rank != b->queue_rank) return a->queue_rank < b->queue_rank;
    return a->id < b->id;
  });
  return out;
}

std::vector<sim::HostId> free_nodes(const std::vector<NodeState>& nodes) {
  std::vector<sim::HostId> out;
  for (const NodeState& n : nodes) {
    if (n.up && n.running == kInvalidJob) out.push_back(n.host);
  }
  return out;
}

size_t up_nodes(const std::vector<NodeState>& nodes) {
  size_t count = 0;
  for (const NodeState& n : nodes)
    if (n.up) ++count;
  return count;
}

/// Carve `count` disjoint sets of `width` nodes off the front of `free`
/// (anti-affinity by construction). Assumes free.size() >= width * count.
std::vector<std::vector<sim::HostId>> take_sets(std::vector<sim::HostId>& free,
                                                uint32_t width,
                                                uint32_t count) {
  std::vector<std::vector<sim::HostId>> sets;
  sets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    sets.emplace_back(free.begin(),
                      free.begin() + static_cast<ptrdiff_t>(width));
    free.erase(free.begin(), free.begin() + static_cast<ptrdiff_t>(width));
  }
  return sets;
}

/// How many replicas of a `width`-node job fit in `free_count` nodes:
/// at least 1 (the job itself), at most the requested factor.
uint32_t fit_replicas(uint32_t requested, uint32_t width, size_t free_count) {
  uint32_t want = requested == 0 ? 1 : requested;
  if (width == 0) return 1;
  uint32_t fit = static_cast<uint32_t>(free_count / width);
  if (fit < 1) fit = 1;
  return std::min(want, fit);
}

}  // namespace

std::vector<LaunchDecision> Scheduler::cycle(
    const std::map<JobId, Job>& jobs, const std::vector<NodeState>& nodes,
    sim::Time now) const {
  std::vector<LaunchDecision> decisions;
  // With no free node nothing can launch (every branch below needs at least
  // one); skip the O(queued log queued) FIFO projection entirely. A deep
  // backlog -- millions of queued jobs on a busy or compute-less shard --
  // would otherwise pay that sort on every cycle for nothing.
  std::vector<sim::HostId> free = free_nodes(nodes);
  if (free.empty()) return decisions;

  std::vector<const Job*> queue = eligible_fifo(jobs);
  if (queue.empty()) return decisions;

  if (config_.exclusive_cluster) {
    // One job at a time on the whole cluster. Exclusive access leaves no
    // disjoint node set for a second replica: r clamps to 1.
    if (free.size() != up_nodes(nodes) || free.empty()) return decisions;
    LaunchDecision d{queue.front()->id, free, {}};
    d.replica_sets.push_back(d.nodes);
    decisions.push_back(std::move(d));
    return decisions;
  }

  size_t next = 0;
  // Strict FIFO: launch from the head while nodes suffice. Replication is
  // best-effort: the primary set only needs spec.nodes free; additional
  // disjoint replica sets are carved out of whatever else is free.
  while (next < queue.size() && queue[next]->spec.nodes <= free.size()) {
    const Job* job = queue[next];
    uint32_t r = fit_replicas(job->spec.replicas, job->spec.nodes, free.size());
    LaunchDecision d;
    d.job = job->id;
    d.replica_sets = take_sets(free, job->spec.nodes, r);
    d.nodes = d.replica_sets.front();
    decisions.push_back(std::move(d));
    ++next;
  }
  if (next >= queue.size() || config_.policy != SchedPolicy::kFifoBackfill)
    return decisions;

  // EASY backfill: the head job `queue[next]` blocks. Compute its shadow
  // time (earliest instant enough nodes free up, by walltime estimates) and
  // let later jobs run iff they fit in the hole without delaying it.
  const Job* blocked = queue[next];
  std::vector<std::pair<sim::Time, uint32_t>> releases;  // (when, node count)
  for (const auto& [id, job] : jobs) {
    (void)id;
    if (job.state != JobState::kRunning) continue;
    sim::Time release = job.start_time + job.spec.walltime;
    if (release < now) release = now;
    releases.emplace_back(release, job.spec.nodes);
  }
  std::sort(releases.begin(), releases.end());
  size_t avail = free.size();
  sim::Time shadow = sim::kTimeInfinity;
  for (const auto& [when, count] : releases) {
    avail += count;
    if (avail >= blocked->spec.nodes) {
      shadow = when;
      break;
    }
  }
  // Nodes free at the shadow instant that the blocked job will NOT need.
  size_t spare_at_shadow =
      avail >= blocked->spec.nodes ? avail - blocked->spec.nodes : 0;

  for (size_t i = next + 1; i < queue.size() && !free.empty(); ++i) {
    const Job* candidate = queue[i];
    if (candidate->spec.nodes > free.size()) continue;
    bool fits_before_shadow = now + candidate->spec.walltime <= shadow;
    bool fits_spare = candidate->spec.nodes <= spare_at_shadow;
    if (!fits_before_shadow && !fits_spare) continue;
    LaunchDecision d;
    d.job = candidate->id;
    d.nodes.assign(free.begin(),
                   free.begin() + static_cast<ptrdiff_t>(candidate->spec.nodes));
    free.erase(free.begin(),
               free.begin() + static_cast<ptrdiff_t>(candidate->spec.nodes));
    // Backfilled jobs run unreplicated: extra replica sets would eat into
    // the shadow-time budget and delay the blocked head job.
    d.replica_sets.push_back(d.nodes);
    if (!fits_before_shadow && fits_spare) {
      // Runs past the shadow but on nodes the blocked job will not use.
      spare_at_shadow -= candidate->spec.nodes;
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace pbs
