#include "pbs/scheduler.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace pbs {

bool NodeState::has(JobId id) const {
  return std::find(running.begin(), running.end(), id) != running.end();
}

void NodeState::assign(JobId id) { running.push_back(id); }

void NodeState::release(JobId id) {
  running.erase(std::remove(running.begin(), running.end(), id),
                running.end());
}

bool NodeState::satisfies(const JobSpec& spec) const {
  if (!spec.node_type.empty() && spec.node_type != attrs.type) return false;
  for (const std::string& f : spec.features) {
    if (std::find(attrs.features.begin(), attrs.features.end(), f) ==
        attrs.features.end())
      return false;
  }
  return true;
}

FreePool make_free_pool(const std::vector<NodeState>& nodes) {
  FreePool pool;
  for (const NodeState& n : nodes) {
    if (n.up && n.free_slots() > 0) pool.push_back(FreeSlot{&n, n.free_slots()});
  }
  return pool;
}

size_t eligible_hosts(const FreePool& pool, const JobSpec& spec) {
  size_t count = 0;
  for (const FreeSlot& s : pool) {
    if (s.free > 0 && s.node->satisfies(spec)) ++count;
  }
  return count;
}

namespace {
std::string env_or(const char* var, const char* fallback) {
  const char* v = std::getenv(var);
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string(fallback);
}
}  // namespace

std::string SchedulerConfig::sched_policy_from_env() {
  return env_or("JOSHUA_SCHED", "fifo");
}

std::string SchedulerConfig::node_selector_from_env() {
  return env_or("JOSHUA_SELECT", "firstfit");
}

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config)) {
  policy_ = find_sched_policy(config_.policy);
  if (policy_ == nullptr) {
    JLOG(kWarn, "pbs") << "unknown scheduling policy '" << config_.policy
                       << "', falling back to fifo";
    config_.policy = "fifo";
    policy_ = find_sched_policy("fifo");
  }
  selector_ = find_node_selector(config_.selector);
  if (selector_ == nullptr) {
    JLOG(kWarn, "pbs") << "unknown node selector '" << config_.selector
                       << "', falling back to firstfit";
    config_.selector = "firstfit";
    selector_ = find_node_selector("firstfit");
  }
}

SchedDecisions Scheduler::cycle(const std::map<JobId, Job>& jobs,
                                const std::vector<NodeState>& nodes,
                                sim::Time now) const {
  SchedContext ctx{jobs, nodes, now, config_, *selector_};
  return policy_->cycle(ctx);
}

}  // namespace pbs
