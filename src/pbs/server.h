// The TORQUE-equivalent PBS server: job queue, PBS state machine,
// scheduling cycles, mom control, persistence.
//
// This is the unmodified service JOSHUA wraps externally: it knows nothing
// about replication. Determinism (FIFO scheduling, ids assigned in request
// order) is what lets N replicas fed the same totally-ordered command
// stream stay identical -- the paper's core requirement for any service put
// behind symmetric active/active replication.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "net/rpc.h"
#include "pbs/protocol.h"
#include "pbs/scheduler.h"
#include "telemetry/metrics.h"

namespace sim {
struct Calibration;
}

namespace pbs {

struct ServerConfig {
  sim::Port port = 15001;
  std::string server_suffix = "cluster";
  /// Compute-node mom endpoints.
  std::vector<sim::Endpoint> moms;
  /// Static attributes per mom host (type / features / slots) for
  /// heterogeneous clusters; hosts not listed get the defaults.
  std::map<sim::HostId, NodeAttrs> node_attrs;
  SchedulerConfig sched;
  /// Largest job array one submit may expand to (larger requests are
  /// rejected, they would flood the ordered stream).
  uint32_t max_array_size = 4096;
  /// Periodic scheduling interval (Maui iteration).
  sim::Duration sched_interval = sim::msec(500);

  // CPU cost model.
  sim::Duration submit_proc = sim::msec(72);
  sim::Duration stat_proc = sim::msec(22);
  sim::Duration del_proc = sim::msec(30);
  sim::Duration sched_cycle_proc = sim::msec(12);

  /// Persist state so a restart recovers the queue (running jobs requeue,
  /// as after a TORQUE failover). Set checkpoint_interval > 0 to persist
  /// periodically instead of on every mutation (warm standby with possible
  /// rollback, the active/standby baseline of Section 2).
  bool persist = true;
  sim::Duration checkpoint_interval = sim::kDurationZero;
  /// Where to persist; when null the host's local disk is used. The
  /// active/standby baseline points both primary and standby at one shared
  /// map (the "shared stable storage" of Figure 2).
  std::shared_ptr<std::map<std::string, std::string>> shared_storage;

  sim::Duration mom_launch_timeout = sim::seconds(8);

  /// First job id this server hands out (and returns to on reset). A
  /// federated shard sets this to the base of its id block so every id it
  /// ever issues identifies its owning shard, even after a crashed head
  /// rejoins with an empty transfer log.
  JobId job_id_base = 1;

  /// Heartbeat-based compute-node failure detection. 0 = off, the paper's
  /// behaviour: a failed compute node's job simply dies with it. When on,
  /// the server pings every mom each interval; heartbeat_miss_limit
  /// consecutive misses declare the node dead, its replicas are dropped and
  /// jobs left without a live replica are requeued.
  sim::Duration heartbeat_interval = sim::kDurationZero;
  uint32_t heartbeat_miss_limit = 3;
  sim::Duration heartbeat_timeout = sim::seconds(2);
};

/// Fill the cost fields from the testbed calibration.
ServerConfig server_config_from(const sim::Calibration& cal);

class Server : public net::RpcNode {
 public:
  Server(sim::Network& net, sim::HostId host, ServerConfig config);

  const ServerConfig& config() const { return config_; }

  // -- introspection (tests, examples, JOSHUA) -------------------------------

  const std::map<JobId, Job>& jobs() const { return jobs_; }
  std::optional<Job> find_job(JobId id) const;
  size_t count_in_state(JobState s) const;
  const std::vector<NodeState>& nodes() const { return nodes_; }
  uint64_t submissions() const { return submissions_; }

  /// Observers (used by JOSHUA's interceptor and by tests).
  std::function<void(const Job&)> on_job_start;
  std::function<void(const Job&)> on_job_complete;
  /// Fires once per up->down transition when a compute node is declared
  /// dead (heartbeat misses or a launch timeout). JOSHUA multicasts its
  /// ordered mutex revoke from here.
  std::function<void(sim::HostId)> on_node_failed;
  /// Completion-report filter. Return false to suppress the report (it is
  /// counted, not applied). JOSHUA installs its ordered duplicate-completion
  /// suppression here; unset = accept everything (plain TORQUE behaviour).
  std::function<bool(const JobReport&)> accept_report;
  /// Preemption interceptor. When set (JOSHUA), a preempt decision is
  /// multicast as an ordered kPreempt group op instead of being applied
  /// locally, so every head requeues the victim at the same point of the
  /// command stream; unset = apply immediately (plain TORQUE behaviour).
  std::function<void(JobId)> request_preempt;

  /// Requeue a running job (quiet-killing its instances, preserving its
  /// queue_rank). Called on ordered kPreempt delivery, or directly when no
  /// interceptor is installed. Idempotent: no-op unless the job is running.
  void apply_preempt(JobId id);

  /// Times `id` was preempted on this server (harness: each preemption
  /// legitimately re-runs the job, so exactly-r audits excuse r more runs).
  uint32_t preempt_count(JobId id) const;
  uint64_t preempts_applied() const { return preempts_applied_; }

  /// Declare a compute node dead: mark it down, drop its replicas from
  /// running jobs, and requeue jobs left without a live replica. Idempotent.
  /// Called by heartbeat misses, launch timeouts, and by JOSHUA when an
  /// ordered mutex revoke is delivered (so every head converges).
  void note_node_failed(sim::HostId host);

  /// Return a compute node to service: mark it up and kick a sched cycle.
  /// Idempotent. Called by an answered heartbeat, and by JOSHUA when an
  /// ordered mutex claim arrives from a previously revoked mom -- the claim
  /// proves the mom serves launches again, and routing the up-transition
  /// through the ordered stream keeps every head's node table (and hence
  /// its scheduling decisions) convergent even with heartbeats disabled.
  /// Without it, a head that never crashes keeps the node down forever and
  /// its live-job table permanently trails the rest of the group.
  void note_node_recovered(sim::HostId host);

  /// Force a recovery from persistent storage (also runs on host restart).
  void recover();

  /// Direct state snapshot/install, bypassing the service interface. The
  /// paper's future-work "unified and location independent state
  /// description" (SSS-style); used by JOSHUA's snapshot transfer mode.
  sim::Payload dump_state_blob() const { return serialize_state(); }
  void load_state_blob(const sim::Payload& state) {
    apply_state(state);
    persist();
    request_sched_cycle();
  }

  /// Drop all jobs and counters (a freshly installed server, as the paper
  /// assumes on a joining head before its state transfer).
  void reset_state();

  /// Insert `count` already-queued copies of `spec` directly into the job
  /// table, bypassing the RPC path (ids and FIFO ranks assigned as normal
  /// submits would). Benches use this to model an established backlog of
  /// millions of queued jobs; every replica of a group must be preloaded
  /// identically before service starts. Not persisted and no scheduling
  /// cycle is triggered -- the next real mutation does both.
  void preload_queued(uint64_t count, const JobSpec& spec);

  /// Raise the id counter to at least `floor`. A replay-mode state transfer
  /// calls this with the donor's counter: the compacted log omits terminal
  /// jobs, so replaying it alone would leave this server reissuing ids the
  /// group already assigned.
  void bump_next_job_id(JobId floor) {
    next_job_id_ = std::max(next_job_id_, floor);
  }

  // net::RpcNode:
  void on_request(sim::Payload request, sim::Endpoint from,
                  uint64_t rpc_id) override;
  void on_crash() override;
  void on_restart() override;

 private:
  void handle_submit(const SubmitRequest& req, sim::Endpoint from,
                     uint64_t rpc_id);
  void handle_stat(const StatRequest& req, sim::Endpoint from,
                   uint64_t rpc_id);
  void handle_delete(const DeleteRequest& req, sim::Endpoint from,
                     uint64_t rpc_id);
  void handle_signal(const SignalRequest& req, sim::Endpoint from,
                     uint64_t rpc_id);
  void handle_hold(const HoldRequest& req, sim::Endpoint from,
                   uint64_t rpc_id);
  void handle_release(const ReleaseRequest& req, sim::Endpoint from,
                      uint64_t rpc_id);
  void handle_preempt(const PreemptRequest& req, sim::Endpoint from,
                      uint64_t rpc_id);
  void handle_report(const JobReport& report, sim::Endpoint from,
                     uint64_t rpc_id);
  void handle_dump_state(sim::Endpoint from, uint64_t rpc_id);
  void handle_load_state(const LoadStateRequest& req, sim::Endpoint from,
                         uint64_t rpc_id);

  void request_sched_cycle();
  void run_sched_cycle();
  void launch(Job& job, const std::vector<std::vector<sim::HostId>>& sets);
  void send_replica_launch(JobId id, sim::HostId mom_host);
  void replica_launch_failed(JobId id, sim::HostId mom_host);
  void complete_job(Job& job, const JobReport& report);
  void reap_losers(const Job& job, sim::HostId winner);
  void kill_on(sim::HostId mom_host, JobId id, bool quiet = false);
  void free_nodes_of(JobId id);
  void update_utilization();
  NodeState* node_by_host(sim::HostId host);
  sim::Endpoint mom_endpoint(sim::HostId host) const;

  // Heartbeat failure detection.
  void arm_heartbeat_timer();
  void run_heartbeat_round();

  // Persistence.
  sim::Payload serialize_state() const;
  void apply_state(const sim::Payload& state);
  void persist();
  std::map<std::string, std::string>& storage();
  void arm_checkpoint_timer();

  ServerConfig config_;
  std::map<JobId, Job> jobs_;
  JobId next_job_id_ = 1;
  uint64_t next_rank_ = 1;
  uint64_t submissions_ = 0;
  std::vector<NodeState> nodes_;
  Scheduler scheduler_;
  bool sched_pending_ = false;
  sim::TimerId sched_timer_ = 0;
  sim::TimerId checkpoint_timer_ = 0;
  sim::TimerId heartbeat_timer_ = 0;
  uint64_t hb_seq_ = 0;
  std::map<sim::HostId, uint32_t> hb_misses_;
  std::map<sim::HostId, sim::Time> hb_first_miss_;

  /// Victims whose ordered preempt is in flight (damping: the pure policy
  /// re-emits the same victim every cycle until the requeue applies).
  std::set<JobId> preempt_inflight_;
  std::map<JobId, uint32_t> preempt_counts_;
  uint64_t preempts_applied_ = 0;

  // Telemetry ("pbs.*" metrics; registered in the ctor body).
  telemetry::Counter m_jobs_queued_;
  telemetry::Counter m_jobs_launched_;
  telemetry::Counter m_jobs_completed_;
  telemetry::Counter m_sched_cycles_;
  telemetry::Counter m_replicas_dispatched_;
  telemetry::Counter m_replicas_reaped_;
  telemetry::Counter m_reports_suppressed_;
  telemetry::Counter m_jobs_requeued_;
  telemetry::Counter m_heartbeat_misses_;
  telemetry::Counter m_node_failovers_;
  telemetry::Counter m_node_recoveries_;
  telemetry::Histogram m_queue_wait_;
  telemetry::Histogram m_failover_detect_;
  // "pbs.sched.*" policy-layer metrics.
  telemetry::Counter m_preemptions_;
  telemetry::Counter m_backfilled_;
  telemetry::Counter m_array_expansions_;
  telemetry::Gauge m_utilization_;
  telemetry::Histogram m_policy_queue_wait_;  ///< per-policy wait histogram
  uint16_t tc_preempt_ = 0;       ///< trace category "pbs.preempt"
  uint16_t tc_sched_ = 0;         ///< trace category "pbs.sched_cycle"
  uint16_t tc_job_start_ = 0;     ///< trace category "pbs.job_start"
  uint16_t tc_job_complete_ = 0;  ///< trace category "pbs.job_complete"
  uint16_t tc_replica_ = 0;       ///< trace category "pbs.replica"
  uint16_t tc_node_fail_ = 0;     ///< trace category "pbs.node_failover"
};

}  // namespace pbs
