// Built-in SchedPolicy plugins + the policy registry.
//
// "fifo" and "backfill" reproduce the historical monolithic scheduler's
// decisions exactly (the paper's determinism baseline and the EASY
// extension it hints at). "priority" orders by effective priority with
// optional aging; "preempt" adds priority preemption, emitted as ordered
// requests so every head requeues the victims at the same point of the
// command stream.
//
// Every policy is a pure function of the SchedContext -- that is the
// cross-head determinism contract the conformance suite enforces.
#include <algorithm>
#include <memory>
#include <utility>

#include "pbs/scheduler.h"

namespace pbs {
namespace {

/// Queued jobs in FIFO order (queue_rank, then id for total determinism).
std::vector<const Job*> eligible_fifo(const std::map<JobId, Job>& jobs) {
  std::vector<const Job*> out;
  for (const auto& [id, job] : jobs) {
    (void)id;
    if (job.state == JobState::kQueued) out.push_back(&job);
  }
  std::sort(out.begin(), out.end(), [](const Job* a, const Job* b) {
    if (a->queue_rank != b->queue_rank) return a->queue_rank < b->queue_rank;
    return a->id < b->id;
  });
  return out;
}

/// Submit-time priority plus aging credit: +1 per priority_aging waited.
/// Integer arithmetic on microsecond counts keeps it bit-identical across
/// heads regardless of when each one runs its cycle relative to `now`.
int64_t effective_priority(const Job& job, const SchedulerConfig& config,
                           sim::Time now) {
  int64_t p = job.spec.priority;
  if (config.priority_aging.us > 0 && now.us > job.submit_time.us)
    p += (now.us - job.submit_time.us) / config.priority_aging.us;
  return p;
}

/// Queued jobs by descending effective priority; queue_rank then id break
/// ties deterministically (the satellite-1 contract).
std::vector<const Job*> eligible_priority(const SchedContext& ctx) {
  std::vector<const Job*> out;
  for (const auto& [id, job] : ctx.jobs) {
    (void)id;
    if (job.state == JobState::kQueued) out.push_back(&job);
  }
  std::sort(out.begin(), out.end(), [&ctx](const Job* a, const Job* b) {
    int64_t pa = effective_priority(*a, ctx.config, ctx.now);
    int64_t pb = effective_priority(*b, ctx.config, ctx.now);
    if (pa != pb) return pa > pb;
    if (a->queue_rank != b->queue_rank) return a->queue_rank < b->queue_rank;
    return a->id < b->id;
  });
  return out;
}

size_t count_up(const std::vector<NodeState>& nodes) {
  size_t n = 0;
  for (const NodeState& node : nodes)
    if (node.up) ++n;
  return n;
}

bool pool_exhausted(const FreePool& pool) {
  for (const FreeSlot& s : pool)
    if (s.free > 0) return false;
  return true;
}

/// The paper's exclusive-cluster admission: the head job launches iff every
/// up node is idle, and it gets all of them (one replica set -- exclusive
/// access leaves no disjoint node set for a second replica).
void exclusive_launch(const SchedContext& ctx,
                      const std::vector<const Job*>& queue,
                      SchedDecisions& out) {
  std::vector<sim::HostId> all;
  for (const NodeState& n : ctx.nodes) {
    if (!n.up) continue;
    if (!n.idle()) return;
    all.push_back(n.host);
  }
  if (all.empty()) return;
  LaunchDecision d{queue.front()->id, std::move(all), {}};
  d.replica_sets.push_back(d.nodes);
  out.launches.push_back(std::move(d));
}

/// Launch from the head of `queue` while the selector finds room; returns
/// the index of the first job that did not fit (the blocked head).
size_t run_strict(const SchedContext& ctx,
                  const std::vector<const Job*>& queue, FreePool& pool,
                  SchedDecisions& out) {
  size_t next = 0;
  while (next < queue.size()) {
    auto sets = ctx.selector.select(pool, queue[next]->spec, true);
    if (sets.empty()) break;
    LaunchDecision d;
    d.job = queue[next]->id;
    d.replica_sets = std::move(sets);
    d.nodes = d.replica_sets.front();
    out.launches.push_back(std::move(d));
    ++next;
  }
  return next;
}

/// EASY backfill behind the blocked job `queue[next]`: compute its shadow
/// time from walltime estimates and admit later jobs iff they fit in the
/// hole without delaying it. Backfilled jobs run unreplicated -- extra
/// replica sets would eat into the shadow-time budget.
void easy_backfill(const SchedContext& ctx,
                   const std::vector<const Job*>& queue, size_t next,
                   FreePool& pool, SchedDecisions& out) {
  const Job* blocked = queue[next];
  std::vector<std::pair<sim::Time, uint32_t>> releases;  // (when, node count)
  for (const auto& [id, job] : ctx.jobs) {
    (void)id;
    if (job.state != JobState::kRunning) continue;
    sim::Time release = job.start_time + job.spec.walltime;
    if (release < ctx.now) release = ctx.now;  // overran its estimate
    releases.emplace_back(release, job.spec.nodes);
  }
  std::sort(releases.begin(), releases.end());
  size_t avail = eligible_hosts(pool, blocked->spec);
  sim::Time shadow = sim::kTimeInfinity;
  for (const auto& [when, count] : releases) {
    avail += count;
    if (avail >= blocked->spec.nodes) {
      shadow = when;
      break;
    }
  }
  // Nodes free at the shadow instant that the blocked job will NOT need.
  size_t spare_at_shadow =
      avail >= blocked->spec.nodes ? avail - blocked->spec.nodes : 0;

  for (size_t i = next + 1; i < queue.size() && !pool_exhausted(pool); ++i) {
    const Job* candidate = queue[i];
    if (candidate->spec.nodes > eligible_hosts(pool, candidate->spec))
      continue;
    bool fits_before_shadow = ctx.now + candidate->spec.walltime <= shadow;
    bool fits_spare = candidate->spec.nodes <= spare_at_shadow;
    if (!fits_before_shadow && !fits_spare) continue;
    auto sets = ctx.selector.select(pool, candidate->spec, false);
    if (sets.empty()) continue;
    LaunchDecision d;
    d.job = candidate->id;
    d.replica_sets = std::move(sets);
    d.nodes = d.replica_sets.front();
    if (!fits_before_shadow && fits_spare) {
      // Runs past the shadow but on nodes the blocked job will not use.
      spare_at_shadow -= candidate->spec.nodes;
    }
    out.launches.push_back(std::move(d));
    ++out.backfilled;
  }
}

class FifoPolicy : public SchedPolicy {
 public:
  std::string_view name() const override { return "fifo"; }

  SchedDecisions cycle(const SchedContext& ctx) const override {
    SchedDecisions out;
    // With no free slot nothing can launch; skip the O(queued log queued)
    // projection entirely (a deep backlog would pay it every cycle).
    FreePool pool = make_free_pool(ctx.nodes);
    if (pool.empty()) return out;
    std::vector<const Job*> queue = eligible_fifo(ctx.jobs);
    if (queue.empty()) return out;
    if (ctx.config.exclusive_cluster) {
      if (pool.size() != count_up(ctx.nodes)) return out;
      exclusive_launch(ctx, queue, out);
      return out;
    }
    run_strict(ctx, queue, pool, out);
    return out;
  }
};

class BackfillPolicy : public SchedPolicy {
 public:
  std::string_view name() const override { return "backfill"; }

  SchedDecisions cycle(const SchedContext& ctx) const override {
    SchedDecisions out;
    FreePool pool = make_free_pool(ctx.nodes);
    if (pool.empty()) return out;
    std::vector<const Job*> queue = eligible_fifo(ctx.jobs);
    if (queue.empty()) return out;
    if (ctx.config.exclusive_cluster) {
      if (pool.size() != count_up(ctx.nodes)) return out;
      exclusive_launch(ctx, queue, out);
      return out;
    }
    size_t next = run_strict(ctx, queue, pool, out);
    if (next < queue.size()) easy_backfill(ctx, queue, next, pool, out);
    return out;
  }
};

class PriorityPolicy : public SchedPolicy {
 public:
  std::string_view name() const override { return "priority"; }

  SchedDecisions cycle(const SchedContext& ctx) const override {
    SchedDecisions out;
    FreePool pool = make_free_pool(ctx.nodes);
    if (pool.empty()) return out;
    std::vector<const Job*> queue = eligible_priority(ctx);
    if (queue.empty()) return out;
    if (ctx.config.exclusive_cluster) {
      if (pool.size() != count_up(ctx.nodes)) return out;
      exclusive_launch(ctx, queue, out);
      return out;
    }
    run_strict(ctx, queue, pool, out);
    return out;
  }
};

/// Running jobs with strictly lower effective priority than `floor`,
/// cheapest victims first: lowest priority, then youngest (highest
/// queue_rank, highest id) -- preempting recent work wastes the least.
std::vector<const Job*> preemption_candidates(const SchedContext& ctx,
                                              int64_t floor) {
  std::vector<const Job*> victims;
  for (const auto& [id, job] : ctx.jobs) {
    (void)id;
    if (job.state != JobState::kRunning) continue;
    if (effective_priority(job, ctx.config, ctx.now) < floor)
      victims.push_back(&job);
  }
  std::sort(victims.begin(), victims.end(),
            [&ctx](const Job* a, const Job* b) {
              int64_t pa = effective_priority(*a, ctx.config, ctx.now);
              int64_t pb = effective_priority(*b, ctx.config, ctx.now);
              if (pa != pb) return pa < pb;
              if (a->queue_rank != b->queue_rank)
                return a->queue_rank > b->queue_rank;
              return a->id > b->id;
            });
  return victims;
}

class PreemptPolicy : public SchedPolicy {
 public:
  std::string_view name() const override { return "preempt"; }

  SchedDecisions cycle(const SchedContext& ctx) const override {
    SchedDecisions out;
    std::vector<const Job*> queue = eligible_priority(ctx);
    if (queue.empty()) return out;

    if (ctx.config.exclusive_cluster) {
      exclusive_launch(ctx, queue, out);
      if (!out.launches.empty()) return out;
      // The whole cluster is the resource: the head preempts only if every
      // occupant is strictly lower priority (kExiting jobs are already on
      // their way out -- wait for them instead).
      int64_t head = effective_priority(*queue.front(), ctx.config, ctx.now);
      std::vector<const Job*> victims = preemption_candidates(ctx, head);
      size_t running = 0;
      for (const auto& [id, job] : ctx.jobs) {
        (void)id;
        if (job.active()) ++running;
      }
      if (running == 0 || victims.size() != running) return out;
      for (const Job* v : victims) out.preemptions.push_back(v->id);
      return out;
    }

    FreePool pool = make_free_pool(ctx.nodes);
    size_t next = run_strict(ctx, queue, pool, out);
    if (next >= queue.size()) return out;
    const Job* blocked = queue[next];
    if (blocked->spec.nodes == 0) return out;

    // Would requeuing lower-priority running jobs free enough hosts for the
    // blocked head? All-or-nothing: partial preemption wastes completed
    // work without unblocking anything. The launch itself happens on a
    // later cycle, once the ordered requeues have been applied.
    size_t have = eligible_hosts(pool, blocked->spec);
    if (have >= blocked->spec.nodes) return out;  // selector constraint gap
    int64_t head = effective_priority(*blocked, ctx.config, ctx.now);
    std::vector<const Job*> victims = preemption_candidates(ctx, head);
    std::vector<JobId> chosen;
    for (const Job* v : victims) {
      size_t gain = 0;
      for (const NodeState& n : ctx.nodes) {
        if (!n.up || !n.has(v->id) || !n.satisfies(blocked->spec)) continue;
        if (n.free_slots() > 0) continue;  // host already counted available
        ++gain;
      }
      if (gain == 0) continue;
      chosen.push_back(v->id);
      have += gain;
      if (have >= blocked->spec.nodes) break;
    }
    if (have >= blocked->spec.nodes) out.preemptions = std::move(chosen);
    return out;
  }
};

std::vector<std::unique_ptr<SchedPolicy>>& registry() {
  static std::vector<std::unique_ptr<SchedPolicy>> policies;
  return policies;
}

void ensure_builtins() {
  static bool done = false;
  if (done) return;
  done = true;
  registry().push_back(std::make_unique<FifoPolicy>());
  registry().push_back(std::make_unique<BackfillPolicy>());
  registry().push_back(std::make_unique<PriorityPolicy>());
  registry().push_back(std::make_unique<PreemptPolicy>());
}

}  // namespace

const SchedPolicy* find_sched_policy(std::string_view name) {
  ensure_builtins();
  for (const auto& p : registry()) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

void register_sched_policy(std::unique_ptr<SchedPolicy> policy) {
  ensure_builtins();
  registry().push_back(std::move(policy));
}

std::vector<std::string> sched_policy_names() {
  ensure_builtins();
  std::vector<std::string> names;
  for (const auto& p : registry()) names.emplace_back(p->name());
  return names;
}

}  // namespace pbs
