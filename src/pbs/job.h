// PBS job model: job specification, runtime record, and the PBS state
// machine (TORQUE-compatible states Q/H/W/R/E/C).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"
#include "sim/time.h"

namespace pbs {

using JobId = uint64_t;
constexpr JobId kInvalidJob = 0;

/// PBS job states (subset of TORQUE's qstat letters).
enum class JobState : uint8_t {
  kQueued = 0,     ///< Q - eligible to run
  kHeld = 1,       ///< H - user/operator hold
  kWaiting = 2,    ///< W - waiting for its execution window
  kRunning = 3,    ///< R - started on a mom
  kExiting = 4,    ///< E - finishing up
  kComplete = 5,   ///< C - done (also covers cancelled)
};

std::string_view to_string(JobState s);
char state_letter(JobState s);

/// What the user submits (the qsub arguments + script).
struct JobSpec {
  std::string name = "job";
  std::string user = "user";
  /// Destination queue (qsub -q). The PBS server itself treats every queue
  /// alike (single-queue semantics, as the paper's testbed); the federation
  /// layer routes submits to the shard whose queue globs match.
  std::string queue = "batch";
  uint32_t nodes = 1;           ///< requested node count
  sim::Duration walltime = sim::minutes(10);  ///< requested limit
  sim::Duration run_time = sim::seconds(1);   ///< actual (simulated) runtime
  int32_t priority = 0;
  /// Replication factor: dispatch to `replicas` disjoint node sets;
  /// first-to-finish wins and the losers are reaped. 1 = the paper's
  /// unreplicated compute plane.
  uint32_t replicas = 1;
  std::string script;           ///< payload carried for realism
  /// Node type / feature requests (heterogeneous clusters). Empty = any
  /// node; features are conjunctive ("gpu" AND "bigmem").
  std::string node_type;
  std::vector<std::string> features;
  /// Job-array request (qsub -t 0-(N-1)): the server expands the submit
  /// into `array_count` sub-jobs with consecutive ids and ranks, all
  /// through the ordered stream. 0/1 = plain single job.
  uint32_t array_count = 0;
  /// Sub-job's index within its array; -1 on anything that is not an
  /// expanded array member.
  int32_t array_index = -1;
};

/// Server-side runtime record.
struct Job {
  JobId id = kInvalidJob;
  JobSpec spec;
  JobState state = JobState::kQueued;
  sim::Time submit_time{0};
  sim::Time start_time{0};
  sim::Time end_time{0};
  int32_t exit_code = 0;
  bool cancelled = false;
  uint64_t queue_rank = 0;   ///< FIFO position (submission order)
  sim::HostId exec_host = sim::kInvalidHost;  ///< mom host while running
  /// Mother-superior hosts of every live replica (exec_host is the first).
  /// Shrinks as replicas fail or are reaped; empty once the job completes.
  std::vector<sim::HostId> replica_hosts;

  bool terminal() const { return state == JobState::kComplete; }
  bool active() const {
    return state == JobState::kRunning || state == JobState::kExiting;
  }
};

/// "17.cluster" style PBS job id string.
std::string job_id_string(JobId id, const std::string& server_suffix);

void encode_job_spec(net::Writer& w, const JobSpec& spec);
JobSpec decode_job_spec(net::Reader& r);

void encode_job(net::Writer& w, const Job& job);
Job decode_job(net::Reader& r);

}  // namespace pbs
