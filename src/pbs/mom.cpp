#include "pbs/mom.h"

#include "sim/calibration.h"
#include "util/logging.h"

namespace pbs {

MomConfig mom_config_from(const sim::Calibration& cal) {
  MomConfig cfg;
  cfg.launch_proc = cal.pbs_mom_launch;
  return cfg;
}

Mom::Mom(sim::Network& net, sim::HostId host, MomConfig config)
    : net::RpcNode(net, host, config.port, "pbs_mom@" + net.host(host).name()),
      config_(std::move(config)) {}

void Mom::on_request(sim::Payload request, sim::Endpoint from,
                     uint64_t rpc_id) {
  Op op;
  try {
    op = peek_op(request);
  } catch (const net::WireError&) {
    return;
  }
  sim::Duration cost =
      op == Op::kMomPing ? config_.ping_proc : config_.launch_proc;
  execute(cost, [this, request = std::move(request), from, rpc_id, op] {
    try {
      switch (op) {
        case Op::kMomLaunch:
          handle_launch(decode_mom_launch(request), from, rpc_id);
          break;
        case Op::kMomKill:
          handle_kill(decode_mom_kill(request), from, rpc_id);
          break;
        case Op::kMomEmuComplete:
          handle_emu_complete(decode_mom_emu_complete(request), from, rpc_id);
          break;
        case Op::kMomPing:
          handle_ping(decode_mom_ping(request), from, rpc_id);
          break;
        default:
          respond(from, rpc_id,
                  encode_response(SimpleResponse{Status::kUnsupported}));
      }
    } catch (const net::WireError& e) {
      JLOG(kWarn, "mom") << name() << ": bad request: " << e.what();
    }
  });
}

void Mom::handle_launch(MomLaunchRequest req, sim::Endpoint from,
                        uint64_t rpc_id) {
  JobId id = req.job.id;
  auto [it, inserted] = instances_.try_emplace(id);
  Instance& inst = it->second;
  if (inserted) inst.job = req.job;
  inst.requesters.insert(req.server_host);

  if (inst.state == InstanceState::kComplete) {
    // Late launch attempt for a finished job: emulate and report at once.
    ++launches_emulated_;
    respond(from, rpc_id,
            encode_response(MomLaunchResponse{Status::kOk, true}));
    report_to(req.server_host, inst, 0);
    return;
  }
  if (inst.state == InstanceState::kRunning) {
    // Attach: the requester gets its report when the instance completes.
    ++launches_emulated_;
    respond(from, rpc_id,
            encode_response(MomLaunchResponse{Status::kOk, true}));
    return;
  }

  // kStarting: first decision for this launch attempt. kEmulated: arbitrate
  // again -- a failover (mutex revoke) may have freed the launch slot this
  // instance lost earlier, in which case the prologue now says run.
  if (!prologue_) {
    respond(from, rpc_id,
            encode_response(MomLaunchResponse{Status::kOk, false}));
    if (inst.state != InstanceState::kRunning) start_job(inst);
    return;
  }
  run_prologue(id, req.server_host, from, rpc_id);
}

void Mom::run_prologue(JobId id, sim::HostId requester, sim::Endpoint from,
                       uint64_t rpc_id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return;
  prologue_(it->second.job, requester,
            [this, id, requester, from, rpc_id](PrologueDecision decision) {
              auto it2 = instances_.find(id);
              if (it2 == instances_.end()) return;
              Instance& inst = it2->second;
              switch (decision) {
                case PrologueDecision::kRun:
                  respond(from, rpc_id,
                          encode_response(MomLaunchResponse{Status::kOk, false}));
                  if (inst.state == InstanceState::kStarting ||
                      inst.state == InstanceState::kEmulated) {
                    start_job(inst);
                  }
                  break;
                case PrologueDecision::kEmulate:
                  ++launches_emulated_;
                  respond(from, rpc_id,
                          encode_response(MomLaunchResponse{Status::kOk, true}));
                  if (inst.state == InstanceState::kStarting)
                    inst.state = InstanceState::kEmulated;
                  if (inst.state == InstanceState::kComplete)
                    report_to(requester, inst, 0);
                  break;
                case PrologueDecision::kAbort:
                  inst.requesters.erase(requester);
                  respond(from, rpc_id,
                          encode_response(
                              MomLaunchResponse{Status::kInternal, false}));
                  break;
              }
            });
}

void Mom::start_job(Instance& inst) {
  inst.state = InstanceState::kRunning;
  inst.real_run_here = true;
  inst.start_time = sim().now();
  ++jobs_executed_;
  ++real_run_log_[inst.job.id];
  JLOG(kDebug, "mom") << name() << ": job " << inst.job.id << " started ("
                      << inst.job.spec.run_time.millis() << " ms)";
  JobId id = inst.job.id;
  inst.run_timer = set_timer(inst.job.spec.run_time, [this, id] {
    finish_job(id, /*exit_code=*/0, /*cancelled=*/false);
  });
}

void Mom::finish_job(JobId id, int32_t exit_code, bool cancelled,
                     bool quiet) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (inst.state == InstanceState::kComplete) return;
  if (inst.run_timer != 0) {
    cancel_timer(inst.run_timer);
    inst.run_timer = 0;
  }
  if (quiet) {
    // Preemption kill: drop the instance without any completion report, and
    // without leaving a kComplete record that a relaunch of the requeued job
    // would attach to (the late-launch path would echo the stale report).
    JLOG(kDebug, "mom") << name() << ": job " << id << " preempted (quiet)";
    if (inst.real_run_here) ++quiet_kill_log_[id];
    instances_.erase(it);
    return;
  }
  bool ran_here = inst.real_run_here;
  inst.state = InstanceState::kComplete;
  inst.exit_code = exit_code;
  inst.cancelled = cancelled;
  inst.end_time = sim().now();
  JLOG(kDebug, "mom") << name() << ": job " << id << " finished (exit "
                      << exit_code << ")";
  auto fan_out = [this, id] {
    auto it2 = instances_.find(id);
    if (it2 == instances_.end()) return;
    for (sim::HostId server : it2->second.requesters)
      report_to(server, it2->second, 0);
  };
  if (epilogue_ && ran_here) {
    epilogue_(inst.job, exit_code, fan_out);
  } else {
    fan_out();
  }
}

void Mom::report_to(sim::HostId server, const Instance& inst, int attempt) {
  JobReport report;
  report.job_id = inst.job.id;
  report.exit_code = inst.exit_code;
  report.cancelled = inst.cancelled;
  report.start_time = inst.start_time;
  report.end_time = inst.end_time;
  report.mom_host = host_id();
  ++reports_sent_;
  JobId id = inst.job.id;
  net::CallOptions options;
  options.timeout = config_.report_retry;
  call(sim::Endpoint{server, config_.server_port}, encode_request(report),
       [this, server, id, attempt](std::optional<sim::Payload> resp) {
         if (resp.has_value()) return;  // acked
         // The head did not answer. With the quirk the mom keeps the report
         // pending until the head returns to service (the paper's observed
         // TORQUE behaviour); fixed behaviour gives up after a few tries.
         bool keep_trying = config_.quirk_hold_on_head_failure ||
                            attempt + 1 < config_.report_attempts;
         if (!keep_trying) {
           JLOG(kDebug, "mom") << name() << ": dropping report for job " << id
                               << " to dead head " << server;
           return;
         }
         auto it = instances_.find(id);
         if (it == instances_.end()) return;
         set_timer(config_.report_retry, [this, server, id, attempt] {
           auto it2 = instances_.find(id);
           if (it2 == instances_.end()) return;
           report_to(server, it2->second, attempt + 1);
         });
       },
       options);
}

void Mom::handle_kill(const MomKillRequest& req, sim::Endpoint from,
                      uint64_t rpc_id) {
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  auto it = instances_.find(req.job_id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (inst.state == InstanceState::kRunning ||
      inst.state == InstanceState::kEmulated ||
      inst.state == InstanceState::kStarting) {
    // 256 + SIGTERM, the TORQUE convention for signal death.
    finish_job(req.job_id, 271, /*cancelled=*/true, req.quiet);
  } else if (inst.state == InstanceState::kComplete && req.quiet) {
    // Preempt raced with completion: still scrub the record so a relaunch
    // of the requeued job does not attach to the stale instance.
    if (inst.real_run_here) ++quiet_kill_log_[req.job_id];
    instances_.erase(it);
  }
}

void Mom::handle_ping(const MomPingRequest& req, sim::Endpoint from,
                      uint64_t rpc_id) {
  MomPingResponse resp;
  resp.seq = req.seq;
  for (const auto& [id, inst] : instances_) {
    (void)id;
    if (inst.state == InstanceState::kRunning) ++resp.running_jobs;
  }
  respond(from, rpc_id, encode_response(resp));
}

void Mom::handle_emu_complete(const MomEmuCompleteRequest& req,
                              sim::Endpoint from, uint64_t rpc_id) {
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  auto it = instances_.find(req.job_id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (inst.state == InstanceState::kEmulated ||
      inst.state == InstanceState::kStarting) {
    finish_job(req.job_id, req.exit_code, /*cancelled=*/false);
  }
}

void Mom::on_crash() {
  net::RpcNode::on_crash();
  // Running jobs die with the node. real_run_log_ is deliberately kept: it
  // models the mom's on-disk job records, which is how campaigns verify the
  // exactly-r invariant across crashes.
  instances_.clear();
}

}  // namespace pbs
