// Built-in NodeSelector plugins + the selector registry.
//
// "firstfit" reproduces the historical monolithic scheduler's placement
// byte-for-byte: eligible free hosts in node-table order, replica sets
// carved off the front. "replica" keeps the primary set at the front but
// carves the extra anti-affinity sets off the *back* of the pool, so the
// contiguous front stays free for backfill to flow around the replicas.
#include <algorithm>
#include <memory>

#include "pbs/scheduler.h"

namespace pbs {
namespace {

/// How many replicas of a `width`-node job fit in `eligible` hosts:
/// at least 1 (the job itself), at most the requested factor. Matches the
/// historical scheduler exactly.
uint32_t fit_replicas(uint32_t requested, uint32_t width, size_t eligible) {
  uint32_t want = requested == 0 ? 1 : requested;
  if (width == 0) return 1;
  uint32_t fit = static_cast<uint32_t>(eligible / width);
  if (fit < 1) fit = 1;
  return std::min(want, fit);
}

/// Pool indices of hosts with a free slot satisfying `spec`, in pool order.
std::vector<size_t> eligible_indices(const FreePool& pool,
                                     const JobSpec& spec) {
  std::vector<size_t> out;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (pool[i].free > 0 && pool[i].node->satisfies(spec)) out.push_back(i);
  }
  return out;
}

std::vector<sim::HostId> take(FreePool& pool, const std::vector<size_t>& ix,
                              size_t begin, size_t width) {
  std::vector<sim::HostId> set;
  set.reserve(width);
  for (size_t k = 0; k < width; ++k) {
    size_t i = ix[begin + k];
    set.push_back(pool[i].node->host);
    --pool[i].free;
  }
  return set;
}

class FirstFitSelector : public NodeSelector {
 public:
  std::string_view name() const override { return "firstfit"; }

  std::vector<std::vector<sim::HostId>> select(FreePool& pool,
                                               const JobSpec& spec,
                                               bool replicate) const override {
    // A zero-width request takes no nodes; one empty set keeps the legacy
    // behaviour (the server's launch() drops it, the queue moves on).
    if (spec.nodes == 0) return {{}};
    std::vector<size_t> ix = eligible_indices(pool, spec);
    size_t width = spec.nodes;
    if (ix.size() < width) return {};
    uint32_t r =
        replicate ? fit_replicas(spec.replicas, spec.nodes, ix.size()) : 1;
    std::vector<std::vector<sim::HostId>> sets;
    sets.reserve(r);
    for (uint32_t k = 0; k < r; ++k)
      sets.push_back(take(pool, ix, static_cast<size_t>(k) * width, width));
    return sets;
  }
};

class ReplicaSelector : public NodeSelector {
 public:
  std::string_view name() const override { return "replica"; }

  std::vector<std::vector<sim::HostId>> select(FreePool& pool,
                                               const JobSpec& spec,
                                               bool replicate) const override {
    if (spec.nodes == 0) return {{}};
    std::vector<size_t> ix = eligible_indices(pool, spec);
    size_t width = spec.nodes;
    if (ix.size() < width) return {};
    uint32_t r =
        replicate ? fit_replicas(spec.replicas, spec.nodes, ix.size()) : 1;
    std::vector<std::vector<sim::HostId>> sets;
    sets.reserve(r);
    sets.push_back(take(pool, ix, 0, width));
    // Extra replica sets from the back of the pool: disjoint by
    // construction, and they leave the low-index hosts contiguous so
    // backfill packs around the replicas instead of between them.
    size_t tail = ix.size();
    for (uint32_t k = 1; k < r; ++k) {
      tail -= width;
      sets.push_back(take(pool, ix, tail, width));
    }
    return sets;
  }
};

std::vector<std::unique_ptr<NodeSelector>>& registry() {
  static std::vector<std::unique_ptr<NodeSelector>> selectors;
  return selectors;
}

void ensure_builtins() {
  static bool done = false;
  if (done) return;
  done = true;
  registry().push_back(std::make_unique<FirstFitSelector>());
  registry().push_back(std::make_unique<ReplicaSelector>());
}

}  // namespace

const NodeSelector* find_node_selector(std::string_view name) {
  ensure_builtins();
  for (const auto& s : registry()) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

void register_node_selector(std::unique_ptr<NodeSelector> selector) {
  ensure_builtins();
  registry().push_back(std::move(selector));
}

std::vector<std::string> node_selector_names() {
  ensure_builtins();
  std::vector<std::string> names;
  for (const auto& s : registry()) names.emplace_back(s->name());
  return names;
}

}  // namespace pbs
