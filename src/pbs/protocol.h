// PBS service-interface wire protocol.
//
// This is the interface JOSHUA wraps (external replication works purely at
// this boundary, exactly as the paper wraps TORQUE's PBS interface).
// Client->server ops mirror the PBS user commands; server<->mom ops carry
// job launch/kill/completion traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pbs/job.h"

namespace pbs {

enum class Op : uint8_t {
  // client -> server (PBS user commands)
  kSubmit = 1,   ///< qsub
  kStat = 2,     ///< qstat
  kDelete = 3,   ///< qdel
  kSignal = 4,   ///< qsig
  kHold = 5,     ///< qhold
  kRelease = 6,  ///< qrls
  /// Requeue a running job so a higher-priority one can take its nodes.
  /// Never issued by clients: JOSHUA injects it after an ordered kPreempt
  /// group op so every head requeues the victim at the same stream point.
  kPreempt = 7,
  // management (state transfer support)
  kDumpState = 10,
  kLoadState = 11,
  // server -> mom
  kMomLaunch = 20,
  kMomKill = 21,
  kMomEmuComplete = 22,  ///< head tells mom an emulated launch finished
  kMomPing = 23,         ///< heartbeat probe (server -> mom)
  // mom -> server
  kJobReport = 30,  ///< job completion / statistics report
};

/// Error codes roughly matching PBS exit semantics.
enum class Status : uint8_t {
  kOk = 0,
  kUnknownJob = 1,
  kInvalidState = 2,
  kUnsupported = 3,
  kServerBusy = 4,
  kInternal = 5,
};

std::string_view to_string(Status s);

struct SubmitRequest {
  JobSpec spec;
  /// Normally kInvalidJob (the server numbers the job). State-transfer
  /// replay sets the original id so a joining head rebuilds an identical
  /// queue (the paper copies the server's sequence state with its config).
  JobId forced_id = kInvalidJob;
};
struct SubmitResponse {
  Status status = Status::kOk;
  /// First id assigned; an array submit owns [job_id, job_id + count).
  JobId job_id = kInvalidJob;
  uint32_t count = 1;  ///< sub-jobs created (1 for a plain submit)
};

struct StatRequest {
  JobId job_id = kInvalidJob;  ///< 0 = all jobs
  bool include_complete = true;
};
struct StatResponse {
  Status status = Status::kOk;
  std::vector<Job> jobs;
};

struct DeleteRequest {
  JobId job_id = kInvalidJob;
};
struct SimpleResponse {
  Status status = Status::kOk;
};

struct SignalRequest {
  JobId job_id = kInvalidJob;
  int32_t signal = 15;  ///< SIGTERM by default
};

struct HoldRequest {
  JobId job_id = kInvalidJob;
};
struct ReleaseRequest {
  JobId job_id = kInvalidJob;
};

struct DumpStateRequest {};
struct DumpStateResponse {
  Status status = Status::kOk;
  sim::Payload state;
};
struct LoadStateRequest {
  sim::Payload state;
};

struct MomLaunchRequest {
  Job job;                 ///< full record (mom needs spec + id)
  sim::HostId server_host = sim::kInvalidHost;  ///< requesting head
};
struct MomLaunchResponse {
  Status status = Status::kOk;
  bool emulated = false;   ///< launch attached to an existing instance
};

struct MomKillRequest {
  JobId job_id = kInvalidJob;
  sim::HostId server_host = sim::kInvalidHost;
  /// Preemption kill: terminate the instance without emitting a completion
  /// report. The requeued job must not be completed by its own death echo;
  /// every head already knows about the requeue from the ordered stream.
  bool quiet = false;
};

struct PreemptRequest {
  JobId job_id = kInvalidJob;
};

struct MomEmuCompleteRequest {
  JobId job_id = kInvalidJob;
  int32_t exit_code = 0;
};

struct MomPingRequest {
  sim::HostId server_host = sim::kInvalidHost;
  uint64_t seq = 0;  ///< heartbeat sequence number (echoed back)
};
struct MomPingResponse {
  Status status = Status::kOk;
  uint64_t seq = 0;
  uint32_t running_jobs = 0;  ///< instances currently on this mom
};

struct JobReport {
  JobId job_id = kInvalidJob;
  int32_t exit_code = 0;
  bool cancelled = false;
  sim::Time start_time{0};
  sim::Time end_time{0};
  sim::HostId mom_host = sim::kInvalidHost;
};

// -- framing -------------------------------------------------------------
// Request payload: [u8 op][body]. Response payload: op-specific body.

Op peek_op(const sim::Payload& buf);

sim::Payload encode_request(const SubmitRequest&);
sim::Payload encode_request(const StatRequest&);
sim::Payload encode_request(const DeleteRequest&);
sim::Payload encode_request(const SignalRequest&);
sim::Payload encode_request(const HoldRequest&);
sim::Payload encode_request(const ReleaseRequest&);
sim::Payload encode_request(const PreemptRequest&);
sim::Payload encode_request(const DumpStateRequest&);
sim::Payload encode_request(const LoadStateRequest&);
sim::Payload encode_request(const MomLaunchRequest&);
sim::Payload encode_request(const MomKillRequest&);
sim::Payload encode_request(const MomEmuCompleteRequest&);
sim::Payload encode_request(const MomPingRequest&);
sim::Payload encode_request(const JobReport&);

SubmitRequest decode_submit(const sim::Payload&);
StatRequest decode_stat(const sim::Payload&);
DeleteRequest decode_delete(const sim::Payload&);
SignalRequest decode_signal(const sim::Payload&);
HoldRequest decode_hold(const sim::Payload&);
ReleaseRequest decode_release(const sim::Payload&);
PreemptRequest decode_preempt(const sim::Payload&);
LoadStateRequest decode_load_state(const sim::Payload&);
MomLaunchRequest decode_mom_launch(const sim::Payload&);
MomKillRequest decode_mom_kill(const sim::Payload&);
MomEmuCompleteRequest decode_mom_emu_complete(const sim::Payload&);
MomPingRequest decode_mom_ping(const sim::Payload&);
JobReport decode_job_report(const sim::Payload&);

sim::Payload encode_response(const SubmitResponse&);
sim::Payload encode_response(const StatResponse&);
sim::Payload encode_response(const SimpleResponse&);
sim::Payload encode_response(const DumpStateResponse&);
sim::Payload encode_response(const MomLaunchResponse&);
sim::Payload encode_response(const MomPingResponse&);

SubmitResponse decode_submit_response(const sim::Payload&);
StatResponse decode_stat_response(const sim::Payload&);
SimpleResponse decode_simple_response(const sim::Payload&);
DumpStateResponse decode_dump_state_response(const sim::Payload&);
MomLaunchResponse decode_mom_launch_response(const sim::Payload&);
MomPingResponse decode_mom_ping_response(const sim::Payload&);

}  // namespace pbs
