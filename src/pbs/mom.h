// The PBS mom: the per-compute-node execution daemon.
//
// Supports the TORQUE 2.0p1 multi-server feature the paper relies on: one
// mom serves every active head node's PBS server and sends job statistics
// reports to each requesting head. A pluggable prologue hook runs before a
// job starts -- JOSHUA installs its jmutex distributed mutual exclusion
// there, so a job asked for by N heads starts exactly once while the other
// N-1 launch attempts are emulated.
//
// The paper reports a TORQUE deficiency: moms did not "simply ignore a
// failed head node, but rather kept the current job in running status until
// it returned to service". MomConfig::quirk_hold_on_head_failure reproduces
// that behaviour (reports to a dead head are retried until it returns);
// the default is the fixed behaviour the TORQUE developers were asked for.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "net/rpc.h"
#include "pbs/protocol.h"

namespace sim {
struct Calibration;
}

namespace pbs {

enum class PrologueDecision : uint8_t {
  kRun = 0,      ///< this launch attempt really executes the job
  kEmulate = 1,  ///< another attempt runs it; report on its completion
  kAbort = 2,    ///< refuse this launch attempt
};

struct MomConfig {
  sim::Port port = 15002;
  sim::Port server_port = 15001;
  sim::Duration launch_proc = sim::msec(25);
  sim::Duration ping_proc = sim::msec(1);  ///< heartbeat answer cost
  sim::Duration report_retry = sim::seconds(2);
  int report_attempts = 3;  ///< per report, when the quirk is off
  bool quirk_hold_on_head_failure = false;
};

MomConfig mom_config_from(const sim::Calibration& cal);

class Mom : public net::RpcNode {
 public:
  /// done(decision) may be called synchronously or after network round
  /// trips (jmutex talks to the head group).
  using PrologueHook =
      std::function<void(const Job& job, sim::HostId requesting_server,
                         std::function<void(PrologueDecision)> done)>;

  Mom(sim::Network& net, sim::HostId host, MomConfig config);

  /// Install the job-start prologue (JOSHUA's jmutex). Without a hook every
  /// launch request executes (plain single-head TORQUE behaviour).
  void set_prologue(PrologueHook hook) { prologue_ = std::move(hook); }

  /// Epilogue hook (JOSHUA's jdone): runs when a job the mom really executed
  /// finishes, before completion reports go out. `done` continues the
  /// report fan-out; it may be called after network round trips.
  using EpilogueHook = std::function<void(const Job& job, int32_t exit_code,
                                          std::function<void()> done)>;
  void set_epilogue(EpilogueHook hook) { epilogue_ = std::move(hook); }

  // -- introspection ---------------------------------------------------------
  enum class InstanceState : uint8_t { kStarting, kRunning, kEmulated, kComplete };
  struct Instance {
    Job job;
    InstanceState state = InstanceState::kStarting;
    std::set<sim::HostId> requesters;
    int32_t exit_code = 0;
    bool cancelled = false;
    sim::Time start_time{0};
    sim::Time end_time{0};
    sim::TimerId run_timer = 0;
    bool real_run_here = false;  ///< this mom actually executes the job
  };
  const std::map<JobId, Instance>& instances() const { return instances_; }
  uint64_t jobs_executed() const { return jobs_executed_; }
  uint64_t launches_emulated() const { return launches_emulated_; }
  uint64_t reports_sent() const { return reports_sent_; }
  /// Per-job count of real executions on this node. Modelled as the mom's
  /// on-disk job records: it survives crashes (unlike instances_), so
  /// campaigns can check the exactly-r invariant across node failures.
  const std::map<JobId, uint32_t>& real_run_log() const {
    return real_run_log_;
  }
  /// Per-job count of real executions on this node that a quiet kill
  /// terminated (preemption, or fencing after a false-positive failure
  /// declaration). Same durability as real_run_log_: each entry justifies
  /// exactly one relaunch in the exactly-r accounting, regardless of which
  /// heads survive to remember ordering the preempt/revoke.
  const std::map<JobId, uint32_t>& quiet_kill_log() const {
    return quiet_kill_log_;
  }

  // net::RpcNode:
  void on_request(sim::Payload request, sim::Endpoint from,
                  uint64_t rpc_id) override;
  void on_crash() override;

 private:
  void handle_launch(MomLaunchRequest req, sim::Endpoint from,
                     uint64_t rpc_id);
  void handle_kill(const MomKillRequest& req, sim::Endpoint from,
                   uint64_t rpc_id);
  void handle_emu_complete(const MomEmuCompleteRequest& req,
                           sim::Endpoint from, uint64_t rpc_id);
  void handle_ping(const MomPingRequest& req, sim::Endpoint from,
                   uint64_t rpc_id);
  void run_prologue(JobId id, sim::HostId requester, sim::Endpoint from,
                    uint64_t rpc_id);

  void start_job(Instance& inst);
  /// quiet: terminate without fanning completion reports out (preemption
  /// kills -- the requeue is already known to every head via the ordered
  /// stream, a death echo would complete the requeued job).
  void finish_job(JobId id, int32_t exit_code, bool cancelled,
                  bool quiet = false);
  void report_to(sim::HostId server, const Instance& inst, int attempt);

  MomConfig config_;
  PrologueHook prologue_;
  EpilogueHook epilogue_;
  std::map<JobId, Instance> instances_;
  std::map<JobId, uint32_t> real_run_log_;  ///< survives crashes (job records)
  std::map<JobId, uint32_t> quiet_kill_log_;  ///< ditto, quiet real kills
  uint64_t jobs_executed_ = 0;
  uint64_t launches_emulated_ = 0;
  uint64_t reports_sent_ = 0;
};

}  // namespace pbs
