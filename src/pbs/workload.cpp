#include "pbs/workload.h"

#include <algorithm>

#include "util/rng.h"

namespace pbs {

std::string_view to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kSteady: return "steady";
    case TraceKind::kBursty: return "bursty";
    case TraceKind::kStatFlood: return "statflood";
    case TraceKind::kMassCancel: return "masscancel";
    case TraceKind::kMixedPriority: return "mixedpriority";
  }
  return "?";
}

namespace {

sim::Duration uniform_duration(jutil::Rng& rng, sim::Duration lo,
                               sim::Duration hi) {
  if (hi.us <= lo.us) return lo;
  return sim::Duration{rng.uniform(lo.us, hi.us)};
}

JobSpec draw_spec(jutil::Rng& rng, const WorkloadProfile& p, int64_t index) {
  JobSpec spec;
  spec.name = "trace-" + std::to_string(index);
  spec.nodes = static_cast<uint32_t>(
      rng.uniform(p.min_nodes, std::max(p.min_nodes, p.max_nodes)));
  spec.run_time = uniform_duration(rng, p.min_run, p.max_run);
  spec.walltime = sim::Duration{static_cast<int64_t>(
      static_cast<double>(spec.run_time.us) * p.walltime_factor)};
  if (p.kind == TraceKind::kMixedPriority && p.priority_levels > 1)
    spec.priority = static_cast<int32_t>(rng.next_u64(p.priority_levels));
  if (p.array_fraction > 0.0 && rng.chance(p.array_fraction) &&
      p.max_array > 1) {
    spec.array_count = static_cast<uint32_t>(rng.uniform(2, p.max_array));
  }
  return spec;
}

sim::Duration next_gap(jutil::Rng& rng, sim::Duration mean) {
  double gap = rng.exponential(static_cast<double>(std::max<int64_t>(
      mean.us, 1)));
  return sim::Duration{std::max<int64_t>(1, static_cast<int64_t>(gap))};
}

}  // namespace

std::vector<TraceOp> make_trace(const WorkloadProfile& profile,
                                uint64_t seed) {
  jutil::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<TraceOp> ops;
  int64_t submits = 0;
  sim::Duration t = sim::kDurationZero;

  auto submit_at = [&](sim::Duration at) {
    TraceOp op;
    op.kind = TraceOp::Kind::kSubmit;
    op.at = at;
    op.spec = draw_spec(rng, profile, submits);
    op.target = submits++;
    ops.push_back(std::move(op));
  };

  switch (profile.kind) {
    case TraceKind::kSteady:
    case TraceKind::kMixedPriority: {
      while (t.us < profile.duration.us) {
        submit_at(t);
        t = t + next_gap(rng, profile.mean_interarrival);
      }
      break;
    }
    case TraceKind::kBursty: {
      // Submit storms: `burst_size` near-simultaneous submits (spread over a
      // few mean inter-arrivals), then a quiet gap. Stresses queue depth and
      // gives backfill real holes to fill.
      while (t.us < profile.duration.us) {
        sim::Duration storm = t;
        for (uint32_t i = 0; i < profile.burst_size; ++i) {
          submit_at(storm);
          storm = storm + next_gap(rng, sim::Duration{std::max<int64_t>(
                                       profile.mean_interarrival.us / 8, 1)});
        }
        t = storm + profile.burst_gap;
      }
      break;
    }
    case TraceKind::kStatFlood: {
      while (t.us < profile.duration.us) {
        submit_at(t);
        // A flood of reads follows each submit (the "millions of users
        // watching qstat" axis); each stats a random earlier job.
        sim::Duration read_t = t;
        for (uint32_t i = 0; i < profile.stats_per_submit; ++i) {
          read_t = read_t + next_gap(rng, sim::Duration{std::max<int64_t>(
                                         profile.mean_interarrival.us / 16,
                                         1)});
          TraceOp op;
          op.kind = TraceOp::Kind::kStat;
          op.at = read_t;
          op.target = static_cast<int64_t>(rng.next_u64(
              static_cast<uint64_t>(submits)));
          ops.push_back(std::move(op));
        }
        t = t + next_gap(rng, profile.mean_interarrival);
      }
      break;
    }
    case TraceKind::kMassCancel: {
      // Waves: submit a batch, then jdel a fraction of everything still
      // presumed live, repeatedly. Stresses delete-path ordering and the
      // command-log compaction.
      std::vector<int64_t> live;
      while (t.us < profile.duration.us) {
        for (uint32_t i = 0; i < profile.burst_size &&
                             t.us < profile.duration.us;
             ++i) {
          live.push_back(submits);
          submit_at(t);
          t = t + next_gap(rng, profile.mean_interarrival);
        }
        size_t kill = static_cast<size_t>(
            static_cast<double>(live.size()) * profile.cancel_fraction);
        for (size_t i = 0; i < kill && !live.empty(); ++i) {
          size_t pick = rng.next_u64(live.size());
          TraceOp op;
          op.kind = TraceOp::Kind::kCancel;
          op.at = t;
          op.target = live[pick];
          ops.push_back(std::move(op));
          live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
          t = t + next_gap(rng, sim::Duration{std::max<int64_t>(
                               profile.mean_interarrival.us / 4, 1)});
        }
      }
      break;
    }
  }

  std::stable_sort(ops.begin(), ops.end(),
                   [](const TraceOp& a, const TraceOp& b) {
                     return a.at.us < b.at.us;
                   });
  return ops;
}

}  // namespace pbs
