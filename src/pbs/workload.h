// Trace-driven workload engine: deterministic synthetic traces of PBS user
// activity (submits, stat read floods, mass cancels, mixed priorities).
//
// A trace is a pure function of (profile, seed): benches, longevity
// campaigns and the scheduler conformance suite all replay the same
// operation sequences, so a policy comparison measures the policy and a
// cross-head divergence can only come from the system under test.
#pragma once

#include <cstdint>
#include <vector>

#include "pbs/job.h"

namespace pbs {

/// Shapes of synthetic user behaviour.
enum class TraceKind : uint8_t {
  kSteady = 0,        ///< Poisson-ish submit arrivals, uniform widths
  kBursty = 1,        ///< storms of submits separated by quiet gaps
  kStatFlood = 2,     ///< steady submits + a heavy jstat read flood
  kMassCancel = 3,    ///< submits followed by waves of jdel
  kMixedPriority = 4, ///< steady arrivals over several priority levels
};

std::string_view to_string(TraceKind k);

/// One operation of a trace, to be issued `at` after campaign start.
struct TraceOp {
  enum class Kind : uint8_t { kSubmit = 0, kStat = 1, kCancel = 2 };
  Kind kind = Kind::kSubmit;
  sim::Duration at = sim::kDurationZero;
  JobSpec spec;        ///< kSubmit only
  /// kCancel/kStat: index into the trace's submit sequence (the issuer maps
  /// it to the real job id the submit produced). kStat with no target stats
  /// the whole queue.
  int64_t target = -1;
};

struct WorkloadProfile {
  TraceKind kind = TraceKind::kSteady;
  sim::Duration duration = sim::minutes(10);
  /// Mean submit inter-arrival in the active phases.
  sim::Duration mean_interarrival = sim::seconds(20);
  /// Job shape ranges (uniform).
  uint32_t min_nodes = 1;
  uint32_t max_nodes = 4;
  sim::Duration min_run = sim::seconds(30);
  sim::Duration max_run = sim::minutes(5);
  /// Walltime estimate = run_time * walltime_factor (backfill plans against
  /// the estimate, not the truth, as real sites do).
  double walltime_factor = 1.5;
  /// Priority levels 0..priority_levels-1, drawn uniformly (kMixedPriority;
  /// other kinds submit at priority 0).
  uint32_t priority_levels = 3;
  /// Fraction of submits that are job arrays, and their width range.
  double array_fraction = 0.0;
  uint32_t max_array = 8;
  /// kBursty: storm size and the quiet gap between storms.
  uint32_t burst_size = 12;
  sim::Duration burst_gap = sim::minutes(2);
  /// kStatFlood: reads per submit.
  uint32_t stats_per_submit = 8;
  /// kMassCancel: fraction of submitted jobs later cancelled in waves.
  double cancel_fraction = 0.4;
};

/// Build the deterministic operation sequence for (profile, seed), sorted
/// by issue time (ties keep generation order).
std::vector<TraceOp> make_trace(const WorkloadProfile& profile, uint64_t seed);

}  // namespace pbs
