#include "pbs/server.h"

#include <algorithm>

#include "sim/calibration.h"
#include "util/logging.h"

namespace pbs {

ServerConfig server_config_from(const sim::Calibration& cal) {
  ServerConfig cfg;
  cfg.submit_proc = cal.pbs_submit_proc;
  cfg.stat_proc = cal.pbs_stat_proc;
  cfg.del_proc = cal.pbs_del_proc;
  cfg.sched_cycle_proc = cal.pbs_sched_cycle;
  return cfg;
}

Server::Server(sim::Network& net, sim::HostId host, ServerConfig config)
    : net::RpcNode(net, host, config.port,
                   "pbs_server@" + net.host(host).name()),
      config_(std::move(config)),
      scheduler_(config_.sched) {
  next_job_id_ = config_.job_id_base;
  for (const sim::Endpoint& mom : config_.moms) {
    NodeState n;
    n.host = mom.host;
    auto attrs = config_.node_attrs.find(mom.host);
    if (attrs != config_.node_attrs.end()) n.attrs = attrs->second;
    nodes_.push_back(std::move(n));
  }
  telemetry::Hub& hub = net.sim().telemetry();
  telemetry::Registry& m = hub.metrics();
  m_jobs_queued_ = m.counter("pbs.jobs_queued");
  m_jobs_launched_ = m.counter("pbs.jobs_launched");
  m_jobs_completed_ = m.counter("pbs.jobs_completed");
  m_sched_cycles_ = m.counter("pbs.sched_cycles");
  m_replicas_dispatched_ = m.counter("pbs.replicas_dispatched");
  m_replicas_reaped_ = m.counter("pbs.replicas_reaped");
  m_reports_suppressed_ = m.counter("pbs.reports_suppressed");
  m_jobs_requeued_ = m.counter("pbs.jobs_requeued");
  m_heartbeat_misses_ = m.counter("pbs.heartbeat_misses");
  m_node_failovers_ = m.counter("pbs.node_failovers");
  m_node_recoveries_ = m.counter("pbs.node_recoveries");
  m_queue_wait_ = m.histogram("pbs.queue_wait_us");
  m_failover_detect_ = m.histogram("pbs.failover_detect_us");
  m_preemptions_ = m.counter("pbs.sched.preemptions");
  m_backfilled_ = m.counter("pbs.sched.backfilled");
  m_array_expansions_ = m.counter("pbs.sched.array_expansions");
  m_utilization_ = m.gauge("pbs.sched.utilization_pct");
  m_policy_queue_wait_ = m.histogram("pbs.sched.queue_wait_us." +
                                     scheduler_.config().policy);
  tc_preempt_ = hub.trace().intern("pbs.preempt");
  tc_sched_ = hub.trace().intern("pbs.sched_cycle");
  tc_job_start_ = hub.trace().intern("pbs.job_start");
  tc_job_complete_ = hub.trace().intern("pbs.job_complete");
  tc_replica_ = hub.trace().intern("pbs.replica");
  tc_node_fail_ = hub.trace().intern("pbs.node_failover");
  recover();
  arm_checkpoint_timer();
  arm_heartbeat_timer();
  sched_timer_ = set_timer(config_.sched_interval, [this] {
    sched_timer_ = 0;
    request_sched_cycle();
  });
}

std::optional<Job> Server::find_job(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

size_t Server::count_in_state(JobState s) const {
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    if (job.state == s) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

void Server::on_request(sim::Payload request, sim::Endpoint from,
                        uint64_t rpc_id) {
  Op op;
  try {
    op = peek_op(request);
  } catch (const net::WireError&) {
    return;
  }
  sim::Duration cost;
  switch (op) {
    case Op::kSubmit: cost = config_.submit_proc; break;
    case Op::kStat: cost = config_.stat_proc; break;
    case Op::kDelete:
    case Op::kSignal:
    case Op::kHold:
    case Op::kRelease:
    case Op::kPreempt: cost = config_.del_proc; break;
    case Op::kJobReport: cost = config_.del_proc; break;
    case Op::kDumpState:
    case Op::kLoadState: cost = config_.submit_proc; break;
    default:
      respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnsupported}));
      return;
  }
  execute(cost, [this, request = std::move(request), from, rpc_id, op] {
    try {
      switch (op) {
        case Op::kSubmit:
          handle_submit(decode_submit(request), from, rpc_id);
          break;
        case Op::kStat:
          handle_stat(decode_stat(request), from, rpc_id);
          break;
        case Op::kDelete:
          handle_delete(decode_delete(request), from, rpc_id);
          break;
        case Op::kSignal:
          handle_signal(decode_signal(request), from, rpc_id);
          break;
        case Op::kHold:
          handle_hold(decode_hold(request), from, rpc_id);
          break;
        case Op::kRelease:
          handle_release(decode_release(request), from, rpc_id);
          break;
        case Op::kPreempt:
          handle_preempt(decode_preempt(request), from, rpc_id);
          break;
        case Op::kJobReport:
          handle_report(decode_job_report(request), from, rpc_id);
          break;
        case Op::kDumpState:
          handle_dump_state(from, rpc_id);
          break;
        case Op::kLoadState:
          handle_load_state(decode_load_state(request), from, rpc_id);
          break;
        default:
          break;
      }
    } catch (const net::WireError& e) {
      JLOG(kWarn, "pbs") << name() << ": bad request: " << e.what();
      respond(from, rpc_id, encode_response(SimpleResponse{Status::kInternal}));
    }
  });
}

void Server::handle_submit(const SubmitRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  // A job-array request expands into `count` sub-jobs with consecutive ids
  // and FIFO ranks. Expansion happens here, inside the ordered command, so
  // every replica derives the identical sub-job set from one submit.
  uint32_t count = req.spec.array_count > 1 ? req.spec.array_count : 1;
  if (count > config_.max_array_size) {
    respond(from, rpc_id,
            encode_response(SubmitResponse{Status::kUnsupported, kInvalidJob,
                                           0}));
    return;
  }
  JobId base;
  if (req.forced_id != kInvalidJob) {
    for (JobId id = req.forced_id; id < req.forced_id + count; ++id) {
      if (jobs_.count(id)) {
        respond(from, rpc_id,
                encode_response(SubmitResponse{Status::kInvalidState,
                                               req.forced_id, 0}));
        return;
      }
    }
    base = req.forced_id;
    next_job_id_ = std::max(next_job_id_, req.forced_id + count);
  } else {
    base = next_job_id_;
    next_job_id_ += count;
  }
  for (uint32_t i = 0; i < count; ++i) {
    Job job;
    job.id = base + i;
    job.spec = req.spec;
    if (count > 1) {
      job.spec.array_index = static_cast<int32_t>(i);
      job.spec.name = req.spec.name + "[" + std::to_string(i) + "]";
    }
    job.state = JobState::kQueued;
    job.submit_time = sim().now();
    job.queue_rank = next_rank_++;
    jobs_.emplace(job.id, std::move(job));
    ++submissions_;
  }
  m_jobs_queued_.add(count);
  if (count > 1) m_array_expansions_.add(count);
  persist();
  JLOG(kDebug, "pbs") << name() << ": queued job " << base << " ("
                      << req.spec.name << (count > 1 ? ", array" : "") << ")";
  respond(from, rpc_id,
          encode_response(SubmitResponse{Status::kOk, base, count}));
  request_sched_cycle();
}

void Server::handle_stat(const StatRequest& req, sim::Endpoint from,
                         uint64_t rpc_id) {
  StatResponse resp;
  if (req.job_id != kInvalidJob) {
    auto it = jobs_.find(req.job_id);
    if (it == jobs_.end()) {
      resp.status = Status::kUnknownJob;
    } else {
      resp.jobs.push_back(it->second);
    }
  } else {
    for (const auto& [id, job] : jobs_) {
      (void)id;
      if (!req.include_complete && job.terminal()) continue;
      resp.jobs.push_back(job);
    }
  }
  respond(from, rpc_id, encode_response(resp));
}

void Server::handle_delete(const DeleteRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.terminal()) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  if (job.state == JobState::kRunning) {
    job.state = JobState::kExiting;
    job.cancelled = true;
    if (job.replica_hosts.empty()) {
      kill_on(job.exec_host, job.id);
    } else {
      for (sim::HostId h : job.replica_hosts) kill_on(h, job.id);
    }
  } else {
    job.state = JobState::kComplete;
    job.cancelled = true;
    job.end_time = sim().now();
  }
  persist();
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  request_sched_cycle();
}

void Server::handle_signal(const SignalRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.state != JobState::kRunning) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  // SIGTERM/SIGKILL terminate; anything else is delivered but has no
  // modelled effect.
  if (req.signal == 15 || req.signal == 9) {
    job.state = JobState::kExiting;
    job.cancelled = true;
    if (job.replica_hosts.empty()) {
      kill_on(job.exec_host, job.id);
    } else {
      for (sim::HostId h : job.replica_hosts) kill_on(h, job.id);
    }
    persist();
  }
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
}

void Server::handle_hold(const HoldRequest& req, sim::Endpoint from,
                         uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.state != JobState::kQueued) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  job.state = JobState::kHeld;
  persist();
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
}

void Server::handle_release(const ReleaseRequest& req, sim::Endpoint from,
                            uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.state != JobState::kHeld) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  job.state = JobState::kQueued;
  persist();
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  request_sched_cycle();
}

void Server::handle_preempt(const PreemptRequest& req, sim::Endpoint from,
                            uint64_t rpc_id) {
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  apply_preempt(req.job_id);
}

void Server::apply_preempt(JobId id) {
  preempt_inflight_.erase(id);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.state != JobState::kRunning) return;
  // Quiet kills: the requeued job's own death must not echo back as a
  // completion report (the quiet flag drops the report at the mom).
  if (job.replica_hosts.empty()) {
    kill_on(job.exec_host, job.id, /*quiet=*/true);
  } else {
    for (sim::HostId h : job.replica_hosts) kill_on(h, job.id, /*quiet=*/true);
  }
  free_nodes_of(job.id);
  job.state = JobState::kQueued;
  job.exec_host = sim::kInvalidHost;
  job.replica_hosts.clear();
  ++preempt_counts_[id];
  ++preempts_applied_;
  m_preemptions_.add(1);
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_preempt_,
                                    job.id, 0);
  JLOG(kInfo, "pbs") << name() << ": job " << id
                     << " preempted and requeued (rank " << job.queue_rank
                     << ")";
  persist();
  request_sched_cycle();
}

uint32_t Server::preempt_count(JobId id) const {
  auto it = preempt_counts_.find(id);
  return it == preempt_counts_.end() ? 0 : it->second;
}

void Server::handle_report(const JobReport& report, sim::Endpoint from,
                           uint64_t rpc_id) {
  // Always ack: the mom retries otherwise.
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  auto it = jobs_.find(report.job_id);
  if (it == jobs_.end()) {
    JLOG(kDebug, "pbs") << name() << ": report for unknown job "
                        << report.job_id;
    return;
  }
  Job& job = it->second;
  if (job.terminal()) {
    m_reports_suppressed_.add(1);  // duplicate report
    return;
  }
  if (accept_report && !accept_report(report)) {
    m_reports_suppressed_.add(1);
    return;
  }
  complete_job(job, report);
  request_sched_cycle();
}

void Server::handle_dump_state(sim::Endpoint from, uint64_t rpc_id) {
  DumpStateResponse resp;
  resp.state = serialize_state();
  respond(from, rpc_id, encode_response(resp));
}

void Server::handle_load_state(const LoadStateRequest& req, sim::Endpoint from,
                               uint64_t rpc_id) {
  try {
    apply_state(req.state);
    persist();
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
    request_sched_cycle();
  } catch (const net::WireError&) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kInternal}));
  }
}

// ---------------------------------------------------------------------------
// Scheduling & launching
// ---------------------------------------------------------------------------

void Server::request_sched_cycle() {
  if (sched_pending_) return;
  sched_pending_ = true;
  execute(config_.sched_cycle_proc, [this] {
    sched_pending_ = false;
    run_sched_cycle();
  });
}

void Server::run_sched_cycle() {
  m_sched_cycles_.add(1);
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_sched_,
                                    jobs_.size(), nodes_.size());
  SchedDecisions decisions = scheduler_.cycle(jobs_, nodes_, sim().now());
  for (const LaunchDecision& d : decisions.launches) {
    auto it = jobs_.find(d.job);
    if (it == jobs_.end()) continue;
    if (d.replica_sets.empty()) {
      launch(it->second, {d.nodes});
    } else {
      launch(it->second, d.replica_sets);
    }
  }
  if (decisions.backfilled > 0) m_backfilled_.add(decisions.backfilled);
  for (JobId victim : decisions.preemptions) {
    // Damping: the pure policy re-emits the victim every cycle until the
    // ordered requeue lands; multicast (or apply) it once.
    if (!preempt_inflight_.insert(victim).second) continue;
    if (request_preempt) {
      request_preempt(victim);
    } else {
      apply_preempt(victim);
    }
  }
  update_utilization();
  if (sched_timer_ == 0) {
    sched_timer_ = set_timer(config_.sched_interval, [this] {
      sched_timer_ = 0;
      request_sched_cycle();
    });
  }
}

void Server::launch(Job& job,
                    const std::vector<std::vector<sim::HostId>>& sets) {
  if (job.state != JobState::kQueued || sets.empty() || sets.front().empty())
    return;
  job.state = JobState::kRunning;
  job.start_time = sim().now();
  job.exec_host = sets.front().front();
  job.replica_hosts.clear();
  for (const std::vector<sim::HostId>& set : sets) {
    job.replica_hosts.push_back(set.front());
    for (sim::HostId h : set) {
      if (NodeState* n = node_by_host(h)) n->assign(job.id);
    }
  }
  m_jobs_launched_.add(1);
  m_replicas_dispatched_.add(sets.size());
  m_queue_wait_.record((job.start_time - job.submit_time).us);
  m_policy_queue_wait_.record((job.start_time - job.submit_time).us);
  sim().telemetry().trace().instant(job.start_time.us, host_id(),
                                    tc_job_start_, job.id, job.exec_host);
  if (sets.size() > 1) {
    sim().telemetry().trace().instant(job.start_time.us, host_id(),
                                      tc_replica_, job.id, sets.size());
  }
  persist();
  if (on_job_start) on_job_start(job);

  // Each replica set's mother superior (first node) runs a copy of the job.
  for (const std::vector<sim::HostId>& set : sets) {
    send_replica_launch(job.id, set.front());
  }
}

void Server::send_replica_launch(JobId id, sim::HostId mom_host) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  MomLaunchRequest req{it->second, host_id()};
  net::CallOptions options;
  options.timeout = config_.mom_launch_timeout;
  call(mom_endpoint(mom_host), encode_request(req),
       [this, id, mom_host](std::optional<sim::Payload> resp) {
         if (!resp.has_value()) {
           // Mom unreachable: declare the node dead (which drops this
           // replica and requeues the job if it was the last one).
           JLOG(kWarn, "pbs") << name() << ": launch of job " << id << " on "
                              << mom_host << " timed out";
           note_node_failed(mom_host);
           return;
         }
         try {
           MomLaunchResponse launch = decode_mom_launch_response(*resp);
           if (launch.status != Status::kOk) replica_launch_failed(id, mom_host);
         } catch (const net::WireError&) {
         }
       },
       options);
}

/// A mom refused a launch attempt: drop that replica; requeue when it was
/// the last one. (A timed-out launch goes through note_node_failed instead.)
void Server::replica_launch_failed(JobId id, sim::HostId mom_host) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (!job.active()) return;
  auto& reps = job.replica_hosts;
  reps.erase(std::remove(reps.begin(), reps.end(), mom_host), reps.end());
  if (NodeState* n = node_by_host(mom_host)) n->release(id);
  if (!reps.empty()) {
    if (job.exec_host == mom_host) job.exec_host = reps.front();
    persist();
    return;  // surviving replicas carry the job
  }
  free_nodes_of(id);
  job.state = JobState::kQueued;
  job.exec_host = sim::kInvalidHost;
  m_jobs_requeued_.add(1);
  persist();
  request_sched_cycle();
}

void Server::complete_job(Job& job, const JobReport& report) {
  job.state = JobState::kComplete;
  job.exit_code = report.exit_code;
  job.cancelled = job.cancelled || report.cancelled;
  if (report.start_time.us > 0) job.start_time = report.start_time;
  job.end_time = report.end_time.us > 0 ? report.end_time : sim().now();
  reap_losers(job, report.mom_host);
  job.replica_hosts.clear();
  free_nodes_of(job.id);
  m_jobs_completed_.add(1);
  sim().telemetry().trace().instant(
      sim().now().us, host_id(), tc_job_complete_, job.id,
      static_cast<uint64_t>(static_cast<int64_t>(job.exit_code)));
  persist();
  JLOG(kDebug, "pbs") << name() << ": job " << job.id << " complete (exit "
                      << job.exit_code << ")";
  if (on_job_complete) on_job_complete(job);
}

/// First-to-finish wins: kill every other replica's instance. Kills are
/// idempotent at the mom (a completed instance ignores them), so every
/// head reaping the same losers is safe.
void Server::reap_losers(const Job& job, sim::HostId winner) {
  for (sim::HostId h : job.replica_hosts) {
    if (h == winner || h == sim::kInvalidHost) continue;
    m_replicas_reaped_.add(1);
    sim().telemetry().trace().instant(sim().now().us, host_id(), tc_replica_,
                                      job.id, h);
    kill_on(h, job.id);
  }
}

void Server::kill_on(sim::HostId mom_host, JobId id, bool quiet) {
  MomKillRequest kill{id, host_id(), quiet};
  call(mom_endpoint(mom_host), encode_request(kill),
       [](std::optional<sim::Payload>) {});
}

void Server::note_node_failed(sim::HostId host) {
  NodeState* n = node_by_host(host);
  if (n == nullptr || !n->up) return;
  n->up = false;
  n->running.clear();
  m_node_failovers_.add(1);
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_node_fail_,
                                    host, 0);
  auto first_miss = hb_first_miss_.find(host);
  if (first_miss != hb_first_miss_.end()) {
    m_failover_detect_.record((sim().now() - first_miss->second).us);
    hb_first_miss_.erase(first_miss);
  }
  JLOG(kWarn, "pbs") << name() << ": compute node " << host
                     << " declared dead";
  // Drop the dead replica from every active job; requeue jobs left without
  // a live replica (automatic failover of non-replicated jobs).
  bool requeued = false;
  for (auto& [id, job] : jobs_) {
    if (!job.active()) continue;
    auto& reps = job.replica_hosts;
    bool on_dead = job.exec_host == host ||
                   std::find(reps.begin(), reps.end(), host) != reps.end();
    if (!on_dead) continue;
    // Fence the declared-dead node: failure detection is only a presumption,
    // and a falsely-accused mom still runs its instance to completion --
    // which, with the job requeued and relaunched elsewhere, is a second
    // real execution. The quiet kill terminates the orphan without a death
    // echo (same idiom as preemption); if the node really is down the RPC
    // just drops.
    kill_on(host, id, /*quiet=*/true);
    reps.erase(std::remove(reps.begin(), reps.end(), host), reps.end());
    if (!reps.empty()) {
      if (job.exec_host == host) job.exec_host = reps.front();
      continue;  // surviving replicas carry the job
    }
    if (job.state == JobState::kExiting) {
      // The job was being cancelled and its last mom died before reporting:
      // nobody is left to report, so complete it as cancelled here.
      JobReport synth;
      synth.job_id = id;
      synth.exit_code = 271;
      synth.cancelled = true;
      complete_job(job, synth);
      continue;
    }
    free_nodes_of(id);
    job.state = JobState::kQueued;
    job.exec_host = sim::kInvalidHost;
    m_jobs_requeued_.add(1);
    requeued = true;
    JLOG(kInfo, "pbs") << name() << ": job " << id
                       << " lost its last replica; requeued";
  }
  persist();
  if (on_node_failed) on_node_failed(host);
  if (requeued) request_sched_cycle();
}

void Server::note_node_recovered(sim::HostId host) {
  NodeState* n = node_by_host(host);
  if (n == nullptr || n->up) return;
  n->up = true;
  hb_misses_[host] = 0;
  hb_first_miss_.erase(host);
  m_node_recoveries_.add(1);
  JLOG(kInfo, "pbs") << name() << ": compute node " << host
                     << " back in service";
  request_sched_cycle();
}

void Server::free_nodes_of(JobId id) {
  for (NodeState& n : nodes_) n.release(id);
}

void Server::update_utilization() {
  uint64_t total = 0;
  uint64_t busy = 0;
  for (const NodeState& n : nodes_) {
    if (!n.up) continue;
    total += n.attrs.slots;
    busy += std::min<uint64_t>(n.used_slots(), n.attrs.slots);
  }
  m_utilization_.set(total == 0 ? 0
                                : static_cast<int64_t>(busy * 100 / total));
}

NodeState* Server::node_by_host(sim::HostId host) {
  for (NodeState& n : nodes_) {
    if (n.host == host) return &n;
  }
  return nullptr;
}

sim::Endpoint Server::mom_endpoint(sim::HostId host) const {
  for (const sim::Endpoint& m : config_.moms) {
    if (m.host == host) return m;
  }
  return {host, config_.moms.empty() ? sim::Port(15002)
                                     : config_.moms.front().port};
}

// ---------------------------------------------------------------------------
// Heartbeat failure detection
// ---------------------------------------------------------------------------

void Server::arm_heartbeat_timer() {
  if (config_.heartbeat_interval.us <= 0) return;
  heartbeat_timer_ = set_timer(config_.heartbeat_interval, [this] {
    heartbeat_timer_ = 0;
    run_heartbeat_round();
    arm_heartbeat_timer();
  });
}

void Server::run_heartbeat_round() {
  for (const sim::Endpoint& mom : config_.moms) {
    MomPingRequest ping{host_id(), ++hb_seq_};
    net::CallOptions options;
    options.timeout = config_.heartbeat_timeout;
    sim::HostId h = mom.host;
    call(mom, encode_request(ping),
         [this, h](std::optional<sim::Payload> resp) {
           NodeState* n = node_by_host(h);
           if (n == nullptr) return;
           if (resp.has_value()) {
             hb_misses_[h] = 0;
             hb_first_miss_.erase(h);
             note_node_recovered(h);
             return;
           }
           m_heartbeat_misses_.add(1);
           hb_first_miss_.try_emplace(h, sim().now());
           if (++hb_misses_[h] >= config_.heartbeat_miss_limit && n->up) {
             note_node_failed(h);
           }
         },
         options);
  }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

sim::Payload Server::serialize_state() const {
  net::Writer w;
  w.u64(next_job_id_);
  w.u64(next_rank_);
  w.u64(submissions_);
  w.u32(static_cast<uint32_t>(jobs_.size()));
  for (const auto& [id, job] : jobs_) {
    (void)id;
    encode_job(w, job);
  }
  return w.take();
}

void Server::apply_state(const sim::Payload& state) {
  net::Reader r(state);
  next_job_id_ = r.u64();
  next_rank_ = r.u64();
  submissions_ = r.u64();
  uint32_t n = r.u32();
  jobs_.clear();
  preempt_inflight_.clear();
  for (NodeState& node : nodes_) node.running.clear();
  for (uint32_t i = 0; i < n; ++i) {
    Job job = decode_job(r);
    // Jobs that were running when the state was captured lost their parent
    // server: they restart from the queue (Section 2: applications have to
    // be restarted after an active/standby failover).
    if (job.active()) {
      job.state = JobState::kQueued;
      job.exec_host = sim::kInvalidHost;
      job.replica_hosts.clear();
    }
    jobs_.emplace(job.id, std::move(job));
  }
  r.expect_done();
}

std::map<std::string, std::string>& Server::storage() {
  if (config_.shared_storage) return *config_.shared_storage;
  return host().disk();
}

void Server::persist() {
  if (!config_.persist) return;
  if (config_.checkpoint_interval.us > 0) return;  // timer-driven instead
  sim::Payload state = serialize_state();
  storage()["pbs.state"] =
      std::string(reinterpret_cast<const char*>(state.data()), state.size());
}

void Server::arm_checkpoint_timer() {
  if (!config_.persist || config_.checkpoint_interval.us <= 0) return;
  checkpoint_timer_ = set_timer(config_.checkpoint_interval, [this] {
    sim::Payload state = serialize_state();
    storage()["pbs.state"] =
        std::string(reinterpret_cast<const char*>(state.data()), state.size());
    arm_checkpoint_timer();
  });
}

void Server::recover() {
  if (!config_.persist) return;
  auto it = storage().find("pbs.state");
  if (it == storage().end()) return;
  const std::string& blob = it->second;
  sim::Payload state(blob.begin(), blob.end());
  try {
    apply_state(state);
    JLOG(kInfo, "pbs") << name() << ": recovered " << jobs_.size()
                       << " jobs from storage";
  } catch (const net::WireError& e) {
    JLOG(kError, "pbs") << name() << ": corrupt state: " << e.what();
  }
}

void Server::preload_queued(uint64_t count, const JobSpec& spec) {
  auto hint = jobs_.end();
  for (uint64_t i = 0; i < count; ++i) {
    Job job;
    job.id = next_job_id_++;
    job.spec = spec;
    job.state = JobState::kQueued;
    job.submit_time = sim().now();
    job.queue_rank = next_rank_++;
    hint = jobs_.emplace_hint(hint, job.id, std::move(job));
    ++submissions_;
  }
  m_jobs_queued_.add(count);
}

void Server::reset_state() {
  jobs_.clear();
  next_job_id_ = config_.job_id_base;
  next_rank_ = 1;
  submissions_ = 0;
  preempt_inflight_.clear();
  preempt_counts_.clear();
  for (NodeState& n : nodes_) n.running.clear();
  persist();
}

void Server::on_crash() {
  net::RpcNode::on_crash();
  sched_timer_ = 0;
  checkpoint_timer_ = 0;
  heartbeat_timer_ = 0;
  sched_pending_ = false;
  hb_misses_.clear();
  hb_first_miss_.clear();
  preempt_inflight_.clear();
}

void Server::on_restart() {
  // Fresh daemon: volatile state resets, then recovery from storage.
  jobs_.clear();
  next_job_id_ = config_.job_id_base;
  next_rank_ = 1;
  submissions_ = 0;
  preempt_inflight_.clear();
  preempt_counts_.clear();
  for (NodeState& n : nodes_) {
    n.up = true;
    n.running.clear();
  }
  recover();
  arm_checkpoint_timer();
  arm_heartbeat_timer();
  sched_timer_ = set_timer(config_.sched_interval, [this] {
    sched_timer_ = 0;
    request_sched_cycle();
  });
}

}  // namespace pbs
