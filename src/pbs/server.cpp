#include "pbs/server.h"

#include <algorithm>

#include "sim/calibration.h"
#include "util/logging.h"

namespace pbs {

ServerConfig server_config_from(const sim::Calibration& cal) {
  ServerConfig cfg;
  cfg.submit_proc = cal.pbs_submit_proc;
  cfg.stat_proc = cal.pbs_stat_proc;
  cfg.del_proc = cal.pbs_del_proc;
  cfg.sched_cycle_proc = cal.pbs_sched_cycle;
  return cfg;
}

Server::Server(sim::Network& net, sim::HostId host, ServerConfig config)
    : net::RpcNode(net, host, config.port,
                   "pbs_server@" + net.host(host).name()),
      config_(std::move(config)),
      scheduler_(config_.sched) {
  for (const sim::Endpoint& mom : config_.moms) {
    nodes_.push_back(NodeState{mom.host, true, kInvalidJob});
  }
  telemetry::Hub& hub = net.sim().telemetry();
  telemetry::Registry& m = hub.metrics();
  m_jobs_queued_ = m.counter("pbs.jobs_queued");
  m_jobs_launched_ = m.counter("pbs.jobs_launched");
  m_jobs_completed_ = m.counter("pbs.jobs_completed");
  m_sched_cycles_ = m.counter("pbs.sched_cycles");
  m_queue_wait_ = m.histogram("pbs.queue_wait_us");
  tc_sched_ = hub.trace().intern("pbs.sched_cycle");
  tc_job_start_ = hub.trace().intern("pbs.job_start");
  tc_job_complete_ = hub.trace().intern("pbs.job_complete");
  recover();
  arm_checkpoint_timer();
  sched_timer_ = set_timer(config_.sched_interval, [this] {
    sched_timer_ = 0;
    request_sched_cycle();
  });
}

std::optional<Job> Server::find_job(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

size_t Server::count_in_state(JobState s) const {
  size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    if (job.state == s) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------------

void Server::on_request(sim::Payload request, sim::Endpoint from,
                        uint64_t rpc_id) {
  Op op;
  try {
    op = peek_op(request);
  } catch (const net::WireError&) {
    return;
  }
  sim::Duration cost;
  switch (op) {
    case Op::kSubmit: cost = config_.submit_proc; break;
    case Op::kStat: cost = config_.stat_proc; break;
    case Op::kDelete:
    case Op::kSignal:
    case Op::kHold:
    case Op::kRelease: cost = config_.del_proc; break;
    case Op::kJobReport: cost = config_.del_proc; break;
    case Op::kDumpState:
    case Op::kLoadState: cost = config_.submit_proc; break;
    default:
      respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnsupported}));
      return;
  }
  execute(cost, [this, request = std::move(request), from, rpc_id, op] {
    try {
      switch (op) {
        case Op::kSubmit:
          handle_submit(decode_submit(request), from, rpc_id);
          break;
        case Op::kStat:
          handle_stat(decode_stat(request), from, rpc_id);
          break;
        case Op::kDelete:
          handle_delete(decode_delete(request), from, rpc_id);
          break;
        case Op::kSignal:
          handle_signal(decode_signal(request), from, rpc_id);
          break;
        case Op::kHold:
          handle_hold(decode_hold(request), from, rpc_id);
          break;
        case Op::kRelease:
          handle_release(decode_release(request), from, rpc_id);
          break;
        case Op::kJobReport:
          handle_report(decode_job_report(request), from, rpc_id);
          break;
        case Op::kDumpState:
          handle_dump_state(from, rpc_id);
          break;
        case Op::kLoadState:
          handle_load_state(decode_load_state(request), from, rpc_id);
          break;
        default:
          break;
      }
    } catch (const net::WireError& e) {
      JLOG(kWarn, "pbs") << name() << ": bad request: " << e.what();
      respond(from, rpc_id, encode_response(SimpleResponse{Status::kInternal}));
    }
  });
}

void Server::handle_submit(const SubmitRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  Job job;
  if (req.forced_id != kInvalidJob) {
    if (jobs_.count(req.forced_id)) {
      respond(from, rpc_id,
              encode_response(SubmitResponse{Status::kInvalidState,
                                             req.forced_id}));
      return;
    }
    job.id = req.forced_id;
    next_job_id_ = std::max(next_job_id_, req.forced_id + 1);
  } else {
    job.id = next_job_id_++;
  }
  job.spec = req.spec;
  job.state = JobState::kQueued;
  job.submit_time = sim().now();
  job.queue_rank = next_rank_++;
  jobs_.emplace(job.id, job);
  ++submissions_;
  m_jobs_queued_.add(1);
  persist();
  JLOG(kDebug, "pbs") << name() << ": queued job " << job.id << " ("
                      << job.spec.name << ")";
  respond(from, rpc_id, encode_response(SubmitResponse{Status::kOk, job.id}));
  request_sched_cycle();
}

void Server::handle_stat(const StatRequest& req, sim::Endpoint from,
                         uint64_t rpc_id) {
  StatResponse resp;
  if (req.job_id != kInvalidJob) {
    auto it = jobs_.find(req.job_id);
    if (it == jobs_.end()) {
      resp.status = Status::kUnknownJob;
    } else {
      resp.jobs.push_back(it->second);
    }
  } else {
    for (const auto& [id, job] : jobs_) {
      (void)id;
      if (!req.include_complete && job.terminal()) continue;
      resp.jobs.push_back(job);
    }
  }
  respond(from, rpc_id, encode_response(resp));
}

void Server::handle_delete(const DeleteRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.terminal()) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  if (job.state == JobState::kRunning) {
    job.state = JobState::kExiting;
    job.cancelled = true;
    MomKillRequest kill{job.id, host_id()};
    call(sim::Endpoint{job.exec_host, config_.moms.empty()
                                          ? sim::Port(15002)
                                          : config_.moms.front().port},
         encode_request(kill), [](std::optional<sim::Payload>) {});
  } else {
    job.state = JobState::kComplete;
    job.cancelled = true;
    job.end_time = sim().now();
  }
  persist();
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  request_sched_cycle();
}

void Server::handle_signal(const SignalRequest& req, sim::Endpoint from,
                           uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.state != JobState::kRunning) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  // SIGTERM/SIGKILL terminate; anything else is delivered but has no
  // modelled effect.
  if (req.signal == 15 || req.signal == 9) {
    job.state = JobState::kExiting;
    job.cancelled = true;
    MomKillRequest kill{job.id, host_id()};
    call(sim::Endpoint{job.exec_host, config_.moms.empty()
                                          ? sim::Port(15002)
                                          : config_.moms.front().port},
         encode_request(kill), [](std::optional<sim::Payload>) {});
    persist();
  }
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
}

void Server::handle_hold(const HoldRequest& req, sim::Endpoint from,
                         uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.state != JobState::kQueued) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  job.state = JobState::kHeld;
  persist();
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
}

void Server::handle_release(const ReleaseRequest& req, sim::Endpoint from,
                            uint64_t rpc_id) {
  auto it = jobs_.find(req.job_id);
  if (it == jobs_.end()) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kUnknownJob}));
    return;
  }
  Job& job = it->second;
  if (job.state != JobState::kHeld) {
    respond(from, rpc_id,
            encode_response(SimpleResponse{Status::kInvalidState}));
    return;
  }
  job.state = JobState::kQueued;
  persist();
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  request_sched_cycle();
}

void Server::handle_report(const JobReport& report, sim::Endpoint from,
                           uint64_t rpc_id) {
  // Always ack: the mom retries otherwise.
  respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
  auto it = jobs_.find(report.job_id);
  if (it == jobs_.end()) {
    JLOG(kDebug, "pbs") << name() << ": report for unknown job "
                        << report.job_id;
    return;
  }
  Job& job = it->second;
  if (job.terminal()) return;  // duplicate report
  complete_job(job, report);
  request_sched_cycle();
}

void Server::handle_dump_state(sim::Endpoint from, uint64_t rpc_id) {
  DumpStateResponse resp;
  resp.state = serialize_state();
  respond(from, rpc_id, encode_response(resp));
}

void Server::handle_load_state(const LoadStateRequest& req, sim::Endpoint from,
                               uint64_t rpc_id) {
  try {
    apply_state(req.state);
    persist();
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kOk}));
    request_sched_cycle();
  } catch (const net::WireError&) {
    respond(from, rpc_id, encode_response(SimpleResponse{Status::kInternal}));
  }
}

// ---------------------------------------------------------------------------
// Scheduling & launching
// ---------------------------------------------------------------------------

void Server::request_sched_cycle() {
  if (sched_pending_) return;
  sched_pending_ = true;
  execute(config_.sched_cycle_proc, [this] {
    sched_pending_ = false;
    run_sched_cycle();
  });
}

void Server::run_sched_cycle() {
  m_sched_cycles_.add(1);
  sim().telemetry().trace().instant(sim().now().us, host_id(), tc_sched_,
                                    jobs_.size(), nodes_.size());
  for (const LaunchDecision& d : scheduler_.cycle(jobs_, nodes_, sim().now())) {
    auto it = jobs_.find(d.job);
    if (it == jobs_.end()) continue;
    launch(it->second, d.nodes);
  }
  if (sched_timer_ == 0) {
    sched_timer_ = set_timer(config_.sched_interval, [this] {
      sched_timer_ = 0;
      request_sched_cycle();
    });
  }
}

void Server::launch(Job& job, const std::vector<sim::HostId>& node_hosts) {
  if (job.state != JobState::kQueued || node_hosts.empty()) return;
  job.state = JobState::kRunning;
  job.start_time = sim().now();
  job.exec_host = node_hosts.front();
  for (sim::HostId h : node_hosts) {
    if (NodeState* n = node_by_host(h)) n->running = job.id;
  }
  m_jobs_launched_.add(1);
  m_queue_wait_.record((job.start_time - job.submit_time).us);
  sim().telemetry().trace().instant(job.start_time.us, host_id(),
                                    tc_job_start_, job.id, job.exec_host);
  persist();
  if (on_job_start) on_job_start(job);

  // The mother superior (first node) runs the job.
  sim::Endpoint mom{job.exec_host, config_.moms.front().port};
  for (const sim::Endpoint& m : config_.moms) {
    if (m.host == job.exec_host) mom = m;
  }
  MomLaunchRequest req{job, host_id()};
  JobId id = job.id;
  net::CallOptions options;
  options.timeout = config_.mom_launch_timeout;
  call(mom, encode_request(req),
       [this, id](std::optional<sim::Payload> resp) {
         auto it = jobs_.find(id);
         if (it == jobs_.end()) return;
         Job& job = it->second;
         if (!resp.has_value()) {
           // Mom unreachable: mark the node down and requeue.
           JLOG(kWarn, "pbs") << name() << ": launch of job " << id
                              << " timed out; requeueing";
           if (NodeState* n = node_by_host(job.exec_host)) n->up = false;
           if (job.state == JobState::kRunning) {
             free_nodes_of(job.id);
             job.state = JobState::kQueued;
             job.exec_host = sim::kInvalidHost;
             persist();
             request_sched_cycle();
           }
           return;
         }
         try {
           MomLaunchResponse launch = decode_mom_launch_response(*resp);
           if (launch.status != Status::kOk) {
             if (job.state == JobState::kRunning) {
               free_nodes_of(job.id);
               job.state = JobState::kQueued;
               job.exec_host = sim::kInvalidHost;
               persist();
               request_sched_cycle();
             }
           }
         } catch (const net::WireError&) {
         }
       },
       options);
}

void Server::complete_job(Job& job, const JobReport& report) {
  job.state = JobState::kComplete;
  job.exit_code = report.exit_code;
  job.cancelled = job.cancelled || report.cancelled;
  if (report.start_time.us > 0) job.start_time = report.start_time;
  job.end_time = report.end_time.us > 0 ? report.end_time : sim().now();
  free_nodes_of(job.id);
  m_jobs_completed_.add(1);
  sim().telemetry().trace().instant(
      sim().now().us, host_id(), tc_job_complete_, job.id,
      static_cast<uint64_t>(static_cast<int64_t>(job.exit_code)));
  persist();
  JLOG(kDebug, "pbs") << name() << ": job " << job.id << " complete (exit "
                      << job.exit_code << ")";
  if (on_job_complete) on_job_complete(job);
}

void Server::free_nodes_of(JobId id) {
  for (NodeState& n : nodes_) {
    if (n.running == id) n.running = kInvalidJob;
  }
}

NodeState* Server::node_by_host(sim::HostId host) {
  for (NodeState& n : nodes_) {
    if (n.host == host) return &n;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

sim::Payload Server::serialize_state() const {
  net::Writer w;
  w.u64(next_job_id_);
  w.u64(next_rank_);
  w.u64(submissions_);
  w.u32(static_cast<uint32_t>(jobs_.size()));
  for (const auto& [id, job] : jobs_) {
    (void)id;
    encode_job(w, job);
  }
  return w.take();
}

void Server::apply_state(const sim::Payload& state) {
  net::Reader r(state);
  next_job_id_ = r.u64();
  next_rank_ = r.u64();
  submissions_ = r.u64();
  uint32_t n = r.u32();
  jobs_.clear();
  for (NodeState& node : nodes_) node.running = kInvalidJob;
  for (uint32_t i = 0; i < n; ++i) {
    Job job = decode_job(r);
    // Jobs that were running when the state was captured lost their parent
    // server: they restart from the queue (Section 2: applications have to
    // be restarted after an active/standby failover).
    if (job.active()) {
      job.state = JobState::kQueued;
      job.exec_host = sim::kInvalidHost;
    }
    jobs_.emplace(job.id, std::move(job));
  }
  r.expect_done();
}

std::map<std::string, std::string>& Server::storage() {
  if (config_.shared_storage) return *config_.shared_storage;
  return host().disk();
}

void Server::persist() {
  if (!config_.persist) return;
  if (config_.checkpoint_interval.us > 0) return;  // timer-driven instead
  sim::Payload state = serialize_state();
  storage()["pbs.state"] =
      std::string(reinterpret_cast<const char*>(state.data()), state.size());
}

void Server::arm_checkpoint_timer() {
  if (!config_.persist || config_.checkpoint_interval.us <= 0) return;
  checkpoint_timer_ = set_timer(config_.checkpoint_interval, [this] {
    sim::Payload state = serialize_state();
    storage()["pbs.state"] =
        std::string(reinterpret_cast<const char*>(state.data()), state.size());
    arm_checkpoint_timer();
  });
}

void Server::recover() {
  if (!config_.persist) return;
  auto it = storage().find("pbs.state");
  if (it == storage().end()) return;
  const std::string& blob = it->second;
  sim::Payload state(blob.begin(), blob.end());
  try {
    apply_state(state);
    JLOG(kInfo, "pbs") << name() << ": recovered " << jobs_.size()
                       << " jobs from storage";
  } catch (const net::WireError& e) {
    JLOG(kError, "pbs") << name() << ": corrupt state: " << e.what();
  }
}

void Server::reset_state() {
  jobs_.clear();
  next_job_id_ = 1;
  next_rank_ = 1;
  submissions_ = 0;
  for (NodeState& n : nodes_) n.running = kInvalidJob;
  persist();
}

void Server::on_crash() {
  net::RpcNode::on_crash();
  sched_timer_ = 0;
  checkpoint_timer_ = 0;
  sched_pending_ = false;
}

void Server::on_restart() {
  // Fresh daemon: volatile state resets, then recovery from storage.
  jobs_.clear();
  next_job_id_ = 1;
  next_rank_ = 1;
  submissions_ = 0;
  for (NodeState& n : nodes_) {
    n.up = true;
    n.running = kInvalidJob;
  }
  recover();
  arm_checkpoint_timer();
  sched_timer_ = set_timer(config_.sched_interval, [this] {
    sched_timer_ = 0;
    request_sched_cycle();
  });
}

}  // namespace pbs
