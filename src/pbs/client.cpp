#include "pbs/client.h"

#include "sim/calibration.h"

namespace pbs {

ClientConfig client_config_from(const sim::Calibration& cal,
                                sim::Endpoint server) {
  ClientConfig cfg;
  cfg.server = server;
  cfg.cmd_startup = cal.cmd_startup;
  cfg.cmd_teardown = cal.cmd_teardown;
  return cfg;
}

Client::Client(sim::Network& net, sim::HostId host, sim::Port port,
               ClientConfig config)
    : net::RpcNode(net, host, port, "pbs_client@" + net.host(host).name()),
      config_(std::move(config)) {}

template <typename Response, typename Decode>
void Client::run_command(sim::Payload request, Decode decode,
                         std::function<void(std::optional<Response>)> done) {
  execute(config_.cmd_startup, [this, request = std::move(request), decode,
                                done = std::move(done)]() mutable {
    net::CallOptions options;
    options.timeout = config_.timeout;
    options.attempts = config_.attempts;
    call(config_.server, std::move(request),
         [this, decode, done = std::move(done)](
             std::optional<sim::Payload> resp) mutable {
           if (!resp.has_value()) {
             done(std::nullopt);
             return;
           }
           std::optional<Response> decoded;
           try {
             decoded = decode(*resp);
           } catch (const net::WireError&) {
             decoded = std::nullopt;
           }
           execute(config_.cmd_teardown,
                   [done = std::move(done), decoded = std::move(decoded)] {
                     done(decoded);
                   });
         },
         options);
  });
}

void Client::qsub(JobSpec spec,
                  std::function<void(std::optional<SubmitResponse>)> done) {
  run_command<SubmitResponse>(
      encode_request(SubmitRequest{std::move(spec)}),
      [](const sim::Payload& p) { return decode_submit_response(p); },
      std::move(done));
}

void Client::qstat(StatRequest req,
                   std::function<void(std::optional<StatResponse>)> done) {
  run_command<StatResponse>(
      encode_request(req),
      [](const sim::Payload& p) { return decode_stat_response(p); },
      std::move(done));
}

void Client::qdel(JobId id,
                  std::function<void(std::optional<SimpleResponse>)> done) {
  run_command<SimpleResponse>(
      encode_request(DeleteRequest{id}),
      [](const sim::Payload& p) { return decode_simple_response(p); },
      std::move(done));
}

void Client::qsig(JobId id, int32_t signal,
                  std::function<void(std::optional<SimpleResponse>)> done) {
  run_command<SimpleResponse>(
      encode_request(SignalRequest{id, signal}),
      [](const sim::Payload& p) { return decode_simple_response(p); },
      std::move(done));
}

void Client::qhold(JobId id,
                   std::function<void(std::optional<SimpleResponse>)> done) {
  run_command<SimpleResponse>(
      encode_request(HoldRequest{id}),
      [](const sim::Payload& p) { return decode_simple_response(p); },
      std::move(done));
}

void Client::qrls(JobId id,
                  std::function<void(std::optional<SimpleResponse>)> done) {
  run_command<SimpleResponse>(
      encode_request(ReleaseRequest{id}),
      [](const sim::Payload& p) { return decode_simple_response(p); },
      std::move(done));
}

void Client::dump_state(
    std::function<void(std::optional<DumpStateResponse>)> done) {
  run_command<DumpStateResponse>(
      encode_request(DumpStateRequest{}),
      [](const sim::Payload& p) { return decode_dump_state_response(p); },
      std::move(done));
}

void Client::load_state(
    sim::Payload state,
    std::function<void(std::optional<SimpleResponse>)> done) {
  run_command<SimpleResponse>(
      encode_request(LoadStateRequest{std::move(state)}),
      [](const sim::Payload& p) { return decode_simple_response(p); },
      std::move(done));
}

}  // namespace pbs
