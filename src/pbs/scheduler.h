// The Maui-equivalent scheduling layer, split into plugins.
//
// The paper configures Maui for FIFO with exclusive cluster access "to
// produce deterministic scheduling behavior on all active head nodes" --
// that determinism is load-bearing for JOSHUA: every head must make the
// same launch decision from the same replicated state. The paper also
// notes "this restriction may be lifted in the future if deterministic
// allocation behavior can be assured". This is that lift, mirroring
// Slurm's sched/select plugin split:
//
//  - SchedPolicy decides queue ordering + admission (strict FIFO, EASY
//    backfill, priority with aging, priority + preemption). A policy is a
//    pure function of (job table, node states, now): no clocks other than
//    the `now` argument, no randomness, no internal state. That purity is
//    the whole determinism contract -- N replicas fed identical state make
//    identical decisions.
//  - NodeSelector decides placement: which concrete hosts (and disjoint
//    anti-affinity replica sets) a job gets, over a generalized NodeState
//    with node types, feature tags and slot counts.
//
// Both sides live in a registry keyed by name; `JOSHUA_SCHED` /
// `JOSHUA_SELECT` pick the defaults at process scope and the
// `scheduling {}` config-file section pins them per deployment. The
// fifo+firstfit+exclusive default reproduces the paper's (and the
// previous monolithic scheduler's) decisions exactly.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pbs/job.h"

namespace pbs {

/// Static node attributes (heterogeneous clusters). Configured per mom via
/// ServerConfig::node_attrs; the defaults describe the paper's uniform
/// testbed.
struct NodeAttrs {
  std::string type;                   ///< "" = generic
  std::vector<std::string> features;  ///< arbitrary tags ("gpu", "bigmem")
  uint32_t slots = 1;                 ///< co-schedulable jobs per node
};

struct NodeState {
  sim::HostId host = sim::kInvalidHost;
  bool up = true;
  NodeAttrs attrs;
  /// Jobs occupying this node, one slot each (a single job never takes two
  /// slots of one node: replica sets need distinct hosts for anti-affinity).
  std::vector<JobId> running;

  bool idle() const { return running.empty(); }
  uint32_t used_slots() const { return static_cast<uint32_t>(running.size()); }
  uint32_t free_slots() const {
    uint32_t used = used_slots();
    return used >= attrs.slots ? 0 : attrs.slots - used;
  }
  bool has(JobId id) const;
  void assign(JobId id);
  void release(JobId id);
  /// Node type / feature admission for a spec (slot availability is the
  /// selector's business, not checked here).
  bool satisfies(const JobSpec& spec) const;
};

struct SchedulerConfig {
  /// Registry names; unknown names fall back to the defaults with a warning
  /// (the config-file parser rejects them earlier with a hard error).
  std::string policy = sched_policy_from_env();
  std::string selector = node_selector_from_env();
  /// Paper configuration: each job gets the whole cluster (one job runs at
  /// a time, on all nodes).
  bool exclusive_cluster = true;
  /// Priority aging: queued jobs gain +1 effective priority per interval
  /// waited (priority/preempt policies only). Zero disables aging.
  sim::Duration priority_aging = sim::kDurationZero;

  static std::string sched_policy_from_env();    ///< $JOSHUA_SCHED, "fifo"
  static std::string node_selector_from_env();   ///< $JOSHUA_SELECT, "firstfit"
};

struct LaunchDecision {
  JobId job = kInvalidJob;
  std::vector<sim::HostId> nodes;  ///< first node is the mother superior
  /// One node set per replica; replica_sets[0] == nodes. The sets are
  /// pairwise disjoint (anti-affinity: a node failure takes out at most one
  /// replica). Fewer than spec.replicas sets when the cluster is too small
  /// -- replication is best-effort, never a reason not to start the job.
  std::vector<std::vector<sim::HostId>> replica_sets;
};

/// Everything one scheduling iteration decides. Preemptions are *requests*:
/// the server routes them through the ordered stream (kPreempt group op)
/// so every head requeues the victim at the same point of the command
/// sequence; the preempting job then launches in a later cycle against the
/// freed nodes.
struct SchedDecisions {
  std::vector<LaunchDecision> launches;
  std::vector<JobId> preemptions;  ///< running jobs to requeue, in order
  uint32_t backfilled = 0;         ///< launches admitted out of FIFO order
};

/// The free capacity a selector allocates from: (node, free slot count)
/// in node-table order. Selectors decrement entries as they place jobs.
struct FreeSlot {
  const NodeState* node = nullptr;
  uint32_t free = 0;
};
using FreePool = std::vector<FreeSlot>;

FreePool make_free_pool(const std::vector<NodeState>& nodes);
/// Distinct hosts in `pool` with a free slot that satisfy `spec`.
size_t eligible_hosts(const FreePool& pool, const JobSpec& spec);

/// Placement plugin: carve pairwise-disjoint replica node sets for `spec`
/// out of `pool` (consuming the slots used). Returns {} when the primary
/// set does not fit; with `replicate` false only the primary set is built
/// (backfill admissions run unreplicated). Implementations must be
/// deterministic functions of (pool, spec).
class NodeSelector {
 public:
  virtual ~NodeSelector() = default;
  virtual std::string_view name() const = 0;
  virtual std::vector<std::vector<sim::HostId>> select(FreePool& pool,
                                                       const JobSpec& spec,
                                                       bool replicate) const = 0;
};

struct SchedContext {
  const std::map<JobId, Job>& jobs;
  const std::vector<NodeState>& nodes;
  sim::Time now;
  const SchedulerConfig& config;
  const NodeSelector& selector;
};

/// Ordering/admission plugin. The determinism contract: `cycle` must be a
/// pure function of its context -- same jobs, nodes and now always produce
/// the same decisions, on every head, after any replay.
class SchedPolicy {
 public:
  virtual ~SchedPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual SchedDecisions cycle(const SchedContext& ctx) const = 0;
};

// -- registry ---------------------------------------------------------------
// Built-ins register lazily on first lookup: policies "fifo", "backfill",
// "priority", "preempt"; selectors "firstfit", "replica". Additional
// plugins (tests, experiments) register at startup.

const SchedPolicy* find_sched_policy(std::string_view name);
const NodeSelector* find_node_selector(std::string_view name);
void register_sched_policy(std::unique_ptr<SchedPolicy> policy);
void register_node_selector(std::unique_ptr<NodeSelector> selector);
std::vector<std::string> sched_policy_names();
std::vector<std::string> node_selector_names();

/// Facade the PBS server drives: resolves the configured plugin pair once
/// and runs scheduling iterations through them.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);

  const SchedulerConfig& config() const { return config_; }
  const SchedPolicy& policy() const { return *policy_; }
  const NodeSelector& selector() const { return *selector_; }

  /// One scheduling iteration: which queued jobs start now (and where),
  /// which running jobs must be preempted first. Deterministic: depends
  /// only on the arguments.
  SchedDecisions cycle(const std::map<JobId, Job>& jobs,
                       const std::vector<NodeState>& nodes,
                       sim::Time now) const;

 private:
  SchedulerConfig config_;
  const SchedPolicy* policy_ = nullptr;
  const NodeSelector* selector_ = nullptr;
};

}  // namespace pbs
