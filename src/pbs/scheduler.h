// The Maui-equivalent scheduling policy.
//
// The paper configures Maui for FIFO with exclusive cluster access "to
// produce deterministic scheduling behavior on all active head nodes" --
// that determinism is load-bearing for JOSHUA: every head must make the
// same launch decision from the same replicated state. The scheduler is
// therefore a pure function of (job table, node states): no clocks, no
// randomness.
//
// An EASY-backfill policy is included as the extension the paper hints at
// ("this restriction may be lifted in the future if deterministic
// allocation behavior can be assured") -- it is still deterministic.
#pragma once

#include <map>
#include <vector>

#include "pbs/job.h"

namespace pbs {

struct NodeState {
  sim::HostId host = sim::kInvalidHost;
  bool up = true;
  JobId running = kInvalidJob;  ///< job occupying this node (kInvalidJob = free)
};

enum class SchedPolicy : uint8_t {
  kFifo = 0,          ///< strict FIFO; head-of-queue blocks
  kFifoBackfill = 1,  ///< EASY backfill behind a blocked head job
};

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Paper configuration: each job gets the whole cluster (one job runs at
  /// a time, on all nodes).
  bool exclusive_cluster = true;
};

struct LaunchDecision {
  JobId job = kInvalidJob;
  std::vector<sim::HostId> nodes;  ///< first node is the mother superior
  /// One node set per replica; replica_sets[0] == nodes. The sets are
  /// pairwise disjoint (anti-affinity: a node failure takes out at most one
  /// replica). Fewer than spec.replicas sets when the cluster is too small
  /// -- replication is best-effort, never a reason not to start the job.
  std::vector<std::vector<sim::HostId>> replica_sets;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  const SchedulerConfig& config() const { return config_; }

  /// One scheduling iteration: which queued jobs start now, and where.
  /// Deterministic: depends only on the arguments.
  std::vector<LaunchDecision> cycle(const std::map<JobId, Job>& jobs,
                                    const std::vector<NodeState>& nodes,
                                    sim::Time now) const;

 private:
  SchedulerConfig config_;
};

}  // namespace pbs
