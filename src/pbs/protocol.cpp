#include "pbs/protocol.h"

namespace pbs {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kUnknownJob: return "unknown job";
    case Status::kInvalidState: return "invalid job state";
    case Status::kUnsupported: return "operation not supported";
    case Status::kServerBusy: return "server busy";
    case Status::kInternal: return "internal error";
  }
  return "?";
}

namespace {
net::Writer begin(Op op) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(op));
  return w;
}
net::Reader open(const sim::Payload& buf, Op expected) {
  net::Reader r(buf);
  auto op = static_cast<Op>(r.u8());
  if (op != expected) throw net::WireError("pbs: op mismatch");
  return r;
}
}  // namespace

Op peek_op(const sim::Payload& buf) {
  if (buf.empty()) throw net::WireError("pbs: empty request");
  return static_cast<Op>(buf[0]);
}

sim::Payload encode_request(const SubmitRequest& m) {
  net::Writer w = begin(Op::kSubmit);
  encode_job_spec(w, m.spec);
  w.u64(m.forced_id);
  return w.take();
}
SubmitRequest decode_submit(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kSubmit);
  SubmitRequest m;
  m.spec = decode_job_spec(r);
  m.forced_id = r.u64();
  r.expect_done();
  return m;
}

sim::Payload encode_request(const StatRequest& m) {
  net::Writer w = begin(Op::kStat);
  w.u64(m.job_id);
  w.boolean(m.include_complete);
  return w.take();
}
StatRequest decode_stat(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kStat);
  StatRequest m;
  m.job_id = r.u64();
  m.include_complete = r.boolean();
  r.expect_done();
  return m;
}

sim::Payload encode_request(const DeleteRequest& m) {
  net::Writer w = begin(Op::kDelete);
  w.u64(m.job_id);
  return w.take();
}
DeleteRequest decode_delete(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kDelete);
  DeleteRequest m{r.u64()};
  r.expect_done();
  return m;
}

sim::Payload encode_request(const SignalRequest& m) {
  net::Writer w = begin(Op::kSignal);
  w.u64(m.job_id);
  w.i64(m.signal);
  return w.take();
}
SignalRequest decode_signal(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kSignal);
  SignalRequest m;
  m.job_id = r.u64();
  m.signal = static_cast<int32_t>(r.i64());
  r.expect_done();
  return m;
}

sim::Payload encode_request(const HoldRequest& m) {
  net::Writer w = begin(Op::kHold);
  w.u64(m.job_id);
  return w.take();
}
HoldRequest decode_hold(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kHold);
  HoldRequest m{r.u64()};
  r.expect_done();
  return m;
}

sim::Payload encode_request(const ReleaseRequest& m) {
  net::Writer w = begin(Op::kRelease);
  w.u64(m.job_id);
  return w.take();
}
ReleaseRequest decode_release(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kRelease);
  ReleaseRequest m{r.u64()};
  r.expect_done();
  return m;
}

sim::Payload encode_request(const PreemptRequest& m) {
  net::Writer w = begin(Op::kPreempt);
  w.u64(m.job_id);
  return w.take();
}
PreemptRequest decode_preempt(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kPreempt);
  PreemptRequest m{r.u64()};
  r.expect_done();
  return m;
}

sim::Payload encode_request(const DumpStateRequest&) {
  return begin(Op::kDumpState).take();
}

sim::Payload encode_request(const LoadStateRequest& m) {
  net::Writer w = begin(Op::kLoadState);
  w.bytes(m.state);
  return w.take();
}
LoadStateRequest decode_load_state(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kLoadState);
  LoadStateRequest m{r.bytes()};
  r.expect_done();
  return m;
}

sim::Payload encode_request(const MomLaunchRequest& m) {
  net::Writer w = begin(Op::kMomLaunch);
  encode_job(w, m.job);
  w.u32(m.server_host);
  return w.take();
}
MomLaunchRequest decode_mom_launch(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kMomLaunch);
  MomLaunchRequest m;
  m.job = decode_job(r);
  m.server_host = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_request(const MomKillRequest& m) {
  net::Writer w = begin(Op::kMomKill);
  w.u64(m.job_id);
  w.u32(m.server_host);
  w.boolean(m.quiet);
  return w.take();
}
MomKillRequest decode_mom_kill(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kMomKill);
  MomKillRequest m;
  m.job_id = r.u64();
  m.server_host = r.u32();
  m.quiet = r.boolean();
  r.expect_done();
  return m;
}

sim::Payload encode_request(const MomEmuCompleteRequest& m) {
  net::Writer w = begin(Op::kMomEmuComplete);
  w.u64(m.job_id);
  w.i64(m.exit_code);
  return w.take();
}
MomEmuCompleteRequest decode_mom_emu_complete(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kMomEmuComplete);
  MomEmuCompleteRequest m;
  m.job_id = r.u64();
  m.exit_code = static_cast<int32_t>(r.i64());
  r.expect_done();
  return m;
}

sim::Payload encode_request(const MomPingRequest& m) {
  net::Writer w = begin(Op::kMomPing);
  w.u32(m.server_host);
  w.u64(m.seq);
  return w.take();
}
MomPingRequest decode_mom_ping(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kMomPing);
  MomPingRequest m;
  m.server_host = r.u32();
  m.seq = r.u64();
  r.expect_done();
  return m;
}

sim::Payload encode_request(const JobReport& m) {
  net::Writer w = begin(Op::kJobReport);
  w.u64(m.job_id);
  w.i64(m.exit_code);
  w.boolean(m.cancelled);
  w.i64(m.start_time.us);
  w.i64(m.end_time.us);
  w.u32(m.mom_host);
  return w.take();
}
JobReport decode_job_report(const sim::Payload& buf) {
  net::Reader r = open(buf, Op::kJobReport);
  JobReport m;
  m.job_id = r.u64();
  m.exit_code = static_cast<int32_t>(r.i64());
  m.cancelled = r.boolean();
  m.start_time = sim::Time{r.i64()};
  m.end_time = sim::Time{r.i64()};
  m.mom_host = r.u32();
  r.expect_done();
  return m;
}

// -- responses ---------------------------------------------------------------

sim::Payload encode_response(const SubmitResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  w.u64(m.job_id);
  w.u32(m.count);
  return w.take();
}
SubmitResponse decode_submit_response(const sim::Payload& buf) {
  net::Reader r(buf);
  SubmitResponse m;
  m.status = static_cast<Status>(r.u8());
  m.job_id = r.u64();
  m.count = r.u32();
  r.expect_done();
  return m;
}

sim::Payload encode_response(const StatResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  w.vec(m.jobs, [](net::Writer& w2, const Job& j) { encode_job(w2, j); });
  return w.take();
}
StatResponse decode_stat_response(const sim::Payload& buf) {
  net::Reader r(buf);
  StatResponse m;
  m.status = static_cast<Status>(r.u8());
  m.jobs = r.vec<Job>([](net::Reader& r2) { return decode_job(r2); });
  r.expect_done();
  return m;
}

sim::Payload encode_response(const SimpleResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  return w.take();
}
SimpleResponse decode_simple_response(const sim::Payload& buf) {
  net::Reader r(buf);
  SimpleResponse m;
  m.status = static_cast<Status>(r.u8());
  r.expect_done();
  return m;
}

sim::Payload encode_response(const DumpStateResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  w.bytes(m.state);
  return w.take();
}
DumpStateResponse decode_dump_state_response(const sim::Payload& buf) {
  net::Reader r(buf);
  DumpStateResponse m;
  m.status = static_cast<Status>(r.u8());
  m.state = r.bytes();
  r.expect_done();
  return m;
}

sim::Payload encode_response(const MomLaunchResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  w.boolean(m.emulated);
  return w.take();
}
MomLaunchResponse decode_mom_launch_response(const sim::Payload& buf) {
  net::Reader r(buf);
  MomLaunchResponse m;
  m.status = static_cast<Status>(r.u8());
  m.emulated = r.boolean();
  r.expect_done();
  return m;
}

sim::Payload encode_response(const MomPingResponse& m) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(m.status));
  w.u64(m.seq);
  w.u32(m.running_jobs);
  return w.take();
}
MomPingResponse decode_mom_ping_response(const sim::Payload& buf) {
  net::Reader r(buf);
  MomPingResponse m;
  m.status = static_cast<Status>(r.u8());
  m.seq = r.u64();
  m.running_jobs = r.u32();
  r.expect_done();
  return m;
}

}  // namespace pbs
