// PBS user commands (qsub/qstat/qdel/qsig/qhold/qrls) as a client process.
//
// Each command models the cost of spawning the CLI tool (fork/exec +
// connect) and of printing the result, so measured latencies are end-to-end
// the way the paper measured them at the shell.
#pragma once

#include <functional>
#include <optional>

#include "net/rpc.h"
#include "pbs/protocol.h"

namespace sim {
struct Calibration;
}

namespace pbs {

struct ClientConfig {
  sim::Endpoint server;
  sim::Duration cmd_startup = sim::msec(14);
  sim::Duration cmd_teardown = sim::msec(4);
  sim::Duration timeout = sim::seconds(10);
  int attempts = 1;
};

ClientConfig client_config_from(const sim::Calibration& cal,
                                sim::Endpoint server);

class Client : public net::RpcNode {
 public:
  Client(sim::Network& net, sim::HostId host, sim::Port port,
         ClientConfig config);

  /// Retarget subsequent commands (failover to another head).
  void set_server(sim::Endpoint server) { config_.server = server; }
  void set_timeout(sim::Duration timeout) { config_.timeout = timeout; }
  const ClientConfig& config() const { return config_; }

  // Callbacks receive std::nullopt on timeout.
  void qsub(JobSpec spec,
            std::function<void(std::optional<SubmitResponse>)> done);
  void qstat(StatRequest req,
             std::function<void(std::optional<StatResponse>)> done);
  void qdel(JobId id, std::function<void(std::optional<SimpleResponse>)> done);
  void qsig(JobId id, int32_t signal,
            std::function<void(std::optional<SimpleResponse>)> done);
  void qhold(JobId id, std::function<void(std::optional<SimpleResponse>)> done);
  void qrls(JobId id, std::function<void(std::optional<SimpleResponse>)> done);

  // State management helpers (active/standby harness, snapshot transfer).
  void dump_state(std::function<void(std::optional<DumpStateResponse>)> done);
  void load_state(sim::Payload state,
                  std::function<void(std::optional<SimpleResponse>)> done);

 protected:
  void on_request(sim::Payload, sim::Endpoint, uint64_t) override {}

 private:
  template <typename Response, typename Decode>
  void run_command(sim::Payload request, Decode decode,
                   std::function<void(std::optional<Response>)> done);

  ClientConfig config_;
};

}  // namespace pbs
