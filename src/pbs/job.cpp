#include "pbs/job.h"

namespace pbs {

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kHeld: return "HELD";
    case JobState::kWaiting: return "WAITING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kExiting: return "EXITING";
    case JobState::kComplete: return "COMPLETE";
  }
  return "?";
}

char state_letter(JobState s) {
  switch (s) {
    case JobState::kQueued: return 'Q';
    case JobState::kHeld: return 'H';
    case JobState::kWaiting: return 'W';
    case JobState::kRunning: return 'R';
    case JobState::kExiting: return 'E';
    case JobState::kComplete: return 'C';
  }
  return '?';
}

std::string job_id_string(JobId id, const std::string& server_suffix) {
  return std::to_string(id) + "." + server_suffix;
}

void encode_job_spec(net::Writer& w, const JobSpec& spec) {
  w.str(spec.name);
  w.str(spec.user);
  w.str(spec.queue);
  w.u32(spec.nodes);
  w.i64(spec.walltime.us);
  w.i64(spec.run_time.us);
  w.i64(spec.priority);
  w.u32(spec.replicas);
  w.str(spec.script);
  w.str(spec.node_type);
  w.vec(spec.features,
        [](net::Writer& w2, const std::string& f) { w2.str(f); });
  w.u32(spec.array_count);
  w.i64(spec.array_index);
}

JobSpec decode_job_spec(net::Reader& r) {
  JobSpec spec;
  spec.name = r.str();
  spec.user = r.str();
  spec.queue = r.str();
  spec.nodes = r.u32();
  spec.walltime = sim::Duration{r.i64()};
  spec.run_time = sim::Duration{r.i64()};
  spec.priority = static_cast<int32_t>(r.i64());
  spec.replicas = r.u32();
  spec.script = r.str();
  spec.node_type = r.str();
  spec.features = r.vec<std::string>([](net::Reader& r2) { return r2.str(); });
  spec.array_count = r.u32();
  spec.array_index = static_cast<int32_t>(r.i64());
  return spec;
}

void encode_job(net::Writer& w, const Job& job) {
  w.u64(job.id);
  encode_job_spec(w, job.spec);
  w.u8(static_cast<uint8_t>(job.state));
  w.i64(job.submit_time.us);
  w.i64(job.start_time.us);
  w.i64(job.end_time.us);
  w.i64(job.exit_code);
  w.boolean(job.cancelled);
  w.u64(job.queue_rank);
  w.u32(job.exec_host);
  w.vec(job.replica_hosts,
        [](net::Writer& w2, sim::HostId h) { w2.u32(h); });
}

Job decode_job(net::Reader& r) {
  Job job;
  job.id = r.u64();
  job.spec = decode_job_spec(r);
  job.state = static_cast<JobState>(r.u8());
  job.submit_time = sim::Time{r.i64()};
  job.start_time = sim::Time{r.i64()};
  job.end_time = sim::Time{r.i64()};
  job.exit_code = static_cast<int32_t>(r.i64());
  job.cancelled = r.boolean();
  job.queue_rank = r.u64();
  job.exec_host = r.u32();
  job.replica_hosts =
      r.vec<sim::HostId>([](net::Reader& r2) { return r2.u32(); });
  return job;
}

}  // namespace pbs
