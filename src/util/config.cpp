#include "util/config.h"

#include "util/strings.h"

namespace jutil {
namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  int line = 1;

  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError("config parse error at line " + std::to_string(line) +
                      ": " + what);
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void advance() {
    if (text[pos] == '\n') ++line;
    ++pos;
  }

  /// Skip whitespace and '#'-to-end-of-line comments.
  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c == '#') {
        while (!eof() && peek() != '\n') advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else {
        return;
      }
    }
  }

  /// Identifier: [A-Za-z0-9_.-]+
  std::string ident() {
    size_t start = pos;
    while (!eof()) {
      char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-') {
        advance();
      } else {
        break;
      }
    }
    if (pos == start) fail("expected identifier");
    return std::string(text.substr(start, pos - start));
  }

  std::string quoted_string() {
    // caller consumed nothing; peek() == '"'
    advance();  // opening quote
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      char c = peek();
      advance();
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) fail("unterminated escape");
        char e = peek();
        advance();
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: fail(std::string("unknown escape \\") + e);
        }
      } else {
        out += c;
      }
    }
  }

  /// Unquoted scalar: up to whitespace, '}', ',' or comment.
  std::string bare_value() {
    size_t start = pos;
    while (!eof()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c)) || c == '}' ||
          c == ',' || c == '#') {
        break;
      }
      advance();
    }
    if (pos == start) fail("expected value");
    return std::string(text.substr(start, pos - start));
  }

  std::string value_token() {
    if (peek() == '"') return quoted_string();
    return bare_value();
  }

  void parse_into(Config& cfg, bool top_level) {
    while (true) {
      skip_ws();
      if (eof()) {
        if (!top_level) fail("unexpected end of input inside section");
        return;
      }
      if (peek() == '}') {
        if (top_level) fail("unexpected '}'");
        advance();
        return;
      }
      std::string name = ident();
      skip_ws();
      if (eof()) fail("expected '=' or section after '" + name + "'");
      if (peek() == '=') {
        advance();
        skip_ws();
        if (eof()) fail("expected value after '" + name + " ='");
        if (peek() == '{') {
          advance();
          std::vector<std::string> items;
          while (true) {
            skip_ws();
            if (eof()) fail("unterminated list for '" + name + "'");
            if (peek() == '}') {
              advance();
              break;
            }
            items.push_back(value_token());
            skip_ws();
            if (!eof() && peek() == ',') advance();
          }
          cfg.set_list(name, std::move(items));
        } else {
          cfg.set(name, value_token());
        }
      } else if (peek() == '{') {
        // anonymous section: `kind { ... }` -> title ""
        advance();
        Config& sub = cfg.add_section(name, "");
        parse_into(sub, /*top_level=*/false);
      } else {
        // named section: `kind title { ... }`
        std::string title =
            (peek() == '"') ? quoted_string() : ident();
        skip_ws();
        if (eof() || peek() != '{')
          fail("expected '{' after section '" + name + " " + title + "'");
        advance();
        Config& sub = cfg.add_section(name, title);
        parse_into(sub, /*top_level=*/false);
      }
    }
  }
};

void append_escaped(std::string& out, const std::string& v) {
  bool needs_quotes = v.empty();
  for (char c : v) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '{' ||
        c == '}' || c == ',' || c == '#' || c == '=') {
      needs_quotes = true;
    }
  }
  if (!needs_quotes) {
    out += v;
    return;
  }
  out += '"';
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

Config Config::parse(std::string_view text) {
  Config cfg;
  Parser parser{text};
  parser.parse_into(cfg, /*top_level=*/true);
  return cfg;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0 || lists_.count(key) > 0;
}

const std::string& Config::get_string(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end())
    throw ConfigError("missing config key '" + key + "'");
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::get_int(const std::string& key) const {
  auto parsed = parse_num<int64_t>(get_string(key));
  if (!parsed)
    throw ConfigError("config key '" + key + "' is not an integer: '" +
                      get_string(key) + "'");
  return *parsed;
}

int64_t Config::get_int(const std::string& key, int64_t fallback) const {
  return values_.count(key) ? get_int(key) : fallback;
}

double Config::get_double(const std::string& key) const {
  const std::string& s = get_string(key);
  try {
    size_t consumed = 0;
    double v = std::stod(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not a number: '" + s + "'");
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  return values_.count(key) ? get_double(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  auto parsed = parse_bool(get_string(key));
  if (!parsed)
    throw ConfigError("config key '" + key + "' is not a boolean: '" +
                      get_string(key) + "'");
  return *parsed;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  return values_.count(key) ? get_bool(key) : fallback;
}

std::vector<std::string> Config::get_list(const std::string& key) const {
  auto it = lists_.find(key);
  if (it != lists_.end()) return it->second;
  // A scalar can be read as a one-element list for convenience.
  auto vit = values_.find(key);
  if (vit != values_.end()) return {vit->second};
  return {};
}

const Config* Config::section(const std::string& kind,
                              const std::string& title) const {
  auto it = sections_.find({kind, title});
  return it == sections_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Config::section_titles(const std::string& kind) const {
  auto it = section_order_.find(kind);
  return it == section_order_.end() ? std::vector<std::string>{} : it->second;
}

void Config::set(const std::string& key, const std::string& value) {
  if (!values_.count(key) && !lists_.count(key)) key_order_.push_back(key);
  values_[key] = value;
}

void Config::set_list(const std::string& key,
                      std::vector<std::string> values) {
  if (!values_.count(key) && !lists_.count(key)) key_order_.push_back(key);
  lists_[key] = std::move(values);
}

Config& Config::add_section(const std::string& kind, const std::string& title) {
  auto key = std::make_pair(kind, title);
  auto it = sections_.find(key);
  if (it == sections_.end()) {
    it = sections_.emplace(key, std::make_unique<Config>()).first;
    section_order_[kind].push_back(title);
  }
  return *it->second;
}

std::string Config::to_string() const {
  std::string out;
  to_string_indented(out, 0);
  return out;
}

void Config::to_string_indented(std::string& out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  for (const std::string& key : key_order_) {
    out += pad;
    out += key;
    out += " = ";
    auto lit = lists_.find(key);
    if (lit != lists_.end()) {
      out += '{';
      for (size_t i = 0; i < lit->second.size(); ++i) {
        if (i) out += ", ";
        append_escaped(out, lit->second[i]);
      }
      out += '}';
    } else {
      append_escaped(out, values_.at(key));
    }
    out += '\n';
  }
  for (const auto& [kind, titles] : section_order_) {
    for (const std::string& title : titles) {
      out += pad;
      out += kind;
      if (!title.empty()) {
        out += ' ';
        append_escaped(out, title);
      }
      out += " {\n";
      sections_.at({kind, title})->to_string_indented(out, indent + 1);
      out += pad;
      out += "}\n";
    }
  }
}

}  // namespace jutil
