// Human-readable duration formatting, used for the Figure 12 downtime table
// ("5d 4h 21min", "1h 45min", "1min 30s", "1s").
#pragma once

#include <cstdint>
#include <string>

namespace jutil {

/// Format a duration given in seconds the way the paper's Figure 12 does:
/// the two most significant non-zero units among d/h/min/s, sub-second values
/// as milliseconds. Examples: 449,... -> "5d 4h", 6300 -> "1h 45min",
/// 90 -> "1min 30s", 1.26 -> "1s".
std::string format_duration_coarse(double seconds);

/// Format availability as "N nines" count, e.g. 0.9998 -> 3 (99.98% has 3
/// significant nines the way the paper counts: 9s in the decimal expansion).
int count_nines(double availability);

/// Render availability as a percentage with just enough digits to show the
/// nines structure, e.g. 0.99999996 -> "99.999996%".
std::string format_availability(double availability);

}  // namespace jutil
