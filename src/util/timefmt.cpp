#include "util/timefmt.h"

#include <cmath>
#include <cstdio>

namespace jutil {

std::string format_duration_coarse(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  if (seconds < 0.5) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1000.0);
    return buf;
  }
  auto total = static_cast<int64_t>(std::llround(seconds));
  int64_t d = total / 86400;
  int64_t h = (total % 86400) / 3600;
  int64_t m = (total % 3600) / 60;
  int64_t s = total % 60;
  std::string out;
  char buf[32];
  auto emit = [&](int64_t v, const char* unit) {
    if (v == 0) return;
    if (!out.empty()) out += ' ';
    std::snprintf(buf, sizeof buf, "%lld%s", static_cast<long long>(v), unit);
    out += buf;
  };
  emit(d, "d");
  emit(h, "h");
  emit(m, "min");
  // The paper's table drops seconds once the downtime reaches hours
  // ("1h 45min", "5d 4h 21min") but keeps them below ("1min 30s").
  if (d == 0 && h == 0) emit(s, "s");
  if (out.empty()) out = "0s";
  return out;
}

int count_nines(double availability) {
  // Count the consecutive leading '9' digits of the availability expressed as
  // a percentage (the way the paper's Figure 12 column counts them):
  // 98.6% -> 1, 99.98% -> 3, 99.9997% -> 5, 99.999996% -> 7.
  if (availability >= 1.0) return 15;  // effectively perfect
  if (availability <= 0.0) return 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12f", availability * 100.0);
  int nines = 0;
  for (const char* p = buf; *p; ++p) {
    if (*p == '.') continue;
    if (*p == '9') {
      ++nines;
    } else {
      break;
    }
  }
  return nines;
}

std::string format_availability(double availability) {
  if (availability >= 1.0) return "100%";
  double pct = availability * 100.0;
  // Precision that exposes the first non-nine digit after the run of
  // nines: k nines occupy two integer digits plus (k-2) decimals, so
  // max(1, k-1) decimals shows the digit that breaks the run
  // (98.6% -> 1, 99.98% -> 2, 99.999996% -> 6).
  int nines = count_nines(availability);
  int prec = nines > 1 ? nines - 1 : 1;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, pct);
  // Trim trailing zeros (keep at least one decimal digit).
  std::string s = buf;
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last = dot + 1;
    s.erase(last + 1);
  }
  return s + "%";
}

}  // namespace jutil
