// Small online/offline statistics helpers used by benches and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jutil {

/// Accumulates samples; computes mean/min/max/stddev/percentiles on demand.
class Samples {
 public:
  void add(double v);
  void clear();

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1); 0 for fewer than two samples.
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  void ensure_sorted() const;
};

/// Fixed-bucket histogram for latency distributions.
class Histogram {
 public:
  /// Buckets: [lo, lo+width), [lo+width, lo+2*width), ...; out-of-range
  /// samples clamp into the first/last bucket.
  Histogram(double lo, double width, size_t buckets);

  void add(double v);
  uint64_t bucket_count(size_t i) const { return counts_.at(i); }
  size_t buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  double bucket_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  /// Render as an ASCII bar chart for bench output.
  std::string render(size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace jutil
