#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace jutil {

void Samples::add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

void Samples::clear() {
  values_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

double Samples::mean() const {
  return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.back();
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::out_of_range("percentile");
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

Histogram::Histogram(double lo, double width, size_t buckets)
    : lo_(lo), width_(width), counts_(buckets, 0) {
  if (buckets == 0 || width <= 0.0)
    throw std::invalid_argument("Histogram: bad shape");
}

void Histogram::add(double v) {
  double idx = (v - lo_) / width_;
  size_t i;
  if (idx < 0.0) {
    i = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<size_t>(idx);
  }
  ++counts_[i];
  ++total_;
}

std::string Histogram::render(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char head[80];
  for (size_t i = 0; i < counts_.size(); ++i) {
    int n = std::snprintf(head, sizeof head, "%10.3f | %8llu | ", bucket_lo(i),
                          static_cast<unsigned long long>(counts_[i]));
    out.append(head, static_cast<size_t>(n));
    size_t bar = peak == 0 ? 0
                           : static_cast<size_t>(static_cast<double>(counts_[i]) /
                                                 static_cast<double>(peak) *
                                                 static_cast<double>(max_width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace jutil
