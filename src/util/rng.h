// Deterministic random number generation.
//
// Every stochastic decision in the simulator draws from a Rng owned by the
// Simulation, so a (seed, workload) pair fully determines an experiment.
#pragma once

#include <cstdint>
#include <random>

namespace jutil {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, n). n must be > 0.
  uint64_t next_u64(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform in [0.0, 1.0).
  double next_double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal distribution, clamped at zero from below.
  double normal_nonneg(double mean, double stddev) {
    double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < 0.0 ? 0.0 : v;
  }

  /// Derive an independent child stream (e.g. one per host).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace jutil
