// libconfuse-style configuration file parser.
//
// The paper's JOSHUA v0.1 uses libconfuse for its configuration files
// (Figure 9). This is a from-scratch reimplementation of the subset JOSHUA
// needs:
//
//   # comment
//   key = value            # int, float, bool, or string
//   name = "quoted string"
//   list = {a, b, "c d"}   # string list
//   section title {        # named nested section
//     key = value
//   }
//
// Values are stored as strings and converted on access; conversion failures
// surface as ConfigError with the offending key and line number.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace jutil {

/// Thrown on syntax errors and failed typed lookups.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed configuration tree. Keys are case-sensitive.
class Config {
 public:
  Config() = default;

  /// Parse configuration text. Throws ConfigError with a line number on
  /// malformed input.
  static Config parse(std::string_view text);

  // -- scalar access ---------------------------------------------------------

  bool has(const std::string& key) const;

  /// Raw string value; throws ConfigError if absent.
  const std::string& get_string(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  int64_t get_int(const std::string& key) const;
  int64_t get_int(const std::string& key, int64_t fallback) const;

  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;

  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// String list declared with {..}; empty vector if absent.
  std::vector<std::string> get_list(const std::string& key) const;

  // -- sections --------------------------------------------------------------

  /// Named sub-sections declared as `kind title { ... }`, keyed by title.
  /// Returns nullptr when no such section exists.
  const Config* section(const std::string& kind, const std::string& title) const;

  /// All titles of sections of a given kind, in declaration order.
  std::vector<std::string> section_titles(const std::string& kind) const;

  /// All scalar keys, in declaration order.
  std::vector<std::string> keys() const { return key_order_; }

  // -- mutation (for programmatic construction in tests/benches) -------------

  void set(const std::string& key, const std::string& value);
  void set_list(const std::string& key, std::vector<std::string> values);
  Config& add_section(const std::string& kind, const std::string& title);

  /// Serialize back to configuration-file syntax.
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::vector<std::string>> lists_;
  std::vector<std::string> key_order_;
  // (kind, title) -> section, plus declaration order of titles per kind.
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Config>>
      sections_;
  std::map<std::string, std::vector<std::string>> section_order_;

  void to_string_indented(std::string& out, int indent) const;
};

}  // namespace jutil
