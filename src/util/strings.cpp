#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace jutil {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::optional<bool> parse_bool(std::string_view s) {
  std::string l = to_lower(trim(s));
  if (l == "true" || l == "yes" || l == "on" || l == "1") return true;
  if (l == "false" || l == "no" || l == "off" || l == "0") return false;
  return std::nullopt;
}

}  // namespace jutil
