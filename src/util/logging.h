// Leveled, component-tagged logging with an injectable clock.
//
// The simulator injects its virtual clock so log lines carry simulated time;
// outside a simulation the logger falls back to a monotonic wall clock.
// Mirrors the "message and logging facilities" of the paper's libjutils
// (Figure 9).
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace jutil {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Global logging configuration. Not thread-safe by design: the project is a
/// single-threaded discrete-event simulation; the benchmark harness runs one
/// Logger-free simulation per thread (logging disabled at kOff).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view line)>;
  using Clock = std::function<int64_t()>;  ///< returns microseconds

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  /// Inject a time source (e.g. the simulation clock); nullptr to restore.
  void set_clock(Clock clock);

  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  Clock clock_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace jutil

// Usage: JLOG(kInfo, "gcs") << "view " << view_id << " installed";
// The stream expression is only evaluated when the level is enabled.
#define JLOG(level, component)                                      \
  if (!::jutil::Logger::instance().enabled(::jutil::LogLevel::level)) \
    ;                                                               \
  else                                                              \
    ::jutil::detail::LogLine(::jutil::LogLevel::level, (component))
