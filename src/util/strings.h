// String helpers shared across the project (split/trim/join/formatting).
//
// These mirror the "i/o, lists and misc" utilities the paper's libjutils
// component provides (Figure 9).
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jutil {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on any whitespace run, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Parse an integer; std::nullopt on any trailing garbage or overflow.
template <typename T>
std::optional<T> parse_num(std::string_view s) {
  T value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Parse "true/false/yes/no/on/off/1/0" (case-insensitive).
std::optional<bool> parse_bool(std::string_view s);

}  // namespace jutil
