#include "util/logging.h"

#include <chrono>
#include <cstdio>

namespace jutil {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel, std::string_view line) {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel, std::string_view line) {
      std::fwrite(line.data(), 1, line.size(), stderr);
      std::fputc('\n', stderr);
    };
  }
}

void Logger::set_clock(Clock clock) { clock_ = std::move(clock); }

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  if (!enabled(level)) return;
  int64_t us;
  if (clock_) {
    us = clock_();
  } else {
    us = std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count();
  }
  char head[96];
  int n = std::snprintf(head, sizeof head, "[%12.6f] %s [%.*s] ",
                        static_cast<double>(us) / 1e6,
                        std::string(to_string(level)).c_str(),
                        static_cast<int>(component.size()), component.data());
  std::string line;
  line.reserve(static_cast<size_t>(n) + msg.size());
  line.append(head, static_cast<size_t>(n));
  line.append(msg);
  sink_(level, line);
}

}  // namespace jutil
