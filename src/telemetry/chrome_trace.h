// Chrome trace-event JSON exporter (the format Perfetto / chrome://tracing
// load). Every simulated host becomes one named track (pid 0, tid = host
// id); instants map to "i", begin/end to "B"/"E", complete spans to "X".
// Events are sorted by timestamp before writing, so per-track timestamps
// are monotone even though complete() records are pushed at span end.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace telemetry {

/// `host_names[i]` names track i; hosts beyond the vector get "host<i>".
std::string chrome_trace_json(const TraceBuffer& trace,
                              const std::vector<std::string>& host_names);

void write_chrome_trace(std::ostream& out, const TraceBuffer& trace,
                        const std::vector<std::string>& host_names);

/// Returns false when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path, const TraceBuffer& trace,
                             const std::vector<std::string>& host_names);

}  // namespace telemetry
