// Structured trace layer: compact fixed-size records in a growable ring.
//
// This supersedes the string-concatenating sim::Trace for hot paths: a
// record is (timestamp, host, interned category id, phase, two integer
// args) -- no strings are built at record time, and once the ring reaches
// its capacity the record path performs zero heap allocations (older
// records are overwritten, newest-wins, like a flight recorder).
//
// Spans: either record begin()/end() pairs, or remember the start time at
// the call site and emit one complete() record when the operation finishes.
// complete() is what the instrumentation uses -- it cannot leave an
// unbalanced span when a host crashes mid-operation.
//
// Timestamps are raw simulated-time microseconds (sim::Time::us); the
// telemetry layer deliberately sits below the simulator and takes plain
// integers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace telemetry {

class TraceBuffer {
 public:
  enum class Phase : uint8_t { kInstant = 0, kBegin, kEnd, kComplete };

  struct Record {
    int64_t ts_us = 0;
    int64_t dur_us = 0;  ///< kComplete only
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
    uint32_t host = 0;
    uint16_t cat = 0;
    Phase phase = Phase::kInstant;
  };

  /// Intern a category name; stable id for the buffer's lifetime.
  uint16_t intern(std::string_view name);
  const std::string& category_name(uint16_t cat) const {
    return categories_[cat];
  }
  size_t category_count() const { return categories_.size(); }

  /// Ring capacity in records (default 64K). Resets the buffer.
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  /// Reserve a dedicated sub-ring of `capacity` records for one category.
  /// Its records stop competing with the shared ring, so a flood of
  /// high-rate categories (data-path events in a long campaign) cannot
  /// evict a rare stream's early records (the first view changes). Capacity
  /// 0 routes the category back to the shared ring. Resets the sub-ring.
  void set_category_capacity(uint16_t cat, size_t capacity);
  size_t category_capacity(uint16_t cat) const {
    return cat < sub_.size() ? sub_[cat].cap : 0;
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void instant(int64_t ts_us, uint32_t host, uint16_t cat, uint64_t arg0 = 0,
               uint64_t arg1 = 0) {
    push({ts_us, 0, arg0, arg1, host, cat, Phase::kInstant});
  }
  void begin(int64_t ts_us, uint32_t host, uint16_t cat, uint64_t arg0 = 0,
             uint64_t arg1 = 0) {
    push({ts_us, 0, arg0, arg1, host, cat, Phase::kBegin});
  }
  void end(int64_t ts_us, uint32_t host, uint16_t cat, uint64_t arg0 = 0,
           uint64_t arg1 = 0) {
    push({ts_us, 0, arg0, arg1, host, cat, Phase::kEnd});
  }
  void complete(int64_t start_us, int64_t end_us, uint32_t host, uint16_t cat,
                uint64_t arg0 = 0, uint64_t arg1 = 0) {
    push({start_us, end_us - start_us, arg0, arg1, host, cat,
          Phase::kComplete});
  }

  /// Records currently held across the shared ring and every sub-ring.
  size_t size() const {
    size_t n = buf_.size();
    for (const SubRing& s : sub_) n += s.buf.size();
    return n;
  }
  /// Total records ever pushed.
  uint64_t recorded() const { return recorded_; }
  /// Records overwritten after a ring filled.
  uint64_t dropped() const {
    return recorded_ - static_cast<uint64_t>(size());
  }
  /// Records of one category overwritten after the ring filled. A long
  /// campaign that truncates must say WHICH stream lost its early events,
  /// not just how many records went missing overall.
  uint64_t dropped(uint16_t cat) const {
    return cat < dropped_by_cat_.size() ? dropped_by_cat_[cat] : 0;
  }

  /// Visit held records in timestamp order (k-way merge of the shared ring
  /// and every sub-ring; each ring is individually time-ordered because
  /// simulated time is monotonic).
  template <typename F>
  void for_each(F&& f) const {
    if (sub_.empty()) {  // common case: no quotas configured
      for (size_t i = head_; i < buf_.size(); ++i) f(buf_[i]);
      for (size_t i = 0; i < head_; ++i) f(buf_[i]);
      return;
    }
    struct Cursor {
      const std::vector<Record>* buf;
      size_t head;
      size_t pos = 0;  ///< records consumed, oldest first
    };
    std::vector<Cursor> cursors;
    cursors.push_back({&buf_, head_});
    for (const SubRing& s : sub_)
      if (!s.buf.empty()) cursors.push_back({&s.buf, s.head});
    auto at = [](const Cursor& c) -> const Record& {
      size_t i = c.head + c.pos;
      if (i >= c.buf->size()) i -= c.buf->size();
      return (*c.buf)[i];
    };
    for (;;) {
      const Record* best = nullptr;
      size_t best_ix = 0;
      for (size_t i = 0; i < cursors.size(); ++i) {
        if (cursors[i].pos >= cursors[i].buf->size()) continue;
        const Record& r = at(cursors[i]);
        if (best == nullptr || r.ts_us < best->ts_us) {
          best = &r;
          best_ix = i;
        }
      }
      if (best == nullptr) break;
      f(*best);
      ++cursors[best_ix].pos;
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_by_cat_.assign(dropped_by_cat_.size(), 0);
    for (SubRing& s : sub_) {
      s.buf.clear();
      s.head = 0;
    }
  }

 private:
  /// Dedicated ring for one quota'd category.
  struct SubRing {
    std::vector<Record> buf;
    size_t head = 0;  ///< oldest record once wrapped
    size_t cap = 0;   ///< 0 = no quota (shared ring)
  };

  void push(const Record& r) {
    if (!enabled_) return;
    ++recorded_;
    if (r.cat < sub_.size() && sub_[r.cat].cap > 0) {
      SubRing& s = sub_[r.cat];
      if (s.buf.size() < s.cap) {
        s.buf.push_back(r);
        return;
      }
      if (r.cat < dropped_by_cat_.size()) ++dropped_by_cat_[r.cat];
      s.buf[s.head] = r;
      s.head = s.head + 1 == s.cap ? 0 : s.head + 1;
      return;
    }
    if (buf_.size() < capacity_) {
      buf_.push_back(r);  // growth phase; amortized, pre-capacity only
      return;
    }
    // Steady state: overwrite oldest, no allocation (dropped_by_cat_ was
    // sized at intern time, so the increment is a plain array store; a
    // never-interned id only shows up in the aggregate dropped() count).
    uint16_t old_cat = buf_[head_].cat;
    if (old_cat < dropped_by_cat_.size()) ++dropped_by_cat_[old_cat];
    buf_[head_] = r;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }

  std::vector<Record> buf_;
  size_t head_ = 0;  ///< oldest record once the ring has wrapped
  size_t capacity_ = 1 << 16;
  uint64_t recorded_ = 0;
  bool enabled_ = true;
  std::vector<std::string> categories_;
  std::map<std::string, uint16_t, std::less<>> category_ix_;
  std::vector<uint64_t> dropped_by_cat_;  ///< indexed by category id
  std::vector<SubRing> sub_;              ///< indexed by category id
};

}  // namespace telemetry
