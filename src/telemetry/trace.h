// Structured trace layer: compact fixed-size records in a growable ring.
//
// This supersedes the string-concatenating sim::Trace for hot paths: a
// record is (timestamp, host, interned category id, phase, two integer
// args) -- no strings are built at record time, and once the ring reaches
// its capacity the record path performs zero heap allocations (older
// records are overwritten, newest-wins, like a flight recorder).
//
// Spans: either record begin()/end() pairs, or remember the start time at
// the call site and emit one complete() record when the operation finishes.
// complete() is what the instrumentation uses -- it cannot leave an
// unbalanced span when a host crashes mid-operation.
//
// Timestamps are raw simulated-time microseconds (sim::Time::us); the
// telemetry layer deliberately sits below the simulator and takes plain
// integers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace telemetry {

class TraceBuffer {
 public:
  enum class Phase : uint8_t { kInstant = 0, kBegin, kEnd, kComplete };

  struct Record {
    int64_t ts_us = 0;
    int64_t dur_us = 0;  ///< kComplete only
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
    uint32_t host = 0;
    uint16_t cat = 0;
    Phase phase = Phase::kInstant;
  };

  /// Intern a category name; stable id for the buffer's lifetime.
  uint16_t intern(std::string_view name);
  const std::string& category_name(uint16_t cat) const {
    return categories_[cat];
  }
  size_t category_count() const { return categories_.size(); }

  /// Ring capacity in records (default 64K). Resets the buffer.
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void instant(int64_t ts_us, uint32_t host, uint16_t cat, uint64_t arg0 = 0,
               uint64_t arg1 = 0) {
    push({ts_us, 0, arg0, arg1, host, cat, Phase::kInstant});
  }
  void begin(int64_t ts_us, uint32_t host, uint16_t cat, uint64_t arg0 = 0,
             uint64_t arg1 = 0) {
    push({ts_us, 0, arg0, arg1, host, cat, Phase::kBegin});
  }
  void end(int64_t ts_us, uint32_t host, uint16_t cat, uint64_t arg0 = 0,
           uint64_t arg1 = 0) {
    push({ts_us, 0, arg0, arg1, host, cat, Phase::kEnd});
  }
  void complete(int64_t start_us, int64_t end_us, uint32_t host, uint16_t cat,
                uint64_t arg0 = 0, uint64_t arg1 = 0) {
    push({start_us, end_us - start_us, arg0, arg1, host, cat,
          Phase::kComplete});
  }

  /// Records currently held (<= capacity).
  size_t size() const { return buf_.size(); }
  /// Total records ever pushed.
  uint64_t recorded() const { return recorded_; }
  /// Records overwritten after the ring filled.
  uint64_t dropped() const {
    return recorded_ - static_cast<uint64_t>(buf_.size());
  }
  /// Records of one category overwritten after the ring filled. A long
  /// campaign that truncates must say WHICH stream lost its early events,
  /// not just how many records went missing overall.
  uint64_t dropped(uint16_t cat) const {
    return cat < dropped_by_cat_.size() ? dropped_by_cat_[cat] : 0;
  }

  /// Visit held records oldest -> newest.
  template <typename F>
  void for_each(F&& f) const {
    for (size_t i = head_; i < buf_.size(); ++i) f(buf_[i]);
    for (size_t i = 0; i < head_; ++i) f(buf_[i]);
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_by_cat_.assign(dropped_by_cat_.size(), 0);
  }

 private:
  void push(const Record& r) {
    if (!enabled_) return;
    ++recorded_;
    if (buf_.size() < capacity_) {
      buf_.push_back(r);  // growth phase; amortized, pre-capacity only
      return;
    }
    // Steady state: overwrite oldest, no allocation (dropped_by_cat_ was
    // sized at intern time, so the increment is a plain array store; a
    // never-interned id only shows up in the aggregate dropped() count).
    uint16_t old_cat = buf_[head_].cat;
    if (old_cat < dropped_by_cat_.size()) ++dropped_by_cat_[old_cat];
    buf_[head_] = r;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  }

  std::vector<Record> buf_;
  size_t head_ = 0;  ///< oldest record once the ring has wrapped
  size_t capacity_ = 1 << 16;
  uint64_t recorded_ = 0;
  bool enabled_ = true;
  std::vector<std::string> categories_;
  std::map<std::string, uint16_t, std::less<>> category_ix_;
  std::vector<uint64_t> dropped_by_cat_;  ///< indexed by category id
};

}  // namespace telemetry
