#include "telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace telemetry {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[40];
  double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.12g", v);
  }
  out += buf;
}

namespace {

/// Recursive-descent reader that flattens into a FlatJson as it parses;
/// no intermediate DOM is built.
class FlatParser {
 public:
  explicit FlatParser(std::string_view text) : text_(text) {}

  FlatJson run() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '{')
      fail("report must be a JSON object");
    parse_value("");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return std::move(out_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("telemetry::parse_flat_json: " + what +
                             " at offset " + std::to_string(pos_));
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = next();
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<unsigned>(h - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  static std::string join(const std::string& prefix, std::string_view leaf) {
    if (prefix.empty()) return std::string(leaf);
    std::string out = prefix;
    out += '.';
    out += leaf;
    return out;
  }

  void parse_value(const std::string& path) {
    skip_ws();
    switch (peek()) {
      case '{': parse_object(path); return;
      case '[': parse_array(path); return;
      case '"': {
        std::string s = parse_string();
        if (!path.empty()) out_.strings[path] = std::move(s);
        return;
      }
      case 't':
      case 'f': {
        bool v = parse_literal();
        if (!path.empty()) out_.numbers[path] = v ? 1.0 : 0.0;
        return;
      }
      case 'n':
        parse_null();
        return;
      default: {
        double v = parse_number();
        if (!path.empty()) out_.numbers[path] = v;
        return;
      }
    }
  }

  void parse_object(const std::string& path) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      next();
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      parse_value(join(path, key));
      skip_ws();
      char c = next();
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  void parse_array(const std::string& path) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      next();
      return;
    }
    size_t index = 0;
    while (true) {
      parse_value(join(path, std::to_string(index++)));
      skip_ws();
      char c = next();
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (next() != '\\' || next() != 'u')
              fail("unpaired high surrogate");
            unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired high surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  bool parse_literal() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("bad literal");
  }

  void parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
  }

  double parse_number() {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("bad number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
  FlatJson out_;
};

}  // namespace

FlatJson parse_flat_json(std::string_view text) {
  return FlatParser(text).run();
}

}  // namespace telemetry
