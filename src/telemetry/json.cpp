#include "telemetry/json.h"

#include <cmath>
#include <cstdio>

namespace telemetry {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char buf[40];
  double r = std::nearbyint(v);
  if (r == v && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.12g", v);
  }
  out += buf;
}

}  // namespace telemetry
