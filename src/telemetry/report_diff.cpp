#include "telemetry/report_diff.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace telemetry {

bool glob_match(std::string_view pattern, std::string_view name) {
  // Iterative glob with single-star backtracking: on mismatch, retry from
  // the last '*' consuming one more character of `name`.
  size_t p = 0, n = 0;
  size_t star = std::string_view::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

Direction parse_direction(const std::string& s, std::string_view where) {
  if (s == "both") return Direction::kBoth;
  if (s == "higher_is_better") return Direction::kHigherIsBetter;
  if (s == "lower_is_better") return Direction::kLowerIsBetter;
  throw std::runtime_error("report_diff rules: bad direction \"" + s +
                           "\" in " + std::string(where));
}

/// A change regresses when it moves out of BOTH bands in the bad
/// direction; it improves when out of both bands in the good direction.
DiffEntry::Status judge(double baseline, double current, double abs_band,
                        double rel_band, Direction direction) {
  double delta = current - baseline;
  bool in_abs = std::fabs(delta) <= abs_band;
  bool in_rel = std::fabs(delta) <= rel_band * std::fabs(baseline);
  if (in_abs || in_rel) return DiffEntry::Status::kOk;
  bool worse = direction == Direction::kBoth ||
               (direction == Direction::kHigherIsBetter && delta < 0) ||
               (direction == Direction::kLowerIsBetter && delta > 0);
  return worse ? DiffEntry::Status::kRegressed : DiffEntry::Status::kImproved;
}

}  // namespace

DiffOptions parse_rules(std::string_view text) {
  // The rules file is itself a flat-parseable JSON object: defaults land
  // under "default.*", rule fields under "rules.<i>.*".
  FlatJson flat = parse_flat_json(text);
  DiffOptions options;

  std::set<size_t> rule_indices;
  // Keys starting with '_' (at either level) are comments.
  auto is_comment = [](std::string_view key) {
    return !key.empty() &&
           (key[0] == '_' || key.find("._") != std::string_view::npos);
  };
  auto field_of = [&](std::string_view key,
                      std::string_view& field) -> bool {
    // "rules.<i>.<field>" -> rule index + field name.
    if (key.substr(0, 6) != "rules.") return false;
    size_t dot = key.find('.', 6);
    if (dot == std::string_view::npos)
      throw std::runtime_error("report_diff rules: \"rules\" must be a list "
                               "of rule objects");
    size_t index = 0;
    for (char c : key.substr(6, dot - 6)) {
      if (c < '0' || c > '9')
        throw std::runtime_error("report_diff rules: \"rules\" must be a "
                                 "list of rule objects");
      index = index * 10 + static_cast<size_t>(c - '0');
    }
    rule_indices.insert(index);
    field = key.substr(dot + 1);
    return true;
  };

  // First pass: find every rule index so the list is dense and ordered.
  for (const auto& [key, value] : flat.numbers) {
    (void)value;
    std::string_view field;
    if (!is_comment(key)) field_of(key, field);
  }
  for (const auto& [key, value] : flat.strings) {
    (void)value;
    std::string_view field;
    if (!is_comment(key)) field_of(key, field);
  }
  options.rules.resize(rule_indices.size());
  if (!rule_indices.empty() &&
      (*rule_indices.begin() != 0 ||
       *rule_indices.rbegin() != rule_indices.size() - 1))
    throw std::runtime_error("report_diff rules: non-contiguous rule list");

  for (const auto& [key, value] : flat.numbers) {
    std::string_view field;
    if (is_comment(key)) continue;
    if (field_of(key, field)) {
      size_t index = static_cast<size_t>(
          std::stoul(std::string(key.substr(6, key.find('.', 6) - 6))));
      ToleranceRule& rule = options.rules[index];
      if (field == "abs_band") rule.abs_band = value;
      else if (field == "rel_band") rule.rel_band = value;
      else if (field == "required") rule.required = value != 0.0;
      else if (field == "ignore") rule.ignore = value != 0.0;
      else
        throw std::runtime_error("report_diff rules: unknown rule field \"" +
                                 std::string(field) + "\"");
    } else if (key == "default.abs_band") {
      options.default_abs_band = value;
    } else if (key == "default.rel_band") {
      options.default_rel_band = value;
    } else if (key == "fail_on_missing") {
      options.fail_on_missing = value != 0.0;
    } else {
      throw std::runtime_error("report_diff rules: unknown field \"" + key +
                               "\"");
    }
  }
  for (const auto& [key, value] : flat.strings) {
    std::string_view field;
    if (is_comment(key)) continue;
    if (field_of(key, field)) {
      size_t index = static_cast<size_t>(
          std::stoul(std::string(key.substr(6, key.find('.', 6) - 6))));
      ToleranceRule& rule = options.rules[index];
      if (field == "pattern") rule.pattern = value;
      else if (field == "direction")
        rule.direction = parse_direction(value, key);
      else
        throw std::runtime_error("report_diff rules: unknown rule field \"" +
                                 std::string(field) + "\"");
    } else if (key == "default.direction") {
      options.default_direction = parse_direction(value, key);
    } else {
      throw std::runtime_error("report_diff rules: unknown field \"" + key +
                               "\"");
    }
  }
  for (size_t i = 0; i < options.rules.size(); ++i) {
    if (options.rules[i].pattern.empty())
      throw std::runtime_error("report_diff rules: rule " + std::to_string(i) +
                               " has no pattern");
  }
  return options;
}

DiffResult diff_reports(const FlatJson& baseline, const FlatJson& current,
                        const DiffOptions& options) {
  auto rule_for = [&](std::string_view name) -> const ToleranceRule* {
    for (const ToleranceRule& rule : options.rules) {
      if (glob_match(rule.pattern, name)) return &rule;
    }
    return nullptr;
  };

  DiffResult result;
  for (const auto& [name, base_value] : baseline.numbers) {
    const ToleranceRule* rule = rule_for(name);
    DiffEntry entry;
    entry.name = name;
    entry.baseline = base_value;
    if (rule != nullptr && rule->ignore) {
      entry.current = current.get(name);
      entry.status = DiffEntry::Status::kIgnored;
      result.entries.push_back(std::move(entry));
      continue;
    }
    if (!current.has(name)) {
      entry.status = DiffEntry::Status::kMissing;
      bool fails = options.fail_on_missing || (rule != nullptr && rule->required);
      if (fails) ++result.missing;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.current = current.get(name);
    entry.delta = entry.current - entry.baseline;
    entry.rel_delta =
        entry.baseline == 0.0 ? 0.0 : entry.delta / std::fabs(entry.baseline);
    double abs_band = rule != nullptr ? rule->abs_band : options.default_abs_band;
    double rel_band = rule != nullptr ? rule->rel_band : options.default_rel_band;
    Direction direction =
        rule != nullptr ? rule->direction : options.default_direction;
    entry.status =
        judge(entry.baseline, entry.current, abs_band, rel_band, direction);
    ++result.compared;
    if (entry.status == DiffEntry::Status::kRegressed) ++result.regressed;
    if (entry.status == DiffEntry::Status::kImproved) ++result.improved;
    result.entries.push_back(std::move(entry));
  }

  // Required keys that exist in neither report still fail: the rule says
  // the current report must carry them.
  for (const ToleranceRule& rule : options.rules) {
    if (!rule.required || rule.ignore) continue;
    if (rule.pattern.find('*') != std::string::npos) continue;  // literal only
    if (baseline.has(rule.pattern) || current.has(rule.pattern)) continue;
    DiffEntry entry;
    entry.name = rule.pattern;
    entry.status = DiffEntry::Status::kMissing;
    ++result.missing;
    result.entries.push_back(std::move(entry));
  }

  for (const auto& [name, value] : current.numbers) {
    if (baseline.has(name)) continue;
    DiffEntry entry;
    entry.name = name;
    entry.current = value;
    entry.status = DiffEntry::Status::kExtra;
    result.entries.push_back(std::move(entry));
  }
  return result;
}

std::string render_diff(const DiffResult& result, bool verbose) {
  auto tag = [](DiffEntry::Status s) {
    switch (s) {
      case DiffEntry::Status::kOk: return "ok        ";
      case DiffEntry::Status::kImproved: return "IMPROVED  ";
      case DiffEntry::Status::kRegressed: return "REGRESSED ";
      case DiffEntry::Status::kMissing: return "MISSING   ";
      case DiffEntry::Status::kExtra: return "extra     ";
      case DiffEntry::Status::kIgnored: return "ignored   ";
    }
    return "?         ";
  };
  std::string out;
  char tail[160];
  for (const DiffEntry& e : result.entries) {
    bool interesting = e.status == DiffEntry::Status::kRegressed ||
                       e.status == DiffEntry::Status::kMissing ||
                       e.status == DiffEntry::Status::kImproved;
    if (!verbose && !interesting) continue;
    out += tag(e.status);
    out += ' ';
    out += e.name;
    if (e.name.size() < 48) out.append(48 - e.name.size(), ' ');
    if (e.status == DiffEntry::Status::kMissing) {
      std::snprintf(tail, sizeof tail, " baseline=%.6g (absent)\n", e.baseline);
    } else if (e.status == DiffEntry::Status::kExtra) {
      std::snprintf(tail, sizeof tail, " current=%.6g (new)\n", e.current);
    } else {
      std::snprintf(tail, sizeof tail, " %.6g -> %.6g  (%+.6g, %+.2f%%)\n",
                    e.baseline, e.current, e.delta, e.rel_delta * 100.0);
    }
    out += tail;
  }
  std::snprintf(tail, sizeof tail,
                "%zu compared, %zu regressed, %zu missing, %zu improved\n",
                result.compared, result.regressed, result.missing,
                result.improved);
  out += tail;
  return out;
}

}  // namespace telemetry
