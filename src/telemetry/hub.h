// Per-simulation telemetry context: one metrics registry plus one
// structured trace ring. Owned by sim::Simulation and reached from any
// component as sim().telemetry(); the telemetry layer itself has no
// simulator dependency.
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace telemetry {

class Hub {
 public:
  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

 private:
  Registry metrics_;
  TraceBuffer trace_;
};

}  // namespace telemetry
