#include "telemetry/trace.h"

#include <stdexcept>

namespace telemetry {

uint16_t TraceBuffer::intern(std::string_view name) {
  auto it = category_ix_.find(name);
  if (it != category_ix_.end()) return it->second;
  if (categories_.size() >= 0xffff)
    throw std::length_error("TraceBuffer: category space exhausted");
  auto id = static_cast<uint16_t>(categories_.size());
  categories_.emplace_back(name);
  category_ix_.emplace(std::string(name), id);
  dropped_by_cat_.push_back(0);
  return id;
}

void TraceBuffer::set_capacity(size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("TraceBuffer: capacity 0");
  capacity_ = capacity;
  buf_.clear();
  buf_.shrink_to_fit();
  head_ = 0;
  recorded_ = 0;
  dropped_by_cat_.assign(dropped_by_cat_.size(), 0);
  for (SubRing& s : sub_) {
    s.buf.clear();
    s.head = 0;
  }
}

void TraceBuffer::set_category_capacity(uint16_t cat, size_t capacity) {
  if (cat >= categories_.size())
    throw std::out_of_range("TraceBuffer: unknown category");
  if (cat >= sub_.size()) sub_.resize(categories_.size());
  SubRing& s = sub_[cat];
  s.cap = capacity;
  s.buf.clear();
  s.buf.shrink_to_fit();
  if (capacity > 0) s.buf.reserve(capacity);
  s.head = 0;
}

}  // namespace telemetry
