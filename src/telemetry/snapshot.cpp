#include "telemetry/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/json.h"

namespace telemetry {

std::string metrics_json(const Registry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : registry.counters()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, c.name);
    out += ':';
    append_json_number(out, static_cast<double>(c.value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, g.name);
    out += ':';
    append_json_number(out, static_cast<double>(g.value));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, h.name);
    out += ":{\"count\":";
    append_json_number(out, static_cast<double>(h.data.count));
    out += ",\"mean\":";
    append_json_number(out, h.data.mean());
    out += ",\"p50\":";
    append_json_number(out, h.data.percentile(50));
    out += ",\"p95\":";
    append_json_number(out, h.data.percentile(95));
    out += ",\"p99\":";
    append_json_number(out, h.data.percentile(99));
    out += ",\"min\":";
    append_json_number(out, static_cast<double>(h.data.min));
    out += ",\"max\":";
    append_json_number(out, static_cast<double>(h.data.max));
    out += '}';
  }
  out += "}}";
  return out;
}

void write_metrics_json(std::ostream& out, const Registry& registry) {
  out << metrics_json(registry);
}

std::string render_metrics_table(const Registry& registry) {
  size_t width = 24;
  for (const auto& c : registry.counters()) width = std::max(width, c.name.size());
  for (const auto& g : registry.gauges()) width = std::max(width, g.name.size());
  for (const auto& h : registry.histograms())
    width = std::max(width, h.name.size());

  std::string out;
  char line[256];
  auto row = [&](const char* fmt, auto... args) {
    int n = std::snprintf(line, sizeof line, fmt, args...);
    out.append(line, static_cast<size_t>(std::min<int>(n, sizeof line - 1)));
  };
  if (!registry.counters().empty() || !registry.gauges().empty()) {
    row("%-*s %14s\n", static_cast<int>(width), "metric", "value");
    for (const auto& c : registry.counters())
      row("%-*s %14llu\n", static_cast<int>(width), c.name.c_str(),
          static_cast<unsigned long long>(c.value));
    for (const auto& g : registry.gauges())
      row("%-*s %14lld\n", static_cast<int>(width), g.name.c_str(),
          static_cast<long long>(g.value));
  }
  if (!registry.histograms().empty()) {
    row("%-*s %10s %10s %10s %10s %10s\n", static_cast<int>(width), "histogram",
        "count", "mean", "p50", "p95", "max");
    for (const auto& h : registry.histograms())
      row("%-*s %10llu %10.1f %10.1f %10.1f %10lld\n", static_cast<int>(width),
          h.name.c_str(), static_cast<unsigned long long>(h.data.count),
          h.data.mean(), h.data.percentile(50), h.data.percentile(95),
          static_cast<long long>(h.data.max));
  }
  return out;
}

}  // namespace telemetry
