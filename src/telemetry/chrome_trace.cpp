#include "telemetry/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "telemetry/json.h"

namespace telemetry {

namespace {

const char* phase_tag(TraceBuffer::Phase phase) {
  switch (phase) {
    case TraceBuffer::Phase::kBegin: return "B";
    case TraceBuffer::Phase::kEnd: return "E";
    case TraceBuffer::Phase::kComplete: return "X";
    case TraceBuffer::Phase::kInstant: break;
  }
  return "i";
}

void append_event(std::string& out, const TraceBuffer& trace,
                  const TraceBuffer::Record& r) {
  out += "{\"name\":";
  append_json_string(out, trace.category_name(r.cat));
  out += ",\"ph\":\"";
  out += phase_tag(r.phase);
  out += "\",\"ts\":";
  append_json_number(out, static_cast<double>(r.ts_us));
  if (r.phase == TraceBuffer::Phase::kComplete) {
    out += ",\"dur\":";
    append_json_number(out, static_cast<double>(r.dur_us));
  }
  if (r.phase == TraceBuffer::Phase::kInstant) out += ",\"s\":\"t\"";
  out += ",\"pid\":0,\"tid\":";
  append_json_number(out, static_cast<double>(r.host));
  out += ",\"args\":{\"a0\":";
  append_json_number(out, static_cast<double>(r.arg0));
  out += ",\"a1\":";
  append_json_number(out, static_cast<double>(r.arg1));
  out += "}}";
}

}  // namespace

std::string chrome_trace_json(const TraceBuffer& trace,
                              const std::vector<std::string>& host_names) {
  std::vector<TraceBuffer::Record> records;
  records.reserve(trace.size());
  std::set<uint32_t> hosts;
  trace.for_each([&](const TraceBuffer::Record& r) {
    records.push_back(r);
    hosts.insert(r.host);
  });
  // The ring is in record order (monotone sim time) except that complete
  // spans carry their *start* time; a stable sort by ts restores per-track
  // monotonicity without reordering simultaneous events.
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceBuffer::Record& a,
                      const TraceBuffer::Record& b) { return a.ts_us < b.ts_us; });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < host_names.size(); ++i)
    hosts.insert(static_cast<uint32_t>(i));
  for (uint32_t host : hosts) {
    if (!first) out += ',';
    first = false;
    std::string name = host < host_names.size()
                           ? host_names[host]
                           : "host" + std::to_string(host);
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    append_json_number(out, static_cast<double>(host));
    out += ",\"args\":{\"name\":";
    append_json_string(out, name);
    out += "}}";
  }
  for (const TraceBuffer::Record& r : records) {
    if (!first) out += ',';
    first = false;
    append_event(out, trace, r);
  }
  out += "]}";
  return out;
}

void write_chrome_trace(std::ostream& out, const TraceBuffer& trace,
                        const std::vector<std::string>& host_names) {
  out << chrome_trace_json(trace, host_names);
}

bool write_chrome_trace_file(const std::string& path, const TraceBuffer& trace,
                             const std::vector<std::string>& host_names) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, trace, host_names);
  return static_cast<bool>(out);
}

}  // namespace telemetry
