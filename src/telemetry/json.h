// Minimal JSON *writing* helpers shared by the telemetry exporters.
// (Parsing lives in the tests; the library only ever produces JSON.)
#pragma once

#include <string>
#include <string_view>

namespace telemetry {

/// Append `s` as a quoted, escaped JSON string.
void append_json_string(std::string& out, std::string_view s);

/// Append a finite JSON number. Integral values in the exact double range
/// print without a fraction; NaN/inf (not representable in JSON) print 0.
void append_json_number(std::string& out, double v);

}  // namespace telemetry
