// Minimal JSON helpers shared by the telemetry exporters and the
// report_diff comparator: string/number *writing*, plus a small flat-map
// *reader* for the repo's report files (ScenarioReport / BENCH_*.json).
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace telemetry {

/// Append `s` as a quoted, escaped JSON string.
void append_json_string(std::string& out, std::string_view s);

/// Append a finite JSON number. Integral values in the exact double range
/// print without a fraction; NaN/inf (not representable in JSON) print 0.
void append_json_number(std::string& out, double v);

/// A report file read back in: numeric leaves and string leaves, each under
/// its dotted path. The flat ScenarioReport shape maps 1:1; nested objects
/// (the hand-written BENCH_* trajectory files) flatten as
/// "outer.inner.leaf", array elements as "name.<index>".
struct FlatJson {
  std::map<std::string, double, std::less<>> numbers;
  std::map<std::string, std::string, std::less<>> strings;

  bool has(std::string_view name) const {
    return numbers.find(name) != numbers.end();
  }
  /// 0 when absent (use has() to distinguish).
  double get(std::string_view name) const {
    auto it = numbers.find(name);
    return it == numbers.end() ? 0.0 : it->second;
  }
};

/// Parse a JSON object into a FlatJson. Accepts the full JSON grammar the
/// repo's exporters emit (objects, arrays, strings with escapes, numbers,
/// bools, null); bools flatten to 0/1, null is skipped. Throws
/// std::runtime_error with a position on malformed input.
FlatJson parse_flat_json(std::string_view text);

}  // namespace telemetry
