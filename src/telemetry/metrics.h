// Unified metrics registry: named counters, gauges, and fixed-cost
// log2-bucketed histograms.
//
// Metric ids are interned at registration time (startup); the handles a
// component keeps are raw pointers into stable storage, so the steady-state
// update path -- Counter::add, Gauge::set, Histogram::record -- performs
// zero heap allocations (enforced by bench/bench_telemetry.cpp, matching
// the event-core's zero-alloc discipline).
//
// The registry aggregates across every process in one simulation: a
// counter named "gcs.data_sent" sums over all group members. Per-instance
// breakdowns use per-instance names (e.g. "joshua.replay_divergence.head0");
// per-host timelines live in the structured trace (telemetry/trace.h).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace telemetry {

class Registry;

/// Fixed-size histogram over non-negative integer samples (microseconds,
/// bytes, counts). Bucket 0 holds samples <= 0; bucket i >= 1 holds
/// [2^(i-1), 2^i). Exact count/sum/min/max; percentiles are log-linear
/// interpolations within a bucket, which is plenty for latency reporting.
struct HistogramData {
  std::array<uint64_t, 64> buckets{};
  uint64_t count = 0;
  double sum = 0.0;
  int64_t min = 0;
  int64_t max = 0;

  void record(int64_t v) {
    if (count == 0 || v < min) min = v;
    if (count == 0 || v > max) max = v;
    ++count;
    sum += static_cast<double>(v);
    uint64_t u = v <= 0 ? 0 : static_cast<uint64_t>(v);
    unsigned idx = u == 0 ? 0u : std::bit_width(u);
    if (idx > 63) idx = 63;
    ++buckets[idx];
  }

  bool empty() const { return count == 0; }
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Approximate percentile, p in [0, 100]; 0 on an empty histogram.
  double percentile(double p) const;
};

/// Monotonically increasing counter. A default-constructed handle is a
/// safe no-op sink.
class Counter {
 public:
  Counter() = default;
  void add(uint64_t d = 1) {
    if (cell_ != nullptr) *cell_ += d;
  }
  uint64_t value() const { return cell_ == nullptr ? 0 : *cell_; }

 private:
  friend class Registry;
  explicit Counter(uint64_t* cell) : cell_(cell) {}
  uint64_t* cell_ = nullptr;
};

/// Last-value gauge (signed).
class Gauge {
 public:
  Gauge() = default;
  void set(int64_t v) {
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(int64_t d) {
    if (cell_ != nullptr) *cell_ += d;
  }
  int64_t value() const { return cell_ == nullptr ? 0 : *cell_; }

 private:
  friend class Registry;
  explicit Gauge(int64_t* cell) : cell_(cell) {}
  int64_t* cell_ = nullptr;
};

/// Handle onto a registered HistogramData.
class Histogram {
 public:
  Histogram() = default;
  void record(int64_t v) {
    if (data_ != nullptr) data_->record(v);
  }
  const HistogramData* data() const { return data_; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

class Registry {
 public:
  /// Registering the same name twice returns a handle onto the same cell.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  // -- exporter access -------------------------------------------------------

  struct CounterCell {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeCell {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramCell {
    std::string name;
    HistogramData data;
  };

  const std::deque<CounterCell>& counters() const { return counters_; }
  const std::deque<GaugeCell>& gauges() const { return gauges_; }
  const std::deque<HistogramCell>& histograms() const { return histograms_; }

  /// Lookup for tests/exporters; nullptr when never registered.
  const CounterCell* find_counter(std::string_view name) const;
  const HistogramCell* find_histogram(std::string_view name) const;

 private:
  // Deques give the stable cell addresses the handles rely on.
  std::deque<CounterCell> counters_;
  std::deque<GaugeCell> gauges_;
  std::deque<HistogramCell> histograms_;
  std::map<std::string, size_t, std::less<>> counter_ix_;
  std::map<std::string, size_t, std::less<>> gauge_ix_;
  std::map<std::string, size_t, std::less<>> histogram_ix_;
};

}  // namespace telemetry
