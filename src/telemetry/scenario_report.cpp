#include "telemetry/scenario_report.h"

#include <fstream>

#include "telemetry/json.h"
#include "telemetry/trace.h"
#include "util/stats.h"

namespace telemetry {

void ScenarioReport::set(std::string_view name, double value) {
  auto it = values_.find(name);
  if (it != values_.end()) {
    it->second = value;
  } else {
    values_.emplace(std::string(name), value);
  }
}

void ScenarioReport::note_histogram(std::string_view prefix,
                                    const HistogramData& h) {
  std::string p(prefix);
  set(p + ".count", static_cast<double>(h.count));
  set(p + ".mean", h.mean());
  set(p + ".p50", h.percentile(50));
  set(p + ".p95", h.percentile(95));
  set(p + ".p99", h.percentile(99));
  set(p + ".min", static_cast<double>(h.min));
  set(p + ".max", static_cast<double>(h.max));
}

void ScenarioReport::note_samples(std::string_view prefix,
                                  const jutil::Samples& s) {
  std::string p(prefix);
  set(p + ".count", static_cast<double>(s.count()));
  set(p + ".mean", s.mean());
  set(p + ".p50", s.empty() ? 0.0 : s.percentile(50));
  set(p + ".p95", s.empty() ? 0.0 : s.percentile(95));
  set(p + ".min", s.min());
  set(p + ".max", s.max());
}

void ScenarioReport::set_meta(std::string_view key, std::string_view value) {
  meta_["meta." + std::string(key)] = std::string(value);
}

void ScenarioReport::note_trace(const TraceBuffer& trace) {
  set("telemetry.trace.recorded", static_cast<double>(trace.recorded()));
  set("telemetry.trace.dropped_records", static_cast<double>(trace.dropped()));
  for (size_t cat = 0; cat < trace.category_count(); ++cat) {
    uint64_t dropped = trace.dropped(static_cast<uint16_t>(cat));
    if (dropped == 0) continue;
    set("telemetry.trace.dropped_records." +
            trace.category_name(static_cast<uint16_t>(cat)),
        static_cast<double>(dropped));
  }
}

void ScenarioReport::note_metrics(const Registry& registry) {
  for (const auto& c : registry.counters())
    set(c.name, static_cast<double>(c.value));
  for (const auto& g : registry.gauges())
    set(g.name, static_cast<double>(g.value));
  for (const auto& h : registry.histograms()) note_histogram(h.name, h.data);
}

bool ScenarioReport::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

double ScenarioReport::get(std::string_view name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::string ScenarioReport::json() const {
  std::string out = "{";
  bool first = true;
  // Metadata first: a human opening the file sees what the run was before
  // the wall of numbers.
  for (const auto& [key, value] : meta_) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_json_string(out, key);
    out += ": ";
    append_json_string(out, value);
  }
  for (const auto& [name, value] : values_) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_json_string(out, name);
    out += ": ";
    append_json_number(out, value);
  }
  out += "\n}\n";
  return out;
}

void ScenarioReport::write(std::ostream& out) const { out << json(); }

bool ScenarioReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return static_cast<bool>(out);
}

}  // namespace telemetry
