#include "telemetry/metrics.h"

namespace telemetry {

double HistogramData::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 100.0) return static_cast<double>(max);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cum + buckets[i] > rank) {
      // Interpolate inside bucket i by the rank's position among its hits.
      double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
      double hi = i == 0 ? 1.0 : static_cast<double>(uint64_t{1} << i);
      double frac = static_cast<double>(rank - cum) /
                    static_cast<double>(buckets[i]);
      double v = lo + (hi - lo) * frac;
      // Exact bounds beat bucket bounds at the tails.
      if (v < static_cast<double>(min)) v = static_cast<double>(min);
      if (v > static_cast<double>(max)) v = static_cast<double>(max);
      return v;
    }
    cum += buckets[i];
  }
  return static_cast<double>(max);
}

Counter Registry::counter(std::string_view name) {
  auto it = counter_ix_.find(name);
  if (it == counter_ix_.end()) {
    counters_.push_back(CounterCell{std::string(name), 0});
    it = counter_ix_.emplace(std::string(name), counters_.size() - 1).first;
  }
  return Counter(&counters_[it->second].value);
}

Gauge Registry::gauge(std::string_view name) {
  auto it = gauge_ix_.find(name);
  if (it == gauge_ix_.end()) {
    gauges_.push_back(GaugeCell{std::string(name), 0});
    it = gauge_ix_.emplace(std::string(name), gauges_.size() - 1).first;
  }
  return Gauge(&gauges_[it->second].value);
}

Histogram Registry::histogram(std::string_view name) {
  auto it = histogram_ix_.find(name);
  if (it == histogram_ix_.end()) {
    histograms_.push_back(HistogramCell{std::string(name), {}});
    it = histogram_ix_.emplace(std::string(name), histograms_.size() - 1).first;
  }
  return Histogram(&histograms_[it->second].data);
}

const Registry::CounterCell* Registry::find_counter(
    std::string_view name) const {
  auto it = counter_ix_.find(name);
  return it == counter_ix_.end() ? nullptr : &counters_[it->second];
}

const Registry::HistogramCell* Registry::find_histogram(
    std::string_view name) const {
  auto it = histogram_ix_.find(name);
  return it == histogram_ix_.end() ? nullptr : &histograms_[it->second];
}

}  // namespace telemetry
