// Metrics snapshot dumpers: one JSON document and one ASCII table over
// everything a Registry holds. Histograms export summary statistics
// (count/mean/p50/p95/p99/min/max), not raw buckets.
#pragma once

#include <ostream>
#include <string>

#include "telemetry/metrics.h"

namespace telemetry {

std::string metrics_json(const Registry& registry);
void write_metrics_json(std::ostream& out, const Registry& registry);

/// Human-readable table for example/bench stdout.
std::string render_metrics_table(const Registry& registry);

}  // namespace telemetry
