// Report comparator: diff two flat report files (ScenarioReport /
// BENCH_*.json) under per-metric tolerance rules, for the CI regression
// gate (tools/report_diff) and the longevity harness.
//
// A rule set is an ordered list of glob patterns; the first match decides
// how a metric is judged. Each rule carries an absolute band, a relative
// band (a change is inside tolerance when it is within EITHER band -- so
// near-zero metrics are not held to impossible relative precision), a
// direction (a higher-is-better metric only regresses downward), and flags
// for required keys and ignored keys. Unmatched metrics fall back to the
// rule set's defaults.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.h"

namespace telemetry {

/// Which direction of change counts as a regression.
enum class Direction : uint8_t {
  kBoth = 0,        ///< any out-of-band change regresses
  kHigherIsBetter,  ///< only an out-of-band decrease regresses
  kLowerIsBetter,   ///< only an out-of-band increase regresses
};

struct ToleranceRule {
  std::string pattern;  ///< glob: '*' matches any run (incl. empty)
  double abs_band = 0.0;
  double rel_band = 0.0;
  Direction direction = Direction::kBoth;
  bool required = false;  ///< key must be present in the current report
  bool ignore = false;    ///< never a regression, never required
};

struct DiffOptions {
  std::vector<ToleranceRule> rules;  ///< first match wins
  /// Defaults for metrics no rule matches.
  double default_abs_band = 0.0;
  double default_rel_band = 0.0;
  Direction default_direction = Direction::kBoth;
  /// A baseline key absent from the current report is a regression (a
  /// silently vanished metric is the classic way a gate goes blind).
  bool fail_on_missing = true;
};

/// `pattern` with '*' wildcards against `name` (greedy, backtracking).
bool glob_match(std::string_view pattern, std::string_view name);

/// Parse a rules file:
///   {
///     "default": {"rel_band": 0.1, "abs_band": 0, "direction": "both"},
///     "rules": [
///       {"pattern": "joshua.*_us.p95", "rel_band": 0.25,
///        "direction": "lower_is_better"},
///       {"pattern": "demo_passed", "required": true},
///       {"pattern": "net.medium_wait_us.*", "ignore": true}
///     ]
///   }
/// Unknown fields are rejected so a typo cannot silently weaken the gate.
/// Throws std::runtime_error on malformed input.
DiffOptions parse_rules(std::string_view text);

struct DiffEntry {
  enum class Status : uint8_t {
    kOk = 0,      ///< inside tolerance (or an in-band change)
    kImproved,    ///< out of band in the good direction
    kRegressed,   ///< out of band in the bad direction
    kMissing,     ///< in baseline, absent from current
    kExtra,       ///< in current only (informational)
    kIgnored,
  };
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double delta = 0.0;      ///< current - baseline
  double rel_delta = 0.0;  ///< delta / |baseline| (0 when baseline is 0)
  Status status = Status::kOk;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< baseline order, extras last
  size_t regressed = 0;
  size_t missing = 0;   ///< missing keys counted as failures
  size_t improved = 0;
  size_t compared = 0;  ///< entries actually judged (not ignored/extra)

  /// True when the gate passes.
  bool ok() const { return regressed == 0 && missing == 0; }
};

DiffResult diff_reports(const FlatJson& baseline, const FlatJson& current,
                        const DiffOptions& options);

/// Human-readable table. `verbose` includes in-tolerance entries; the
/// default prints only regressions, missing keys, and improvements.
std::string render_diff(const DiffResult& result, bool verbose = false);

}  // namespace telemetry
