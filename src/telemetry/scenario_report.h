// ScenarioReport: the machine-readable result of one experiment run.
//
// A flat name -> number map written as a single JSON object, the same
// shape as the repo's BENCH_*.json trajectory files, so examples, benches
// and CI artifacts all speak one format. Histograms and sample sets fold
// into <prefix>.count/.mean/.p50/.p95/.p99/.min/.max entries; a whole
// Registry can be folded in with note_metrics().
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace jutil {
class Samples;
}

namespace telemetry {

class TraceBuffer;

class ScenarioReport {
 public:
  void set(std::string_view name, double value);

  /// Comparator-facing string metadata, written under "meta.<key>" (e.g.
  /// scenario name, seed, harness version). tools/report_diff reads these
  /// as strings and leaves them out of the numeric tolerance checks.
  void set_meta(std::string_view key, std::string_view value);

  /// Summary-statistics entries under `prefix`.
  void note_histogram(std::string_view prefix, const HistogramData& h);
  void note_samples(std::string_view prefix, const jutil::Samples& s);

  /// Every counter, gauge, and histogram in the registry, keyed by its
  /// metric name.
  void note_metrics(const Registry& registry);

  /// Trace-ring accounting: "telemetry.trace.recorded", the aggregate
  /// "telemetry.trace.dropped_records", and one
  /// "telemetry.trace.dropped_records.<category>" entry per category that
  /// lost records. A truncated campaign must say so in its report instead
  /// of silently presenting a window that is missing its early events.
  void note_trace(const TraceBuffer& trace);

  bool has(std::string_view name) const;
  /// 0 when absent (use has() to distinguish).
  double get(std::string_view name) const;
  const std::map<std::string, double, std::less<>>& values() const {
    return values_;
  }
  const std::map<std::string, std::string, std::less<>>& meta() const {
    return meta_;
  }

  void write(std::ostream& out) const;
  std::string json() const;
  /// Returns false when the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  std::map<std::string, double, std::less<>> values_;
  std::map<std::string, std::string, std::less<>> meta_;  ///< "meta.<key>"
};

}  // namespace telemetry
