// Byte-level wire format helpers.
//
// Every protocol in the project (gcs, pbs, joshua) serializes its messages to
// real byte buffers through Writer/Reader, so the network model charges
// serialization time for the actual encoded size and tests can round-trip
// encodings. Integers are little-endian fixed width; strings and blobs are
// u32-length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/network.h"

namespace net {

using sim::Payload;

/// Thrown by Reader on truncated or malformed input.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { raw(&v, sizeof v); }
  void u32(uint32_t v) { raw(&v, sizeof v); }
  void u64(uint64_t v) { raw(&v, sizeof v); }
  void i64(int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void bytes(const Payload& b) {
    u32(static_cast<uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn encode_one) {
    u32(static_cast<uint32_t>(items.size()));
    for (const T& item : items) encode_one(*this, item);
  }

  /// Freeze the built bytes into an immutable shared Payload (no copy).
  Payload take() { return Payload::adopt(std::move(buf_)); }
  size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const Payload& buf) : buf_(buf) {}

  uint8_t u8() { uint8_t v; raw(&v, sizeof v); return v; }
  uint16_t u16() { uint16_t v; raw(&v, sizeof v); return v; }
  uint32_t u32() { uint32_t v; raw(&v, sizeof v); return v; }
  uint64_t u64() { uint64_t v; raw(&v, sizeof v); return v; }
  int64_t i64() { int64_t v; raw(&v, sizeof v); return v; }
  double f64() { double v; raw(&v, sizeof v); return v; }
  bool boolean() { return u8() != 0; }

  std::string str() {
    uint32_t n = u32();
    check(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Nested message body: a zero-copy slice sharing the parent buffer.
  Payload bytes() {
    uint32_t n = u32();
    check(n);
    Payload b = buf_.slice(pos_, n);
    pos_ += n;
    return b;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn decode_one) {
    uint32_t n = u32();
    // Sanity cap: a count can never exceed the remaining byte count.
    if (n > remaining()) throw WireError("vector count exceeds buffer");
    std::vector<T> out;
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) out.push_back(decode_one(*this));
    return out;
  }

  size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

  /// Throws unless the whole buffer was consumed (catches format drift).
  void expect_done() const {
    if (!done()) throw WireError("trailing bytes after message");
  }

 private:
  void check(size_t n) const {
    if (n > remaining()) throw WireError("read past end of buffer");
  }
  void raw(void* p, size_t n) {
    check(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const Payload& buf_;
  size_t pos_ = 0;
};

}  // namespace net
