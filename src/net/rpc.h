// Request/response messaging over the simulated network.
//
// RpcNode frames packets as either a request (carrying a fresh rpc id) or a
// response (echoing it). Callers get a callback with the response payload or
// std::nullopt on timeout; servers implement on_request() and answer with
// respond(). A node can act as client and server at once -- the JOSHUA
// server does both.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "net/wire.h"
#include "sim/process.h"

namespace net {

struct CallOptions {
  sim::Duration timeout = sim::seconds(5);
  int attempts = 1;  ///< total tries (1 = no retry)
};

class RpcNode : public sim::Process {
 public:
  using ResponseHandler = std::function<void(std::optional<Payload> response)>;

  RpcNode(sim::Network& net, sim::HostId host, sim::Port port,
          std::string name);

  /// Issue a request; `on_response` fires exactly once, with nullopt after
  /// all attempts timed out.
  void call(sim::Endpoint dst, Payload request, ResponseHandler on_response,
            CallOptions options = {});

  /// Cancel every in-flight call (used on crash); handlers fire with nullopt.
  void fail_pending_calls();

 protected:
  /// Server side: handle a request; eventually answer via respond(from, id,..)
  /// (synchronously or later).
  virtual void on_request(Payload request, sim::Endpoint from,
                          uint64_t rpc_id) = 0;

  /// Hook for non-RPC datagrams sharing the port (kind byte != rpc).
  virtual void on_datagram(sim::Packet packet) { (void)packet; }

  void respond(sim::Endpoint to, uint64_t rpc_id, Payload response);

  // sim::Process:
  void on_packet(sim::Packet packet) final;
  void on_crash() override;

  /// Frame a raw (non-RPC) datagram so it is routed to on_datagram().
  static Payload frame_datagram(Payload inner);

 private:
  struct Pending {
    sim::Endpoint dst;
    Payload request;
    ResponseHandler handler;
    CallOptions options;
    int attempts_left = 0;
    sim::TimerId timer = 0;
  };

  void transmit(uint64_t id);
  void expire(uint64_t id);

  uint64_t next_rpc_id_ = 1;
  std::map<uint64_t, Pending> pending_;
};

}  // namespace net
