#include "net/rpc.h"

#include "util/logging.h"

namespace net {
namespace {
constexpr uint8_t kKindRequest = 1;
constexpr uint8_t kKindResponse = 2;
constexpr uint8_t kKindDatagram = 3;
}  // namespace

RpcNode::RpcNode(sim::Network& net, sim::HostId host, sim::Port port,
                 std::string name)
    : sim::Process(net, host, port, std::move(name)) {}

void RpcNode::call(sim::Endpoint dst, Payload request,
                   ResponseHandler on_response, CallOptions options) {
  uint64_t id = next_rpc_id_++;
  Pending pending;
  pending.dst = dst;
  pending.request = std::move(request);
  pending.handler = std::move(on_response);
  pending.options = options;
  pending.attempts_left = options.attempts;
  pending_.emplace(id, std::move(pending));
  transmit(id);
}

void RpcNode::transmit(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  --p.attempts_left;

  Writer w;
  w.u8(kKindRequest);
  w.u64(id);
  w.bytes(p.request);
  send(p.dst, w.take());

  p.timer = set_timer(p.options.timeout, [this, id] { expire(id); });
}

void RpcNode::expire(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (it->second.attempts_left > 0) {
    transmit(id);
    return;
  }
  ResponseHandler handler = std::move(it->second.handler);
  pending_.erase(it);
  handler(std::nullopt);
}

void RpcNode::fail_pending_calls() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, p] : pending) {
    cancel_timer(p.timer);
    p.handler(std::nullopt);
  }
}

void RpcNode::respond(sim::Endpoint to, uint64_t rpc_id, Payload response) {
  Writer w;
  w.u8(kKindResponse);
  w.u64(rpc_id);
  w.bytes(response);
  send(to, w.take());
}

Payload RpcNode::frame_datagram(Payload inner) {
  Writer w;
  w.u8(kKindDatagram);
  w.bytes(inner);
  return w.take();
}

void RpcNode::on_packet(sim::Packet packet) {
  try {
    Reader r(packet.data);
    uint8_t kind = r.u8();
    switch (kind) {
      case kKindRequest: {
        uint64_t id = r.u64();
        Payload body = r.bytes();
        on_request(std::move(body), packet.src, id);
        break;
      }
      case kKindResponse: {
        uint64_t id = r.u64();
        Payload body = r.bytes();
        auto it = pending_.find(id);
        if (it == pending_.end()) return;  // late or duplicate response
        cancel_timer(it->second.timer);
        ResponseHandler handler = std::move(it->second.handler);
        pending_.erase(it);
        handler(std::move(body));
        break;
      }
      case kKindDatagram: {
        sim::Packet inner;
        inner.src = packet.src;
        inner.dst = packet.dst;
        inner.data = r.bytes();
        on_datagram(std::move(inner));
        break;
      }
      default:
        JLOG(kWarn, "rpc") << name() << ": unknown frame kind "
                           << static_cast<int>(kind);
    }
  } catch (const WireError& e) {
    JLOG(kWarn, "rpc") << name() << ": malformed packet: " << e.what();
  }
}

void RpcNode::on_crash() {
  // In-flight calls die with the process; handlers must not fire post-crash.
  for (auto& [id, p] : pending_) cancel_timer(p.timer);
  pending_.clear();
}

}  // namespace net
