// report_diff: the CI regression gate over the repo's flat report files
// (ScenarioReport *.report.json and BENCH_*.json).
//
//   report_diff [--rules rules.json] [--verbose] baseline.json current.json
//
// Exit codes: 0 = inside tolerance, 1 = regression (or missing required
// key), 2 = usage / IO / parse error. Without --rules every metric is
// compared exactly (abs band 0, rel band 0, both directions) -- right for
// a deterministic simulation, too strict for wall-clock benches, which is
// what the rules file is for.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/report_diff.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rules rules.json] [--verbose] baseline.json "
               "current.json\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  bool verbose = false;
  std::string paths[2];
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rules") == 0) {
      if (++i >= argc) return usage(argv[0]);
      rules_path = argv[i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (npaths != 2) return usage(argv[0]);

  telemetry::DiffOptions options;
  try {
    if (!rules_path.empty()) {
      std::string text;
      if (!read_file(rules_path, text)) {
        std::fprintf(stderr, "report_diff: cannot read %s\n",
                     rules_path.c_str());
        return 2;
      }
      options = telemetry::parse_rules(text);
    }
    std::string base_text, cur_text;
    if (!read_file(paths[0], base_text)) {
      std::fprintf(stderr, "report_diff: cannot read %s\n", paths[0].c_str());
      return 2;
    }
    if (!read_file(paths[1], cur_text)) {
      std::fprintf(stderr, "report_diff: cannot read %s\n", paths[1].c_str());
      return 2;
    }
    telemetry::FlatJson baseline = telemetry::parse_flat_json(base_text);
    telemetry::FlatJson current = telemetry::parse_flat_json(cur_text);
    telemetry::DiffResult result =
        telemetry::diff_reports(baseline, current, options);
    std::fputs(telemetry::render_diff(result, verbose).c_str(), stdout);
    if (!result.ok()) {
      std::printf("REGRESSION: %s vs %s\n", paths[1].c_str(),
                  paths[0].c_str());
      return 1;
    }
    std::printf("OK: %s within tolerance of %s\n", paths[1].c_str(),
                paths[0].c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "report_diff: %s\n", e.what());
    return 2;
  }
}
