// Failover demo: reproduce the paper's functional test -- a head node is
// "unplugged" while jobs run; service continues with no loss of state, and
// the head later rejoins with a state transfer.
//
//   $ ./examples/failover_demo
#include <cstdio>

#include "joshua/cluster.h"
#include "util/logging.h"

namespace {

void banner(const joshua::Cluster& cluster, const char* msg) {
  std::printf("[%8.3fs] %s\n",
              const_cast<joshua::Cluster&>(cluster).sim().now().seconds(),
              msg);
}

}  // namespace

int main() {
  jutil::Logger::instance().set_level(jutil::LogLevel::kWarn);

  joshua::ClusterOptions options;
  options.head_count = 3;
  options.compute_count = 2;
  joshua::Cluster cluster(options);
  cluster.start();
  if (!cluster.run_until_converged()) {
    std::printf("FATAL: no initial view\n");
    return 1;
  }
  banner(cluster, "3-head JOSHUA group in service");

  joshua::Client& client = cluster.make_jclient();
  int accepted = 0;
  for (int i = 0; i < 4; ++i) {
    pbs::JobSpec spec;
    spec.name = "workload-" + std::to_string(i);
    spec.run_time = sim::seconds(20);
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse> r) {
      if (r && r->status == pbs::Status::kOk) ++accepted;
    });
  }
  cluster.sim().run_for(sim::seconds(5));
  std::printf("[%8.3fs] %d jobs accepted; job 1 is running\n",
              cluster.sim().now().seconds(), accepted);

  // --- pull the cable on head0 (the current gcs coordinator) -------------
  cluster.net().crash_host(cluster.head_hosts()[0]);
  banner(cluster, ">>> head0 crashed (cable pulled)");
  cluster.run_until_converged();
  std::printf("[%8.3fs] survivors re-formed a view of %zu heads -- no "
              "interruption of service\n",
              cluster.sim().now().seconds(),
              cluster.joshua_server(1).group().view().size());

  // Submissions keep working (client fails over transparently).
  bool ok = false;
  pbs::JobSpec extra;
  extra.name = "submitted-during-outage";
  extra.run_time = sim::seconds(20);
  client.jsub(extra, [&](std::optional<pbs::SubmitResponse> r) {
    ok = r && r->status == pbs::Status::kOk;
  });
  cluster.sim().run_for(sim::seconds(5));
  std::printf("[%8.3fs] submission during the outage: %s (failovers: %llu)\n",
              cluster.sim().now().seconds(), ok ? "accepted" : "FAILED",
              static_cast<unsigned long long>(client.failovers()));

  // --- second simultaneous failure ---------------------------------------
  cluster.net().crash_host(cluster.head_hosts()[2]);
  banner(cluster, ">>> head2 crashed too -- one head left");
  cluster.run_until_converged();
  std::printf("[%8.3fs] head1 serves alone; queue has %zu jobs\n",
              cluster.sim().now().seconds(),
              cluster.pbs_server(1).jobs().size());

  // --- repair and rejoin ---------------------------------------------------
  cluster.net().restart_host(cluster.head_hosts()[0]);
  cluster.joshua_server(0).start();
  banner(cluster, ">>> head0 repaired, rejoining (state transfer)");
  cluster.run_until_converged(sim::seconds(60));
  cluster.sim().run_for(sim::seconds(10));
  std::printf("[%8.3fs] head0 back: its PBS server now holds %zu jobs "
              "(replayed %llu commands)\n",
              cluster.sim().now().seconds(),
              cluster.pbs_server(0).jobs().size(),
              static_cast<unsigned long long>(
                  cluster.joshua_server(0).stats().replays_applied));

  // --- drain ---------------------------------------------------------------
  cluster.sim().run_for(sim::seconds(120));
  size_t complete0 = cluster.pbs_server(0).count_in_state(pbs::JobState::kComplete);
  size_t complete1 = cluster.pbs_server(1).count_in_state(pbs::JobState::kComplete);
  uint64_t executed =
      cluster.mom(0).jobs_executed() + cluster.mom(1).jobs_executed();
  std::printf("\nfinal: head0 sees %zu complete, head1 sees %zu complete, "
              "moms executed %llu jobs (each exactly once)\n",
              complete0, complete1,
              static_cast<unsigned long long>(executed));
  bool pass = complete1 == 5 && executed == 5 && ok;
  std::printf("%s\n", pass ? "DEMO PASSED" : "DEMO FAILED");
  return pass ? 0 : 1;
}
