// Failover demo: reproduce the paper's functional test -- head nodes are
// "unplugged" while jobs run; service continues with no loss of state, and
// a head later rejoins with a state transfer.
//
//   $ ./examples/failover_demo [heads] [out_prefix]
//
// `heads` (default 3, minimum 3) sizes the JOSHUA group; every head but
// head1 is eventually crashed so head1 always ends up serving alone. The
// run writes two artifacts:
//   <out_prefix>.trace.json  -- Chrome trace-event timeline (one track per
//                               simulated host; open in ui.perfetto.dev)
//   <out_prefix>.report.json -- flat ScenarioReport (BENCH_*.json shape)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "joshua/cluster.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/scenario_report.h"
#include "util/logging.h"

namespace {

void banner(const joshua::Cluster& cluster, const std::string& msg) {
  std::printf("[%8.3fs] %s\n",
              const_cast<joshua::Cluster&>(cluster).sim().now().seconds(),
              msg.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  jutil::Logger::instance().set_level(jutil::LogLevel::kWarn);

  int heads = argc > 1 ? std::atoi(argv[1]) : 3;
  if (heads < 3) {
    std::fprintf(stderr, "usage: %s [heads>=3] [out_prefix]\n", argv[0]);
    return 2;
  }
  std::string prefix = argc > 2 ? argv[2] : "failover_demo";

  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  joshua::Cluster cluster(options);
  cluster.start();
  if (!cluster.run_until_converged()) {
    std::printf("FATAL: no initial view\n");
    return 1;
  }
  banner(cluster, std::to_string(heads) + "-head JOSHUA group in service");

  joshua::Client& client = cluster.make_jclient();
  int accepted = 0;
  for (int i = 0; i < 4; ++i) {
    pbs::JobSpec spec;
    spec.name = "workload-" + std::to_string(i);
    spec.run_time = sim::seconds(20);
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse> r) {
      if (r && r->status == pbs::Status::kOk) ++accepted;
    });
  }
  cluster.sim().run_for(sim::seconds(5));
  std::printf("[%8.3fs] %d jobs accepted; job 1 is running\n",
              cluster.sim().now().seconds(), accepted);

  // --- pull the cable on head0 (the current gcs coordinator) -------------
  cluster.net().crash_host(cluster.head_hosts()[0]);
  banner(cluster, ">>> head0 crashed (cable pulled)");
  cluster.run_until_converged();
  std::printf("[%8.3fs] survivors re-formed a view of %zu heads -- no "
              "interruption of service\n",
              cluster.sim().now().seconds(),
              cluster.joshua_server(1).group().view().size());

  // Submissions keep working (client fails over transparently).
  bool ok = false;
  pbs::JobSpec extra;
  extra.name = "submitted-during-outage";
  extra.run_time = sim::seconds(20);
  client.jsub(extra, [&](std::optional<pbs::SubmitResponse> r) {
    ok = r && r->status == pbs::Status::kOk;
  });
  cluster.sim().run_for(sim::seconds(5));
  std::printf("[%8.3fs] submission during the outage: %s (failovers: %llu)\n",
              cluster.sim().now().seconds(), ok ? "accepted" : "FAILED",
              static_cast<unsigned long long>(client.failovers()));

  // --- crash every other head too; head1 must carry the service alone ------
  for (int h = 2; h < heads; ++h) {
    cluster.net().crash_host(cluster.head_hosts()[h]);
    banner(cluster, ">>> head" + std::to_string(h) + " crashed too");
  }
  cluster.run_until_converged();
  std::printf("[%8.3fs] head1 serves alone; queue has %zu jobs\n",
              cluster.sim().now().seconds(),
              cluster.pbs_server(1).jobs().size());

  // --- repair and rejoin ---------------------------------------------------
  cluster.net().restart_host(cluster.head_hosts()[0]);
  cluster.joshua_server(0).start();
  banner(cluster, ">>> head0 repaired, rejoining (state transfer)");
  cluster.run_until_converged(sim::seconds(60));
  cluster.sim().run_for(sim::seconds(10));
  std::printf("[%8.3fs] head0 back: its PBS server now holds %zu jobs "
              "(replayed %llu commands)\n",
              cluster.sim().now().seconds(),
              cluster.pbs_server(0).jobs().size(),
              static_cast<unsigned long long>(
                  cluster.joshua_server(0).stats().replays_applied));

  // --- drain ---------------------------------------------------------------
  cluster.sim().run_for(sim::seconds(120));
  size_t complete0 = cluster.pbs_server(0).count_in_state(pbs::JobState::kComplete);
  size_t complete1 = cluster.pbs_server(1).count_in_state(pbs::JobState::kComplete);
  uint64_t executed =
      cluster.mom(0).jobs_executed() + cluster.mom(1).jobs_executed();
  std::printf("\nfinal: head0 sees %zu complete, head1 sees %zu complete, "
              "moms executed %llu jobs (each exactly once)\n",
              complete0, complete1,
              static_cast<unsigned long long>(executed));
  bool pass = complete1 == 5 && executed == 5 && ok;

  // --- export the run ------------------------------------------------------
  telemetry::Hub& hub = cluster.sim().telemetry();
  std::vector<std::string> host_names;
  for (sim::HostId h = 0; h < cluster.net().host_count(); ++h) {
    host_names.push_back(cluster.net().host(h).name());
  }
  std::string trace_path = prefix + ".trace.json";
  std::string report_path = prefix + ".report.json";
  if (!telemetry::write_chrome_trace_file(trace_path, hub.trace(),
                                          host_names)) {
    std::printf("FAILED to write %s\n", trace_path.c_str());
    return 1;
  }

  telemetry::ScenarioReport report;
  report.set("heads", heads);
  report.set("jobs_accepted", accepted);
  report.set("jobs_complete_head1", static_cast<double>(complete1));
  report.set("jobs_executed_by_moms", static_cast<double>(executed));
  report.set("client_failovers", static_cast<double>(client.failovers()));
  report.set("outage_submission_ok", ok ? 1 : 0);
  report.set("demo_passed", pass ? 1 : 0);
  report.note_metrics(hub.metrics());
  if (!report.write_file(report_path)) {
    std::printf("FAILED to write %s\n", report_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu trace events) and %s\n", trace_path.c_str(),
              static_cast<unsigned long long>(hub.trace().size()),
              report_path.c_str());

  std::printf("%s\n", pass ? "DEMO PASSED" : "DEMO FAILED");
  return pass ? 0 : 1;
}
