// Federation smoke: a 2-shard control plane in one page.
//
// Two independent JOSHUA replica groups (2 heads + 1 compute each) split the
// queue space -- shard 0 owns batch*, shard 1 is the catch-all -- behind one
// fed::Router. The walk-through exercises every router path: glob-routed
// submits, the merged jstat-all fan-out, a single-shard head crash that the
// other shard never notices, a submit during that outage, and a cross-shard
// mass delete. Deterministic; the regression workflow diffs the report
// against baselines/fed_smoke.report.json.
//
//   $ ./examples/fed_smoke [out_prefix]     # JOSHUA_ORDERING=allack|token
#include <cstdio>
#include <string>

#include "fed/federation.h"
#include "telemetry/scenario_report.h"
#include "util/logging.h"

namespace {

void banner(fed::Federation& f, const std::string& msg) {
  std::printf("[%8.3fs] %s\n", f.sim().now().seconds(), msg.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  jutil::Logger::instance().set_level(jutil::LogLevel::kWarn);
  std::string prefix = argc > 1 ? argv[1] : "fed_smoke";

  fed::FederationOptions options;
  options.shard_count = 2;
  options.heads_per_shard = 2;
  options.computes_per_shard = 1;
  options.queue_globs = {{"batch*"}, {"*"}};
  options.cal = sim::fast_calibration();
  fed::Federation f(std::move(options));
  f.start();
  if (!f.run_until_converged()) {
    std::printf("FATAL: a shard never formed its initial view\n");
    return 1;
  }
  banner(f, "2 shards x 2 heads in service (batch* | catch-all)");
  fed::Router& router = f.make_router();

  // --- glob-routed submits: ids come from the owning shard's block ---------
  int accepted = 0;
  pbs::JobId batch_id = 0, debug_id = 0;
  auto submit = [&](const std::string& queue, pbs::JobId& id_out) {
    pbs::JobSpec spec;
    spec.name = queue + "-job";
    spec.queue = queue;
    spec.run_time = sim::hours(1);
    router.jsub(spec, [&](std::optional<pbs::SubmitResponse> r) {
      if (r && r->status == pbs::Status::kOk) {
        ++accepted;
        id_out = r->job_id;
      }
    });
  };
  submit("batch", batch_id);
  submit("batch", batch_id);
  submit("debug", debug_id);
  f.sim().run_for(sim::seconds(5));
  std::printf("[%8.3fs] %d submits accepted: batch -> job %llu (shard %u), "
              "debug -> job %llu (shard %u)\n",
              f.sim().now().seconds(), accepted,
              static_cast<unsigned long long>(batch_id),
              *f.shard_map().owner_of(batch_id),
              static_cast<unsigned long long>(debug_id),
              *f.shard_map().owner_of(debug_id));

  // --- jstat-all: one merged listing over both ordering groups --------------
  size_t listed = 0;
  bool sorted = true;
  router.jstat(pbs::StatRequest{}, [&](std::optional<pbs::StatResponse> r) {
    if (!r || r->status != pbs::Status::kOk) return;
    listed = r->jobs.size();
    for (size_t i = 1; i < r->jobs.size(); ++i)
      sorted &= r->jobs[i - 1].id < r->jobs[i].id;
  });
  f.sim().run_for(sim::seconds(2));
  std::printf("[%8.3fs] jstat -all merged %zu jobs from 2 shards (%s)\n",
              f.sim().now().seconds(), listed,
              sorted ? "sorted by id" : "OUT OF ORDER");

  // --- shard-0 head crash: shard 1 never sees it ----------------------------
  f.net().crash_host(f.head_hosts()[0]);
  banner(f, ">>> shard 0 lost a head (its partner takes over alone)");
  f.run_until_converged(sim::seconds(60));
  bool outage_ok = false;
  pbs::JobSpec during;
  during.name = "during-outage";
  during.queue = "batch";
  during.run_time = sim::hours(1);
  router.jsub(during, [&](std::optional<pbs::SubmitResponse> r) {
    outage_ok = r && r->status == pbs::Status::kOk;
  });
  f.sim().run_for(sim::seconds(10));
  std::printf("[%8.3fs] batch submit during the outage: %s "
              "(router failovers: %llu)\n",
              f.sim().now().seconds(), outage_ok ? "accepted" : "FAILED",
              static_cast<unsigned long long>(router.failovers()));

  // --- cross-shard mass delete ---------------------------------------------
  uint64_t deleted = 0;
  router.jdel_all([&](std::optional<uint64_t> n) { deleted = n.value_or(0); });
  f.sim().run_for(sim::seconds(5));
  std::printf("[%8.3fs] jdel -all removed %llu jobs across both shards\n",
              f.sim().now().seconds(),
              static_cast<unsigned long long>(deleted));

  const fed::Router::Stats& rs = router.stats();
  bool pass = accepted == 3 && listed == 3 && sorted && outage_ok &&
              deleted == 4 && f.shard_map().owner_of(batch_id) == 0u &&
              f.shard_map().owner_of(debug_id) == 1u && rs.fanouts >= 2;

  telemetry::ScenarioReport report;
  report.set_meta("scenario", "fed_smoke");
  report.set("shards", 2);
  report.set("jobs_accepted", accepted);
  report.set("jstat_all_jobs", static_cast<double>(listed));
  report.set("jstat_all_sorted", sorted ? 1 : 0);
  report.set("outage_submission_ok", outage_ok ? 1 : 0);
  report.set("mass_deleted", static_cast<double>(deleted));
  report.set("router.routed", static_cast<double>(rs.routed));
  report.set("router.fanouts", static_cast<double>(rs.fanouts));
  report.set("router.fanout_reads", static_cast<double>(rs.fanout_reads));
  report.set("router.rejects", static_cast<double>(rs.rejects));
  report.set("smoke_passed", pass ? 1 : 0);
  report.note_metrics(f.sim().telemetry().metrics());
  std::string report_path = prefix + ".report.json";
  if (!report.write_file(report_path)) {
    std::printf("FAILED to write %s\n", report_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n%s\n", report_path.c_str(),
              pass ? "SMOKE PASSED" : "SMOKE FAILED");
  return pass ? 0 : 1;
}
