// The paper's generality claim in action: the SAME symmetric active/active
// machinery (group communication + interceptor + state transfer) wrapped
// around a PVFS-style metadata server instead of the batch system.
//
//   $ ./examples/pvfs_metadata [out_prefix]
//
// Writes <out_prefix>.report.json (ScenarioReport with the pvfs.* and rsm.*
// metrics; CI gates it with tools/report_diff against
// baselines/pvfs_metadata.report.json).
#include <cstdio>
#include <memory>
#include <string>

#include "pvfs/metadata.h"
#include "rsm/replicated_service.h"
#include "sim/calibration.h"
#include "sim/failure.h"
#include "telemetry/scenario_report.h"

int main(int argc, char** argv) {
  std::string prefix = argc > 1 ? argv[1] : "pvfs_metadata";
  sim::Simulation simulation(1);
  sim::Network net(simulation, sim::paper_testbed().network);

  std::vector<sim::HostId> hosts;
  for (int i = 0; i < 3; ++i)
    hosts.push_back(net.add_host("md" + std::to_string(i)).id());
  sim::HostId login = net.add_host("login").id();

  std::vector<std::unique_ptr<pvfs::MetadataServer>> services;
  std::vector<std::unique_ptr<rsm::ReplicaNode>> replicas;
  for (int i = 0; i < 3; ++i) {
    services.push_back(std::make_unique<pvfs::MetadataServer>());
    services.back()->instrument(simulation.telemetry().metrics());
    rsm::ReplicaConfig cfg;
    cfg.group = gcs::group_config_from(sim::paper_testbed());
    cfg.group.port = 7100;
    cfg.group.peers = hosts;
    replicas.push_back(std::make_unique<rsm::ReplicaNode>(
        net, hosts[static_cast<size_t>(i)], cfg, services.back().get()));
    replicas.back()->start();
  }
  rsm::ReplicaClient::Config ccfg;
  for (sim::HostId h : hosts) ccfg.replicas.push_back({h, 19000});
  rsm::ReplicaClient client(net, login, 20000, ccfg);

  auto settle = [&](auto pred) {
    sim::Time limit = simulation.now() + sim::seconds(60);
    while (simulation.now() < limit && !pred())
      simulation.run_for(sim::msec(20));
  };
  settle([&] {
    for (auto& r : replicas)
      if (!r->in_service() || r->group().view().size() != 3) return false;
    return true;
  });
  std::printf("== 3 active/active PVFS metadata servers in service ==\n");

  auto run_op = [&](pvfs::MdRequest req, const char* what) {
    std::optional<pvfs::MdResponse> out;
    client.request(pvfs::encode(req), [&](std::optional<sim::Payload> r) {
      out = r ? std::optional(pvfs::decode_response(*r)) : std::nullopt;
    });
    settle([&] { return out.has_value(); });
    std::printf("[%7.3fs] %-28s -> %s (handle %llu)\n",
                simulation.now().seconds(), what,
                out ? std::string(pvfs::to_string(out->status)).c_str()
                    : "TIMEOUT",
                out ? static_cast<unsigned long long>(out->handle) : 0ull);
    return out.value_or(pvfs::MdResponse{});
  };

  pvfs::MdRequest mk;
  mk.op = pvfs::MdOp::kMkdir;
  mk.dir = pvfs::kRootHandle;
  mk.name = "scratch";
  mk.mode = 0755;
  pvfs::Handle scratch = run_op(mk, "mkdir /scratch").handle;

  pvfs::MdRequest cr;
  cr.op = pvfs::MdOp::kCreate;
  cr.dir = scratch;
  cr.name = "checkpoint.000";
  run_op(cr, "create /scratch/checkpoint.000");

  // Fail a metadata server mid-stream.
  net.crash_host(hosts[0]);
  std::printf("[%7.3fs] >>> md0 crashed\n", simulation.now().seconds());
  cr.name = "checkpoint.001";
  run_op(cr, "create /scratch/checkpoint.001");

  pvfs::MdRequest rd;
  rd.op = pvfs::MdOp::kReaddir;
  rd.dir = scratch;
  pvfs::MdResponse listing = run_op(rd, "readdir /scratch");
  for (const pvfs::MdEntry& e : listing.entries)
    std::printf("    %s (%s)\n", e.name.c_str(),
                e.type == pvfs::ObjType::kDirectory ? "dir" : "file");

  simulation.run_for(sim::seconds(2));
  bool consistent = services[1]->snapshot() == services[2]->snapshot();
  std::printf("\nsurviving replicas byte-identical: %s\n",
              consistent ? "yes" : "NO");
  bool pass = consistent && listing.entries.size() == 2;

  telemetry::ScenarioReport report;
  report.set_meta("scenario", "pvfs_metadata");
  report.set("replicas", 3);
  report.set("surviving_replicas_consistent", consistent ? 1 : 0);
  report.set("scratch_entries", static_cast<double>(listing.entries.size()));
  report.set("md_objects_head1",
             static_cast<double>(services[1]->object_count()));
  report.set("md_operations_head1",
             static_cast<double>(services[1]->operations()));
  report.set("demo_passed", pass ? 1 : 0);
  report.note_metrics(simulation.telemetry().metrics());
  std::string report_path = prefix + ".report.json";
  if (!report.write_file(report_path)) {
    std::printf("FAILED to write %s\n", report_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", report_path.c_str());

  std::printf("%s\n", pass ? "DEMO PASSED" : "DEMO FAILED");
  return pass ? 0 : 1;
}
