// High-throughput campaign: the paper's motivating scenario for Figure 11
// ("high throughput HPC scenarios, such as in computational biology or
// on-demand cluster computing") -- a user scripts 100 short parameter-sweep
// jobs through jsub, and a head node fails in the middle of the campaign.
//
// Prints the simulation's full metrics table and writes
// campaign.report.json (ScenarioReport, the BENCH_*.json shape).
//
//   $ ./examples/high_throughput_campaign [jobs] [heads]
#include <cstdio>
#include <cstdlib>

#include "joshua/cluster.h"
#include "telemetry/scenario_report.h"
#include "telemetry/snapshot.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  int jobs = argc > 1 ? std::atoi(argv[1]) : 100;
  int heads = argc > 2 ? std::atoi(argv[2]) : 2;
  if (jobs <= 0 || heads <= 0 || heads > 8) {
    std::fprintf(stderr, "usage: %s [jobs>0] [1<=heads<=8]\n", argv[0]);
    return 2;
  }

  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  // Short jobs, non-exclusive so both compute nodes chew the queue.
  options.sched.exclusive_cluster = false;
  joshua::Cluster cluster(options);
  // A long campaign floods the trace ring with data-path records; give the
  // rare membership streams their own quota so the early view changes (the
  // interesting part of the mid-campaign failure) survive to the report.
  telemetry::TraceBuffer& trace = cluster.sim().telemetry().trace();
  trace.set_category_capacity(trace.intern("gcs.view"), 1024);
  trace.set_category_capacity(trace.intern("gcs.flush"), 1024);
  cluster.start();
  if (!cluster.run_until_converged()) {
    std::printf("FATAL: no view\n");
    return 1;
  }

  std::printf("== %d-job campaign on %d head(s), 2 compute nodes ==\n", jobs,
              heads);
  joshua::Client& client = cluster.make_jclient();
  jutil::Samples latencies;
  int accepted = 0;
  int finished_submitting = 0;
  sim::Time campaign_start = cluster.sim().now();

  std::function<void()> submit_next = [&] {
    pbs::JobSpec spec;
    spec.name = "sweep-" + std::to_string(accepted);
    spec.user = "bio";
    spec.run_time = sim::seconds(30);
    sim::Time t0 = cluster.sim().now();
    client.jsub(spec, [&, t0](std::optional<pbs::SubmitResponse> r) {
      latencies.add((cluster.sim().now() - t0).millis());
      if (r && r->status == pbs::Status::kOk) ++accepted;
      if (++finished_submitting < jobs) submit_next();
    });
  };
  submit_next();

  // Fail a head one third of the way through (only if we have a spare).
  bool failed = false;
  while (finished_submitting < jobs) {
    cluster.sim().run_for(sim::msec(50));
    if (!failed && heads > 1 && finished_submitting > jobs / 3) {
      failed = true;
      std::printf("[%8.3fs] >>> head0 fails mid-campaign (job %d of %d)\n",
                  cluster.sim().now().seconds(), finished_submitting, jobs);
      cluster.net().crash_host(cluster.head_hosts()[0]);
    }
  }
  sim::Duration submit_time = cluster.sim().now() - campaign_start;
  std::printf("[%8.3fs] all %d submissions answered, %d accepted\n",
              cluster.sim().now().seconds(), jobs, accepted);
  std::printf("submission wall time: %.2fs  (mean %.0f ms, p95 %.0f ms, "
              "max %.0f ms)\n",
              submit_time.seconds(), latencies.mean(),
              latencies.percentile(95), latencies.max());

  // Drain the queue.
  size_t live_head = heads > 1 && failed ? 1 : 0;
  bool drained = false;
  sim::Time drain_limit =
      cluster.sim().now() + sim::seconds(60L * jobs + 120);
  while (cluster.sim().now() < drain_limit) {
    const pbs::Server& server = cluster.pbs_server(live_head);
    size_t complete = server.count_in_state(pbs::JobState::kComplete);
    if (complete >= static_cast<size_t>(accepted) &&
        complete == server.jobs().size()) {
      drained = true;
      break;
    }
    cluster.sim().run_for(sim::seconds(1));
  }
  uint64_t executed = 0;
  for (size_t c = 0; c < cluster.compute_count(); ++c)
    executed += cluster.mom(c).jobs_executed();
  size_t total_jobs = cluster.pbs_server(live_head).jobs().size();
  std::printf("[%8.3fs] campaign drained: %s; %zu jobs in the queue, "
              "%llu executed (exactly once each)\n",
              cluster.sim().now().seconds(), drained ? "yes" : "NO",
              total_jobs, static_cast<unsigned long long>(executed));
  if (total_jobs > static_cast<size_t>(accepted)) {
    std::printf("note: %zu duplicate submission(s) from client retry after "
                "the head failure -- the PBS interface is at-least-once, "
                "exactly as in the paper's prototype\n",
                total_jobs - static_cast<size_t>(accepted));
  }
  // Pass: everything accepted, every queued job ran exactly once, and at
  // most one duplicate per injected failure (at-least-once retry).
  bool pass = drained && accepted == jobs &&
              executed == static_cast<uint64_t>(total_jobs) &&
              total_jobs <= static_cast<size_t>(accepted) + 1;

  // One coherent report over every instrumented layer of the run.
  std::printf("\n%s\n",
              telemetry::render_metrics_table(
                  cluster.sim().telemetry().metrics()).c_str());
  telemetry::ScenarioReport report;
  report.set("jobs", jobs);
  report.set("heads", heads);
  report.set("jobs_accepted", accepted);
  report.set("jobs_executed", static_cast<double>(executed));
  report.set("submit_wall_s", submit_time.seconds());
  report.set("drained", drained ? 1 : 0);
  report.set("campaign_passed", pass ? 1 : 0);
  report.note_samples("submit_latency_ms", latencies);
  report.note_metrics(cluster.sim().telemetry().metrics());
  if (report.write_file("campaign.report.json"))
    std::printf("wrote campaign.report.json\n");

  std::printf("%s\n", pass ? "CAMPAIGN PASSED" : "CAMPAIGN FAILED");
  return pass ? 0 : 1;
}
