// Quickstart: bring up a 2-head / 2-compute JOSHUA cluster, submit a few
// jobs with jsub, watch them run exactly once, and query them with jstat.
//
//   $ ./examples/quickstart
//
// Everything runs inside the deterministic cluster simulator; the printed
// times are simulated seconds on the paper's calibrated testbed.
#include <cstdio>

#include "joshua/cluster.h"
#include "util/logging.h"

int main() {
  jutil::Logger::instance().set_level(jutil::LogLevel::kWarn);

  joshua::ClusterOptions options;
  options.head_count = 2;
  options.compute_count = 2;
  joshua::Cluster cluster(options);

  std::printf("== JOSHUA quickstart: %d head nodes, %d compute nodes ==\n",
              options.head_count, options.compute_count);

  cluster.start();
  if (!cluster.run_until_converged()) {
    std::printf("FATAL: heads never formed a view\n");
    return 1;
  }
  std::printf("[%.3fs] head group formed: view of %zu members\n",
              cluster.sim().now().seconds(),
              cluster.joshua_server(0).group().view().size());

  joshua::Client& jsub = cluster.make_jclient();

  // Submit three jobs.
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    pbs::JobSpec spec;
    spec.name = "science-" + std::to_string(i);
    spec.user = "alice";
    spec.run_time = sim::seconds(2);
    jsub.jsub(spec, [&, i](std::optional<pbs::SubmitResponse> resp) {
      if (resp && resp->status == pbs::Status::kOk) {
        std::printf("[%.3fs] jsub: job %llu (science-%d) queued\n",
                    cluster.sim().now().seconds(),
                    static_cast<unsigned long long>(resp->job_id), i);
      } else {
        std::printf("[%.3fs] jsub: submission %d FAILED\n",
                    cluster.sim().now().seconds(), i);
      }
    });
  }

  // Let the cluster run the jobs.
  cluster.sim().run_for(sim::seconds(30));

  // Check state on both heads -- symmetric active/active means both PBS
  // servers hold identical queues.
  for (size_t head = 0; head < cluster.head_count(); ++head) {
    const pbs::Server& server = cluster.pbs_server(head);
    std::printf("head%zu: %zu jobs, %zu complete\n", head,
                server.jobs().size(),
                server.count_in_state(pbs::JobState::kComplete));
  }
  for (size_t c = 0; c < cluster.compute_count(); ++c) {
    std::printf("node%zu: executed %llu job(s), emulated %llu launch(es)\n",
                c,
                static_cast<unsigned long long>(cluster.mom(c).jobs_executed()),
                static_cast<unsigned long long>(
                    cluster.mom(c).launches_emulated()));
  }

  // jstat through the group.
  joshua::Client& jstat = cluster.make_jclient();
  jstat.jstat(pbs::StatRequest{}, [&](std::optional<pbs::StatResponse> resp) {
    if (!resp) {
      std::printf("jstat FAILED\n");
      return;
    }
    std::printf("[%.3fs] jstat: %zu jobs\n", cluster.sim().now().seconds(),
                resp->jobs.size());
    for (const pbs::Job& job : resp->jobs) {
      std::printf("  %-18s %c  exit=%d\n",
                  pbs::job_id_string(job.id, "cluster").c_str(),
                  pbs::state_letter(job.state), job.exit_code);
      ++completed;
    }
  });
  cluster.sim().run_for(sim::seconds(5));

  std::printf("done at simulated t=%.3fs\n", cluster.sim().now().seconds());
  return completed == 3 ? 0 : 1;
}
