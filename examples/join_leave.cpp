// Join/leave walkthrough: grow a JOSHUA group from 1 to 4 heads while jobs
// flow, comparing the paper's replay-based state transfer with the
// snapshot-based future-work mode, then shrink it back by voluntary leave.
//
//   $ ./examples/join_leave [replay|snapshot]
#include <cstdio>
#include <cstring>

#include "joshua/cluster.h"

namespace {

void show_heads(joshua::Cluster& cluster) {
  for (size_t i = 0; i < cluster.head_count(); ++i) {
    const auto& server = cluster.joshua_server(i);
    if (!cluster.net().host(cluster.head_hosts()[i]).up()) {
      std::printf("  head%zu: DOWN\n", i);
      continue;
    }
    std::printf("  head%zu: %-14s view=%zu jobs=%zu replays=%llu\n", i,
                server.in_service() ? "in service" : "out of service",
                server.group().view().size(),
                cluster.pbs_server(i).jobs().size(),
                static_cast<unsigned long long>(
                    server.stats().replays_applied));
  }
}

}  // namespace

int main(int argc, char** argv) {
  joshua::ClusterOptions options;
  options.head_count = 4;
  options.compute_count = 2;
  options.transfer = (argc > 1 && std::strcmp(argv[1], "snapshot") == 0)
                         ? joshua::TransferMode::kSnapshot
                         : joshua::TransferMode::kReplay;
  joshua::Cluster cluster(options);
  std::printf("== join/leave walkthrough (%s state transfer) ==\n",
              options.transfer == joshua::TransferMode::kReplay ? "replay"
                                                                : "snapshot");

  // Found the group with head0 alone.
  cluster.joshua_server(0).start();
  while (!cluster.joshua_server(0).in_service())
    cluster.sim().run_for(sim::msec(50));
  std::printf("[%7.2fs] head0 founded the group\n",
              cluster.sim().now().seconds());

  joshua::Client& client = cluster.make_jclient();
  auto submit = [&](const char* name) {
    pbs::JobSpec spec;
    spec.name = name;
    spec.run_time = sim::minutes(30);
    bool done = false;
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse>) { done = true; });
    while (!done) cluster.sim().run_for(sim::msec(20));
  };
  submit("before-any-join");
  submit("before-any-join-2");

  // Grow to 4 heads one at a time, submitting between joins.
  for (size_t join = 1; join < 4; ++join) {
    cluster.joshua_server(join).start();
    while (cluster.joshua_server(0).group().view().size() != join + 1)
      cluster.sim().run_for(sim::msec(50));
    cluster.sim().run_for(sim::seconds(2));  // let the transfer land
    std::printf("[%7.2fs] head%zu joined (view of %zu)\n",
                cluster.sim().now().seconds(), join, join + 1);
    submit(("after-join-" + std::to_string(join)).c_str());
    show_heads(cluster);
  }

  // Shrink back: heads 3 and 2 leave voluntarily.
  cluster.joshua_server(3).shutdown();
  cluster.joshua_server(2).shutdown();
  while (cluster.joshua_server(0).group().view().size() != 2)
    cluster.sim().run_for(sim::msec(50));
  std::printf("[%7.2fs] heads 3 and 2 left; view of 2 remains\n",
              cluster.sim().now().seconds());
  submit("after-leaves");
  cluster.sim().run_for(sim::seconds(2));
  show_heads(cluster);

  // Final consistency check across the two remaining heads.
  size_t jobs0 = cluster.pbs_server(0).jobs().size();
  size_t jobs1 = cluster.pbs_server(1).jobs().size();
  std::printf("\nfinal queues: head0=%zu jobs, head1=%zu jobs -> %s\n", jobs0,
              jobs1,
              jobs0 == jobs1 && jobs0 == 6 ? "CONSISTENT" : "MISMATCH");
  return jobs0 == jobs1 && jobs0 == 6 ? 0 : 1;
}
