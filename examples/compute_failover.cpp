// Compute-plane failover scenario: the acceptance run for r-way job
// replication, executed as two legs over the SAME stochastic compute-fault
// schedule (same seed, same pool):
//
//   replicated leg -- r = 2, 5 s mom heartbeat, failover on. Must lose
//                     nothing: zero invariant violations, zero lost jobs,
//                     zero duplicate completions.
//   baseline leg   -- r = 1, heartbeat off: the paper's accepted failure
//                     mode, where a compute-node crash takes its running
//                     job with it. Must lose SOMETHING, or the injector is
//                     broken.
//
//   $ ./examples/compute_failover [out_prefix]
//
// Writes <out_prefix>.report.json (replicated-leg ScenarioReport plus
// baseline.* keys, gated in CI by tools/report_diff against
// baselines/compute_failover.report.json) and <out_prefix>.trace.json
// (replicated-leg Chrome trace). JOSHUA_REPLICATION / JOSHUA_COMPUTES
// sweep r and the pool size for manual runs; CI's gated run leaves them
// unset.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "telemetry/chrome_trace.h"
#include "util/logging.h"

namespace {

scenariotest::ScenarioOptions leg_options() {
  scenariotest::ScenarioOptions options;
  options.name = "compute_failover";
  options.heads = 3;
  options.computes = scenariotest::env_int("JOSHUA_COMPUTES", 4, 2, 16);
  options.replication = static_cast<uint32_t>(std::min(
      scenariotest::env_int("JOSHUA_REPLICATION", 2, 1, 3), options.computes));
  options.seed = 20260807;
  options.duration = sim::hours(12);
  options.random_head_faults = false;
  options.command_interval = sim::seconds(60);
  options.job_runtime_min = sim::seconds(20);
  options.job_runtime_max = sim::seconds(120);
  options.random_compute_faults = true;
  options.compute_mttf = sim::hours(1);
  options.compute_mttr = sim::minutes(2);
  options.mom_heartbeat = sim::seconds(5);
  options.heartbeat_miss_limit = 3;
  return options;
}

void print_leg(const char* leg, const scenariotest::ScenarioResult& r) {
  std::printf(
      "%s: %d compute faults, %llu accepted, %llu completed, %llu lost, "
      "%llu duplicate completions, %zu violations\n",
      leg, r.compute_fault_count,
      static_cast<unsigned long long>(r.jsub_accepted),
      static_cast<unsigned long long>(r.jobs_completed),
      static_cast<unsigned long long>(r.jobs_lost),
      static_cast<unsigned long long>(r.duplicate_completions),
      r.violations.size());
  for (const auto& v : r.violations) std::printf("  violation: %s\n", v.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  jutil::Logger::instance().set_level(jutil::LogLevel::kError);
  std::string prefix = argc > 1 ? argv[1] : "compute_failover";

  // --- replicated leg ------------------------------------------------------
  scenariotest::ScenarioOptions replicated = leg_options();
  scenariotest::ScenarioRunner replicated_runner(replicated);
  scenariotest::ScenarioResult rep = replicated_runner.run();
  print_leg("replicated (r-way, heartbeat on)", rep);

  // --- baseline leg --------------------------------------------------------
  scenariotest::ScenarioOptions baseline = leg_options();
  baseline.replication = 1;
  baseline.mom_heartbeat = sim::kDurationZero;
  baseline.tolerate_lost_jobs = true;
  scenariotest::ScenarioRunner baseline_runner(baseline);
  scenariotest::ScenarioResult base = baseline_runner.run();
  print_leg("baseline (r = 1, no heartbeat)", base);

  // Injector precondition scales with the pool: ~1 fault per pool-hour,
  // so even a 2-node sweep must see a meaningful schedule.
  int min_faults = 5 * replicated.computes;
  bool replicated_ok = rep.ok() && rep.jobs_lost == 0 &&
                       rep.duplicate_completions == 0 &&
                       rep.compute_fault_count >= min_faults;
  bool baseline_lossy = base.ok() && base.jobs_lost > 0 &&
                        base.duplicate_completions == 0;
  bool pass = replicated_ok && baseline_lossy;
  if (!replicated_ok)
    std::printf("FAIL: replicated leg (need 0 violations/losses/duplicates "
                "and >= %d faults)\n",
                min_faults);
  if (!baseline_lossy)
    std::printf("FAIL: baseline leg (need 0 violations, > 0 lost jobs)\n");

  // --- export --------------------------------------------------------------
  telemetry::ScenarioReport& report = rep.report;
  report.set("baseline.compute_faults",
             static_cast<double>(base.compute_fault_count));
  report.set("baseline.jsub_accepted", static_cast<double>(base.jsub_accepted));
  report.set("baseline.jobs_completed",
             static_cast<double>(base.jobs_completed));
  report.set("baseline.jobs_lost", static_cast<double>(base.jobs_lost));
  report.set("baseline.duplicate_completions",
             static_cast<double>(base.duplicate_completions));
  report.set("baseline.violations", static_cast<double>(base.violations.size()));
  report.set("replicated_leg_ok", replicated_ok ? 1 : 0);
  report.set("baseline_leg_lossy", baseline_lossy ? 1 : 0);
  report.set("demo_passed", pass ? 1 : 0);

  std::string report_path = prefix + ".report.json";
  if (!report.write_file(report_path)) {
    std::printf("FAILED to write %s\n", report_path.c_str());
    return 1;
  }

  telemetry::Hub& hub = replicated_runner.cluster().sim().telemetry();
  sim::Network& net = replicated_runner.cluster().net();
  std::vector<std::string> host_names;
  for (sim::HostId h = 0; h < net.host_count(); ++h)
    host_names.push_back(net.host(h).name());
  std::string trace_path = prefix + ".trace.json";
  if (!telemetry::write_chrome_trace_file(trace_path, hub.trace(),
                                          host_names)) {
    std::printf("FAILED to write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", report_path.c_str(), trace_path.c_str());

  std::printf("%s\n", pass ? "SCENARIO PASSED" : "SCENARIO FAILED");
  return pass ? 0 : 1;
}
