# Empty compiler generated dependencies file for jpvfs.
# This may be replaced when dependencies are built.
