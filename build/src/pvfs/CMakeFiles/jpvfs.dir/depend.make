# Empty dependencies file for jpvfs.
# This may be replaced when dependencies are built.
