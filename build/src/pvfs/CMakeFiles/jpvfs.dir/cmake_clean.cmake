file(REMOVE_RECURSE
  "CMakeFiles/jpvfs.dir/metadata.cpp.o"
  "CMakeFiles/jpvfs.dir/metadata.cpp.o.d"
  "libjpvfs.a"
  "libjpvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
