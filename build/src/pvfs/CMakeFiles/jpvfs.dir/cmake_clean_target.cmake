file(REMOVE_RECURSE
  "libjpvfs.a"
)
