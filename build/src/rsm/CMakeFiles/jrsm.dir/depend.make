# Empty dependencies file for jrsm.
# This may be replaced when dependencies are built.
