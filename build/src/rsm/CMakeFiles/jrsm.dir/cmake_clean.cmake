file(REMOVE_RECURSE
  "CMakeFiles/jrsm.dir/replicated_service.cpp.o"
  "CMakeFiles/jrsm.dir/replicated_service.cpp.o.d"
  "libjrsm.a"
  "libjrsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
