file(REMOVE_RECURSE
  "libjrsm.a"
)
