# Empty compiler generated dependencies file for jsim.
# This may be replaced when dependencies are built.
