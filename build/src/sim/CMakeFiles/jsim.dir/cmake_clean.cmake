file(REMOVE_RECURSE
  "CMakeFiles/jsim.dir/calibration.cpp.o"
  "CMakeFiles/jsim.dir/calibration.cpp.o.d"
  "CMakeFiles/jsim.dir/failure.cpp.o"
  "CMakeFiles/jsim.dir/failure.cpp.o.d"
  "CMakeFiles/jsim.dir/network.cpp.o"
  "CMakeFiles/jsim.dir/network.cpp.o.d"
  "CMakeFiles/jsim.dir/process.cpp.o"
  "CMakeFiles/jsim.dir/process.cpp.o.d"
  "CMakeFiles/jsim.dir/simulation.cpp.o"
  "CMakeFiles/jsim.dir/simulation.cpp.o.d"
  "libjsim.a"
  "libjsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
