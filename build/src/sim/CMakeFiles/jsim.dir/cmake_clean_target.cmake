file(REMOVE_RECURSE
  "libjsim.a"
)
