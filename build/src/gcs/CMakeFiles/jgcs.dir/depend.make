# Empty dependencies file for jgcs.
# This may be replaced when dependencies are built.
