file(REMOVE_RECURSE
  "CMakeFiles/jgcs.dir/group_member.cpp.o"
  "CMakeFiles/jgcs.dir/group_member.cpp.o.d"
  "CMakeFiles/jgcs.dir/messages.cpp.o"
  "CMakeFiles/jgcs.dir/messages.cpp.o.d"
  "CMakeFiles/jgcs.dir/ordering.cpp.o"
  "CMakeFiles/jgcs.dir/ordering.cpp.o.d"
  "CMakeFiles/jgcs.dir/types.cpp.o"
  "CMakeFiles/jgcs.dir/types.cpp.o.d"
  "libjgcs.a"
  "libjgcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jgcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
