file(REMOVE_RECURSE
  "libjgcs.a"
)
