file(REMOVE_RECURSE
  "libjpbs.a"
)
