# Empty dependencies file for jpbs.
# This may be replaced when dependencies are built.
