# Empty compiler generated dependencies file for jpbs.
# This may be replaced when dependencies are built.
