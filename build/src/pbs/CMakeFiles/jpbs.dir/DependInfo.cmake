
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pbs/client.cpp" "src/pbs/CMakeFiles/jpbs.dir/client.cpp.o" "gcc" "src/pbs/CMakeFiles/jpbs.dir/client.cpp.o.d"
  "/root/repo/src/pbs/job.cpp" "src/pbs/CMakeFiles/jpbs.dir/job.cpp.o" "gcc" "src/pbs/CMakeFiles/jpbs.dir/job.cpp.o.d"
  "/root/repo/src/pbs/mom.cpp" "src/pbs/CMakeFiles/jpbs.dir/mom.cpp.o" "gcc" "src/pbs/CMakeFiles/jpbs.dir/mom.cpp.o.d"
  "/root/repo/src/pbs/protocol.cpp" "src/pbs/CMakeFiles/jpbs.dir/protocol.cpp.o" "gcc" "src/pbs/CMakeFiles/jpbs.dir/protocol.cpp.o.d"
  "/root/repo/src/pbs/scheduler.cpp" "src/pbs/CMakeFiles/jpbs.dir/scheduler.cpp.o" "gcc" "src/pbs/CMakeFiles/jpbs.dir/scheduler.cpp.o.d"
  "/root/repo/src/pbs/server.cpp" "src/pbs/CMakeFiles/jpbs.dir/server.cpp.o" "gcc" "src/pbs/CMakeFiles/jpbs.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
