file(REMOVE_RECURSE
  "CMakeFiles/jpbs.dir/client.cpp.o"
  "CMakeFiles/jpbs.dir/client.cpp.o.d"
  "CMakeFiles/jpbs.dir/job.cpp.o"
  "CMakeFiles/jpbs.dir/job.cpp.o.d"
  "CMakeFiles/jpbs.dir/mom.cpp.o"
  "CMakeFiles/jpbs.dir/mom.cpp.o.d"
  "CMakeFiles/jpbs.dir/protocol.cpp.o"
  "CMakeFiles/jpbs.dir/protocol.cpp.o.d"
  "CMakeFiles/jpbs.dir/scheduler.cpp.o"
  "CMakeFiles/jpbs.dir/scheduler.cpp.o.d"
  "CMakeFiles/jpbs.dir/server.cpp.o"
  "CMakeFiles/jpbs.dir/server.cpp.o.d"
  "libjpbs.a"
  "libjpbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
