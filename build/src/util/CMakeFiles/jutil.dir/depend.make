# Empty dependencies file for jutil.
# This may be replaced when dependencies are built.
