file(REMOVE_RECURSE
  "libjutil.a"
)
