file(REMOVE_RECURSE
  "CMakeFiles/jutil.dir/config.cpp.o"
  "CMakeFiles/jutil.dir/config.cpp.o.d"
  "CMakeFiles/jutil.dir/logging.cpp.o"
  "CMakeFiles/jutil.dir/logging.cpp.o.d"
  "CMakeFiles/jutil.dir/stats.cpp.o"
  "CMakeFiles/jutil.dir/stats.cpp.o.d"
  "CMakeFiles/jutil.dir/strings.cpp.o"
  "CMakeFiles/jutil.dir/strings.cpp.o.d"
  "CMakeFiles/jutil.dir/timefmt.cpp.o"
  "CMakeFiles/jutil.dir/timefmt.cpp.o.d"
  "libjutil.a"
  "libjutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
