file(REMOVE_RECURSE
  "libjnet.a"
)
