# Empty dependencies file for jnet.
# This may be replaced when dependencies are built.
