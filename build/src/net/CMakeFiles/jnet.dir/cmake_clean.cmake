file(REMOVE_RECURSE
  "CMakeFiles/jnet.dir/rpc.cpp.o"
  "CMakeFiles/jnet.dir/rpc.cpp.o.d"
  "libjnet.a"
  "libjnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
