
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ha/active_standby.cpp" "src/ha/CMakeFiles/jha.dir/active_standby.cpp.o" "gcc" "src/ha/CMakeFiles/jha.dir/active_standby.cpp.o.d"
  "/root/repo/src/ha/asymmetric.cpp" "src/ha/CMakeFiles/jha.dir/asymmetric.cpp.o" "gcc" "src/ha/CMakeFiles/jha.dir/asymmetric.cpp.o.d"
  "/root/repo/src/ha/availability.cpp" "src/ha/CMakeFiles/jha.dir/availability.cpp.o" "gcc" "src/ha/CMakeFiles/jha.dir/availability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbs/CMakeFiles/jpbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jutil.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
