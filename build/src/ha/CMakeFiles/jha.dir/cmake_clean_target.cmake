file(REMOVE_RECURSE
  "libjha.a"
)
