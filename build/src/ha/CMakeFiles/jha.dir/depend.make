# Empty dependencies file for jha.
# This may be replaced when dependencies are built.
