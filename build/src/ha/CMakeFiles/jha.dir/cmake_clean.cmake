file(REMOVE_RECURSE
  "CMakeFiles/jha.dir/active_standby.cpp.o"
  "CMakeFiles/jha.dir/active_standby.cpp.o.d"
  "CMakeFiles/jha.dir/asymmetric.cpp.o"
  "CMakeFiles/jha.dir/asymmetric.cpp.o.d"
  "CMakeFiles/jha.dir/availability.cpp.o"
  "CMakeFiles/jha.dir/availability.cpp.o.d"
  "libjha.a"
  "libjha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
