file(REMOVE_RECURSE
  "CMakeFiles/jjoshua.dir/client.cpp.o"
  "CMakeFiles/jjoshua.dir/client.cpp.o.d"
  "CMakeFiles/jjoshua.dir/cluster.cpp.o"
  "CMakeFiles/jjoshua.dir/cluster.cpp.o.d"
  "CMakeFiles/jjoshua.dir/config_file.cpp.o"
  "CMakeFiles/jjoshua.dir/config_file.cpp.o.d"
  "CMakeFiles/jjoshua.dir/mom_plugin.cpp.o"
  "CMakeFiles/jjoshua.dir/mom_plugin.cpp.o.d"
  "CMakeFiles/jjoshua.dir/protocol.cpp.o"
  "CMakeFiles/jjoshua.dir/protocol.cpp.o.d"
  "CMakeFiles/jjoshua.dir/server.cpp.o"
  "CMakeFiles/jjoshua.dir/server.cpp.o.d"
  "libjjoshua.a"
  "libjjoshua.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jjoshua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
