file(REMOVE_RECURSE
  "libjjoshua.a"
)
