
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/joshua/client.cpp" "src/joshua/CMakeFiles/jjoshua.dir/client.cpp.o" "gcc" "src/joshua/CMakeFiles/jjoshua.dir/client.cpp.o.d"
  "/root/repo/src/joshua/cluster.cpp" "src/joshua/CMakeFiles/jjoshua.dir/cluster.cpp.o" "gcc" "src/joshua/CMakeFiles/jjoshua.dir/cluster.cpp.o.d"
  "/root/repo/src/joshua/config_file.cpp" "src/joshua/CMakeFiles/jjoshua.dir/config_file.cpp.o" "gcc" "src/joshua/CMakeFiles/jjoshua.dir/config_file.cpp.o.d"
  "/root/repo/src/joshua/mom_plugin.cpp" "src/joshua/CMakeFiles/jjoshua.dir/mom_plugin.cpp.o" "gcc" "src/joshua/CMakeFiles/jjoshua.dir/mom_plugin.cpp.o.d"
  "/root/repo/src/joshua/protocol.cpp" "src/joshua/CMakeFiles/jjoshua.dir/protocol.cpp.o" "gcc" "src/joshua/CMakeFiles/jjoshua.dir/protocol.cpp.o.d"
  "/root/repo/src/joshua/server.cpp" "src/joshua/CMakeFiles/jjoshua.dir/server.cpp.o" "gcc" "src/joshua/CMakeFiles/jjoshua.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcs/CMakeFiles/jgcs.dir/DependInfo.cmake"
  "/root/repo/build/src/pbs/CMakeFiles/jpbs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
