# Empty compiler generated dependencies file for jjoshua.
# This may be replaced when dependencies are built.
