file(REMOVE_RECURSE
  "CMakeFiles/gcs_tests.dir/gcs/delivery_test.cpp.o"
  "CMakeFiles/gcs_tests.dir/gcs/delivery_test.cpp.o.d"
  "CMakeFiles/gcs_tests.dir/gcs/membership_test.cpp.o"
  "CMakeFiles/gcs_tests.dir/gcs/membership_test.cpp.o.d"
  "CMakeFiles/gcs_tests.dir/gcs/messages_test.cpp.o"
  "CMakeFiles/gcs_tests.dir/gcs/messages_test.cpp.o.d"
  "CMakeFiles/gcs_tests.dir/gcs/ordering_test.cpp.o"
  "CMakeFiles/gcs_tests.dir/gcs/ordering_test.cpp.o.d"
  "CMakeFiles/gcs_tests.dir/gcs/property_test.cpp.o"
  "CMakeFiles/gcs_tests.dir/gcs/property_test.cpp.o.d"
  "CMakeFiles/gcs_tests.dir/gcs/state_transfer_test.cpp.o"
  "CMakeFiles/gcs_tests.dir/gcs/state_transfer_test.cpp.o.d"
  "gcs_tests"
  "gcs_tests.pdb"
  "gcs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
