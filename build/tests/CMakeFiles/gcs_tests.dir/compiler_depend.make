# Empty compiler generated dependencies file for gcs_tests.
# This may be replaced when dependencies are built.
