file(REMOVE_RECURSE
  "CMakeFiles/joshua_tests.dir/joshua/config_file_test.cpp.o"
  "CMakeFiles/joshua_tests.dir/joshua/config_file_test.cpp.o.d"
  "CMakeFiles/joshua_tests.dir/joshua/failover_test.cpp.o"
  "CMakeFiles/joshua_tests.dir/joshua/failover_test.cpp.o.d"
  "CMakeFiles/joshua_tests.dir/joshua/interceptor_test.cpp.o"
  "CMakeFiles/joshua_tests.dir/joshua/interceptor_test.cpp.o.d"
  "CMakeFiles/joshua_tests.dir/joshua/jmutex_test.cpp.o"
  "CMakeFiles/joshua_tests.dir/joshua/jmutex_test.cpp.o.d"
  "CMakeFiles/joshua_tests.dir/joshua/join_test.cpp.o"
  "CMakeFiles/joshua_tests.dir/joshua/join_test.cpp.o.d"
  "CMakeFiles/joshua_tests.dir/joshua/protocol_test.cpp.o"
  "CMakeFiles/joshua_tests.dir/joshua/protocol_test.cpp.o.d"
  "joshua_tests"
  "joshua_tests.pdb"
  "joshua_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joshua_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
