# Empty dependencies file for joshua_tests.
# This may be replaced when dependencies are built.
