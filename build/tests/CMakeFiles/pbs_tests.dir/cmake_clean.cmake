file(REMOVE_RECURSE
  "CMakeFiles/pbs_tests.dir/pbs/client_test.cpp.o"
  "CMakeFiles/pbs_tests.dir/pbs/client_test.cpp.o.d"
  "CMakeFiles/pbs_tests.dir/pbs/mom_test.cpp.o"
  "CMakeFiles/pbs_tests.dir/pbs/mom_test.cpp.o.d"
  "CMakeFiles/pbs_tests.dir/pbs/protocol_test.cpp.o"
  "CMakeFiles/pbs_tests.dir/pbs/protocol_test.cpp.o.d"
  "CMakeFiles/pbs_tests.dir/pbs/scheduler_test.cpp.o"
  "CMakeFiles/pbs_tests.dir/pbs/scheduler_test.cpp.o.d"
  "CMakeFiles/pbs_tests.dir/pbs/server_test.cpp.o"
  "CMakeFiles/pbs_tests.dir/pbs/server_test.cpp.o.d"
  "pbs_tests"
  "pbs_tests.pdb"
  "pbs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
