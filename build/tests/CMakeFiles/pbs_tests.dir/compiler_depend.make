# Empty compiler generated dependencies file for pbs_tests.
# This may be replaced when dependencies are built.
