
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pbs/client_test.cpp" "tests/CMakeFiles/pbs_tests.dir/pbs/client_test.cpp.o" "gcc" "tests/CMakeFiles/pbs_tests.dir/pbs/client_test.cpp.o.d"
  "/root/repo/tests/pbs/mom_test.cpp" "tests/CMakeFiles/pbs_tests.dir/pbs/mom_test.cpp.o" "gcc" "tests/CMakeFiles/pbs_tests.dir/pbs/mom_test.cpp.o.d"
  "/root/repo/tests/pbs/protocol_test.cpp" "tests/CMakeFiles/pbs_tests.dir/pbs/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/pbs_tests.dir/pbs/protocol_test.cpp.o.d"
  "/root/repo/tests/pbs/scheduler_test.cpp" "tests/CMakeFiles/pbs_tests.dir/pbs/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/pbs_tests.dir/pbs/scheduler_test.cpp.o.d"
  "/root/repo/tests/pbs/server_test.cpp" "tests/CMakeFiles/pbs_tests.dir/pbs/server_test.cpp.o" "gcc" "tests/CMakeFiles/pbs_tests.dir/pbs/server_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/joshua/CMakeFiles/jjoshua.dir/DependInfo.cmake"
  "/root/repo/build/src/ha/CMakeFiles/jha.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/jpvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/jrsm.dir/DependInfo.cmake"
  "/root/repo/build/src/pbs/CMakeFiles/jpbs.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/jgcs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
