file(REMOVE_RECURSE
  "CMakeFiles/ha_tests.dir/ha/active_standby_test.cpp.o"
  "CMakeFiles/ha_tests.dir/ha/active_standby_test.cpp.o.d"
  "CMakeFiles/ha_tests.dir/ha/asymmetric_test.cpp.o"
  "CMakeFiles/ha_tests.dir/ha/asymmetric_test.cpp.o.d"
  "CMakeFiles/ha_tests.dir/ha/availability_test.cpp.o"
  "CMakeFiles/ha_tests.dir/ha/availability_test.cpp.o.d"
  "ha_tests"
  "ha_tests.pdb"
  "ha_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
