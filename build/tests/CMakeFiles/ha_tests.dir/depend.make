# Empty dependencies file for ha_tests.
# This may be replaced when dependencies are built.
