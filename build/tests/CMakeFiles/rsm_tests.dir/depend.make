# Empty dependencies file for rsm_tests.
# This may be replaced when dependencies are built.
