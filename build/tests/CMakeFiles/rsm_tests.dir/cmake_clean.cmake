file(REMOVE_RECURSE
  "CMakeFiles/rsm_tests.dir/pvfs/metadata_test.cpp.o"
  "CMakeFiles/rsm_tests.dir/pvfs/metadata_test.cpp.o.d"
  "CMakeFiles/rsm_tests.dir/rsm/replicated_service_test.cpp.o"
  "CMakeFiles/rsm_tests.dir/rsm/replicated_service_test.cpp.o.d"
  "rsm_tests"
  "rsm_tests.pdb"
  "rsm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
