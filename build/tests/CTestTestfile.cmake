# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/gcs_tests[1]_include.cmake")
include("/root/repo/build/tests/pbs_tests[1]_include.cmake")
include("/root/repo/build/tests/joshua_tests[1]_include.cmake")
include("/root/repo/build/tests/ha_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/rsm_tests[1]_include.cmake")
