# Empty compiler generated dependencies file for bench_pvfs.
# This may be replaced when dependencies are built.
