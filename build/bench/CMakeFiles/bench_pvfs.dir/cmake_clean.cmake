file(REMOVE_RECURSE
  "CMakeFiles/bench_pvfs.dir/bench_pvfs.cpp.o"
  "CMakeFiles/bench_pvfs.dir/bench_pvfs.cpp.o.d"
  "bench_pvfs"
  "bench_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
