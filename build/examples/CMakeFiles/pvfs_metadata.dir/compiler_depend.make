# Empty compiler generated dependencies file for pvfs_metadata.
# This may be replaced when dependencies are built.
