file(REMOVE_RECURSE
  "CMakeFiles/pvfs_metadata.dir/pvfs_metadata.cpp.o"
  "CMakeFiles/pvfs_metadata.dir/pvfs_metadata.cpp.o.d"
  "pvfs_metadata"
  "pvfs_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
