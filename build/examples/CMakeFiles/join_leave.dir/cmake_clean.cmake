file(REMOVE_RECURSE
  "CMakeFiles/join_leave.dir/join_leave.cpp.o"
  "CMakeFiles/join_leave.dir/join_leave.cpp.o.d"
  "join_leave"
  "join_leave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_leave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
