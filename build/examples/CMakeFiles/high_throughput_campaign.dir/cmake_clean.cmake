file(REMOVE_RECURSE
  "CMakeFiles/high_throughput_campaign.dir/high_throughput_campaign.cpp.o"
  "CMakeFiles/high_throughput_campaign.dir/high_throughput_campaign.cpp.o.d"
  "high_throughput_campaign"
  "high_throughput_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/high_throughput_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
