# Empty compiler generated dependencies file for high_throughput_campaign.
# This may be replaced when dependencies are built.
