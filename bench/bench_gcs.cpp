// Ablation E6: group-communication cost vs group size and service level.
//
// Not a paper table -- it isolates the substrate that produces Figure 10's
// shape: AGREED delivery latency grows with group size because the origin
// serializes ack processing; FIFO stays flat; SAFE pays an extra
// stability round.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <memory>

#include "gcs/group_member.h"
#include "sim/calibration.h"
#include "sim/failure.h"
#include "util/stats.h"

namespace {

struct GcsBench {
  explicit GcsBench(int n, uint64_t seed = 1)
      : sim(seed), net(sim, sim::paper_testbed().network) {
    for (int i = 0; i < n; ++i)
      hosts.push_back(net.add_host("h" + std::to_string(i)).id());
    delivered.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      gcs::GroupConfig cfg = gcs::group_config_from(sim::paper_testbed());
      cfg.port = 7000;
      cfg.peers = hosts;
      size_t idx = static_cast<size_t>(i);
      gcs::GroupCallbacks cb;
      cb.on_deliver = [this, idx](const gcs::Delivered&) {
        ++delivered[idx];
      };
      members.push_back(std::make_unique<gcs::GroupMember>(
          net, hosts[idx], cfg, cb));
    }
    for (auto& m : members) m->join();
    sim::Time limit = sim.now() + sim::seconds(30);
    while (sim.now() < limit && !converged()) sim.run_for(sim::msec(20));
  }

  bool converged() const {
    for (const auto& m : members)
      if (m->state() != gcs::GroupMember::State::kMember ||
          m->view().size() != members.size())
        return false;
    return true;
  }

  /// Latency from multicast to delivery at the ORIGIN (what a replicated
  /// state machine waits for before answering a client).
  double origin_latency_ms(gcs::Delivery level) {
    uint64_t target = delivered[0] + 1;
    sim::Time start = sim.now();
    members[0]->multicast({0x42}, level);
    sim::Time limit = start + sim::seconds(30);
    while (sim.now() < limit && delivered[0] < target)
      sim.run_for(sim::usec(100));
    double ms = (sim.now() - start).millis();
    // Drain remote-side processing tails so samples do not pipeline.
    sim.run_for(sim::seconds(2));
    return ms;
  }

  sim::Simulation sim;
  sim::Network net;
  std::vector<sim::HostId> hosts;
  std::vector<std::unique_ptr<gcs::GroupMember>> members;
  std::vector<uint64_t> delivered;
};

void print_table() {
  std::printf(
      "\n==============================================================\n"
      "E6: AGREED/SAFE/FIFO multicast latency vs group size\n"
      "(origin-side delivery latency, paper-testbed calibration)\n"
      "==============================================================\n");
  std::printf("%-8s %10s %10s %10s\n", "members", "FIFO", "AGREED", "SAFE");
  for (int n = 1; n <= 6; ++n) {
    GcsBench bench(n);
    if (!bench.converged()) {
      std::printf("%-8d (no view)\n", n);
      continue;
    }
    jutil::Samples fifo, agreed, safe;
    for (int i = 0; i < 8; ++i) {
      fifo.add(bench.origin_latency_ms(gcs::Delivery::kFifo));
      agreed.add(bench.origin_latency_ms(gcs::Delivery::kAgreed));
      safe.add(bench.origin_latency_ms(gcs::Delivery::kSafe));
    }
    std::printf("%-8d %8.1fms %8.1fms %8.1fms\n", n, fifo.mean(),
                agreed.mean(), safe.mean());
  }
  std::printf("\nShape checks: FIFO flat (self-delivery); AGREED/SAFE grow\n"
              "roughly linearly with one ack-processing step per extra head\n"
              "-- the mechanism behind Figure 10's per-head overhead.\n");
}

void BM_AgreedMulticast(benchmark::State& state) {
  GcsBench bench(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.SetIterationTime(
        bench.origin_latency_ms(gcs::Delivery::kAgreed) / 1000.0);
  }
}
BENCHMARK(BM_AgreedMulticast)->DenseRange(1, 6)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_AgreedThroughput(benchmark::State& state) {
  // Messages delivered per simulated second under a saturating sender.
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    GcsBench bench(n);
    const int burst = 50;
    sim::Time start = bench.sim.now();
    for (int i = 0; i < burst; ++i) bench.members[0]->multicast({0x1});
    sim::Time limit = start + sim::seconds(600);
    while (bench.sim.now() < limit && bench.delivered[0] < burst)
      bench.sim.run_for(sim::msec(1));
    state.SetIterationTime((bench.sim.now() - start).seconds());
    state.counters["msgs_per_s"] = benchmark::Counter(
        burst, benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_AgreedThroughput)->DenseRange(1, 4)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
