// E10: ordering-engine head-count sweep -- where the token ring overtakes
// the paper's all-ack protocol.
//
// The paper's testbed stops at 4 head nodes; Figure 10's latency growth is
// driven by the all-ack engine's O(N) acknowledgement cuts per message,
// each of which every member must process. This sweep runs identical
// sustained traffic through both engines at N in {4, 16, 64, 128} and
// records the ordering latency and the control-message cost per ordered
// message. Expectation (asserted, and gated by
// baselines/bench_ordering.json): the token ring is strictly cheaper on
// both axes from N = 64 up.
//
//   $ ./bench/bench_ordering            # table + BENCH_ordering.json
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gcs/group_member.h"
#include "sim/calibration.h"
#include "telemetry/scenario_report.h"

namespace {

constexpr int kHeadCounts[] = {4, 16, 64, 128};
/// Total ordered messages per run: identical offered load at every sweep
/// point, so within-N engine comparisons and across-N curves both hold.
constexpr int kTotalMsgs = 128;
/// Concurrent submitters per round. An HPC site's command front-ends, not
/// every head, inject jobs simultaneously; capping the burst keeps offered
/// load constant across N while the per-head ordering cost (ack cuts,
/// token rotation) still scales with the full membership.
constexpr int kMaxSenders = 32;
/// Inter-round gap; small enough that the all-ack engine's per-message
/// O(N^2) ack processing saturates the heads at large N (the regime the
/// paper never reached).
constexpr sim::Duration kRoundGap = sim::msec(20);

struct RunResult {
  bool ok = false;
  double order_ms_mean = 0.0;
  double order_ms_p95 = 0.0;
  double ctrl_per_msg = 0.0;
  double rotations = 0.0;
  double hold_ms_mean = 0.0;
};

RunResult run_sweep_point(gcs::OrderingMode mode, int n) {
  RunResult out;
  std::fprintf(stderr, "[n=%d %s] start\n", n,
               std::string(gcs::to_string(mode)).c_str());
  sim::Simulation sim(1);
  sim::Network net(sim, sim::fast_calibration().network);
  std::vector<sim::HostId> hosts;
  for (int i = 0; i < n; ++i)
    hosts.push_back(net.add_host("h" + std::to_string(i)).id());
  std::vector<uint64_t> delivered(static_cast<size_t>(n), 0);
  std::vector<std::unique_ptr<gcs::GroupMember>> members;
  for (int i = 0; i < n; ++i) {
    gcs::GroupConfig cfg = gcs::group_config_from(sim::fast_calibration());
    cfg.port = 7000;
    cfg.peers = hosts;
    cfg.ordering = mode;
    // The paper-era defaults model a 2001 head node (1 ms per heartbeat, 2 ms
    // per control packet); at N = 128 that alone is 127 ms of CPU per 100 ms
    // heartbeat interval and no engine can converge. Model modern heads so
    // the sweep isolates the ENGINES' asymptotics, not the heartbeat floor.
    cfg.hb_proc = sim::usec(20);
    cfg.ctrl_proc = sim::usec(50);
    // Relax the failure detector: at N = 128 the all-ack backlog delays
    // heartbeats past the default 500 ms suspect timeout and the sweep
    // would measure view churn instead of steady-state ordering.
    cfg.suspect_timeout = sim::seconds(10);
    cfg.flush_timeout = sim::seconds(20);
    size_t idx = static_cast<size_t>(i);
    gcs::GroupCallbacks cb;
    cb.on_deliver = [&delivered, idx](const gcs::Delivered&) {
      ++delivered[idx];
    };
    members.push_back(
        std::make_unique<gcs::GroupMember>(net, hosts[idx], cfg, cb));
  }
  for (auto& m : members) m->join();
  auto converged = [&] {
    for (const auto& m : members)
      if (m->state() != gcs::GroupMember::State::kMember ||
          m->view().size() != members.size())
        return false;
    return true;
  };
  sim::Time limit = sim.now() + sim::seconds(120);
  while (sim.now() < limit && !converged()) sim.run_for(sim::msec(20));
  if (!converged()) return out;
  std::fprintf(stderr, "[n=%d] converged at sim %.2fs\n", n,
               sim.now().seconds());

  // Sustained load: rounds of kMaxSenders concurrent multicasts rotating
  // across the membership, kRoundGap apart -- "sustained" means every
  // round after the first lands on top of the previous round's
  // acknowledgement backlog.
  int senders = n < kMaxSenders ? n : kMaxSenders;
  int rounds = kTotalMsgs / senders;
  if (rounds < 2) rounds = 2;
  for (int r = 0; r < rounds; ++r) {
    for (int k = 0; k < senders; ++k) {
      size_t idx = static_cast<size_t>((r * senders + k) % n);
      members[idx]->multicast(sim::Payload{static_cast<uint8_t>(r)},
                              gcs::Delivery::kAgreed);
    }
    sim.run_for(kRoundGap);
  }
  uint64_t expect =
      static_cast<uint64_t>(rounds) * static_cast<uint64_t>(senders);
  auto drained = [&] {
    for (uint64_t d : delivered)
      if (d < expect) return false;
    return true;
  };
  std::fprintf(stderr, "[n=%d] load injected, sim %.2fs, draining\n", n,
               sim.now().seconds());
  limit = sim.now() + sim::minutes(10);
  while (sim.now() < limit && !drained()) sim.run_for(sim::msec(20));
  if (!drained()) {
    uint64_t min_d = delivered[0];
    for (uint64_t d : delivered) min_d = d < min_d ? d : min_d;
    std::fprintf(stderr, "[n=%d] STALLED: min delivered %llu of %llu\n", n,
                 static_cast<unsigned long long>(min_d),
                 static_cast<unsigned long long>(expect));
    return out;
  }
  std::fprintf(stderr, "[n=%d] drained at sim %.2fs\n", n,
               sim.now().seconds());

  const telemetry::Registry& m = sim.telemetry().metrics();
  const auto* latency = m.find_histogram("gcs.order_latency_us");
  const auto* cuts = m.find_counter("gcs.cuts_sent");
  const auto* engine = m.find_counter("gcs.engine_msgs_sent");
  if (latency == nullptr || latency->data.count == 0) return out;
  out.order_ms_mean = latency->data.mean() / 1000.0;
  out.order_ms_p95 = latency->data.percentile(95) / 1000.0;
  uint64_t ctrl = (cuts != nullptr ? cuts->value : 0) +
                  (engine != nullptr ? engine->value : 0);
  out.ctrl_per_msg = static_cast<double>(ctrl) / static_cast<double>(expect);
  if (const auto* rot = m.find_counter("gcs.token.rotations"))
    out.rotations = static_cast<double>(rot->value);
  if (const auto* hold = m.find_histogram("gcs.token.hold_us"))
    if (hold->data.count > 0) out.hold_ms_mean = hold->data.mean() / 1000.0;
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "==================================================================\n"
      "E10: ordering-engine head-count sweep (%d msgs sustained load)\n"
      "==================================================================\n"
      "%-6s %-8s %12s %12s %12s\n",
      kTotalMsgs, "N", "engine", "order mean", "order p95", "ctrl/msg");

  telemetry::ScenarioReport report;
  report.set_meta("experiment", "E10_ordering_sweep");
  std::map<int, std::map<gcs::OrderingMode, RunResult>> results;
  bool all_ok = true;
  for (int n : kHeadCounts) {
    for (gcs::OrderingMode mode :
         {gcs::OrderingMode::kAllAck, gcs::OrderingMode::kTokenRing}) {
      RunResult r = run_sweep_point(mode, n);
      results[n][mode] = r;
      std::string mode_name(gcs::to_string(mode));
      if (!r.ok) {
        std::printf("%-6d %-8s FAILED (no convergence or stalled delivery)\n",
                    n, mode_name.c_str());
        all_ok = false;
        continue;
      }
      std::printf("%-6d %-8s %9.2f ms %9.2f ms %12.2f\n", n,
                  mode_name.c_str(), r.order_ms_mean, r.order_ms_p95,
                  r.ctrl_per_msg);
      std::string prefix = mode_name + ".n" + std::to_string(n);
      report.set(prefix + ".order_ms_mean", r.order_ms_mean);
      report.set(prefix + ".order_ms_p95", r.order_ms_p95);
      report.set(prefix + ".ctrl_per_msg", r.ctrl_per_msg);
      if (mode == gcs::OrderingMode::kTokenRing) {
        report.set(prefix + ".rotations", r.rotations);
        report.set(prefix + ".hold_ms_mean", r.hold_ms_mean);
      }
    }
  }

  // The reproduction bar: strictly cheaper on both axes from N = 64.
  bool crossover = all_ok;
  for (int n : {64, 128}) {
    const RunResult& a = results[n][gcs::OrderingMode::kAllAck];
    const RunResult& t = results[n][gcs::OrderingMode::kTokenRing];
    if (!a.ok || !t.ok || t.order_ms_mean >= a.order_ms_mean ||
        t.ctrl_per_msg >= a.ctrl_per_msg)
      crossover = false;
  }
  report.set("crossover_at_64_ok", crossover ? 1 : 0);
  std::printf("\ntoken strictly cheaper (latency AND control msgs) at "
              "N >= 64: %s\n",
              crossover ? "yes" : "NO");
  if (report.write_file("BENCH_ordering.json"))
    std::printf("wrote BENCH_ordering.json\n");
  return crossover ? 0 : 1;
}
