// E10: ordering-engine head-count sweep -- where the token ring overtakes
// the paper's all-ack protocol -- plus E13: the batched/pipelined hot path.
//
// Part A (E10, unchanged keys): the paper's testbed stops at 4 head nodes;
// Figure 10's latency growth is driven by the all-ack engine's O(N)
// acknowledgement cuts per message, each of which every member must
// process. This sweep runs identical sustained traffic through both engines
// at N in {4, 16, 64, 128} and records the ordering latency and the
// control-message cost per ordered message. Expectation (asserted, and
// gated by baselines/bench_ordering.json): the token ring is strictly
// cheaper on both axes from N = 64 up.
//
// Part B (E13): the batching knobs must be free when off and pay when on.
//   * Parity: batch=1/window=1 at N=4 must match the legacy run's ordering
//     latency for both engines (keys parity.<engine>.n4.*, gated
//     lower_is_better like every other latency key).
//   * Closed-loop throughput: senders preload a fixed backlog and the
//     flow-control window pipelines it; ordered commands/s is recorded per
//     (engine, batch, window) and the token ring at N=128 must clear a 5x
//     speedup at batch=64/window=16 over batch=1/window=1 (asserted, and
//     the speedup key is gated higher_is_better).
//
//   $ ./bench/bench_ordering            # table + BENCH_ordering.json
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gcs/group_member.h"
#include "sim/calibration.h"
#include "telemetry/scenario_report.h"

namespace {

constexpr int kHeadCounts[] = {4, 16, 64, 128};
/// Total ordered messages per run: identical offered load at every sweep
/// point, so within-N engine comparisons and across-N curves both hold.
constexpr int kTotalMsgs = 128;
/// Concurrent submitters per round. An HPC site's command front-ends, not
/// every head, inject jobs simultaneously; capping the burst keeps offered
/// load constant across N while the per-head ordering cost (ack cuts,
/// token rotation) still scales with the full membership.
constexpr int kMaxSenders = 32;
/// Inter-round gap; small enough that the all-ack engine's per-message
/// O(N^2) ack processing saturates the heads at large N (the regime the
/// paper never reached).
constexpr sim::Duration kRoundGap = sim::msec(20);

/// Closed-loop load (Part B): each sender preloads this backlog in one call
/// burst; the sender window paces it onto the wire.
constexpr int kTputSenders = 8;
constexpr int kTputPerSender = 32;

/// An N-member group on a fresh simulation, ready to converge. The config
/// must stay byte-identical to the PR 6 bench when batch/window are 0 so
/// the legacy baseline keys keep reproducing exactly.
struct Rig {
  sim::Simulation sim{1};
  sim::Network net;
  std::vector<sim::HostId> hosts;
  std::vector<uint64_t> delivered;
  std::vector<std::unique_ptr<gcs::GroupMember>> members;

  Rig(gcs::OrderingMode mode, int n, uint32_t batch, uint32_t window)
      : net(sim, sim::fast_calibration().network) {
    for (int i = 0; i < n; ++i)
      hosts.push_back(net.add_host("h" + std::to_string(i)).id());
    delivered.assign(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      gcs::GroupConfig cfg = gcs::group_config_from(sim::fast_calibration());
      cfg.port = 7000;
      cfg.peers = hosts;
      cfg.ordering = mode;
      cfg.order_batch = batch;
      cfg.inflight_window = window;
      // The paper-era defaults model a 2001 head node (1 ms per heartbeat,
      // 2 ms per control packet); at N = 128 that alone is 127 ms of CPU per
      // 100 ms heartbeat interval and no engine can converge. Model modern
      // heads so the sweep isolates the ENGINES' asymptotics, not the
      // heartbeat floor.
      cfg.hb_proc = sim::usec(20);
      cfg.ctrl_proc = sim::usec(50);
      // Relax the failure detector: at N = 128 the all-ack backlog delays
      // heartbeats past the default 500 ms suspect timeout and the sweep
      // would measure view churn instead of steady-state ordering.
      cfg.suspect_timeout = sim::seconds(10);
      cfg.flush_timeout = sim::seconds(20);
      size_t idx = static_cast<size_t>(i);
      gcs::GroupCallbacks cb;
      cb.on_deliver = [this, idx](const gcs::Delivered&) {
        ++delivered[idx];
      };
      members.push_back(
          std::make_unique<gcs::GroupMember>(net, hosts[idx], cfg, cb));
    }
  }

  bool converge() {
    for (auto& m : members) m->join();
    auto converged = [&] {
      for (const auto& m : members)
        if (m->state() != gcs::GroupMember::State::kMember ||
            m->view().size() != members.size())
          return false;
      return true;
    };
    sim::Time limit = sim.now() + sim::seconds(120);
    while (sim.now() < limit && !converged()) sim.run_for(sim::msec(20));
    return converged();
  }

  bool drain(uint64_t expect, sim::Duration limit_len, sim::Duration step) {
    auto drained = [&] {
      for (uint64_t d : delivered)
        if (d < expect) return false;
      return true;
    };
    sim::Time limit = sim.now() + limit_len;
    while (sim.now() < limit && !drained()) sim.run_for(step);
    return drained();
  }
};

struct RunResult {
  bool ok = false;
  double order_ms_mean = 0.0;
  double order_ms_p95 = 0.0;
  double ctrl_per_msg = 0.0;
  double rotations = 0.0;
  double hold_ms_mean = 0.0;
};

RunResult run_sweep_point(gcs::OrderingMode mode, int n, uint32_t batch = 0,
                          uint32_t window = 0) {
  RunResult out;
  std::fprintf(stderr, "[n=%d %s b=%u w=%u] start\n", n,
               std::string(gcs::to_string(mode)).c_str(), batch, window);
  Rig rig(mode, n, batch, window);
  if (!rig.converge()) return out;
  std::fprintf(stderr, "[n=%d] converged at sim %.2fs\n", n,
               rig.sim.now().seconds());

  // Sustained load: rounds of kMaxSenders concurrent multicasts rotating
  // across the membership, kRoundGap apart -- "sustained" means every
  // round after the first lands on top of the previous round's
  // acknowledgement backlog.
  int senders = n < kMaxSenders ? n : kMaxSenders;
  int rounds = kTotalMsgs / senders;
  if (rounds < 2) rounds = 2;
  for (int r = 0; r < rounds; ++r) {
    for (int k = 0; k < senders; ++k) {
      size_t idx = static_cast<size_t>((r * senders + k) % n);
      rig.members[idx]->multicast(sim::Payload{static_cast<uint8_t>(r)},
                                  gcs::Delivery::kAgreed);
    }
    rig.sim.run_for(kRoundGap);
  }
  uint64_t expect =
      static_cast<uint64_t>(rounds) * static_cast<uint64_t>(senders);
  std::fprintf(stderr, "[n=%d] load injected, sim %.2fs, draining\n", n,
               rig.sim.now().seconds());
  if (!rig.drain(expect, sim::minutes(10), sim::msec(20))) {
    uint64_t min_d = rig.delivered[0];
    for (uint64_t d : rig.delivered) min_d = d < min_d ? d : min_d;
    std::fprintf(stderr, "[n=%d] STALLED: min delivered %llu of %llu\n", n,
                 static_cast<unsigned long long>(min_d),
                 static_cast<unsigned long long>(expect));
    return out;
  }
  std::fprintf(stderr, "[n=%d] drained at sim %.2fs\n", n,
               rig.sim.now().seconds());

  const telemetry::Registry& m = rig.sim.telemetry().metrics();
  const auto* latency = m.find_histogram("gcs.order_latency_us");
  const auto* cuts = m.find_counter("gcs.cuts_sent");
  const auto* engine = m.find_counter("gcs.engine_msgs_sent");
  if (latency == nullptr || latency->data.count == 0) return out;
  out.order_ms_mean = latency->data.mean() / 1000.0;
  out.order_ms_p95 = latency->data.percentile(95) / 1000.0;
  uint64_t ctrl = (cuts != nullptr ? cuts->value : 0) +
                  (engine != nullptr ? engine->value : 0);
  out.ctrl_per_msg = static_cast<double>(ctrl) / static_cast<double>(expect);
  if (const auto* rot = m.find_counter("gcs.token.rotations"))
    out.rotations = static_cast<double>(rot->value);
  if (const auto* hold = m.find_histogram("gcs.token.hold_us"))
    if (hold->data.count > 0) out.hold_ms_mean = hold->data.mean() / 1000.0;
  out.ok = true;
  return out;
}

struct TputResult {
  bool ok = false;
  double cmds_per_s = 0.0;
  double batch_mean = 0.0;
  double window_stalls = 0.0;
};

/// Closed-loop throughput: preload every sender's full backlog in one
/// burst; the flow-control window paces it, batching amortizes the
/// per-message ordering cost. Measures sim-time from the burst to the last
/// member's last delivery.
TputResult run_closed_loop(gcs::OrderingMode mode, int n, uint32_t batch,
                           uint32_t window) {
  TputResult out;
  std::fprintf(stderr, "[tput n=%d %s b=%u w=%u] start\n", n,
               std::string(gcs::to_string(mode)).c_str(), batch, window);
  Rig rig(mode, n, batch, window);
  if (!rig.converge()) return out;

  sim::Time start = rig.sim.now();
  for (int s = 0; s < kTputSenders; ++s)
    for (int t = 0; t < kTputPerSender; ++t)
      rig.members[static_cast<size_t>(s)]->multicast(
          sim::Payload{static_cast<uint8_t>(s), static_cast<uint8_t>(t)},
          gcs::Delivery::kAgreed);
  uint64_t expect =
      static_cast<uint64_t>(kTputSenders) * kTputPerSender;
  if (!rig.drain(expect, sim::minutes(10), sim::msec(1))) {
    std::fprintf(stderr, "[tput n=%d b=%u w=%u] STALLED\n", n, batch, window);
    return out;
  }
  sim::Duration elapsed = rig.sim.now() - start;
  if (elapsed.us <= 0) return out;
  out.cmds_per_s = static_cast<double>(expect) / elapsed.seconds();

  const telemetry::Registry& m = rig.sim.telemetry().metrics();
  if (const auto* bs = m.find_histogram("gcs.batch_size"))
    if (bs->data.count > 0) out.batch_mean = bs->data.mean();
  if (const auto* ws = m.find_counter("gcs.window_stalls"))
    out.window_stalls = static_cast<double>(ws->value);
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "==================================================================\n"
      "E10: ordering-engine head-count sweep (%d msgs sustained load)\n"
      "==================================================================\n"
      "%-6s %-8s %12s %12s %12s\n",
      kTotalMsgs, "N", "engine", "order mean", "order p95", "ctrl/msg");

  telemetry::ScenarioReport report;
  report.set_meta("experiment", "E10_ordering_sweep");
  std::map<int, std::map<gcs::OrderingMode, RunResult>> results;
  bool all_ok = true;
  for (int n : kHeadCounts) {
    for (gcs::OrderingMode mode :
         {gcs::OrderingMode::kAllAck, gcs::OrderingMode::kTokenRing}) {
      RunResult r = run_sweep_point(mode, n);
      results[n][mode] = r;
      std::string mode_name(gcs::to_string(mode));
      if (!r.ok) {
        std::printf("%-6d %-8s FAILED (no convergence or stalled delivery)\n",
                    n, mode_name.c_str());
        all_ok = false;
        continue;
      }
      std::printf("%-6d %-8s %9.2f ms %9.2f ms %12.2f\n", n,
                  mode_name.c_str(), r.order_ms_mean, r.order_ms_p95,
                  r.ctrl_per_msg);
      std::string prefix = mode_name + ".n" + std::to_string(n);
      report.set(prefix + ".order_ms_mean", r.order_ms_mean);
      report.set(prefix + ".order_ms_p95", r.order_ms_p95);
      report.set(prefix + ".ctrl_per_msg", r.ctrl_per_msg);
      if (mode == gcs::OrderingMode::kTokenRing) {
        report.set(prefix + ".rotations", r.rotations);
        report.set(prefix + ".hold_ms_mean", r.hold_ms_mean);
      }
    }
  }

  // The reproduction bar: strictly cheaper on both axes from N = 64.
  bool crossover = all_ok;
  for (int n : {64, 128}) {
    const RunResult& a = results[n][gcs::OrderingMode::kAllAck];
    const RunResult& t = results[n][gcs::OrderingMode::kTokenRing];
    if (!a.ok || !t.ok || t.order_ms_mean >= a.order_ms_mean ||
        t.ctrl_per_msg >= a.ctrl_per_msg)
      crossover = false;
  }
  report.set("crossover_at_64_ok", crossover ? 1 : 0);
  std::printf("\ntoken strictly cheaper (latency AND control msgs) at "
              "N >= 64: %s\n",
              crossover ? "yes" : "NO");

  // Part B.1 -- parity: batch=1/window=1 must not move the N=4 latency.
  // Tolerance matches the regression band on every latency key (25% + a
  // 0.1 ms absolute floor for sub-millisecond values).
  std::printf(
      "\n==================================================================\n"
      "E13: batched/pipelined hot path\n"
      "==================================================================\n");
  bool parity_ok = true;
  for (gcs::OrderingMode mode :
       {gcs::OrderingMode::kAllAck, gcs::OrderingMode::kTokenRing}) {
    RunResult p = run_sweep_point(mode, 4, /*batch=*/1, /*window=*/1);
    std::string mode_name(gcs::to_string(mode));
    const RunResult& legacy = results[4][mode];
    if (!p.ok || !legacy.ok) {
      parity_ok = false;
      std::printf("parity %-8s FAILED\n", mode_name.c_str());
      continue;
    }
    double band = legacy.order_ms_p95 * 0.25 + 0.1;
    bool ok = p.order_ms_p95 <= legacy.order_ms_p95 + band;
    parity_ok = parity_ok && ok;
    std::printf("parity %-8s n4 b1w1: p95 %.3f ms (legacy %.3f ms) %s\n",
                mode_name.c_str(), p.order_ms_p95, legacy.order_ms_p95,
                ok ? "ok" : "REGRESSED");
    std::string prefix = "parity." + mode_name + ".n4";
    report.set(prefix + ".order_ms_mean", p.order_ms_mean);
    report.set(prefix + ".order_ms_p95", p.order_ms_p95);
  }

  // Part B.2 -- closed-loop throughput sweep. The token ring runs at the
  // scale where batching pays (N=128); the all-ack engine at N=16, where
  // its closed loop is still tractable and the cumulative-ack coalescing
  // is measurable.
  std::printf("\n%-8s %-5s %-6s %-6s %14s %12s %10s\n", "engine", "N",
              "batch", "window", "cmds/s", "batch mean", "stalls");
  struct TputPoint {
    gcs::OrderingMode mode;
    int n;
  };
  std::map<std::string, double> tput;
  bool tput_ok = true;
  for (TputPoint point : {TputPoint{gcs::OrderingMode::kTokenRing, 128},
                          TputPoint{gcs::OrderingMode::kAllAck, 16}}) {
    for (uint32_t batch : {1u, 8u, 64u}) {
      for (uint32_t window : {1u, 16u}) {
        TputResult t = run_closed_loop(point.mode, point.n, batch, window);
        std::string mode_name(gcs::to_string(point.mode));
        if (!t.ok) {
          tput_ok = false;
          std::printf("%-8s %-5d %-6u %-6u FAILED\n", mode_name.c_str(),
                      point.n, batch, window);
          continue;
        }
        std::printf("%-8s %-5d %-6u %-6u %14.0f %12.1f %10.0f\n",
                    mode_name.c_str(), point.n, batch, window, t.cmds_per_s,
                    t.batch_mean, t.window_stalls);
        std::string key = "tput." + mode_name + ".n" + std::to_string(point.n) +
                          ".b" + std::to_string(batch) + ".w" +
                          std::to_string(window);
        report.set(key + ".cmds_per_s", t.cmds_per_s);
        tput[key] = t.cmds_per_s;
      }
    }
  }

  // The E13 bar: batching+pipelining must buy the token ring at least 5x
  // ordered throughput at N=128 over the unbatched lockstep configuration.
  double base = tput["tput.token.n128.b1.w1"];
  double best = tput["tput.token.n128.b64.w16"];
  double speedup = base > 0 ? best / base : 0.0;
  report.set("tput.token.n128.speedup_b64w16", speedup);
  if (double abase = tput["tput.allack.n16.b1.w1"]; abase > 0)
    report.set("tput.allack.n16.speedup_b64w16",
               tput["tput.allack.n16.b64.w16"] / abase);
  bool speedup_ok = tput_ok && speedup >= 5.0;
  std::printf("\ntoken n128 b64/w16 speedup over b1/w1: %.1fx (bar: 5x): %s\n",
              speedup, speedup_ok ? "yes" : "NO");

  bool ok = crossover && parity_ok && speedup_ok;
  if (report.write_file("BENCH_ordering.json"))
    std::printf("wrote BENCH_ordering.json\n");
  return ok ? 0 : 1;
}
