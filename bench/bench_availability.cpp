// Figure 12 reproduction: availability / downtime vs number of head nodes
// (MTTF = 5000 h, MTTR = 72 h), computed from Equations (1)-(3) and
// cross-validated with a Monte-Carlo fault simulation.
//
//   Paper:  1 head  98.6%        1 nine   5d 4h 21min
//           2 heads 99.98%       3 nines  1h 45min
//           3 heads 99.9997%     5 nines  1min 30s
//           4 heads 99.999996%   7 nines  1s
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ha/availability.h"
#include "sim/failure.h"
#include "util/timefmt.h"

namespace {

constexpr double kMttfHours = 5000.0;
constexpr double kMttrHours = 72.0;

/// Monte-Carlo validation: schedule exponential fail/repair processes for
/// each head over `years` simulated years and measure the fraction of time
/// ALL heads are down simultaneously.
double simulate_service_availability(int heads, int years, uint64_t seed) {
  sim::Simulation sim(seed);
  sim::Network net(sim, sim::NetworkConfig{});
  std::vector<sim::HostId> hosts;
  for (int i = 0; i < heads; ++i)
    hosts.push_back(net.add_host("head" + std::to_string(i)).id());
  sim::FailureInjector faults(net);
  sim::Time horizon = sim::Time{0} + sim::hours(24LL * 365 * years);
  for (sim::HostId h : hosts) {
    faults.random_failures(h, sim::hours(static_cast<int64_t>(kMttfHours)),
                           sim::hours(static_cast<int64_t>(kMttrHours)),
                           horizon);
  }
  // Sweep the outage intervals: total time where every host is down.
  struct Edge {
    sim::Time at;
    int delta;
  };
  std::vector<Edge> edges;
  for (const auto& outage : faults.outages()) {
    sim::Time up = outage.up == sim::kTimeInfinity ? horizon : outage.up;
    edges.push_back({outage.down, +1});
    edges.push_back({up, -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.at < b.at; });
  int down = 0;
  sim::Time all_down_since{0};
  sim::Duration all_down_total{0};
  for (const Edge& e : edges) {
    if (down == heads) all_down_total += e.at - all_down_since;
    down += e.delta;
    if (down == heads) all_down_since = e.at;
  }
  double total = (horizon - sim::Time{0}).seconds();
  return 1.0 - all_down_total.seconds() / total;
}

void print_figure12() {
  std::printf(
      "\n==============================================================\n"
      "Figure 12: Availability/Downtime vs #Head Nodes\n"
      "(MTTF=5000h, MTTR=72h; Equations (1)-(3))\n"
      "==============================================================\n");
  auto rows = ha::figure12_table(4, kMttfHours, kMttrHours);
  std::printf("%s\n", ha::render_figure12(rows).c_str());

  std::printf("Paper reference: 98.6%%/1/5d4h21min, 99.98%%/3/1h45min,\n"
              "99.9997%%/5/1min30s, 99.999996%%/7/1s\n");

  std::printf(
      "\nMonte-Carlo cross-check (exponential fail/repair, simulated):\n");
  std::printf("%-2s %-16s %-16s\n", "#", "analytic", "simulated");
  for (int n = 1; n <= 4; ++n) {
    // More redundancy -> rarer all-down events -> more years needed for a
    // stable estimate; cap for runtime.
    int years = n <= 2 ? 200 : 2000;
    double simulated = simulate_service_availability(n, years, 42);
    std::printf("%-2d %-16s %-16s\n", n,
                jutil::format_availability(rows[static_cast<size_t>(n - 1)]
                                               .availability)
                    .c_str(),
                jutil::format_availability(simulated).c_str());
  }

  std::printf(
      "\nCorrelated-failure extension (Section 5 caveat): availability\n"
      "with a fraction beta of outages hitting every head at once:\n");
  std::printf("%-6s %-14s %-14s %-14s %-14s\n", "beta", "1 head", "2 heads",
              "3 heads", "4 heads");
  double a_node = ha::node_availability(kMttfHours, kMttrHours);
  for (double beta : {0.0, 0.01, 0.05, 0.20}) {
    std::printf("%-6.2f", beta);
    for (int n = 1; n <= 4; ++n) {
      std::printf(" %-14s",
                  jutil::format_availability(
                      ha::service_availability_correlated(a_node, n, beta))
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\nShape check: redundancy gains saturate once beta dominates\n"
              "-- the location-dependent failure caveat of Section 5.\n");
}

void BM_AnalyticTable(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = ha::figure12_table(static_cast<int>(state.range(0)),
                                   kMttfHours, kMttrHours);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_AnalyticTable)->DenseRange(1, 4);

void BM_MonteCarloAvailability(benchmark::State& state) {
  int heads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double a = simulate_service_availability(heads, 50, 7);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MonteCarloAvailability)->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
