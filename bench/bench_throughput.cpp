// Figure 11 reproduction: job submission throughput (time to enqueue
// 10/50/100 jobs back-to-back).
//
//   Paper (Section 5):                 10 jobs   50 jobs   100 jobs
//     TORQUE          1 head             0.93 s    4.95 s    10.18 s
//     JOSHUA/TORQUE   1 head             1.32 s    6.48 s    14.08 s
//     JOSHUA/TORQUE   2 heads            2.68 s   13.09 s    26.37 s
//     JOSHUA/TORQUE   3 heads            2.93 s   15.91 s    30.03 s
//     JOSHUA/TORQUE   4 heads            3.62 s   17.65 s    33.32 s
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

struct PaperRow {
  const char* name;
  int heads;
  bool joshua;
  double paper[3];
};
const PaperRow kPaper[] = {
    {"TORQUE", 1, false, {0.93, 4.95, 10.18}},
    {"JOSHUA/TORQUE", 1, true, {1.32, 6.48, 14.08}},
    {"JOSHUA/TORQUE", 2, true, {2.68, 13.09, 26.37}},
    {"JOSHUA/TORQUE", 3, true, {2.93, 15.91, 30.03}},
    {"JOSHUA/TORQUE", 4, true, {3.62, 17.65, 33.32}},
};
const int kJobCounts[] = {10, 50, 100};

void print_figure11() {
  benchutil::print_header(
      "Figure 11: Job Submission Throughput (simulated testbed vs paper)");
  std::printf("%-16s %2s  %21s %21s %21s\n", "System", "#",
              "10 jobs (meas/paper)", "50 jobs (meas/paper)",
              "100 jobs (meas/paper)");
  for (const PaperRow& row : kPaper) {
    std::printf("%-16s %2d ", row.name, row.heads);
    for (int i = 0; i < 3; ++i) {
      double measured = benchutil::submission_burst_seconds(
          row.heads, row.joshua, kJobCounts[i]);
      std::printf("  %8.2fs /%7.2fs", measured, row.paper[i]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape checks: throughput is serialized submission latency; the\n"
      "ordering of rows and the roughly linear growth in job count match\n"
      "the paper's table.\n");
}

void BM_SubmitBurst(benchmark::State& state) {
  int heads = static_cast<int>(state.range(0));
  int jobs = static_cast<int>(state.range(1));
  bool joshua = heads > 0;
  for (auto _ : state) {
    double secs = benchutil::submission_burst_seconds(
        joshua ? heads : 1, joshua, jobs,
        static_cast<uint64_t>(state.iterations() + 1));
    state.SetIterationTime(secs);
  }
  state.counters["jobs_per_s"] =
      benchmark::Counter(jobs, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SubmitBurst)
    ->ArgsProduct({{0 /*torque*/, 1, 2, 3, 4}, {10, 50, 100}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
