// Ablation E7: state-transfer cost for a joining head node.
//
// Replay mode (what JOSHUA v0.1 shipped) re-executes the compacted user
// command log through the PBS service interface -- cost grows with live
// queue depth, and hold/release are unsupported. Snapshot mode (the
// paper's future-work "unified state description") installs the PBS state
// directly -- near-constant apply time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

/// Time from the joiner starting until its PBS server holds the full
/// queue.
double join_transfer_seconds(joshua::TransferMode mode, int queue_depth,
                             uint64_t seed) {
  joshua::ClusterOptions options;
  options.head_count = 2;
  options.compute_count = 1;
  options.transfer = mode;
  options.seed = seed;
  joshua::Cluster cluster(options);
  cluster.joshua_server(0).start();
  benchutil::spin(cluster.sim(),
                  [&] { return cluster.joshua_server(0).in_service(); });

  joshua::Client& client = cluster.make_jclient();
  int submitted = 0;
  pbs::JobSpec spec;
  spec.run_time = sim::hours(10);
  std::function<void()> next = [&] {
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse>) {
      if (++submitted < queue_depth) next();
    });
  };
  if (queue_depth > 0) next();
  benchutil::spin(cluster.sim(), [&] { return submitted >= queue_depth; },
                  sim::seconds(2L * queue_depth + 30));

  sim::Time start = cluster.sim().now();
  cluster.joshua_server(1).start();
  bool ok = benchutil::spin(
      cluster.sim(),
      [&] {
        return cluster.joshua_server(1).in_service() &&
               cluster.pbs_server(1).jobs().size() >=
                   static_cast<size_t>(queue_depth);
      },
      sim::seconds(30L * queue_depth + 60));
  if (!ok) return -1;
  return (cluster.sim().now() - start).seconds();
}

void print_table() {
  benchutil::print_header(
      "E7: Joining-head state transfer, replay (JOSHUA v0.1) vs snapshot "
      "(future work)");
  std::printf("%-12s %14s %14s\n", "queue depth", "replay", "snapshot");
  for (int depth : {0, 10, 50, 100, 250}) {
    double replay =
        join_transfer_seconds(joshua::TransferMode::kReplay, depth, 1);
    double snapshot =
        join_transfer_seconds(joshua::TransferMode::kSnapshot, depth, 1);
    std::printf("%-12d %12.2fs %12.2fs\n", depth, replay, snapshot);
  }
  std::printf(
      "\nShape checks: replay grows linearly with the live queue (one PBS\n"
      "submit per replayed command on the 450 MHz head); snapshot stays\n"
      "near-flat. This is why the paper flags a unified state description\n"
      "as future work.\n");
}

void BM_JoinTransfer(benchmark::State& state) {
  auto mode = state.range(0) == 0 ? joshua::TransferMode::kReplay
                                  : joshua::TransferMode::kSnapshot;
  int depth = static_cast<int>(state.range(1));
  uint64_t seed = 1;
  for (auto _ : state) {
    double secs = join_transfer_seconds(mode, depth, seed++);
    state.SetIterationTime(secs < 0 ? 1e3 : secs);
  }
}
BENCHMARK(BM_JoinTransfer)
    ->ArgsProduct({{0, 1}, {0, 10, 50, 100}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
