// Figure 10 reproduction: job submission latency, single vs multiple head
// nodes.
//
//   Paper (Section 5):   TORQUE        1 head   98 ms
//                        JOSHUA/TORQUE 1 head  134 ms (+ 36 ms /  37 %)
//                        JOSHUA/TORQUE 2 heads 265 ms (+158 ms / 161 %)
//                        JOSHUA/TORQUE 3 heads 304 ms (+206 ms / 210 %)
//                        JOSHUA/TORQUE 4 heads 349 ms (+251 ms / 256 %)
//
// The google-benchmark rows report SIMULATED milliseconds (manual time).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

const double kPaperTorque = 98.0;
const double kPaperJoshua[] = {134.0, 265.0, 304.0, 349.0};

void print_figure10() {
  benchutil::print_header(
      "Figure 10: Job Submission Latency (simulated testbed vs paper)");
  std::printf("%-22s %5s  %12s %12s  %s\n", "System", "#", "measured",
              "paper", "overhead (measured)");
  benchutil::LatencyStats torque = benchutil::submission_latency(1, false);
  std::printf("%-22s %5d  %9.0f ms %9.0f ms  %s\n", "TORQUE", 1,
              torque.mean_ms, kPaperTorque, "-");
  for (int heads = 1; heads <= 4; ++heads) {
    benchutil::LatencyStats joshua =
        benchutil::submission_latency(heads, true);
    double overhead = joshua.mean_ms - torque.mean_ms;
    std::printf("%-22s %5d  %9.0f ms %9.0f ms  %+5.0f ms / %3.0f%%\n",
                "JOSHUA/TORQUE", heads, joshua.mean_ms,
                kPaperJoshua[heads - 1], overhead,
                overhead / torque.mean_ms * 100.0);
  }
  std::printf(
      "\nShape checks: JOSHUA x1 adds a same-node hop; the 1->2 jump is\n"
      "off-node group communication; each further head adds roughly one\n"
      "more ack to process on the origin head's CPU.\n");
}

void BM_TorqueSubmit(benchmark::State& state) {
  for (auto _ : state) {
    benchutil::LatencyStats s = benchutil::submission_latency(
        1, false, 5, static_cast<uint64_t>(state.iterations() + 1));
    state.SetIterationTime(s.mean_ms / 1000.0);
  }
}
BENCHMARK(BM_TorqueSubmit)->UseManualTime()->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_JoshuaSubmit(benchmark::State& state) {
  int heads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchutil::LatencyStats s = benchutil::submission_latency(
        heads, true, 5, static_cast<uint64_t>(state.iterations() + 1));
    state.SetIterationTime(s.mean_ms / 1000.0);
  }
}
BENCHMARK(BM_JoshuaSubmit)->DenseRange(1, 4)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_figure10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
