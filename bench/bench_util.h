// Shared measurement harness for the paper-reproduction benches.
//
// All measurements are of SIMULATED time on the calibrated testbed
// (Section 5's 450 MHz P-III heads on a 100 Mbit hub); the google-benchmark
// wrappers report simulated time via manual timing, so "Time" columns read
// as simulated milliseconds.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>

#include "joshua/cluster.h"
#include "util/stats.h"

namespace benchutil {

/// Run the simulation until `pred` or deadline, with a fine slice so
/// latency measurements are not quantized.
inline bool spin(sim::Simulation& sim, const std::function<bool()>& pred,
                 sim::Duration deadline = sim::seconds(120)) {
  sim::Time limit = sim.now() + deadline;
  while (sim.now() < limit) {
    if (pred()) return true;
    sim.run_for(sim::usec(200));
  }
  return pred();
}

struct LatencyStats {
  double mean_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double stddev_ms = 0;
  int samples = 0;
};

/// One submission latency sample: jsub (or qsub) round trip as seen at the
/// login shell. Submitted jobs run long so the queue only grows, exactly
/// like a submission-latency measurement on a busy system.
template <typename Client>
double one_submission_ms(joshua::Cluster& cluster, Client& client) {
  pbs::JobSpec spec;
  spec.name = "bench";
  spec.run_time = sim::hours(1);
  bool done = false;
  sim::Time start = cluster.sim().now();
  if constexpr (std::is_same_v<Client, joshua::Client>) {
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse>) { done = true; });
  } else {
    client.qsub(spec, [&](std::optional<pbs::SubmitResponse>) { done = true; });
  }
  spin(cluster.sim(), [&] { return done; });
  return (cluster.sim().now() - start).millis();
}

/// Mean jsub latency on an N-head JOSHUA cluster (paper Figure 10 rows
/// 2-5) or plain qsub latency when with_joshua = false (row 1).
inline LatencyStats submission_latency(int heads, bool with_joshua,
                                       int repeats = 20, uint64_t seed = 1) {
  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  options.with_joshua = with_joshua;
  options.seed = seed;
  joshua::Cluster cluster(options);
  cluster.start();
  if (with_joshua && !cluster.run_until_converged()) return {};

  jutil::Samples samples;
  if (with_joshua) {
    joshua::Client& client = cluster.make_jclient();
    // Warmup, then drain the warmup job's launch + jmutex traffic so the
    // samples measure the submission path alone.
    one_submission_ms(cluster, client);
    cluster.sim().run_for(sim::seconds(5));
    for (int i = 0; i < repeats; ++i) {
      samples.add(one_submission_ms(cluster, client));
      // Space samples so one submission's remote-side tail does not
      // pipeline into the next (single-shot latency, not throughput).
      cluster.sim().run_for(sim::seconds(2));
    }
  } else {
    pbs::Client& client = cluster.make_pbs_client(0);
    one_submission_ms(cluster, client);
    cluster.sim().run_for(sim::seconds(5));
    for (int i = 0; i < repeats; ++i) {
      samples.add(one_submission_ms(cluster, client));
      cluster.sim().run_for(sim::seconds(2));
    }
  }
  return {samples.mean(), samples.min(), samples.max(), samples.stddev(),
          static_cast<int>(samples.count())};
}

/// Time to enqueue `jobs` submissions back-to-back (paper Figure 11).
inline double submission_burst_seconds(int heads, bool with_joshua, int jobs,
                                       uint64_t seed = 1) {
  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  options.with_joshua = with_joshua;
  options.seed = seed;
  joshua::Cluster cluster(options);
  cluster.start();
  if (with_joshua && !cluster.run_until_converged()) return -1;

  int done = 0;
  pbs::JobSpec spec;
  spec.name = "burst";
  spec.run_time = sim::hours(1);

  // `next` must outlive the submission chain: the response callbacks call
  // it until every job is in.
  joshua::Client* jclient =
      with_joshua ? &cluster.make_jclient() : nullptr;
  pbs::Client* pclient =
      with_joshua ? nullptr : &cluster.make_pbs_client(0);
  std::function<void()> next = [&] {
    auto on_response = [&](std::optional<pbs::SubmitResponse>) {
      if (++done < jobs) next();
    };
    if (jclient != nullptr) {
      jclient->jsub(spec, on_response);
    } else {
      pclient->qsub(spec, on_response);
    }
  };
  sim::Time start = cluster.sim().now();
  next();
  spin(cluster.sim(), [&] { return done >= jobs; },
       sim::seconds(60L * jobs));
  return (cluster.sim().now() - start).seconds();
}

inline void print_header(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace benchutil
