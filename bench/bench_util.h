// Shared measurement harness for the paper-reproduction benches.
//
// All measurements are of SIMULATED time on the calibrated testbed
// (Section 5's 450 MHz P-III heads on a 100 Mbit hub); the google-benchmark
// wrappers report simulated time via manual timing, so "Time" columns read
// as simulated milliseconds.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>

#include "joshua/cluster.h"
#include "util/stats.h"

namespace benchutil {

/// Run the simulation until `pred` or deadline.
///
/// Semantically identical to polling `pred` on a 200 us simulated-time grid
/// (the historical implementation, kept so measured latencies stay on the
/// same quantization grid), but event-driven: slices in which no event fires
/// are skipped by jumping the clock straight to the slice containing the
/// next scheduled event. `pred` must be a function of simulation state (a
/// flag set by an event callback), not of the raw clock -- every call site
/// satisfies that, and it is what makes the skip invisible to results.
inline bool spin(sim::Simulation& sim, const std::function<bool()>& pred,
                 sim::Duration deadline = sim::seconds(120)) {
  constexpr int64_t kSliceUs = 200;
  const sim::Time start = sim.now();
  const sim::Time limit = start + deadline;
  while (sim.now() < limit) {
    if (pred()) return true;
    const sim::Time next = sim.next_event_time();
    if (next > limit) {
      // Nothing can change state before the deadline; finish the clock.
      sim.run_until(limit);
      break;
    }
    // First 200 us grid point at or after the next event (at least one
    // slice ahead, matching the old "poll, then advance" ordering).
    int64_t k = (next.us - start.us + kSliceUs - 1) / kSliceUs;
    if (k < 1) k = 1;
    sim::Time grid{start.us + k * kSliceUs};
    while (grid <= sim.now()) grid += sim::usec(kSliceUs);
    sim.run_until(grid);
  }
  return pred();
}

struct LatencyStats {
  double mean_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double stddev_ms = 0;
  int samples = 0;
};

/// One submission latency sample: jsub (or qsub) round trip as seen at the
/// login shell. Submitted jobs run long so the queue only grows, exactly
/// like a submission-latency measurement on a busy system.
template <typename Client>
double one_submission_ms(joshua::Cluster& cluster, Client& client) {
  pbs::JobSpec spec;
  spec.name = "bench";
  spec.run_time = sim::hours(1);
  bool done = false;
  sim::Time start = cluster.sim().now();
  if constexpr (std::is_same_v<Client, joshua::Client>) {
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse>) { done = true; });
  } else {
    client.qsub(spec, [&](std::optional<pbs::SubmitResponse>) { done = true; });
  }
  spin(cluster.sim(), [&] { return done; });
  return (cluster.sim().now() - start).millis();
}

/// Mean jsub latency on an N-head JOSHUA cluster (paper Figure 10 rows
/// 2-5) or plain qsub latency when with_joshua = false (row 1).
inline LatencyStats submission_latency(int heads, bool with_joshua,
                                       int repeats = 20, uint64_t seed = 1) {
  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  options.with_joshua = with_joshua;
  options.seed = seed;
  joshua::Cluster cluster(options);
  cluster.start();
  if (with_joshua && !cluster.run_until_converged()) return {};

  jutil::Samples samples;
  if (with_joshua) {
    joshua::Client& client = cluster.make_jclient();
    // Warmup, then drain the warmup job's launch + jmutex traffic so the
    // samples measure the submission path alone.
    one_submission_ms(cluster, client);
    cluster.sim().run_for(sim::seconds(5));
    for (int i = 0; i < repeats; ++i) {
      samples.add(one_submission_ms(cluster, client));
      // Space samples so one submission's remote-side tail does not
      // pipeline into the next (single-shot latency, not throughput).
      cluster.sim().run_for(sim::seconds(2));
    }
  } else {
    pbs::Client& client = cluster.make_pbs_client(0);
    one_submission_ms(cluster, client);
    cluster.sim().run_for(sim::seconds(5));
    for (int i = 0; i < repeats; ++i) {
      samples.add(one_submission_ms(cluster, client));
      cluster.sim().run_for(sim::seconds(2));
    }
  }
  return {samples.mean(), samples.min(), samples.max(), samples.stddev(),
          static_cast<int>(samples.count())};
}

/// Time to enqueue `jobs` submissions back-to-back (paper Figure 11).
inline double submission_burst_seconds(int heads, bool with_joshua, int jobs,
                                       uint64_t seed = 1) {
  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  options.with_joshua = with_joshua;
  options.seed = seed;
  joshua::Cluster cluster(options);
  cluster.start();
  if (with_joshua && !cluster.run_until_converged()) return -1;

  int done = 0;
  pbs::JobSpec spec;
  spec.name = "burst";
  spec.run_time = sim::hours(1);

  // `next` must outlive the submission chain: the response callbacks call
  // it until every job is in.
  joshua::Client* jclient =
      with_joshua ? &cluster.make_jclient() : nullptr;
  pbs::Client* pclient =
      with_joshua ? nullptr : &cluster.make_pbs_client(0);
  std::function<void()> next = [&] {
    auto on_response = [&](std::optional<pbs::SubmitResponse>) {
      if (++done < jobs) next();
    };
    if (jclient != nullptr) {
      jclient->jsub(spec, on_response);
    } else {
      pclient->qsub(spec, on_response);
    }
  };
  sim::Time start = cluster.sim().now();
  next();
  spin(cluster.sim(), [&] { return done >= jobs; },
       sim::seconds(60L * jobs));
  return (cluster.sim().now() - start).seconds();
}

inline void print_header(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace benchutil
