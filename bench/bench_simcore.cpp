// Event-core microbenchmarks: the wall-clock cost of the simulator's hot
// path (schedule/step/cancel) and the messaging fan-out path (one broadcast
// payload delivered to N hosts).
//
// Unlike the paper-reproduction benches, these measure REAL time: the
// simulator is the hardware ceiling for every reproduced figure, so its
// events/sec and allocations/event are tracked as first-class numbers in
// BENCH_simcore.json (written next to the working directory on every run).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>

#include "sim/network.h"
#include "sim/simulation.h"

// -- allocation counter -------------------------------------------------------
//
// Global operator new/delete overrides count every heap allocation in the
// process; benchmarks snapshot the counter around their measurement loop to
// report allocations per event. The steady-state schedule/step loop is
// required to be allocation-free (asserted in main()).

static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

// Written by the steady-state benchmark, checked in main(): allocations per
// event in the schedule+step loop after the pool has warmed up.
double g_steady_state_allocs_per_event = -1.0;
double g_steady_state_events_per_sec = 0.0;
double g_fanout_events_per_sec = 0.0;

// -- schedule + step ----------------------------------------------------------

/// Steady-state throughput: every iteration schedules one small callback and
/// executes one event, so the pending set stays at a constant depth (the
/// pool neither grows nor drains).
void BM_ScheduleStep(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  sim::Simulation s;
  uint64_t sink = 0;
  for (int i = 0; i < depth; ++i)
    s.schedule(sim::usec(i % 97 + 1), [&sink] { ++sink; });
  // Warm up so every slab/heap growth has already happened.
  for (int i = 0; i < 4096; ++i) {
    s.schedule(sim::usec(i % 97 + 1), [&sink] { ++sink; });
    s.step();
  }
  uint64_t alloc_before = allocs();
  for (auto _ : state) {
    s.schedule(sim::usec(1), [&sink] { ++sink; });
    s.step();
  }
  uint64_t alloc_after = allocs();
  benchmark::DoNotOptimize(sink);
  auto iters = static_cast<double>(state.iterations());
  state.counters["events/s"] =
      benchmark::Counter(iters, benchmark::Counter::kIsRate);
  state.counters["allocs/event"] =
      static_cast<double>(alloc_after - alloc_before) / iters;
  if (depth == 1024) {
    g_steady_state_allocs_per_event =
        static_cast<double>(alloc_after - alloc_before) / iters;
  }
}
BENCHMARK(BM_ScheduleStep)->Arg(16)->Arg(1024)->Arg(65536);

/// Drain throughput: fill the queue, then pop it dry. Exercises heap
/// rebalancing across a shrinking heap.
void BM_BurstDrain(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    for (int i = 0; i < burst; ++i)
      s.schedule(sim::usec((i * 7919) % 10007), [&sink] { ++sink; });
    state.ResumeTiming();
    while (s.step()) {
    }
  }
  benchmark::DoNotOptimize(sink);
  auto events = static_cast<double>(state.iterations()) * burst;
  state.counters["events/s"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BurstDrain)->Arg(4096)->Arg(262144);

// -- schedule + cancel --------------------------------------------------------

/// Timer-churn pattern: most scheduled events are cancelled before firing
/// (retransmit timers on a healthy network). Lazy cancellation must make the
/// cancel itself O(1) and keep the cancelled corpses from slowing step().
void BM_ScheduleCancelStep(benchmark::State& state) {
  sim::Simulation s;
  uint64_t sink = 0;
  for (int i = 0; i < 4096; ++i) {
    sim::EventId id = s.schedule(sim::usec(50), [&sink] { ++sink; });
    s.schedule(sim::usec(i % 97 + 1), [&sink] { ++sink; });
    s.cancel(id);
    s.step();
  }
  uint64_t alloc_before = allocs();
  for (auto _ : state) {
    sim::EventId id = s.schedule(sim::usec(50), [&sink] { ++sink; });
    s.schedule(sim::usec(1), [&sink] { ++sink; });
    s.cancel(id);
    s.step();
  }
  uint64_t alloc_after = allocs();
  benchmark::DoNotOptimize(sink);
  auto iters = static_cast<double>(state.iterations());
  state.counters["events/s"] =
      benchmark::Counter(iters, benchmark::Counter::kIsRate);
  state.counters["allocs/event"] =
      static_cast<double>(alloc_after - alloc_before) / iters;
}
BENCHMARK(BM_ScheduleCancelStep);

// -- broadcast fan-out --------------------------------------------------------

/// One multicast payload delivered to N hosts. This is the GCS broadcast
/// substrate: a data message fans out to every head node, so per-receiver
/// payload handling cost multiplies across the group.
class Sink : public sim::IPacketHandler {
 public:
  void handle_packet(sim::Packet packet) override {
    bytes_ += packet.data.size();
  }
  uint64_t bytes_ = 0;
};

void BM_BroadcastFanout(benchmark::State& state) {
  const int heads = static_cast<int>(state.range(0));
  const size_t payload_size = static_cast<size_t>(state.range(1));
  sim::Simulation s;
  sim::NetworkConfig cfg;
  cfg.jitter = sim::usec(0);  // deterministic, no rng in the hot loop
  sim::Network net(s, cfg);
  std::vector<Sink> sinks(static_cast<size_t>(heads));
  std::vector<sim::HostId> dsts;
  for (int i = 0; i < heads; ++i) {
    sim::Host& h = net.add_host("head" + std::to_string(i));
    h.bind(1, &sinks[static_cast<size_t>(i)]);
    dsts.push_back(h.id());
  }
  sim::Payload payload(payload_size, uint8_t{0xab});
  sim::Endpoint src{dsts[0], 2};
  uint64_t delivered = 0;
  for (auto _ : state) {
    net.multicast(src, 1, payload, dsts);
    while (s.step()) ++delivered;
  }
  benchmark::DoNotOptimize(delivered);
  auto events = static_cast<double>(state.iterations()) * heads;
  state.counters["deliveries/s"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.counters["payload_bytes"] = static_cast<double>(payload_size);
}
BENCHMARK(BM_BroadcastFanout)
    ->Args({4, 4096})
    ->Args({16, 4096})
    ->Args({16, 65536});

// -- focused wall-clock runs for BENCH_simcore.json ---------------------------

/// Direct timed loops (independent of google-benchmark's iteration logic) so
/// the JSON trajectory numbers are simple and comparable across PRs.
void measure_for_json() {
  using clock = std::chrono::steady_clock;
  {
    sim::Simulation s;
    uint64_t sink = 0;
    for (int i = 0; i < 1024; ++i)
      s.schedule(sim::usec(i % 97 + 1), [&sink] { ++sink; });
    for (int i = 0; i < 4096; ++i) {
      s.schedule(sim::usec(i % 97 + 1), [&sink] { ++sink; });
      s.step();
    }
    constexpr int kEvents = 2'000'000;
    uint64_t alloc_before = allocs();
    auto t0 = clock::now();
    for (int i = 0; i < kEvents; ++i) {
      s.schedule(sim::usec(1), [&sink] { ++sink; });
      s.step();
    }
    auto t1 = clock::now();
    uint64_t alloc_after = allocs();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    g_steady_state_events_per_sec = kEvents / secs;
    g_steady_state_allocs_per_event =
        static_cast<double>(alloc_after - alloc_before) / kEvents;
    benchmark::DoNotOptimize(sink);
  }
  {
    constexpr int kHeads = 16;
    constexpr size_t kPayload = 4096;
    constexpr int kRounds = 20000;
    sim::Simulation s;
    sim::NetworkConfig cfg;
    cfg.jitter = sim::usec(0);
    sim::Network net(s, cfg);
    std::vector<Sink> sinks(kHeads);
    std::vector<sim::HostId> dsts;
    for (int i = 0; i < kHeads; ++i) {
      sim::Host& h = net.add_host("head" + std::to_string(i));
      h.bind(1, &sinks[static_cast<size_t>(i)]);
      dsts.push_back(h.id());
    }
    sim::Payload payload(kPayload, uint8_t{0xab});
    sim::Endpoint src{dsts[0], 2};
    auto t0 = clock::now();
    for (int i = 0; i < kRounds; ++i) {
      net.multicast(src, 1, payload, dsts);
      while (s.step()) {
      }
    }
    auto t1 = clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    g_fanout_events_per_sec = static_cast<double>(kRounds) * kHeads / secs;
  }
}

void write_json() {
  std::ofstream out("BENCH_simcore.json");
  if (!out) {
    std::fprintf(stderr,
                 "warning: cannot write BENCH_simcore.json in the current "
                 "directory; results printed above only\n");
    return;
  }
  out << "{\n"
      << "  \"schedule_step_events_per_sec\": " << g_steady_state_events_per_sec
      << ",\n"
      << "  \"schedule_step_allocs_per_event\": "
      << g_steady_state_allocs_per_event << ",\n"
      << "  \"broadcast_fanout_deliveries_per_sec\": "
      << g_fanout_events_per_sec << "\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  measure_for_json();
  write_json();
  std::printf("\nsteady-state schedule+step: %.0f events/s, %.4f allocs/event\n",
              g_steady_state_events_per_sec, g_steady_state_allocs_per_event);
  std::printf("broadcast fan-out (16 heads, 4 KiB): %.0f deliveries/s\n",
              g_fanout_events_per_sec);
  if (g_steady_state_allocs_per_event != 0.0) {
    std::printf("FAIL: steady-state schedule+step must be allocation-free\n");
    return 1;
  }
  return 0;
}
