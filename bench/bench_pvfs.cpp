// Extension E8: symmetric active/active PVFS metadata server -- the
// service the paper names as the next target for the same model. The
// latency shape must mirror Figure 10: flat for unreplicated, a big jump
// to 2 replicas (off-node ordering), then roughly linear per extra
// replica; read-local reads stay flat at any replica count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "pvfs/metadata.h"
#include "rsm/replicated_service.h"
#include "sim/calibration.h"
#include "util/stats.h"

namespace {

struct PvfsBench {
  PvfsBench(int n, bool read_local, uint64_t seed = 1)
      : sim(seed), net(sim, sim::paper_testbed().network) {
    for (int i = 0; i < n; ++i)
      hosts.push_back(net.add_host("md" + std::to_string(i)).id());
    login = net.add_host("login").id();
    for (int i = 0; i < n; ++i) {
      services.push_back(std::make_unique<pvfs::MetadataServer>());
      rsm::ReplicaConfig cfg;
      cfg.group = gcs::group_config_from(sim::paper_testbed());
      cfg.group.port = 7100;
      cfg.group.peers = hosts;
      cfg.read_local = read_local;
      replicas.push_back(std::make_unique<rsm::ReplicaNode>(
          net, hosts[static_cast<size_t>(i)], cfg, services.back().get()));
      replicas.back()->start();
    }
    rsm::ReplicaClient::Config ccfg;
    for (sim::HostId h : hosts) ccfg.replicas.push_back({h, 19000});
    client = std::make_unique<rsm::ReplicaClient>(net, login, 20000, ccfg);
    spin([&] {
      for (auto& r : replicas)
        if (!r->in_service() ||
            r->group().view().size() != static_cast<size_t>(n))
          return false;
      return true;
    });
  }

  void spin(const std::function<bool()>& pred) {
    sim::Time limit = sim.now() + sim::seconds(60);
    while (sim.now() < limit && !pred()) sim.run_for(sim::usec(200));
  }

  double op_latency_ms(pvfs::MdRequest req) {
    bool done = false;
    sim::Time start = sim.now();
    client->request(pvfs::encode(req),
                    [&](std::optional<sim::Payload>) { done = true; });
    spin([&] { return done; });
    double ms = (sim.now() - start).millis();
    // Drain replica-side processing tails between samples.
    sim.run_for(sim::seconds(1));
    return ms;
  }

  pvfs::MdRequest create_req(int i) {
    pvfs::MdRequest req;
    req.op = pvfs::MdOp::kCreate;
    req.dir = pvfs::kRootHandle;
    req.name = "f" + std::to_string(i);
    return req;
  }
  pvfs::MdRequest lookup_req(int i) {
    pvfs::MdRequest req;
    req.op = pvfs::MdOp::kLookup;
    req.dir = pvfs::kRootHandle;
    req.name = "f" + std::to_string(i);
    return req;
  }

  sim::Simulation sim;
  sim::Network net;
  std::vector<sim::HostId> hosts;
  sim::HostId login;
  std::vector<std::unique_ptr<pvfs::MetadataServer>> services;
  std::vector<std::unique_ptr<rsm::ReplicaNode>> replicas;
  std::unique_ptr<rsm::ReplicaClient> client;
};

void print_table() {
  std::printf(
      "\n==============================================================\n"
      "E8: Active/active PVFS metadata server (paper generality claim)\n"
      "==============================================================\n");
  std::printf("%-10s %14s %14s %16s\n", "replicas", "create (write)",
              "lookup (ord.)", "lookup (local)");
  for (int n = 1; n <= 4; ++n) {
    PvfsBench ordered(n, /*read_local=*/false);
    jutil::Samples creates, lookups;
    for (int i = 0; i < 8; ++i) {
      creates.add(ordered.op_latency_ms(ordered.create_req(i)));
      lookups.add(ordered.op_latency_ms(ordered.lookup_req(i)));
    }
    PvfsBench local(n, /*read_local=*/true);
    jutil::Samples local_lookups;
    for (int i = 0; i < 8; ++i) {
      local.op_latency_ms(local.create_req(i));
      local_lookups.add(local.op_latency_ms(local.lookup_req(i)));
    }
    std::printf("%-10d %11.0f ms %11.0f ms %13.0f ms\n", n, creates.mean(),
                lookups.mean(), local_lookups.mean());
  }
  std::printf(
      "\nShape checks: writes mirror Figure 10 (flat -> jump at 2 -> ~linear);\n"
      "read-local lookups stay flat -- the consistency/latency trade the\n"
      "ordered mode avoids.\n");
}

void BM_PvfsCreate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  PvfsBench bench(n, false);
  int i = 0;
  for (auto _ : state) {
    state.SetIterationTime(bench.op_latency_ms(bench.create_req(i++)) / 1e3);
  }
}
BENCHMARK(BM_PvfsCreate)->DenseRange(1, 4)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
