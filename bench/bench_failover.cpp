// Ablation E5: what a head failure costs under each HA model (Section 2's
// comparison, quantified).
//
//   active/standby      -- outage window = detection + service restart;
//                          running jobs restart from the queue.
//   symmetric A/A       -- no outage (surviving heads keep serving after
//                          the view change); running jobs unaffected.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "ha/active_standby.h"

namespace {

struct FailoverResult {
  double outage_ms = 0;  ///< window where submissions fail
  /// At the instant service recovered, was the victim job still RUNNING
  /// with its pre-crash start time (JOSHUA) -- or had it been requeued for
  /// a restart from the checkpoint (active/standby)?
  bool running_job_survived = false;
};

/// Crash the active/primary head mid-job; probe submissions every 200 ms
/// of simulated time to measure the service gap.
FailoverResult active_standby_failover(uint64_t seed) {
  ha::ActiveStandbyOptions options;
  options.seed = seed;
  ha::ActiveStandbyCluster cluster(options);
  pbs::Client& client = cluster.make_client();
  client.set_timeout(sim::msec(500));  // probe granularity

  pbs::JobSpec victim;
  victim.name = "victim";
  victim.run_time = sim::seconds(30);
  pbs::JobId running = pbs::kInvalidJob;
  client.qsub(victim,
              [&](auto r) { running = r ? r->job_id : pbs::kInvalidJob; });
  benchutil::spin(cluster.sim(), [&] { return running != pbs::kInvalidJob; });
  benchutil::spin(cluster.sim(), [&] {
    auto j = cluster.active_server().find_job(running);
    return j && j->state == pbs::JobState::kRunning;
  });

  sim::Time crash = cluster.sim().now();
  cluster.net().crash_host(cluster.primary_host());

  // Probe until a submission succeeds again.
  sim::Time recovered{0};
  while (recovered.us == 0) {
    bool done = false;
    bool ok = false;
    client.set_server(cluster.active_endpoint());
    pbs::JobSpec probe;
    probe.name = "probe";
    probe.run_time = sim::seconds(1);
    client.qsub(probe, [&](auto r) {
      done = true;
      ok = r.has_value() && r->status == pbs::Status::kOk;
    });
    benchutil::spin(cluster.sim(), [&] { return done; }, sim::seconds(10));
    if (ok) {
      recovered = cluster.sim().now();
    } else {
      cluster.sim().run_for(sim::msec(200));
    }
    if ((cluster.sim().now() - crash).seconds() > 60) break;
  }

  FailoverResult result;
  result.outage_ms = (recovered - crash).millis();
  // Active/standby restarts applications: at recovery the victim is back
  // in the queue (or relaunched with a post-crash start time).
  auto job = cluster.active_server().find_job(running);
  result.running_job_survived = job &&
                                job->state == pbs::JobState::kRunning &&
                                job->start_time < crash;
  return result;
}

FailoverResult joshua_failover(int heads, uint64_t seed) {
  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = 2;
  options.seed = seed;
  joshua::Cluster cluster(options);
  cluster.start();
  cluster.run_until_converged();
  joshua::Client& client = cluster.make_jclient();
  client.set_timeout(sim::msec(500));  // same failover knob as the probe

  pbs::JobSpec victim;
  victim.name = "victim";
  victim.run_time = sim::seconds(30);
  pbs::JobId running = pbs::kInvalidJob;
  client.jsub(victim,
              [&](auto r) { running = r ? r->job_id : pbs::kInvalidJob; });
  benchutil::spin(cluster.sim(), [&] { return running != pbs::kInvalidJob; });
  benchutil::spin(cluster.sim(), [&] {
    auto j = cluster.pbs_server(1).find_job(running);
    return j && j->state == pbs::JobState::kRunning;
  });

  sim::Time crash = cluster.sim().now();
  cluster.net().crash_host(cluster.head_hosts()[0]);

  sim::Time recovered{0};
  while (recovered.us == 0) {
    bool done = false;
    bool ok = false;
    pbs::JobSpec probe;
    probe.name = "probe";
    probe.run_time = sim::seconds(1);
    client.jsub(probe, [&](auto r) {
      done = true;
      ok = r.has_value() && r->status == pbs::Status::kOk;
    });
    benchutil::spin(cluster.sim(), [&] { return done; }, sim::seconds(30));
    if (ok) {
      recovered = cluster.sim().now();
    } else {
      cluster.sim().run_for(sim::msec(200));
    }
    if ((cluster.sim().now() - crash).seconds() > 120) break;
  }

  FailoverResult result;
  result.outage_ms = (recovered - crash).millis();
  // Symmetric A/A: the surviving head's record is untouched -- still
  // running, started before the crash.
  auto job = cluster.pbs_server(1).find_job(running);
  result.running_job_survived = job &&
                                job->state == pbs::JobState::kRunning &&
                                job->start_time < crash;
  return result;
}

void print_table() {
  benchutil::print_header(
      "E5: Head-failure cost by HA model (Section 2 comparison)");
  std::printf("%-28s %18s %26s\n", "model",
              "client-visible gap", "running job at recovery");
  FailoverResult as = active_standby_failover(1);
  std::printf("%-28s %15.0f ms %26s\n", "active/standby (warm)", as.outage_ms,
              as.running_job_survived ? "still running" : "RESTARTED");
  for (int heads = 2; heads <= 4; ++heads) {
    FailoverResult j = joshua_failover(heads, 1);
    std::printf("joshua symmetric A/A x%-6d %15.0f ms %26s\n", heads,
                j.outage_ms,
                j.running_job_survived ? "still running" : "RESTARTED");
  }
  std::printf(
      "\nShape checks: active/standby pays seconds of outage (detection +\n"
      "restart, cf. HA-OSCAR's 3-5 s) and restarts the running job;\n"
      "JOSHUA's gap is only the client's failover retry to the next head,\n"
      "and the running job is untouched -- the paper's core claim.\n");
}

void BM_ActiveStandbyFailover(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    FailoverResult r = active_standby_failover(seed++);
    state.SetIterationTime(r.outage_ms / 1000.0);
  }
}
BENCHMARK(BM_ActiveStandbyFailover)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_JoshuaFailover(benchmark::State& state) {
  uint64_t seed = 1;
  int heads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    FailoverResult r = joshua_failover(heads, seed++);
    state.SetIterationTime(r.outage_ms / 1000.0);
  }
}
BENCHMARK(BM_JoshuaFailover)->DenseRange(2, 4)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
