// E14: scheduler policy sweep on trace-driven workloads (DESIGN.md §11).
//
// The paper pins Maui to FIFO + exclusive cluster access purely for
// determinism ("this restriction may be lifted in the future if
// deterministic allocation behavior can be assured"). The plugin policies
// are deterministic pure functions, so the restriction can be lifted --
// this bench quantifies what it was costing.
//
// Part A (utilization): a bursty submit trace (storms + quiet gaps, the
// regime where backfill has real holes to fill) runs through one PBS
// server per policy on an 8-node cluster. Reproduction bar, asserted in
// the exit code and gated by baselines/scheduler_rules.json: EASY
// backfill and priority scheduling must each reach >= 1.5x the node
// utilization of the paper's FIFO-exclusive configuration.
//
// Part B (responsiveness): a mixed-priority steady trace measures what
// the priority and preemption policies buy the high-priority class: mean
// queue wait of the top priority level under fifo vs priority vs preempt.
// Bar: priority scheduling must cut the high-class mean wait vs FIFO, and
// preemption must cut it further.
//
// Every run is also executed twice for the lead policy to demonstrate the
// determinism contract end to end (identical makespan, identical
// utilization).
//
//   $ ./bench/bench_scheduler       # table + BENCH_scheduler.json
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pbs/client.h"
#include "pbs/mom.h"
#include "pbs/server.h"
#include "pbs/workload.h"
#include "sim/calibration.h"
#include "telemetry/scenario_report.h"

namespace {

constexpr int kNodes = 8;
constexpr uint64_t kSeed = 3;

struct TraceResult {
  bool ok = false;
  double makespan_s = 0;    ///< first submit to last completion
  double utilization = 0;   ///< useful node-seconds / (nodes * makespan)
  double backfilled = 0;    ///< out-of-FIFO-order admissions
  double preemptions = 0;   ///< ordered requeues of running jobs
  double mean_wait_s = 0;   ///< queue wait, all completed jobs
  double high_wait_s = 0;   ///< queue wait, top priority class only
};

/// Replay a trace through one standalone PBS server (no replication layer:
/// this measures scheduling quality, not ordering cost) and account the
/// outcome. Deterministic: (sched, trace) fully determine the result.
TraceResult run_trace(const pbs::SchedulerConfig& sched,
                      const std::vector<pbs::TraceOp>& trace) {
  TraceResult result;
  sim::Simulation simulation(kSeed);
  sim::Network net(simulation, sim::fast_calibration().network);
  sim::HostId head = net.add_host("head").id();
  std::vector<sim::HostId> computes;
  for (int i = 0; i < kNodes; ++i)
    computes.push_back(net.add_host("n" + std::to_string(i)).id());
  sim::HostId login = net.add_host("login").id();

  pbs::ServerConfig cfg = pbs::server_config_from(sim::fast_calibration());
  cfg.port = 15001;
  cfg.sched = sched;
  cfg.sched_interval = sim::msec(200);
  for (sim::HostId h : computes) cfg.moms.push_back({h, 15002});
  pbs::Server server(net, head, cfg);
  std::vector<std::unique_ptr<pbs::Mom>> moms;
  for (sim::HostId h : computes) {
    pbs::MomConfig mcfg = pbs::mom_config_from(sim::fast_calibration());
    mcfg.port = 15002;
    moms.push_back(std::make_unique<pbs::Mom>(net, h, mcfg));
  }
  pbs::ClientConfig ccfg = pbs::client_config_from(
      sim::fast_calibration(), sim::Endpoint{head, 15001});
  pbs::Client client(net, login, 20000, ccfg);

  size_t expected = 0;
  for (const pbs::TraceOp& op : trace)
    if (op.kind == pbs::TraceOp::Kind::kSubmit)
      expected += op.spec.array_count > 1 ? op.spec.array_count : 1;

  sim::Time start = simulation.now();
  sim::Time deadline = start + sim::hours(24);
  size_t next = 0;
  while (simulation.now() < deadline) {
    while (next < trace.size() &&
           start + trace[next].at <= simulation.now()) {
      const pbs::TraceOp& op = trace[next++];
      if (op.kind == pbs::TraceOp::Kind::kSubmit)
        client.qsub(op.spec, [](std::optional<pbs::SubmitResponse>) {});
    }
    if (next >= trace.size() &&
        server.count_in_state(pbs::JobState::kComplete) >= expected)
      break;
    simulation.run_for(sim::msec(500));
  }
  if (server.count_in_state(pbs::JobState::kComplete) < expected)
    return result;  // stalled: report FAILED rather than a bogus number

  result.makespan_s = (simulation.now() - start).seconds();
  double busy_node_seconds = 0;
  double wait_sum = 0, high_sum = 0;
  int32_t top = 0;
  for (const auto& [id, job] : server.jobs())
    top = std::max(top, job.spec.priority);
  size_t waits = 0, highs = 0;
  for (const auto& [id, job] : server.jobs()) {
    (void)id;
    if (!job.terminal() || job.cancelled) continue;
    busy_node_seconds +=
        (job.end_time - job.start_time).seconds() * job.spec.nodes;
    double wait = (job.start_time - job.submit_time).seconds();
    wait_sum += wait;
    ++waits;
    if (job.spec.priority == top) {
      high_sum += wait;
      ++highs;
    }
  }
  result.utilization =
      busy_node_seconds / (kNodes * std::max(result.makespan_s, 1.0));
  result.mean_wait_s = waits > 0 ? wait_sum / static_cast<double>(waits) : 0;
  result.high_wait_s = highs > 0 ? high_sum / static_cast<double>(highs) : 0;
  const telemetry::Registry& m = simulation.telemetry().metrics();
  if (const auto* b = m.find_counter("pbs.sched.backfilled"))
    result.backfilled = static_cast<double>(b->value);
  if (const auto* p = m.find_counter("pbs.sched.preemptions"))
    result.preemptions = static_cast<double>(p->value);
  result.ok = true;
  return result;
}

pbs::SchedulerConfig make_sched(const std::string& policy, bool exclusive) {
  pbs::SchedulerConfig sched;
  sched.policy = policy;
  sched.selector = "firstfit";
  sched.exclusive_cluster = exclusive;
  // Aging keeps preemption victims from starving (their effective priority
  // climbs until they stop being strictly lower than the preemptor's).
  if (policy == "priority" || policy == "preempt")
    sched.priority_aging = sim::seconds(60);
  return sched;
}

}  // namespace

int main() {
  telemetry::ScenarioReport report;
  report.set_meta("experiment", "E14_scheduler_sweep");
  report.set_meta("seed", std::to_string(kSeed));

  // -- Part A: bursty utilization sweep ----------------------------------
  // ~5 storms of 12 jobs (1-4 nodes, 30 s - 5 min) over 10 minutes: about
  // 5x the cluster's capacity for the trace window, so the drain phase
  // measures packing quality, not idle gaps.
  pbs::WorkloadProfile bursty;
  bursty.kind = pbs::TraceKind::kBursty;
  bursty.duration = sim::minutes(10);
  bursty.mean_interarrival = sim::seconds(20);
  bursty.burst_size = 12;
  bursty.burst_gap = sim::seconds(90);
  std::vector<pbs::TraceOp> bursty_trace = pbs::make_trace(bursty, kSeed);

  std::printf(
      "==================================================================\n"
      "E14 part A: bursty trace (%zu submits, %d nodes), policy sweep\n"
      "==================================================================\n"
      "%-26s %12s %12s %11s\n",
      bursty_trace.size(), kNodes, "policy", "makespan", "utilization",
      "backfills");
  struct Row {
    const char* key;
    const char* label;
    pbs::SchedulerConfig cfg;
  };
  std::vector<Row> rows = {
      {"exclusive", "FIFO + exclusive (paper)", make_sched("fifo", true)},
      {"fifo", "FIFO shared nodes", make_sched("fifo", false)},
      {"backfill", "EASY backfill", make_sched("backfill", false)},
      {"priority", "priority + aging", make_sched("priority", false)},
      {"preempt", "priority + preemption", make_sched("preempt", false)},
  };
  std::map<std::string, TraceResult> bursty_results;
  bool all_ok = true;
  for (const Row& row : rows) {
    TraceResult r = run_trace(row.cfg, bursty_trace);
    bursty_results[row.key] = r;
    if (!r.ok) {
      std::printf("%-26s FAILED (stalled before completing the trace)\n",
                  row.label);
      all_ok = false;
      continue;
    }
    std::printf("%-26s %10.0f s %11.0f%% %11.0f\n", row.label, r.makespan_s,
                r.utilization * 100, r.backfilled);
    std::string prefix = std::string("bursty.") + row.key;
    report.set(prefix + ".makespan_s", r.makespan_s);
    report.set(prefix + ".utilization", r.utilization);
    if (std::string(row.key) == "backfill")
      report.set(prefix + ".backfilled", r.backfilled);
  }

  // The reproduction bar: lifting the paper's restriction must buy >= 1.5x
  // utilization for both the backfill and the priority policy.
  double excl_util = bursty_results["exclusive"].utilization;
  double backfill_gain =
      excl_util > 0 ? bursty_results["backfill"].utilization / excl_util : 0;
  double priority_gain =
      excl_util > 0 ? bursty_results["priority"].utilization / excl_util : 0;
  report.set("bursty.backfill_vs_exclusive_util", backfill_gain);
  report.set("bursty.priority_vs_exclusive_util", priority_gain);
  bool gain_ok = all_ok && backfill_gain >= 1.5 && priority_gain >= 1.5;
  bool backfill_used = bursty_results["backfill"].backfilled > 0;
  std::printf(
      "\nutilization vs FIFO-exclusive: backfill %.2fx, priority %.2fx "
      "(bar: 1.5x): %s\n",
      backfill_gain, priority_gain, gain_ok ? "yes" : "NO");

  // Determinism demo: the same (policy, trace) pair must reproduce the
  // run bit-for-bit -- the whole premise of lifting the restriction.
  TraceResult again = run_trace(make_sched("backfill", false), bursty_trace);
  bool deterministic =
      again.ok && again.makespan_s == bursty_results["backfill"].makespan_s &&
      again.utilization == bursty_results["backfill"].utilization;
  report.set("determinism_ok", deterministic ? 1 : 0);
  std::printf("backfill rerun identical (determinism contract): %s\n",
              deterministic ? "yes" : "NO");

  // -- Part B: mixed-priority responsiveness -----------------------------
  pbs::WorkloadProfile mixed;
  mixed.kind = pbs::TraceKind::kMixedPriority;
  mixed.duration = sim::minutes(10);
  mixed.mean_interarrival = sim::seconds(25);
  mixed.priority_levels = 3;
  std::vector<pbs::TraceOp> mixed_trace = pbs::make_trace(mixed, kSeed + 1);

  std::printf(
      "\n==================================================================\n"
      "E14 part B: mixed-priority trace (%zu submits), high-class wait\n"
      "==================================================================\n"
      "%-26s %14s %14s %11s\n",
      mixed_trace.size(), "policy", "high wait", "mean wait", "preempts");
  std::map<std::string, TraceResult> prio_results;
  for (const char* policy : {"fifo", "priority", "preempt"}) {
    TraceResult r = run_trace(make_sched(policy, false), mixed_trace);
    prio_results[policy] = r;
    if (!r.ok) {
      std::printf("%-26s FAILED\n", policy);
      all_ok = false;
      continue;
    }
    std::printf("%-26s %12.0f s %12.0f s %11.0f\n", policy, r.high_wait_s,
                r.mean_wait_s, r.preemptions);
    std::string prefix = std::string("prio.") + policy;
    report.set(prefix + ".high_wait_s", r.high_wait_s);
    report.set(prefix + ".mean_wait_s", r.mean_wait_s);
  }
  report.set("prio.preempt.preemptions", prio_results["preempt"].preemptions);
  bool prio_ok = prio_results["priority"].ok && prio_results["fifo"].ok &&
                 prio_results["priority"].high_wait_s <
                     prio_results["fifo"].high_wait_s;
  bool preempt_ok = prio_results["preempt"].ok &&
                    prio_results["preempt"].high_wait_s <=
                        prio_results["priority"].high_wait_s &&
                    prio_results["preempt"].preemptions > 0;
  report.set("prio.priority_beats_fifo_ok", prio_ok ? 1 : 0);
  report.set("prio.preempt_beats_priority_ok", preempt_ok ? 1 : 0);
  std::printf(
      "\npriority cuts high-class wait vs FIFO: %s; preemption cuts it "
      "further (with >0 preempts): %s\n",
      prio_ok ? "yes" : "NO", preempt_ok ? "yes" : "NO");

  bool ok = all_ok && gain_ok && backfill_used && deterministic && prio_ok &&
            preempt_ok;
  if (report.write_file("BENCH_scheduler.json"))
    std::printf("wrote BENCH_scheduler.json\n");
  return ok ? 0 : 1;
}
