// Ablation: the Maui-style scheduling policies (DESIGN.md §5).
//
// The paper pins Maui to FIFO + exclusive cluster access purely for
// determinism ("this restriction may be lifted in the future if
// deterministic allocation behavior can be assured"). Our EASY-backfill
// policy is deterministic too -- this bench quantifies what the
// restriction costs: makespan and node utilization for a mixed workload,
// FIFO vs backfill vs the paper's exclusive mode.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "pbs/client.h"
#include "pbs/mom.h"
#include "pbs/server.h"
#include "sim/calibration.h"
#include "util/rng.h"

namespace {

struct WorkloadResult {
  double makespan_s = 0;
  double utilization = 0;  ///< busy-node-seconds / (nodes * makespan)
};

/// Run a fixed synthetic workload (seeded mix of 1-4 node jobs, 30-300 s)
/// through one PBS server with the given policy on an 8-node cluster.
WorkloadResult run_workload(pbs::SchedulerConfig sched, int jobs,
                            uint64_t seed) {
  sim::Simulation simulation(seed);
  sim::Network net(simulation, sim::fast_calibration().network);
  sim::HostId head = net.add_host("head").id();
  std::vector<sim::HostId> computes;
  const int kNodes = 8;
  for (int i = 0; i < kNodes; ++i)
    computes.push_back(net.add_host("n" + std::to_string(i)).id());
  sim::HostId login = net.add_host("login").id();

  pbs::ServerConfig cfg = pbs::server_config_from(sim::fast_calibration());
  cfg.port = 15001;
  cfg.sched = sched;
  cfg.sched_interval = sim::msec(200);
  for (sim::HostId h : computes) cfg.moms.push_back({h, 15002});
  pbs::Server server(net, head, cfg);
  std::vector<std::unique_ptr<pbs::Mom>> moms;
  for (sim::HostId h : computes) {
    pbs::MomConfig mcfg = pbs::mom_config_from(sim::fast_calibration());
    mcfg.port = 15002;
    moms.push_back(std::make_unique<pbs::Mom>(net, h, mcfg));
  }
  pbs::ClientConfig ccfg = pbs::client_config_from(
      sim::fast_calibration(), sim::Endpoint{head, 15001});
  pbs::Client client(net, login, 20000, ccfg);

  // Deterministic workload mix.
  jutil::Rng rng(seed * 1000 + 7);
  int submitted = 0;
  std::function<void()> next = [&] {
    pbs::JobSpec spec;
    spec.name = "w" + std::to_string(submitted);
    spec.nodes = static_cast<uint32_t>(1 + rng.next_u64(4));
    int64_t secs = 30 + static_cast<int64_t>(rng.next_u64(270));
    spec.run_time = sim::seconds(secs);
    spec.walltime = sim::seconds(secs + 30);  // decent estimate
    client.qsub(spec, [&](std::optional<pbs::SubmitResponse>) {
      if (++submitted < jobs) next();
    });
  };
  next();

  sim::Time start = simulation.now();
  sim::Time deadline = start + sim::hours(24);
  while (simulation.now() < deadline &&
         server.count_in_state(pbs::JobState::kComplete) <
             static_cast<size_t>(jobs)) {
    simulation.run_for(sim::seconds(1));
  }
  WorkloadResult result;
  result.makespan_s = (simulation.now() - start).seconds();
  double busy_node_seconds = 0;
  for (const auto& [id, job] : server.jobs()) {
    (void)id;
    if (job.terminal() && !job.cancelled)
      busy_node_seconds +=
          (job.end_time - job.start_time).seconds() * job.spec.nodes;
  }
  result.utilization =
      busy_node_seconds / (kNodes * std::max(result.makespan_s, 1.0));
  return result;
}

void print_table() {
  std::printf(
      "\n==============================================================\n"
      "Scheduler ablation: FIFO exclusive (paper) vs FIFO vs EASY backfill\n"
      "(40 mixed jobs, 8 nodes)\n"
      "==============================================================\n");
  std::printf("%-26s %12s %12s\n", "policy", "makespan", "utilization");
  struct Row {
    const char* name;
    pbs::SchedulerConfig cfg;
  } rows[] = {
      {"FIFO + exclusive (paper)", {pbs::SchedPolicy::kFifo, true}},
      {"FIFO shared nodes", {pbs::SchedPolicy::kFifo, false}},
      {"EASY backfill", {pbs::SchedPolicy::kFifoBackfill, false}},
  };
  for (const Row& row : rows) {
    WorkloadResult r = run_workload(row.cfg, 40, 3);
    std::printf("%-26s %10.0f s %11.0f%%\n", row.name, r.makespan_s,
                r.utilization * 100);
  }
  std::printf(
      "\nShape checks: exclusive mode (determinism at any cost) wastes the\n"
      "most; backfill >= plain FIFO utilization -- and both remain\n"
      "deterministic, supporting the paper's 'restriction may be lifted'\n"
      "note.\n");
}

void BM_Workload(benchmark::State& state) {
  pbs::SchedulerConfig cfg;
  switch (state.range(0)) {
    case 0: cfg = {pbs::SchedPolicy::kFifo, true}; break;
    case 1: cfg = {pbs::SchedPolicy::kFifo, false}; break;
    default: cfg = {pbs::SchedPolicy::kFifoBackfill, false}; break;
  }
  for (auto _ : state) {
    WorkloadResult r = run_workload(cfg, 30, 3);
    state.SetIterationTime(r.makespan_s);
    state.counters["utilization"] = r.utilization;
  }
}
BENCHMARK(BM_Workload)->DenseRange(0, 2)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
