// Telemetry hot-path microbenchmarks: counter add, histogram record, and
// trace-ring push must all be allocation-free at steady state -- telemetry
// rides on every simulated packet and scheduler cycle, so a single
// allocation per update would dominate the event core the previous PR made
// allocation-free.
//
// Like bench_simcore, main() FAILS (exit 1) if any steady-state path
// allocates, and the focused wall-clock numbers land in
// BENCH_telemetry.json (ScenarioReport shape).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "telemetry/hub.h"
#include "telemetry/scenario_report.h"

// -- allocation counter -------------------------------------------------------

static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

double g_counter_allocs_per_op = -1.0;
double g_histogram_allocs_per_op = -1.0;
double g_trace_allocs_per_op = -1.0;
double g_lookup_allocs_per_op = -1.0;
double g_counter_ops_per_sec = 0.0;
double g_histogram_ops_per_sec = 0.0;
double g_trace_ops_per_sec = 0.0;

void BM_CounterAdd(benchmark::State& state) {
  telemetry::Registry reg;
  telemetry::Counter c = reg.counter("bench.counter");
  uint64_t alloc_before = allocs();
  for (auto _ : state) c.add(1);
  uint64_t alloc_after = allocs();
  benchmark::DoNotOptimize(c.value());
  state.counters["allocs/op"] =
      static_cast<double>(alloc_after - alloc_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::Registry reg;
  telemetry::Histogram h = reg.histogram("bench.histogram");
  int64_t v = 1;
  uint64_t alloc_before = allocs();
  for (auto _ : state) {
    h.record(v);
    v = (v * 31 + 7) & 0xfffff;  // spread across buckets
  }
  uint64_t alloc_after = allocs();
  state.counters["allocs/op"] =
      static_cast<double>(alloc_after - alloc_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/// Re-resolving an already-interned metric by name must not allocate either
/// (transparent string_view lookup) -- instrumented ctors do this freely.
void BM_RegistryLookup(benchmark::State& state) {
  telemetry::Registry reg;
  reg.counter("bench.lookup.counter");
  uint64_t alloc_before = allocs();
  for (auto _ : state) {
    telemetry::Counter c = reg.counter("bench.lookup.counter");
    benchmark::DoNotOptimize(c);
  }
  uint64_t alloc_after = allocs();
  state.counters["allocs/op"] =
      static_cast<double>(alloc_after - alloc_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_RegistryLookup);

void BM_TraceInstant(benchmark::State& state) {
  telemetry::TraceBuffer trace;
  trace.set_capacity(1 << 12);
  uint16_t cat = trace.intern("bench.event");
  // Fill the ring so every push in the measured loop overwrites (the
  // steady state of a long run).
  for (size_t i = 0; i < trace.capacity(); ++i)
    trace.instant(static_cast<int64_t>(i), 0, cat);
  int64_t ts = 0;
  uint64_t alloc_before = allocs();
  for (auto _ : state) trace.instant(++ts, 1, cat, 42, 43);
  uint64_t alloc_after = allocs();
  benchmark::DoNotOptimize(trace.recorded());
  state.counters["allocs/op"] =
      static_cast<double>(alloc_after - alloc_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TraceInstant);

// -- focused wall-clock runs for BENCH_telemetry.json -------------------------

void measure_for_json() {
  using clock = std::chrono::steady_clock;
  constexpr int kOps = 20'000'000;
  {
    telemetry::Registry reg;
    telemetry::Counter c = reg.counter("bench.counter");
    uint64_t alloc_before = allocs();
    auto t0 = clock::now();
    for (int i = 0; i < kOps; ++i) c.add(1);
    auto t1 = clock::now();
    g_counter_allocs_per_op =
        static_cast<double>(allocs() - alloc_before) / kOps;
    g_counter_ops_per_sec =
        kOps / std::chrono::duration<double>(t1 - t0).count();
    benchmark::DoNotOptimize(c.value());
  }
  {
    telemetry::Registry reg;
    telemetry::Histogram h = reg.histogram("bench.histogram");
    int64_t v = 1;
    uint64_t alloc_before = allocs();
    auto t0 = clock::now();
    for (int i = 0; i < kOps; ++i) {
      h.record(v);
      v = (v * 31 + 7) & 0xfffff;
    }
    auto t1 = clock::now();
    g_histogram_allocs_per_op =
        static_cast<double>(allocs() - alloc_before) / kOps;
    g_histogram_ops_per_sec =
        kOps / std::chrono::duration<double>(t1 - t0).count();
  }
  {
    telemetry::TraceBuffer trace;
    trace.set_capacity(1 << 14);
    uint16_t cat = trace.intern("bench.event");
    for (size_t i = 0; i < trace.capacity(); ++i)
      trace.instant(static_cast<int64_t>(i), 0, cat);
    uint64_t alloc_before = allocs();
    auto t0 = clock::now();
    for (int i = 0; i < kOps; ++i)
      trace.instant(i, static_cast<uint32_t>(i & 3), cat,
                    static_cast<uint64_t>(i));
    auto t1 = clock::now();
    g_trace_allocs_per_op =
        static_cast<double>(allocs() - alloc_before) / kOps;
    g_trace_ops_per_sec =
        kOps / std::chrono::duration<double>(t1 - t0).count();
    benchmark::DoNotOptimize(trace.recorded());
  }
  {
    telemetry::Registry reg;
    reg.counter("bench.lookup.counter");
    constexpr int kLookups = 2'000'000;
    uint64_t alloc_before = allocs();
    for (int i = 0; i < kLookups; ++i) {
      telemetry::Counter c = reg.counter("bench.lookup.counter");
      benchmark::DoNotOptimize(c);
    }
    g_lookup_allocs_per_op =
        static_cast<double>(allocs() - alloc_before) / kLookups;
  }
}

void write_json() {
  telemetry::ScenarioReport report;
  report.set("counter_add_ops_per_sec", g_counter_ops_per_sec);
  report.set("counter_add_allocs_per_op", g_counter_allocs_per_op);
  report.set("histogram_record_ops_per_sec", g_histogram_ops_per_sec);
  report.set("histogram_record_allocs_per_op", g_histogram_allocs_per_op);
  report.set("trace_instant_ops_per_sec", g_trace_ops_per_sec);
  report.set("trace_instant_allocs_per_op", g_trace_allocs_per_op);
  report.set("registry_lookup_allocs_per_op", g_lookup_allocs_per_op);
  if (!report.write_file("BENCH_telemetry.json")) {
    std::fprintf(stderr,
                 "warning: cannot write BENCH_telemetry.json in the current "
                 "directory; results printed above only\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  measure_for_json();
  write_json();
  std::printf("\ncounter add:      %.0f ops/s, %.6f allocs/op\n",
              g_counter_ops_per_sec, g_counter_allocs_per_op);
  std::printf("histogram record: %.0f ops/s, %.6f allocs/op\n",
              g_histogram_ops_per_sec, g_histogram_allocs_per_op);
  std::printf("trace instant:    %.0f ops/s, %.6f allocs/op\n",
              g_trace_ops_per_sec, g_trace_allocs_per_op);
  std::printf("registry lookup:  %.6f allocs/op\n", g_lookup_allocs_per_op);
  if (g_counter_allocs_per_op != 0.0 || g_histogram_allocs_per_op != 0.0 ||
      g_trace_allocs_per_op != 0.0 || g_lookup_allocs_per_op != 0.0) {
    std::printf("FAIL: telemetry steady state must be allocation-free\n");
    return 1;
  }
  return 0;
}
