// E12: federated control plane -- shard-count scaling past one ordering
// group.
//
// The paper's symmetric active/active design totally orders EVERY command
// through one group, so aggregate throughput is capped by one group's
// ordering rate no matter how many heads are added. The federation shards
// the job/queue space across independent groups; this bench quantifies the
// trade with three legs:
//
//   A. Throughput: 256 total heads as 1x256 vs 4x64 (token engine),
//      identical closed-loop jsub load through the router. The reproduction
//      bar: 4 shards sustain >= 3x the 1-shard ordered-command rate.
//   B. Queue scale: one MILLION queued jobs federated 4 ways vs monolithic,
//      measuring single-id jstat (served via the local-read fast path --
//      pbs.jstat_local is reported) and jsub latency against that backlog.
//   C. Latency parity: a 1-shard 4-head federation under bench_ordering's
//      cost model must show the same all-ack order p95 as the raw N = 4
//      sweep point (the default config is behaviour-identical; gated
//      against baselines/BENCH_federation.json).
//
//   $ ./bench/bench_federation        # table + BENCH_federation.json
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fed/federation.h"
#include "telemetry/scenario_report.h"

namespace {

/// Leg A: total heads across every shard (the acceptance point).
constexpr int kTotalHeads = 256;
constexpr int kThroughputCmds = 512;
constexpr int kClosedLoopWindow = 32;
/// Leg B: queued jobs across the whole federation.
constexpr uint64_t kMillion = 1000000;
/// Leg C mirrors bench_ordering's N = 4 all-ack sweep point.
constexpr int kParityCmds = 128;

struct LegResult {
  bool ok = false;
  double elapsed_s = 0.0;
  double cmds_per_s = 0.0;
  double order_ms_mean = 0.0;
  double order_ms_p95 = 0.0;
  double jstat_ms_p95 = 0.0;
  double jsub_ms_mean = 0.0;
  uint64_t jstat_local_served = 0;
  uint64_t queued_jobs = 0;
};

fed::FederationOptions bench_options(int shards, int heads_per_shard,
                                     gcs::OrderingMode ordering) {
  fed::FederationOptions fo;
  fo.shard_count = shards;
  fo.heads_per_shard = heads_per_shard;
  fo.computes_per_shard = 1;
  fo.cal = sim::fast_calibration();
  fo.ordering = ordering;
  // Persistence re-encodes the whole queue on every mutation; real sites
  // tune checkpointing, and neither leg measures the disk.
  fo.pbs_persist = false;
  // bench_ordering's cost model: modern heads (20 us heartbeat, 50 us
  // control packet) and a relaxed detector, so the sweep isolates ordering
  // asymptotics rather than heartbeat floors or view churn.
  fo.gcs_hb_proc = sim::usec(20);
  fo.gcs_ctrl_proc = sim::usec(50);
  fo.gcs_suspect = sim::seconds(10);
  fo.gcs_flush = sim::seconds(20);
  return fo;
}

void pull_order_latency(const sim::Simulation& sim, LegResult& out) {
  const telemetry::Registry& m = sim.telemetry().metrics();
  if (const auto* latency = m.find_histogram("gcs.order_latency_us")) {
    if (latency->data.count > 0) {
      out.order_ms_mean = latency->data.mean() / 1000.0;
      out.order_ms_p95 = latency->data.percentile(95) / 1000.0;
    }
  }
}

/// Closed-loop jsub load: keep `window` commands in flight until `total`
/// have completed, measuring the sustained ordered-command rate.
LegResult run_throughput_leg(int shards, int total_cmds) {
  LegResult out;
  int heads_per_shard = kTotalHeads / shards;
  std::fprintf(stderr, "[A %dx%d] building federation\n", shards,
               heads_per_shard);
  fed::FederationOptions fo =
      bench_options(shards, heads_per_shard, gcs::OrderingMode::kTokenRing);
  // All-to-all heartbeats at 256 heads are 650k messages per simulated
  // second -- pure failure-detector load that drowns the event core without
  // touching ordering throughput (token rotation is work-driven). 1 s
  // keeps the detector consistent with the 10 s suspect timeout; both
  // sweep points get the same setting, so the comparison is fair.
  fo.gcs_heartbeat = sim::seconds(1);
  fed::Federation f(std::move(fo));
  f.start();
  if (!f.run_until_converged(sim::minutes(10))) {
    std::fprintf(stderr, "[A %dx%d] FAILED to converge\n", shards,
                 heads_per_shard);
    return out;
  }
  std::fprintf(stderr, "[A %dx%d] converged at sim %.2fs\n", shards,
               heads_per_shard, f.sim().now().seconds());
  fed::Router& router = f.make_router();

  int issued = 0, done = 0, accepted = 0, outstanding = 0;
  std::function<void()> pump = [&] {
    while (outstanding < kClosedLoopWindow && issued < total_cmds) {
      ++issued;
      ++outstanding;
      pbs::JobSpec spec;
      spec.name = "bench";
      // Spread across 64 queue names: hash placement balances the shards
      // the way a real site's queue mix would.
      spec.queue = "q" + std::to_string(issued % 64);
      spec.run_time = sim::hours(2);
      router.jsub(std::move(spec), [&](std::optional<pbs::SubmitResponse> r) {
        --outstanding;
        ++done;
        if (r && r->status == pbs::Status::kOk) ++accepted;
        pump();
      });
    }
  };
  sim::Time t0 = f.sim().now();
  pump();
  sim::Time limit = f.sim().now() + sim::hours(2);
  int ticks = 0;
  while (f.sim().now() < limit && done < total_cmds) {
    f.sim().run_for(sim::msec(50));
    if (++ticks % 40 == 0) {
      const telemetry::Registry& m = f.sim().telemetry().metrics();
      auto cval = [&](const char* name) {
        const auto* c = m.find_counter(name);
        return c == nullptr ? 0ull : static_cast<unsigned long long>(c->value);
      };
      std::fprintf(stderr,
                   "[A %dx%d]   sim %.1fs: %d/%d done, %llu events, "
                   "ctrl %llu, nacks %llu, rot %llu, data %llu\n",
                   shards, heads_per_shard, f.sim().now().seconds(), done,
                   total_cmds,
                   static_cast<unsigned long long>(f.sim().events_executed()),
                   cval("gcs.engine_msgs_sent"), cval("gcs.nacks_sent"),
                   cval("gcs.token.rotations"), cval("gcs.data_sent"));
    }
  }
  if (done < total_cmds || accepted != total_cmds) {
    std::fprintf(stderr, "[A %dx%d] STALLED: %d/%d done, %d accepted\n",
                 shards, heads_per_shard, done, total_cmds, accepted);
    return out;
  }
  out.elapsed_s = (f.sim().now() - t0).seconds();
  out.cmds_per_s =
      out.elapsed_s > 0 ? static_cast<double>(accepted) / out.elapsed_s : 0;
  pull_order_latency(f.sim(), out);
  out.ok = true;
  std::fprintf(stderr, "[A %dx%d] %d cmds in %.2fs sim = %.1f/s\n", shards,
               heads_per_shard, accepted, out.elapsed_s, out.cmds_per_s);
  return out;
}

/// A million queued jobs, then jstat/jsub against the backlog. One head per
/// shard keeps the replica memory equal across the comparison; the
/// local-read fast path answers the stats.
LegResult run_million_leg(int shards) {
  LegResult out;
  fed::FederationOptions fo =
      bench_options(shards, 1, gcs::OrderingMode::kAllAck);
  fo.jstat_local = true;
  fed::Federation f(std::move(fo));
  f.start();
  if (!f.run_until_converged(sim::minutes(2))) return out;

  uint64_t per_shard = kMillion / static_cast<uint64_t>(shards);
  pbs::JobSpec spec;
  spec.name = "backlog";
  spec.run_time = sim::hours(8);
  for (uint32_t s = 0; s < f.shard_count(); ++s)
    f.pbs_server(s).preload_queued(per_shard, spec);
  out.queued_jobs = per_shard * static_cast<uint64_t>(shards);
  std::fprintf(stderr, "[B %d shards] preloaded %llu queued jobs\n", shards,
               static_cast<unsigned long long>(out.queued_jobs));
  fed::Router& router = f.make_router();

  // Single-id jstat sweep across the backlog (the jstat -all path would
  // encode the whole million-job table; per-id reads are what users issue
  // against a deep queue).
  constexpr int kStats = 200;
  telemetry::HistogramData jstat_ms{};
  int pending = 0;
  for (int i = 0; i < kStats; ++i) {
    uint32_t shard = static_cast<uint32_t>(i) % f.shard_count();
    pbs::StatRequest req;
    req.job_id = f.shard_map().first_id(shard) +
                 static_cast<pbs::JobId>(i) % per_shard;
    sim::Time sent = f.sim().now();
    ++pending;
    router.jstat(req, [&, sent](std::optional<pbs::StatResponse> r) {
      --pending;
      if (r && r->status == pbs::Status::kOk)
        jstat_ms.record((f.sim().now() - sent).us);
    });
    f.sim().run_for(sim::msec(5));
  }
  sim::Time limit = f.sim().now() + sim::minutes(5);
  while (f.sim().now() < limit && pending > 0) f.sim().run_for(sim::msec(10));
  if (jstat_ms.count < kStats / 2) return out;
  out.jstat_ms_p95 = jstat_ms.percentile(95) / 1000.0;

  // jsub against the million-job backlog: the ordered path must not degrade
  // with queue depth (submission touches the id counter and the job map,
  // never the whole backlog).
  constexpr int kSubs = 50;
  double jsub_total_ms = 0;
  int accepted = 0;
  pending = 0;
  for (int i = 0; i < kSubs; ++i) {
    pbs::JobSpec s2;
    s2.name = "probe";
    s2.queue = "q" + std::to_string(i);
    s2.run_time = sim::hours(2);
    sim::Time sent = f.sim().now();
    ++pending;
    router.jsub(std::move(s2), [&, sent](std::optional<pbs::SubmitResponse> r) {
      --pending;
      if (r && r->status == pbs::Status::kOk) {
        ++accepted;
        jsub_total_ms += (f.sim().now() - sent).us / 1000.0;
      }
    });
    f.sim().run_for(sim::msec(5));
  }
  limit = f.sim().now() + sim::minutes(5);
  while (f.sim().now() < limit && pending > 0) f.sim().run_for(sim::msec(10));
  if (accepted < kSubs) return out;
  out.jsub_ms_mean = jsub_total_ms / accepted;

  for (size_t h = 0; h < f.head_count(); ++h)
    out.jstat_local_served += f.joshua_server(h).stats().jstat_local_served;
  out.ok = true;
  std::fprintf(stderr,
               "[B %d shards] jstat p95 %.2f ms, jsub mean %.2f ms, "
               "%llu stats served locally\n",
               shards, out.jstat_ms_p95, out.jsub_ms_mean,
               static_cast<unsigned long long>(out.jstat_local_served));
  return out;
}

/// Leg C drive pattern, shared by the federation and the monolithic
/// control: bench_ordering's N = 4 sweep point sends one multicast per
/// member per round, 20 ms apart. A jsub multicasts from whichever head
/// the client talks to, so pin one client per head (rotated head lists)
/// and issue rounds of 4 -- same origins, same concurrency, same cadence.
/// `Plane` is fed::Federation or joshua::Cluster (same accessor surface).
template <typename Plane>
LegResult run_parity_pattern(Plane& plane, const sim::Calibration& cal,
                             const char* tag) {
  LegResult out;
  constexpr int kHeads = 4;
  std::vector<sim::Endpoint> heads;
  for (int h = 0; h < kHeads; ++h)
    heads.push_back(
        {plane.head_hosts()[static_cast<size_t>(h)], joshua::Ports::kJoshua});
  std::vector<std::unique_ptr<joshua::Client>> clients;
  for (int k = 0; k < kHeads; ++k) {
    std::vector<sim::Endpoint> rotated;
    for (int j = 0; j < kHeads; ++j)
      rotated.push_back(heads[static_cast<size_t>((k + j) % kHeads)]);
    clients.push_back(std::make_unique<joshua::Client>(
        plane.net(), plane.login_host(),
        static_cast<sim::Port>(joshua::Ports::kClientBase + 100 + k),
        joshua::joshua_client_config_from(cal, std::move(rotated))));
  }

  int done = 0, accepted = 0;
  sim::Time t0 = plane.sim().now();
  for (int r = 0; r < kParityCmds / kHeads; ++r) {
    for (int k = 0; k < kHeads; ++k) {
      pbs::JobSpec spec;
      spec.name = "parity";
      spec.queue = "batch";
      spec.run_time = sim::hours(2);
      clients[static_cast<size_t>(k)]->jsub(
          std::move(spec), [&](std::optional<pbs::SubmitResponse> r2) {
            ++done;
            if (r2 && r2->status == pbs::Status::kOk) ++accepted;
          });
    }
    plane.sim().run_for(sim::msec(20));
  }
  sim::Time limit = plane.sim().now() + sim::minutes(10);
  while (plane.sim().now() < limit && done < kParityCmds)
    plane.sim().run_for(sim::msec(20));
  if (accepted < kParityCmds) return out;
  out.elapsed_s = (plane.sim().now() - t0).seconds();
  out.cmds_per_s = static_cast<double>(accepted) / out.elapsed_s;
  pull_order_latency(plane.sim(), out);
  out.ok = out.order_ms_p95 > 0;
  std::fprintf(stderr, "[C %s] order p95 %.3f ms\n", tag, out.order_ms_p95);
  return out;
}

/// Leg C: the behaviour-identical check. The same all-ack jsub pattern
/// against a 1-shard 4-head federation and a plain 4-head joshua::Cluster;
/// the federation layer at shard_count = 1 must not move the gcs order
/// latency. (The absolute number sits above bench_ordering's raw allack.n4
/// point because every delivered jsub also EXECUTES on each replica here;
/// bench_ordering orders empty payloads.)
std::pair<LegResult, LegResult> run_parity_leg() {
  LegResult fed_point, mono_point;
  // GroupConfig's default hb/ctrl costs this time (ClusterOptions carries
  // no overrides for them): at N = 4 they are noise, and the comparison
  // only needs both planes configured identically.
  fed::FederationOptions fo = bench_options(1, 4, gcs::OrderingMode::kAllAck);
  fo.gcs_hb_proc = sim::kDurationZero;
  fo.gcs_ctrl_proc = sim::kDurationZero;
  fo.pbs_persist = true;  // Cluster always persists; configure both alike
  fed::Federation f(std::move(fo));
  f.start();
  if (f.run_until_converged(sim::minutes(2)))
    fed_point = run_parity_pattern(f, f.options().cal, "fed 1x4 allack");

  joshua::ClusterOptions co;
  co.head_count = 4;
  co.compute_count = 1;
  co.cal = sim::fast_calibration();
  co.ordering = gcs::OrderingMode::kAllAck;
  co.gcs_suspect = sim::seconds(10);
  co.gcs_flush = sim::seconds(20);
  joshua::Cluster mono(co);
  mono.start();
  if (mono.run_until_converged(sim::minutes(2)))
    mono_point = run_parity_pattern(mono, co.cal, "monolithic 4-head allack");
  return {fed_point, mono_point};
}

}  // namespace

int main(int argc, char** argv) {
  // Optional leg filter for iterating locally ("A", "B", or "C"); the full
  // run (no argument) is what writes the gated report.
  std::string only = argc > 1 ? argv[1] : "";
  bool run_a = only.empty() || only == "A";
  bool run_b = only.empty() || only == "B";
  bool run_c = only.empty() || only == "C";
  std::printf(
      "==================================================================\n"
      "E12: federated control plane (shard the job/queue space)\n"
      "==================================================================\n");
  telemetry::ScenarioReport report;
  report.set_meta("experiment", "E12_federation");

  // -- Leg A: throughput at 256 total heads ----------------------------------
  LegResult a1 = run_a ? run_throughput_leg(1, kThroughputCmds) : LegResult{};
  LegResult a4 = run_a ? run_throughput_leg(4, kThroughputCmds) : LegResult{};
  double speedup = (a1.ok && a4.ok && a1.cmds_per_s > 0)
                       ? a4.cmds_per_s / a1.cmds_per_s
                       : 0.0;
  std::printf("leg A (token, %d cmds, %d total heads):\n", kThroughputCmds,
              kTotalHeads);
  std::printf("  1 x 256 : %8.1f ordered cmds/s (p95 order %.2f ms)\n",
              a1.cmds_per_s, a1.order_ms_p95);
  std::printf("  4 x  64 : %8.1f ordered cmds/s (p95 order %.2f ms)\n",
              a4.cmds_per_s, a4.order_ms_p95);
  std::printf("  speedup : %8.2fx (bar: >= 3x)\n", speedup);
  report.set("fed1.throughput_cmds_per_s", a1.cmds_per_s);
  report.set("fed1.order_ms_p95", a1.order_ms_p95);
  report.set("fed4.throughput_cmds_per_s", a4.cmds_per_s);
  report.set("fed4.order_ms_p95", a4.order_ms_p95);
  report.set("fed4.speedup_vs_fed1", speedup);

  // -- Leg B: a million queued jobs ------------------------------------------
  LegResult b1 = run_b ? run_million_leg(1) : LegResult{};
  LegResult b4 = run_b ? run_million_leg(4) : LegResult{};
  std::printf("leg B (%llu queued jobs, local-read jstat):\n",
              static_cast<unsigned long long>(kMillion));
  std::printf("  1 shard : jstat p95 %6.2f ms, jsub mean %6.2f ms\n",
              b1.jstat_ms_p95, b1.jsub_ms_mean);
  std::printf("  4 shards: jstat p95 %6.2f ms, jsub mean %6.2f ms "
              "(%llu stats served off the local replica)\n",
              b4.jstat_ms_p95, b4.jsub_ms_mean,
              static_cast<unsigned long long>(b4.jstat_local_served));
  report.set("fed1.million.queued_jobs", static_cast<double>(b1.queued_jobs));
  report.set("fed1.million.jstat_ms_p95", b1.jstat_ms_p95);
  report.set("fed1.million.jsub_ms_mean", b1.jsub_ms_mean);
  report.set("fed4.million.queued_jobs", static_cast<double>(b4.queued_jobs));
  report.set("fed4.million.jstat_ms_p95", b4.jstat_ms_p95);
  report.set("fed4.million.jsub_ms_mean", b4.jsub_ms_mean);
  report.set("fed4.million.pbs.jstat_local",
             static_cast<double>(b4.jstat_local_served));

  // -- Leg C: 1-shard all-ack parity at N = 4 --------------------------------
  auto [c, c_mono] = run_c ? run_parity_leg()
                           : std::pair<LegResult, LegResult>{};
  double parity_ratio = (c.ok && c_mono.ok && c_mono.order_ms_p95 > 0)
                            ? c.order_ms_p95 / c_mono.order_ms_p95
                            : 0.0;
  std::printf("leg C (4-head all-ack, identical jsub pattern):\n");
  std::printf("  1-shard federation : order p95 %.3f ms\n", c.order_ms_p95);
  std::printf("  monolithic cluster : order p95 %.3f ms (ratio %.2f, "
              "bar: within 25%%)\n",
              c_mono.order_ms_p95, parity_ratio);
  report.set("allack_n4.order_ms_p95", c.order_ms_p95);
  report.set("allack_n4.order_ms_mean", c.order_ms_mean);
  report.set("allack_n4.mono_order_ms_p95", c_mono.order_ms_p95);
  report.set("allack_n4.parity_ratio", parity_ratio);

  bool pass = true;
  if (run_a) {
    pass = pass && a1.ok && a4.ok && speedup >= 3.0;
  }
  if (run_b) {
    pass = pass && b1.ok && b4.ok && b1.queued_jobs >= kMillion &&
           b4.queued_jobs >= kMillion && b4.jstat_local_served > 0;
  }
  if (run_c) {
    // The behaviour-identical claim: the federation layer at one shard must
    // not move the order p95 measured against a plain cluster under the
    // same drive pattern. Absolute drift is gated by
    // baselines/federation_rules.json.
    pass = pass && c.ok && c_mono.ok && parity_ratio > 0.75 &&
           parity_ratio < 1.25;
  }
  report.set("federation_bar_ok", pass ? 1 : 0);

  std::printf("\nfederation bar (>= 3x at 4 shards, 1M jobs queued, local "
              "reads served, 1-shard parity with the monolith): %s\n",
              pass ? "yes" : "NO");
  if (report.write_file("BENCH_federation.json"))
    std::printf("wrote BENCH_federation.json\n");
  return pass ? 0 : 1;
}
