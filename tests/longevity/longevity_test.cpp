// Stochastic longevity campaigns: multi-simulated-day runs under random
// head failures with rejoin + state transfer, checking the replication
// invariants after every view change and the measured availability against
// the src/ha analytic model (paper Section 5 / Figure 12 methodology).
//
// Seeds are fixed, so every campaign is a deterministic regression test:
// the same binary always sees the same outage schedule, the same command
// stream, and the same digest.
#include <gtest/gtest.h>

#include "ha/availability.h"
#include "harness/scenario.h"

namespace {

using scenariotest::ScenarioOptions;
using scenariotest::ScenarioResult;
using scenariotest::ScenarioRunner;

/// JOSHUA_SCHED / JOSHUA_SELECT already flow in through the SchedulerConfig
/// defaults (scenario.h); what a non-FIFO leg additionally needs is the
/// paper's exclusive-cluster restriction lifted (sharing nodes is the whole
/// point of the other policies) and a workload with priorities and job
/// arrays worth scheduling. Aging keeps preemption victims from starving.
void apply_sched_env(ScenarioOptions& options) {
  if (options.sched.policy == "fifo") return;
  options.sched.exclusive_cluster = false;
  options.sched.priority_aging = sim::minutes(5);
  options.priority_levels = 3;
  options.array_fraction = 0.15;
}

ScenarioOptions campaign_options(sim::Duration duration, uint64_t seed) {
  ScenarioOptions options;
  options.name = "longevity";
  options.heads = 3;
  options.computes = 2;
  // JOSHUA_SHARDS > 1 runs the same campaign against a federated control
  // plane (scenario.h builds a fed::Federation behind the router). Each
  // shard keeps a pair of heads so single-head losses never open a
  // per-shard service gap.
  options.shards = scenariotest::env_int("JOSHUA_SHARDS", 1, 1, 8);
  if (options.shards > 1) {
    options.heads = 2 * options.shards;
    options.computes = 2 * options.shards;
  }
  options.seed = seed;
  options.duration = duration;
  options.command_interval = sim::seconds(30);
  // MTTF 4h / MTTR 2min: ~36 cycles across 3 heads over two days, while
  // keeping outage overlaps rare enough that replicated state survives
  // (the exclusive-cluster scheduler also needs repairs faster than the
  // backlog they create).
  options.mttf = sim::hours(4);
  options.mttr = sim::minutes(2);
  // Back-to-back outages can overlap a flush/merge already in progress;
  // give reconvergence two minutes before calling it a violation.
  options.settle_deadline = sim::seconds(120);
  apply_sched_env(options);
  return options;
}

double analytic_node_availability(const ScenarioOptions& options) {
  return ha::node_availability(
      static_cast<double>(options.mttf.us) / 3.6e9,
      static_cast<double>(options.mttr.us) / 3.6e9);
}

void expect_invariants(const ScenarioResult& result) {
  // Continuity precondition first: if the group ever lost its last live
  // member, state loss downstream is expected and the seed must change.
  EXPECT_EQ(result.service_gap_polls, 0u)
      << "seed precondition: some head must stay in service at all times";
  for (const auto& v : result.violations) ADD_FAILURE() << "invariant: " << v;
  EXPECT_TRUE(result.ok());
}

/// Measured availability must sit inside a band around the analytic value.
/// The band is wide (a two-day sample of an exponential process has real
/// variance) but one-sided bounds still catch a broken injector or a head
/// that never came back: [1 - 4*(1-A), 1 - (1-A)/8].
void expect_availability_band(const ScenarioOptions& options,
                              const ScenarioResult& result) {
  double a_node = analytic_node_availability(options);
  double unavail = 1.0 - a_node;
  EXPECT_GE(result.head_availability_min, 1.0 - 4.0 * unavail)
      << "a head was down far longer than MTTF/MTTR predict";
  EXPECT_LE(result.head_availability_max, 1.0 - unavail / 8.0)
      << "a head saw almost no downtime; the injector did not run";
  // Service availability: with the campaign precondition that the schedule
  // never takes every head down at once, measured service availability must
  // dominate the analytic parallel-redundancy floor computed from the
  // pessimistic edge of the per-head band (Equation 2).
  double floor =
      ha::service_availability(1.0 - 4.0 * unavail, options.heads);
  EXPECT_GE(result.service_availability, floor);
  EXPECT_LE(result.service_availability, 1.0);
}

// The tentpole campaign: >= 2 simulated days, >= 20 failure/rejoin cycles
// across all heads, every invariant checked after every view change, and
// the trace ring deliberately small so the report must disclose truncation.
TEST(Longevity, TwoDayCampaignHoldsInvariants) {
  ScenarioOptions options = campaign_options(sim::hours(48), 20260805);
  options.trace_capacity = 8192;
  ScenarioRunner runner(options);
  ScenarioResult result = runner.run();

  // Campaign shape: enough churn to mean something.
  EXPECT_GE(result.failure_cycles, 20);
  EXPECT_GE(result.view_changes_seen, 20u);
  EXPECT_GE(result.convergence_checks, 20u);
  EXPECT_LT(result.max_concurrent_down, options.heads)
      << "seed precondition: some head must survive every outage overlap";
  EXPECT_GT(result.jsub_accepted, 1000u);
  EXPECT_GT(result.jobs_completed, 1000u);

  expect_invariants(result);
  expect_availability_band(options, result);

  // Truncation disclosure: the 8K ring cannot hold two days of records, so
  // the report must carry the aggregate and at least one per-category count.
  EXPECT_GT(result.report.get("telemetry.trace.dropped_records"), 0.0);
  bool has_category_breakdown = false;
  for (const auto& [name, value] : result.report.values()) {
    if (name.rfind("telemetry.trace.dropped_records.", 0) == 0 && value > 0) {
      has_category_breakdown = true;
      break;
    }
  }
  EXPECT_TRUE(has_category_breakdown)
      << "a truncated campaign must say which trace stream lost records";

  // The report names the run it came from.
  EXPECT_EQ(result.report.meta().at("meta.scenario"), "longevity");
  EXPECT_EQ(result.report.meta().at("meta.seed"), "20260805");
}

// CI-bounded smoke: one simulated day, fixed seed, same invariants. This is
// the version the workflow's regression job runs on every push.
TEST(LongevitySmoke, OneDayCampaign) {
  ScenarioOptions options = campaign_options(sim::hours(24), 7);
  ScenarioRunner runner(options);
  ScenarioResult result = runner.run();

  EXPECT_GE(result.failure_cycles, 10);
  EXPECT_LT(result.max_concurrent_down, options.heads);
  EXPECT_GT(result.jsub_accepted, 500u);
  expect_invariants(result);
  expect_availability_band(options, result);
}

// -- compute-plane campaigns -------------------------------------------------
//
// The head plane stays healthy here; all churn comes from compute-node
// crashes, hangs and segment partitions. JOSHUA_REPLICATION / JOSHUA_COMPUTES
// sweep the replication factor and pool size without recompiling.

ScenarioOptions compute_campaign_options(sim::Duration duration,
                                         uint64_t seed) {
  ScenarioOptions options;
  options.name = "compute_failover";
  options.heads = 3;
  options.computes = scenariotest::env_int("JOSHUA_COMPUTES", 4, 2, 16);
  options.replication = static_cast<uint32_t>(std::min(
      scenariotest::env_int("JOSHUA_REPLICATION", 2, 1, 3), options.computes));
  options.seed = seed;
  options.duration = duration;
  options.random_head_faults = false;
  // Longer jobs than the head campaigns: a fault only matters if it lands
  // while the victim is running something. Keep mean runtime (70 s) under
  // the mean jsub interarrival (100 s) so the FIFO backlog stays bounded.
  options.command_interval = sim::seconds(60);
  options.job_runtime_min = sim::seconds(20);
  options.job_runtime_max = sim::seconds(120);
  // Pooled compute faults: MTTF 1 h over the pool of 4 gives a fault about
  // every 15 simulated minutes, 60/25/15 crash/hang/partition.
  options.random_compute_faults = true;
  options.compute_mttf = sim::hours(1);
  options.compute_mttr = sim::minutes(2);
  // Heartbeat failover on by default; the baseline leg switches it off.
  options.mom_heartbeat = sim::seconds(5);
  options.heartbeat_miss_limit = 3;
  apply_sched_env(options);
  return options;
}

// The acceptance campaign: stochastic compute faults at r = 2 with heartbeat
// failover must lose nothing -- every accepted job completes exactly once,
// no job really executes more than r + excused times, and no head ever sees
// the same completion twice in one service incarnation.
TEST(ComputeFailover, ReplicatedCampaignSurvivesComputeFaults) {
  ScenarioOptions options = compute_campaign_options(sim::hours(12), 20260807);
  ScenarioRunner runner(options);
  ScenarioResult result = runner.run();

  EXPECT_GE(result.compute_fault_count, 20)
      << "seed precondition: the injector must actually exercise the pool";
  EXPECT_GT(result.jsub_accepted, 300u);
  EXPECT_GT(result.jobs_completed, 300u);
  expect_invariants(result);
  EXPECT_EQ(result.jobs_lost, 0u);
  EXPECT_EQ(result.duplicate_completions, 0u);
  EXPECT_EQ(result.report.meta().at("meta.scenario"), "compute_failover");
}

// The paper's accepted failure mode, measured: with r = 1 and no heartbeat,
// a compute-node crash takes its running job with it. The same fault
// schedule that the replicated campaign absorbs must strand work here.
TEST(ComputeFailover, PaperBaselineLosesJobsWithoutReplication) {
  ScenarioOptions options = compute_campaign_options(sim::hours(12), 20260807);
  options.replication = 1;
  options.mom_heartbeat = sim::kDurationZero;  // paper behaviour: no failover
  options.tolerate_lost_jobs = true;
  ScenarioRunner runner(options);
  ScenarioResult result = runner.run();

  EXPECT_GE(result.compute_fault_count, 20);
  expect_invariants(result);
  EXPECT_GT(result.jobs_lost, 0u)
      << "an unreplicated compute plane under this fault schedule must lose "
         "jobs -- if it does not, the injector or the baseline broke";
  EXPECT_EQ(result.duplicate_completions, 0u);
}

// CI-bounded smoke: six hours of compute churn, run by the workflow's
// regression job under both ordering engines.
TEST(ComputeFailoverSmoke, SixHourCampaign) {
  ScenarioOptions options = compute_campaign_options(sim::hours(6), 11);
  ScenarioRunner runner(options);
  ScenarioResult result = runner.run();

  EXPECT_GE(result.compute_fault_count, 8);
  expect_invariants(result);
  EXPECT_EQ(result.jobs_lost, 0u);
  EXPECT_EQ(result.duplicate_completions, 0u);
}

// Compute-fault campaigns must be as reproducible as head-fault ones: the
// digest folds in every counter, so one flipped completion shows up here.
TEST(ComputeFailoverDeterminism, SameSeedBitIdentical) {
  ScenarioOptions options = compute_campaign_options(sim::hours(3), 5);
  ScenarioResult first = ScenarioRunner(options).run();
  ScenarioResult second = ScenarioRunner(options).run();
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.compute_fault_count, second.compute_fault_count);
  EXPECT_EQ(first.jobs_completed, second.jobs_completed);
  EXPECT_EQ(first.jobs_lost, second.jobs_lost);
}

// Determinism guard: the same seed must reproduce the campaign bit-for-bit
// (event count, command outcomes, outage schedule, every counter), and a
// different seed must not.
TEST(LongevityDeterminism, SameSeedBitIdenticalDifferentSeedNot) {
  ScenarioOptions options = campaign_options(sim::hours(6), 42);

  ScenarioResult first = ScenarioRunner(options).run();
  ScenarioResult second = ScenarioRunner(options).run();
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.jsub_accepted, second.jsub_accepted);
  EXPECT_EQ(first.failure_cycles, second.failure_cycles);
  EXPECT_EQ(first.service_downtime.us, second.service_downtime.us);

  ScenarioOptions other = campaign_options(sim::hours(6), 43);
  ScenarioResult third = ScenarioRunner(other).run();
  EXPECT_NE(first.digest, third.digest);
}

}  // namespace
