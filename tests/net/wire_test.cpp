#include "net/wire.h"

#include <gtest/gtest.h>

namespace {

using net::Reader;
using net::WireError;
using net::Writer;

TEST(Wire, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);
  sim::Payload buf = w.take();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Wire, StringAndBytesRoundTrip) {
  Writer w;
  w.str("hello world");
  w.str("");
  w.str(std::string("\0binary\0", 8));
  w.bytes({1, 2, 3});
  w.bytes({});
  sim::Payload buf = w.take();

  Reader r(buf);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("\0binary\0", 8));
  EXPECT_EQ(r.bytes(), (sim::Payload{1, 2, 3}));
  EXPECT_EQ(r.bytes(), sim::Payload{});
  EXPECT_TRUE(r.done());
}

TEST(Wire, VectorRoundTrip) {
  Writer w;
  std::vector<uint32_t> values{1, 2, 3, 4};
  w.vec(values, [](Writer& w2, uint32_t v) { w2.u32(v); });
  sim::Payload buf = w.take();

  Reader r(buf);
  auto back = r.vec<uint32_t>([](Reader& r2) { return r2.u32(); });
  EXPECT_EQ(back, values);
}

TEST(Wire, TruncatedReadThrows) {
  Writer w;
  w.u64(42);
  sim::Payload buf = w.take();
  buf.resize(4);
  Reader r(buf);
  EXPECT_THROW(r.u64(), WireError);
}

TEST(Wire, TruncatedStringThrows) {
  Writer w;
  w.str("hello");
  sim::Payload buf = w.take();
  buf.resize(6);  // length prefix says 5 but only 2 bytes remain
  Reader r(buf);
  EXPECT_THROW(r.str(), WireError);
}

TEST(Wire, InsaneVectorCountRejected) {
  Writer w;
  w.u32(0xffffffff);  // 4 billion elements in a 4-byte buffer
  sim::Payload buf = w.take();
  Reader r(buf);
  EXPECT_THROW(r.vec<uint8_t>([](Reader& r2) { return r2.u8(); }), WireError);
}

TEST(Wire, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  sim::Payload buf = w.take();
  Reader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), WireError);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Wire, EmptyBufferReads) {
  sim::Payload empty;
  Reader r(empty);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), WireError);
}

}  // namespace
