#include "net/rpc.h"

#include <gtest/gtest.h>

namespace {

/// Server that answers requests with a transformation, optionally delayed
/// or silently dropped.
class TestServer : public net::RpcNode {
 public:
  TestServer(sim::Network& net, sim::HostId host, sim::Port port)
      : net::RpcNode(net, host, port, "server") {}

  void on_request(sim::Payload request, sim::Endpoint from,
                  uint64_t rpc_id) override {
    ++requests;
    if (drop_next) {
      drop_next = false;
      return;
    }
    std::vector<uint8_t> bytes(request.begin(), request.end());
    bytes.push_back(0xff);
    sim::Payload reply = sim::Payload::adopt(std::move(bytes));
    if (delay.us > 0) {
      set_timer(delay, [this, from, rpc_id, reply] {
        respond(from, rpc_id, reply);
      });
    } else {
      respond(from, rpc_id, reply);
    }
  }
  int requests = 0;
  bool drop_next = false;
  sim::Duration delay{0};
};

class TestClient : public net::RpcNode {
 public:
  TestClient(sim::Network& net, sim::HostId host, sim::Port port)
      : net::RpcNode(net, host, port, "client") {}
  void on_request(sim::Payload, sim::Endpoint, uint64_t) override {}
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : sim_(1),
        net_(sim_, sim::NetworkConfig{}),
        server_host_(net_.add_host("s").id()),
        client_host_(net_.add_host("c").id()),
        server_(net_, server_host_, 100),
        client_(net_, client_host_, 101) {}

  sim::Simulation sim_;
  sim::Network net_;
  sim::HostId server_host_, client_host_;
  TestServer server_;
  TestClient client_;
};

TEST_F(RpcTest, RequestResponse) {
  std::optional<sim::Payload> got;
  client_.call({server_host_, 100}, {1, 2},
               [&](std::optional<sim::Payload> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (sim::Payload{1, 2, 0xff}));
}

TEST_F(RpcTest, ConcurrentCallsRouteCorrectly) {
  std::vector<sim::Payload> replies(10);
  for (uint8_t i = 0; i < 10; ++i) {
    client_.call({server_host_, 100}, {i},
                 [&replies, i](std::optional<sim::Payload> r) {
                   ASSERT_TRUE(r.has_value());
                   replies[i] = *r;
                 });
  }
  sim_.run();
  for (uint8_t i = 0; i < 10; ++i)
    EXPECT_EQ(replies[i], (sim::Payload{i, 0xff}));
}

TEST_F(RpcTest, TimeoutYieldsNullopt) {
  net_.crash_host(server_host_);
  bool called = false;
  std::optional<sim::Payload> got{sim::Payload{9}};
  net::CallOptions options;
  options.timeout = sim::msec(100);
  client_.call({server_host_, 100}, {1},
               [&](std::optional<sim::Payload> r) {
                 called = true;
                 got = std::move(r);
               },
               options);
  sim_.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST_F(RpcTest, RetrySucceedsAfterDrop) {
  server_.drop_next = true;
  net::CallOptions options;
  options.timeout = sim::msec(100);
  options.attempts = 2;
  std::optional<sim::Payload> got;
  client_.call({server_host_, 100}, {5},
               [&](std::optional<sim::Payload> r) { got = std::move(r); },
               options);
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(server_.requests, 2);
}

TEST_F(RpcTest, DeferredResponseArrives) {
  server_.delay = sim::msec(50);
  std::optional<sim::Payload> got;
  client_.call({server_host_, 100}, {5},
               [&](std::optional<sim::Payload> r) { got = std::move(r); });
  sim_.run();
  ASSERT_TRUE(got.has_value());
}

TEST_F(RpcTest, LateResponseAfterTimeoutIgnored) {
  server_.delay = sim::msec(500);
  net::CallOptions options;
  options.timeout = sim::msec(100);
  int calls = 0;
  client_.call({server_host_, 100}, {5},
               [&](std::optional<sim::Payload> r) {
                 ++calls;
                 EXPECT_FALSE(r.has_value());
               },
               options);
  sim_.run();
  EXPECT_EQ(calls, 1) << "handler fires exactly once";
}

TEST_F(RpcTest, ClientCrashDropsPendingHandlers) {
  server_.delay = sim::msec(50);
  bool called = false;
  client_.call({server_host_, 100}, {5},
               [&](std::optional<sim::Payload>) { called = true; });
  net_.crash_host(client_host_);
  sim_.run();
  EXPECT_FALSE(called) << "no callbacks after crash";
}

TEST_F(RpcTest, FailPendingCallsFiresNullopt) {
  server_.delay = sim::seconds(10);
  int calls = 0;
  client_.call({server_host_, 100}, {5},
               [&](std::optional<sim::Payload> r) {
                 ++calls;
                 EXPECT_FALSE(r.has_value());
               });
  sim_.run_for(sim::msec(10));
  client_.fail_pending_calls();
  sim_.run_for(sim::seconds(20));
  EXPECT_EQ(calls, 1);
}

TEST_F(RpcTest, MalformedPacketIgnored) {
  client_.send({server_host_, 100}, {0x77, 0x01});  // unknown frame kind
  sim_.run();
  EXPECT_EQ(server_.requests, 0);
}

}  // namespace
