// ShardMap edge cases: the partition function must degenerate exactly to
// today's single-group routing, refuse ids no shard can own, and place
// deterministically -- every router and head computing the same answer is
// what stands in for a replicated directory service.
#include "fed/shard_map.h"

#include <gtest/gtest.h>

#include "joshua/server.h"
#include "util/config.h"
#include "util/rng.h"

namespace {

using fed::ShardMap;
using fed::ShardMapConfig;

TEST(ShardMap, SingleShardDegeneratesToTodaysRouting) {
  // Default-constructed and explicit 1-shard maps behave like the
  // monolithic cluster: every id owned by the one group, every queue
  // placed there, ids numbered from 1.
  ShardMap def;
  ShardMapConfig one;
  one.shard_count = 1;
  ShardMap explicit_one(one);
  for (const ShardMap* map : {&def, &explicit_one}) {
    EXPECT_EQ(map->shard_count(), 1u);
    EXPECT_TRUE(map->single_shard());
    EXPECT_FALSE(map->routes_by_queue());
    EXPECT_EQ(map->first_id(0), 1u);
    EXPECT_EQ(map->owner_of(1), 0u);
    EXPECT_EQ(map->owner_of(123456789), 0u);
    EXPECT_EQ(map->place("batch"), 0u);
    EXPECT_EQ(map->place("anything", 77), 0u);
  }
  EXPECT_FALSE(def.owner_of(pbs::kInvalidJob).has_value());
}

TEST(ShardMap, OwnerOfMatchesIdBlocks) {
  ShardMapConfig cfg;
  cfg.shard_count = 4;
  cfg.id_stride = 100;
  ShardMap map(cfg);
  EXPECT_EQ(map.first_id(0), 1u);
  EXPECT_EQ(map.first_id(3), 301u);
  EXPECT_EQ(map.owner_of(1), 0u);
  EXPECT_EQ(map.owner_of(100), 0u);
  EXPECT_EQ(map.owner_of(101), 1u);
  EXPECT_EQ(map.owner_of(400), 3u);
}

TEST(ShardMap, UnknownIdsRejected) {
  ShardMapConfig cfg;
  cfg.shard_count = 4;
  cfg.id_stride = 100;
  ShardMap map(cfg);
  // Beyond every shard's block: no shard can ever have issued these.
  EXPECT_FALSE(map.owner_of(pbs::kInvalidJob).has_value());
  EXPECT_FALSE(map.owner_of(401).has_value());
  EXPECT_FALSE(map.owner_of(100000).has_value());
}

TEST(ShardMap, AgreesWithServerSideShardIdentity) {
  // The router's owner_of and the server's owns() are the same partition
  // evaluated at the two ends of the wire; they must never disagree.
  ShardMapConfig cfg;
  cfg.shard_count = 3;
  cfg.id_stride = 50;
  ShardMap map(cfg);
  for (uint32_t s = 0; s < 3; ++s) {
    joshua::ShardIdentity ident;
    ident.shard = s;
    ident.count = 3;
    ident.id_stride = 50;
    for (pbs::JobId id = 1; id <= 160; ++id)
      EXPECT_EQ(map.owner_of(id) == std::optional<uint32_t>(s),
                ident.owns(id))
          << "id " << id << " shard " << s;
  }
}

TEST(ShardMap, QueueGlobRouting) {
  ShardMapConfig cfg;
  cfg.shard_count = 3;
  cfg.queue_globs = {{"batch*"}, {"debug", "interactive"}, {"*"}};
  ShardMap map(cfg);
  EXPECT_TRUE(map.routes_by_queue());
  EXPECT_EQ(map.place("batch"), 0u);
  EXPECT_EQ(map.place("batch_long"), 0u);
  EXPECT_EQ(map.place("debug"), 1u);
  EXPECT_EQ(map.place("interactive"), 1u);
  EXPECT_EQ(map.place("gpu"), 2u) << "catch-all shard takes the rest";
  // Salt must not perturb glob routing -- queue ownership is a contract.
  EXPECT_EQ(map.place("batch", 999), 0u);
}

TEST(ShardMap, DeterministicHashPlacementProperty) {
  // Property, 3 seeds: two maps built from the same config agree on every
  // placement, the placement is within range, and spreading actually
  // happens (no shard starves over a few hundred draws).
  for (uint64_t seed : {7u, 19u, 23u}) {
    jutil::Rng rng(seed);
    ShardMapConfig cfg;
    cfg.shard_count = static_cast<uint32_t>(rng.uniform(2, 8));
    ShardMap a(cfg), b(cfg);
    std::vector<uint64_t> hits(cfg.shard_count, 0);
    for (int i = 0; i < 400; ++i) {
      std::string queue = "q" + std::to_string(rng.next_u64(1u << 20));
      uint64_t salt = rng.next_u64(1ull << 40);
      uint32_t placed = a.place(queue, salt);
      EXPECT_EQ(placed, b.place(queue, salt)) << "seed " << seed;
      ASSERT_LT(placed, cfg.shard_count);
      ++hits[placed];
    }
    for (uint32_t s = 0; s < cfg.shard_count; ++s)
      EXPECT_GT(hits[s], 0u) << "seed " << seed << " starved shard " << s;
  }
}

TEST(ShardMap, ValidationRejectsBadPartitions) {
  ShardMapConfig zero_shards;
  zero_shards.shard_count = 0;
  EXPECT_THROW(ShardMap{zero_shards}, jutil::ConfigError);

  ShardMapConfig zero_stride;
  zero_stride.shard_count = 2;
  zero_stride.id_stride = 0;
  EXPECT_THROW(ShardMap{zero_stride}, jutil::ConfigError);

  ShardMapConfig wrong_arity;
  wrong_arity.shard_count = 3;
  wrong_arity.queue_globs = {{"a"}, {"*"}};
  EXPECT_THROW(ShardMap{wrong_arity}, jutil::ConfigError);

  ShardMapConfig empty_list;
  empty_list.shard_count = 2;
  empty_list.queue_globs = {{"batch*"}, {}};
  EXPECT_THROW(ShardMap{empty_list}, jutil::ConfigError);

  ShardMapConfig duplicate;
  duplicate.shard_count = 2;
  duplicate.queue_globs = {{"batch"}, {"batch", "*"}};
  EXPECT_THROW(ShardMap{duplicate}, jutil::ConfigError);

  // A literal name one shard claims that another shard's glob also matches:
  // both would accept submits to "batch9".
  ShardMapConfig overlap;
  overlap.shard_count = 2;
  overlap.queue_globs = {{"batch*", "*"}, {"batch9"}};
  EXPECT_THROW(ShardMap{overlap}, jutil::ConfigError);

  // No catch-all: a queue matching no glob would have no owner.
  ShardMapConfig uncovered;
  uncovered.shard_count = 2;
  uncovered.queue_globs = {{"batch*"}, {"debug*"}};
  EXPECT_THROW(ShardMap{uncovered}, jutil::ConfigError);
}

}  // namespace
