// Federation integration: independent ordering groups per shard behind the
// router. Covers routed submits (glob and hash placement), the merged
// jstat-all read, the mass delete, misrouted-id rejection at both the
// router and the server, and the jstat local-read fast path.
#include "fed/federation.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace {

fed::FederationOptions fast_fed(int shards, int heads_per_shard,
                                int computes_per_shard, uint64_t seed = 1) {
  fed::FederationOptions options;
  options.shard_count = shards;
  options.heads_per_shard = heads_per_shard;
  options.computes_per_shard = computes_per_shard;
  options.cal = sim::fast_calibration();
  options.seed = seed;
  return options;
}

pbs::JobSpec queued_job(const std::string& queue,
                        sim::Duration run_time = sim::seconds(300)) {
  pbs::JobSpec spec;
  spec.name = "t";
  spec.queue = queue;
  spec.run_time = run_time;
  return spec;
}

pbs::JobId jsub_sync(fed::Federation& f, fed::Router& router,
                     pbs::JobSpec spec) {
  std::optional<pbs::SubmitResponse> resp;
  bool done = false;
  router.jsub(std::move(spec), [&](std::optional<pbs::SubmitResponse> r) {
    done = true;
    resp = r;
  });
  testutil::run_until(f.sim(), [&] { return done; }, sim::seconds(60));
  if (!resp || resp->status != pbs::Status::kOk) return pbs::kInvalidJob;
  return resp->job_id;
}

TEST(Federation, SingleShardMatchesMonolithicNumbering) {
  fed::Federation f(fast_fed(1, 2, 1));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();
  // No sharding: ids come out 1, 2, 3 exactly as joshua::Cluster hands
  // them out -- the behaviour-identical default the baselines depend on.
  EXPECT_EQ(jsub_sync(f, router, queued_job("batch")), 1u);
  EXPECT_EQ(jsub_sync(f, router, queued_job("debug")), 2u);
  EXPECT_EQ(jsub_sync(f, router, queued_job("gpu")), 3u);
  EXPECT_EQ(router.stats().rejects, 0u);
}

TEST(Federation, GlobRoutedSubmitsLandInOwningShards) {
  fed::FederationOptions options = fast_fed(2, 2, 1);
  options.queue_globs = {{"batch*"}, {"*"}};
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();

  pbs::JobId batch_id = jsub_sync(f, router, queued_job("batch"));
  pbs::JobId debug_id = jsub_sync(f, router, queued_job("debug"));
  ASSERT_NE(batch_id, pbs::kInvalidJob);
  ASSERT_NE(debug_id, pbs::kInvalidJob);
  EXPECT_EQ(f.shard_map().owner_of(batch_id), 0u);
  EXPECT_EQ(f.shard_map().owner_of(debug_id), 1u);
  EXPECT_EQ(batch_id, f.shard_map().first_id(0));
  EXPECT_EQ(debug_id, f.shard_map().first_id(1));

  // Every replica of the owning shard has the job; the other shard's
  // replicas have never heard of it -- the groups share nothing.
  for (size_t h = 0; h < f.head_count(); ++h) {
    bool owner = f.shard_of_head(h) == 0;
    EXPECT_EQ(f.pbs_server(h).find_job(batch_id).has_value(), owner)
        << "head " << h;
  }
}

TEST(Federation, JstatAllMergesShardsSortedById) {
  fed::FederationOptions options = fast_fed(2, 2, 1);
  options.queue_globs = {{"batch*"}, {"*"}};
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();

  pbs::JobId debug_id = jsub_sync(f, router, queued_job("debug"));
  pbs::JobId batch_id = jsub_sync(f, router, queued_job("batch"));
  ASSERT_NE(debug_id, pbs::kInvalidJob);
  ASSERT_NE(batch_id, pbs::kInvalidJob);

  std::optional<pbs::StatResponse> all;
  bool done = false;
  pbs::StatRequest req;  // job_id = 0: every shard
  router.jstat(req, [&](std::optional<pbs::StatResponse> r) {
    done = true;
    all = std::move(r);
  });
  testutil::run_until(f.sim(), [&] { return done; }, sim::seconds(60));
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->status, pbs::Status::kOk);
  ASSERT_EQ(all->jobs.size(), 2u);
  // batch_id (shard 0's block) sorts before debug_id (shard 1's block)
  // even though the debug job was submitted first.
  EXPECT_EQ(all->jobs[0].id, batch_id);
  EXPECT_EQ(all->jobs[1].id, debug_id);
  EXPECT_EQ(router.stats().fanouts, 1u);
  EXPECT_EQ(router.stats().fanout_reads, 2u);
}

TEST(Federation, MassDeleteSpansShards) {
  fed::FederationOptions options = fast_fed(2, 2, 1);
  options.queue_globs = {{"batch*"}, {"*"}};
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();

  std::vector<pbs::JobId> ids;
  ids.push_back(jsub_sync(f, router, queued_job("batch")));
  ids.push_back(jsub_sync(f, router, queued_job("batch2")));
  ids.push_back(jsub_sync(f, router, queued_job("debug")));
  for (pbs::JobId id : ids) ASSERT_NE(id, pbs::kInvalidJob);

  std::optional<uint64_t> deleted;
  bool done = false;
  router.jdel_all([&](std::optional<uint64_t> n) {
    done = true;
    deleted = n;
  });
  testutil::run_until(f.sim(), [&] { return done; }, sim::seconds(120));
  ASSERT_TRUE(deleted.has_value());
  EXPECT_EQ(*deleted, 3u);
  EXPECT_EQ(router.stats().mass_deleted, 3u);
  for (pbs::JobId id : ids) {
    auto job = f.pbs_server(0).find_job(id);
    if (!job) job = f.pbs_server(2).find_job(id);
    ASSERT_TRUE(job.has_value());
    EXPECT_TRUE(job->cancelled) << "job " << id;
  }
}

TEST(Federation, MisroutedIdsRejectedAtBothLayers) {
  fed::FederationOptions options = fast_fed(2, 2, 1);
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();
  pbs::JobId id = jsub_sync(f, router, queued_job("batch"));
  ASSERT_NE(id, pbs::kInvalidJob);

  // Router layer: an id beyond every shard's block never touches the wire.
  pbs::JobId impossible = f.shard_map().first_id(2) + 7;
  std::optional<pbs::SimpleResponse> resp;
  bool done = false;
  router.jdel(impossible, [&](std::optional<pbs::SimpleResponse> r) {
    done = true;
    resp = r;
  });
  EXPECT_TRUE(done) << "rejected locally, synchronously";
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, pbs::Status::kUnknownJob);
  EXPECT_EQ(router.stats().rejects, 1u);

  // Server layer: a direct client asking the wrong shard for a perfectly
  // valid id is turned away before the ordered path.
  uint32_t owner = *f.shard_map().owner_of(id);
  std::optional<pbs::StatResponse> stat;
  done = false;
  pbs::StatRequest req;
  req.job_id = id;
  router.client(1 - owner).jstat(req, [&](std::optional<pbs::StatResponse> r) {
    done = true;
    stat = std::move(r);
  });
  testutil::run_until(f.sim(), [&] { return done; }, sim::seconds(60));
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->status, pbs::Status::kUnknownJob);
  uint64_t shard_rejects = 0;
  for (size_t h = 0; h < f.head_count(); ++h)
    shard_rejects += f.joshua_server(h).stats().shard_rejects;
  EXPECT_EQ(shard_rejects, 1u);
}

TEST(Federation, JstatLocalFastPathSkipsOrdering) {
  fed::FederationOptions options = fast_fed(2, 2, 1);
  options.jstat_local = true;
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();
  pbs::JobId id = jsub_sync(f, router, queued_job("batch"));
  ASSERT_NE(id, pbs::kInvalidJob);

  uint64_t ordered_before = 0;
  for (size_t h = 0; h < f.head_count(); ++h)
    ordered_before += f.joshua_server(h).stats().commands_executed;

  std::optional<pbs::StatResponse> stat;
  bool done = false;
  pbs::StatRequest req;
  req.job_id = id;
  router.jstat(req, [&](std::optional<pbs::StatResponse> r) {
    done = true;
    stat = std::move(r);
  });
  testutil::run_until(f.sim(), [&] { return done; }, sim::seconds(60));
  ASSERT_TRUE(stat.has_value());
  ASSERT_EQ(stat->status, pbs::Status::kOk);
  ASSERT_EQ(stat->jobs.size(), 1u);
  EXPECT_EQ(stat->jobs[0].id, id);

  uint64_t served_local = 0, ordered_after = 0;
  for (size_t h = 0; h < f.head_count(); ++h) {
    served_local += f.joshua_server(h).stats().jstat_local_served;
    ordered_after += f.joshua_server(h).stats().commands_executed;
  }
  EXPECT_EQ(served_local, 1u) << "answered off the local replica";
  EXPECT_EQ(ordered_after, ordered_before)
      << "the read never entered the ordered path";
}

TEST(Federation, BatchedOrderingKeepsShardInvariants) {
  // The batching/window knobs must reach every shard's group and must not
  // disturb the per-shard replication invariants: every replica of a shard
  // agrees on its job set, no job leaks across shards, all submits land.
  fed::FederationOptions options = fast_fed(2, 2, 1);
  options.order_batch = 64;
  options.order_window = 16;
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  for (size_t h = 0; h < f.head_count(); ++h) {
    EXPECT_EQ(f.joshua_server(h).group().config().order_batch, 64u);
    EXPECT_EQ(f.joshua_server(h).group().config().inflight_window, 16u);
  }

  fed::Router& router = f.make_router();
  std::vector<pbs::JobId> ids;
  for (int i = 0; i < 24; ++i) {
    pbs::JobId id =
        jsub_sync(f, router, queued_job("q" + std::to_string(i % 6)));
    ASSERT_NE(id, pbs::kInvalidJob) << "submit " << i;
    ids.push_back(id);
  }
  f.sim().run_for(sim::seconds(2));  // let the ordered commands settle

  for (pbs::JobId id : ids) {
    std::optional<uint32_t> owner = f.shard_map().owner_of(id);
    ASSERT_TRUE(owner.has_value()) << "job " << id;
    for (size_t h = 0; h < f.head_count(); ++h) {
      EXPECT_EQ(f.pbs_server(h).find_job(id).has_value(),
                f.shard_of_head(h) == owner)
          << "job " << id << " at head " << h;
    }
  }
}

TEST(Federation, SurvivesHeadLossPerShard) {
  fed::FederationOptions options = fast_fed(2, 2, 1);
  fed::Federation f(std::move(options));
  f.start();
  ASSERT_TRUE(f.run_until_converged());
  fed::Router& router = f.make_router();
  ASSERT_NE(jsub_sync(f, router, queued_job("batch")), pbs::kInvalidJob);

  // Kill one head of shard 0; the shard reforms with its survivor and both
  // shards keep accepting commands. Shard 1 never notices.
  f.faults().crash_at(f.head_hosts()[0], f.sim().now() + sim::msec(10));
  f.sim().run_for(sim::msec(20));
  ASSERT_TRUE(f.run_until_converged());
  EXPECT_NE(jsub_sync(f, router, queued_job("batch")), pbs::kInvalidJob);
  EXPECT_NE(jsub_sync(f, router, queued_job("other")), pbs::kInvalidJob);
}

}  // namespace
