#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include "telemetry/scenario_report.h"
#include "telemetry/snapshot.h"
#include "telemetry/json_mini.h"
#include "util/stats.h"

namespace telemetry {
namespace {

TEST(Registry, CounterRoundTrip) {
  Registry reg;
  Counter a = reg.counter("a");
  a.add();
  a.add(41);
  EXPECT_EQ(a.value(), 42u);
  // Same name -> same cell.
  Counter a2 = reg.counter("a");
  a2.add(8);
  EXPECT_EQ(a.value(), 50u);
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value, 50u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
}

TEST(Registry, DefaultHandlesAreSafeNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(5);
  g.set(7);
  h.record(9);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.data(), nullptr);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry reg;
  Gauge g = reg.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Registry, HandlesSurviveRegistryGrowth) {
  Registry reg;
  Counter first = reg.counter("first");
  first.add(1);
  // Register enough metrics to force internal growth; the first handle's
  // cell must not move.
  for (int i = 0; i < 200; ++i)
    reg.counter("c" + std::to_string(i)).add(1);
  first.add(1);
  EXPECT_EQ(reg.find_counter("first")->value, 2u);
}

TEST(Histogram, ExactStatsAndBuckets) {
  HistogramData h;
  for (int64_t v : {1, 2, 3, 100, 1000}) h.record(v);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 1000);
  EXPECT_DOUBLE_EQ(h.mean(), (1 + 2 + 3 + 100 + 1000) / 5.0);
}

TEST(Histogram, EmptyIsZero) {
  HistogramData h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, PercentilesAreClampedToObservedRange) {
  HistogramData h;
  for (int i = 0; i < 1000; ++i) h.record(500);
  EXPECT_GE(h.percentile(0), 500.0 - 1e-9);
  EXPECT_LE(h.percentile(100), 500.0 + 1e-9);
  EXPECT_GE(h.percentile(50), h.min);
  EXPECT_LE(h.percentile(50), h.max);
}

TEST(Histogram, PercentileOrderingOnSpread) {
  HistogramData h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  double p50 = h.percentile(50);
  double p95 = h.percentile(95);
  double p99 = h.percentile(99);
  EXPECT_LT(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucket interpolation: p50 of uniform 1..10000 lands within the
  // right power-of-two bucket of the true median.
  EXPECT_GT(p50, 2048.0);
  EXPECT_LT(p50, 8192.0);
}

TEST(Histogram, NonPositiveSamplesLandInBucketZero) {
  HistogramData h;
  h.record(0);
  h.record(-5);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.min, -5);
  EXPECT_EQ(h.max, 0);
}

TEST(Snapshot, MetricsJsonParsesAndCarriesValues) {
  Registry reg;
  reg.counter("net.frames").add(7);
  reg.gauge("queue.depth").set(-3);
  Histogram h = reg.histogram("lat_us");
  for (int i = 1; i <= 100; ++i) h.record(i);

  auto doc = json_mini::parse(metrics_json(reg));
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->at("counters")->at("net.frames")->number, 7.0);
  EXPECT_DOUBLE_EQ(doc->at("gauges")->at("queue.depth")->number, -3.0);
  const auto& lat = doc->at("histograms")->at("lat_us");
  EXPECT_DOUBLE_EQ(lat->at("count")->number, 100.0);
  EXPECT_DOUBLE_EQ(lat->at("min")->number, 1.0);
  EXPECT_DOUBLE_EQ(lat->at("max")->number, 100.0);
}

TEST(Snapshot, TableMentionsEveryMetric) {
  Registry reg;
  reg.counter("alpha.count").add(1);
  reg.histogram("beta.lat_us").record(10);
  std::string table = render_metrics_table(reg);
  EXPECT_NE(table.find("alpha.count"), std::string::npos);
  EXPECT_NE(table.find("beta.lat_us"), std::string::npos);
}

TEST(ScenarioReport, FlatJsonRoundTrip) {
  ScenarioReport report;
  report.set("alpha", 1.5);
  report.set("beta", 42);
  jutil::Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  report.note_samples("lat_ms", s);

  EXPECT_TRUE(report.has("alpha"));
  EXPECT_FALSE(report.has("gamma"));
  EXPECT_DOUBLE_EQ(report.get("beta"), 42.0);

  auto doc = json_mini::parse(report.json());
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->at("alpha")->number, 1.5);
  EXPECT_DOUBLE_EQ(doc->at("lat_ms.count")->number, 100.0);
  EXPECT_DOUBLE_EQ(doc->at("lat_ms.max")->number, 100.0);
}

TEST(ScenarioReport, NoteMetricsFoldsWholeRegistry) {
  Registry reg;
  reg.counter("x.total").add(3);
  reg.histogram("y.lat_us").record(8);
  ScenarioReport report;
  report.note_metrics(reg);
  EXPECT_DOUBLE_EQ(report.get("x.total"), 3.0);
  EXPECT_DOUBLE_EQ(report.get("y.lat_us.count"), 1.0);
  EXPECT_DOUBLE_EQ(report.get("y.lat_us.max"), 8.0);
}

TEST(ScenarioReport, JsonEscapesAwkwardNames) {
  ScenarioReport report;
  report.set("weird\"name\\with\nstuff", 1);
  auto doc = json_mini::parse(report.json());
  EXPECT_DOUBLE_EQ(doc->at("weird\"name\\with\nstuff")->number, 1.0);
}

}  // namespace
}  // namespace telemetry
