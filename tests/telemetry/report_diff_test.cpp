// Unit tests for the report comparator behind tools/report_diff: the flat
// JSON parser, glob matching, rules parsing, and the gate semantics the CI
// regression job depends on (identical reports pass, an injected
// over-tolerance regression fails).
#include <gtest/gtest.h>

#include <stdexcept>

#include "telemetry/report_diff.h"
#include "telemetry/scenario_report.h"

namespace {

using telemetry::DiffEntry;
using telemetry::DiffOptions;
using telemetry::DiffResult;
using telemetry::Direction;
using telemetry::FlatJson;
using telemetry::ToleranceRule;

// ---------------------------------------------------------------------------
// parse_flat_json
// ---------------------------------------------------------------------------

TEST(FlatJsonParser, FlatObjectNumbersAndStrings) {
  FlatJson f = telemetry::parse_flat_json(
      R"({"a": 1.5, "b": -2e3, "meta.scenario": "longevity"})");
  EXPECT_DOUBLE_EQ(f.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(f.get("b"), -2000.0);
  EXPECT_EQ(f.strings.at("meta.scenario"), "longevity");
  EXPECT_FALSE(f.has("c"));
}

TEST(FlatJsonParser, NestedObjectsFlattenWithDots) {
  FlatJson f = telemetry::parse_flat_json(
      R"({"before": {"events_per_sec": 10, "deep": {"x": 1}}, "speedup": 2})");
  EXPECT_DOUBLE_EQ(f.get("before.events_per_sec"), 10.0);
  EXPECT_DOUBLE_EQ(f.get("before.deep.x"), 1.0);
  EXPECT_DOUBLE_EQ(f.get("speedup"), 2.0);
}

TEST(FlatJsonParser, ArraysFlattenWithIndices) {
  FlatJson f = telemetry::parse_flat_json(R"({"xs": [1, 2, {"y": 3}]})");
  EXPECT_DOUBLE_EQ(f.get("xs.0"), 1.0);
  EXPECT_DOUBLE_EQ(f.get("xs.1"), 2.0);
  EXPECT_DOUBLE_EQ(f.get("xs.2.y"), 3.0);
}

TEST(FlatJsonParser, BoolsBecomeNumbersNullsSkipped) {
  FlatJson f = telemetry::parse_flat_json(R"({"t": true, "f": false, "n": null})");
  EXPECT_DOUBLE_EQ(f.get("t"), 1.0);
  EXPECT_DOUBLE_EQ(f.get("f"), 0.0);
  EXPECT_FALSE(f.has("n"));
}

TEST(FlatJsonParser, RejectsMalformedInput) {
  EXPECT_THROW(telemetry::parse_flat_json("{"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_flat_json(R"({"a": })"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_flat_json(R"([1, 2])"), std::runtime_error);
  EXPECT_THROW(telemetry::parse_flat_json(R"({"a": 1} trailing)"),
               std::runtime_error);
}

TEST(FlatJsonParser, UnicodeEscapesDecodeToUtf8) {
  FlatJson f = telemetry::parse_flat_json(
      R"({"ascii": "\u0041", "latin": "\u00e9", "bmp": "\u20ac",)"
      R"( "astral": "\ud83d\ude00"})");
  EXPECT_EQ(f.strings.at("ascii"), "A");
  EXPECT_EQ(f.strings.at("latin"), "\xC3\xA9");           // é
  EXPECT_EQ(f.strings.at("bmp"), "\xE2\x82\xAC");         // €
  EXPECT_EQ(f.strings.at("astral"), "\xF0\x9F\x98\x80");  // 😀
}

TEST(FlatJsonParser, RejectsUnpairedSurrogates) {
  EXPECT_THROW(telemetry::parse_flat_json(R"({"a": "\ud83d"})"),
               std::runtime_error);
  EXPECT_THROW(telemetry::parse_flat_json(R"({"a": "\ud83dA"})"),
               std::runtime_error);
  EXPECT_THROW(telemetry::parse_flat_json(R"({"a": "\ude00"})"),
               std::runtime_error);
}

TEST(FlatJsonParser, RoundTripsScenarioReport) {
  telemetry::ScenarioReport report;
  report.set("scenario.jsub_accepted", 1234);
  report.set("latency.p95", 17.25);
  report.set_meta("seed", "42");
  FlatJson f = telemetry::parse_flat_json(report.json());
  EXPECT_DOUBLE_EQ(f.get("scenario.jsub_accepted"), 1234.0);
  EXPECT_DOUBLE_EQ(f.get("latency.p95"), 17.25);
  EXPECT_EQ(f.strings.at("meta.seed"), "42");
}

// ---------------------------------------------------------------------------
// glob_match
// ---------------------------------------------------------------------------

TEST(GlobMatch, LiteralAndStar) {
  EXPECT_TRUE(telemetry::glob_match("demo_passed", "demo_passed"));
  EXPECT_FALSE(telemetry::glob_match("demo_passed", "demo_passed2"));
  EXPECT_TRUE(telemetry::glob_match("*", "anything.at.all"));
  EXPECT_TRUE(telemetry::glob_match("joshua.*", "joshua.commands_intercepted"));
  EXPECT_FALSE(telemetry::glob_match("joshua.*", "gcs.delivered"));
  EXPECT_TRUE(telemetry::glob_match("*.p95", "joshua.intercept_us.p95"));
  EXPECT_TRUE(telemetry::glob_match("joshua.*.p95", "joshua.intercept_us.p95"));
  EXPECT_FALSE(telemetry::glob_match("joshua.*.p95", "joshua.intercept_us.p99"));
  // '*' may match the empty run.
  EXPECT_TRUE(telemetry::glob_match("a*b", "ab"));
  // Backtracking: the first '*' must be able to give characters back.
  EXPECT_TRUE(telemetry::glob_match("*ab*ab", "abab"));
  EXPECT_TRUE(telemetry::glob_match("*x*y", "axbxcy"));
}

// ---------------------------------------------------------------------------
// parse_rules
// ---------------------------------------------------------------------------

TEST(ParseRules, DefaultsAndRules) {
  DiffOptions o = telemetry::parse_rules(R"({
    "default": {"rel_band": 0.1, "abs_band": 0.5, "direction": "lower_is_better"},
    "rules": [
      {"pattern": "demo_passed", "required": true},
      {"pattern": "net.*", "ignore": true},
      {"pattern": "*_per_sec", "rel_band": 0.4, "direction": "higher_is_better"}
    ]
  })");
  EXPECT_DOUBLE_EQ(o.default_rel_band, 0.1);
  EXPECT_DOUBLE_EQ(o.default_abs_band, 0.5);
  EXPECT_EQ(o.default_direction, Direction::kLowerIsBetter);
  ASSERT_EQ(o.rules.size(), 3u);
  EXPECT_EQ(o.rules[0].pattern, "demo_passed");
  EXPECT_TRUE(o.rules[0].required);
  EXPECT_TRUE(o.rules[1].ignore);
  EXPECT_EQ(o.rules[2].direction, Direction::kHigherIsBetter);
  EXPECT_DOUBLE_EQ(o.rules[2].rel_band, 0.4);
}

TEST(ParseRules, RejectsUnknownFieldsAndBadDirection) {
  EXPECT_THROW(telemetry::parse_rules(R"({"rules": [{"patern": "x"}]})"),
               std::runtime_error);
  EXPECT_THROW(
      telemetry::parse_rules(R"({"default": {"rel_brand": 0.1}})"),
      std::runtime_error);
  EXPECT_THROW(telemetry::parse_rules(
                   R"({"rules": [{"pattern": "x", "direction": "sideways"}]})"),
               std::runtime_error);
}

TEST(ParseRules, AllowsCommentKeys) {
  DiffOptions o = telemetry::parse_rules(R"({
    "_comment": "wall-clock bench: wide bands",
    "rules": [{"pattern": "x", "_why": "exact", "abs_band": 0}]
  })");
  ASSERT_EQ(o.rules.size(), 1u);
  EXPECT_EQ(o.rules[0].pattern, "x");
}

// ---------------------------------------------------------------------------
// diff_reports: the gate semantics
// ---------------------------------------------------------------------------

FlatJson flat(std::initializer_list<std::pair<const char*, double>> kv) {
  FlatJson f;
  for (const auto& [k, v] : kv) f.numbers.emplace(k, v);
  return f;
}

TEST(DiffReports, IdenticalReportsPass) {
  FlatJson a = flat({{"x", 1.0}, {"y", 0.0}, {"z", -5.5}});
  DiffResult r = telemetry::diff_reports(a, a, DiffOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 3u);
  EXPECT_EQ(r.regressed, 0u);
}

TEST(DiffReports, InjectedRegressionFails) {
  FlatJson base = flat({{"latency.p95", 100.0}});
  FlatJson cur = flat({{"latency.p95", 140.0}});
  DiffOptions o;
  o.default_rel_band = 0.25;
  o.default_direction = Direction::kLowerIsBetter;
  DiffResult r = telemetry::diff_reports(base, cur, o);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].status, DiffEntry::Status::kRegressed);
  EXPECT_DOUBLE_EQ(r.entries[0].delta, 40.0);
}

TEST(DiffReports, WithinEitherBandPasses) {
  // 100 -> 110: outside the 5% rel band but inside the abs band of 20.
  FlatJson base = flat({{"m", 100.0}});
  FlatJson cur = flat({{"m", 110.0}});
  DiffOptions o;
  o.default_rel_band = 0.05;
  o.default_abs_band = 20.0;
  EXPECT_TRUE(telemetry::diff_reports(base, cur, o).ok());
  // Near-zero baseline: any rel band is useless; abs band judges it.
  FlatJson zb = flat({{"allocs", 0.0}});
  FlatJson zc = flat({{"allocs", 0.4}});
  DiffOptions zo;
  zo.default_rel_band = 0.5;
  zo.default_abs_band = 0.5;
  EXPECT_TRUE(telemetry::diff_reports(zb, zc, zo).ok());
  zo.default_abs_band = 0.1;
  EXPECT_FALSE(telemetry::diff_reports(zb, zc, zo).ok());
}

TEST(DiffReports, DirectionGatesOnlyBadChanges) {
  FlatJson base = flat({{"throughput", 100.0}});
  FlatJson up = flat({{"throughput", 200.0}});
  FlatJson down = flat({{"throughput", 50.0}});
  DiffOptions o;
  o.rules.push_back({"throughput", 0.0, 0.1, Direction::kHigherIsBetter,
                     false, false});
  DiffResult r_up = telemetry::diff_reports(base, up, o);
  EXPECT_TRUE(r_up.ok());
  EXPECT_EQ(r_up.entries[0].status, DiffEntry::Status::kImproved);
  EXPECT_EQ(r_up.improved, 1u);
  DiffResult r_down = telemetry::diff_reports(base, down, o);
  EXPECT_FALSE(r_down.ok());
}

TEST(DiffReports, FirstMatchingRuleWins) {
  FlatJson base = flat({{"a.b", 100.0}});
  FlatJson cur = flat({{"a.b", 150.0}});
  DiffOptions o;
  o.rules.push_back({"a.*", 0.0, 1.0, Direction::kBoth, false, false});
  o.rules.push_back({"a.b", 0.0, 0.0, Direction::kBoth, false, false});
  // The generous "a.*" rule is first, so the exact rule never applies.
  EXPECT_TRUE(telemetry::diff_reports(base, cur, o).ok());
}

TEST(DiffReports, MissingKeyFailsTheGate) {
  FlatJson base = flat({{"x", 1.0}, {"gone", 2.0}});
  FlatJson cur = flat({{"x", 1.0}});
  DiffResult r = telemetry::diff_reports(base, cur, DiffOptions{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.missing, 1u);
  DiffOptions lax;
  lax.fail_on_missing = false;
  EXPECT_TRUE(telemetry::diff_reports(base, cur, lax).ok());
}

TEST(DiffReports, RequiredRuleCatchesKeyAbsentFromBothReports) {
  // A literal required pattern matching nothing at all must still fail:
  // that is how the gate notices a report that stopped emitting its
  // pass/fail marker entirely.
  FlatJson base = flat({{"x", 1.0}});
  FlatJson cur = flat({{"x", 1.0}});
  DiffOptions o;
  o.rules.push_back({"demo_passed", 0.0, 0.0, Direction::kBoth, true, false});
  DiffResult r = telemetry::diff_reports(base, cur, o);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.missing, 1u);
}

TEST(DiffReports, IgnoredAndExtraKeysDoNotGate) {
  FlatJson base = flat({{"noisy", 1.0}});
  FlatJson cur = flat({{"noisy", 99.0}, {"brand_new", 5.0}});
  DiffOptions o;
  o.rules.push_back({"noisy", 0.0, 0.0, Direction::kBoth, false, true});
  DiffResult r = telemetry::diff_reports(base, cur, o);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 0u);
  bool saw_ignored = false, saw_extra = false;
  for (const auto& e : r.entries) {
    if (e.status == DiffEntry::Status::kIgnored) saw_ignored = true;
    if (e.status == DiffEntry::Status::kExtra) saw_extra = true;
  }
  EXPECT_TRUE(saw_ignored);
  EXPECT_TRUE(saw_extra);
}

TEST(RenderDiff, NamesRegressionsInOutput) {
  FlatJson base = flat({{"latency.p95", 100.0}, {"gone", 1.0}});
  FlatJson cur = flat({{"latency.p95", 200.0}});
  DiffResult r = telemetry::diff_reports(base, cur, DiffOptions{});
  std::string out = telemetry::render_diff(r);
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.find("latency.p95"), std::string::npos);
  EXPECT_NE(out.find("MISSING"), std::string::npos);
  EXPECT_NE(out.find("gone"), std::string::npos);
}

TEST(RenderDiff, LongMetricNamesKeepNumericColumns) {
  std::string name(300, 'x');
  FlatJson base = flat({{name.c_str(), 100.0}});
  FlatJson cur = flat({{name.c_str(), 200.0}});
  DiffResult r = telemetry::diff_reports(base, cur, DiffOptions{});
  std::string out = telemetry::render_diff(r);
  EXPECT_NE(out.find(name), std::string::npos);
  EXPECT_NE(out.find("100 -> 200"), std::string::npos);
}

}  // namespace
