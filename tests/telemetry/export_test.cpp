// End-to-end telemetry validation: drive the failover_demo scenario (jobs
// submitted, a head crashed, a survivor serving, the head rejoining with a
// replay state transfer) through the Cluster harness, then validate the
// run's exports:
//   * the Chrome trace JSON is well-formed, per-track timestamps are
//     monotone, and every head node produced at least one event;
//   * the ScenarioReport JSON carries a populated joshua
//     intercept->reply latency histogram and a nonzero replay counter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "joshua/cluster.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/json_mini.h"
#include "telemetry/scenario_report.h"
#include "telemetry/snapshot.h"

namespace {

/// Runs the failover scenario once and shares the cluster across tests.
class TelemetryExportTest : public ::testing::Test {
 protected:
  static joshua::Cluster* cluster_;

  static void SetUpTestSuite() {
    joshua::ClusterOptions options;
    options.head_count = 3;
    options.compute_count = 2;
    cluster_ = new joshua::Cluster(options);
    joshua::Cluster& cluster = *cluster_;
    cluster.start();
    ASSERT_TRUE(cluster.run_until_converged());

    joshua::Client& client = cluster.make_jclient();
    int accepted = 0;
    for (int i = 0; i < 4; ++i) {
      pbs::JobSpec spec;
      spec.name = "workload-" + std::to_string(i);
      spec.run_time = sim::seconds(10);
      client.jsub(spec, [&](std::optional<pbs::SubmitResponse> r) {
        if (r && r->status == pbs::Status::kOk) ++accepted;
      });
    }
    cluster.sim().run_for(sim::seconds(5));
    ASSERT_EQ(accepted, 4);

    // Crash the coordinator mid-service, keep submitting, then repair it.
    cluster.net().crash_host(cluster.head_hosts()[0]);
    ASSERT_TRUE(cluster.run_until_converged());
    bool ok = false;
    pbs::JobSpec extra;
    extra.name = "during-outage";
    extra.run_time = sim::seconds(10);
    client.jsub(extra, [&](std::optional<pbs::SubmitResponse> r) {
      ok = r && r->status == pbs::Status::kOk;
    });
    // The client's per-head timeout is 8 s; give it time to rotate off the
    // dead head.
    cluster.sim().run_for(sim::seconds(20));
    ASSERT_TRUE(ok);

    cluster.net().restart_host(cluster.head_hosts()[0]);
    cluster.joshua_server(0).start();
    ASSERT_TRUE(cluster.run_until_converged(sim::seconds(60)));
    cluster.sim().run_for(sim::seconds(90));
  }

  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }

  static std::vector<std::string> host_names() {
    std::vector<std::string> names;
    for (sim::HostId h = 0; h < cluster_->net().host_count(); ++h)
      names.push_back(cluster_->net().host(h).name());
    return names;
  }
};

joshua::Cluster* TelemetryExportTest::cluster_ = nullptr;

TEST_F(TelemetryExportTest, ChromeTraceIsValid) {
  joshua::Cluster& cluster = *cluster_;
  telemetry::TraceBuffer& trace = cluster.sim().telemetry().trace();
  ASSERT_GT(trace.size(), 0u);

  auto doc = json_mini::parse(
      telemetry::chrome_trace_json(trace, host_names()));
  ASSERT_TRUE(doc->is_object());
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->array.size(), 0u);

  std::map<int64_t, int64_t> last_ts_by_track;
  std::map<int64_t, size_t> events_by_track;
  for (const auto& e : events->array) {
    ASSERT_TRUE(e->is_object());
    const std::string& ph = e->at("ph")->string;
    if (ph == "M") continue;  // metadata carries no timestamp ordering
    auto tid = static_cast<int64_t>(e->at("tid")->number);
    auto ts = static_cast<int64_t>(e->at("ts")->number);
    auto it = last_ts_by_track.find(tid);
    if (it != last_ts_by_track.end()) {
      EXPECT_GE(ts, it->second) << "track " << tid << " went backwards";
    }
    last_ts_by_track[tid] = ts;
    ++events_by_track[tid];
  }
  // Every head node must have produced at least one event (all three were
  // in service at some point during the scenario).
  for (sim::HostId head : cluster.head_hosts()) {
    EXPECT_GE(events_by_track[static_cast<int64_t>(head)], 1u)
        << "head host " << head << " produced no trace events";
  }
}

TEST_F(TelemetryExportTest, ChromeTraceFileRoundTrip) {
  joshua::Cluster& cluster = *cluster_;
  const std::string path = "export_test.trace.json";
  ASSERT_TRUE(telemetry::write_chrome_trace_file(
      path, cluster.sim().telemetry().trace(), host_names()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = json_mini::parse(buf.str());
  EXPECT_TRUE(doc->is_object());
  EXPECT_GT(doc->at("traceEvents")->array.size(), 0u);
  std::remove(path.c_str());
}

TEST_F(TelemetryExportTest, ScenarioReportCarriesJoshuaLatencies) {
  joshua::Cluster& cluster = *cluster_;
  telemetry::ScenarioReport report;
  report.set("demo_passed", 1);
  report.note_metrics(cluster.sim().telemetry().metrics());

  // The paper's headline metric: client command intercept -> ordered
  // execution -> relayed reply, as a populated latency histogram.
  EXPECT_GT(report.get("joshua.intercept_to_reply_us.count"), 0.0);
  EXPECT_GT(report.get("joshua.intercept_to_reply_us.mean"), 0.0);
  EXPECT_GE(report.get("joshua.intercept_to_reply_us.p95"),
            report.get("joshua.intercept_to_reply_us.p50"));
  // The rejoin replayed the command log.
  EXPECT_GT(report.get("joshua.replays_applied"), 0.0);
  // And nothing diverged while doing so.
  EXPECT_EQ(report.get("joshua.replay_divergence.head0"), 0.0);
  // The other layers observed the same run.
  EXPECT_GT(report.get("gcs.views_installed"), 0.0);
  EXPECT_GT(report.get("gcs.order_latency_us.count"), 0.0);
  EXPECT_GT(report.get("net.frames_sent"), 0.0);
  EXPECT_GT(report.get("pbs.jobs_completed"), 0.0);
  EXPECT_GT(report.get("joshua.mutex_grants"), 0.0);

  // Round-trip through a file, as CI consumes it.
  const std::string path = "export_test.report.json";
  ASSERT_TRUE(report.write_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = json_mini::parse(buf.str());
  ASSERT_TRUE(doc->is_object());
  EXPECT_GT(doc->at("joshua.intercept_to_reply_us.count")->number, 0.0);
  EXPECT_DOUBLE_EQ(doc->at("demo_passed")->number, 1.0);
  std::remove(path.c_str());
}

TEST(ScenarioReportMeta, MetaAndTraceAccountingExport) {
  telemetry::ScenarioReport report;
  report.set_meta("scenario", "unit");
  report.set_meta("seed", "17");
  report.set("x", 2.0);

  telemetry::TraceBuffer trace;
  trace.set_capacity(4);
  uint16_t cat_a = trace.intern("gcs.view");
  uint16_t cat_b = trace.intern("joshua.command");
  for (int64_t i = 0; i < 6; ++i) trace.instant(i, 0, cat_a);
  trace.instant(6, 0, cat_b);
  report.note_trace(trace);

  EXPECT_DOUBLE_EQ(report.get("telemetry.trace.recorded"), 7.0);
  EXPECT_DOUBLE_EQ(report.get("telemetry.trace.dropped_records"), 3.0);
  // Only categories that actually lost records get a breakdown entry.
  EXPECT_DOUBLE_EQ(report.get("telemetry.trace.dropped_records.gcs.view"),
                   3.0);
  EXPECT_FALSE(report.has("telemetry.trace.dropped_records.joshua.command"));

  // Meta keys serialize as JSON strings ahead of the numbers and parse back.
  std::string json = report.json();
  EXPECT_LT(json.find("\"meta.scenario\": \"unit\""), json.find("\"x\""));
  auto doc = json_mini::parse(json);
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("meta.seed")->string, "17");
  EXPECT_DOUBLE_EQ(doc->at("telemetry.trace.dropped_records")->number, 3.0);
}

TEST_F(TelemetryExportTest, MetricsSnapshotJsonIsWellFormed) {
  joshua::Cluster& cluster = *cluster_;
  auto doc = json_mini::parse(
      telemetry::metrics_json(cluster.sim().telemetry().metrics()));
  ASSERT_TRUE(doc->is_object());
  EXPECT_GT(doc->at("counters")->at("net.frames_sent")->number, 0.0);
  EXPECT_TRUE(doc->at("histograms")->has("joshua.intercept_to_reply_us"));
}

TEST_F(TelemetryExportTest, InstrumentationDoesNotPerturbTheRun) {
  // Determinism guard: a fresh run of the same seed with tracing disabled
  // must produce the identical event count -- telemetry is observation
  // only. (Counters still update; only the trace ring is switched off.)
  auto run_events = [](bool traced) {
    joshua::ClusterOptions options;
    options.head_count = 3;
    options.compute_count = 2;
    joshua::Cluster cluster(options);
    cluster.sim().telemetry().trace().set_enabled(traced);
    cluster.start();
    EXPECT_TRUE(cluster.run_until_converged());
    joshua::Client& client = cluster.make_jclient();
    pbs::JobSpec spec;
    spec.name = "probe";
    spec.run_time = sim::seconds(5);
    client.jsub(spec, [](std::optional<pbs::SubmitResponse>) {});
    cluster.sim().run_for(sim::seconds(30));
    return cluster.sim().events_executed();
  };
  EXPECT_EQ(run_events(true), run_events(false));
}

}  // namespace
