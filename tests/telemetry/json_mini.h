// Minimal recursive-descent JSON parser for telemetry tests: enough to
// validate the exporters' output is well-formed and to pull values back
// out. Supports objects, arrays, strings (with escapes), numbers, bools,
// null. Throws std::runtime_error on malformed input. Test-only -- the
// exporters themselves never parse.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace json_mini {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  const ValuePtr& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end())
      throw std::runtime_error("json_mini: missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      throw std::runtime_error("json_mini: trailing garbage at " +
                               std::to_string(pos_));
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("json_mini: EOF");
    return text_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c)
      throw std::runtime_error(std::string("json_mini: expected '") + c +
                               "' at " + std::to_string(pos_ - 1));
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  ValuePtr parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        return parse_null();
      default:
        return parse_number();
    }
  }

  ValuePtr parse_object() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      next();
      return v;
    }
    while (true) {
      skip_ws();
      ValuePtr key = parse_string();
      skip_ws();
      expect(':');
      v->object[key->string] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') return v;
      if (c != ',') throw std::runtime_error("json_mini: bad object");
    }
  }

  ValuePtr parse_array() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      next();
      return v;
    }
    while (true) {
      v->array.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') return v;
      if (c != ',') throw std::runtime_error("json_mini: bad array");
    }
  }

  ValuePtr parse_string() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kString;
    expect('"');
    while (true) {
      char c = next();
      if (c == '"') return v;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': v->string += '"'; break;
          case '\\': v->string += '\\'; break;
          case '/': v->string += '/'; break;
          case 'b': v->string += '\b'; break;
          case 'f': v->string += '\f'; break;
          case 'n': v->string += '\n'; break;
          case 'r': v->string += '\r'; break;
          case 't': v->string += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                throw std::runtime_error("json_mini: bad \\u escape");
            }
            // Tests only need ASCII round-trips.
            v->string += static_cast<char>(code & 0x7f);
            break;
          }
          default:
            throw std::runtime_error("json_mini: bad escape");
        }
      } else {
        v->string += c;
      }
    }
  }

  ValuePtr parse_bool() {
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v->boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("json_mini: bad literal");
    }
    return v;
  }

  ValuePtr parse_null() {
    if (text_.compare(pos_, 4, "null") != 0)
      throw std::runtime_error("json_mini: bad literal");
    pos_ += 4;
    return std::make_shared<Value>();
  }

  ValuePtr parse_number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("json_mini: bad number");
    auto v = std::make_shared<Value>();
    v->kind = Value::Kind::kNumber;
    v->number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace json_mini
