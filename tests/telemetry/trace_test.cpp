#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/chrome_trace.h"
#include "telemetry/json_mini.h"

namespace telemetry {
namespace {

TEST(TraceBuffer, InternIsStableAndDeduplicated) {
  TraceBuffer t;
  uint16_t a = t.intern("gcs.view");
  uint16_t b = t.intern("pbs.job_start");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("gcs.view"), a);
  EXPECT_EQ(t.category_name(a), "gcs.view");
  EXPECT_EQ(t.category_count(), 2u);
}

TEST(TraceBuffer, RecordsAllPhases) {
  TraceBuffer t;
  uint16_t cat = t.intern("x");
  t.instant(10, 1, cat, 7, 8);
  t.begin(20, 1, cat);
  t.end(30, 1, cat);
  t.complete(40, 55, 2, cat, 9);
  ASSERT_EQ(t.size(), 4u);

  std::vector<TraceBuffer::Record> records;
  t.for_each([&](const TraceBuffer::Record& r) { records.push_back(r); });
  EXPECT_EQ(records[0].phase, TraceBuffer::Phase::kInstant);
  EXPECT_EQ(records[0].arg0, 7u);
  EXPECT_EQ(records[1].phase, TraceBuffer::Phase::kBegin);
  EXPECT_EQ(records[2].phase, TraceBuffer::Phase::kEnd);
  EXPECT_EQ(records[3].phase, TraceBuffer::Phase::kComplete);
  EXPECT_EQ(records[3].ts_us, 40);
  EXPECT_EQ(records[3].dur_us, 15);
  EXPECT_EQ(records[3].host, 2u);
}

TEST(TraceBuffer, RingWrapKeepsNewestRecords) {
  TraceBuffer t;
  t.set_capacity(8);
  uint16_t cat = t.intern("x");
  for (int64_t i = 0; i < 20; ++i) t.instant(i, 0, cat, static_cast<uint64_t>(i));
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);

  // Oldest -> newest iteration yields exactly the last 8, in order.
  std::vector<int64_t> ts;
  t.for_each([&](const TraceBuffer::Record& r) { ts.push_back(r.ts_us); });
  ASSERT_EQ(ts.size(), 8u);
  for (size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(ts[i], static_cast<int64_t>(12 + i));
}

TEST(TraceBuffer, DroppedRecordsCountedPerCategory) {
  TraceBuffer t;
  t.set_capacity(4);
  uint16_t a = t.intern("stream.a");
  uint16_t b = t.intern("stream.b");
  // Fill the ring with 4 'a' records, then push 3 'b': the three oldest 'a'
  // records are the ones overwritten.
  for (int64_t i = 0; i < 4; ++i) t.instant(i, 0, a);
  for (int64_t i = 4; i < 7; ++i) t.instant(i, 0, b);
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_EQ(t.dropped(a), 3u);
  EXPECT_EQ(t.dropped(b), 0u);
  // Keep pushing 'b': the last 'a' goes, then 'b' starts eating itself.
  for (int64_t i = 7; i < 10; ++i) t.instant(i, 0, b);
  EXPECT_EQ(t.dropped(a), 4u);
  EXPECT_EQ(t.dropped(b), 2u);
  EXPECT_EQ(t.dropped(), t.dropped(a) + t.dropped(b));
  // A category id never interned reads as zero, never out of bounds.
  EXPECT_EQ(t.dropped(static_cast<uint16_t>(999)), 0u);
}

TEST(TraceBuffer, ClearAndSetCapacityResetDropCounts) {
  TraceBuffer t;
  t.set_capacity(2);
  uint16_t a = t.intern("x");
  for (int64_t i = 0; i < 5; ++i) t.instant(i, 0, a);
  EXPECT_EQ(t.dropped(a), 3u);
  t.clear();
  EXPECT_EQ(t.dropped(a), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  for (int64_t i = 0; i < 3; ++i) t.instant(i, 0, a);
  EXPECT_EQ(t.dropped(a), 1u);
  t.set_capacity(8);
  EXPECT_EQ(t.dropped(a), 0u);
}

TEST(TraceBuffer, GrowthPhaseDropsNothing) {
  TraceBuffer t;
  t.set_capacity(64);
  uint16_t a = t.intern("x");
  for (int64_t i = 0; i < 64; ++i) t.instant(i, 0, a);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.dropped(a), 0u);
}

TEST(TraceBuffer, DisabledRecordsNothing) {
  TraceBuffer t;
  uint16_t cat = t.intern("x");
  t.set_enabled(false);
  t.instant(1, 0, cat);
  t.complete(1, 2, 0, cat);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  t.set_enabled(true);
  t.instant(3, 0, cat);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceBuffer, SetCapacityRejectsZero) {
  TraceBuffer t;
  EXPECT_THROW(t.set_capacity(0), std::invalid_argument);
}

TEST(ChromeTrace, ExportIsWellFormedAndNamesTracks) {
  TraceBuffer t;
  uint16_t view = t.intern("gcs.view");
  uint16_t cmd = t.intern("joshua.command");
  t.instant(100, 0, view, 3);
  t.instant(200, 1, view, 3);
  // complete() is pushed at end time but must sort back to ts=50.
  t.complete(50, 400, 0, cmd, 1);

  auto doc = json_mini::parse(chrome_trace_json(t, {"head0", "head1"}));
  ASSERT_TRUE(doc->is_object());
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events->is_array());

  bool saw_head0_meta = false, saw_head1_meta = false, saw_complete = false;
  int64_t last_ts = -1;
  for (const auto& e : events->array) {
    const std::string& ph = e->at("ph")->string;
    if (ph == "M") {
      const std::string& nm = e->at("args")->at("name")->string;
      if (nm == "head0") saw_head0_meta = true;
      if (nm == "head1") saw_head1_meta = true;
      continue;
    }
    // Non-metadata events must be globally sorted by timestamp.
    auto ts = static_cast<int64_t>(e->at("ts")->number);
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (ph == "X") {
      saw_complete = true;
      EXPECT_DOUBLE_EQ(e->at("ts")->number, 50.0);
      EXPECT_DOUBLE_EQ(e->at("dur")->number, 350.0);
      EXPECT_EQ(e->at("name")->string, "joshua.command");
    }
  }
  EXPECT_TRUE(saw_head0_meta);
  EXPECT_TRUE(saw_head1_meta);
  EXPECT_TRUE(saw_complete);
}

TEST(TraceBuffer, CategoryQuotaSurvivesFloodFromOtherStreams) {
  TraceBuffer t;
  t.set_capacity(8);
  uint16_t rare = t.intern("gcs.view");
  uint16_t flood = t.intern("gcs.data");
  t.set_category_capacity(rare, 4);
  // Three early rare records, then a flood that wraps the shared ring many
  // times over. Without the quota the early records would be long gone.
  for (int64_t i = 0; i < 3; ++i) t.instant(i, 0, rare, static_cast<uint64_t>(i));
  for (int64_t i = 10; i < 100; ++i) t.instant(i, 0, flood);

  std::vector<int64_t> rare_ts;
  int64_t prev = -1;
  bool ordered = true;
  t.for_each([&](const TraceBuffer::Record& r) {
    if (r.ts_us < prev) ordered = false;
    prev = r.ts_us;
    if (r.cat == rare) rare_ts.push_back(r.ts_us);
  });
  EXPECT_TRUE(ordered) << "merged iteration must stay in timestamp order";
  ASSERT_EQ(rare_ts.size(), 3u) << "early view records must survive the flood";
  EXPECT_EQ(rare_ts.front(), 0);
  EXPECT_EQ(t.size(), 8u + 3u);
  EXPECT_EQ(t.dropped(rare), 0u);
  EXPECT_GT(t.dropped(flood), 0u);
}

TEST(TraceBuffer, CategoryQuotaWrapsWithinItsOwnRing) {
  TraceBuffer t;
  uint16_t rare = t.intern("rare");
  t.set_category_capacity(rare, 2);
  for (int64_t i = 0; i < 5; ++i) t.instant(i, 0, rare);
  // The sub-ring keeps the newest 2 and charges drops to its own category.
  std::vector<int64_t> ts;
  t.for_each([&](const TraceBuffer::Record& r) { ts.push_back(r.ts_us); });
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0], 3);
  EXPECT_EQ(ts[1], 4);
  EXPECT_EQ(t.dropped(rare), 3u);
  EXPECT_EQ(t.recorded(), 5u);

  // Capacity 0 routes the stream back to the shared ring.
  t.clear();
  t.set_category_capacity(rare, 0);
  t.instant(9, 0, rare);
  EXPECT_EQ(t.size(), 1u);
}

TEST(ChromeTrace, HostsBeyondNameVectorGetFallbackNames) {
  TraceBuffer t;
  uint16_t cat = t.intern("x");
  t.instant(1, 5, cat);
  auto doc = json_mini::parse(chrome_trace_json(t, {}));
  bool named = false;
  for (const auto& e : doc->at("traceEvents")->array) {
    if (e->at("ph")->string == "M" &&
        e->at("args")->at("name")->string == "host5")
      named = true;
  }
  EXPECT_TRUE(named);
}

}  // namespace
}  // namespace telemetry
