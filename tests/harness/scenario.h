// Parameterized scenario runner: one object that composes a joshua::Cluster,
// its sim::FailureInjector, and a seeded jsub/jdel/jstat workload into a
// long-running campaign with invariant checking.
//
// The runner drives the cluster in poll-sized slices. Each slice it
//   * restarts JOSHUA service on heads whose host came back (the injector
//     restarts the host; rejoining the group is the operator action the
//     paper describes, so the harness performs it explicitly),
//   * folds newly terminal jobs into the completed-job ledger,
//   * and, whenever the group view epoch advanced, waits for the surviving
//     heads to reconverge and re-checks the replication invariants.
//
// Invariants (violations are collected, not thrown, so a campaign reports
// everything that went wrong in one run):
//   1. exactly-once launch -- no job id is really executed by more than one
//      mom launch attempt (jmutex's guarantee, paper Section 4);
//   2. zero replay divergence -- every "joshua.replay_divergence.*" counter
//      stays 0 (a rejoined head's rebuilt state never drifts);
//   3. convergence after every view change -- live heads reach identical
//      live-job tables within a bounded settle time;
//   4. no job accepted-then-lost -- every jsub the client got an OK for is
//      eventually terminal or still live on the surviving heads.
//
// Everything (workload arrivals, command mix, fault schedule) draws from the
// simulation RNG, so a ScenarioOptions value + seed fully determines the run
// and ScenarioResult::digest is bit-stable across runs of the same binary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "fed/federation.h"
#include "ha/availability.h"
#include "joshua/cluster.h"
#include "pbs/workload.h"
#include "telemetry/scenario_report.h"
#include "testutil.h"

namespace scenariotest {

/// Environment sweep knob: campaigns read e.g. JOSHUA_REPLICATION=3 or
/// JOSHUA_COMPUTES=4 so CI sweeps r and the compute pool without
/// recompiling. Unset/garbage falls back; values are clamped to [lo, hi].
inline int env_int(const char* name, int fallback, int lo, int hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(std::clamp<long>(parsed, lo, hi));
}

struct ScenarioOptions {
  std::string name = "scenario";
  int heads = 3;
  int computes = 2;
  /// Federated control plane: partition heads/computes into this many
  /// independent ordering groups behind a fed::Router (heads must split
  /// evenly). 1 = the monolithic cluster, today's behaviour. Campaigns read
  /// JOSHUA_SHARDS (like JOSHUA_REPLICATION / JOSHUA_COMPUTES) so CI can
  /// sweep the shard count without recompiling.
  int shards = 1;
  uint64_t seed = 1;
  joshua::TransferMode transfer = joshua::TransferMode::kReplay;
  /// Total-order engine for the replication group.
  gcs::OrderingMode ordering = gcs::ordering_mode_from_env();

  /// Simulated campaign length (workload + fault injection window).
  sim::Duration duration = sim::hours(6);

  // -- workload --------------------------------------------------------------
  /// Mean command interarrival (exponential).
  sim::Duration command_interval = sim::seconds(30);
  /// Relative command mix.
  int jsub_weight = 6;
  int jdel_weight = 2;
  int jstat_weight = 2;
  /// Actual job runtimes are uniform in [min, max]. The default scheduler
  /// is the paper's exclusive-cluster FIFO (one job at a time), so the mean
  /// runtime must stay below the mean jsub interarrival or the backlog
  /// grows without bound.
  sim::Duration job_runtime_min = sim::seconds(5);
  sim::Duration job_runtime_max = sim::seconds(60);

  // -- scheduling ------------------------------------------------------------
  /// Policy/selector plugin pair, driven identically through every head (the
  /// determinism contract). The SchedulerConfig defaults honour
  /// JOSHUA_SCHED / JOSHUA_SELECT, so campaigns sweep policies from the
  /// environment without recompiling (like JOSHUA_REPLICATION).
  pbs::SchedulerConfig sched{};
  /// Mixed-priority workload: jsub draws a priority uniformly from
  /// [0, priority_levels). <= 1 submits everything at the default priority.
  uint32_t priority_levels = 1;
  /// Fraction of jsubs submitted as job arrays, and the width range.
  double array_fraction = 0.0;
  uint32_t max_array = 4;
  /// When set, the workload is a pre-generated trace from the workload
  /// engine (pbs::make_trace(*trace, seed)) instead of the RNG-scheduled
  /// command mix above: the exact same operation sequence replays under
  /// every (policy, selector) combination, so a sweep compares schedulers,
  /// not workloads. The trace's own duration is clamped to `duration`.
  std::optional<pbs::WorkloadProfile> trace;

  // -- fault schedule --------------------------------------------------------
  /// Drive every head through an exponential fail/repair process. Computes
  /// and the login node are never failed (the paper's experiments target
  /// head-node availability).
  bool random_head_faults = true;
  sim::Duration mttf = sim::hours(2);
  sim::Duration mttr = sim::minutes(5);

  // -- compute plane ---------------------------------------------------------
  /// Replication factor stamped on every submitted job: the scheduler
  /// dispatches each job to `replication` distinct compute nodes
  /// (anti-affinity), first to finish wins.
  uint32_t replication = 1;
  /// Mom heartbeat detection at every PBS server; zero = off (the paper's
  /// behaviour: a failed compute node takes its job with it).
  sim::Duration mom_heartbeat = sim::kDurationZero;
  uint32_t heartbeat_miss_limit = 3;
  /// Stochastic compute faults over the whole pool (crash-heavy mix of
  /// crashes, hangs and segment partitions; see
  /// sim::FailureInjector::random_compute_faults).
  bool random_compute_faults = false;
  sim::Duration compute_mttf = sim::hours(6);
  sim::Duration compute_mttr = sim::minutes(1);
  /// Paper-baseline leg (r = 1, heartbeat off): compute failures
  /// legitimately strand accepted jobs. Count them in jobs_lost instead of
  /// flagging accepted-then-lost violations.
  bool tolerate_lost_jobs = false;

  // -- timing / bookkeeping --------------------------------------------------
  /// Coarser gcs timers than the sub-second defaults: a multi-day campaign
  /// would otherwise spend most of its events on heartbeats.
  sim::Duration gcs_heartbeat = sim::msec(500);
  sim::Duration gcs_suspect = sim::seconds(2);
  sim::Duration gcs_flush = sim::seconds(8);
  /// Main-loop slice; also the rejoin-driver reaction time.
  sim::Duration poll_interval = sim::seconds(10);
  /// How long surviving heads get to reconverge after a view change before
  /// invariant 3 counts as violated.
  sim::Duration settle_deadline = sim::seconds(60);
  /// Post-campaign grace for queued jobs to drain before the final
  /// accepted-then-lost audit.
  sim::Duration drain_deadline = sim::minutes(30);
  /// Trace-ring capacity override; 0 keeps the library default. Longevity
  /// runs set this small on purpose so the ring wraps and the report must
  /// disclose the truncation.
  size_t trace_capacity = 0;
};

struct ScenarioResult {
  /// FNV-1a fold of the run's observable behaviour (event count, command
  /// outcomes, outage schedule, every metric counter). Two runs of the same
  /// binary with equal options produce equal digests.
  uint64_t digest = 0;

  int failure_cycles = 0;  ///< crash/restart pairs scheduled on heads
  int compute_fault_count = 0;  ///< compute faults scheduled (crash/hang/part)
  int max_concurrent_down = 0;
  uint64_t view_changes_seen = 0;
  uint64_t convergence_checks = 0;

  /// Polls at which NO head was in service. Replicated state only survives
  /// while at least one group member lives; a nonzero value here means the
  /// campaign broke the continuity precondition and job-loss "violations"
  /// are expected, not bugs. Campaign seeds are chosen so this stays 0.
  uint64_t service_gap_polls = 0;

  uint64_t jsub_attempted = 0;
  uint64_t jsub_accepted = 0;
  uint64_t jdel_attempted = 0;
  uint64_t jdel_ok = 0;
  uint64_t jstat_attempted = 0;
  uint64_t jstat_ok = 0;
  uint64_t commands_failed = 0;  ///< no head answered within the timeout
  uint64_t client_failovers = 0;
  uint64_t jobs_completed = 0;  ///< distinct accepted ids seen terminal
  /// Accepted jobs never seen terminal by the end of the drain. Only
  /// populated when tolerate_lost_jobs is set (the r = 1, heartbeat-off
  /// baseline); otherwise losses surface as violations instead.
  uint64_t jobs_lost = 0;
  /// Terminal transitions observed twice for one job at one head within a
  /// single service incarnation. Always a violation when nonzero.
  uint64_t duplicate_completions = 0;

  std::vector<std::string> violations;

  double head_availability_min = 1.0;
  double head_availability_max = 1.0;
  double service_availability = 1.0;  ///< >= 1 head host up
  sim::Duration service_downtime{0};

  uint64_t events_executed = 0;
  sim::Time end_time{0};

  telemetry::ScenarioReport report;

  bool ok() const { return violations.empty(); }
};

/// Either control plane behind the one accessor surface the runner needs:
/// the monolithic joshua::Cluster (shards = 1) or a fed::Federation. The
/// campaign logic -- workload, fault schedule, invariants, availability
/// accounting -- is identical either way; only command entry (Client vs
/// Router) and the convergence predicate differ.
class Plane {
 public:
  explicit Plane(const ScenarioOptions& o) {
    if (o.shards <= 1) {
      joshua::ClusterOptions copt;
      copt.head_count = o.heads;
      copt.compute_count = o.computes;
      copt.cal = sim::fast_calibration();
      copt.seed = o.seed;
      copt.transfer = o.transfer;
      copt.gcs_heartbeat = o.gcs_heartbeat;
      copt.gcs_suspect = o.gcs_suspect;
      copt.gcs_flush = o.gcs_flush;
      copt.ordering = o.ordering;
      copt.mom_heartbeat = o.mom_heartbeat;
      copt.heartbeat_miss_limit = o.heartbeat_miss_limit;
      copt.sched = o.sched;
      cluster_ = std::make_unique<joshua::Cluster>(copt);
      return;
    }
    fed::FederationOptions fopt;
    fopt.shard_count = o.shards;
    fopt.heads_per_shard = std::max(1, o.heads / o.shards);
    fopt.computes_per_shard = std::max(1, o.computes / o.shards);
    fopt.cal = sim::fast_calibration();
    fopt.seed = o.seed;
    fopt.transfer = o.transfer;
    fopt.gcs_heartbeat = o.gcs_heartbeat;
    fopt.gcs_suspect = o.gcs_suspect;
    fopt.gcs_flush = o.gcs_flush;
    fopt.ordering = o.ordering;
    fopt.mom_heartbeat = o.mom_heartbeat;
    fopt.heartbeat_miss_limit = o.heartbeat_miss_limit;
    fopt.sched = o.sched;
    fed_ = std::make_unique<fed::Federation>(std::move(fopt));
  }

  bool federated() const { return fed_ != nullptr; }
  joshua::Cluster& cluster() { return *cluster_; }  ///< shards = 1 only

  sim::Simulation& sim() {
    return cluster_ ? cluster_->sim() : fed_->sim();
  }
  sim::Network& net() { return cluster_ ? cluster_->net() : fed_->net(); }
  sim::FailureInjector& faults() {
    return cluster_ ? cluster_->faults() : fed_->faults();
  }
  size_t head_count() const {
    return cluster_ ? cluster_->head_count() : fed_->head_count();
  }
  size_t compute_count() const {
    return cluster_ ? cluster_->compute_count() : fed_->compute_count();
  }
  const std::vector<sim::HostId>& head_hosts() const {
    return cluster_ ? cluster_->head_hosts() : fed_->head_hosts();
  }
  const std::vector<sim::HostId>& compute_hosts() const {
    return cluster_ ? cluster_->compute_hosts() : fed_->compute_hosts();
  }
  pbs::Server& pbs_server(size_t i) {
    return cluster_ ? cluster_->pbs_server(i) : fed_->pbs_server(i);
  }
  joshua::Server& joshua_server(size_t i) {
    return cluster_ ? cluster_->joshua_server(i) : fed_->joshua_server(i);
  }
  pbs::Mom& mom(size_t i) { return cluster_ ? cluster_->mom(i) : fed_->mom(i); }
  /// Ordering group of a head: always 0 for the monolithic cluster, the
  /// owning shard under federation. Replica-consistency invariants hold
  /// within a group; across groups the job tables are disjoint by design.
  uint32_t group_of_head(size_t i) const {
    return cluster_ ? 0 : fed_->shard_of_head(i);
  }

  void start() { cluster_ ? cluster_->start() : fed_->start(); }
  bool run_until_converged(sim::Duration deadline) {
    return cluster_ ? cluster_->run_until_converged(deadline)
                    : fed_->run_until_converged(deadline);
  }
  /// All live, in-service heads share one installed view (per ordering
  /// group: the single group, or every shard's own).
  bool converged_live() const {
    if (fed_) return fed_->converged();
    size_t live = 0;
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      if (!cluster_->net().host(cluster_->head_hosts()[i]).up()) continue;
      if (cluster_->joshua_server(i).in_service()) ++live;
    }
    return live > 0 && cluster_->converged(live);
  }

  /// Command entry point: a joshua::Client on the login node (monolithic)
  /// or a fed::Router fronting every shard. Same jsub/jstat/jdel surface.
  struct Issuer {
    joshua::Client* client = nullptr;
    fed::Router* router = nullptr;
    void jsub(pbs::JobSpec spec,
              std::function<void(std::optional<pbs::SubmitResponse>)> done) {
      client ? client->jsub(std::move(spec), std::move(done))
             : router->jsub(std::move(spec), std::move(done));
    }
    void jstat(pbs::StatRequest req,
               std::function<void(std::optional<pbs::StatResponse>)> done) {
      client ? client->jstat(std::move(req), std::move(done))
             : router->jstat(std::move(req), std::move(done));
    }
    void jdel(pbs::JobId id,
              std::function<void(std::optional<pbs::SimpleResponse>)> done) {
      client ? client->jdel(id, std::move(done))
             : router->jdel(id, std::move(done));
    }
    uint64_t failovers() const {
      return client ? client->failovers() : router->failovers();
    }
  };
  Issuer make_issuer() {
    Issuer issuer;
    if (cluster_)
      issuer.client = &cluster_->make_jclient();
    else
      issuer.router = &fed_->make_router();
    return issuer;
  }

 private:
  std::unique_ptr<joshua::Cluster> cluster_;
  std::unique_ptr<fed::Federation> fed_;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioOptions options)
      : options_(std::move(options)) {
    cluster_ = std::make_unique<Plane>(options_);
    if (options_.trace_capacity != 0)
      cluster_->sim().telemetry().trace().set_capacity(options_.trace_capacity);

    // Duplicate-completion watch: chain behind JOSHUA's own hook (installed
    // in the Server ctor) so both run. A head legitimately re-derives
    // completions after a crash + replay, so the per-head ledger is cleared
    // on every service (re)start -- see rejoin_restarted_heads.
    completed_per_head_.resize(cluster_->head_count());
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      auto& server = cluster_->pbs_server(i);
      auto previous = std::move(server.on_job_complete);
      server.on_job_complete = [this, i, previous](const pbs::Job& job) {
        if (!completed_per_head_[i].insert(job.id).second)
          ++duplicate_completions_;
        if (previous) previous(job);
      };
    }
  }

  Plane& plane() { return *cluster_; }
  /// The monolithic cluster (valid only when options.shards <= 1).
  joshua::Cluster& cluster() { return cluster_->cluster(); }

  ScenarioResult run() {
    ScenarioResult result;
    Plane& cluster = *cluster_;
    sim::Simulation& sim = cluster.sim();

    cluster.start();
    if (!cluster.run_until_converged(sim::seconds(60)))
      result.violations.push_back("initial convergence failed");

    // The whole fault schedule is drawn up front (random_failures scripts
    // every crash/restart pair immediately), so the concurrency profile of
    // the campaign is known before any command runs.
    if (options_.random_head_faults) {
      sim::Time until = sim.now() + options_.duration;
      for (sim::HostId head : cluster.head_hosts()) {
        result.failure_cycles += cluster.faults().random_failures(
            head, options_.mttf, options_.mttr, until);
      }
    }
    if (options_.random_compute_faults) {
      sim::Time until = sim.now() + options_.duration;
      result.compute_fault_count = cluster.faults().random_compute_faults(
          cluster.compute_hosts(), options_.compute_mttf,
          options_.compute_mttr, until);
    }
    result.max_concurrent_down = max_concurrent_down();

    issuer_ = cluster.make_issuer();
    if (options_.trace.has_value()) {
      pbs::WorkloadProfile profile = *options_.trace;
      profile.duration = std::min(profile.duration, options_.duration);
      for (const pbs::TraceOp& op : pbs::make_trace(profile, options_.seed))
        sim.schedule(op.at, [this, op] { issue_trace_op(op); });
    } else {
      schedule_next_command();
    }

    // -- main campaign loop --------------------------------------------------
    sim::Time end = sim.now() + options_.duration;
    uint64_t last_epoch = current_epoch();
    while (sim.now() < end) {
      sim.run_for(std::min(options_.poll_interval, end - sim.now()));
      rejoin_restarted_heads();
      harvest_terminal_jobs();
      if (in_service_count() == 0) ++result.service_gap_polls;
      uint64_t epoch = current_epoch();
      if (epoch != last_epoch) {
        last_epoch = epoch;
        ++result.view_changes_seen;
        check_after_view_change(result, epoch);
        last_epoch = current_epoch();  // settle may have advanced it
      }
    }

    // -- drain ---------------------------------------------------------------
    // All scripted restarts land by `end`; bring every head back, then give
    // queued work a bounded window to finish before the final audit.
    workload_done_ = true;
    sim::Time drain_end = sim.now() + options_.drain_deadline;
    while (sim.now() < drain_end) {
      rejoin_restarted_heads();
      sim.run_for(options_.poll_interval);
      harvest_terminal_jobs();
      if (all_heads_in_service() && all_accepted_settled()) break;
    }
    cluster.run_until_converged(sim::seconds(60));
    harvest_terminal_jobs();

    finalize(result);
    return result;
  }

 private:
  // -- workload --------------------------------------------------------------

  void schedule_next_command() {
    sim::Simulation& sim = cluster_->sim();
    auto delay = sim::Duration{static_cast<int64_t>(sim.rng().exponential(
        static_cast<double>(options_.command_interval.us)))};
    if (delay.us < 1) delay = sim::usec(1);
    sim.schedule(delay, [this] {
      if (!workload_done_) {
        issue_command();
        schedule_next_command();
      }
    });
  }

  void issue_command() {
    jutil::Rng& rng = cluster_->sim().rng();
    int total =
        options_.jsub_weight + options_.jdel_weight + options_.jstat_weight;
    int pick = static_cast<int>(rng.next_u64(static_cast<uint64_t>(total)));
    if (pick < options_.jsub_weight || live_ids_.empty()) {
      issue_jsub();
    } else if (pick < options_.jsub_weight + options_.jdel_weight) {
      issue_jdel();
    } else {
      issue_jstat();
    }
  }

  void issue_jsub() {
    ++tally_.jsub_attempted;
    pbs::JobSpec spec;
    spec.name = "campaign";
    spec.replicas = options_.replication;
    jutil::Rng& rng = cluster_->sim().rng();
    spec.run_time = sim::Duration{rng.uniform(options_.job_runtime_min.us,
                                              options_.job_runtime_max.us)};
    spec.walltime = spec.run_time * 4;
    if (options_.priority_levels > 1)
      spec.priority =
          static_cast<int32_t>(rng.next_u64(options_.priority_levels));
    if (options_.array_fraction > 0.0 && options_.max_array > 1 &&
        rng.chance(options_.array_fraction))
      spec.array_count =
          static_cast<uint32_t>(rng.uniform(2, options_.max_array));
    issuer_.jsub(std::move(spec),
                  [this](std::optional<pbs::SubmitResponse> r) {
                    note_submit_response(r, /*trace_index=*/-1);
                  });
  }

  /// Shared jsub bookkeeping. One accepted array submit enters `count`
  /// consecutive ids: every sub-job owes the accepted-then-lost audit a
  /// terminal state of its own. `trace_index` maps a trace submit to its
  /// base job id so later trace stats/cancels can target it.
  void note_submit_response(const std::optional<pbs::SubmitResponse>& r,
                            int64_t trace_index) {
    if (r && r->status == pbs::Status::kOk &&
        r->job_id != pbs::kInvalidJob) {
      ++tally_.jsub_accepted;
      if (trace_index >= 0) trace_ids_[trace_index] = r->job_id;
      uint32_t n = r->count > 1 ? r->count : 1;
      for (uint32_t k = 0; k < n; ++k) {
        accepted_order_.push_back(r->job_id + k);
        accepted_.insert(r->job_id + k);
        live_ids_.push_back(r->job_id + k);
      }
    } else {
      ++tally_.commands_failed;
    }
  }

  /// Trace playback: the op stream is fixed up front; only the mapping from
  /// trace submit index to real job id is discovered at run time.
  void issue_trace_op(const pbs::TraceOp& op) {
    if (workload_done_) return;
    switch (op.kind) {
      case pbs::TraceOp::Kind::kSubmit: {
        ++tally_.jsub_attempted;
        pbs::JobSpec spec = op.spec;
        spec.replicas = options_.replication;
        int64_t index = op.target;
        issuer_.jsub(std::move(spec),
                     [this, index](std::optional<pbs::SubmitResponse> r) {
                       note_submit_response(r, index);
                     });
        break;
      }
      case pbs::TraceOp::Kind::kStat: {
        ++tally_.jstat_attempted;
        pbs::StatRequest req;  // default: the whole queue
        if (auto it = trace_ids_.find(op.target); it != trace_ids_.end())
          req = pbs::StatRequest{it->second, true};
        issuer_.jstat(req, [this](std::optional<pbs::StatResponse> r) {
          if (r)
            ++tally_.jstat_ok;
          else
            ++tally_.commands_failed;
        });
        break;
      }
      case pbs::TraceOp::Kind::kCancel: {
        auto it = trace_ids_.find(op.target);
        if (it == trace_ids_.end()) return;  // submit never acknowledged
        ++tally_.jdel_attempted;
        issuer_.jdel(it->second, [this](std::optional<pbs::SimpleResponse> r) {
          if (r && r->status == pbs::Status::kOk)
            ++tally_.jdel_ok;
          else
            ++tally_.commands_failed;
        });
        break;
      }
    }
  }

  void issue_jdel() {
    ++tally_.jdel_attempted;
    jutil::Rng& rng = cluster_->sim().rng();
    size_t ix = static_cast<size_t>(rng.next_u64(live_ids_.size()));
    pbs::JobId id = live_ids_[ix];
    live_ids_.erase(live_ids_.begin() + static_cast<std::ptrdiff_t>(ix));
    issuer_.jdel(id, [this](std::optional<pbs::SimpleResponse> r) {
      if (r && r->status == pbs::Status::kOk)
        ++tally_.jdel_ok;
      else
        ++tally_.commands_failed;
    });
  }

  void issue_jstat() {
    ++tally_.jstat_attempted;
    jutil::Rng& rng = cluster_->sim().rng();
    pbs::StatRequest req;
    req.job_id = live_ids_[static_cast<size_t>(rng.next_u64(live_ids_.size()))];
    issuer_.jstat(req, [this](std::optional<pbs::StatResponse> r) {
      if (r)
        ++tally_.jstat_ok;
      else
        ++tally_.commands_failed;
    });
  }

  // -- drivers and bookkeeping -----------------------------------------------

  /// The injector restarts crashed hosts on schedule; re-entering the head
  /// group is the explicit operator step. GroupMember::join() no-ops while a
  /// join is already in flight, so calling every poll is safe.
  void rejoin_restarted_heads() {
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      if (!cluster_->net().host(cluster_->head_hosts()[i]).up()) continue;
      if (cluster_->joshua_server(i).in_service()) continue;
      // The restarting head re-derives completions from its replayed log;
      // those are a fresh incarnation, not protocol duplicates.
      completed_per_head_[i].clear();
      cluster_->joshua_server(i).start();
    }
  }

  /// Union, over time and heads, of job ids observed terminal. Replay-mode
  /// joiners legitimately lack completed-job history, so "was it ever seen
  /// finished anywhere" is the right ledger for the accepted-then-lost
  /// audit, not any single head's table.
  void harvest_terminal_jobs() {
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      if (!cluster_->net().host(cluster_->head_hosts()[i]).up()) continue;
      if (!cluster_->joshua_server(i).in_service()) continue;
      for (const auto& [id, job] : cluster_->pbs_server(i).jobs()) {
        if (job.terminal()) completed_seen_.insert(id);
      }
    }
    std::erase_if(live_ids_, [this](pbs::JobId id) {
      return completed_seen_.count(id) != 0;
    });
  }

  /// View-change detector: per ordering group the max epoch any in-service
  /// member holds, summed across groups (each shard's membership advances
  /// independently; a sum moves whenever any group reforms).
  uint64_t current_epoch() const {
    std::map<uint32_t, uint64_t> group_epoch;
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      const auto& server = cluster_->joshua_server(i);
      if (!server.in_service()) continue;
      uint64_t& e = group_epoch[cluster_->group_of_head(i)];
      e = std::max(e, server.group().view().id.epoch);
    }
    uint64_t sum = 0;
    for (const auto& [g, e] : group_epoch) sum += e;
    return sum;
  }

  bool all_heads_in_service() const {
    return in_service_count() == cluster_->head_count();
  }

  size_t in_service_count() const {
    size_t n = 0;
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      if (cluster_->joshua_server(i).in_service()) ++n;
    }
    return n;
  }

  /// One-line per-head snapshot for violation messages: up/down, in/out of
  /// service, view epoch, and live-job count.
  std::string heads_snapshot() const {
    std::string out;
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      bool up = cluster_->net().host(cluster_->head_hosts()[i]).up();
      const auto& server = cluster_->joshua_server(i);
      size_t live = 0, table = 0;
      std::string ids;
      if (up && server.in_service()) {
        for (const auto& [id, job] : cluster_->pbs_server(i).jobs()) {
          ++table;
          if (job.terminal()) continue;
          ++live;
          if (live <= 8) {
            if (!ids.empty()) ids += ',';
            ids += std::to_string(id) + ":s" +
                   std::to_string(static_cast<int>(job.state)) +
                   (job.cancelled ? "c" : "");
          }
        }
      }
      std::string members;
      if (up && server.in_service()) {
        for (gcs::MemberId m : server.group().view().members) {
          if (!members.empty()) members += ',';
          members += std::to_string(m);
        }
      }
      if (!out.empty()) out += ' ';
      out += "head" + std::to_string(i) + "(" + (up ? "up" : "DOWN") + "," +
          (server.in_service()
                  ? std::string(server.replaying() ? "RPLY," : "svc,") + "e" +
                        std::to_string(server.group().view().id.epoch) +
                        "{" + members + "}" +
                        ",n=" + std::to_string(table) +
                        ",live=" + std::to_string(live) +
                        (ids.empty() ? "" : "[" + ids + "]")
                  : "out") +
             ")";
    }
    return out;
  }

  bool all_accepted_settled() const {
    return live_ids_.empty();
  }

  /// Invariant 3 (+ a scan of 1): after a view change the surviving heads
  /// must reach identical live-job tables within settle_deadline. Another
  /// view change superseding this one aborts the wait (the next poll
  /// iteration picks it up).
  void check_after_view_change(ScenarioResult& result, uint64_t epoch) {
    bool settled = testutil::run_until(
        cluster_->sim(),
        [&] {
          rejoin_restarted_heads();
          if (current_epoch() != epoch) return true;  // superseded
          return group_stable() && heads_live_consistent();
        },
        options_.settle_deadline, options_.poll_interval / 10);
    if (!settled) {
      result.violations.push_back(
          "heads failed to reconverge after view epoch " +
          std::to_string(epoch) + " at t=" +
          std::to_string(cluster_->sim().now().us) + "us [" +
          heads_snapshot() + "]");
    } else {
      ++result.convergence_checks;
    }
    check_exactly_r(result);
  }

  /// All live, in-service heads share one view (no flush in flight); with
  /// shards, every ordering group independently.
  bool group_stable() const { return cluster_->converged_live(); }

  /// joshuatest::heads_consistent, inlined so the harness has no dependency
  /// on the joshua test directory: identical live-job tables everywhere.
  bool heads_live_consistent() const {
    // jobs() is id-ordered, so the live subset projects to a comparable
    // vector without building per-head maps (job tables hold the full
    // completed history and get large over a multi-day campaign).
    using LiveRow = std::tuple<pbs::JobId, pbs::JobState, bool>;
    // One reference table per ordering group: shards hold disjoint job sets
    // by design, so consistency is a within-group invariant.
    std::map<uint32_t, std::vector<LiveRow>> ref;
    std::vector<LiveRow> live;
    bool any = false;
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      if (!cluster_->net().host(cluster_->head_hosts()[i]).up()) continue;
      if (!cluster_->joshua_server(i).in_service()) continue;
      live.clear();
      for (const auto& [id, job] : cluster_->pbs_server(i).jobs()) {
        if (!job.terminal()) live.emplace_back(id, job.state, job.cancelled);
      }
      auto [it, inserted] =
          ref.emplace(cluster_->group_of_head(i), live);
      any = true;
      if (!inserted && live != it->second) return false;
    }
    return any;
  }

  /// Invariant 1, generalised from exactly-once to exactly-r: across all
  /// moms, no job id has more real executions than its replication factor
  /// -- except that each real run a quiet preempt kill terminated and each
  /// compute fault on a host that really ran the job excuse one relaunch
  /// (the kill/fault ended that run, so requeueing it is the feature, not a
  /// violation). All three counts are mom-side "on-disk job records"
  /// (real_run_log / preempt_kill_log), so the accounting survives both
  /// node crashes and head churn -- a head that ordered a preemption and
  /// then crashed forgets its preempt_count, the mom that performed the
  /// kill does not. With r = 1, no preemption and no compute faults this
  /// is exactly the old exactly-once invariant.
  void check_exactly_r(ScenarioResult& result) {
    std::map<sim::HostId, uint32_t> faults_by_host;
    for (const auto& f : cluster_->faults().compute_faults())
      ++faults_by_host[f.host];
    std::map<pbs::JobId, uint32_t> real_runs;
    std::map<pbs::JobId, uint32_t> excused;
    std::map<pbs::JobId, uint32_t> quiet_kills;
    for (size_t m = 0; m < cluster_->compute_count(); ++m) {
      sim::HostId host = cluster_->compute_hosts()[m];
      auto fit = faults_by_host.find(host);
      uint32_t host_faults = fit == faults_by_host.end() ? 0 : fit->second;
      for (const auto& [id, runs] : cluster_->mom(m).real_run_log()) {
        real_runs[id] += runs;
        excused[id] += host_faults;
      }
      for (const auto& [id, kills] : cluster_->mom(m).quiet_kill_log())
        quiet_kills[id] += kills;
    }
    for (const auto& [id, runs] : real_runs) {
      uint32_t cap =
          options_.replication + quiet_kills[id] + excused[id];
      if (runs > cap && double_launched_.insert(id).second) {
        result.violations.push_back(
            "job " + std::to_string(id) + " really launched " +
            std::to_string(runs) + " times (cap " + std::to_string(cap) +
            " = r " + std::to_string(options_.replication) + " + " +
            std::to_string(quiet_kills[id]) + " quiet kills + excused " +
            std::to_string(excused[id]) + ")");
      }
    }
  }

  /// Invariant 2: every per-head replay-divergence counter is zero.
  void check_replay_divergence(ScenarioResult& result) {
    for (const auto& cell :
         cluster_->sim().telemetry().metrics().counters()) {
      if (cell.name.rfind("joshua.replay_divergence.", 0) != 0) continue;
      if (cell.value != 0) {
        result.violations.push_back(cell.name + " = " +
                                    std::to_string(cell.value));
      }
    }
  }

  /// Invariant 4: every accepted job id is terminal-or-live at the end. In
  /// tolerate_lost_jobs mode (the r = 1, heartbeat-off paper baseline),
  /// compute failures legitimately strand jobs; everything accepted and
  /// never completed is tallied as lost instead of flagged.
  void check_accepted_then_lost(ScenarioResult& result) {
    if (options_.tolerate_lost_jobs) {
      for (pbs::JobId id : accepted_order_) {
        if (completed_seen_.count(id) == 0) ++result.jobs_lost;
      }
      return;
    }
    std::set<pbs::JobId> live_now;
    for (size_t i = 0; i < cluster_->head_count(); ++i) {
      if (!cluster_->net().host(cluster_->head_hosts()[i]).up()) continue;
      if (!cluster_->joshua_server(i).in_service()) continue;
      for (const auto& [id, job] : cluster_->pbs_server(i).jobs()) {
        if (!job.terminal()) live_now.insert(id);
      }
    }
    for (pbs::JobId id : accepted_order_) {
      if (completed_seen_.count(id) != 0) continue;
      if (live_now.count(id) != 0) continue;
      result.violations.push_back("job " + std::to_string(id) +
                                  " was accepted then lost");
    }
  }

  // -- availability ----------------------------------------------------------

  /// Per-head merged down intervals from the injector's schedule, clamped to
  /// [0, now].
  std::vector<std::vector<std::pair<int64_t, int64_t>>> head_down_spans()
      const {
    sim::Time now = cluster_->sim().now();
    std::vector<std::vector<std::pair<int64_t, int64_t>>> spans(
        cluster_->head_count());
    for (const auto& o : cluster_->faults().outages()) {
      for (size_t i = 0; i < cluster_->head_count(); ++i) {
        if (cluster_->head_hosts()[i] != o.host) continue;
        int64_t up = (o.up == sim::kTimeInfinity ? now : o.up).us;
        if (up > o.down.us) spans[i].emplace_back(o.down.us, up);
      }
    }
    for (auto& s : spans) {
      std::sort(s.begin(), s.end());
      std::vector<std::pair<int64_t, int64_t>> merged;
      for (const auto& [lo, hi] : s) {
        if (!merged.empty() && lo <= merged.back().second)
          merged.back().second = std::max(merged.back().second, hi);
        else
          merged.emplace_back(lo, hi);
      }
      s = std::move(merged);
    }
    return spans;
  }

  /// Peak number of heads down at one instant over the whole schedule.
  int max_concurrent_down() const {
    std::vector<std::pair<int64_t, int>> edges;
    for (const auto& s : head_down_spans()) {
      for (const auto& [lo, hi] : s) {
        edges.emplace_back(lo, +1);
        edges.emplace_back(hi, -1);
      }
    }
    std::sort(edges.begin(), edges.end());
    int depth = 0, peak = 0;
    for (const auto& [t, d] : edges) {
      depth += d;
      peak = std::max(peak, depth);
    }
    return peak;
  }

  /// Time during which EVERY head host was down simultaneously.
  sim::Duration all_heads_down_time() const {
    auto spans = head_down_spans();
    std::vector<std::pair<int64_t, int>> edges;
    for (const auto& s : spans) {
      for (const auto& [lo, hi] : s) {
        edges.emplace_back(lo, +1);
        edges.emplace_back(hi, -1);
      }
    }
    std::sort(edges.begin(), edges.end());
    int depth = 0;
    int64_t total = 0, since = 0;
    int n = static_cast<int>(cluster_->head_count());
    for (const auto& [t, d] : edges) {
      if (depth == n) total += t - since;
      depth += d;
      if (depth == n) since = t;
    }
    return sim::Duration{total};
  }

  // -- result assembly -------------------------------------------------------

  static void fnv(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }

  uint64_t behaviour_digest() const {
    uint64_t h = 1469598103934665603ull;
    sim::Simulation& sim = cluster_->sim();
    fnv(h, sim.events_executed());
    fnv(h, static_cast<uint64_t>(sim.now().us));
    for (pbs::JobId id : accepted_order_) fnv(h, id);
    for (const auto& o : cluster_->faults().outages()) {
      fnv(h, o.host);
      fnv(h, static_cast<uint64_t>(o.down.us));
      fnv(h, static_cast<uint64_t>(o.up.us));
    }
    for (const auto& cell : sim.telemetry().metrics().counters()) {
      fnv(h, std::hash<std::string>{}(cell.name));
      fnv(h, cell.value);
    }
    fnv(h, sim.telemetry().trace().recorded());
    for (size_t m = 0; m < cluster_->compute_count(); ++m) {
      fnv(h, cluster_->mom(m).jobs_executed());
      fnv(h, cluster_->mom(m).launches_emulated());
    }
    return h;
  }

  void finalize(ScenarioResult& result) {
    sim::Simulation& sim = cluster_->sim();
    check_exactly_r(result);
    check_replay_divergence(result);
    check_accepted_then_lost(result);
    result.duplicate_completions = duplicate_completions_;
    if (duplicate_completions_ != 0) {
      result.violations.push_back(
          std::to_string(duplicate_completions_) +
          " duplicate completion(s) delivered to a head");
    }

    result.jsub_attempted = tally_.jsub_attempted;
    result.jsub_accepted = tally_.jsub_accepted;
    result.jdel_attempted = tally_.jdel_attempted;
    result.jdel_ok = tally_.jdel_ok;
    result.jstat_attempted = tally_.jstat_attempted;
    result.jstat_ok = tally_.jstat_ok;
    result.commands_failed = tally_.commands_failed;
    result.client_failovers =
        (issuer_.client || issuer_.router) ? issuer_.failovers() : 0;
    for (pbs::JobId id : accepted_order_) {
      if (completed_seen_.count(id) != 0) ++result.jobs_completed;
    }

    double elapsed = static_cast<double>(sim.now().us);
    result.head_availability_min = 1.0;
    result.head_availability_max = 0.0;
    for (sim::HostId head : cluster_->head_hosts()) {
      double down =
          static_cast<double>(cluster_->faults().recorded_downtime(head).us);
      double a = elapsed > 0 ? 1.0 - down / elapsed : 1.0;
      result.head_availability_min = std::min(result.head_availability_min, a);
      result.head_availability_max = std::max(result.head_availability_max, a);
    }
    if (result.head_availability_max < result.head_availability_min)
      result.head_availability_max = result.head_availability_min;
    result.service_downtime = all_heads_down_time();
    result.service_availability =
        elapsed > 0
            ? 1.0 - static_cast<double>(result.service_downtime.us) / elapsed
            : 1.0;

    result.events_executed = sim.events_executed();
    result.end_time = sim.now();
    result.digest = behaviour_digest();

    telemetry::ScenarioReport& r = result.report;
    r.set_meta("scenario", options_.name);
    r.set_meta("seed", std::to_string(options_.seed));
    r.set_meta("digest", std::to_string(result.digest));
    r.set_meta("sched", options_.sched.policy);
    r.set_meta("selector", options_.sched.selector);
    r.set("scenario.heads", options_.heads);
    r.set("scenario.computes", options_.computes);
    r.set("scenario.shards", options_.shards);
    r.set("scenario.replication", static_cast<double>(options_.replication));
    r.set("scenario.mom_heartbeat_s",
          static_cast<double>(options_.mom_heartbeat.us) / 1e6);
    r.set("scenario.duration_s", static_cast<double>(options_.duration.us) / 1e6);
    r.set("scenario.failure_cycles", result.failure_cycles);
    r.set("scenario.compute_faults",
          static_cast<double>(result.compute_fault_count));
    r.set("scenario.jobs_lost", static_cast<double>(result.jobs_lost));
    r.set("scenario.duplicate_completions",
          static_cast<double>(result.duplicate_completions));
    r.set("scenario.max_concurrent_down", result.max_concurrent_down);
    r.set("scenario.service_gap_polls",
          static_cast<double>(result.service_gap_polls));
    r.set("scenario.view_changes", static_cast<double>(result.view_changes_seen));
    r.set("scenario.convergence_checks",
          static_cast<double>(result.convergence_checks));
    r.set("scenario.violations", static_cast<double>(result.violations.size()));
    r.set("scenario.jsub_accepted", static_cast<double>(result.jsub_accepted));
    r.set("scenario.jobs_completed", static_cast<double>(result.jobs_completed));
    r.set("scenario.commands_failed", static_cast<double>(result.commands_failed));
    r.set("scenario.client_failovers",
          static_cast<double>(result.client_failovers));
    r.set("scenario.availability.head_min", result.head_availability_min);
    r.set("scenario.availability.head_max", result.head_availability_max);
    r.set("scenario.availability.service", result.service_availability);
    r.set("scenario.downtime.service_s",
          static_cast<double>(result.service_downtime.us) / 1e6);
    r.set("scenario.events_executed",
          static_cast<double>(result.events_executed));
    r.note_metrics(sim.telemetry().metrics());
    r.note_trace(sim.telemetry().trace());
  }

  ScenarioOptions options_;
  std::unique_ptr<Plane> cluster_;
  Plane::Issuer issuer_;
  bool workload_done_ = false;

  struct Tally {
    uint64_t jsub_attempted = 0, jsub_accepted = 0;
    uint64_t jdel_attempted = 0, jdel_ok = 0;
    uint64_t jstat_attempted = 0, jstat_ok = 0;
    uint64_t commands_failed = 0;
  } tally_;

  std::vector<pbs::JobId> accepted_order_;
  std::set<pbs::JobId> accepted_;
  std::map<int64_t, pbs::JobId> trace_ids_;  ///< trace submit index -> base id
  std::vector<pbs::JobId> live_ids_;  ///< accepted, not yet seen terminal
  std::set<pbs::JobId> completed_seen_;
  std::set<pbs::JobId> double_launched_;
  /// Per head: job ids whose completion this service incarnation delivered.
  std::vector<std::set<pbs::JobId>> completed_per_head_;
  uint64_t duplicate_completions_ = 0;
};

}  // namespace scenariotest
