// End-to-end property sweep (E4): randomized command mixes + fault
// schedules against full JOSHUA clusters; after the dust settles, every
// surviving head must hold an identical job table and every job must have
// run at most once.
#include <gtest/gtest.h>

#include "joshua/joshua_harness.h"
#include "util/rng.h"

namespace {

using namespace joshuatest;

struct ScenarioParam {
  int heads;
  int computes;
  uint64_t seed;
  int commands;
  int crashes;           ///< heads to kill during the run
  bool rejoin;           ///< restart + rejoin one crashed head
  joshua::TransferMode transfer;
  friend std::ostream& operator<<(std::ostream& os, const ScenarioParam& p) {
    return os << "h" << p.heads << "_c" << p.computes << "_seed" << p.seed
              << "_cmd" << p.commands << "_kill" << p.crashes
              << (p.rejoin ? "_rejoin" : "")
              << (p.transfer == joshua::TransferMode::kSnapshot ? "_snap"
                                                                : "_replay");
  }
};

class ConsistencyTest : public ::testing::TestWithParam<ScenarioParam> {};

TEST_P(ConsistencyTest, SurvivorsAgreeAndJobsRunOnce) {
  const ScenarioParam p = GetParam();
  joshua::ClusterOptions options = fast_options(p.heads, p.computes, p.seed);
  options.transfer = p.transfer;
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  jutil::Rng rng(p.seed * 77 + 1);

  int answered = 0;
  std::vector<pbs::JobId> submitted;
  int killed = 0;
  for (int i = 0; i < p.commands; ++i) {
    int dice = static_cast<int>(rng.next_u64(10));
    if (dice < 7 || submitted.empty()) {
      pbs::JobSpec spec;
      spec.name = "w" + std::to_string(i);
      spec.run_time = sim::msec(100 + static_cast<int64_t>(rng.next_u64(900)));
      client.jsub(spec, [&](std::optional<pbs::SubmitResponse> r) {
        ++answered;
        if (r && r->status == pbs::Status::kOk) submitted.push_back(r->job_id);
      });
    } else if (dice < 9) {
      pbs::JobId victim =
          submitted[rng.next_u64(submitted.size())];
      client.jdel(victim, [&](auto) { ++answered; });
    } else {
      client.jstat(pbs::StatRequest{}, [&](auto) { ++answered; });
    }
    cluster.sim().run_for(
        sim::msec(50 + static_cast<int64_t>(rng.next_u64(400))));

    if (killed < p.crashes && i == (p.commands * (killed + 1)) / (p.crashes + 1)) {
      size_t victim_head = cluster.head_count() - 1 - static_cast<size_t>(killed);
      cluster.net().crash_host(cluster.head_hosts()[victim_head]);
      ++killed;
    }
  }
  testutil::run_until(cluster.sim(), [&] { return answered >= p.commands; },
                      sim::seconds(600));
  EXPECT_EQ(answered, p.commands) << "every command got an answer";
  ASSERT_TRUE(cluster.run_until_converged(sim::seconds(120)));

  if (p.rejoin && killed > 0) {
    size_t back = cluster.head_count() - 1;
    cluster.net().restart_host(cluster.head_hosts()[back]);
    cluster.joshua_server(back).start();
    ASSERT_TRUE(cluster.run_until_converged(sim::seconds(120)));
  }

  // Drain all running jobs.
  cluster.sim().run_for(sim::seconds(30));

  // Invariant 1: surviving heads agree exactly.
  EXPECT_TRUE(heads_consistent(cluster));

  // Invariant 2: nothing executed twice -- total executions across moms
  // equals the number of distinct non-cancelled completed jobs.
  size_t live_head = SIZE_MAX;
  for (size_t i = 0; i < cluster.head_count(); ++i) {
    if (cluster.net().host(cluster.head_hosts()[i]).up() &&
        cluster.joshua_server(i).in_service()) {
      live_head = i;
      break;
    }
  }
  ASSERT_NE(live_head, SIZE_MAX);
  size_t ran_to_completion = 0;
  for (const auto& [id, job] : cluster.pbs_server(live_head).jobs()) {
    (void)id;
    if (job.state == pbs::JobState::kComplete && !job.cancelled)
      ++ran_to_completion;
  }
  uint64_t executed = 0;
  for (size_t c = 0; c < cluster.compute_count(); ++c)
    executed += cluster.mom(c).jobs_executed();
  // Executions count launches; cancelled jobs may or may not have launched,
  // so executed >= completions and executed <= total accepted jobs.
  EXPECT_GE(executed, ran_to_completion);
  EXPECT_LE(executed, cluster.pbs_server(live_head).jobs().size())
      << "a job ran more than once";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsistencyTest,
    ::testing::Values(
        ScenarioParam{2, 1, 1, 12, 0, false, joshua::TransferMode::kReplay},
        ScenarioParam{2, 2, 2, 16, 1, false, joshua::TransferMode::kReplay},
        ScenarioParam{3, 2, 3, 16, 1, true, joshua::TransferMode::kReplay},
        ScenarioParam{3, 2, 4, 16, 1, true, joshua::TransferMode::kSnapshot},
        ScenarioParam{4, 2, 5, 20, 2, false, joshua::TransferMode::kReplay},
        ScenarioParam{4, 2, 6, 20, 2, true, joshua::TransferMode::kSnapshot},
        ScenarioParam{2, 1, 7, 24, 0, false, joshua::TransferMode::kSnapshot},
        ScenarioParam{4, 1, 8, 12, 3, false, joshua::TransferMode::kReplay}),
    [](const ::testing::TestParamInfo<ScenarioParam>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
