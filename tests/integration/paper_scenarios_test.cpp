// Scenarios lifted directly from the paper's Section 5 narrative, run on
// the PAPER calibration (450 MHz heads, 100 Mbit hub) rather than the fast
// test calibration -- these double as regression fences for the benchmark
// shapes.
#include <gtest/gtest.h>

#include "joshua/joshua_harness.h"

namespace {

using namespace joshuatest;

/// One jsub latency sample on the paper testbed.
double paper_submission_ms(joshua::Cluster& cluster, joshua::Client& client) {
  pbs::JobSpec spec;
  spec.run_time = sim::hours(1);
  bool done = false;
  sim::Time start = cluster.sim().now();
  client.jsub(spec, [&](std::optional<pbs::SubmitResponse>) { done = true; });
  testutil::run_until(cluster.sim(), [&] { return done; }, sim::seconds(30),
                      sim::usec(100));
  return (cluster.sim().now() - start).millis();
}

TEST(PaperScenario, Figure10ShapeHolds) {
  // Who wins and by roughly what factor -- the reproduction bar for E1.
  double latency[5];  // [0]=TORQUE, [1..4]=JOSHUA xN
  {
    joshua::ClusterOptions options;
    options.head_count = 1;
    options.compute_count = 2;
    options.with_joshua = false;
    joshua::Cluster cluster(options);
    pbs::Client& client = cluster.make_pbs_client(0);
    pbs::JobSpec spec;
    spec.run_time = sim::hours(1);
    bool done = false;
    sim::Time start = cluster.sim().now();
    client.qsub(spec, [&](auto) { done = true; });
    testutil::run_until(cluster.sim(), [&] { return done; }, sim::seconds(30),
                        sim::usec(100));
    latency[0] = (cluster.sim().now() - start).millis();
  }
  for (int heads = 1; heads <= 4; ++heads) {
    joshua::ClusterOptions options;
    options.head_count = heads;
    options.compute_count = 2;
    // Figure 10 measured Transis' all-ack protocol; its latency-growth shape
    // is a property of that engine (the token ring flattens it -- see E10).
    options.ordering = gcs::OrderingMode::kAllAck;
    joshua::Cluster cluster(options);
    cluster.start();
    ASSERT_TRUE(cluster.run_until_converged());
    joshua::Client& client = cluster.make_jclient();
    paper_submission_ms(cluster, client);  // warmup
    // Drain the warmup job's launch + jmutex traffic before sampling, and
    // space the samples so remote-side tails do not pipeline.
    cluster.sim().run_for(sim::seconds(5));
    double first = paper_submission_ms(cluster, client);
    cluster.sim().run_for(sim::seconds(2));
    double second = paper_submission_ms(cluster, client);
    latency[heads] = (first + second) / 2.0;
  }

  // TORQUE ~98 ms band.
  EXPECT_GT(latency[0], 80.0);
  EXPECT_LT(latency[0], 120.0);
  // JOSHUA x1 adds a modest same-node overhead (paper: +37%).
  EXPECT_GT(latency[1], latency[0] * 1.2);
  EXPECT_LT(latency[1], latency[0] * 1.7);
  // The 1->2 jump is the big one (paper: 134 -> 265, ~2x).
  EXPECT_GT(latency[2], latency[1] * 1.6);
  // 2->3 and 3->4 grow roughly linearly, ~35-60 ms per head.
  EXPECT_GT(latency[3], latency[2] + 20.0);
  EXPECT_LT(latency[3], latency[2] + 80.0);
  EXPECT_GT(latency[4], latency[3] + 20.0);
  EXPECT_LT(latency[4], latency[3] + 80.0);
  // Absolute band for the 4-head system (paper: 349 ms).
  EXPECT_GT(latency[4], 280.0);
  EXPECT_LT(latency[4], 420.0);
}

TEST(PaperScenario, HundredsOfSubmissionsAMinute) {
  // "after 3-5 days of excessive operation with up to hundreds of job
  // submissions a minute Transis crashed" -- our gcs must survive the same
  // load pattern (compressed: ~200 submissions as fast as the client can).
  joshua::ClusterOptions options;
  options.head_count = 2;
  options.compute_count = 2;
  options.cal = sim::fast_calibration();
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  int done = 0;
  const int kJobs = 200;
  std::function<void()> next = [&] {
    pbs::JobSpec spec;
    spec.run_time = sim::hours(2);
    client.jsub(spec, [&](std::optional<pbs::SubmitResponse>) {
      if (++done < kJobs) next();
    });
  };
  next();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] { return done >= kJobs; },
                                  sim::seconds(1200)));
  EXPECT_TRUE(heads_consistent(cluster));
  EXPECT_EQ(cluster.pbs_server(0).jobs().size(), static_cast<size_t>(kJobs));
}

TEST(PaperScenario, MomQuirkKeepsJobUntilHeadReturns) {
  // Section 5: "the PBS mom servers did not simply ignore a failed head
  // node, but rather kept the current job in running status until it
  // returned to service."
  joshua::ClusterOptions options = fast_options(2, 1);
  options.quirk_mom = true;
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(2)));
  ASSERT_NE(id, pbs::kInvalidJob);
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(0).find_job(id);
    return j && j->state == pbs::JobState::kRunning;
  }));
  cluster.net().crash_host(cluster.head_hosts()[0]);
  // Job completes; head1 gets its report; the report to dead head0 is held.
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(1).find_job(id);
    return j && j->state == pbs::JobState::kComplete;
  }, sim::seconds(60)));
  uint64_t reports_before = cluster.mom(0).reports_sent();
  cluster.sim().run_for(sim::seconds(5));
  EXPECT_GT(cluster.mom(0).reports_sent(), reports_before)
      << "the quirky mom keeps retrying the dead head";
}

TEST(PaperScenario, ContinuousAvailabilityStatement) {
  // "continuous HPC job and resource management service availability is
  // provided transparently as long as one head node survives."
  joshua::ClusterOptions options = fast_options(4, 1, 3);
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();

  int accepted = 0;
  for (int wave = 0; wave < 4; ++wave) {
    pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(300)),
                              sim::seconds(120));
    if (id != pbs::kInvalidJob) ++accepted;
    if (wave < 3) {
      cluster.net().crash_host(cluster.head_hosts()[static_cast<size_t>(wave)]);
      ASSERT_TRUE(cluster.run_until_converged(sim::seconds(120)));
    }
  }
  EXPECT_EQ(accepted, 4) << "service stayed up through three failures";
  EXPECT_EQ(cluster.pbs_server(3).jobs().size(), 4u) << "no loss of state";
}

}  // namespace
