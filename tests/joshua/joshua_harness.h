// Harness for JOSHUA tests: a Cluster with the fast calibration so
// protocol-behaviour tests run quickly, plus synchronous-style command
// helpers.
#pragma once

#include "joshua/cluster.h"
#include "testutil.h"

namespace joshuatest {

inline joshua::ClusterOptions fast_options(int heads, int computes,
                                           uint64_t seed = 1) {
  joshua::ClusterOptions options;
  options.head_count = heads;
  options.compute_count = computes;
  options.cal = sim::fast_calibration();
  options.seed = seed;
  return options;
}

struct Submitted {
  bool responded = false;
  std::optional<pbs::SubmitResponse> response;
};

/// Fire a jsub and run until the reply lands (or deadline).
inline pbs::JobId jsub_sync(joshua::Cluster& cluster, joshua::Client& client,
                            pbs::JobSpec spec,
                            sim::Duration deadline = sim::seconds(60)) {
  auto state = std::make_shared<Submitted>();
  client.jsub(std::move(spec), [state](std::optional<pbs::SubmitResponse> r) {
    state->responded = true;
    state->response = r;
  });
  testutil::run_until(cluster.sim(), [state] { return state->responded; },
                      deadline);
  if (!state->response || state->response->status != pbs::Status::kOk)
    return pbs::kInvalidJob;
  return state->response->job_id;
}

/// Wait until the given job reaches `state` on every live head.
inline bool wait_state_everywhere(joshua::Cluster& cluster, pbs::JobId id,
                                  pbs::JobState state,
                                  sim::Duration deadline = sim::seconds(120)) {
  return testutil::run_until(
      cluster.sim(),
      [&] {
        for (size_t i = 0; i < cluster.head_count(); ++i) {
          if (!cluster.net().host(cluster.head_hosts()[i]).up()) continue;
          if (!cluster.joshua_server(i).in_service()) continue;
          auto job = cluster.pbs_server(i).find_job(id);
          if (!job || job->state != state) return false;
        }
        return true;
      },
      deadline);
}

inline pbs::JobSpec quick_job(sim::Duration run_time = sim::msec(500)) {
  pbs::JobSpec spec;
  spec.name = "t";
  spec.run_time = run_time;
  return spec;
}

/// All live, in-service heads hold identical LIVE job tables. Completed-job
/// history is excluded: a head that joined via the paper's replay-based
/// transfer legitimately lacks records of jobs that finished before it
/// joined (the compacted command log does not replay them) -- snapshot
/// transfer keeps full history, covered by its own tests.
inline bool heads_consistent(joshua::Cluster& cluster) {
  auto live_jobs = [](const pbs::Server& server) {
    std::map<pbs::JobId, pbs::Job> out;
    for (const auto& [id, job] : server.jobs()) {
      if (!job.terminal()) out.emplace(id, job);
    }
    return out;
  };
  std::optional<std::map<pbs::JobId, pbs::Job>> ref;
  for (size_t i = 0; i < cluster.head_count(); ++i) {
    if (!cluster.net().host(cluster.head_hosts()[i]).up()) continue;
    if (!cluster.joshua_server(i).in_service()) continue;
    auto jobs = live_jobs(cluster.pbs_server(i));
    if (!ref) {
      ref = std::move(jobs);
      continue;
    }
    if (jobs.size() != ref->size()) return false;
    for (const auto& [id, job] : jobs) {
      auto it = ref->find(id);
      if (it == ref->end()) return false;
      if (job.state != it->second.state) return false;
      if (job.cancelled != it->second.cancelled) return false;
    }
  }
  return ref.has_value();
}

}  // namespace joshuatest
