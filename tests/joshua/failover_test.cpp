// The headline property (paper Section 5 functional tests): continuous
// availability across single and multiple simultaneous head failures,
// voluntary leaves, and joins -- with no loss of state.
#include <gtest/gtest.h>

#include "joshua/joshua_harness.h"

namespace {

using namespace joshuatest;

TEST(Failover, ServiceContinuesAfterSingleHeadFailure) {
  joshua::Cluster cluster(fast_options(2, 2));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId before = jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  ASSERT_NE(before, pbs::kInvalidJob);

  cluster.net().crash_host(cluster.head_hosts()[0]);
  ASSERT_TRUE(cluster.run_until_converged());

  // State survived on the remaining head.
  EXPECT_TRUE(cluster.pbs_server(1).find_job(before).has_value());
  // New submissions keep working (client fails over).
  pbs::JobId after = jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  EXPECT_EQ(after, before + 1) << "no loss of state: ids continue";
  EXPECT_GE(client.failovers(), 1u);
}

TEST(Failover, MultipleSimultaneousFailures) {
  joshua::Cluster cluster(fast_options(4, 2));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId before = jsub_sync(cluster, client, quick_job(sim::seconds(120)));
  ASSERT_NE(before, pbs::kInvalidJob);

  // "multiple simultaneous failures": kill heads 0 and 2 at the same time.
  cluster.net().crash_host(cluster.head_hosts()[0]);
  cluster.net().crash_host(cluster.head_hosts()[2]);
  ASSERT_TRUE(cluster.run_until_converged());

  pbs::JobId after = jsub_sync(cluster, client, quick_job(sim::seconds(120)));
  EXPECT_EQ(after, before + 1);
  EXPECT_TRUE(heads_consistent(cluster));
}

TEST(Failover, RunningJobSurvivesHeadFailure) {
  // The key difference to active/standby: a running job keeps running and
  // its completion is recorded by the surviving heads.
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(10)));
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(1).find_job(id);
    return j && j->state == pbs::JobState::kRunning;
  }));

  cluster.net().crash_host(cluster.head_hosts()[0]);
  ASSERT_TRUE(cluster.run_until_converged());

  EXPECT_TRUE(testutil::run_until(
      cluster.sim(),
      [&] {
        auto j = cluster.pbs_server(1).find_job(id);
        return j && j->state == pbs::JobState::kComplete && j->exit_code == 0;
      },
      sim::seconds(120)))
      << "job ran to completion without restart despite the head failure";
  EXPECT_EQ(cluster.mom(0).jobs_executed(), 1u);
}

TEST(Failover, CascadeDownToLastHead) {
  joshua::Cluster cluster(fast_options(4, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  std::vector<pbs::JobId> ids;
  ids.push_back(jsub_sync(cluster, client, quick_job(sim::seconds(200))));
  for (int kill = 0; kill < 3; ++kill) {
    cluster.net().crash_host(cluster.head_hosts()[static_cast<size_t>(kill)]);
    ASSERT_TRUE(cluster.run_until_converged()) << "after killing head " << kill;
    ids.push_back(jsub_sync(cluster, client, quick_job(sim::seconds(200)),
                            sim::seconds(120)));
  }
  // "as long as one head node survives": ids kept increasing with no loss.
  EXPECT_EQ(ids, (std::vector<pbs::JobId>{1, 2, 3, 4}));
  EXPECT_EQ(cluster.pbs_server(3).jobs().size(), 4u);
}

TEST(Failover, VoluntaryLeaveIsGraceful) {
  joshua::Cluster cluster(fast_options(3, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  jsub_sync(cluster, client, quick_job(sim::seconds(60)));

  cluster.joshua_server(1).shutdown();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.joshua_server(0).group().view().size() == 2 &&
           cluster.joshua_server(2).group().view().size() == 2;
  }));
  EXPECT_FALSE(cluster.joshua_server(1).in_service());
  pbs::JobId after = jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  EXPECT_EQ(after, 2u);
}

TEST(Failover, FailureDuringSubmissionEventuallyAnswersOrFailsOver) {
  joshua::Cluster cluster(fast_options(3, 1, 7));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();

  // Kill the contacted head right as the submission goes out.
  int replies = 0;
  client.jsub(quick_job(sim::seconds(60)), [&](auto) { ++replies; });
  cluster.sim().run_for(sim::msec(2));
  cluster.net().crash_host(cluster.head_hosts()[client.current_head()]);

  testutil::run_until(cluster.sim(), [&] { return replies == 1; },
                      sim::seconds(120));
  EXPECT_EQ(replies, 1);
  ASSERT_TRUE(cluster.run_until_converged());
  // The command executed at most twice (client retry after origin death is
  // at-least-once; the PBS interface has no dedup -- inherent to the
  // paper's design) but never zero or inconsistent across heads.
  cluster.sim().run_for(sim::seconds(5));
  size_t count = SIZE_MAX;
  for (size_t i = 1; i < 3; ++i) {
    if (!cluster.joshua_server(i).in_service()) continue;
    size_t n = cluster.pbs_server(i).jobs().size();
    if (count == SIZE_MAX) {
      count = n;
    } else {
      EXPECT_EQ(n, count) << "surviving heads agree";
    }
  }
  EXPECT_GE(count, 1u);
  EXPECT_LE(count, 2u);
}

TEST(Failover, WorkloadUnderRollingFailuresStaysConsistent) {
  joshua::Cluster cluster(fast_options(3, 2, 11));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();

  int responded = 0;
  for (int i = 0; i < 10; ++i) {
    client.jsub(quick_job(sim::msec(300)), [&](auto) { ++responded; });
    cluster.sim().run_for(sim::msec(400));
    if (i == 3) cluster.net().crash_host(cluster.head_hosts()[2]);
    if (i == 7) cluster.net().crash_host(cluster.head_hosts()[0]);
  }
  testutil::run_until(cluster.sim(), [&] { return responded == 10; },
                      sim::seconds(200));
  ASSERT_TRUE(cluster.run_until_converged());
  cluster.sim().run_for(sim::seconds(30));

  // All surviving state is on head 1; every accepted job completed.
  const auto& jobs = cluster.pbs_server(1).jobs();
  EXPECT_GE(jobs.size(), 8u);
  for (const auto& [id, job] : jobs) {
    EXPECT_EQ(job.state, pbs::JobState::kComplete) << "job " << id;
  }
}

}  // namespace
