// Scheduler conformance suite: the determinism contract, enforced.
//
// Lifting the paper's FIFO-exclusive restriction (DESIGN.md §11) is only
// sound if every policy/selector plugin is a pure function of the
// replicated state -- N heads fed the same totally-ordered command stream
// must make identical scheduling decisions, through crashes, rejoins and
// state transfer. This suite replays the SAME workload trace (the
// pbs::make_trace engine, fixed seed) under every registered
// (policy x selector) combination and three seeds, with random head
// crash/restart cycles injected throughout, and requires a clean
// invariant sheet each time:
//   * zero replay divergence (every joshua.replay_divergence.* counter 0),
//   * exactly-r execution (preemptions excuse exactly r more launches),
//   * reconvergence after every view change,
//   * no accepted job lost, no duplicate completions.
// A second run of any combination must reproduce the first bit-for-bit
// (the behaviour digest folds in every counter).
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "pbs/scheduler.h"
#include "pbs/workload.h"

namespace {

using scenariotest::ScenarioOptions;
using scenariotest::ScenarioResult;
using scenariotest::ScenarioRunner;

ScenarioOptions conformance_options(const std::string& policy,
                                    const std::string& selector,
                                    uint64_t seed) {
  ScenarioOptions options;
  options.name = "sched_conformance";
  options.heads = 3;
  options.computes = 3;
  options.seed = seed;
  options.duration = sim::hours(1);
  options.sched.policy = policy;
  options.sched.selector = selector;
  // Shared nodes for every combination: the FIFO-exclusive legacy mode has
  // its own behaviour-identical baselines (failover_demo/compute_failover);
  // this suite stresses the lifted restriction.
  options.sched.exclusive_cluster = false;
  options.sched.priority_aging = sim::minutes(2);
  // The replica selector only differs from firstfit when jobs carry r > 1.
  options.replication = selector == "replica" ? 2 : 1;

  // Identical operation sequence for every combination: mixed priorities
  // (so priority/preempt have real work to reorder), some job arrays, jobs
  // of 1-2 nodes on a 3-node pool. Load sits well under capacity so the
  // drain window bounds the campaign even with preemption restarts.
  pbs::WorkloadProfile profile;
  profile.kind = pbs::TraceKind::kMixedPriority;
  profile.duration = options.duration;
  profile.mean_interarrival = sim::seconds(60);
  profile.min_nodes = 1;
  profile.max_nodes = 2;
  profile.min_run = sim::seconds(10);
  profile.max_run = sim::seconds(90);
  profile.priority_levels = 3;
  profile.array_fraction = 0.2;
  profile.max_array = 3;
  options.trace = profile;

  // Head churn throughout: ~2 crash/restart cycles per head per campaign,
  // never all three at once (seed precondition, asserted below).
  options.mttf = sim::minutes(25);
  options.mttr = sim::seconds(90);
  options.settle_deadline = sim::seconds(120);
  return options;
}

void expect_clean(const ScenarioResult& result) {
  EXPECT_EQ(result.service_gap_polls, 0u)
      << "seed precondition: some head must stay in service at all times";
  for (const auto& v : result.violations)
    ADD_FAILURE() << "invariant: " << v;
  EXPECT_EQ(result.duplicate_completions, 0u);
  EXPECT_GT(result.jsub_accepted, 30u);
  EXPECT_GT(result.jobs_completed, 30u);
  EXPECT_GE(result.failure_cycles, 3);
  EXPECT_GE(result.view_changes_seen, 3u);
}

void run_policy_sweep(const std::string& policy) {
  for (const std::string& selector : pbs::node_selector_names()) {
    // Seeds picked to satisfy the precondition below: the up-front fault
    // schedule never takes all three heads down at once (a total outage
    // legitimately loses the in-memory group state and is covered by the
    // cold-restart scenarios instead).
    for (uint64_t seed : {901u, 902u, 907u}) {
      SCOPED_TRACE(policy + " x " + selector + " seed " +
                   std::to_string(seed));
      ScenarioRunner runner(conformance_options(policy, selector, seed));
      expect_clean(runner.run());
    }
  }
}

// One test per registered policy so ctest parallelism spreads the sweep.
// (sched_policy_names() is consulted inside each test too -- a policy added
// to the registry without a conformance leg shows up in RegistryCovered.)
TEST(SchedConformance, Fifo) { run_policy_sweep("fifo"); }
TEST(SchedConformance, Backfill) { run_policy_sweep("backfill"); }
TEST(SchedConformance, Priority) { run_policy_sweep("priority"); }
TEST(SchedConformance, Preempt) { run_policy_sweep("preempt"); }

// Every registered builtin must be swept above: a new policy or selector
// cannot ship without joining the conformance matrix.
TEST(SchedConformance, RegistryCovered) {
  std::vector<std::string> swept = {"fifo", "backfill", "priority", "preempt"};
  for (const std::string& p : pbs::sched_policy_names())
    EXPECT_TRUE(std::find(swept.begin(), swept.end(), p) != swept.end())
        << "policy '" << p << "' registered but not conformance-swept";
  std::vector<std::string> selectors = {"firstfit", "replica"};
  for (const std::string& s : pbs::node_selector_names())
    EXPECT_TRUE(std::find(selectors.begin(), selectors.end(), s) !=
                selectors.end())
        << "selector '" << s << "' registered but not conformance-swept";
}

// Bit-identical reruns: the digest folds every counter, the accepted-id
// order, the outage schedule and the event count -- one nondeterministic
// scheduling decision anywhere flips it.
TEST(SchedConformance, SameSeedBitIdentical) {
  for (const char* policy : {"backfill", "preempt"}) {
    SCOPED_TRACE(policy);
    ScenarioOptions options = conformance_options(policy, "replica", 904);
    ScenarioResult first = ScenarioRunner(options).run();
    ScenarioResult second = ScenarioRunner(options).run();
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.events_executed, second.events_executed);
    EXPECT_EQ(first.jobs_completed, second.jobs_completed);
  }
}

// The trace itself must differentiate seeds: two seeds, two digests (guards
// against the trace generator collapsing to one sequence).
TEST(SchedConformance, DifferentSeedDifferentRun) {
  ScenarioResult a =
      ScenarioRunner(conformance_options("backfill", "firstfit", 905)).run();
  ScenarioResult b =
      ScenarioRunner(conformance_options("backfill", "firstfit", 906)).run();
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
