// jmutex/jdone distributed mutual exclusion: exactly-once job launch.
#include <gtest/gtest.h>

#include "joshua/joshua_harness.h"

namespace {

using namespace joshuatest;

TEST(JMutex, ExactlyOneWinnerPerJob) {
  joshua::Cluster cluster(fast_options(3, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::msec(300)));
  ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));

  uint64_t grants = 0, denials = 0;
  for (size_t i = 0; i < 3; ++i) {
    grants += cluster.joshua_server(i).stats().mutex_grants;
    denials += cluster.joshua_server(i).stats().mutex_denials;
  }
  EXPECT_EQ(grants, 1u);
  EXPECT_EQ(denials, 2u);
  EXPECT_EQ(cluster.mom_plugin(0).wins(), 1u);
  EXPECT_EQ(cluster.mom_plugin(0).emulations(), 2u);
  EXPECT_EQ(cluster.mom_plugin(0).aborts(), 0u);
}

TEST(JMutex, EveryJobInStreamRunsOnce) {
  joshua::Cluster cluster(fast_options(4, 2, 5));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  std::vector<pbs::JobId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(jsub_sync(cluster, client, quick_job(sim::msec(200))));
  for (pbs::JobId id : ids)
    ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));
  uint64_t executed = 0;
  for (size_t c = 0; c < 2; ++c) executed += cluster.mom(c).jobs_executed();
  EXPECT_EQ(executed, 6u) << "each of the 6 jobs ran exactly once";
}

TEST(JMutex, WinnerHeadDeathDoesNotLoseJob) {
  // The winning launch attempt lives on the MOM: once granted, the job
  // runs even if the winning head dies immediately after.
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(3)));
  // Wait for the real run to begin, then kill a head.
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.mom(0).jobs_executed() == 1;
  }, sim::seconds(60)));
  cluster.net().crash_host(cluster.head_hosts()[0]);
  ASSERT_TRUE(cluster.run_until_converged());
  EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(1).find_job(id);
    return j && j->state == pbs::JobState::kComplete;
  }, sim::seconds(120)));
}

TEST(JMutex, PluginRotatesToLiveHeadWhenRequestingHeadDies) {
  // Kill a head right after it sends its launch to the mom; the mom's
  // jmutex RPC to the dead head times out and must rotate to a live head,
  // which arbitrates by proxy.
  joshua::Cluster cluster(fast_options(2, 1, 13));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(2)));
  ASSERT_NE(id, pbs::kInvalidJob);
  // Right after submission both heads schedule + launch. Kill head 0 in
  // the narrow window before the prologue resolves.
  cluster.sim().run_for(sim::msec(150));
  cluster.net().crash_host(cluster.head_hosts()[0]);
  ASSERT_TRUE(cluster.run_until_converged(sim::seconds(60)));
  EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(1).find_job(id);
    return j && j->state == pbs::JobState::kComplete;
  }, sim::seconds(300)))
      << "the job must still run exactly once via the surviving head";
  EXPECT_LE(cluster.mom(0).jobs_executed(), 1u);
}

TEST(JMutex, JdoneReleasesMutexGroupWide) {
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::msec(200)));
  ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));
  // After jdone, a late jmutex query for the job must be denied (the job
  // already ran) -- exercised via the joshua server stats after a second
  // identical launch attempt cannot happen through PBS, so assert the
  // mutex bookkeeping: both heads saw the MutexDone.
  cluster.sim().run_for(sim::seconds(1));
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_GE(cluster.joshua_server(i).stats().mutex_requests, 1u);
  }
}

TEST(JMutex, OrderedCompletionCannotOvertakeCommandApplyUnderBatching) {
  // Regression for the batched ordering hot path. Coalesced ack cuts delay
  // a head's deliveries by up to nack_delay, so a jdel and the MutexDone
  // its kill triggered at a faster head can drain in one bunch at the slow
  // head. The MutexDone's local-PBS completion injection used to be sent
  // inline while command applies defer through exec_proc, so the
  // completion could overtake the delete at the colocated PBS: the delete
  // then found a terminal job and answered kInvalidState. Both local
  // applies now defer through the same exec_proc stage, which restores
  // FIFO over the fixed-latency loopback.
  joshua::ClusterOptions options = fast_options(2, 1);
  options.order_batch = 64;
  options.order_window = 16;
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::hours(1)));
  ASSERT_NE(id, pbs::kInvalidJob);
  ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kRunning));

  std::optional<pbs::SimpleResponse> del;
  client.jdel(id, [&](std::optional<pbs::SimpleResponse> r) { del = r; });
  ASSERT_TRUE(testutil::run_until(
      cluster.sim(), [&] { return del.has_value(); }, sim::seconds(60)));
  EXPECT_EQ(del->status, pbs::Status::kOk)
      << "deleting a running job must order the delete before its own "
         "kill-triggered completion on every head";
  ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));
  EXPECT_TRUE(heads_consistent(cluster));
  for (size_t i = 0; i < 2; ++i) {
    auto job = cluster.pbs_server(i).find_job(id);
    ASSERT_TRUE(job.has_value());
    EXPECT_TRUE(job->cancelled) << "head " << i;
  }
}

TEST(JMutex, SequentialJobsDifferentWinnersPossible) {
  // With deterministic FIFO both heads race each jmutex; the winner is
  // whoever's request is first in total order -- verify the mechanism
  // stays correct over many jobs (winner identity is incidental).
  joshua::Cluster cluster(fast_options(3, 2, 17));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  for (int i = 0; i < 4; ++i) {
    pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::msec(150)));
    ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));
  }
  uint64_t total_wins = 0;
  for (size_t c = 0; c < 2; ++c) total_wins += cluster.mom_plugin(c).wins();
  EXPECT_EQ(total_wins, 4u);
  EXPECT_TRUE(heads_consistent(cluster));
}

}  // namespace
