#include "joshua/config_file.h"

#include <gtest/gtest.h>

namespace {

using joshua::cluster_options_from_config;
using joshua::cluster_options_to_config;
using joshua::TransferMode;

TEST(ClusterConfig, DefaultsWhenEmpty) {
  joshua::ClusterOptions options = cluster_options_from_config("");
  EXPECT_EQ(options.head_count, 2);
  EXPECT_EQ(options.compute_count, 2);
  EXPECT_EQ(options.transfer, TransferMode::kReplay);
  EXPECT_FALSE(options.quirk_mom);
  EXPECT_TRUE(options.sched.exclusive_cluster);
}

TEST(ClusterConfig, FullFileParses) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    # paper testbed
    heads = 4
    computes = 2
    transfer = snapshot
    auto_rejoin = true
    quirk_mom = true
    require_majority = true
    seed = 99
    scheduler {
      policy = backfill
      exclusive = false
    }
    gcs {
      heartbeat_ms = 50
      suspect_ms = 300
      flush_ms = 900
    }
  )");
  EXPECT_EQ(options.head_count, 4);
  EXPECT_EQ(options.transfer, TransferMode::kSnapshot);
  EXPECT_TRUE(options.auto_rejoin);
  EXPECT_TRUE(options.quirk_mom);
  EXPECT_TRUE(options.require_majority);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.sched.policy, pbs::SchedPolicy::kFifoBackfill);
  EXPECT_FALSE(options.sched.exclusive_cluster);
  EXPECT_EQ(options.gcs_heartbeat, sim::msec(50));
  EXPECT_EQ(options.gcs_suspect, sim::msec(300));
  EXPECT_EQ(options.gcs_flush, sim::msec(900));
}

TEST(ClusterConfig, BadValuesThrow) {
  EXPECT_THROW(cluster_options_from_config("transfer = magic"),
               jutil::ConfigError);
  EXPECT_THROW(cluster_options_from_config("heads = 0"), jutil::ConfigError);
  EXPECT_THROW(cluster_options_from_config("heads = few"),
               jutil::ConfigError);
  EXPECT_THROW(
      cluster_options_from_config("scheduler {\n policy = random\n}"),
      jutil::ConfigError);
}

TEST(ClusterConfig, UnknownKeysIgnored) {
  joshua::ClusterOptions options =
      cluster_options_from_config("future_knob = 7\nheads = 3");
  EXPECT_EQ(options.head_count, 3);
}

TEST(ClusterConfig, RoundTrip) {
  joshua::ClusterOptions original;
  original.head_count = 3;
  original.compute_count = 1;
  original.transfer = TransferMode::kSnapshot;
  original.quirk_mom = true;
  original.seed = 5;
  original.sched.policy = pbs::SchedPolicy::kFifoBackfill;
  original.sched.exclusive_cluster = false;
  original.gcs_suspect = sim::msec(400);

  joshua::ClusterOptions back =
      cluster_options_from_config(cluster_options_to_config(original));
  EXPECT_EQ(back.head_count, 3);
  EXPECT_EQ(back.compute_count, 1);
  EXPECT_EQ(back.transfer, TransferMode::kSnapshot);
  EXPECT_TRUE(back.quirk_mom);
  EXPECT_EQ(back.seed, 5u);
  EXPECT_EQ(back.sched.policy, pbs::SchedPolicy::kFifoBackfill);
  EXPECT_FALSE(back.sched.exclusive_cluster);
  EXPECT_EQ(back.gcs_suspect, sim::msec(400));
}

TEST(ClusterConfig, ConfiguredClusterActuallyRuns) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    heads = 2
    computes = 1
    gcs {
      heartbeat_ms = 50
      suspect_ms = 250
      flush_ms = 500
    }
  )");
  options.cal = sim::fast_calibration();
  joshua::Cluster cluster(options);
  cluster.start();
  EXPECT_TRUE(cluster.run_until_converged());
  EXPECT_EQ(cluster.joshua_server(0).group().config().suspect_timeout,
            sim::msec(250));
}

}  // namespace
