#include "joshua/config_file.h"

#include <gtest/gtest.h>

namespace {

using joshua::cluster_options_from_config;
using joshua::cluster_options_to_config;
using joshua::TransferMode;

TEST(ClusterConfig, DefaultsWhenEmpty) {
  joshua::ClusterOptions options = cluster_options_from_config("");
  EXPECT_EQ(options.head_count, 2);
  EXPECT_EQ(options.compute_count, 2);
  EXPECT_EQ(options.transfer, TransferMode::kReplay);
  EXPECT_FALSE(options.quirk_mom);
  EXPECT_TRUE(options.sched.exclusive_cluster);
}

TEST(ClusterConfig, FullFileParses) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    # paper testbed
    heads = 4
    computes = 2
    transfer = snapshot
    auto_rejoin = true
    quirk_mom = true
    require_majority = true
    seed = 99
    scheduler {
      policy = backfill
      exclusive = false
    }
    gcs {
      heartbeat_ms = 50
      suspect_ms = 300
      flush_ms = 900
    }
  )");
  EXPECT_EQ(options.head_count, 4);
  EXPECT_EQ(options.transfer, TransferMode::kSnapshot);
  EXPECT_TRUE(options.auto_rejoin);
  EXPECT_TRUE(options.quirk_mom);
  EXPECT_TRUE(options.require_majority);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.sched.policy, "backfill");
  EXPECT_FALSE(options.sched.exclusive_cluster);
  EXPECT_EQ(options.gcs_heartbeat, sim::msec(50));
  EXPECT_EQ(options.gcs_suspect, sim::msec(300));
  EXPECT_EQ(options.gcs_flush, sim::msec(900));
}

TEST(ClusterConfig, BadValuesThrow) {
  EXPECT_THROW(cluster_options_from_config("transfer = magic"),
               jutil::ConfigError);
  EXPECT_THROW(cluster_options_from_config("heads = 0"), jutil::ConfigError);
  EXPECT_THROW(cluster_options_from_config("heads = few"),
               jutil::ConfigError);
  EXPECT_THROW(
      cluster_options_from_config("scheduler {\n policy = random\n}"),
      jutil::ConfigError);
}

TEST(ClusterConfig, UnknownKeysIgnored) {
  joshua::ClusterOptions options =
      cluster_options_from_config("future_knob = 7\nheads = 3");
  EXPECT_EQ(options.head_count, 3);
}

TEST(ClusterConfig, RoundTrip) {
  joshua::ClusterOptions original;
  original.head_count = 3;
  original.compute_count = 1;
  original.transfer = TransferMode::kSnapshot;
  original.quirk_mom = true;
  original.seed = 5;
  original.sched.policy = "backfill";
  original.sched.selector = "replica";
  original.sched.exclusive_cluster = false;
  original.sched.priority_aging = sim::seconds(30);
  original.gcs_suspect = sim::msec(400);

  joshua::ClusterOptions back =
      cluster_options_from_config(cluster_options_to_config(original));
  EXPECT_EQ(back.head_count, 3);
  EXPECT_EQ(back.compute_count, 1);
  EXPECT_EQ(back.transfer, TransferMode::kSnapshot);
  EXPECT_TRUE(back.quirk_mom);
  EXPECT_EQ(back.seed, 5u);
  EXPECT_EQ(back.sched.policy, "backfill");
  EXPECT_EQ(back.sched.selector, "replica");
  EXPECT_FALSE(back.sched.exclusive_cluster);
  EXPECT_EQ(back.sched.priority_aging, sim::seconds(30));
  EXPECT_EQ(back.gcs_suspect, sim::msec(400));
}

TEST(ClusterConfig, SchedulingSectionParses) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    scheduling {
      policy = preempt
      selector = replica
      exclusive = false
      aging_s = 120
    }
  )");
  EXPECT_EQ(options.sched.policy, "preempt");
  EXPECT_EQ(options.sched.selector, "replica");
  EXPECT_FALSE(options.sched.exclusive_cluster);
  EXPECT_EQ(options.sched.priority_aging, sim::seconds(120));

  // Unknown plugin names are deployment mistakes: hard parse errors, never
  // a silent fallback (heads running different policies would diverge).
  EXPECT_THROW(
      cluster_options_from_config("scheduling {\n policy = random\n}"),
      jutil::ConfigError);
  EXPECT_THROW(
      cluster_options_from_config("scheduling {\n selector = wormhole\n}"),
      jutil::ConfigError);
  EXPECT_THROW(
      cluster_options_from_config("scheduling {\n aging_s = -5\n}"),
      jutil::ConfigError);
}

TEST(ClusterConfig, OrderingSectionParsesAndRoundTrips) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    ordering {
      engine = token
      batch = 64
      window = 16
    }
  )");
  EXPECT_EQ(options.ordering, gcs::OrderingMode::kTokenRing);
  EXPECT_EQ(options.order_batch, 64u);
  EXPECT_EQ(options.order_window, 16u);

  joshua::ClusterOptions back =
      cluster_options_from_config(cluster_options_to_config(options));
  EXPECT_EQ(back.ordering, gcs::OrderingMode::kTokenRing);
  EXPECT_EQ(back.order_batch, 64u);
  EXPECT_EQ(back.order_window, 16u);

  // An engine-only section keeps the batch/window defaults.
  joshua::ClusterOptions engine_only = cluster_options_from_config(R"(
    ordering { engine = allack }
  )");
  EXPECT_EQ(engine_only.ordering, gcs::OrderingMode::kAllAck);

  EXPECT_THROW(cluster_options_from_config("ordering { engine = raft }"),
               jutil::ConfigError);
  EXPECT_THROW(cluster_options_from_config("ordering { batch = -3 }"),
               jutil::ConfigError);
  EXPECT_THROW(cluster_options_from_config("ordering { window = -1 }"),
               jutil::ConfigError);
}

TEST(ClusterConfig, OrderingKnobsReachTheGroup) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    heads = 2
    computes = 1
    ordering {
      batch = 8
      window = 4
    }
  )");
  options.cal = sim::fast_calibration();
  joshua::Cluster cluster(options);
  cluster.start();
  EXPECT_TRUE(cluster.run_until_converged());
  EXPECT_EQ(cluster.joshua_server(0).group().config().order_batch, 8u);
  EXPECT_EQ(cluster.joshua_server(0).group().config().inflight_window, 4u);
}

TEST(ClusterConfig, ShardsSectionParses) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    heads = 4
    shards {
      count = 2
      stride = 1000
      shard 0 {
        heads = {0, 1}
        queues = {"batch*"}
      }
      shard 1 {
        heads = {2, 3}
        queues = {"*"}
      }
    }
  )");
  ASSERT_TRUE(options.shards.sharded());
  EXPECT_EQ(options.shards.count, 2);
  EXPECT_EQ(options.shards.id_stride, 1000u);
  ASSERT_EQ(options.shards.heads.size(), 2u);
  EXPECT_EQ(options.shards.heads[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(options.shards.heads[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(options.shards.queues[0], (std::vector<std::string>{"batch*"}));
  EXPECT_EQ(options.shards.queues[1], (std::vector<std::string>{"*"}));
}

TEST(ClusterConfig, ShardsRoundTrip) {
  joshua::ClusterOptions original;
  original.head_count = 4;
  original.shards.count = 2;
  original.shards.id_stride = 500;
  original.shards.heads = {{0, 1}, {2, 3}};
  original.shards.queues = {{"batch*", "long"}, {"*"}};
  joshua::ClusterOptions back =
      cluster_options_from_config(cluster_options_to_config(original));
  EXPECT_EQ(back.shards.count, 2);
  EXPECT_EQ(back.shards.id_stride, 500u);
  EXPECT_EQ(back.shards.heads, original.shards.heads);
  EXPECT_EQ(back.shards.queues, original.shards.queues);
}

TEST(ClusterConfig, ShardsValidationErrors) {
  // A head claimed by two shards.
  EXPECT_THROW(cluster_options_from_config(R"(
    heads = 4
    shards {
      count = 2
      shard 0 { heads = {0, 1} }
      shard 1 { heads = {1, 2, 3} }
    }
  )"),
               jutil::ConfigError);
  // A head assigned to no shard.
  EXPECT_THROW(cluster_options_from_config(R"(
    heads = 4
    shards {
      count = 2
      shard 0 { heads = {0, 1} }
      shard 1 { heads = {2} }
    }
  )"),
               jutil::ConfigError);
  // Overlapping queue globs: two shards both claim queue "batch".
  EXPECT_THROW(cluster_options_from_config(R"(
    heads = 4
    shards {
      count = 2
      shard 0 {
        heads = {0, 1}
        queues = {"batch*", "*"}
      }
      shard 1 {
        heads = {2, 3}
        queues = {"batch"}
      }
    }
  )"),
               jutil::ConfigError);
  // No catch-all: some queue would be unassigned.
  EXPECT_THROW(cluster_options_from_config(R"(
    heads = 4
    shards {
      count = 2
      shard 0 {
        heads = {0, 1}
        queues = {"batch*"}
      }
      shard 1 {
        heads = {2, 3}
        queues = {"debug*"}
      }
    }
  )"),
               jutil::ConfigError);
  // Missing per-shard section.
  EXPECT_THROW(cluster_options_from_config(R"(
    heads = 4
    shards {
      count = 2
      shard 0 { heads = {0, 1, 2, 3} }
    }
  )"),
               jutil::ConfigError);
}

TEST(ClusterConfig, ConfiguredClusterActuallyRuns) {
  joshua::ClusterOptions options = cluster_options_from_config(R"(
    heads = 2
    computes = 1
    gcs {
      heartbeat_ms = 50
      suspect_ms = 250
      flush_ms = 500
    }
  )");
  options.cal = sim::fast_calibration();
  joshua::Cluster cluster(options);
  cluster.start();
  EXPECT_TRUE(cluster.run_until_converged());
  EXPECT_EQ(cluster.joshua_server(0).group().config().suspect_timeout,
            sim::msec(250));
}

}  // namespace
